/**
 * @file
 * The 7-level machine and deep-configuration sweeps: the paper plots
 * 2/3/5/7-level results but only details the 5-level machine, so these
 * tests pin down the extrapolated configurations' behaviour -- and
 * re-prove soundness and the headline orderings at depth 7.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/fault_inject.hh"
#include "core/presets.hh"
#include "cpu/ooo_core.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"

namespace mnm
{
namespace
{

class DeepSoundnessTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DeepSoundnessTest, SevenLevelOracleCheckedRuns)
{
    MnmSpec spec = mnmSpecByName(GetParam());
    spec.oracle_check = true;
    MemorySimulator sim(paperHierarchy(7), spec);
    auto workload = makeSpecWorkload("181.mcf"); // deepest traffic
    MemSimResult r = sim.run(*workload, 60000);
    EXPECT_EQ(r.soundness_violations, 0u);
    EXPECT_EQ(r.filter_anomalies, 0u);
    EXPECT_GE(r.coverage.coverage(), 0.0);
    EXPECT_LE(r.coverage.coverage(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, DeepSoundnessTest,
                         ::testing::Values("RMNM_512_2", "SMNM_13x2",
                                           "TMNM_12x3", "CMNM_8_10",
                                           "HMNM2", "HMNM4", "Perfect"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(DeepHierarchyTest, MissTimeFractionMonotoneInDepth)
{
    // Figure 2's x-axis, as an invariant: deeper machines spend a
    // larger fraction of the access time on misses (same workload).
    double prev = -1.0;
    for (int levels : {2, 3, 5, 7}) {
        MemSimResult r = runFunctional(paperHierarchy(levels),
                                       std::nullopt, "176.gcc", 100000);
        EXPECT_GT(r.missTimeFraction(), prev)
            << levels << " levels";
        prev = r.missTimeFraction();
    }
}

TEST(DeepHierarchyTest, PerfectMnmGainGrowsWithDepth)
{
    // The deeper the hierarchy, the more probes a perfect MNM can
    // erase: its miss-cycle savings fraction must grow with depth.
    double prev = -1.0;
    for (int levels : {3, 5, 7}) {
        MemSimResult base = runFunctional(paperHierarchy(levels),
                                          std::nullopt, "181.mcf",
                                          80000);
        MemSimResult perfect = runFunctional(paperHierarchy(levels),
                                             makePerfectSpec(),
                                             "181.mcf", 80000);
        double saved =
            1.0 - static_cast<double>(perfect.total_access_cycles) /
                      static_cast<double>(base.total_access_cycles);
        EXPECT_GT(saved, prev) << levels << " levels";
        prev = saved;
    }
}

TEST(DeepHierarchyTest, SevenLevelTimingRunsAndMnmHelps)
{
    auto cycles_with = [&](bool perfect) {
        CacheHierarchy h(paperHierarchy(7));
        std::unique_ptr<MnmUnit> mnm;
        if (perfect)
            mnm = std::make_unique<MnmUnit>(makePerfectSpec(), h);
        OooCore core(paperCpu(7), h, mnm.get());
        auto w = makeSpecWorkload("179.art");
        return core.run(*w, 40000).cycles;
    };
    EXPECT_LT(cycles_with(true), cycles_with(false));
}

TEST(DeepHierarchyTest, TwoLevelMachineDegeneratesGracefully)
{
    // On the 2-level machine only the single L2 is filterable.
    MemSimResult r = runFunctional(paperHierarchy(2),
                                   mnmSpecByName("TMNM_12x3"),
                                   "255.vortex", 60000);
    EXPECT_EQ(r.soundness_violations, 0u);
    EXPECT_GT(r.coverage.opportunities(), 0u);
    // Every opportunity is at level 2.
    EXPECT_EQ(r.coverage.opportunities(),
              r.coverage.identifiedAt(2) + r.coverage.unidentifiedAt(2));
}

TEST(DeepHierarchyTest, DistributedPlacementScalesDelayWithDepth)
{
    // Distributed pays per level reached: the 7-level machine must add
    // more MNM latency than the 3-level one for a memory-bound app.
    auto extra_cycles = [&](int levels) {
        MnmSpec spec = makeUniformSpec(TmnmSpec{10, 1, 3});
        spec.placement = MnmPlacement::Distributed;
        MemSimResult with = runFunctional(paperHierarchy(levels), spec,
                                          "181.mcf", 50000);
        MemSimResult without = runFunctional(paperHierarchy(levels),
                                             std::nullopt, "181.mcf",
                                             50000);
        // Same streams: the access-time delta is the MNM delay (the
        // bypass savings reduce it; the raw delta still grows with
        // depth for a filter this weak at depth).
        return static_cast<double>(with.total_access_cycles) -
               static_cast<double>(without.total_access_cycles);
    };
    // Not a strict inequality on savings-adjusted deltas; assert the
    // configurations at least run soundly and produce finite numbers.
    double d3 = extra_cycles(3);
    double d7 = extra_cycles(7);
    EXPECT_TRUE(std::isfinite(d3));
    EXPECT_TRUE(std::isfinite(d7));
}

/** An all-unified tower deeper than anything the paper plots: tiny
 *  upper levels so blocks spill downward, and a last level roomy
 *  enough to keep (part of) the warmed working set resident. */
HierarchyParams
towerHierarchy(std::uint32_t levels)
{
    HierarchyParams params;
    params.memory_latency = 400;
    for (std::uint32_t l = 1; l <= levels; ++l) {
        LevelParams lvl;
        lvl.data.name = "u" + std::to_string(l);
        lvl.data.capacity_bytes = l == levels ? 16 * 1024 : 2 * 1024;
        lvl.data.associativity = l == levels ? 4u : 1u;
        lvl.data.block_bytes = 32;
        lvl.data.hit_latency = static_cast<Cycles>(2 * l);
        params.levels.push_back(lvl);
    }
    return params;
}

TEST(DeepHierarchyTest, DeepDirtyTowerRecordsEveryWritebackHop)
{
    // AccessResult::addWriteback used to clamp at 34 records and
    // silently drop the rest, so a deep access's energy fold
    // undercounted the drain traffic. Overflow is now a loud MNM_ASSERT
    // (api_surface_test covers the abort) and the bound covers the real
    // worst case (n(n-1)/2 hops); prove a single access can
    // legitimately need more hops than the old cap and that every one
    // is recorded. The tower's per-level geometries differ so contents
    // diverge: lower levels absorb upper writebacks (accumulating
    // dirty lines), then one miss's fill path evicts dirty victims at
    // many levels at once, each draining its own hop chain.
    constexpr std::uint32_t depth = 32; // BypassMask width: the max
    HierarchyParams params;
    params.memory_latency = 400;
    for (std::uint32_t l = 1; l <= depth; ++l) {
        LevelParams lvl;
        lvl.data.name = "u" + std::to_string(l);
        lvl.data.associativity = 1u << (l % 3u);
        lvl.data.capacity_bytes = 1024u * lvl.data.associativity;
        lvl.data.block_bytes = 32;
        lvl.data.hit_latency = static_cast<Cycles>(l);
        params.levels.push_back(lvl);
    }
    CacheHierarchy h(params);
    // A pseudo-random store stream over a working set far beyond the
    // tower's total capacity keeps every set full of dirty victims.
    std::uint64_t lcg = 1;
    auto next_addr = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<Addr>((lcg >> 16) & 0x3fffe0);
    };
    for (int i = 0; i < 200000; ++i)
        h.access(AccessType::Store, next_addr());
    std::uint32_t deepest = 0;
    for (int i = 0; i < 50000; ++i) {
        AccessResult r = h.access(AccessType::Store, next_addr());
        ASSERT_LE(r.num_writebacks, AccessResult::max_writebacks);
        deepest = std::max<std::uint32_t>(deepest, r.num_writebacks);
    }
    EXPECT_GT(deepest, 34u);
}

TEST(DeepHierarchyTest, ViolationCountersReachPastOldSixteenLevelCap)
{
    // violations_at_ used to be a fixed 16-slot array, so a violation
    // at level >= 16 was silently dropped and the per-level breakdown
    // under-reported the total. The counters are now sized from the
    // attached hierarchy; prove it by forcing violations at level 17.
    constexpr std::uint32_t depth = 17;
    constexpr std::uint64_t warm = 60000;
    MnmSpec spec = makeUniformSpec(TmnmSpec{10, 2, 3});
    spec.oracle_check = true;
    MemorySimulator sim(towerHierarchy(depth), spec);
    auto workload = makeSpecWorkload("164.gzip");
    sim.run(*workload, warm);
    MnmUnit &unit = *sim.mnm();
    ASSERT_EQ(unit.violationLevels(), depth + 1);

    // The warmed run's data addresses, replayed as probe targets.
    std::vector<Addr> addrs;
    {
        auto replay = makeSpecWorkload("164.gzip");
        Instruction inst;
        for (std::uint64_t i = 0; i < warm; ++i) {
            replay->next(inst);
            if (inst.isMem())
                addrs.push_back(inst.mem_addr);
        }
    }
    ASSERT_FALSE(addrs.empty());
    for (Addr addr : addrs)
        unit.computeBypass(AccessType::Load, addr);
    std::uint64_t baseline = unit.soundnessViolations();

    // Corrupt only the deepest filter (the last surface: per-cache
    // filters enumerate by cache id). Zeroing every count==1 sticky
    // counter turns "resident at the bottom level" into "definitely
    // miss", which the oracle check must count at level 17, not drop.
    auto surfaces = FaultInjector::faultSurfaces(unit);
    ASSERT_FALSE(surfaces.empty());
    std::size_t deepest = surfaces.size() - 1;
    for (std::uint64_t bit = 0; bit < surfaces[deepest].bits; bit += 3)
        FaultInjector::flip(unit, deepest, bit);
    for (Addr addr : addrs)
        unit.computeBypass(AccessType::Load, addr);
    for (std::uint64_t bit = 0; bit < surfaces[deepest].bits; bit += 3)
        FaultInjector::flip(unit, deepest, bit);

    EXPECT_GT(unit.soundnessViolations(), baseline);
    EXPECT_GT(unit.violationsAtLevel(depth), 0u);
    // Only the corrupted level's counter moved, and the per-level
    // breakdown accounts for every counted violation.
    for (std::uint32_t l = 0; l < depth; ++l)
        EXPECT_EQ(unit.violationsAtLevel(l), 0u) << "level " << l;
    std::uint64_t sum = 0;
    for (std::uint32_t l = 0; l < unit.violationLevels(); ++l)
        sum += unit.violationsAtLevel(l);
    EXPECT_EQ(sum, unit.soundnessViolations());
}

} // anonymous namespace
} // namespace mnm
