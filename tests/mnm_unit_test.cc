/**
 * @file
 * Unit tests for MnmUnit (the assembled machine) and the preset library:
 * construction from specs, verdict composition, coverage tracking,
 * energy accounting, perfect-oracle mode, and name-based lookup.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/coverage.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "sim/config.hh"

namespace mnm
{
namespace
{

HierarchyParams
threeLevelParams()
{
    HierarchyParams params;
    LevelParams l1;
    l1.split = true;
    l1.instr.name = "il1";
    l1.instr.capacity_bytes = 1024;
    l1.instr.associativity = 1;
    l1.instr.block_bytes = 32;
    l1.instr.hit_latency = 2;
    l1.data = l1.instr;
    l1.data.name = "dl1";
    LevelParams l2;
    l2.data.name = "ul2";
    l2.data.capacity_bytes = 4096;
    l2.data.associativity = 2;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 8;
    LevelParams l3;
    l3.data.name = "ul3";
    l3.data.capacity_bytes = 16384;
    l3.data.associativity = 4;
    l3.data.block_bytes = 64;
    l3.data.hit_latency = 18;
    params.levels = {l1, l2, l3};
    params.memory_latency = 100;
    return params;
}

TEST(MnmUnitTest, PerfectOracleBypassesExactly)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makePerfectSpec(), h);

    // Cold: everything beyond L1 is a definite miss.
    BypassMask mask = mnm.computeBypass(AccessType::Load, 0x1000);
    EXPECT_TRUE(mask.test(2));  // ul2
    EXPECT_TRUE(mask.test(3));  // ul3
    EXPECT_FALSE(mask.test(1)); // dl1 never predicted

    h.access(AccessType::Load, 0x1000, mask);
    // Now resident everywhere: no bypass.
    mask = mnm.computeBypass(AccessType::Load, 0x1000);
    EXPECT_EQ(mask.raw(), 0u);
}

TEST(MnmUnitTest, PerfectOracleConsumesNoEnergy)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makePerfectSpec(), h);
    mnm.computeBypass(AccessType::Load, 0x1000);
    h.access(AccessType::Load, 0x1000);
    EXPECT_EQ(mnm.lookupEnergyPerAccess(), 0.0);
    EXPECT_EQ(mnm.consumedEnergyPj(), 0.0);
    EXPECT_EQ(mnm.storageBits(), 0u);
}

TEST(MnmUnitTest, UniformTmnmAttachesToNonL1Caches)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makeUniformSpec(TmnmSpec{10, 1, 3}), h);
    EXPECT_TRUE(mnm.filtersOf(0).empty()); // il1
    EXPECT_TRUE(mnm.filtersOf(1).empty()); // dl1
    EXPECT_EQ(mnm.filtersOf(2).size(), 1u);
    EXPECT_EQ(mnm.filtersOf(3).size(), 1u);
    EXPECT_GT(mnm.storageBits(), 0u);
}

TEST(MnmUnitTest, TmnmIdentifiesColdRegionAfterWarmup)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makeUniformSpec(TmnmSpec{10, 1, 3}), h);
    // Warm one address; a far-away address with different low bits must
    // be identified as missing at both shielded levels.
    h.access(AccessType::Load, 0x0);
    BypassMask mask = mnm.computeBypass(AccessType::Load, 0x10040);
    EXPECT_TRUE(mask.test(2));
    EXPECT_TRUE(mask.test(3));
    EXPECT_EQ(mnm.soundnessViolations(), 0u);
}

TEST(MnmUnitTest, VerdictsNeverBypassResidentBlocks)
{
    CacheHierarchy h(threeLevelParams());
    MnmSpec spec = makeUniformSpec(TmnmSpec{6, 1, 3});
    spec.oracle_check = true; // count any unsound verdict
    MnmUnit mnm(spec, h);
    for (Addr a = 0; a < 0x40000; a += 0x340) {
        BypassMask mask = mnm.computeBypass(AccessType::Load, a);
        h.access(AccessType::Load, a, mask);
    }
    EXPECT_EQ(mnm.soundnessViolations(), 0u);
    EXPECT_EQ(mnm.filterAnomalies(), 0u);
}

TEST(MnmUnitTest, HybridAssignsTechniquesByLevel)
{
    CacheHierarchy h(paperHierarchy(5));
    MnmUnit mnm(makeHmnmSpec(2), h);
    // Levels 2-3 get SMNM+TMNM; levels 4-5 get CMNM+TMNM.
    // Cache ids: 0 il1, 1 dl1, 2 il2, 3 dl2, 4 ul3, 5 ul4, 6 ul5.
    ASSERT_EQ(mnm.filtersOf(2).size(), 2u);
    EXPECT_EQ(mnm.filtersOf(2)[0]->name(), "SMNM_13x2");
    EXPECT_EQ(mnm.filtersOf(2)[1]->name(), "TMNM_10x1");
    ASSERT_EQ(mnm.filtersOf(5).size(), 2u);
    EXPECT_EQ(mnm.filtersOf(5)[0]->name(), "CMNM_4_10");
    EXPECT_EQ(mnm.filtersOf(5)[1]->name(), "TMNM_11x2");
    ASSERT_NE(mnm.rmnm(), nullptr);
    EXPECT_EQ(mnm.rmnm()->name(), "RMNM_512_2");
}

TEST(MnmUnitTest, ChargeLookupAccumulatesEnergy)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makeUniformSpec(TmnmSpec{10, 1, 3}), h);
    EXPECT_GT(mnm.lookupEnergyPerAccess(), 0.0);
    PicoJoules before = mnm.consumedEnergyPj();
    mnm.chargeLookup();
    mnm.chargeLookup();
    EXPECT_NEAR(mnm.consumedEnergyPj() - before,
                2 * mnm.lookupEnergyPerAccess(), 1e-12);
}

TEST(MnmUnitTest, UpdatesAccrueEnergyViaListener)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makeUniformSpec(TmnmSpec{10, 1, 3}), h);
    PicoJoules before = mnm.consumedEnergyPj();
    h.access(AccessType::Load, 0x1234); // fills -> onPlacement events
    EXPECT_GT(mnm.consumedEnergyPj(), before);
}

TEST(MnmUnitTest, LookupsCounted)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makeUniformSpec(TmnmSpec{10, 1, 3}), h);
    mnm.computeBypass(AccessType::Load, 0x0);
    mnm.computeBypass(AccessType::InstFetch, 0x0);
    EXPECT_EQ(mnm.lookups(), 2u);
}

TEST(MnmUnitTest, RmnmOnlySpecHasNoPerCacheFilters)
{
    CacheHierarchy h(threeLevelParams());
    MnmUnit mnm(makeRmnmSpec(128, 1), h);
    for (CacheId id = 0; id < h.numCaches(); ++id)
        EXPECT_TRUE(mnm.filtersOf(id).empty());
    ASSERT_NE(mnm.rmnm(), nullptr);
}

TEST(MnmUnitTest, DescribeListsStructures)
{
    CacheHierarchy h(paperHierarchy(5));
    MnmUnit mnm(makeHmnmSpec(4), h);
    std::string desc = mnm.describe();
    EXPECT_NE(desc.find("HMNM4"), std::string::npos);
    EXPECT_NE(desc.find("RMNM_4096_8"), std::string::npos);
    EXPECT_NE(desc.find("SMNM_20x3"), std::string::npos);
    EXPECT_NE(desc.find("CMNM_8_12"), std::string::npos);
}

TEST(MnmUnitTest, ProbeDelayWithinL1CyclesForAllPaperConfigs)
{
    // Paper Sections 2/4.2: the MNM verdict must be ready no later than
    // the L1 miss is detected (the paper gives both the L1 caches and
    // the MNM a 2-cycle latency). Check at a 1 GHz clock: every paper
    // configuration -- including the most complex, HMNM4 -- must fit in
    // the L1's cycle count.
    SramModel sram;
    CacheGeometry l1;
    l1.capacity_bytes = 4 * 1024;
    l1.block_bytes = 32;
    l1.associativity = 1;
    Cycles l1_cycles =
        std::max<Cycles>(2, delayToCycles(sram.cache(l1).access_ns, 1.0));

    for (const char *name :
         {"TMNM_12x3", "CMNM_8_10", "HMNM2", "HMNM4"}) {
        CacheHierarchy fresh(paperHierarchy(5));
        MnmUnit mnm(mnmSpecByName(name), fresh);
        EXPECT_LE(delayToCycles(mnm.probeDelayNs(), 1.0), l1_cycles)
            << name << " at " << mnm.probeDelayNs() << " ns";
    }
}

TEST(MnmUnitTest, ParallelPlacementPaysForExtraPorts)
{
    // Paper Section 2: the parallel MNM needs as many ports as the L1
    // I+D caches together; serial needs fewer. Multi-ported cells cost
    // more energy per probe and are slower.
    MnmSpec serial = makeUniformSpec(TmnmSpec{10, 1, 3});
    serial.placement = MnmPlacement::Serial;
    MnmSpec parallel = serial;
    parallel.placement = MnmPlacement::Parallel;

    CacheHierarchy h1(threeLevelParams());
    CacheHierarchy h2(threeLevelParams());
    MnmUnit ms(serial, h1);
    MnmUnit mp(parallel, h2);
    EXPECT_GT(mp.lookupEnergyPerAccess(), ms.lookupEnergyPerAccess());
    EXPECT_GT(mp.probeDelayNs(), ms.probeDelayNs());
}

// -------------------------------------------------------------- presets

TEST(PresetsTest, AllFigureConfigsParse)
{
    for (const auto &list :
         {rmnmFigureConfigs(), smnmFigureConfigs(), tmnmFigureConfigs(),
          cmnmFigureConfigs(), hmnmFigureConfigs(), headlineConfigs()}) {
        for (const std::string &name : list) {
            MnmSpec spec = mnmSpecByName(name);
            EXPECT_EQ(spec.name, name);
        }
    }
}

TEST(PresetsTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(mnmSpecByName("NONSENSE_1x1"),
                ::testing::ExitedWithCode(1), "unknown MNM");
    EXPECT_EXIT(makeHmnmSpec(5), ::testing::ExitedWithCode(1),
                "HMNM5");
}

TEST(PresetsTest, FigureListsMatchPaper)
{
    EXPECT_EQ(rmnmFigureConfigs().size(), 4u);
    EXPECT_EQ(smnmFigureConfigs().size(), 4u);
    EXPECT_EQ(tmnmFigureConfigs().size(), 4u);
    EXPECT_EQ(cmnmFigureConfigs().size(), 4u);
    EXPECT_EQ(hmnmFigureConfigs().size(), 4u);
    EXPECT_EQ(headlineConfigs().size(), 5u);
    EXPECT_EQ(headlineConfigs().back(), "Perfect");
}

TEST(PresetsTest, FilterSpecNames)
{
    EXPECT_EQ(filterSpecName(SmnmSpec{13, 2, SmnmUpdateMode::Counting}),
              "SMNM_13x2");
    EXPECT_EQ(filterSpecName(TmnmSpec{12, 3, 3}), "TMNM_12x3");
    EXPECT_EQ(filterSpecName(
                  CmnmSpec{8, 12, 3, CmnmMaskPolicy::Monotone}),
              "CMNM_8_12");
}

TEST(PresetsTest, HmnmStorageGrowsWithIndex)
{
    CacheHierarchy h1(paperHierarchy(5));
    CacheHierarchy h2(paperHierarchy(5));
    MnmUnit m1(makeHmnmSpec(1), h1);
    MnmUnit m4(makeHmnmSpec(4), h2);
    EXPECT_LT(m1.storageBits(), m4.storageBits());
}

// ------------------------------------------------------------- coverage

TEST(CoverageTest, CountsIdentifiedAndMissed)
{
    CoverageTracker tracker;
    AccessResult r;
    r.supply_level = 4; // supplied by L4: levels 2,3 were bypassable
    r.addProbe({0, 1, false, false}); // L1 miss: not counted
    r.addProbe({2, 2, true, false});  // L2 bypassed: identified
    r.addProbe({3, 3, false, false}); // L3 probed+missed: missed opp.
    r.addProbe({4, 4, false, true});  // L4 hit: not a miss
    tracker.record(r);
    EXPECT_EQ(tracker.identified(), 1u);
    EXPECT_EQ(tracker.unidentified(), 1u);
    EXPECT_DOUBLE_EQ(tracker.coverage(), 0.5);
    EXPECT_EQ(tracker.identifiedAt(2), 1u);
    EXPECT_EQ(tracker.unidentifiedAt(3), 1u);
    EXPECT_DOUBLE_EQ(tracker.coverageAt(2), 1.0);
    EXPECT_DOUBLE_EQ(tracker.coverageAt(3), 0.0);
}

TEST(CoverageTest, L1HitContributesNothing)
{
    CoverageTracker tracker;
    AccessResult r;
    r.supply_level = 1;
    r.addProbe({0, 1, false, true});
    tracker.record(r);
    EXPECT_EQ(tracker.opportunities(), 0u);
    EXPECT_EQ(tracker.coverage(), 0.0);
}

TEST(CoverageTest, ResetClears)
{
    CoverageTracker tracker;
    AccessResult r;
    r.supply_level = 3;
    r.addProbe({2, 2, true, false});
    tracker.record(r);
    tracker.reset();
    EXPECT_EQ(tracker.opportunities(), 0u);
}

} // anonymous namespace
} // namespace mnm
