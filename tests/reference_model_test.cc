/**
 * @file
 * Reference-model property tests: the Cache is cross-checked against an
 * exact independently-written LRU model under randomized operation
 * streams, and the hierarchy's structural invariants are fuzzed across
 * randomized configurations (including randomized MNM attachments with
 * oracle checking).
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>

#include "cache/hierarchy.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

/** An obviously-correct (slow) set-associative LRU cache. */
class ReferenceLruCache
{
  public:
    ReferenceLruCache(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), lru_(sets)
    {
    }

    bool
    probe(BlockAddr block)
    {
        auto &set = lru_[block % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block) {
                set.erase(it);
                set.push_front(block); // most recently used at front
                return true;
            }
        }
        return false;
    }

    std::optional<BlockAddr>
    fill(BlockAddr block)
    {
        auto &set = lru_[block % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block) {
                set.erase(it);
                set.push_front(block);
                return std::nullopt;
            }
        }
        std::optional<BlockAddr> evicted;
        if (set.size() == ways_) {
            evicted = set.back();
            set.pop_back();
        }
        set.push_front(block);
        return evicted;
    }

    bool
    contains(BlockAddr block) const
    {
        const auto &set = lru_[block % sets_];
        for (BlockAddr b : set) {
            if (b == block)
                return true;
        }
        return false;
    }

  private:
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<std::list<BlockAddr>> lru_;
};

using CacheGeomParam = std::tuple<std::uint32_t, std::uint32_t>;

class CacheVsReferenceTest
    : public ::testing::TestWithParam<CacheGeomParam>
{
};

TEST_P(CacheVsReferenceTest, AgreesWithReferenceLru)
{
    auto [sets, ways] = GetParam();
    CacheParams params;
    params.name = "dut";
    params.block_bytes = 32;
    params.associativity = ways;
    params.capacity_bytes =
        static_cast<std::uint64_t>(sets) * ways * params.block_bytes;
    params.policy = ReplPolicy::Lru;
    Cache dut(params);
    ReferenceLruCache ref(sets, ways);

    Rng rng(sets * 131 + ways);
    for (int step = 0; step < 40000; ++step) {
        BlockAddr block = rng.nextBelow(sets * ways * 4);
        switch (rng.nextBelow(3)) {
          case 0: {
            bool dut_hit = dut.probe(block);
            bool ref_hit = ref.probe(block);
            ASSERT_EQ(dut_hit, ref_hit)
                << "probe divergence at step " << step;
            break;
          }
          case 1: {
            auto dut_fill = dut.fill(block);
            auto ref_evicted = ref.fill(block);
            ASSERT_EQ(dut_fill.evicted.has_value(),
                      ref_evicted.has_value())
                << "fill divergence at step " << step;
            if (ref_evicted) {
                ASSERT_EQ(*dut_fill.evicted, *ref_evicted)
                    << "victim divergence at step " << step;
            }
            break;
          }
          default: {
            ASSERT_EQ(dut.contains(block), ref.contains(block))
                << "contains divergence at step " << step;
            break;
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReferenceTest,
    ::testing::Values(CacheGeomParam{1, 1}, CacheGeomParam{1, 8},
                      CacheGeomParam{16, 1}, CacheGeomParam{16, 2},
                      CacheGeomParam{64, 4}, CacheGeomParam{8, 16}),
    [](const ::testing::TestParamInfo<CacheGeomParam> &info) {
        return "sets" + std::to_string(std::get<0>(info.param)) +
               "_ways" + std::to_string(std::get<1>(info.param));
    });

/** Randomized hierarchy configurations for the invariant fuzzers. */
HierarchyParams
randomHierarchy(Rng &rng)
{
    HierarchyParams params;
    std::uint32_t levels = static_cast<std::uint32_t>(rng.nextRange(1, 5));
    std::uint64_t capacity = 512ull << rng.nextBelow(3); // 512..2K L1
    std::uint32_t block = 16u << rng.nextBelow(2);       // 16/32
    for (std::uint32_t i = 0; i < levels; ++i) {
        LevelParams lvl;
        lvl.split = (i == 0) && rng.nextBool(0.5);
        auto make = [&](const char *name) {
            CacheParams cp;
            cp.name = name + std::to_string(i + 1);
            cp.capacity_bytes = capacity;
            cp.associativity = 1u << rng.nextBelow(3); // 1/2/4
            cp.block_bytes = block;
            cp.hit_latency = 2 + 6 * i;
            return cp;
        };
        lvl.data = make(lvl.split ? "d" : "u");
        if (lvl.split)
            lvl.instr = make("i");
        params.levels.push_back(lvl);
        capacity *= 4;
        if (rng.nextBool(0.4) && block < 128)
            block *= 2;
    }
    params.memory_latency = 100 + rng.nextBelow(200);
    return params;
}

TEST(HierarchyFuzzTest, StructuralInvariantsUnderRandomTraffic)
{
    Rng master(20260707);
    for (int config = 0; config < 12; ++config) {
        HierarchyParams params = randomHierarchy(master);
        CacheHierarchy h(params, config + 1);
        Rng rng = master.split();

        std::uint64_t expected_latency_sum = 0;
        std::uint64_t observed_latency_sum = 0;
        for (int step = 0; step < 20000; ++step) {
            AccessType type = static_cast<AccessType>(rng.nextBelow(3));
            // Mix of hot and cold addresses.
            Addr addr = rng.nextBool(0.7)
                            ? rng.nextBelow(16 * 1024)
                            : rng.nextBelow(64ull * 1024 * 1024);
            AccessResult r = h.access(type, addr);

            // Invariant: the supplying level and every level above it
            // now hold the block.
            std::uint32_t top =
                std::min<std::uint32_t>(r.supply_level, h.levels());
            for (std::uint32_t level = 1; level <= top; ++level) {
                const Cache &c = h.cacheAt(level, type);
                ASSERT_TRUE(c.contains(c.blockAddr(addr)))
                    << "config " << config << " step " << step
                    << " level " << level;
            }
            // Invariant: latency decomposes over the probes + memory.
            Cycles expect = 0;
            for (std::uint8_t i = 0; i < r.num_probes; ++i) {
                const ProbeRecord &p = r.probes[i];
                if (p.bypassed)
                    continue;
                const Cache &c = h.cache(p.cache);
                expect += p.hit ? c.params().hit_latency
                                : c.params().missLatency();
            }
            if (r.from_memory)
                expect += params.memory_latency;
            ASSERT_EQ(r.latency, expect);
            expected_latency_sum += expect;
            observed_latency_sum += r.latency;

            // Invariant: the last probe is the supplier (or a miss when
            // memory supplied).
            ASSERT_GT(r.num_probes, 0u);
            const ProbeRecord &last = r.probes[r.num_probes - 1];
            if (!r.from_memory) {
                ASSERT_TRUE(last.hit);
                ASSERT_EQ(last.level, r.supply_level);
            }
        }
        ASSERT_EQ(expected_latency_sum, observed_latency_sum);

        // Invariant: per-cache counters are internally consistent.
        for (CacheId id = 0; id < h.numCaches(); ++id) {
            const CacheStats &s = h.cache(id).stats();
            ASSERT_EQ(s.hits.value() + s.misses.value(),
                      s.accesses.value());
            ASSERT_LE(h.cache(id).blocksResident(),
                      h.cache(id).params().capacity_bytes /
                          h.cache(id).params().block_bytes);
        }
    }
}

TEST(HierarchyFuzzTest, RandomizedConfigsStaySoundWithRandomMnms)
{
    Rng master(777);
    const std::vector<std::string> configs = {
        "TMNM_8x2", "SMNM_12x2", "CMNM_4_8", "HMNM1", "RMNM_512_2"};
    for (int round = 0; round < 10; ++round) {
        HierarchyParams params = randomHierarchy(master);
        if (params.levels.size() < 2)
            continue; // nothing to filter
        CacheHierarchy h(params, round + 100);
        MnmSpec spec = mnmSpecByName(
            configs[master.nextBelow(configs.size())]);
        spec.oracle_check = true;
        MnmUnit mnm(spec, h);

        Rng rng = master.split();
        for (int step = 0; step < 15000; ++step) {
            AccessType type = static_cast<AccessType>(rng.nextBelow(3));
            Addr addr = rng.nextBool(0.6)
                            ? rng.nextBelow(32 * 1024)
                            : rng.nextBelow(16ull * 1024 * 1024);
            BypassMask mask = mnm.computeBypass(type, addr);
            h.access(type, addr, mask);
        }
        ASSERT_EQ(mnm.soundnessViolations(), 0u)
            << "round " << round << " with " << spec.name;
        ASSERT_EQ(mnm.filterAnomalies(), 0u)
            << "round " << round << " with " << spec.name;
    }
}

} // anonymous namespace
} // namespace mnm
