/**
 * @file
 * Property tests of the paper's central invariant (Section 3.6): an MNM
 * "miss" verdict is NEVER produced for a block that is resident.
 *
 * Every paper configuration is swept against every stress workload with
 * oracle checking enabled: any unsound verdict is counted by the
 * MnmUnit, and the tests require zero. A second property checks
 * architectural transparency: with a sound MNM the memory-system state
 * evolution (supply levels, memory traffic) is identical to a run
 * without an MNM.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "trace/synthetic.hh"

namespace mnm
{
namespace
{

/** Stress workloads with very different aliasing behaviour. */
SyntheticParams
stressWorkload(const std::string &kind)
{
    SyntheticParams p;
    p.name = kind;
    p.load_frac = 0.4;
    p.store_frac = 0.2;
    p.branch_frac = 0.05;
    p.seed = 1234;
    RegionParams r;
    if (kind == "thrash") {
        // Footprint just above L2: constant replacement churn.
        r.footprint_bytes = 48 * 1024;
        r.pattern = RegionPattern::RandomUniform;
    } else if (kind == "chase") {
        r.footprint_bytes = 512 * 1024;
        r.pattern = RegionPattern::PointerChase;
        r.stride = 32;
    } else if (kind == "stream") {
        r.footprint_bytes = 1024 * 1024;
        r.pattern = RegionPattern::Sequential;
    } else { // "hotcold"
        r.footprint_bytes = 256 * 1024;
        r.pattern = RegionPattern::HotCold;
        r.hot_fraction = 0.02;
        r.hot_probability = 0.85;
    }
    p.regions = {r};
    return p;
}

using SoundnessParam = std::tuple<std::string, std::string>;

class SoundnessTest : public ::testing::TestWithParam<SoundnessParam>
{
};

TEST_P(SoundnessTest, NoUnsoundVerdictsUnderOracleCheck)
{
    const auto &[config, workload_kind] = GetParam();
    MnmSpec spec = mnmSpecByName(config);
    spec.oracle_check = true;

    MemorySimulator sim(paperHierarchy(5), spec);
    SyntheticWorkload workload(stressWorkload(workload_kind));
    MemSimResult r = sim.run(workload, 60000);

    EXPECT_EQ(r.soundness_violations, 0u)
        << config << " on " << workload_kind;
    EXPECT_EQ(r.filter_anomalies, 0u)
        << config << " on " << workload_kind;
    EXPECT_GE(r.coverage.coverage(), 0.0);
    EXPECT_LE(r.coverage.coverage(), 1.0);

    // The confusion matrix sees the same run: its forbidden cell
    // (predicted-miss/actual-hit) must be empty -- assertSound() panics
    // otherwise -- and its derived coverage is the CoverageTracker's
    // number computed from raw cells, so the two must agree exactly.
    EXPECT_EQ(r.decisions.forbidden(), 0u)
        << config << " on " << workload_kind;
    r.decisions.assertSound(config.c_str());
    EXPECT_DOUBLE_EQ(r.decisions.coverage(), r.coverage.coverage())
        << config << " on " << workload_kind;
}

TEST_P(SoundnessTest, ArchitecturallyTransparent)
{
    const auto &[config, workload_kind] = GetParam();

    MemorySimulator base(paperHierarchy(5));
    MemorySimulator shielded(paperHierarchy(5), mnmSpecByName(config));
    SyntheticWorkload w1(stressWorkload(workload_kind));
    SyntheticWorkload w2(stressWorkload(workload_kind));
    MemSimResult rb = base.run(w1, 40000);
    MemSimResult rs = shielded.run(w2, 40000);

    // Bypassing must not change what the memory system does -- only
    // what it costs: same traffic to memory, same per-cache fills, and
    // never more probes+bypasses than baseline probes.
    EXPECT_EQ(rs.memory_accesses, rb.memory_accesses);
    ASSERT_EQ(rs.caches.size(), rb.caches.size());
    for (std::size_t i = 0; i < rb.caches.size(); ++i) {
        EXPECT_EQ(rs.caches[i].accesses + rs.caches[i].bypasses,
                  rb.caches[i].accesses)
            << rb.caches[i].name;
        EXPECT_EQ(rs.caches[i].hits, rb.caches[i].hits)
            << rb.caches[i].name << ": a bypass skipped a would-be hit";
    }
    // And it can only help the time/energy metrics.
    EXPECT_LE(rs.miss_cycles, rb.miss_cycles);
    EXPECT_LE(rs.energy.probe_miss_pj, rb.energy.probe_miss_pj + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAllWorkloads, SoundnessTest,
    ::testing::Combine(
        ::testing::Values("RMNM_128_1", "RMNM_4096_8", "SMNM_10x2",
                          "SMNM_20x3", "TMNM_10x1", "TMNM_12x3",
                          "CMNM_2_9", "CMNM_8_12", "HMNM1", "HMNM4",
                          "Perfect"),
        ::testing::Values("thrash", "chase", "stream", "hotcold")),
    [](const ::testing::TestParamInfo<SoundnessParam> &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/**
 * The PaperReset CMNM ablation: the literal mask-reset scheme is
 * expected to produce violations under register pressure -- that is the
 * point of the ablation -- and the MnmUnit must catch every one (so the
 * simulation stays architecturally correct).
 */
TEST(PaperResetAblation, ViolationsAreCaughtNotActedOn)
{
    MnmSpec spec;
    spec.name = "CMNM_2_6(paper-reset)";
    // Few registers + tiny table: maximum widening/reset churn.
    spec.level_filters.push_back(LevelFilters{
        2, 99, {CmnmSpec{2, 6, 3, CmnmMaskPolicy::PaperReset}}});

    MemorySimulator base(paperHierarchy(5));
    MemorySimulator shielded(paperHierarchy(5), spec);
    SyntheticWorkload w1(stressWorkload("hotcold"));
    SyntheticWorkload w2(stressWorkload("hotcold"));
    MemSimResult rb = base.run(w1, 60000);
    MemSimResult rs = shielded.run(w2, 60000);

    // Caught violations mean no would-be hit was ever bypassed:
    for (std::size_t i = 0; i < rb.caches.size(); ++i)
        EXPECT_EQ(rs.caches[i].hits, rb.caches[i].hits);
    EXPECT_EQ(rs.memory_accesses, rb.memory_accesses);
    // (Whether violations occur depends on the stream; we only require
    // that IF they occur they are counted, which the equality above
    // demonstrates. Report for visibility.)
    RecordProperty("soundness_violations",
                   static_cast<int>(rs.soundness_violations));
    // Every caught violation surfaces as the forbidden confusion cell
    // (predicted-miss/actual-hit), level-by-level totals included.
    EXPECT_EQ(rs.decisions.forbidden(), rs.soundness_violations);
}

/** Coverage is monotone in structure size within a technique family. */
TEST(CoverageMonotonicity, BiggerTmnmCoversAtLeastAsMuch)
{
    SyntheticWorkload w1(stressWorkload("thrash"));
    SyntheticWorkload w2(stressWorkload("thrash"));
    MemorySimulator small(paperHierarchy(5),
                          makeUniformSpec(TmnmSpec{6, 1, 3}));
    MemorySimulator large(paperHierarchy(5),
                          makeUniformSpec(TmnmSpec{14, 3, 3}));
    double c_small = small.run(w1, 60000).coverage.coverage();
    double c_large = large.run(w2, 60000).coverage.coverage();
    EXPECT_GE(c_large, c_small);
}

TEST(CoverageMonotonicity, PerfectDominatesEverything)
{
    for (const std::string &config : headlineConfigs()) {
        SyntheticWorkload w1(stressWorkload("chase"));
        SyntheticWorkload w2(stressWorkload("chase"));
        MemorySimulator real(paperHierarchy(5), mnmSpecByName(config));
        MemorySimulator perfect(paperHierarchy(5), makePerfectSpec());
        double c_real = real.run(w1, 30000).coverage.coverage();
        double c_perfect = perfect.run(w2, 30000).coverage.coverage();
        EXPECT_LE(c_real, c_perfect + 1e-12) << config;
    }
}

} // anonymous namespace
} // namespace mnm
