/**
 * @file
 * Process-pool sweep execution contract (sim/proc_pool.hh): results
 * are element-wise bit-identical to the serial and threaded paths, a
 * mid-cell worker crash costs nothing (the cell is re-issued and
 * recomputes the identical result), a poison cell fails alone, a
 * hanging cell dies to the supervisor's real SIGKILL deadline, and the
 * MNM_WORKERS / MNM_FAIL_CELL knobs reject malformed values.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/fault_inject.hh"
#include "core/presets.hh"
#include "obs/registry.hh"
#include "sim/config.hh"
#include "sim/recovery.hh"
#include "sim/runner.hh"

namespace mnm
{
namespace
{

/** Small two-app grid spanning baseline and MNM variants. */
std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepVariant> variants = {
        {"baseline", paperHierarchy(3), std::nullopt},
        {"RMNM", paperHierarchy(3), makeRmnmSpec(128, 1)},
        {"HMNM2", paperHierarchy(5), makeHmnmSpec(2)},
    };
    return makeGridCells({"164.gzip", "181.mcf"}, variants, 40000);
}

std::vector<MemSimResult>
serialReference(const std::vector<SweepCell> &cells)
{
    ExperimentOptions opts;
    opts.jobs = 1;
    return runSweep(cells, opts);
}

/** Every result compared through its exact journal serialization: the
 *  strongest equality the repo defines (bit-identical doubles). */
void
expectBitIdentical(const std::vector<SweepCell> &cells,
                   const std::vector<MemSimResult> &a,
                   const std::vector<MemSimResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        EXPECT_FALSE(a[i].failed);
        EXPECT_FALSE(b[i].failed);
        EXPECT_EQ(writeMemSimResult(a[i]), writeMemSimResult(b[i]));
    }
}

TEST(ProcPoolTest, MatchesSerialBitIdentical)
{
    std::vector<SweepCell> cells = smallGrid();
    std::vector<MemSimResult> reference = serialReference(cells);

    ExperimentOptions pool;
    pool.workers = 3;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);
    expectBitIdentical(cells, reference, pooled);

    // And against the threaded path, completing the three-way claim.
    ExperimentOptions threads;
    threads.jobs = 4;
    std::vector<MemSimResult> threaded = runSweep(cells, threads);
    expectBitIdentical(cells, pooled, threaded);
}

TEST(ProcPoolTest, MoreWorkersThanCells)
{
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 2);
    ExperimentOptions pool;
    pool.workers = 16; // clamped to the cell count internally
    std::vector<MemSimResult> pooled = runSweep(cells, pool);
    expectBitIdentical(cells, serialReference(cells), pooled);
}

TEST(ProcPoolTest, MidCellCrashIsReissuedAndStaysBitIdentical)
{
    std::vector<SweepCell> cells = smallGrid();
    std::vector<MemSimResult> reference = serialReference(cells);

    // Every 181.mcf cell SIGSEGVs its worker on the first attempt and
    // completes on the re-issue: the sweep must survive the crashes
    // and still produce bit-identical results.
    setSweepFaultHookForTest([](const SweepCell &cell, unsigned attempt) {
        if (cell.app == "181.mcf" && attempt == 0) {
            ::signal(SIGSEGV, SIG_DFL);
            ::raise(SIGSEGV);
        }
    });
    const std::uint64_t reissues_before =
        globalStats().counter("runner.proc.reissues").value();
    ExperimentOptions pool;
    pool.workers = 2;
    pool.worker_backoff_ms = 1;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);
    setSweepFaultHookForTest(nullptr);

    expectBitIdentical(cells, reference, pooled);
    // One re-issue per mcf cell, never more: each leased-but-dead cell
    // went back out exactly once.
    EXPECT_EQ(globalStats().counter("runner.proc.reissues").value() -
                  reissues_before,
              3u);
}

TEST(ProcPoolTest, PoisonCellFailsAloneWithCause)
{
    std::vector<SweepCell> cells = smallGrid();

    // One cell aborts on every attempt; with MNM_POISON_LIMIT=2 it is
    // declared poison after killing two workers and the rest of the
    // sweep stands.
    setSweepFaultHookForTest([](const SweepCell &cell, unsigned) {
        if (cell.app == "181.mcf" && cell.label == "RMNM") {
            ::signal(SIGABRT, SIG_DFL);
            std::abort();
        }
    });
    const std::uint64_t poisoned_before =
        globalStats().counter("runner.proc.poisoned").value();
    ExperimentOptions pool;
    pool.workers = 2;
    pool.poison_limit = 2;
    pool.worker_backoff_ms = 1;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);
    setSweepFaultHookForTest(nullptr);

    std::vector<MemSimResult> reference = serialReference(cells);
    ASSERT_EQ(pooled.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        if (cells[i].app == "181.mcf" && cells[i].label == "RMNM") {
            EXPECT_TRUE(pooled[i].failed);
            EXPECT_NE(pooled[i].fail_reason.find("2 worker"),
                      std::string::npos)
                << pooled[i].fail_reason;
        } else {
            EXPECT_FALSE(pooled[i].failed);
            EXPECT_EQ(writeMemSimResult(pooled[i]),
                      writeMemSimResult(reference[i]));
        }
    }
    EXPECT_EQ(globalStats().counter("runner.proc.poisoned").value() -
                  poisoned_before,
              1u);
    EXPECT_TRUE(
        globalStats().has("runner.failures.by_cause.poison"));
    EXPECT_EQ(sweepExitCode(), 1);
}

TEST(ProcPoolTest, HangingCellDiesToRealDeadline)
{
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 4);

    // MNM_FAIL_CELL=<match>:hang never polls the cooperative watchdog;
    // only the supervisor's SIGKILL deadline can end it. The timed-out
    // cell must fail with the timeout cause and never be re-issued.
    const std::uint64_t timeouts_before =
        globalStats().counter("runner.proc.timeouts").value();
    ExperimentOptions pool;
    pool.workers = 2;
    pool.worker_backoff_ms = 1;
    pool.cell_timeout_s = 0.25;
    pool.fail_cell.match = "181.mcf · baseline";
    pool.fail_cell.mode = CellFaultMode::Hang;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        bool hung = cells[i].app == "181.mcf" &&
                    cells[i].label == "baseline";
        EXPECT_EQ(pooled[i].failed, hung);
        if (hung) {
            EXPECT_NE(pooled[i].fail_reason.find("MNM_CELL_TIMEOUT_S"),
                      std::string::npos)
                << pooled[i].fail_reason;
        }
    }
    EXPECT_EQ(globalStats().counter("runner.proc.timeouts").value() -
                  timeouts_before,
              1u);
    EXPECT_TRUE(
        globalStats().has("runner.failures.by_cause.timeout"));
}

TEST(ProcPoolTest, ExitModeCrashIsContained)
{
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 3);
    std::vector<MemSimResult> reference = serialReference(cells);

    // A cell that calls _Exit(3) kills its worker with a nonzero exit
    // status -- contained exactly like a signal. Poison limit 1 makes
    // the very first death final, so this also pins the by-cause
    // accounting for exit-style crashes.
    ExperimentOptions pool;
    pool.workers = 2;
    pool.poison_limit = 1;
    pool.worker_backoff_ms = 1;
    pool.fail_cell.match = "164.gzip · RMNM";
    pool.fail_cell.mode = CellFaultMode::Exit;
    pool.fail_cell.exit_code = 3;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        if (cells[i].app == "164.gzip" && cells[i].label == "RMNM") {
            EXPECT_TRUE(pooled[i].failed);
            EXPECT_NE(pooled[i].fail_reason.find("status 3"),
                      std::string::npos)
                << pooled[i].fail_reason;
        } else {
            EXPECT_EQ(writeMemSimResult(pooled[i]),
                      writeMemSimResult(reference[i]));
        }
    }
}

TEST(ProcPoolTest, ThrowingCellIsRetriedThroughTheWorker)
{
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 2);
    std::vector<MemSimResult> reference = serialReference(cells);

    // A contained exception inside the worker is reported over the
    // pipe and retried like the thread path, not treated as a crash.
    setSweepFaultHookForTest([](const SweepCell &cell, unsigned attempt) {
        if (cell.app == "164.gzip" && attempt == 0)
            throw std::runtime_error("transient");
    });
    ExperimentOptions pool;
    pool.workers = 2;
    pool.retries = 1;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);
    setSweepFaultHookForTest(nullptr);
    expectBitIdentical(cells, reference, pooled);
}

TEST(ProcPoolTest, ExhaustedRetriesFailWithCause)
{
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 2);

    ExperimentOptions pool;
    pool.workers = 2;
    pool.retries = 1;
    pool.fail_cell.match = "164.gzip · baseline"; // mode: throw
    std::vector<MemSimResult> pooled = runSweep(cells, pool);

    EXPECT_TRUE(pooled[0].failed);
    EXPECT_NE(pooled[0].fail_reason.find("MNM_FAIL_CELL"),
              std::string::npos);
    EXPECT_FALSE(pooled[1].failed);
    EXPECT_TRUE(
        globalStats().has("runner.failures.by_cause.retry_exhausted"));
}

TEST(ProcPoolTest, JournalRecordsLeasesAndSurvivesCrashes)
{
    std::vector<SweepCell> cells = smallGrid();
    std::vector<MemSimResult> reference = serialReference(cells);
    std::string path = ::testing::TempDir() + "mnm_proc_pool_journal_" +
                       std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());

    // EVERY cell kills its first worker: both slots must die and be
    // respawned for the sweep to finish at all.
    setSweepFaultHookForTest([](const SweepCell &, unsigned attempt) {
        if (attempt == 0) {
            ::signal(SIGSEGV, SIG_DFL);
            ::raise(SIGSEGV);
        }
    });
    ExperimentOptions pool;
    pool.workers = 2;
    pool.worker_backoff_ms = 1;
    pool.checkpoint = path;
    std::vector<MemSimResult> pooled = runSweep(cells, pool);
    setSweepFaultHookForTest(nullptr);
    expectBitIdentical(cells, reference, pooled);

    // The journal is a complete audit: one lease per issue (every cell
    // crashed once, so exactly two leases each -- each leased-but-
    // uncommitted cell was re-issued exactly once), one committed
    // result per cell, and the worker respawns that kept the pool
    // alive.
    CheckpointJournal::Replay replay = CheckpointJournal::load(path);
    EXPECT_EQ(replay.entries.size(), cells.size());
    EXPECT_GE(replay.respawns, 1u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(replay.leases.at(cellFingerprint(cells[i])), 2u)
            << cells[i].app << " · " << cells[i].label;
    }

    // Resuming from the journal replays every cell bit-identically.
    std::vector<MemSimResult> resumed = runSweep(cells, pool);
    expectBitIdentical(cells, reference, resumed);
    std::remove(path.c_str());
}

TEST(ProcPoolTest, WorkersKnobParses)
{
    ASSERT_EQ(setenv("MNM_WORKERS", "4", 1), 0);
    EXPECT_EQ(ExperimentOptions::fromEnv().workers, 4u);
    ASSERT_EQ(unsetenv("MNM_WORKERS"), 0);
    EXPECT_EQ(ExperimentOptions::fromEnv().workers, 0u);
}

TEST(CellFaultSpecTest, ParsesEveryMode)
{
    CellFaultSpec spec = parseCellFaultSpec("mcf");
    EXPECT_EQ(spec.match, "mcf");
    EXPECT_EQ(spec.mode, CellFaultMode::Throw);
    EXPECT_TRUE(spec.matches("181.mcf · RMNM"));
    EXPECT_FALSE(spec.matches("164.gzip · RMNM"));

    EXPECT_EQ(parseCellFaultSpec("mcf:throw").mode, CellFaultMode::Throw);
    EXPECT_EQ(parseCellFaultSpec("mcf:segv").mode, CellFaultMode::Segv);
    EXPECT_EQ(parseCellFaultSpec("mcf:abort").mode, CellFaultMode::Abort);
    EXPECT_EQ(parseCellFaultSpec("mcf:hang").mode, CellFaultMode::Hang);
    spec = parseCellFaultSpec("mcf:exit:7");
    EXPECT_EQ(spec.mode, CellFaultMode::Exit);
    EXPECT_EQ(spec.exit_code, 7);
}

TEST(ProcPoolDeathTest, RejectsMalformedWorkers)
{
    ASSERT_EQ(setenv("MNM_WORKERS", "many", 1), 0);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "MNM_WORKERS");
    ASSERT_EQ(setenv("MNM_WORKERS", "999999", 1), 0);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "MNM_WORKERS");
    ASSERT_EQ(unsetenv("MNM_WORKERS"), 0);
}

TEST(ProcPoolDeathTest, RejectsMalformedFailCellModes)
{
    EXPECT_EXIT(parseCellFaultSpec("mcf:frobnicate"),
                ::testing::ExitedWithCode(1), "unknown mode");
    EXPECT_EXIT(parseCellFaultSpec(":segv"),
                ::testing::ExitedWithCode(1), "empty cell substring");
    EXPECT_EXIT(parseCellFaultSpec("mcf:exit:lots"),
                ::testing::ExitedWithCode(1), "exit code");
    EXPECT_EXIT(parseCellFaultSpec("mcf:exit:300"),
                ::testing::ExitedWithCode(1), "exit code");
}

} // anonymous namespace
} // namespace mnm
