/**
 * @file
 * Unit tests for the workload generators: determinism, reset semantics,
 * instruction-mix fractions, address-pattern behaviour, and the
 * SPEC2000-like suite definitions.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/spec2000.hh"
#include "trace/synthetic.hh"
#include "trace/workload.hh"

namespace mnm
{
namespace
{

SyntheticParams
basicParams()
{
    SyntheticParams p;
    p.name = "test";
    p.load_frac = 0.3;
    p.store_frac = 0.1;
    p.branch_frac = 0.1;
    p.seed = 7;
    RegionParams r;
    r.footprint_bytes = 64 * 1024;
    r.pattern = RegionPattern::Sequential;
    p.regions = {r};
    return p;
}

TEST(SyntheticTest, Deterministic)
{
    SyntheticWorkload a(basicParams());
    SyntheticWorkload b(basicParams());
    Instruction ia, ib;
    for (int i = 0; i < 5000; ++i) {
        a.next(ia);
        b.next(ib);
        ASSERT_EQ(ia.pc, ib.pc);
        ASSERT_EQ(ia.mem_addr, ib.mem_addr);
        ASSERT_EQ(static_cast<int>(ia.cls), static_cast<int>(ib.cls));
    }
}

TEST(SyntheticTest, ResetReplaysExactly)
{
    SyntheticWorkload w(basicParams());
    std::vector<Addr> first;
    Instruction inst;
    for (int i = 0; i < 1000; ++i) {
        w.next(inst);
        first.push_back(inst.pc ^ inst.mem_addr);
    }
    w.reset();
    for (int i = 0; i < 1000; ++i) {
        w.next(inst);
        ASSERT_EQ(first[i], inst.pc ^ inst.mem_addr) << "at " << i;
    }
}

TEST(SyntheticTest, MixFractionsApproximatelyHonoured)
{
    SyntheticWorkload w(basicParams());
    std::map<InstClass, int> counts;
    Instruction inst;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        w.next(inst);
        counts[inst.cls]++;
    }
    EXPECT_NEAR(counts[InstClass::Load] / double(n), 0.3, 0.02);
    EXPECT_NEAR(counts[InstClass::Store] / double(n), 0.1, 0.02);
    EXPECT_NEAR(counts[InstClass::Branch] / double(n), 0.1, 0.02);
}

TEST(SyntheticTest, MemAddressesStayInRegionFootprint)
{
    SyntheticParams p = basicParams();
    p.regions[0].footprint_bytes = 4096;
    SyntheticWorkload w(p);
    Instruction inst;
    for (int i = 0; i < 20000; ++i) {
        w.next(inst);
        if (inst.isMem()) {
            EXPECT_GE(inst.mem_addr, 0x40000000ull);
            EXPECT_LT(inst.mem_addr, 0x40000000ull + 4096);
        }
    }
}

TEST(SyntheticTest, SequentialPatternStrides)
{
    SyntheticParams p = basicParams();
    p.load_frac = 1.0;
    p.store_frac = 0.0;
    p.branch_frac = 0.0;
    p.temporal_reuse = 0.0; // observe the raw pattern
    p.regions[0].stride = 16;
    SyntheticWorkload w(p);
    Instruction a, b;
    w.next(a);
    w.next(b);
    EXPECT_EQ(b.mem_addr - a.mem_addr, 16u);
}

TEST(SyntheticTest, PointerChaseCoversRegion)
{
    SyntheticParams p = basicParams();
    p.load_frac = 1.0;
    p.store_frac = 0.0;
    p.branch_frac = 0.0;
    p.temporal_reuse = 0.0; // observe the raw pattern
    p.regions[0].pattern = RegionPattern::PointerChase;
    p.regions[0].footprint_bytes = 32 * 64; // 64 cells of 32B
    p.regions[0].stride = 32;
    SyntheticWorkload w(p);
    std::set<Addr> seen;
    Instruction inst;
    for (int i = 0; i < 64; ++i) {
        w.next(inst);
        seen.insert(inst.mem_addr);
    }
    // Full-period LCG: all 64 cells visited in 64 steps.
    EXPECT_EQ(seen.size(), 64u);
}

TEST(SyntheticTest, HotColdConcentratesAccesses)
{
    SyntheticParams p = basicParams();
    p.load_frac = 1.0;
    p.store_frac = 0.0;
    p.branch_frac = 0.0;
    p.regions[0].pattern = RegionPattern::HotCold;
    p.regions[0].footprint_bytes = 1024 * 1024;
    p.regions[0].hot_fraction = 0.01;
    p.regions[0].hot_probability = 0.9;
    SyntheticWorkload w(p);
    Instruction inst;
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w.next(inst);
        if (inst.mem_addr < 0x40000000ull + 1024 * 1024 / 100 + 64)
            ++hot;
    }
    EXPECT_GT(hot / double(n), 0.85);
}

TEST(SyntheticTest, TemporalReuseRetouchesRecentAddresses)
{
    // With heavy reuse, a locality-free random pattern still repeats
    // addresses within short windows.
    SyntheticParams p = basicParams();
    p.load_frac = 1.0;
    p.store_frac = 0.0;
    p.branch_frac = 0.0;
    p.temporal_reuse = 0.6;
    p.regions[0].pattern = RegionPattern::RandomUniform;
    p.regions[0].footprint_bytes = 16 * 1024 * 1024;
    SyntheticWorkload w(p);
    std::set<Addr> window;
    Instruction inst;
    int repeats = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w.next(inst);
        if (!window.insert(inst.mem_addr).second)
            ++repeats;
    }
    // Random-over-16MB alone would almost never repeat.
    EXPECT_GT(repeats / double(n), 0.4);

    SyntheticParams q = p;
    q.temporal_reuse = 0.0;
    SyntheticWorkload w0(q);
    window.clear();
    repeats = 0;
    for (int i = 0; i < n; ++i) {
        w0.next(inst);
        if (!window.insert(inst.mem_addr).second)
            ++repeats;
    }
    EXPECT_LT(repeats / double(n), 0.05);
}

TEST(SyntheticTest, PcStaysInCodeFootprint)
{
    SyntheticParams p = basicParams();
    p.code_footprint_bytes = 8192;
    SyntheticWorkload w(p);
    Instruction inst;
    for (int i = 0; i < 20000; ++i) {
        w.next(inst);
        EXPECT_GE(inst.pc, 0x00100000ull);
        EXPECT_LE(inst.pc, 0x00100000ull + 8192 + 4);
    }
}

TEST(SyntheticTest, LoopsRevisitPcs)
{
    SyntheticWorkload w(basicParams());
    std::map<Addr, int> pc_counts;
    Instruction inst;
    for (int i = 0; i < 20000; ++i) {
        w.next(inst);
        pc_counts[inst.pc]++;
    }
    int max_count = 0;
    for (const auto &[pc, n] : pc_counts)
        max_count = std::max(max_count, n);
    EXPECT_GT(max_count, 3); // loops re-execute bodies
}

TEST(SyntheticTest, MispredictRateHonoured)
{
    SyntheticParams p = basicParams();
    p.branch_frac = 0.5;
    p.mispredict_rate = 0.2;
    SyntheticWorkload w(p);
    Instruction inst;
    int branches = 0;
    int mispredicts = 0;
    for (int i = 0; i < 50000; ++i) {
        w.next(inst);
        if (inst.isBranch()) {
            ++branches;
            mispredicts += inst.mispredicted ? 1 : 0;
        }
    }
    EXPECT_NEAR(mispredicts / double(branches), 0.2, 0.02);
}

TEST(SyntheticTest, DependenceDistancesBounded)
{
    SyntheticWorkload w(basicParams());
    Instruction inst;
    for (int i = 0; i < 10000; ++i) {
        w.next(inst);
        EXPECT_LE(inst.dep1, 512);
        EXPECT_LE(inst.dep2, 512);
    }
}

TEST(SyntheticTest, MultipleRegionsAllVisited)
{
    SyntheticParams p = basicParams();
    p.load_frac = 1.0;
    p.store_frac = 0.0;
    p.branch_frac = 0.0;
    RegionParams r2 = p.regions[0];
    p.regions.push_back(r2);
    p.regions.push_back(r2);
    SyntheticWorkload w(p);
    std::set<Addr> bases;
    Instruction inst;
    for (int i = 0; i < 20000; ++i) {
        w.next(inst);
        bases.insert(inst.mem_addr & ~((64ull << 20) - 1));
    }
    EXPECT_EQ(bases.size(), 3u); // three 64MB-spaced region bases
}

TEST(SyntheticTest, RejectsBadParams)
{
    SyntheticParams p = basicParams();
    p.regions.clear();
    EXPECT_EXIT(SyntheticWorkload w(p), ::testing::ExitedWithCode(1),
                "no data regions");

    p = basicParams();
    p.load_frac = 0.9;
    p.store_frac = 0.2;
    EXPECT_EXIT(SyntheticWorkload w(p), ::testing::ExitedWithCode(1),
                "exceeds 1");
}

// ------------------------------------------------------------ scripted

TEST(ScriptedTest, ReplaysAndWraps)
{
    Instruction a;
    a.cls = InstClass::Load;
    a.mem_addr = 0x100;
    Instruction b;
    b.cls = InstClass::IntAlu;
    ScriptedWorkload w({a, b}, "s");
    Instruction out;
    w.next(out);
    EXPECT_EQ(out.mem_addr, 0x100u);
    w.next(out);
    EXPECT_EQ(out.cls, InstClass::IntAlu);
    w.next(out); // wraps
    EXPECT_EQ(out.mem_addr, 0x100u);
    EXPECT_EQ(w.length(), 2u);
}

TEST(ScriptedTest, EmptyScriptRejected)
{
    EXPECT_EXIT(ScriptedWorkload w({}), ::testing::ExitedWithCode(1),
                "empty script");
}

// ------------------------------------------------------- uniform random

TEST(UniformRandomTest, MixAndFootprint)
{
    UniformRandomWorkload w(4096, 0.5, 0.2, 3);
    Instruction inst;
    int loads = 0, stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w.next(inst);
        if (inst.cls == InstClass::Load)
            ++loads;
        if (inst.cls == InstClass::Store)
            ++stores;
        if (inst.isMem()) {
            EXPECT_LT(inst.mem_addr - 0x40000000ull, 4096u);
        }
    }
    EXPECT_NEAR(loads / double(n), 0.5, 0.02);
    EXPECT_NEAR(stores / double(n), 0.2, 0.02);
}

TEST(UniformRandomTest, ResetReplays)
{
    UniformRandomWorkload w(4096, 0.5, 0.2, 3);
    Instruction a, b;
    w.next(a);
    w.reset();
    w.next(b);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
}

// ------------------------------------------------------------- spec2000

TEST(Spec2000Test, TwentyNames)
{
    EXPECT_EQ(specIntNames().size(), 10u);
    EXPECT_EQ(specFpNames().size(), 10u);
    EXPECT_EQ(specAllNames().size(), 20u);
}

TEST(Spec2000Test, AllWorkloadsConstructAndGenerate)
{
    for (const std::string &name : specAllNames()) {
        auto w = makeSpecWorkload(name);
        EXPECT_EQ(w->name(), name);
        Instruction inst;
        for (int i = 0; i < 1000; ++i)
            w->next(inst);
    }
}

TEST(Spec2000Test, DistinctSeedsProduceDistinctStreams)
{
    auto a = makeSpecWorkload("164.gzip");
    auto b = makeSpecWorkload("181.mcf");
    Instruction ia, ib;
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        a->next(ia);
        b->next(ib);
        if (ia.pc == ib.pc)
            ++same;
    }
    EXPECT_LT(same, 100);
}

TEST(Spec2000Test, McfHasHugeFootprint)
{
    SyntheticParams p = specWorkloadParams("181.mcf");
    std::uint64_t max_fp = 0;
    for (const auto &r : p.regions)
        max_fp = std::max(max_fp, r.footprint_bytes);
    EXPECT_GE(max_fp, 4ull * 1024 * 1024); // spills the 2MB L5
}

TEST(Spec2000Test, FpWorkloadsAreFpHeavy)
{
    for (const std::string &name : specFpNames())
        EXPECT_GT(specWorkloadParams(name).fp_frac, 0.0) << name;
}

TEST(Spec2000Test, UnknownNameFatal)
{
    EXPECT_EXIT(specWorkloadParams("999.nope"),
                ::testing::ExitedWithCode(1), "unknown");
}

} // anonymous namespace
} // namespace mnm
