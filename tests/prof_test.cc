/**
 * @file
 * The phase-attribution layer's contract (obs/phase_profiler,
 * obs/perf_counters): exclusive-time nesting and reentrancy, the
 * counter-group fallback ladder, the manifest's prof section, the
 * MNM_PROF* knob validation, and -- above all -- purity: with the knobs
 * unset the profiler accumulates nothing and writes nothing, so every
 * bench's stdout stays byte-identical.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "obs/perf_counters.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/memory_sim.hh"
#include "sim/runner.hh"
#include "trace/spec2000.hh"
#include "util/cpu.hh"

namespace mnm
{
namespace
{

/** Spin until the fast tick has visibly advanced, so every bracketed
 *  region accumulates a nonzero tick delta regardless of timer
 *  granularity. */
void
spinTicks()
{
    const std::uint64_t start = profFastTick();
    while (profFastTick() - start < 1000) {
    }
}

int
phaseIdx(Phase p)
{
    return static_cast<int>(p);
}

/** RAII guard: every test leaves the profiler off and empty. */
struct ProfReset
{
    ProfReset() { resetPhaseProfilerForTest(); }
    ~ProfReset() { resetPhaseProfilerForTest(); }
};

TEST(ProfTest, ParseProfModeAcceptsTheThreeModes)
{
    EXPECT_EQ(parseProfMode(nullptr), ProfMode::Off);
    EXPECT_EQ(parseProfMode(""), ProfMode::Off);
    EXPECT_EQ(parseProfMode("off"), ProfMode::Off);
    EXPECT_EQ(parseProfMode("time"), ProfMode::Time);
    EXPECT_EQ(parseProfMode("hw"), ProfMode::Hw);
    EXPECT_STREQ(profModeName(ProfMode::Off), "off");
    EXPECT_STREQ(profModeName(ProfMode::Time), "time");
    EXPECT_STREQ(profModeName(ProfMode::Hw), "hw");
}

TEST(ProfTest, MalformedProfModeDies)
{
    EXPECT_EXIT(parseProfMode("cycles"),
                ::testing::ExitedWithCode(1), "MNM_PROF");
    EXPECT_EXIT(parseProfMode("TIME"),
                ::testing::ExitedWithCode(1), "MNM_PROF");
}

TEST(ProfTest, FoldedWithoutModeDies)
{
    // MNM_PROF_FOLDED without an active MNM_PROF would silently collect
    // nothing; the knob convention makes that loud.
    EXPECT_EXIT(
        {
            setenv("MNM_PROF_FOLDED", "/tmp/out.folded", 1);
            unsetenv("MNM_PROF");
            resetPhaseProfilerForTest();
            initPhaseProfiler();
        },
        ::testing::ExitedWithCode(1), "MNM_PROF_FOLDED");
}

TEST(ProfTest, HwModeResolvesOrFallsBackOnce)
{
    ProfReset guard;
    setenv("MNM_PROF", "hw", 1);
    unsetenv("MNM_PROF_FOLDED");
    initPhaseProfiler();
    unsetenv("MNM_PROF");
    ASSERT_TRUE(profActive());
    if (perfCountersAvailable()) {
        EXPECT_EQ(profMode(), ProfMode::Hw);
        EXPECT_FALSE(profHwFellBack());
    } else {
        // The degrade path: the request survives as time attribution.
        EXPECT_EQ(profMode(), ProfMode::Time);
        EXPECT_TRUE(profHwFellBack());
    }
}

TEST(ProfTest, OffMeansNothingAccumulates)
{
    ProfReset guard;
    EXPECT_FALSE(profActive());
    {
        PhaseScope run(Phase::Run);
        PhaseScope verdict(Phase::Verdict);
        spinTicks();
    }
    const PhaseTotals totals = threadPhaseTotals();
    for (int p = 0; p < num_phases; ++p) {
        EXPECT_EQ(totals.phase[p].ticks, 0u);
        EXPECT_EQ(totals.phase[p].transitions, 0u);
    }
}

TEST(ProfTest, NestingAttributesExclusiveTime)
{
    ProfReset guard;
    setProfModeForTest(ProfMode::Time);
    {
        PhaseScope run(Phase::Run);
        spinTicks();
        {
            PhaseScope verdict(Phase::Verdict);
            spinTicks();
            {
                // Reentrancy: the same phase nested in itself keeps
                // charging that phase, and both enters count.
                PhaseScope again(Phase::Verdict);
                spinTicks();
            }
        }
        {
            PhaseScope feed(Phase::UpdateFeed);
            spinTicks();
        }
        spinTicks();
    }
    const PhaseTotals totals = threadPhaseTotals();
    EXPECT_EQ(totals.phase[phaseIdx(Phase::Run)].transitions, 1u);
    EXPECT_EQ(totals.phase[phaseIdx(Phase::Verdict)].transitions, 2u);
    EXPECT_EQ(totals.phase[phaseIdx(Phase::UpdateFeed)].transitions, 1u);
    EXPECT_GT(totals.phase[phaseIdx(Phase::Run)].ticks, 0u);
    EXPECT_GT(totals.phase[phaseIdx(Phase::Verdict)].ticks, 0u);
    EXPECT_GT(totals.phase[phaseIdx(Phase::UpdateFeed)].ticks, 0u);
    // Exclusive attribution: phases never bracketed stay empty.
    EXPECT_EQ(totals.phase[phaseIdx(Phase::BatchGen)].ticks, 0u);
    EXPECT_EQ(totals.phase[phaseIdx(Phase::Cold)].ticks, 0u);
    EXPECT_EQ(totals.totalTicks(),
              totals.phase[phaseIdx(Phase::Run)].ticks +
                  totals.phase[phaseIdx(Phase::Verdict)].ticks +
                  totals.phase[phaseIdx(Phase::UpdateFeed)].ticks);
}

TEST(ProfTest, DeltaIsolatesAWindow)
{
    ProfReset guard;
    setProfModeForTest(ProfMode::Time);
    {
        PhaseScope run(Phase::Run);
        spinTicks();
    }
    const PhaseTotals before = threadPhaseTotals();
    {
        PhaseScope verdict(Phase::Verdict);
        spinTicks();
    }
    const PhaseTotals delta =
        phaseTotalsDelta(before, threadPhaseTotals());
    EXPECT_EQ(delta.phase[phaseIdx(Phase::Run)].ticks, 0u);
    EXPECT_EQ(delta.phase[phaseIdx(Phase::Run)].transitions, 0u);
    EXPECT_GT(delta.phase[phaseIdx(Phase::Verdict)].ticks, 0u);
    EXPECT_EQ(delta.phase[phaseIdx(Phase::Verdict)].transitions, 1u);
}

TEST(ProfTest, CounterGroupFallsBackGracefully)
{
    PerfCounterGroup group;
    PerfSample sample;
    if (!group.open()) {
        // The container/non-Linux path: never ok, read reports failure
        // and zeroes the sample instead of leaving garbage.
        EXPECT_FALSE(group.ok());
        EXPECT_FALSE(group.read(sample));
        EXPECT_EQ(sample.cycles, 0u);
        EXPECT_EQ(sample.instructions, 0u);
        EXPECT_FALSE(perfCountersAvailable());
        return;
    }
    ASSERT_TRUE(group.ok());
    ASSERT_TRUE(group.read(sample));
    spinTicks();
    PerfSample later;
    ASSERT_TRUE(group.read(later));
    // Mandatory counters advance across a busy window; monotone totals.
    EXPECT_GT(later.cycles, sample.cycles);
    EXPECT_GT(later.instructions, sample.instructions);
    EXPECT_GE(later.task_clock_ns, sample.task_clock_ns);
    group.close();
    EXPECT_FALSE(group.ok());
    EXPECT_TRUE(perfCountersAvailable());
}

TEST(ProfTest, FoldedStacksRecordThePaths)
{
    ProfReset guard;
    setProfModeForTest(ProfMode::Time);
    {
        PhaseScope run(Phase::Run);
        spinTicks();
        PhaseScope verdict(Phase::Verdict);
        spinTicks();
    }
    flushThreadProf();
    std::ostringstream out;
    EXPECT_EQ(writeFoldedStacks(out), 2u);
    const std::string text = out.str();
    EXPECT_NE(text.find("mnm;run "), std::string::npos);
    EXPECT_NE(text.find("mnm;run;verdict "), std::string::npos);
}

TEST(ProfTest, ManifestCarriesTheProfSection)
{
    ProfReset guard;
    setProfModeForTest(ProfMode::Time);
    globalStats().clear();
    {
        PhaseScope run(Phase::Run);
        spinTicks();
        PhaseScope verdict(Phase::Verdict);
        spinTicks();
    }
    std::ostringstream doc_stream;
    writeRunManifest(doc_stream);
    const std::string doc = doc_stream.str();
    EXPECT_NE(doc.find("\"schema\": \"mnm-run-manifest-v2\""),
              std::string::npos);
    // Schema: metrics.prof.<phase>.{cycles,instr,llc_miss,share,...}
    // plus the mode/fallback/tick markers.
    for (const char *key :
         {"\"prof\":", "\"run\":", "\"verdict\":", "\"cycles\":",
          "\"instr\":", "\"llc_miss\":", "\"share\":", "\"ticks\":",
          "\"transitions\":", "\"mode\":", "\"hw_fallback\":",
          "\"tick_hz\":"}) {
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
    globalStats().clear();
}

TEST(ProfTest, SweepAttributesPerCellAndNothingOnStdout)
{
    ProfReset guard;
    setProfModeForTest(ProfMode::Time);
    globalStats().clear();

    std::vector<SweepVariant> variants = {
        {"HMNM2", paperHierarchy(5), makeHmnmSpec(2)},
    };
    std::vector<SweepCell> cells =
        makeGridCells({"164.gzip"}, variants, 30000);
    ExperimentOptions opts;
    opts.jobs = 2; // exercise the worker-thread flush path

    ::testing::internal::CaptureStdout();
    runSweep(cells, opts);
    foldProfGlobal(globalStats());
    // Purity: the profiler speaks only through manifests/trace/stderr.
    EXPECT_EQ(::testing::internal::GetCapturedStdout(), "");

    StatsRegistry &stats = globalStats();
    EXPECT_TRUE(stats.has("prof.cell.HMNM2.gzip.verdict.cycles"));
    // Batched feed: the update side drains under feed_drain (the
    // per-event update_feed phase only runs on the reference paths).
    EXPECT_TRUE(stats.has("prof.cell.HMNM2.gzip.feed_drain.share"));
    EXPECT_TRUE(stats.has("prof.cell.HMNM2.gzip.hier_walk.ticks"));
    // The pool flushed its worker profile into the global aggregate.
    const PhaseTotals global = globalPhaseTotals();
    EXPECT_GT(global.phase[phaseIdx(Phase::Run)].transitions, 0u);
    EXPECT_GT(global.phase[phaseIdx(Phase::Verdict)].ticks, 0u);
    EXPECT_GT(global.phase[phaseIdx(Phase::FeedDrain)].ticks, 0u);
    globalStats().clear();
}

TEST(ProfTest, WorkerProcessesShipAttributionOverTheResultPipe)
{
    ProfReset guard;
    setProfModeForTest(ProfMode::Time);
    globalStats().clear();

    std::vector<SweepVariant> variants = {
        {"HMNM2", paperHierarchy(5), makeHmnmSpec(2)},
    };
    std::vector<SweepCell> cells =
        makeGridCells({"164.gzip", "181.mcf"}, variants, 30000);
    ExperimentOptions opts;
    opts.workers = 2; // process pool: prof crosses a fork boundary

    ::testing::internal::CaptureStdout();
    runSweep(cells, opts);
    EXPECT_EQ(::testing::internal::GetCapturedStdout(), "");

    // The workers measured each cell in their own process and shipped
    // the delta home in the response frame; the supervisor folded it
    // into the same prof.cell.* / prof.worker.w<k>.* metrics the
    // thread pool produces.
    StatsRegistry &stats = globalStats();
    EXPECT_TRUE(stats.has("prof.cell.HMNM2.gzip.verdict.cycles"));
    EXPECT_TRUE(stats.has("prof.cell.HMNM2.gzip.feed_drain.share"));
    EXPECT_TRUE(stats.has("prof.cell.HMNM2.mcf.hier_walk.ticks"));
    EXPECT_TRUE(stats.has("prof.worker.w0.run.ticks") ||
                stats.has("prof.worker.w1.run.ticks"));
    globalStats().clear();
}

TEST(ProfTest, SimulationIsByteIdenticalUnderProfiling)
{
    ProfReset guard;
    // The functional results a bench prints must not depend on the
    // profiling mode: the scopes only observe.
    MemSimResult off_result;
    {
        resetPhaseProfilerForTest();
        auto workload = makeSpecWorkload("164.gzip");
        MemorySimulator sim(paperHierarchy(5), makeHmnmSpec(2));
        off_result = sim.run(*workload, 30000);
    }
    MemSimResult on_result;
    {
        resetPhaseProfilerForTest();
        setProfModeForTest(ProfMode::Time);
        auto workload = makeSpecWorkload("164.gzip");
        MemorySimulator sim(paperHierarchy(5), makeHmnmSpec(2));
        on_result = sim.run(*workload, 30000);
    }
    EXPECT_EQ(off_result.requests, on_result.requests);
    EXPECT_EQ(off_result.total_access_cycles,
              on_result.total_access_cycles);
    EXPECT_EQ(off_result.miss_cycles, on_result.miss_cycles);
    EXPECT_EQ(off_result.memory_accesses, on_result.memory_accesses);
    EXPECT_EQ(off_result.coverage.identified(),
              on_result.coverage.identified());
}

} // anonymous namespace
} // namespace mnm
