/**
 * @file
 * The RNG-draw-order contract behind the MNM_OVERLAP stage decoupling,
 * proven per workload: every producer schedule -- single-step next(),
 * synchronous full batches, the double-buffered producer thread, the
 * software-pipelined slices, and the fused request producer -- must
 * emit bit-for-bit the same stream. All twenty named workloads run
 * through every axis; a divergence reports the first divergent index
 * so a generator regression points at the exact draw that broke.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/batch_pipeline.hh"
#include "trace/request_batch.hh"
#include "trace/spec2000.hh"
#include "trace/synthetic.hh"

namespace mnm
{
namespace
{

/** Long enough to cross several batch boundaries (capacity 4096) and
 *  land an odd remainder in the final slice, short enough that 20
 *  workloads x all axes stay test-suite fast. */
constexpr std::uint64_t stream_instructions =
    2 * InstructionBatch::capacity + 1337;

/** L1I-like line size for the request-derivation axes. */
constexpr unsigned fetch_block_bits = 6;

std::vector<Instruction>
collectSingleStep(WorkloadGenerator &workload, std::uint64_t n)
{
    std::vector<Instruction> out(n);
    for (std::uint64_t i = 0; i < n; ++i)
        workload.next(out[i]);
    return out;
}

std::vector<Instruction>
collectPipeline(WorkloadGenerator &workload, std::uint64_t n,
                PipelineMode mode)
{
    std::vector<Instruction> out;
    out.reserve(n);
    BatchPipeline pipeline(workload, n, mode);
    while (const InstructionBatch *batch = pipeline.acquire())
        out.insert(out.end(), batch->records,
                   batch->records + batch->size);
    return out;
}

/** Field-exact comparison, reporting the first divergent instruction
 *  index (the generator draws in instruction order, so the first
 *  divergent instruction pins the first divergent draw). */
void
expectSameInstructions(const std::vector<Instruction> &got,
                       const std::vector<Instruction> &want,
                       const std::string &axis)
{
    ASSERT_EQ(got.size(), want.size()) << axis;
    for (std::size_t i = 0; i < got.size(); ++i) {
        const Instruction &g = got[i];
        const Instruction &w = want[i];
        const bool same = g.pc == w.pc && g.cls == w.cls &&
                          g.mem_addr == w.mem_addr && g.dep1 == w.dep1 &&
                          g.dep2 == w.dep2 &&
                          g.exec_latency == w.exec_latency &&
                          g.mispredicted == w.mispredicted;
        ASSERT_TRUE(same)
            << axis << ": first divergent instruction index " << i
            << " (pc " << std::hex << g.pc << " vs " << w.pc
            << std::dec << ")";
    }
}

struct RequestStream
{
    std::vector<Addr> addr;
    std::vector<std::uint8_t> kind;
    std::uint64_t instructions = 0;
    std::uint64_t fetch_requests = 0;
    std::uint64_t data_requests = 0;

    void
    append(const RequestBatch &batch)
    {
        addr.insert(addr.end(), batch.addr, batch.addr + batch.size);
        kind.insert(kind.end(), batch.kind, batch.kind + batch.size);
        instructions += batch.instructions;
        fetch_requests += batch.fetch_requests;
        data_requests += batch.data_requests;
    }
};

void
expectSameRequests(const RequestStream &got, const RequestStream &want,
                   const std::string &axis)
{
    EXPECT_EQ(got.instructions, want.instructions) << axis;
    EXPECT_EQ(got.fetch_requests, want.fetch_requests) << axis;
    EXPECT_EQ(got.data_requests, want.data_requests) << axis;
    ASSERT_EQ(got.addr.size(), want.addr.size()) << axis;
    for (std::size_t i = 0; i < got.addr.size(); ++i) {
        ASSERT_TRUE(got.addr[i] == want.addr[i] &&
                    got.kind[i] == want.kind[i])
            << axis << ": first divergent request index " << i;
    }
}

class StreamIdentityTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StreamIdentityTest, PipelineSchedulesMatchSingleStep)
{
    // next() one instruction at a time is the reference schedule. The
    // batch pipeline must replay it exactly under both non-Auto modes:
    // Threaded forces the producer-thread handoff even on a single
    // hardware thread, Sliced forces the software-pipelined slices
    // even on many.
    auto reference = makeSpecWorkload(GetParam());
    const std::vector<Instruction> want =
        collectSingleStep(*reference, stream_instructions);

    for (PipelineMode mode :
         {PipelineMode::Threaded, PipelineMode::Sliced}) {
        auto workload = makeSpecWorkload(GetParam());
        expectSameInstructions(
            collectPipeline(*workload, stream_instructions, mode), want,
            mode == PipelineMode::Threaded ? "threaded pipeline"
                                           : "sliced pipeline");
    }
}

TEST_P(StreamIdentityTest, FusedRequestsMatchDerivedRequests)
{
    // The fused generate+derive producer (SyntheticWorkload's
    // nextRequests override) against deriving from full instruction
    // batches (the base-class path), across several batches so the
    // carried state -- rng and fetch-dedup line -- is covered too.
    auto batch_workload = makeSpecWorkload(GetParam());
    RequestStream want;
    {
        InstructionBatch scratch;
        FetchDedup dedup{fetch_block_bits, invalid_addr};
        RequestBatch derived;
        std::uint64_t remaining = stream_instructions;
        while (remaining > 0) {
            batch_workload->nextBatch(scratch, remaining);
            derived.clear();
            deriveRequests(derived, dedup, scratch);
            want.append(derived);
            remaining -= scratch.size;
        }
    }

    auto fused_workload = makeSpecWorkload(GetParam());
    RequestStream got;
    {
        FetchDedup dedup{fetch_block_bits, invalid_addr};
        RequestBatch batch;
        std::uint64_t remaining = stream_instructions;
        while (remaining > 0) {
            fused_workload->nextRequests(batch, dedup, remaining);
            got.append(batch);
            remaining -= batch.instructions;
        }
    }
    expectSameRequests(got, want, "fused nextRequests");

    // And mid-stream interchangeability: alternating the two producers
    // on one generator must still replay the reference stream -- the
    // fused producer leaves the rng and dedup state exactly where the
    // derive-from-batch path would.
    auto mixed_workload = makeSpecWorkload(GetParam());
    RequestStream mixed;
    {
        InstructionBatch scratch;
        FetchDedup dedup{fetch_block_bits, invalid_addr};
        RequestBatch batch;
        std::uint64_t remaining = stream_instructions;
        bool fused = true;
        while (remaining > 0) {
            // Ragged windows so the switchovers land mid-batch.
            const std::uint64_t window =
                std::min<std::uint64_t>(remaining, fused ? 1000 : 700);
            if (fused) {
                mixed_workload->nextRequests(batch, dedup, window);
                mixed.append(batch);
                remaining -= batch.instructions;
            } else {
                mixed_workload->nextBatch(scratch, window);
                batch.clear();
                deriveRequests(batch, dedup, scratch);
                mixed.append(batch);
                remaining -= scratch.size;
            }
            fused = !fused;
        }
    }
    expectSameRequests(mixed, want, "alternating producers");
}

TEST_P(StreamIdentityTest, RequestPipelineSchedulesMatchSynchronous)
{
    // The fused request stream through both pipeline schedules against
    // the synchronous fill loop: the handoff (thread or slice) must
    // not move a single draw.
    auto reference = makeSpecWorkload(GetParam());
    RequestStream want;
    {
        FetchDedup dedup{fetch_block_bits, invalid_addr};
        RequestBatch batch;
        std::uint64_t remaining = stream_instructions;
        while (remaining > 0) {
            reference->nextRequests(batch, dedup, remaining);
            want.append(batch);
            remaining -= batch.instructions;
        }
    }

    for (PipelineMode mode :
         {PipelineMode::Threaded, PipelineMode::Sliced}) {
        auto workload = makeSpecWorkload(GetParam());
        FetchDedup dedup{fetch_block_bits, invalid_addr};
        RequestStream got;
        {
            RequestPipeline pipeline(*workload, dedup,
                                     stream_instructions, mode);
            while (const RequestBatch *batch = pipeline.acquire())
                got.append(*batch);
        }
        expectSameRequests(got, want,
                           mode == PipelineMode::Threaded
                               ? "threaded request pipeline"
                               : "sliced request pipeline");
        // The borrowed dedup state must land where the synchronous
        // producer leaves it (the simulator's fetch line carries
        // run-to-run).
        EXPECT_NE(dedup.cur_line, invalid_addr);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, StreamIdentityTest,
                         ::testing::ValuesIn(specAllNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

} // anonymous namespace
} // namespace mnm
