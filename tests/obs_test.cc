/**
 * @file
 * The observability layer (src/obs/): JSON writer formatting, stats
 * registry registration/serialization, the MNM decision confusion
 * matrix on the paper's Table 1 scenario, sweep telemetry determinism
 * across job counts, and the run-manifest/trace artifact writers.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "obs/confusion.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/config.hh"
#include "sim/runner.hh"

namespace mnm
{
namespace
{

// ---------------------------------------------------------------- JSON

TEST(JsonWriterTest, CompactDocument)
{
    std::ostringstream out;
    JsonWriter json(out, /*pretty=*/false);
    json.beginObject();
    json.field("name", "mnm");
    json.field("count", std::uint64_t{42});
    json.field("ratio", 0.25);
    json.field("on", true);
    json.key("levels");
    json.beginArray();
    json.value(2);
    json.value(3);
    json.endArray();
    json.key("none");
    json.valueNull();
    json.endObject();
    EXPECT_TRUE(json.done());
    EXPECT_EQ(out.str(), "{\"name\":\"mnm\",\"count\":42,\"ratio\":0.25,"
                         "\"on\":true,\"levels\":[2,3],\"none\":null}");
}

TEST(JsonWriterTest, PrettyIndentsTwoSpaces)
{
    std::ostringstream out;
    JsonWriter json(out, /*pretty=*/true);
    json.beginObject();
    json.key("a");
    json.beginObject();
    json.field("b", 1);
    json.endObject();
    json.endObject();
    EXPECT_EQ(out.str(), "{\n  \"a\": {\n    \"b\": 1\n  }\n}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::quoted("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(JsonWriter::quoted("line\nbreak\ttab"),
              "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(JsonWriter::quoted(std::string_view("\x01", 1)),
              "\"\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull)
{
    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginArray();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(1.5);
    json.endArray();
    EXPECT_EQ(out.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, RawValueSplicesFragment)
{
    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginObject();
    json.key("metrics");
    json.rawValue("{\"x\":1}");
    json.endObject();
    EXPECT_EQ(out.str(), "{\"metrics\":{\"x\":1}}");
}

TEST(JsonWriterDeathTest, RejectsMalformedStructure)
{
    std::ostringstream out;
    EXPECT_DEATH(
        {
            JsonWriter json(out, false);
            json.beginObject();
            json.value(1); // value without a key
        },
        "without a key");
    EXPECT_DEATH(
        {
            JsonWriter json(out, false);
            json.beginArray();
            json.key("k"); // key inside an array
        },
        "key");
}

// ------------------------------------------------------------ registry

TEST(StatsRegistryTest, FindOrCreateReturnsSameObject)
{
    StatsRegistry reg;
    Counter &c = reg.counter("a.b.hits");
    ++c;
    reg.counter("a.b.hits") += 2;
    EXPECT_EQ(reg.counter("a.b.hits").value(), 3u);
    EXPECT_TRUE(reg.has("a.b.hits"));
    EXPECT_FALSE(reg.has("a.b"));
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatsRegistryTest, SerializationRoundTrip)
{
    StatsRegistry reg;
    reg.addCounter("sim.requests", 10);
    reg.setGauge("sim.ratio", 0.5);
    reg.runningStat("sim.lat").add(2.0);
    reg.runningStat("sim.lat").add(4.0);
    reg.histogram("sim.hist", 2, 1.0).add(0.5);
    reg.addCounter("top", 1);

    EXPECT_EQ(
        reg.toJson({}, /*pretty=*/false),
        "{\"sim\":{"
        "\"hist\":{\"samples\":1,\"bucket_width\":1,\"counts\":[1,0],"
        "\"overflow\":0},"
        "\"lat\":{\"count\":2,\"sum\":6,\"mean\":3,\"min\":2,\"max\":4,"
        "\"stddev\":1},"
        "\"ratio\":0.5,"
        "\"requests\":10"
        "},\"top\":1}");
}

TEST(StatsRegistryTest, SkipPrefixesDropSubtrees)
{
    StatsRegistry reg;
    reg.addCounter("runner.cells", 8);
    reg.setGauge("runner.wall_ms", 12.5);
    reg.addCounter("sweep.hits", 3);
    EXPECT_EQ(reg.toJson({"runner"}, false), "{\"sweep\":{\"hits\":3}}");
    // The prefix matches whole segments, not substrings.
    reg.addCounter("runnerx", 1);
    EXPECT_EQ(reg.toJson({"runner"}, false),
              "{\"runnerx\":1,\"sweep\":{\"hits\":3}}");
}

TEST(StatsRegistryTest, ClearEmptiesTheRegistry)
{
    StatsRegistry reg;
    reg.addCounter("a", 1);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.toJson({}, false), "{}");
}

TEST(StatsRegistryDeathTest, KindAndNestingConflictsPanic)
{
    StatsRegistry reg;
    reg.counter("a.b");
    EXPECT_DEATH(reg.gauge("a.b"), "different kind");
    EXPECT_DEATH(reg.counter("a.b.c"), "conflicts");
    EXPECT_DEATH(reg.counter("a"), "conflicts");
    reg.histogram("h", 4, 1.0);
    EXPECT_DEATH(reg.histogram("h", 8, 1.0), "different shape");
}

TEST(StatsRegistryTest, SanitizeMetricSegment)
{
    EXPECT_EQ(sanitizeMetricSegment("164.gzip"), "164_gzip");
    EXPECT_EQ(sanitizeMetricSegment("RMNM_128_1"), "RMNM_128_1");
    EXPECT_EQ(sanitizeMetricSegment("a b·c"), "a_b__c");
    EXPECT_EQ(sanitizeMetricSegment(""), "_");
}

// --------------------------------------------------- confusion matrix

/** The Table 1 two-level machine (direct-mapped 4-block L1, 8-block
 *  L2) that RmnmTest.PaperTable1Scenario locks down. */
HierarchyParams
table1Params()
{
    HierarchyParams params;
    LevelParams l1;
    l1.data.name = "L1";
    l1.data.capacity_bytes = 4 * 32;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 1;
    LevelParams l2;
    l2.data.name = "L2";
    l2.data.capacity_bytes = 8 * 32;
    l2.data.associativity = 1;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 4;
    params.levels = {l1, l2};
    params.memory_latency = 50;
    return params;
}

TEST(DecisionMatrixTest, Table1ScenarioCountsPerLevel)
{
    CacheHierarchy hierarchy(table1Params());
    MnmUnit mnm(makeRmnmSpec(128, 1), hierarchy);

    DecisionMatrix decisions;
    auto access = [&](Addr addr) {
        BypassMask mask = mnm.computeBypass(AccessType::Load, addr);
        decisions.recordAccess(
            hierarchy.access(AccessType::Load, addr, mask));
    };

    // The paper's sequence: four conflicting blocks march through the
    // shared set; re-accessing the first is an RMNM-identified L2 miss.
    access(0x2f00);
    access(0x2c00);
    access(0x2800);
    access(0x2400);
    access(0x2f00);

    const DecisionMatrix::Cells &l2 = decisions.at(2);
    EXPECT_EQ(l2.predicted_miss_actual_miss, 1u); // the 0x2f00 re-access
    EXPECT_EQ(l2.maybe_actual_miss, 4u);          // the cold misses
    EXPECT_EQ(l2.maybe_actual_hit, 0u);
    EXPECT_EQ(l2.predicted_miss_actual_hit, 0u);
    EXPECT_EQ(l2.decisions(), 5u);
    EXPECT_EQ(l2.actualMisses(), 5u);

    // Level 1 is never predicted; no decisions accrue there.
    EXPECT_EQ(decisions.at(1).decisions(), 0u);

    EXPECT_DOUBLE_EQ(decisions.coverage(), 1.0 / 5.0);
    EXPECT_DOUBLE_EQ(decisions.coverageAt(2), 1.0 / 5.0);
    EXPECT_EQ(decisions.forbidden(), 0u);
    decisions.assertSound("table1");
}

TEST(DecisionMatrixTest, MergeAndResetAreCellWise)
{
    CacheHierarchy hierarchy(table1Params());
    MnmUnit mnm(makeRmnmSpec(128, 1), hierarchy);
    DecisionMatrix a;
    auto access = [&](Addr addr) {
        BypassMask mask = mnm.computeBypass(AccessType::Load, addr);
        a.recordAccess(hierarchy.access(AccessType::Load, addr, mask));
    };
    access(0x2f00);
    access(0x2c00);

    DecisionMatrix b;
    b.merge(a);
    b.merge(a);
    EXPECT_EQ(b.at(2).decisions(), 2 * a.at(2).decisions());
    EXPECT_EQ(b.totals().decisions(), 2 * a.totals().decisions());

    b.reset();
    EXPECT_EQ(b.totals().decisions(), 0u);
}

TEST(DecisionMatrixTest, RegisterIntoEmitsNonEmptyLevelsOnly)
{
    DecisionMatrix decisions;
    StatsRegistry reg;
    decisions.registerInto(reg, "x.confusion");
    EXPECT_EQ(reg.size(), 0u); // nothing recorded, nothing registered

    CacheHierarchy hierarchy(table1Params());
    MnmUnit mnm(makeRmnmSpec(128, 1), hierarchy);
    BypassMask mask = mnm.computeBypass(AccessType::Load, 0x2f00);
    decisions.recordAccess(
        hierarchy.access(AccessType::Load, 0x2f00, mask));
    decisions.registerInto(reg, "x.confusion");
    EXPECT_TRUE(reg.has("x.confusion.l2.maybe_actual_miss"));
    EXPECT_EQ(reg.counter("x.confusion.l2.maybe_actual_miss").value(),
              1u);
    EXPECT_FALSE(reg.has("x.confusion.l1.maybe_actual_miss"));
}

TEST(DecisionMatrixDeathTest, ForbiddenCellFailsAssertSound)
{
    DecisionMatrix decisions;
    decisions.setForbidden(2, 1);
    EXPECT_EQ(decisions.forbidden(), 1u);
    EXPECT_DEATH(decisions.assertSound("test"),
                 "predicted-miss/actual-hit");
}

// ------------------------------------------------- sweep telemetry

/** Small two-cell sweep grid for telemetry tests. */
std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepVariant> variants = {
        {"RMNM_128_1", paperHierarchy(3), makeRmnmSpec(128, 1)},
    };
    return makeGridCells({"164.gzip", "181.mcf"}, variants, 30000);
}

TEST(SweepTelemetryTest, RegistryIdenticalAcrossJobCounts)
{
    std::vector<SweepCell> cells = smallGrid();

    globalStats().clear();
    ExperimentOptions serial;
    serial.jobs = 1;
    runSweep(cells, serial);
    std::string from_serial = globalStats().toJson({"runner"});

    globalStats().clear();
    ExperimentOptions parallel;
    parallel.jobs = 8;
    runSweep(cells, parallel);
    std::string from_parallel = globalStats().toJson({"runner"});

    EXPECT_EQ(from_serial, from_parallel);
    EXPECT_NE(from_serial, "{}");
    globalStats().clear();
}

TEST(SweepTelemetryTest, FoldsCellMetricsUnderSweepPrefix)
{
    globalStats().clear();
    ExperimentOptions opts;
    opts.jobs = 2;
    std::vector<MemSimResult> results = runSweep(smallGrid(), opts);

    StatsRegistry &stats = globalStats();
    EXPECT_EQ(
        stats.counter("sweep.RMNM_128_1.gzip.requests").value(),
        results[0].requests);
    EXPECT_EQ(
        stats.counter("sweep.RMNM_128_1.mcf.memory_accesses").value(),
        results[1].memory_accesses);
    EXPECT_TRUE(stats.has(
        "sweep.RMNM_128_1.gzip.confusion.l2.predicted_miss_actual_miss"));
    // Wall-clock telemetry lands under runner.*.
    EXPECT_EQ(stats.counter("runner.cells").value(), 2u);
    EXPECT_EQ(stats.counter("runner.sweeps").value(), 1u);
    EXPECT_EQ(stats.runningStat("runner.cell_wall_ms").count(), 2u);
    globalStats().clear();
}

// ------------------------------------------------------- artifacts

TEST(ManifestTest, WritesSchemaConfigAndMetrics)
{
    globalStats().clear();
    globalStats().addCounter("demo.value", 7);
    setRunName("obs_test");
    setRunConfig(12345, {"164.gzip"}, 3, 0, false);

    std::ostringstream out;
    writeRunManifest(out);
    std::string doc = out.str();
    EXPECT_NE(doc.find("\"schema\": \"mnm-run-manifest-v2\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"run\": \"obs_test\""), std::string::npos);
    EXPECT_NE(doc.find("\"instructions\": 12345"), std::string::npos);
    EXPECT_NE(doc.find("\"164.gzip\""), std::string::npos);
    EXPECT_NE(doc.find("\"value\": 7"), std::string::npos);
    EXPECT_NE(doc.find("\"git_describe\""), std::string::npos);
    globalStats().clear();
}

TEST(ManifestTest, ArtifactFilesAreWrittenOnDemand)
{
    globalStats().clear();
    globalStats().addCounter("demo.file", 1);
    globalTrace().clear();
    globalTrace().addCompleteEvent("cell", "sweep", 0, 100, 50,
                                   {{"app", "164.gzip"}});

    std::string stats_path = ::testing::TempDir() + "obs_stats.json";
    std::string trace_path = ::testing::TempDir() + "obs_trace.json";
    setRunArtifactPathsForTest(stats_path, trace_path);
    writeRunArtifacts();
    setRunArtifactPathsForTest("", "");

    std::ifstream stats_in(stats_path);
    ASSERT_TRUE(stats_in.good());
    std::stringstream stats_doc;
    stats_doc << stats_in.rdbuf();
    EXPECT_NE(stats_doc.str().find("mnm-run-manifest-v2"),
              std::string::npos);
    EXPECT_NE(stats_doc.str().find("\"file\": 1"), std::string::npos);

    std::ifstream trace_in(trace_path);
    ASSERT_TRUE(trace_in.good());
    std::stringstream trace_doc;
    trace_doc << trace_in.rdbuf();
    EXPECT_NE(trace_doc.str().find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(trace_doc.str().find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace_doc.str().find("\"dur\": 50"), std::string::npos);

    std::remove(stats_path.c_str());
    std::remove(trace_path.c_str());
    globalStats().clear();
    globalTrace().clear();
}

TEST(TraceLogTest, WritesChromeObjectFormat)
{
    TraceLog log;
    log.addCompleteEvent("a", "sweep", 2, 10, 5);
    log.addCompleteEvent("b", "sweep", 0, 20, 1, {{"k", "v"}});
    EXPECT_EQ(log.size(), 2u);

    std::ostringstream out;
    log.write(out);
    std::string doc = out.str();
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(doc.find("\"tid\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"k\": \"v\""), std::string::npos);

    log.clear();
    EXPECT_EQ(log.size(), 0u);
}

} // anonymous namespace
} // namespace mnm
