/**
 * @file
 * Unit tests for the multi-level hierarchy: topology building, probe
 * ordering, latency accounting, the fill path, bypass handling, and the
 * listener event feed the MNM depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

CacheParams
cacheParams(const char *name, std::uint64_t capacity, std::uint32_t assoc,
            std::uint32_t block, Cycles latency)
{
    CacheParams p;
    p.name = name;
    p.capacity_bytes = capacity;
    p.associativity = assoc;
    p.block_bytes = block;
    p.hit_latency = latency;
    return p;
}

/** A small 3-level hierarchy: split L1, unified L2/L3. */
HierarchyParams
smallParams()
{
    HierarchyParams params;
    LevelParams l1;
    l1.split = true;
    l1.instr = cacheParams("il1", 1024, 1, 32, 2);
    l1.data = cacheParams("dl1", 1024, 1, 32, 2);
    LevelParams l2;
    l2.data = cacheParams("ul2", 4096, 2, 32, 8);
    LevelParams l3;
    l3.data = cacheParams("ul3", 16384, 4, 64, 18);
    params.levels = {l1, l2, l3};
    params.memory_latency = 100;
    return params;
}

/** Collects listener events for inspection. */
class RecordingListener : public CacheEventListener
{
  public:
    struct Event
    {
        bool placement;
        CacheId cache;
        BlockAddr block;
    };
    std::vector<Event> events;

    void
    onPlacement(CacheId id, BlockAddr block) override
    {
        events.push_back({true, id, block});
    }
    void
    onReplacement(CacheId id, BlockAddr block) override
    {
        events.push_back({false, id, block});
    }
};

TEST(HierarchyTest, TopologyCounts)
{
    CacheHierarchy h(smallParams());
    EXPECT_EQ(h.levels(), 3u);
    EXPECT_EQ(h.numCaches(), 4u); // il1, dl1, ul2, ul3
    EXPECT_EQ(h.levelOf(0), 1u);
    EXPECT_EQ(h.levelOf(1), 1u);
    EXPECT_EQ(h.levelOf(2), 2u);
    EXPECT_EQ(h.levelOf(3), 3u);
}

TEST(HierarchyTest, PathsShareUnifiedLevels)
{
    CacheHierarchy h(smallParams());
    const auto &ipath = h.path(AccessType::InstFetch);
    const auto &dpath = h.path(AccessType::Load);
    ASSERT_EQ(ipath.size(), 3u);
    ASSERT_EQ(dpath.size(), 3u);
    EXPECT_NE(ipath[0], dpath[0]); // split L1
    EXPECT_EQ(ipath[1], dpath[1]); // unified L2
    EXPECT_EQ(ipath[2], dpath[2]); // unified L3
}

TEST(HierarchyTest, PaperSevenStructures)
{
    CacheHierarchy h(paperHierarchy(5));
    EXPECT_EQ(h.levels(), 5u);
    EXPECT_EQ(h.numCaches(), 7u); // the paper's count
}

TEST(HierarchyTest, ColdMissGoesToMemory)
{
    CacheHierarchy h(smallParams());
    AccessResult r = h.access(AccessType::Load, 0x1000);
    EXPECT_TRUE(r.from_memory);
    EXPECT_EQ(r.supply_level, 4u);
    // All three levels probed and missed: 2 + 8 + 18 + 100.
    EXPECT_EQ(r.latency, 128u);
    EXPECT_EQ(r.num_probes, 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(r.probes[i].hit);
        EXPECT_FALSE(r.probes[i].bypassed);
    }
}

TEST(HierarchyTest, SecondAccessHitsL1)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Load, 0x1000);
    AccessResult r = h.access(AccessType::Load, 0x1000);
    EXPECT_FALSE(r.from_memory);
    EXPECT_EQ(r.supply_level, 1u);
    EXPECT_EQ(r.latency, 2u);
    EXPECT_EQ(r.num_probes, 1u);
    EXPECT_TRUE(r.probes[0].hit);
}

TEST(HierarchyTest, FillPathPopulatesAllLevels)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Load, 0x2000);
    for (std::uint32_t level = 1; level <= 3; ++level) {
        const Cache &c = h.cacheAt(level, AccessType::Load);
        EXPECT_TRUE(c.contains(c.blockAddr(0x2000)))
            << "level " << level;
    }
}

TEST(HierarchyTest, L1EvictionLeavesL2Copy)
{
    CacheHierarchy h(smallParams());
    // dl1: 1KB direct-mapped, 32 sets. 0x0 and 0x400 conflict in L1 but
    // not in the 64-set ul2.
    h.access(AccessType::Load, 0x0);
    h.access(AccessType::Load, 0x400);
    const Cache &dl1 = h.cacheAt(1, AccessType::Load);
    const Cache &ul2 = h.cacheAt(2, AccessType::Load);
    EXPECT_FALSE(dl1.contains(dl1.blockAddr(0x0)));
    EXPECT_TRUE(ul2.contains(ul2.blockAddr(0x0)));
    // Re-access 0x0: L1 misses, L2 supplies.
    AccessResult r = h.access(AccessType::Load, 0x0);
    EXPECT_EQ(r.supply_level, 2u);
    EXPECT_EQ(r.latency, 2u + 8u);
}

TEST(HierarchyTest, InstFetchUsesInstructionPath)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::InstFetch, 0x3000);
    const Cache &il1 = h.cacheAt(1, AccessType::InstFetch);
    const Cache &dl1 = h.cacheAt(1, AccessType::Load);
    EXPECT_TRUE(il1.contains(il1.blockAddr(0x3000)));
    EXPECT_FALSE(dl1.contains(dl1.blockAddr(0x3000)));
}

TEST(HierarchyTest, StoreMarksL1Dirty)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Store, 0x0);
    // Conflict-evict the dirty line from dl1.
    h.access(AccessType::Load, 0x400);
    const Cache &dl1 = h.cacheAt(1, AccessType::Load);
    EXPECT_EQ(dl1.stats().writebacks.value(), 1u);
}

TEST(HierarchyTest, BypassSkipsProbeAndLatency)
{
    CacheHierarchy h(smallParams());
    // Bypass ul2 (id 2) on a cold access: the L2 probe cost (8) should
    // vanish while the walk still reaches memory.
    BypassMask mask;
    mask.set(2);
    AccessResult r = h.access(AccessType::Load, 0x5000, mask);
    EXPECT_TRUE(r.from_memory);
    EXPECT_EQ(r.latency, 2u + 18u + 100u);
    ASSERT_EQ(r.num_probes, 3u);
    EXPECT_TRUE(r.probes[1].bypassed);
    EXPECT_EQ(h.cache(2).stats().bypasses.value(), 1u);
    EXPECT_EQ(h.cache(2).stats().accesses.value(), 0u);
}

TEST(HierarchyTest, BypassedLevelStillFilled)
{
    CacheHierarchy h(smallParams());
    BypassMask mask;
    mask.set(2);
    h.access(AccessType::Load, 0x5000, mask);
    const Cache &ul2 = h.cache(2);
    EXPECT_TRUE(ul2.contains(ul2.blockAddr(0x5000)));
}

TEST(HierarchyTest, ListenerSeesPlacements)
{
    CacheHierarchy h(smallParams());
    RecordingListener listener;
    h.setListener(&listener);
    h.access(AccessType::Load, 0x1000);
    // Cold access: placements into ul3, ul2, dl1 (no evictions).
    ASSERT_EQ(listener.events.size(), 3u);
    for (const auto &e : listener.events)
        EXPECT_TRUE(e.placement);
    // Fill happens top-down from the supplier: ul3 (id 3) first.
    EXPECT_EQ(listener.events[0].cache, 3u);
    EXPECT_EQ(listener.events[2].cache, 1u); // dl1 is id 1
}

TEST(HierarchyTest, ListenerSeesReplacementBeforePlacement)
{
    CacheHierarchy h(smallParams());
    RecordingListener listener;
    h.setListener(&listener);
    h.access(AccessType::Load, 0x0);
    listener.events.clear();
    h.access(AccessType::Load, 0x400); // L1 conflict with 0x0
    // dl1's fill must report the eviction of 0x0 before the placement.
    std::vector<RecordingListener::Event> dl1_events;
    for (const auto &e : listener.events) {
        if (e.cache == 1)
            dl1_events.push_back(e);
    }
    ASSERT_EQ(dl1_events.size(), 2u);
    EXPECT_FALSE(dl1_events[0].placement);
    EXPECT_EQ(dl1_events[0].block, 0u);
    EXPECT_TRUE(dl1_events[1].placement);
}

TEST(HierarchyTest, ListenerBlockGranularityPerCache)
{
    CacheHierarchy h(smallParams());
    RecordingListener listener;
    h.setListener(&listener);
    h.access(AccessType::Load, 0x1040);
    // ul3 has 64B blocks (block addr 0x41), L1/L2 32B (block 0x82).
    ASSERT_EQ(listener.events.size(), 3u);
    EXPECT_EQ(listener.events[0].cache, 3u);
    EXPECT_EQ(listener.events[0].block, 0x1040u >> 6);
    EXPECT_EQ(listener.events[2].block, 0x1040u >> 5);
}

TEST(HierarchyTest, DirtyEvictionWritesBackToNextLevel)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Store, 0x0);   // dirty in dl1
    AccessResult r = h.access(AccessType::Load, 0x400); // evicts 0x0
    // The dirty victim is absorbed by ul2 (which holds a clean copy).
    ASSERT_GE(r.num_writebacks, 1u);
    EXPECT_EQ(r.writebacks[0].cache, 2u); // ul2
    EXPECT_TRUE(r.writebacks[0].absorbed);
    EXPECT_EQ(r.memory_writebacks, 0u);
    EXPECT_EQ(h.cache(2).stats().writeback_absorbs.value(), 1u);
}

TEST(HierarchyTest, AbsorbedWritebackLaterDrainsFromL2)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Store, 0x0);
    h.access(AccessType::Load, 0x400); // 0x0 dirty lands in ul2
    // Thrash ul2's set 0 so the (now dirty) 0x0 is evicted from ul2;
    // its writeback must continue to ul3, which holds a copy.
    Cache &ul2 = h.cacheAt(2, AccessType::Load);
    EXPECT_TRUE(ul2.contains(0));
    AccessResult r1 = h.access(AccessType::Load, 64 << 5);  // set 0
    AccessResult r2 = h.access(AccessType::Load, 128 << 5); // set 0
    (void)r1;
    (void)r2;
    std::uint64_t absorbs = h.cache(3).stats().writeback_absorbs.value();
    EXPECT_GE(absorbs, 1u);
}

TEST(HierarchyTest, WritebackModelingCanBeDisabled)
{
    HierarchyParams params = smallParams();
    params.model_writebacks = false;
    CacheHierarchy h(params);
    h.access(AccessType::Store, 0x0);
    AccessResult r = h.access(AccessType::Load, 0x400);
    EXPECT_EQ(r.num_writebacks, 0u);
    EXPECT_EQ(h.cache(2).stats().writeback_probes.value(), 0u);
}

TEST(HierarchyTest, CleanEvictionsProduceNoWritebacks)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Load, 0x0);
    AccessResult r = h.access(AccessType::Load, 0x400);
    EXPECT_EQ(r.num_writebacks, 0u);
}

TEST(HierarchyTest, WritebackToMemoryWhenNoLowerCopy)
{
    // Single-level hierarchy: a dirty eviction can only go to memory.
    HierarchyParams params;
    LevelParams l1;
    l1.data = CacheParams();
    l1.data.name = "only";
    l1.data.capacity_bytes = 128;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 1;
    params.levels = {l1};
    params.memory_latency = 50;
    CacheHierarchy h(params);
    h.access(AccessType::Store, 0x0);
    AccessResult r = h.access(AccessType::Load, 0x80); // conflict
    EXPECT_EQ(r.memory_writebacks, 1u);
    EXPECT_EQ(h.memoryWritebacks(), 1u);
}

TEST(HierarchyTest, FlushAllEmptiesEverything)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Load, 0x1000);
    h.flushAll();
    for (CacheId id = 0; id < h.numCaches(); ++id)
        EXPECT_EQ(h.cache(id).blocksResident(), 0u);
}

TEST(HierarchyTest, MemoryAccessCounter)
{
    CacheHierarchy h(smallParams());
    h.access(AccessType::Load, 0x1000);
    h.access(AccessType::Load, 0x1000);
    h.access(AccessType::Load, 0x9000);
    EXPECT_EQ(h.memoryAccesses(), 2u);
}

TEST(HierarchyTest, NonInclusive)
{
    // Evicting a block from ul2 must NOT invalidate the L1 copy.
    CacheHierarchy h(smallParams());
    h.access(AccessType::Load, 0x0);
    const Cache &dl1 = h.cacheAt(1, AccessType::Load);
    Cache &ul2 = h.cacheAt(2, AccessType::Load);
    // Manually thrash ul2's set containing 0x0 (64 sets, 2 ways).
    ul2.fill(ul2.blockAddr(0x0) + 64);
    ul2.fill(ul2.blockAddr(0x0) + 128);
    ul2.fill(ul2.blockAddr(0x0) + 192);
    EXPECT_FALSE(ul2.contains(ul2.blockAddr(0x0)));
    EXPECT_TRUE(dl1.contains(dl1.blockAddr(0x0)));
}

/** Fully-associative upper levels so only ul3 conflicts: the
 *  back-invalidation tests need upper copies to survive the demand
 *  stream on their own. */
HierarchyParams
inclusionTestParams()
{
    HierarchyParams params;
    LevelParams l1;
    l1.split = true;
    l1.instr = cacheParams("il1", 1024, 0, 32, 2);
    l1.data = cacheParams("dl1", 1024, 0, 32, 2);
    LevelParams l2;
    l2.data = cacheParams("ul2", 4096, 0, 32, 8);
    LevelParams l3;
    l3.data = cacheParams("ul3", 16384, 4, 64, 18);
    params.levels = {l1, l2, l3};
    params.memory_latency = 100;
    return params;
}

TEST(HierarchyTest, InclusiveModeBackInvalidatesUpperCopies)
{
    HierarchyParams params = inclusionTestParams();
    params.inclusion = InclusionPolicy::Inclusive;
    CacheHierarchy h(params);
    // Bring 0x0 into all levels, then thrash ul3's set containing it
    // (ul3: 64 sets of 64B blocks, 4 ways; 0x1000-multiples collide).
    h.access(AccessType::Load, 0x0);
    const Cache &dl1 = h.cacheAt(1, AccessType::Load);
    const Cache &ul2 = h.cacheAt(2, AccessType::Load);
    EXPECT_TRUE(dl1.contains(dl1.blockAddr(0x0)));
    for (Addr a : {0x1000, 0x2000, 0x3000, 0x4000})
        h.access(AccessType::Load, a);
    const Cache &ul3 = h.cacheAt(3, AccessType::Load);
    EXPECT_FALSE(ul3.contains(ul3.blockAddr(0x0)));
    // Inclusion: the L1/L2 copies are gone too.
    EXPECT_FALSE(dl1.contains(dl1.blockAddr(0x0)));
    EXPECT_FALSE(ul2.contains(ul2.blockAddr(0x0)));
}

TEST(HierarchyTest, NonInclusiveModeKeepsUpperCopies)
{
    CacheHierarchy h(inclusionTestParams()); // default: non-inclusive
    h.access(AccessType::Load, 0x0);
    for (Addr a : {0x1000, 0x2000, 0x3000, 0x4000})
        h.access(AccessType::Load, a);
    const Cache &ul3 = h.cacheAt(3, AccessType::Load);
    const Cache &dl1 = h.cacheAt(1, AccessType::Load);
    EXPECT_FALSE(ul3.contains(ul3.blockAddr(0x0)));
    EXPECT_TRUE(dl1.contains(dl1.blockAddr(0x0)));
}

TEST(HierarchyTest, InclusiveDirtyUpperCopyFoldsIntoWriteback)
{
    HierarchyParams params = inclusionTestParams();
    params.inclusion = InclusionPolicy::Inclusive;
    CacheHierarchy h(params);
    h.access(AccessType::Store, 0x0); // dirty in dl1 only
    std::uint64_t before = h.memoryWritebacks();
    for (Addr a : {0x1000, 0x2000, 0x3000, 0x4000})
        h.access(AccessType::Load, a); // evict 0x0 from ul3
    // The dirty L1 data must not be lost: with nothing below ul3
    // holding the block, the writeback drains to memory.
    EXPECT_GT(h.memoryWritebacks(), before);
}

TEST(HierarchyTest, InclusiveBackInvalidationNotifiesListener)
{
    HierarchyParams params = inclusionTestParams();
    params.inclusion = InclusionPolicy::Inclusive;
    CacheHierarchy h(params);
    RecordingListener listener;
    h.setListener(&listener);
    h.access(AccessType::Load, 0x0);
    for (Addr a : {0x1000, 0x2000, 0x3000, 0x4000})
        h.access(AccessType::Load, a);
    // Among the events there must be replacements of block 0 for the
    // L1 (id 1) and L2 (id 2) caches.
    bool l1_repl = false, l2_repl = false;
    for (const auto &e : listener.events) {
        if (!e.placement && e.block == 0) {
            l1_repl |= e.cache == 1;
            l2_repl |= e.cache == 2;
        }
    }
    EXPECT_TRUE(l1_repl);
    EXPECT_TRUE(l2_repl);
}

TEST(HierarchyTest, MnmStaysSoundUnderInclusion)
{
    HierarchyParams params = paperHierarchy(5);
    params.inclusion = InclusionPolicy::Inclusive;
    CacheHierarchy h(params);
    MnmSpec spec = mnmSpecByName("HMNM2");
    spec.oracle_check = true;
    MnmUnit mnm(spec, h);
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        AccessType type = static_cast<AccessType>(rng.nextBelow(3));
        Addr addr = rng.nextBool(0.6) ? rng.nextBelow(64 * 1024)
                                      : rng.nextBelow(8ull << 20);
        BypassMask mask = mnm.computeBypass(type, addr);
        h.access(type, addr, mask);
    }
    EXPECT_EQ(mnm.soundnessViolations(), 0u);
    EXPECT_EQ(mnm.filterAnomalies(), 0u);
}

TEST(HierarchyTest, DescribeMentionsEveryLevel)
{
    CacheHierarchy h(smallParams());
    std::string desc = h.describe();
    EXPECT_NE(desc.find("il1"), std::string::npos);
    EXPECT_NE(desc.find("ul3"), std::string::npos);
    EXPECT_NE(desc.find("memory: 100"), std::string::npos);
}

TEST(HierarchyTest, RejectsEmptyConfiguration)
{
    HierarchyParams params;
    EXPECT_EXIT(CacheHierarchy h(params), ::testing::ExitedWithCode(1),
                "no cache levels");
}

TEST(HierarchyTest, PaperConfigLatencies)
{
    CacheHierarchy h(paperHierarchy(5));
    // Cold data access walks all five levels then memory:
    // 2 + 8 + 18 + 34 + 70 + 320.
    AccessResult r = h.access(AccessType::Load, 0x123456);
    EXPECT_EQ(r.latency, 452u);
}

} // anonymous namespace
} // namespace mnm
