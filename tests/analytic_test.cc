/**
 * @file
 * Tests for the paper's Equations 1 and 2, including validation of the
 * analytical model against the functional simulator on a unified
 * hierarchy (where the mapping between the two is exact).
 */

#include <gtest/gtest.h>

#include "sim/analytic.hh"
#include "sim/memory_sim.hh"
#include "trace/workload.hh"

namespace mnm
{
namespace
{

TEST(AnalyticTest, SingleLevelAllHits)
{
    // One cache, never misses: T = h1.
    std::vector<LevelTiming> levels = {{2.0, 2.0, 0.0, 0.0}};
    EXPECT_DOUBLE_EQ(analyticDataAccessTime(levels, 100.0), 2.0);
    EXPECT_DOUBLE_EQ(analyticMissTimeFraction(levels, 100.0), 0.0);
}

TEST(AnalyticTest, SingleLevelAllMisses)
{
    // Always miss: T = d1 + T_mem.
    std::vector<LevelTiming> levels = {{2.0, 2.0, 1.0, 0.0}};
    EXPECT_DOUBLE_EQ(analyticDataAccessTime(levels, 100.0), 102.0);
}

TEST(AnalyticTest, TwoLevelHandComputed)
{
    // h1=2 d1=2 m1=0.5; h2=10 d2=10 m2=0.2.
    // T = (2*0.5 + 2*0.5) + 0.5*(10*0.8 + 10*0.2) + 0.5*0.2*100
    //   = 2 + 5 + 10 = 17.
    std::vector<LevelTiming> levels = {{2, 2, 0.5, 0}, {10, 10, 0.2, 0}};
    EXPECT_DOUBLE_EQ(analyticDataAccessTime(levels, 100.0), 17.0);
}

TEST(AnalyticTest, Equation2AbortRemovesMissTime)
{
    // Fully aborted level-1 misses remove d1*m1 from the total.
    std::vector<LevelTiming> base = {{2, 2, 0.5, 0.0}, {10, 10, 0.0, 0.0}};
    std::vector<LevelTiming> mnm = {{2, 2, 0.5, 1.0}, {10, 10, 0.0, 0.0}};
    double t_base = analyticDataAccessTime(base, 100.0);
    double t_mnm = analyticDataAccessTime(mnm, 100.0);
    EXPECT_DOUBLE_EQ(t_base - t_mnm, 2.0 * 0.5);
}

TEST(AnalyticTest, PartialAbortScalesLinearly)
{
    std::vector<LevelTiming> half = {{2, 2, 0.5, 0.5}, {10, 10, 0, 0}};
    std::vector<LevelTiming> none = {{2, 2, 0.5, 0.0}, {10, 10, 0, 0}};
    std::vector<LevelTiming> full = {{2, 2, 0.5, 1.0}, {10, 10, 0, 0}};
    double t_half = analyticDataAccessTime(half, 100.0);
    EXPECT_DOUBLE_EQ(t_half, (analyticDataAccessTime(none, 100.0) +
                              analyticDataAccessTime(full, 100.0)) /
                                 2.0);
}

TEST(AnalyticTest, MissFractionMatchesDecomposition)
{
    std::vector<LevelTiming> levels = {{2, 2, 0.5, 0}, {10, 10, 0.2, 0}};
    double total = analyticDataAccessTime(levels, 100.0);
    double frac = analyticMissTimeFraction(levels, 100.0);
    // Miss part: d1*m1 + m1*d2*m2 = 1 + 0.5*2 = 2. Fraction = 2/17.
    EXPECT_NEAR(frac, (2.0 * 0.5 + 0.5 * 10.0 * 0.2) / total, 1e-12);
}

TEST(AnalyticTest, RejectsOutOfRangeInputs)
{
    std::vector<LevelTiming> bad = {{2, 2, 1.5, 0}};
    EXPECT_DEATH(analyticDataAccessTime(bad, 100.0), "miss rate");
    std::vector<LevelTiming> bad2 = {{2, 2, 0.5, -0.1}};
    EXPECT_DEATH(analyticDataAccessTime(bad2, 100.0), "abort fraction");
}

/**
 * Cross-validation: on a unified hierarchy (one cache per level, so the
 * per-level miss rates measured by the simulator correspond exactly to
 * Equation 1's inputs), the analytical access time computed from the
 * measured miss rates must match the simulator's measured average.
 */
TEST(AnalyticTest, MatchesFunctionalSimulatorOnUnifiedHierarchy)
{
    HierarchyParams params;
    LevelParams l1;
    l1.data.name = "l1";
    l1.data.capacity_bytes = 2048;
    l1.data.associativity = 2;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 2;
    LevelParams l2;
    l2.data.name = "l2";
    l2.data.capacity_bytes = 16384;
    l2.data.associativity = 4;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 10;
    params.levels = {l1, l2};
    params.memory_latency = 100;

    MemorySimulator sim(params);
    UniformRandomWorkload workload(64 * 1024, 1.0, 0.0, 5);
    // All-load workload with pc fixed per line so fetch traffic is tiny;
    // measure a long window.
    MemSimResult result = sim.run(workload, 200000);

    std::vector<LevelTiming> levels;
    for (const CacheSnapshot &snap : result.caches) {
        LevelTiming lt;
        lt.hit_time = snap.level == 1 ? 2.0 : 10.0;
        lt.miss_time = lt.hit_time;
        lt.miss_rate = 1.0 - snap.hit_rate;
        levels.push_back(lt);
    }
    double analytic = analyticDataAccessTime(levels, 100.0);
    EXPECT_NEAR(analytic, result.avgAccessTime(),
                0.02 * result.avgAccessTime());
}

} // anonymous namespace
} // namespace mnm
