/**
 * @file
 * Fault-injection soundness tests (core/fault_inject.hh): corrupting a
 * live MNM structure must never produce a *silent* unsound "miss". For
 * every technique the injected corruption either degrades safely (the
 * verdict weakens to "maybe") or is caught by the MnmUnit's oracle
 * check and lands in the violation counters / the forbidden
 * confusion-matrix cell. The tests also pin down the harness contract
 * itself: deterministic surface enumeration and self-inverse flips.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault_inject.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "sim/recovery.hh"
#include "trace/spec2000.hh"

namespace mnm
{
namespace
{

constexpr std::uint64_t warm_instructions = 80000;
constexpr char workload_name[] = "164.gzip";

/** One technique under test, with the oracle check forced on so any
 *  unsound verdict is counted instead of silently bypassing. */
struct Technique
{
    const char *name;
    MnmSpec spec;
};

std::vector<Technique>
techniques()
{
    auto oracle = [](MnmSpec spec) {
        spec.oracle_check = true;
        return spec;
    };
    return {
        {"RMNM", oracle(makeRmnmSpec(512, 2))},
        {"SMNM", oracle(makeUniformSpec(
                     SmnmSpec{12, 2, SmnmUpdateMode::Counting}))},
        {"TMNM", oracle(makeUniformSpec(TmnmSpec{10, 2, 3}))},
        {"CMNM", oracle(makeUniformSpec(
                     CmnmSpec{4, 10, 3, CmnmMaskPolicy::Monotone}))},
    };
}

/** Data addresses from the first @p instructions of the workload --
 *  the warm simulator's (approximate) resident set, used as probe
 *  targets after an injection. */
std::vector<Addr>
probeAddresses(std::uint64_t instructions)
{
    auto workload = makeSpecWorkload(workload_name);
    Instruction inst;
    std::vector<Addr> addrs;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        workload->next(inst);
        if (inst.isMem())
            addrs.push_back(inst.mem_addr);
    }
    return addrs;
}

/** Probe every address through the MNM's verdict path. With
 *  oracle_check on, any unsound "miss" increments the violation
 *  counters; probing itself never mutates filter state. */
void
probeAll(MnmUnit &unit, const std::vector<Addr> &addrs)
{
    for (Addr addr : addrs)
        unit.computeBypass(AccessType::Load, addr);
}

TEST(FaultSurfaceTest, EnumerationIsDeterministicAndNonEmpty)
{
    for (const Technique &t : techniques()) {
        SCOPED_TRACE(t.name);
        MemorySimulator sim(paperHierarchy(3), t.spec);
        auto surfaces = FaultInjector::faultSurfaces(*sim.mnm());
        ASSERT_FALSE(surfaces.empty());
        for (const FaultSurface &s : surfaces) {
            EXPECT_FALSE(s.name.empty());
            EXPECT_GT(s.bits, 0u);
        }
        // Enumeration is a pure function of the unit's configuration.
        auto again = FaultInjector::faultSurfaces(*sim.mnm());
        ASSERT_EQ(surfaces.size(), again.size());
        for (std::size_t i = 0; i < surfaces.size(); ++i) {
            EXPECT_EQ(surfaces[i].name, again[i].name);
            EXPECT_EQ(surfaces[i].bits, again[i].bits);
        }
    }
    // The shared RMNM is always the first surface when configured.
    MemorySimulator sim(paperHierarchy(3),
                        techniques().front().spec);
    auto surfaces = FaultInjector::faultSurfaces(*sim.mnm());
    EXPECT_EQ(surfaces.front().name, "rmnm");
}

TEST(FaultSurfaceTest, FlipIsSelfInverse)
{
    for (const Technique &t : techniques()) {
        SCOPED_TRACE(t.name);
        // Twin simulators, identically warmed; B additionally gets
        // every surface's first/middle/last bit flipped twice.
        MemorySimulator a(paperHierarchy(3), t.spec);
        MemorySimulator b(paperHierarchy(3), t.spec);
        auto wa = makeSpecWorkload(workload_name);
        auto wb = makeSpecWorkload(workload_name);
        a.run(*wa, warm_instructions);
        b.run(*wb, warm_instructions);

        auto surfaces = FaultInjector::faultSurfaces(*b.mnm());
        for (std::size_t s = 0; s < surfaces.size(); ++s) {
            for (std::uint64_t bit :
                 {std::uint64_t{0}, surfaces[s].bits / 2,
                  surfaces[s].bits - 1}) {
                FaultInjector::flip(*b.mnm(), s, bit);
                FaultInjector::flip(*b.mnm(), s, bit);
            }
        }

        MemSimResult ra = a.run(*wa, warm_instructions);
        MemSimResult rb = b.run(*wb, warm_instructions);
        // Byte-identical serialized results: the double flips were
        // fully transparent.
        EXPECT_EQ(writeMemSimResult(ra), writeMemSimResult(rb));
    }
}

TEST(FaultInjectionTest, InjectRandomIsDeterministicPerSeed)
{
    const Technique t = techniques().front();
    MemorySimulator sim(paperHierarchy(3), t.spec);
    FaultInjector first(42);
    FaultInjector second(42);
    for (int i = 0; i < 8; ++i) {
        FaultInjection fa = first.injectRandom(*sim.mnm());
        // Undo before the twin injector repeats the same pick.
        FaultInjector::flip(*sim.mnm(), fa.surface, fa.bit);
        FaultInjection fb = second.injectRandom(*sim.mnm());
        FaultInjector::flip(*sim.mnm(), fb.surface, fb.bit);
        EXPECT_EQ(fa.surface, fb.surface);
        EXPECT_EQ(fa.name, fb.name);
        EXPECT_EQ(fa.bit, fb.bit);
    }
}

/**
 * The headline property: after any injected corruption, an unsound
 * "miss" verdict is either absent (the flip only weakened verdicts to
 * "maybe" -- safe degradation) or caught by the oracle check -- and
 * once the flip is undone, no further violations appear. Random
 * strikes often land in the safe direction (e.g. the high bits of a
 * wide count), so the "unsound direction is reachable and detected"
 * guarantee is asserted per technique by the targeted test below;
 * here the seed sweep must still surface at least one caught strike
 * overall.
 */
TEST(FaultInjectionTest, CorruptionIsNeverSilentlyUnsound)
{
    std::vector<Addr> addrs = probeAddresses(warm_instructions);
    ASSERT_FALSE(addrs.empty());

    std::uint64_t total_caught = 0;
    for (const Technique &t : techniques()) {
        SCOPED_TRACE(t.name);
        MemorySimulator sim(paperHierarchy(3), t.spec);
        auto workload = makeSpecWorkload(workload_name);
        sim.run(*workload, warm_instructions);
        MnmUnit &unit = *sim.mnm();

        // Sound before any injection: the warm run and a full probe
        // sweep over the working set produce zero violations.
        ASSERT_EQ(unit.soundnessViolations(), 0u);
        probeAll(unit, addrs);
        ASSERT_EQ(unit.soundnessViolations(), 0u);

        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            FaultInjector injector(seed);
            // A burst of flips per seed: real upsets are rare, but the
            // test wants good odds of striking the unsound direction.
            std::vector<FaultInjection> flips;
            for (int i = 0; i < 8; ++i)
                flips.push_back(injector.injectRandom(unit));

            std::uint64_t before = unit.soundnessViolations();
            probeAll(unit, addrs);
            total_caught += unit.soundnessViolations() - before;

            // Undo (reverse order for clarity; flips commute) and
            // verify soundness is fully restored.
            for (auto it = flips.rbegin(); it != flips.rend(); ++it)
                FaultInjector::flip(unit, it->surface, it->bit);
            std::uint64_t restored = unit.soundnessViolations();
            probeAll(unit, addrs);
            ASSERT_EQ(unit.soundnessViolations(), restored)
                << "violations after undoing seed " << seed;
        }

        // The violation accounting is consistent end to end: the
        // per-level counters sum to the total, and a simulation window
        // reports the same totals through MemSimResult / the forbidden
        // confusion-matrix cells.
        std::uint64_t by_level = 0;
        for (std::uint32_t l = 0; l < unit.violationLevels(); ++l)
            by_level += unit.violationsAtLevel(l);
        EXPECT_EQ(by_level, unit.soundnessViolations());

        MemSimResult window = sim.run(*workload, 10000);
        EXPECT_EQ(window.soundness_violations,
                  unit.soundnessViolations());
        std::uint64_t forbidden = 0;
        for (std::uint32_t l = 0; l < DecisionMatrix::max_levels; ++l)
            forbidden += window.decisions.at(l).predicted_miss_actual_hit;
        EXPECT_EQ(forbidden, window.soundness_violations);
        // All structures restored: the clean window adds nothing.
        EXPECT_EQ(window.filter_anomalies, 0u);
    }
    EXPECT_GT(total_caught, 0u)
        << "no random strike was ever caught across all techniques";
}

/**
 * The unsound direction is reachable -- and caught -- for EVERY
 * technique. Random strikes mostly degrade safely, so this test aims
 * deliberately: flipping the LSB of a sticky/presence counter zeroes
 * every cell holding a count of exactly 1, turning "resident" into
 * "definitely miss" for the blocks mapping there; for the RMNM,
 * flipping one tracked cache's miss bit across all entries asserts
 * "replaced and gone" for granules that still hold resident blocks.
 * The oracle check must convert every such lie into a counted
 * violation instead of a silent bypass.
 */
TEST(FaultInjectionTest, TargetedCorruptionIsCaughtPerTechnique)
{
    std::vector<Addr> addrs = probeAddresses(warm_instructions);
    ASSERT_FALSE(addrs.empty());

    // Per-surface stride of the injectable cells: the fault-bit layout
    // of each structure (documented on its flipFaultBit override).
    auto strideOf = [](const Technique &t, const FaultSurface &s) {
        if (s.name == "rmnm")
            return s.bits / 512; // entries=512 -> bits per entry
        if (std::string(t.name) == "SMNM")
            return std::uint64_t{32}; // 32-bit state words
        return std::uint64_t{3}; // TMNM/CMNM 3-bit sticky counters
    };
    // CMNM surfaces end with 4 registers x 17 bits of non-counter
    // state; LSB striding only applies to the counter region.
    auto counterRegionOf = [](const Technique &t,
                              const FaultSurface &s) {
        if (std::string(t.name) == "CMNM" && s.name != "rmnm")
            return s.bits - 4 * 17;
        return s.bits;
    };

    for (const Technique &t : techniques()) {
        SCOPED_TRACE(t.name);
        MemorySimulator sim(paperHierarchy(3), t.spec);
        auto workload = makeSpecWorkload(workload_name);
        sim.run(*workload, warm_instructions);
        MnmUnit &unit = *sim.mnm();
        probeAll(unit, addrs);
        ASSERT_EQ(unit.soundnessViolations(), 0u);

        std::uint64_t caught = 0;
        auto surfaces = FaultInjector::faultSurfaces(unit);
        for (std::size_t s = 0; s < surfaces.size(); ++s) {
            std::uint64_t stride = strideOf(t, surfaces[s]);
            std::uint64_t region = counterRegionOf(t, surfaces[s]);
            // Flood each lane of every cell in turn. For counters,
            // lane 0 zeroes every count==1 cell, lane 1 every
            // count==2, and so on; for the RMNM the lanes are the
            // tracked caches themselves (a deep cache still holding
            // the working set is where a flipped miss bit lies).
            std::uint64_t lanes = std::min(stride, std::uint64_t{4});
            for (std::uint64_t lane = 0; lane < lanes; ++lane) {
                for (std::uint64_t bit = lane; bit < region;
                     bit += stride) {
                    FaultInjector::flip(unit, s, bit);
                }
                std::uint64_t before = unit.soundnessViolations();
                probeAll(unit, addrs);
                caught += unit.soundnessViolations() - before;
                for (std::uint64_t bit = lane; bit < region;
                     bit += stride) {
                    FaultInjector::flip(unit, s, bit);
                }
            }
        }
        EXPECT_GT(caught, 0u)
            << "no targeted corruption was caught for " << t.name
            << " -- the unsound direction is unreachable or the "
               "oracle check is not seeing it";

        // Fully restored: a final probe sweep adds nothing.
        std::uint64_t final_count = unit.soundnessViolations();
        probeAll(unit, addrs);
        EXPECT_EQ(unit.soundnessViolations(), final_count);
    }
}

} // anonymous namespace
} // namespace mnm
