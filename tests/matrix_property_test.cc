/**
 * @file
 * Cross-cutting parameterized properties: every preset constructs and
 * behaves sanely on the paper machine under every placement; the
 * simulators are deterministic; every workload's advertised mix holds;
 * the analytical model is monotone in the MNM's abort fractions; and
 * the RMNM's verdicts are a subset of an unbounded shadow log's.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/presets.hh"
#include "core/rmnm.hh"
#include "cpu/ooo_core.hh"
#include "sim/analytic.hh"
#include "sim/memory_sim.hh"
#include "sim/config.hh"
#include "trace/spec2000.hh"
#include "util/bits.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

// ------------------------------------------------ preset x placement

using PresetParam = std::tuple<std::string, MnmPlacement>;

class PresetMatrixTest : public ::testing::TestWithParam<PresetParam>
{
};

TEST_P(PresetMatrixTest, ConstructsAndOperatesOnPaperMachine)
{
    const auto &[name, placement] = GetParam();
    MnmSpec spec = mnmSpecByName(name);
    spec.placement = placement;
    CacheHierarchy hierarchy(paperHierarchy(5));
    MnmUnit mnm(spec, hierarchy);

    EXPECT_NE(mnm.describe().find(name), std::string::npos);
    if (!spec.perfect) {
        EXPECT_GT(mnm.storageBits(), 0u);
        EXPECT_GT(mnm.lookupEnergyPerAccess(), 0.0);
        // Every paper structure must fit comfortably under 128 KB.
        EXPECT_LT(mnm.storageBits() / 8, 128u * 1024);
    }

    // Drive a short mixed stream; verdicts must stay sound.
    Rng rng(42);
    for (int i = 0; i < 4000; ++i) {
        AccessType type = static_cast<AccessType>(rng.nextBelow(3));
        Addr addr = rng.nextBool(0.5) ? rng.nextBelow(64 * 1024)
                                      : rng.nextBelow(8ull << 20);
        BypassMask mask = mnm.computeBypass(type, addr);
        AccessResult r = hierarchy.access(type, addr, mask);
        Cycles extra = mnm.applyPlacementCosts(r);
        if (placement == MnmPlacement::Parallel) {
            EXPECT_EQ(extra, 0u);
        }
    }
    EXPECT_EQ(mnm.soundnessViolations(), 0u);
    EXPECT_EQ(mnm.filterAnomalies(), 0u);
}

std::vector<PresetParam>
allPresetParams()
{
    std::vector<PresetParam> params;
    for (const auto &list :
         {rmnmFigureConfigs(), smnmFigureConfigs(), tmnmFigureConfigs(),
          cmnmFigureConfigs(), hmnmFigureConfigs()}) {
        for (const std::string &name : list) {
            params.emplace_back(name, MnmPlacement::Parallel);
            params.emplace_back(name, MnmPlacement::Serial);
            params.emplace_back(name, MnmPlacement::Distributed);
        }
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetMatrixTest, ::testing::ValuesIn(allPresetParams()),
    [](const ::testing::TestParamInfo<PresetParam> &info) {
        std::string name = std::get<0>(info.param);
        switch (std::get<1>(info.param)) {
          case MnmPlacement::Parallel: name += "_par"; break;
          case MnmPlacement::Serial: name += "_ser"; break;
          case MnmPlacement::Distributed: name += "_dist"; break;
        }
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ------------------------------------------------------- determinism

TEST(DeterminismTest, TimingRunsAreExactlyRepeatable)
{
    auto run_once = [] {
        CacheHierarchy h(paperHierarchy(5));
        MnmUnit mnm(makeHmnmSpec(3), h);
        OooCore core(paperCpu(5), h, &mnm);
        auto w = makeSpecWorkload("255.vortex");
        return core.run(*w, 40000).cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(DeterminismTest, FunctionalRunsAreExactlyRepeatable)
{
    auto run_once = [] {
        MemorySimulator sim(paperHierarchy(5), makeHmnmSpec(2));
        auto w = makeSpecWorkload("183.equake");
        MemSimResult r = sim.run(*w, 40000);
        return std::make_tuple(r.total_access_cycles,
                               r.energy.total(),
                               r.coverage.identified());
    };
    EXPECT_EQ(run_once(), run_once());
}

// ----------------------------------------------- per-workload checks

class WorkloadMatrixTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadMatrixTest, AdvertisedMixIsGenerated)
{
    SyntheticParams params = specWorkloadParams(GetParam());
    SyntheticWorkload w(params);
    Instruction inst;
    const int n = 40000;
    int loads = 0, stores = 0, branches = 0;
    for (int i = 0; i < n; ++i) {
        w.next(inst);
        loads += inst.cls == InstClass::Load;
        stores += inst.cls == InstClass::Store;
        branches += inst.cls == InstClass::Branch;
    }
    EXPECT_NEAR(loads / double(n), params.load_frac, 0.03);
    EXPECT_NEAR(stores / double(n), params.store_frac, 0.03);
    EXPECT_NEAR(branches / double(n), params.branch_frac, 0.03);
}

TEST_P(WorkloadMatrixTest, ResetReplaysByteExactly)
{
    auto w = makeSpecWorkload(GetParam());
    std::vector<std::uint64_t> sig;
    Instruction inst;
    for (int i = 0; i < 2000; ++i) {
        w->next(inst);
        sig.push_back(inst.pc ^ (inst.mem_addr << 1) ^ inst.dep1);
    }
    w->reset();
    for (int i = 0; i < 2000; ++i) {
        w->next(inst);
        ASSERT_EQ(sig[static_cast<std::size_t>(i)],
                  inst.pc ^ (inst.mem_addr << 1) ^ inst.dep1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTwenty, WorkloadMatrixTest,
    ::testing::ValuesIn(specAllNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// --------------------------------------------- analytic monotonicity

TEST(AnalyticPropertyTest, MoreAbortNeverSlower)
{
    Rng rng(5);
    for (int round = 0; round < 200; ++round) {
        std::vector<LevelTiming> levels;
        std::uint32_t n = 2 + static_cast<std::uint32_t>(
                                  rng.nextBelow(4));
        for (std::uint32_t i = 0; i < n; ++i) {
            LevelTiming lt;
            lt.hit_time = 1.0 + static_cast<double>(rng.nextBelow(40));
            lt.miss_time = lt.hit_time;
            lt.miss_rate = rng.nextDouble();
            lt.abort_fraction = rng.nextDouble();
            levels.push_back(lt);
        }
        double t = analyticDataAccessTime(levels, 300.0);
        // Raise one level's abort fraction: time must not increase.
        std::size_t pick = rng.nextBelow(levels.size());
        double head =
            levels[pick].abort_fraction +
            (1.0 - levels[pick].abort_fraction) * rng.nextDouble();
        levels[pick].abort_fraction = head;
        double t2 = analyticDataAccessTime(levels, 300.0);
        ASSERT_LE(t2, t + 1e-9) << "round " << round;
    }
}

// --------------------------------------------- RMNM vs unbounded log

TEST(RmnmPropertyTest, VerdictsAreSubsetOfUnboundedShadowLog)
{
    // The shadow log tracks exactly which granules are "replaced and
    // not since placed" per cache, with no capacity limit. A finite
    // RMNM may forget (fewer verdicts) but must never invent one.
    Rmnm rmnm({256, 2}, 3, 5);
    std::set<std::pair<std::uint32_t, std::uint64_t>> shadow;
    Rng rng(31337);
    for (int step = 0; step < 60000; ++step) {
        std::uint32_t cache = static_cast<std::uint32_t>(
            rng.nextBelow(3));
        unsigned block_bits = 5 + static_cast<unsigned>(
                                      rng.nextBelow(3)); // 32/64/128B
        Addr addr = rng.nextBelow(1 << 22) & ~lowMask(block_bits);
        std::uint64_t first = addr >> 5;
        std::uint64_t span = 1ull << (block_bits - 5);
        if (rng.nextBool(0.5)) {
            rmnm.onReplacement(cache, addr, block_bits);
            for (std::uint64_t g = first; g < first + span; ++g)
                shadow.insert({cache, g});
        } else {
            rmnm.onPlacement(cache, addr, block_bits);
            for (std::uint64_t g = first; g < first + span; ++g)
                shadow.erase({cache, g});
        }
        // Random probes: RMNM "miss" implies the shadow agrees.
        Addr probe = rng.nextBelow(1 << 22);
        std::uint32_t pc_cache = static_cast<std::uint32_t>(
            rng.nextBelow(3));
        if (rmnm.definitelyMiss(pc_cache, probe)) {
            ASSERT_TRUE(shadow.count({pc_cache, probe >> 5}))
                << "RMNM invented a verdict at step " << step;
        }
    }
}

} // anonymous namespace
} // namespace mnm
