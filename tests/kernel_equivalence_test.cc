/**
 * @file
 * The batched/devirtualized hot kernel against the single-step virtual
 * reference path (sim/memory_sim.hh setReferenceKernel), on EVERY
 * verdict backend this machine runs: the legacy per-access plan walk
 * (off), the scalar SoA pass, and the native vector pass (AVX2/NEON)
 * when one exists. The refactor's contract is *bit-identical* results
 * -- every counter, the coverage and confusion breakdowns, and the
 * energy doubles -- across the preset grid: the five techniques plus
 * the perfect MNM and the bare hierarchy, under all three placements,
 * and with faults injected mid-run through every kernel. The update
 * side gets the same treatment: the batched event ring drained through
 * devirtualized update kernels against the per-event virtual listener
 * feed (setReferenceFeed), faulted runs included.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault_inject.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "util/cpu.hh"

namespace mnm
{
namespace
{

constexpr std::uint64_t run_instructions = 50000;
constexpr char workload_name[] = "164.gzip";

/** One grid cell: an MNM configuration (or none) under a label. */
struct KernelCase
{
    std::string label;
    std::optional<MnmSpec> spec;
};

std::vector<KernelCase>
presetGrid()
{
    std::vector<KernelCase> cases;
    cases.push_back({"no-MNM", std::nullopt});
    cases.push_back({"Perfect", mnmSpecByName("Perfect")});
    const char *techniques[] = {"RMNM_512_2", "SMNM_13x2", "TMNM_12x3",
                                "CMNM_8_10", "HMNM4"};
    const std::pair<const char *, MnmPlacement> placements[] = {
        {"parallel", MnmPlacement::Parallel},
        {"serial", MnmPlacement::Serial},
        {"distributed", MnmPlacement::Distributed},
    };
    for (const char *name : techniques) {
        for (const auto &[pname, placement] : placements) {
            MnmSpec spec = mnmSpecByName(name);
            spec.placement = placement;
            cases.push_back(
                {std::string(name) + "/" + pname, spec});
        }
    }
    return cases;
}

/** Every counter, breakdown, and energy double must match exactly.
 *  EXPECT_EQ on the doubles is deliberate: the batched kernel's
 *  event-count energy fold is only sound if it reproduces the same
 *  bits, not merely nearby values. */
void
expectIdenticalResults(const MemSimResult &batched,
                       const MemSimResult &reference)
{
    EXPECT_EQ(batched.instructions, reference.instructions);
    EXPECT_EQ(batched.requests, reference.requests);
    EXPECT_EQ(batched.data_requests, reference.data_requests);
    EXPECT_EQ(batched.fetch_requests, reference.fetch_requests);
    EXPECT_EQ(batched.total_access_cycles,
              reference.total_access_cycles);
    EXPECT_EQ(batched.miss_cycles, reference.miss_cycles);
    EXPECT_EQ(batched.memory_accesses, reference.memory_accesses);
    EXPECT_EQ(batched.soundness_violations,
              reference.soundness_violations);
    EXPECT_EQ(batched.filter_anomalies, reference.filter_anomalies);
    EXPECT_EQ(batched.mnm_storage_bits, reference.mnm_storage_bits);

    EXPECT_EQ(batched.energy.probe_hit_pj,
              reference.energy.probe_hit_pj);
    EXPECT_EQ(batched.energy.probe_miss_pj,
              reference.energy.probe_miss_pj);
    EXPECT_EQ(batched.energy.fill_pj, reference.energy.fill_pj);
    EXPECT_EQ(batched.energy.writeback_pj,
              reference.energy.writeback_pj);
    EXPECT_EQ(batched.energy.mnm_pj, reference.energy.mnm_pj);

    EXPECT_EQ(batched.coverage.identified(),
              reference.coverage.identified());
    EXPECT_EQ(batched.coverage.unidentified(),
              reference.coverage.unidentified());
    for (std::uint32_t l = 0; l < CoverageTracker::max_levels; ++l) {
        EXPECT_EQ(batched.coverage.identifiedAt(l),
                  reference.coverage.identifiedAt(l))
            << "level " << l;
        EXPECT_EQ(batched.coverage.unidentifiedAt(l),
                  reference.coverage.unidentifiedAt(l))
            << "level " << l;
    }
    for (std::uint32_t l = 0; l < DecisionMatrix::max_levels; ++l) {
        const DecisionMatrix::Cells &b = batched.decisions.at(l);
        const DecisionMatrix::Cells &r = reference.decisions.at(l);
        EXPECT_EQ(b.predicted_miss_actual_miss,
                  r.predicted_miss_actual_miss)
            << "level " << l;
        EXPECT_EQ(b.maybe_actual_miss, r.maybe_actual_miss)
            << "level " << l;
        EXPECT_EQ(b.maybe_actual_hit, r.maybe_actual_hit)
            << "level " << l;
        EXPECT_EQ(b.predicted_miss_actual_hit,
                  r.predicted_miss_actual_hit)
            << "level " << l;
    }

    ASSERT_EQ(batched.caches.size(), reference.caches.size());
    for (std::size_t i = 0; i < batched.caches.size(); ++i) {
        const CacheSnapshot &b = batched.caches[i];
        const CacheSnapshot &r = reference.caches[i];
        EXPECT_EQ(b.name, r.name);
        EXPECT_EQ(b.level, r.level);
        EXPECT_EQ(b.accesses, r.accesses) << b.name;
        EXPECT_EQ(b.hits, r.hits) << b.name;
        EXPECT_EQ(b.mru_hits, r.mru_hits) << b.name;
        EXPECT_EQ(b.misses, r.misses) << b.name;
        EXPECT_EQ(b.bypasses, r.bypasses) << b.name;
        EXPECT_EQ(b.hit_rate, r.hit_rate) << b.name;
    }
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<KernelCase>
{
};

/** Every backend a verdict can be computed under on this machine. */
std::vector<SimdBackend>
verdictBackends()
{
    std::vector<SimdBackend> backends = {SimdBackend::Off,
                                         SimdBackend::ScalarSoa};
    if (nativeSimdBackend() != SimdBackend::ScalarSoa)
        backends.push_back(nativeSimdBackend());
    return backends;
}

TEST_P(KernelEquivalenceTest, BatchedMatchesReferenceOnPresetMachine)
{
    const KernelCase &c = GetParam();
    auto run_case = [&](bool reference, SimdBackend backend) {
        MemorySimulator sim(paperHierarchy(5), c.spec);
        sim.setReferenceKernel(reference);
        if (!reference && c.spec)
            sim.mnm()->setSimdBackend(backend);
        auto workload = makeSpecWorkload(workload_name);
        // Two runs: the second starts warm, covering the carried
        // state (filters, coverage, cumulative violation counters).
        sim.run(*workload, run_instructions / 2);
        return sim.run(*workload, run_instructions / 2);
    };
    MemSimResult reference = run_case(true, SimdBackend::Off);
    for (SimdBackend backend : verdictBackends()) {
        SCOPED_TRACE(simdBackendName(backend));
        MemSimResult batched = run_case(false, backend);
        expectIdenticalResults(batched, reference);
    }
}

TEST_P(KernelEquivalenceTest, BatchedFeedMatchesVirtualFeedOnPresetMachine)
{
    // The update-side axis: the batched event ring drained through the
    // devirtualized update kernels (default) against the per-event
    // virtual listener feed (MNM_REFERENCE_FEED=1). Both sides run the
    // batched verdict kernel, so any divergence is the feed's fault.
    const KernelCase &c = GetParam();
    auto run_case = [&](bool reference_feed, SimdBackend backend) {
        MemorySimulator sim(paperHierarchy(5), c.spec);
        if (reference_feed)
            sim.setReferenceFeed(true);
        if (c.spec)
            sim.mnm()->setSimdBackend(backend);
        auto workload = makeSpecWorkload(workload_name);
        sim.run(*workload, run_instructions / 2);
        return sim.run(*workload, run_instructions / 2);
    };
    MemSimResult reference = run_case(true, SimdBackend::Off);
    for (SimdBackend backend : verdictBackends()) {
        SCOPED_TRACE(simdBackendName(backend));
        MemSimResult batched = run_case(false, backend);
        expectIdenticalResults(batched, reference);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PresetGrid, KernelEquivalenceTest,
    ::testing::ValuesIn(presetGrid()), [](const auto &info) {
        std::string n = info.param.label;
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(KernelEquivalenceTest, FaultedFiltersMatchReferenceExactly)
{
    // Same contract with corrupted filter state: warm each kernel,
    // apply the identical deterministic flips (first/middle/last bit
    // of every surface), and the oracle-checked continuation must
    // still agree bit for bit -- violations included -- on every
    // backend.
    for (const char *name : {"RMNM_512_2", "SMNM_13x2", "TMNM_12x3",
                             "CMNM_8_10", "HMNM4"}) {
        SCOPED_TRACE(name);
        MnmSpec spec = mnmSpecByName(name);
        spec.oracle_check = true;
        auto run_case = [&](bool reference, SimdBackend backend) {
            MemorySimulator sim(paperHierarchy(5), spec);
            sim.setReferenceKernel(reference);
            if (!reference)
                sim.mnm()->setSimdBackend(backend);
            auto workload = makeSpecWorkload(workload_name);
            sim.run(*workload, run_instructions / 2);
            auto surfaces = FaultInjector::faultSurfaces(*sim.mnm());
            EXPECT_FALSE(surfaces.empty());
            for (std::size_t s = 0; s < surfaces.size(); ++s) {
                for (std::uint64_t bit :
                     {std::uint64_t{0}, surfaces[s].bits / 2,
                      surfaces[s].bits - 1}) {
                    FaultInjector::flip(*sim.mnm(), s, bit);
                }
            }
            return sim.run(*workload, run_instructions / 2);
        };
        MemSimResult reference = run_case(true, SimdBackend::Off);
        for (SimdBackend backend : verdictBackends()) {
            SCOPED_TRACE(simdBackendName(backend));
            MemSimResult batched = run_case(false, backend);
            expectIdenticalResults(batched, reference);
        }
    }
}

TEST(KernelEquivalenceTest, FaultedFiltersMatchVirtualFeedExactly)
{
    // The feed axis under corrupted filter state: deterministic bit
    // flips land between two windows, and the ring-drained update
    // kernels must rebuild exactly the state the virtual per-event
    // feed rebuilds -- oracle-checked violations included.
    for (const char *name : {"RMNM_512_2", "SMNM_13x2", "TMNM_12x3",
                             "CMNM_8_10", "HMNM4"}) {
        SCOPED_TRACE(name);
        MnmSpec spec = mnmSpecByName(name);
        spec.oracle_check = true;
        auto run_case = [&](bool reference_feed, SimdBackend backend) {
            MemorySimulator sim(paperHierarchy(5), spec);
            if (reference_feed)
                sim.setReferenceFeed(true);
            sim.mnm()->setSimdBackend(backend);
            auto workload = makeSpecWorkload(workload_name);
            sim.run(*workload, run_instructions / 2);
            auto surfaces = FaultInjector::faultSurfaces(*sim.mnm());
            EXPECT_FALSE(surfaces.empty());
            for (std::size_t s = 0; s < surfaces.size(); ++s) {
                for (std::uint64_t bit :
                     {std::uint64_t{0}, surfaces[s].bits / 2,
                      surfaces[s].bits - 1}) {
                    FaultInjector::flip(*sim.mnm(), s, bit);
                }
            }
            return sim.run(*workload, run_instructions / 2);
        };
        MemSimResult reference = run_case(true, SimdBackend::Off);
        for (SimdBackend backend : verdictBackends()) {
            SCOPED_TRACE(simdBackendName(backend));
            MemSimResult batched = run_case(false, backend);
            expectIdenticalResults(batched, reference);
        }
    }
}

TEST(KernelEquivalenceTest, OverlapPipelineMatchesSynchronousExactly)
{
    // The MNM_OVERLAP axis: stage-decoupled generation (producer
    // thread on multi-core hosts, software-pipelined slices on
    // single-core ones -- whatever PipelineMode::Auto picks here)
    // against the plain synchronous generate-then-consume loop. Both
    // feed paths and every verdict backend: the schedule is the only
    // thing allowed to change, so every counter must match bit for
    // bit. Off-backend cells route through the instruction pipeline
    // (step consumers), on-backend cells through the fused request
    // pipeline -- both handoffs are under test.
    for (const char *name :
         {"RMNM_512_2", "SMNM_13x2", "TMNM_12x3", "CMNM_8_10",
          "HMNM4"}) {
        SCOPED_TRACE(name);
        const MnmSpec spec = mnmSpecByName(name);
        auto run_case = [&](bool overlap, bool reference_feed,
                            SimdBackend backend) {
            MemorySimulator sim(paperHierarchy(5), spec);
            sim.setOverlap(overlap);
            if (reference_feed)
                sim.setReferenceFeed(true);
            sim.mnm()->setSimdBackend(backend);
            auto workload = makeSpecWorkload(workload_name);
            sim.run(*workload, run_instructions / 2);
            return sim.run(*workload, run_instructions / 2);
        };
        for (bool reference_feed : {false, true}) {
            SCOPED_TRACE(reference_feed ? "reference-feed"
                                        : "batched-feed");
            for (SimdBackend backend : verdictBackends()) {
                SCOPED_TRACE(simdBackendName(backend));
                MemSimResult synchronous =
                    run_case(false, reference_feed, backend);
                MemSimResult overlapped =
                    run_case(true, reference_feed, backend);
                expectIdenticalResults(overlapped, synchronous);
            }
        }
    }
}

TEST(KernelEquivalenceTest, FaultedOverlapMatchesSynchronousExactly)
{
    // Overlap under corrupted filter state: the deterministic flips
    // land between two windows (while no pipeline is alive -- a
    // pipeline's stream ownership ends with its run), and the
    // oracle-checked continuation must agree bit for bit with the
    // synchronous schedule, violations included.
    for (const char *name : {"RMNM_512_2", "HMNM4"}) {
        SCOPED_TRACE(name);
        MnmSpec spec = mnmSpecByName(name);
        spec.oracle_check = true;
        auto run_case = [&](bool overlap, SimdBackend backend) {
            MemorySimulator sim(paperHierarchy(5), spec);
            sim.setOverlap(overlap);
            sim.mnm()->setSimdBackend(backend);
            auto workload = makeSpecWorkload(workload_name);
            sim.run(*workload, run_instructions / 2);
            auto surfaces = FaultInjector::faultSurfaces(*sim.mnm());
            EXPECT_FALSE(surfaces.empty());
            for (std::size_t s = 0; s < surfaces.size(); ++s) {
                for (std::uint64_t bit :
                     {std::uint64_t{0}, surfaces[s].bits / 2,
                      surfaces[s].bits - 1}) {
                    FaultInjector::flip(*sim.mnm(), s, bit);
                }
            }
            return sim.run(*workload, run_instructions / 2);
        };
        for (SimdBackend backend : verdictBackends()) {
            SCOPED_TRACE(simdBackendName(backend));
            MemSimResult synchronous = run_case(false, backend);
            MemSimResult overlapped = run_case(true, backend);
            expectIdenticalResults(overlapped, synchronous);
        }
    }
}

} // anonymous namespace
} // namespace mnm
