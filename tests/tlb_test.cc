/**
 * @file
 * Tests for the TLB substrate and the Section 4.5 TLB-filter extension.
 */

#include <gtest/gtest.h>

#include "cache/tlb.hh"
#include "core/tlb_filter.hh"
#include "trace/spec2000.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

TlbParams
smallParams()
{
    TlbParams p;
    p.entries = 4;
    p.associativity = 0;
    p.page_bits = 12;
    p.probe_latency = 1;
    p.walk_latency = 30;
    return p;
}

TEST(TlbTest, MissWalksThenHits)
{
    Tlb tlb(smallParams());
    EXPECT_EQ(tlb.translate(0x1234), 31u); // probe + walk
    EXPECT_EQ(tlb.translate(0x1abc), 1u);  // same page: hit
    EXPECT_EQ(tlb.stats().hits.value(), 1u);
    EXPECT_EQ(tlb.stats().misses.value(), 1u);
    EXPECT_EQ(tlb.stats().walks.value(), 1u);
}

TEST(TlbTest, PageGranularity)
{
    Tlb tlb(smallParams());
    tlb.translate(0x0);
    EXPECT_TRUE(tlb.contains(0xfff));  // same 4KB page
    EXPECT_FALSE(tlb.contains(0x1000)); // next page
}

TEST(TlbTest, CapacityEviction)
{
    Tlb tlb(smallParams()); // 4 entries, fully associative, LRU
    for (Addr page = 0; page < 5; ++page)
        tlb.translate(page << 12);
    EXPECT_FALSE(tlb.contains(0x0)); // LRU evicted
    EXPECT_TRUE(tlb.contains(4ull << 12));
}

TEST(TlbTest, ListenerSeesInstallAndEvict)
{
    struct Recorder : Tlb::Listener
    {
        std::vector<std::pair<bool, std::uint64_t>> events;
        void
        onTlbPlacement(std::uint64_t page) override
        {
            events.push_back({true, page});
        }
        void
        onTlbReplacement(std::uint64_t page) override
        {
            events.push_back({false, page});
        }
    } recorder;

    Tlb tlb(smallParams());
    tlb.setListener(&recorder);
    for (Addr page = 0; page < 5; ++page)
        tlb.translate(page << 12);
    ASSERT_EQ(recorder.events.size(), 6u); // 5 installs + 1 evict
    EXPECT_FALSE(recorder.events[4].first); // evict reported first
    EXPECT_EQ(recorder.events[4].second, 0u);
    EXPECT_TRUE(recorder.events[5].first);
}

TEST(TlbTest, BypassSkipsProbeLatency)
{
    Tlb tlb(smallParams());
    Cycles lat = tlb.translate(0x5000, /*bypass_probe=*/true);
    EXPECT_EQ(lat, 30u); // walk only, no probe
    EXPECT_EQ(tlb.stats().bypasses.value(), 1u);
    EXPECT_EQ(tlb.stats().accesses.value(), 0u);
}

TEST(TlbTest, RejectsNonPowerOfTwoEntries)
{
    TlbParams p = smallParams();
    p.entries = 48;
    EXPECT_EXIT(Tlb t(p), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(TlbTest, SetAssociativeConfiguration)
{
    TlbParams p = smallParams();
    p.entries = 8;
    p.associativity = 2; // 4 sets x 2 ways over page numbers
    Tlb tlb(p);
    // Pages 0 and 4 share a set; with 2 ways both fit, page 8 evicts.
    tlb.translate(0ull << 12);
    tlb.translate(4ull << 12);
    tlb.translate(8ull << 12);
    EXPECT_FALSE(tlb.contains(0ull << 12)); // LRU of set 0
    EXPECT_TRUE(tlb.contains(4ull << 12));
    EXPECT_TRUE(tlb.contains(8ull << 12));
}

TEST(TlbTest, HitRateComputation)
{
    Tlb tlb(smallParams());
    tlb.translate(0x0);
    tlb.translate(0x10);
    tlb.translate(0x20);
    EXPECT_NEAR(tlb.stats().hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(TlbFilterTest, ColdMissesIdentified)
{
    Tlb tlb(smallParams());
    TlbFilterUnit filter(TmnmSpec{8, 2, 3}, tlb);
    // First touch of any page is a definite miss for a cold TMNM.
    Cycles lat = filter.translate(0x9000);
    EXPECT_EQ(lat, 30u); // bypassed probe
    EXPECT_EQ(filter.identified(), 1u);
    // Second touch: resident, filter must not bypass.
    lat = filter.translate(0x9000);
    EXPECT_EQ(lat, 1u);
    EXPECT_EQ(filter.soundnessViolations(), 0u);
}

TEST(TlbFilterTest, CoverageAndSoundnessUnderChurn)
{
    Tlb tlb(smallParams()); // tiny: constant churn
    TlbFilterUnit filter(TmnmSpec{6, 2, 3}, tlb);
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        Addr addr = (rng.nextBelow(64) << 12) | rng.nextBelow(4096);
        filter.translate(addr);
    }
    EXPECT_EQ(filter.soundnessViolations(), 0u);
    EXPECT_GT(filter.coverage(), 0.0);
    EXPECT_LE(filter.coverage(), 1.0);
    EXPECT_GT(filter.consumedEnergyPj(), 0.0);
}

TEST(TlbFilterTest, RealWorkloadEndToEnd)
{
    TlbParams params;
    params.entries = 64;
    params.associativity = 0;
    Tlb tlb(params);
    TlbFilterUnit filter(TmnmSpec{8, 2, 3}, tlb);
    auto workload = makeSpecWorkload("181.mcf");
    Instruction inst;
    for (int i = 0; i < 100000; ++i) {
        workload->next(inst);
        if (inst.isMem())
            filter.translate(inst.mem_addr);
    }
    EXPECT_EQ(filter.soundnessViolations(), 0u);
    // mcf's footprint dwarfs a 64-entry TLB: misses exist and a good
    // chunk should be identified.
    EXPECT_GT(filter.identified() + filter.unidentified(), 100u);
    EXPECT_GT(filter.coverage(), 0.1);
}

} // anonymous namespace
} // namespace mnm
