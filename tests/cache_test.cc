/**
 * @file
 * Unit tests for the set-associative cache model: geometry checks,
 * probe/fill semantics, replacement policies, dirty tracking, and flush.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache.hh"

namespace mnm
{
namespace
{

CacheParams
params(std::uint64_t capacity, std::uint32_t assoc, std::uint32_t block,
       ReplPolicy policy = ReplPolicy::Lru)
{
    CacheParams p;
    p.name = "test";
    p.capacity_bytes = capacity;
    p.associativity = assoc;
    p.block_bytes = block;
    p.hit_latency = 2;
    p.policy = policy;
    return p;
}

TEST(CacheTest, GeometryDerivation)
{
    Cache c(params(4 * 1024, 1, 32));
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.numWays(), 1u);
    EXPECT_EQ(c.blockBits(), 5u);

    Cache c2(params(16 * 1024, 2, 32));
    EXPECT_EQ(c2.numSets(), 256u);
    EXPECT_EQ(c2.numWays(), 2u);
}

TEST(CacheTest, FullyAssociative)
{
    Cache c(params(1024, 0, 32));
    EXPECT_EQ(c.numSets(), 1u);
    EXPECT_EQ(c.numWays(), 32u);
}

TEST(CacheTest, BlockAddrConversions)
{
    Cache c(params(4 * 1024, 1, 32));
    EXPECT_EQ(c.blockAddr(0x1000), 0x80u);
    EXPECT_EQ(c.blockAddr(0x101f), 0x80u);
    EXPECT_EQ(c.blockAddr(0x1020), 0x81u);
    EXPECT_EQ(c.byteAddr(0x80), 0x1000u);
}

TEST(CacheTest, MissThenFillThenHit)
{
    Cache c(params(4 * 1024, 1, 32));
    BlockAddr b = c.blockAddr(0x1234);
    EXPECT_FALSE(c.probe(b));
    auto outcome = c.fill(b);
    EXPECT_TRUE(outcome.inserted);
    EXPECT_FALSE(outcome.evicted.has_value());
    EXPECT_TRUE(c.probe(b));
    EXPECT_EQ(c.stats().accesses.value(), 2u);
    EXPECT_EQ(c.stats().hits.value(), 1u);
    EXPECT_EQ(c.stats().misses.value(), 1u);
}

TEST(CacheTest, ContainsHasNoSideEffects)
{
    Cache c(params(4 * 1024, 1, 32));
    BlockAddr b = 7;
    EXPECT_FALSE(c.contains(b));
    c.fill(b);
    EXPECT_TRUE(c.contains(b));
    EXPECT_EQ(c.stats().accesses.value(), 0u);
}

TEST(CacheTest, DirectMappedConflictEvicts)
{
    Cache c(params(4 * 1024, 1, 32)); // 128 sets
    BlockAddr a = 5;
    BlockAddr conflicting = 5 + 128; // same set, different tag
    c.fill(a);
    auto outcome = c.fill(conflicting);
    EXPECT_TRUE(outcome.inserted);
    ASSERT_TRUE(outcome.evicted.has_value());
    EXPECT_EQ(*outcome.evicted, a);
    EXPECT_FALSE(c.contains(a));
    EXPECT_TRUE(c.contains(conflicting));
}

TEST(CacheTest, RefillOfResidentBlockIsATouch)
{
    Cache c(params(4 * 1024, 2, 32));
    BlockAddr b = 9;
    EXPECT_TRUE(c.fill(b).inserted);
    auto outcome = c.fill(b);
    EXPECT_FALSE(outcome.inserted);
    EXPECT_FALSE(outcome.evicted.has_value());
    EXPECT_EQ(c.blocksResident(), 1u);
    EXPECT_EQ(c.stats().fills.value(), 1u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed)
{
    Cache c(params(128, 2, 32)); // 2 sets x 2 ways
    // Set 0 blocks: 0, 2, 4 (block addrs even -> set 0).
    c.fill(0);
    c.fill(2);
    c.probe(0);      // touch 0: now 2 is LRU
    c.fill(4);       // evicts 2
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(4));
}

TEST(CacheTest, FifoIgnoresTouches)
{
    Cache c(params(128, 2, 32), 1);
    CacheParams p = params(128, 2, 32, ReplPolicy::Fifo);
    Cache f(p);
    f.fill(0);
    f.fill(2);
    f.probe(0); // FIFO ignores the touch
    f.fill(4);  // evicts 0 (oldest fill)
    EXPECT_FALSE(f.contains(0));
    EXPECT_TRUE(f.contains(2));
    EXPECT_TRUE(f.contains(4));
}

TEST(CacheTest, RandomPolicyEvictsSomeValidWay)
{
    Cache c(params(256, 4, 32, ReplPolicy::Random), 42);
    // Fill set 0 with 4 ways then insert a fifth block.
    for (BlockAddr b = 0; b < 5; ++b)
        c.fill(b * 8); // 8 sets; stride 8 keeps set 0
    EXPECT_EQ(c.blocksResident(), 4u);
    EXPECT_EQ(c.stats().evictions.value(), 1u);
}

TEST(CacheTest, TreePlruEvictsUntouchedWay)
{
    // 1 set x 4 ways: fill all four, re-touch three in an order that
    // leaves the tree pointing at the untouched way (tree-PLRU is an
    // approximation, so the touch order matters: alternating subtrees
    // keeps the partial order faithful).
    Cache c(params(128, 4, 32, ReplPolicy::TreePlru));
    for (BlockAddr b = 0; b < 4; ++b)
        c.fill(b * 4); // 1 set (capacity 128B/32B/4 ways)
    c.probe(0);  // way 0 (left subtree)
    c.probe(8);  // way 2 (right subtree)
    c.probe(4);  // way 1 (left subtree)
    c.fill(16);  // victim: way 3 -- block 12, the untouched one
    EXPECT_FALSE(c.contains(12));
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(c.contains(8));
    EXPECT_TRUE(c.contains(16));
}

TEST(CacheTest, TreePlruNeverEvictsMostRecentlyUsed)
{
    Cache c(params(1024, 8, 32, ReplPolicy::TreePlru));
    // Property: after touching a block, the next conflicting fill in
    // its set must not evict it.
    for (int round = 0; round < 200; ++round) {
        BlockAddr block = static_cast<BlockAddr>(round) * 4; // set 0
        c.fill(block);
        c.probe(block);
        c.fill(block + 100000 * 4); // same set, forces a victim
        EXPECT_TRUE(c.contains(block)) << "round " << round;
    }
}

TEST(CacheTest, TreePlruRejectsExcessiveWays)
{
    // (Non-power-of-two way counts cannot even pass the geometry
    // checks, so the reachable limit is the 64-way tree bound, hit by
    // large fully-associative configurations.)
    CacheParams p = params(4096, 0, 32, ReplPolicy::TreePlru);
    EXPECT_EXIT(Cache c(p), ::testing::ExitedWithCode(1),
                "at most 64 ways");
}

TEST(CacheTest, TreePlruHitRateTracksLruOnLoopingPattern)
{
    // On a cyclic working set slightly larger than one way-set, PLRU
    // and LRU both thrash; on one that fits, both hit ~100%. PLRU
    // should land within a few percent of LRU on a mixed pattern.
    Cache lru(params(4096, 4, 32, ReplPolicy::Lru));
    Cache plru(params(4096, 4, 32, ReplPolicy::TreePlru));
    Rng rng(3);
    for (int i = 0; i < 50000; ++i) {
        BlockAddr b = rng.nextBelow(160); // ~1.25x capacity in blocks
        if (!lru.probe(b))
            lru.fill(b);
        if (!plru.probe(b))
            plru.fill(b);
    }
    EXPECT_NEAR(plru.stats().hitRate(), lru.stats().hitRate(), 0.05);
}

TEST(CacheTest, MruHitTracking)
{
    Cache c(params(128, 4, 32)); // 1 set x 4 ways, LRU
    c.fill(0);
    c.fill(4);
    // Hit on 4: it is the MRU (just filled).
    EXPECT_TRUE(c.probe(4));
    EXPECT_EQ(c.stats().mru_hits.value(), 1u);
    // Hit on 0: not MRU (4 was touched more recently).
    EXPECT_TRUE(c.probe(0));
    EXPECT_EQ(c.stats().mru_hits.value(), 1u);
    // Hit on 0 again: now it IS the MRU.
    EXPECT_TRUE(c.probe(0));
    EXPECT_EQ(c.stats().mru_hits.value(), 2u);
    EXPECT_LE(c.stats().mru_hits.value(), c.stats().hits.value());
}

TEST(CacheTest, DirectMappedHitsAreAlwaysMru)
{
    Cache c(params(1024, 1, 32));
    c.fill(1);
    c.probe(1);
    c.probe(1);
    EXPECT_EQ(c.stats().mru_hits.value(), c.stats().hits.value());
}

TEST(CacheTest, DirtyTrackingAndWritebacks)
{
    Cache c(params(128, 1, 32)); // 4 sets
    c.fill(0);
    c.probe(0, /*is_write=*/true); // dirty it
    c.fill(4);                     // conflict evicts dirty block 0
    EXPECT_EQ(c.stats().writebacks.value(), 1u);

    c.fill(1);
    c.fill(5); // evicts clean block 1
    EXPECT_EQ(c.stats().writebacks.value(), 1u);
}

TEST(CacheTest, FillWithDirtyFlag)
{
    Cache c(params(128, 1, 32));
    c.fill(0, /*dirty=*/true);
    c.fill(4);
    EXPECT_EQ(c.stats().writebacks.value(), 1u);
}

TEST(CacheTest, FlushDropsEverything)
{
    Cache c(params(4 * 1024, 2, 32));
    for (BlockAddr b = 0; b < 10; ++b)
        c.fill(b);
    EXPECT_EQ(c.flush(), 10u);
    EXPECT_EQ(c.blocksResident(), 0u);
    for (BlockAddr b = 0; b < 10; ++b)
        EXPECT_FALSE(c.contains(b));
    EXPECT_EQ(c.flush(), 0u);
}

TEST(CacheTest, ResidentBlocksEnumerates)
{
    Cache c(params(4 * 1024, 2, 32));
    c.fill(3);
    c.fill(200);
    auto blocks = c.residentBlocks();
    std::sort(blocks.begin(), blocks.end());
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0], 3u);
    EXPECT_EQ(blocks[1], 200u);
}

TEST(CacheTest, CapacityNeverExceeded)
{
    Cache c(params(1024, 4, 32)); // 32 blocks
    for (BlockAddr b = 0; b < 1000; ++b)
        c.fill(b);
    EXPECT_EQ(c.blocksResident(), 32u);
}

TEST(CacheTest, HitRateComputation)
{
    Cache c(params(4 * 1024, 1, 32));
    c.fill(1);
    c.probe(1);
    c.probe(1);
    c.probe(2); // miss
    EXPECT_NEAR(c.stats().hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(CacheTest, MissLatencyDefaultsToHitLatency)
{
    CacheParams p = params(1024, 1, 32);
    p.hit_latency = 7;
    EXPECT_EQ(p.missLatency(), 7u);
    p.miss_latency = 3;
    EXPECT_EQ(p.missLatency(), 3u);
}

TEST(CacheTest, RejectsNonPowerOfTwoGeometry)
{
    EXPECT_EXIT(Cache(params(3000, 1, 32)),
                ::testing::ExitedWithCode(1), "powers of two");
    EXPECT_EXIT(Cache(params(4096, 1, 48)),
                ::testing::ExitedWithCode(1), "powers of two");
    EXPECT_EXIT(Cache(params(4096, 3, 32)),
                ::testing::ExitedWithCode(1), "divisible");
}

TEST(CacheTest, RejectsZeroSizes)
{
    EXPECT_EXIT(Cache(params(0, 1, 32)), ::testing::ExitedWithCode(1),
                "zero");
}

TEST(CacheTest, SetIndexUsesLowBlockBits)
{
    Cache c(params(1024, 1, 32)); // 32 sets
    // Blocks 1 and 33 share a set; block 2 does not.
    c.fill(1);
    c.fill(2);
    c.fill(33); // evicts 1
    EXPECT_FALSE(c.contains(1));
    EXPECT_TRUE(c.contains(2));
    EXPECT_TRUE(c.contains(33));
}

TEST(CacheTest, BypassCounterOnlyCountsBypasses)
{
    Cache c(params(1024, 1, 32));
    c.noteBypass();
    c.noteBypass();
    EXPECT_EQ(c.stats().bypasses.value(), 2u);
    EXPECT_EQ(c.stats().accesses.value(), 0u);
}

} // anonymous namespace
} // namespace mnm
