/**
 * @file
 * The SoA verdict program's mirror contract (core/soa_state.hh): the
 * program BORROWS the live filter tables, so every filter mutation --
 * workload churn, flushes, injected faults -- must be visible to the
 * SoA kernels immediately and the program must verdict exactly as the
 * virtual-dispatch filter walk would, on every backend, at any
 * hierarchy depth.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cmnm.hh"
#include "core/fault_inject.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "core/soa_state.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "util/cpu.hh"

namespace mnm
{
namespace
{

/** Every backend a verdict can be computed under on this machine. */
std::vector<SimdBackend>
verdictBackends()
{
    std::vector<SimdBackend> backends = {SimdBackend::Off,
                                         SimdBackend::ScalarSoa};
    if (nativeSimdBackend() != SimdBackend::ScalarSoa)
        backends.push_back(nativeSimdBackend());
    return backends;
}

/** A deterministic probe stream: the workload's own fetch and data
 *  addresses, the traffic the filters were trained on. */
std::vector<std::pair<AccessType, Addr>>
probeStream(const char *app, std::uint64_t instructions)
{
    std::vector<std::pair<AccessType, Addr>> probes;
    auto workload = makeSpecWorkload(app);
    Instruction inst;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        workload->next(inst);
        probes.emplace_back(AccessType::InstFetch, inst.pc);
        if (inst.isMem()) {
            probes.emplace_back(inst.cls == InstClass::Load
                                    ? AccessType::Load
                                    : AccessType::Store,
                                inst.mem_addr);
        }
    }
    return probes;
}

/** Every backend's verdict for every probe must equal the reference
 *  (virtual MissFilter dispatch) verdict against the SAME state. */
void
expectAllBackendsMatchReference(
    MnmUnit &unit,
    const std::vector<std::pair<AccessType, Addr>> &probes,
    const char *when)
{
    for (const auto &[type, addr] : probes) {
        unit.setReferenceDispatch(true);
        const std::uint32_t reference =
            unit.computeBypass(type, addr).raw();
        unit.setReferenceDispatch(false);
        for (SimdBackend backend : verdictBackends()) {
            unit.setSimdBackend(backend);
            ASSERT_EQ(unit.computeBypass(type, addr).raw(), reference)
                << when << ": backend " << simdBackendName(backend)
                << " addr 0x" << std::hex << addr;
        }
    }
}

/** Churn, flush, and corrupt the filters of a live simulator; after
 *  each mutation every backend must mirror the filters exactly. */
void
runMirrorCoherence(MemorySimulator &sim,
                   const std::vector<std::pair<AccessType, Addr>> &probes)
{
    auto workload = makeSpecWorkload("164.gzip");
    sim.run(*workload, 30000);
    MnmUnit &unit = *sim.mnm();
    expectAllBackendsMatchReference(unit, probes, "warm");

    // More churn between probe sweeps: placements and replacements
    // keep rewriting the borrowed tables in place.
    sim.run(*workload, 10000);
    expectAllBackendsMatchReference(unit, probes, "churned");

    // Flush events rewrite every filter's state wholesale (and reset
    // the shared RMNM); the mirror must follow without recompilation.
    for (CacheId id = 0; id < sim.hierarchy().numCaches(); ++id)
        unit.onFlush(id);
    expectAllBackendsMatchReference(unit, probes, "flushed");

    // Injected faults flip bits in the filters' private storage; the
    // borrowed-table contract makes them visible to the SoA kernels by
    // construction, with no notification channel to forget.
    sim.run(*workload, 10000);
    auto surfaces = FaultInjector::faultSurfaces(unit);
    ASSERT_FALSE(surfaces.empty());
    for (std::size_t s = 0; s < surfaces.size(); ++s) {
        for (std::uint64_t bit :
             {std::uint64_t{0}, surfaces[s].bits / 2,
              surfaces[s].bits - 1}) {
            FaultInjector::flip(unit, s, bit);
        }
    }
    expectAllBackendsMatchReference(unit, probes, "faulted");
}

TEST(SoaStateTest, MirrorCoherenceOnPaperMachine)
{
    // The headline hybrid: every filter kind (and the RMNM) at once.
    MemorySimulator sim(paperHierarchy(5), mnmSpecByName("HMNM4"));
    runMirrorCoherence(sim, probeStream("164.gzip", 2000));
}

/** An all-unified tower far past the paper's depths: tiny upper levels
 *  so blocks spill downward (mirrors deep_hierarchy_test's tower). */
HierarchyParams
towerHierarchy(std::uint32_t levels)
{
    HierarchyParams params;
    params.memory_latency = 400;
    for (std::uint32_t l = 1; l <= levels; ++l) {
        LevelParams lvl;
        lvl.data.name = "u" + std::to_string(l);
        lvl.data.capacity_bytes = l == levels ? 16 * 1024 : 2 * 1024;
        lvl.data.associativity = l == levels ? 4u : 1u;
        lvl.data.block_bytes = 32;
        lvl.data.hit_latency = static_cast<Cycles>(2 * l);
        params.levels.push_back(lvl);
    }
    return params;
}

TEST(SoaStateTest, MirrorCoherenceOnSeventeenLevelTower)
{
    // 16 filtered levels exercise the program's step loop well past
    // the common 1-4 steps (and the full width of the verdict mask).
    MnmSpec spec = makeUniformSpec(TmnmSpec{10, 2, 3});
    MemorySimulator sim(towerHierarchy(17), spec);
    runMirrorCoherence(sim, probeStream("181.mcf", 1500));
}

/** Two simulators under identical traffic, one on the batched event
 *  ring + devirtualized update kernels, one on the per-event virtual
 *  feed: after every churn/flush stage the borrowed tables must hold
 *  bit-identical state, proven by verdict equality over the probe
 *  stream on every backend. */
void
runFeedCoherence(const HierarchyParams &hier, const MnmSpec &spec,
                 const char *app, std::uint64_t probe_instructions)
{
    auto probes = probeStream(app, probe_instructions);
    MemorySimulator batched(hier, spec);
    MemorySimulator reference(hier, spec);
    reference.setReferenceFeed(true);
    ASSERT_FALSE(batched.referenceFeed());
    ASSERT_TRUE(reference.referenceFeed());

    auto expect_same_state = [&](const char *when) {
        MnmUnit &b = *batched.mnm();
        MnmUnit &r = *reference.mnm();
        for (const auto &[type, addr] : probes) {
            for (SimdBackend backend : verdictBackends()) {
                b.setSimdBackend(backend);
                r.setSimdBackend(backend);
                ASSERT_EQ(b.computeBypass(type, addr).raw(),
                          r.computeBypass(type, addr).raw())
                    << when << ": backend " << simdBackendName(backend)
                    << " addr 0x" << std::hex << addr;
            }
        }
    };

    auto wb = makeSpecWorkload(app);
    auto wr = makeSpecWorkload(app);
    batched.run(*wb, 30000);
    reference.run(*wr, 30000);
    expect_same_state("warm");

    batched.run(*wb, 10000);
    reference.run(*wr, 10000);
    expect_same_state("churned");

    // Flush stays a per-event virtual walk on both sides (the ring is
    // always empty between accesses); the rebuilt state must agree.
    batched.hierarchy().flushAll();
    reference.hierarchy().flushAll();
    expect_same_state("flushed");

    batched.run(*wb, 10000);
    reference.run(*wr, 10000);
    expect_same_state("re-warmed");
}

TEST(SoaStateTest, DrainedEventRingKeepsMirrorsCoherent)
{
    // The headline hybrid: placements and replacements for every
    // filter kind flow through the ring's update kernels.
    runFeedCoherence(paperHierarchy(5), mnmSpecByName("HMNM4"),
                     "164.gzip", 2000);
}

TEST(SoaStateTest, DrainedEventRingCoherentOnSeventeenLevelTower)
{
    // 16 filtered levels: one access can fill every level and
    // back-invalidate below it, overflowing the 64-entry ring so the
    // mid-access drain-if-full path runs -- order must still match the
    // virtual feed exactly.
    runFeedCoherence(towerHierarchy(17),
                     makeUniformSpec(TmnmSpec{10, 2, 3}), "181.mcf",
                     1500);
}

TEST(SoaStateTest, CmnmBorrowedTablesAreStableAndLive)
{
    // The SoA program captures Cmnm's register-file and counter-table
    // pointers once at plan-compile time; the mirror is only sound if
    // those pointers survive every mutation, including full flushes.
    Cmnm cmnm(CmnmSpec{4, 6, 3, CmnmMaskPolicy::Monotone});
    const Cmnm::VtagRegister *regs = cmnm.registerTable();
    const std::uint8_t *counters = cmnm.counterTable();

    SoaOp op;
    op.kind = FilterKind::Cmnm;
    op.cm_regs = regs;
    op.cm_counters = counters;
    op.cm_num_regs = cmnm.spec().num_registers;
    op.cm_index_bits = cmnm.spec().table_index_bits;

    auto expect_mirrored = [&](const char *when) {
        EXPECT_EQ(cmnm.registerTable(), regs) << when;
        EXPECT_EQ(cmnm.counterTable(), counters) << when;
        for (BlockAddr block = 0; block < 4096; block += 7)
            ASSERT_EQ(soaOpMiss(op, block), cmnm.missHot(block)) << when;
    };

    expect_mirrored("cold");
    for (BlockAddr block = 0; block < 3000; block += 3)
        cmnm.placeHot(block);
    expect_mirrored("placed");
    for (BlockAddr block = 0; block < 3000; block += 9)
        cmnm.replaceHot(block);
    expect_mirrored("replaced");
    cmnm.onFlush();
    expect_mirrored("flushed");
    for (BlockAddr block = 1; block < 1000; block += 5)
        cmnm.placeHot(block);
    expect_mirrored("re-placed");
}

} // anonymous namespace
} // namespace mnm
