/**
 * @file
 * Tests for the out-of-order timing model: throughput ceilings,
 * dependence serialization, branch/mispredict costs, memory-latency
 * sensitivity, resource bounds, and MNM interaction.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "cpu/ooo_core.hh"
#include "sim/config.hh"
#include "trace/spec2000.hh"
#include "trace/workload.hh"

namespace mnm
{
namespace
{

HierarchyParams
tinyParams(Cycles memory_latency = 100)
{
    HierarchyParams params;
    LevelParams l1;
    l1.data.name = "l1";
    l1.data.capacity_bytes = 1024;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 2;
    LevelParams l2;
    l2.data.name = "l2";
    l2.data.capacity_bytes = 8192;
    l2.data.associativity = 2;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 8;
    params.levels = {l1, l2};
    params.memory_latency = memory_latency;
    return params;
}

/** Independent single-cycle ALU ops on one I-line. */
std::vector<Instruction>
independentAlus()
{
    Instruction alu;
    alu.cls = InstClass::IntAlu;
    alu.pc = 0x1000;
    return {alu};
}

TEST(CpuTest, IpcBoundedByWidth)
{
    CacheHierarchy h(tinyParams());
    OooCore core(CpuParams::eightWay(), h);
    ScriptedWorkload w(independentAlus());
    CpuRunStats stats = core.run(w, 100000);
    EXPECT_LE(stats.ipc(), 8.0 + 1e-9);
    EXPECT_GT(stats.ipc(), 6.0); // independent ops should near the bound
}

TEST(CpuTest, SerialDependenceChainRunsAtOneIpc)
{
    CacheHierarchy h(tinyParams());
    OooCore core(CpuParams::eightWay(), h);
    Instruction chained;
    chained.cls = InstClass::IntAlu;
    chained.pc = 0x1000;
    chained.dep1 = 1; // every op depends on its predecessor
    ScriptedWorkload w({chained});
    CpuRunStats stats = core.run(w, 50000);
    EXPECT_NEAR(stats.ipc(), 1.0, 0.05);
}

TEST(CpuTest, FourWayBoundsBelowEightWay)
{
    CacheHierarchy h4(tinyParams());
    CacheHierarchy h8(tinyParams());
    OooCore core4(CpuParams::fourWay(), h4);
    OooCore core8(CpuParams::eightWay(), h8);
    ScriptedWorkload w4(independentAlus());
    ScriptedWorkload w8(independentAlus());
    CpuRunStats s4 = core4.run(w4, 50000);
    CpuRunStats s8 = core8.run(w8, 50000);
    EXPECT_LE(s4.ipc(), 4.0 + 1e-9);
    EXPECT_GT(s8.ipc(), s4.ipc());
}

TEST(CpuTest, MispredictsCostCycles)
{
    CacheHierarchy ha(tinyParams());
    CacheHierarchy hb(tinyParams());
    OooCore core_a(CpuParams::eightWay(), ha);
    OooCore core_b(CpuParams::eightWay(), hb);
    Instruction good;
    good.cls = InstClass::Branch;
    good.pc = 0x1000;
    Instruction bad = good;
    bad.mispredicted = true;
    ScriptedWorkload wg({good});
    ScriptedWorkload wb({bad});
    CpuRunStats sg = core_a.run(wg, 20000);
    CpuRunStats sb = core_b.run(wb, 20000);
    EXPECT_GT(sb.cycles, sg.cycles * 2);
    EXPECT_EQ(sb.mispredicts, 20000u);
    EXPECT_EQ(sg.mispredicts, 0u);
}

TEST(CpuTest, MemoryLatencySensitivity)
{
    // A pointer-chase-like serial load stream: cycles must track the
    // memory latency.
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    load.dep1 = 1;
    std::vector<Instruction> script;
    // March over a footprint larger than L2 so loads miss.
    for (int i = 0; i < 4096; ++i) {
        Instruction l = load;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    CacheHierarchy fast(tinyParams(50));
    CacheHierarchy slow(tinyParams(400));
    OooCore core_f(CpuParams::eightWay(), fast);
    OooCore core_s(CpuParams::eightWay(), slow);
    ScriptedWorkload wf(script);
    ScriptedWorkload ws(script);
    CpuRunStats sf = core_f.run(wf, 4096);
    CpuRunStats ss = core_s.run(ws, 4096);
    EXPECT_GT(ss.cycles, sf.cycles * 3);
}

TEST(CpuTest, MlpBoundedByMshrs)
{
    // Independent missing loads: more MSHRs -> more overlap -> fewer
    // cycles.
    std::vector<Instruction> script;
    for (int i = 0; i < 2048; ++i) {
        Instruction l;
        l.cls = InstClass::Load;
        l.pc = 0x1000;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    CpuParams few = CpuParams::eightWay();
    few.mshrs = 1;
    CpuParams many = CpuParams::eightWay();
    many.mshrs = 16;
    CacheHierarchy h1(tinyParams());
    CacheHierarchy h2(tinyParams());
    OooCore core_few(few, h1);
    OooCore core_many(many, h2);
    ScriptedWorkload w1(script);
    ScriptedWorkload w2(script);
    EXPECT_GT(core_few.run(w1, 2048).cycles,
              core_many.run(w2, 2048).cycles * 4);
}

TEST(CpuTest, WindowSizeLimitsOverlap)
{
    std::vector<Instruction> script;
    for (int i = 0; i < 2048; ++i) {
        Instruction l;
        l.cls = InstClass::Load;
        l.pc = 0x1000;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    CpuParams small = CpuParams::eightWay();
    small.window_size = 8;
    CacheHierarchy h1(tinyParams());
    CacheHierarchy h2(tinyParams());
    OooCore core_small(small, h1);
    OooCore core_big(CpuParams::eightWay(), h2);
    ScriptedWorkload w1(script);
    ScriptedWorkload w2(script);
    EXPECT_GT(core_small.run(w1, 2048).cycles,
              core_big.run(w2, 2048).cycles);
}

TEST(CpuTest, StoresDoNotStallCommit)
{
    // Missing stores vs missing loads with a serial dependence: the
    // store stream must be far cheaper (store buffer).
    std::vector<Instruction> loads, stores;
    for (int i = 0; i < 1024; ++i) {
        Instruction m;
        m.pc = 0x1000;
        m.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        m.dep1 = 1;
        m.cls = InstClass::Load;
        loads.push_back(m);
        m.cls = InstClass::Store;
        stores.push_back(m);
    }
    CacheHierarchy h1(tinyParams());
    CacheHierarchy h2(tinyParams());
    OooCore lc(CpuParams::eightWay(), h1);
    OooCore sc(CpuParams::eightWay(), h2);
    ScriptedWorkload wl(loads);
    ScriptedWorkload ws(stores);
    EXPECT_GT(lc.run(wl, 1024).cycles, sc.run(ws, 1024).cycles * 2);
}

TEST(CpuTest, StatsCountsClasses)
{
    CacheHierarchy h(tinyParams());
    OooCore core(CpuParams::eightWay(), h);
    auto w = makeSpecWorkload("164.gzip");
    CpuRunStats stats = core.run(*w, 20000);
    EXPECT_EQ(stats.instructions, 20000u);
    EXPECT_GT(stats.loads, 0u);
    EXPECT_GT(stats.stores, 0u);
    EXPECT_GT(stats.branches, 0u);
    EXPECT_GT(stats.fetch_line_accesses, 0u);
    EXPECT_GT(stats.data_accesses, 0u);
    EXPECT_GT(stats.avgDataAccessTime(), 0.0);
}

TEST(CpuTest, ParallelMnmNeverSlowsDown)
{
    for (const char *app : {"181.mcf", "176.gcc"}) {
        CacheHierarchy hb(paperHierarchy(5));
        OooCore base(paperCpu(5), hb);
        auto w1 = makeSpecWorkload(app);
        CpuRunStats sb = base.run(*w1, 50000);

        CacheHierarchy hm(paperHierarchy(5));
        MnmSpec spec = makePerfectSpec();
        MnmUnit mnm(spec, hm);
        OooCore shielded(paperCpu(5), hm, &mnm);
        auto w2 = makeSpecWorkload(app);
        CpuRunStats sm = shielded.run(*w2, 50000);

        EXPECT_LE(sm.cycles, sb.cycles) << app;
        EXPECT_LT(sm.avgDataAccessTime(), sb.avgDataAccessTime()) << app;
    }
}

TEST(CpuTest, SerialMnmDelayVisibleInDataAccessTime)
{
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    std::vector<Instruction> script;
    for (int i = 0; i < 512; ++i) {
        Instruction l = load;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    auto run_with = [&](MnmPlacement placement) {
        CacheHierarchy h(tinyParams());
        MnmSpec spec = makeUniformSpec(TmnmSpec{4, 1, 3});
        spec.placement = placement;
        MnmUnit mnm(spec, h);
        OooCore core(CpuParams::eightWay(), h, &mnm);
        ScriptedWorkload w(script);
        return core.run(w, 512).data_access_cycles;
    };
    // Every data access misses L1, so serial placement pays +2 per
    // access relative to parallel.
    EXPECT_GT(run_with(MnmPlacement::Serial),
              run_with(MnmPlacement::Parallel));
}

TEST(CpuTest, CoverageAccumulates)
{
    CacheHierarchy h(paperHierarchy(5));
    MnmSpec spec = mnmSpecByName("HMNM2");
    MnmUnit mnm(spec, h);
    OooCore core(paperCpu(5), h, &mnm);
    auto w = makeSpecWorkload("255.vortex");
    core.run(*w, 30000);
    EXPECT_GT(core.coverage().opportunities(), 0u);
    EXPECT_GE(core.coverage().coverage(), 0.0);
    EXPECT_LE(core.coverage().coverage(), 1.0);
    EXPECT_EQ(mnm.soundnessViolations(), 0u);
}

TEST(CpuTest, RejectsZeroResources)
{
    CacheHierarchy h(tinyParams());
    CpuParams p = CpuParams::eightWay();
    p.issue_width = 0;
    EXPECT_EXIT(OooCore(p, h), ::testing::ExitedWithCode(1),
                "zero-width");
    p = CpuParams::eightWay();
    p.mshrs = 0;
    EXPECT_EXIT(OooCore(p, h), ::testing::ExitedWithCode(1), "zero");
}

} // anonymous namespace
} // namespace mnm
