/**
 * @file
 * Unit tests for src/util: bit helpers, the deterministic RNG, the
 * statistics primitives, the table formatter, and the profiler's fast
 * tick source.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/bits.hh"
#include "util/cpu.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace mnm
{
namespace
{

// ---------------------------------------------------------------- bits

TEST(ProfTickTest, FastTickIsMonotonicNonDecreasing)
{
    std::uint64_t last = profFastTick();
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t now = profFastTick();
        ASSERT_GE(now, last);
        last = now;
    }
}

TEST(ProfTickTest, FastTickAdvances)
{
    const std::uint64_t start = profFastTick();
    std::uint64_t now = start;
    // A bounded busy loop: any sane tick source (rdtsc, cntvct_el0, or
    // the steady_clock fallback) advances well within this many reads.
    for (int i = 0; i < 100000000 && now == start; ++i)
        now = profFastTick();
    EXPECT_GT(now, start);
}

TEST(ProfTickTest, TickRateIsPositiveAndStable)
{
    const double hz = profTickHz();
    EXPECT_GT(hz, 0.0);
    // Calibration happens once; repeated queries return the same rate.
    EXPECT_EQ(profTickHz(), hz);
}

TEST(BitsTest, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitsTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(BitsTest, ExactLog2)
{
    EXPECT_EQ(exactLog2(32), 5u);
    EXPECT_EQ(exactLog2(1ull << 33), 33u);
}

TEST(BitsTest, ExactLog2PanicsOnNonPower)
{
    EXPECT_DEATH(exactLog2(33), "exactLog2");
}

TEST(BitsTest, LowMask)
{
    EXPECT_EQ(lowMask(0), 0ull);
    EXPECT_EQ(lowMask(1), 1ull);
    EXPECT_EQ(lowMask(8), 0xffull);
    EXPECT_EQ(lowMask(64), ~0ull);
}

TEST(BitsTest, BitSlice)
{
    EXPECT_EQ(bitSlice(0xabcd, 0, 4), 0xdull);
    EXPECT_EQ(bitSlice(0xabcd, 4, 4), 0xcull);
    EXPECT_EQ(bitSlice(0xabcd, 8, 8), 0xabull);
    EXPECT_EQ(bitSlice(0xff, 70, 4), 0ull); // beyond bit 63 reads zero
}

TEST(BitsTest, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~0ull), 64u);
}

TEST(BitsTest, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0ull);
    EXPECT_EQ(roundUp(1, 8), 8ull);
    EXPECT_EQ(roundUp(8, 8), 8ull);
    EXPECT_EQ(roundUp(9, 8), 16ull);
}

// ------------------------------------------------------------------ rng

TEST(RngTest, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all three values appear
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability)
{
    Rng rng(11);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GeometricMeanApprox)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(6.0));
    EXPECT_NEAR(sum / n, 6.0, 0.5);
}

TEST(RngTest, GeometricZeroMean)
{
    Rng rng(13);
    EXPECT_EQ(rng.nextGeometric(0.0), 0u);
    EXPECT_EQ(rng.nextGeometric(-1.0), 0u);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SplitIndependent)
{
    Rng a(21);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsTest, RunningStatMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-9);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, RunningStatEmpty)
{
    RunningStat s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, RunningStatReset)
{
    RunningStat s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(StatsTest, HistogramBuckets)
{
    Histogram h(4, 1.0);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(3.9);
    h.add(10.0); // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(StatsTest, HistogramNegativeClamps)
{
    Histogram h(4, 1.0);
    h.add(-3.0);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(StatsTest, HistogramPercentile)
{
    Histogram h(10, 1.0);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i % 10) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 5.0, 1.0);
    EXPECT_NEAR(h.percentile(0.95), 9.5, 1.0);
}

TEST(StatsTest, HistogramPercentileEdges)
{
    Histogram empty(4, 1.0);
    EXPECT_EQ(empty.percentile(0.0), 0.0);
    EXPECT_EQ(empty.percentile(1.0), 0.0);

    Histogram h(8, 1.0);
    h.add(2.5);
    h.add(2.7);
    h.add(5.5);
    // fraction <= 0: lower edge of the first populated bucket.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), 2.0);
    // fraction >= 1: upper edge of the last populated bucket.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 6.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 6.0);
}

TEST(StatsTest, HistogramPercentileAllOverflow)
{
    Histogram h(4, 1.0);
    h.add(10.0);
    h.add(99.0);
    // Only overflow samples: every percentile reports the top boundary,
    // the tightest lower bound the histogram can prove.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(StatsTest, HistogramMerge)
{
    Histogram a(4, 1.0);
    Histogram b(4, 1.0);
    a.add(0.5);
    a.add(2.5);
    b.add(2.1);
    b.add(9.0); // overflow
    a.merge(b);
    EXPECT_EQ(a.samples(), 4u);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(2), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    // b is untouched.
    EXPECT_EQ(b.samples(), 2u);
}

TEST(StatsTest, HistogramMergeShapeMismatchDies)
{
    Histogram a(4, 1.0);
    Histogram narrower(4, 0.5);
    Histogram shorter(2, 1.0);
    EXPECT_DEATH(a.merge(narrower), "shape mismatch");
    EXPECT_DEATH(a.merge(shorter), "shape mismatch");
}

TEST(StatsTest, HistogramReset)
{
    Histogram h(2, 1.0);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(0), 0u);
}

TEST(StatsTest, RatioHandlesZeroDenominator)
{
    EXPECT_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(5.0, 2.0), 2.5);
}

TEST(StatsTest, ArithmeticMean)
{
    EXPECT_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

// ---------------------------------------------------------------- table

TEST(TableTest, AlignedOutputContainsCells)
{
    Table t("demo");
    t.setHeader({"app", "value"});
    t.addRow("gzip", {1.25}, 2);
    t.addRow("mcf", {10.5}, 2);
    std::string out = t.toString();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("gzip"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_NE(out.find("10.50"), std::string::npos);
}

TEST(TableTest, MeanRow)
{
    Table t("demo");
    t.setHeader({"app", "value"});
    t.addRow("a", {1.0});
    t.addRow("b", {3.0});
    t.addMeanRow();
    std::string out = t.toString();
    EXPECT_NE(out.find("Arith. Mean"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 3u);
}

TEST(TableTest, MeanRowSkippedWhenNoNumericRows)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    t.addMeanRow();
    EXPECT_EQ(t.rowCount(), 0u);
}

TEST(TableTest, CsvFormat)
{
    Table t("demo");
    t.setHeader({"app", "x", "y"});
    t.addRow("a", {1.0, 2.0}, 1);
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("app,x,y"), std::string::npos);
    EXPECT_NE(csv.find("a,1.0,2.0"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchPanics)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TableTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.005, 2), "1.00");
    EXPECT_EQ(formatDouble(-2.5, 1), "-2.5");
    EXPECT_EQ(formatDouble(3.0, 0), "3");
}

} // anonymous namespace
} // namespace mnm
