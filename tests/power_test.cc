/**
 * @file
 * Unit tests for the analytical power/delay models. Absolute numbers are
 * calibration, not truth, so the tests pin the *relationships* the
 * paper's conclusions rest on: energy/delay grow with capacity,
 * associativity and ports, and the MNM structures are far cheaper than
 * the caches they shield.
 */

#include <gtest/gtest.h>

#include "power/checker_model.hh"
#include "power/sram_model.hh"

namespace mnm
{
namespace
{

CacheGeometry
geom(std::uint64_t capacity, std::uint32_t assoc, std::uint32_t block,
     std::uint32_t ports = 1)
{
    CacheGeometry g;
    g.capacity_bytes = capacity;
    g.block_bytes = block;
    g.associativity = assoc;
    g.tag_bits = 30;
    g.read_write_ports = ports;
    return g;
}

TEST(SramModelTest, EnergyGrowsWithCapacity)
{
    SramModel model;
    PowerDelay small = model.cache(geom(4 * 1024, 1, 32));
    PowerDelay big = model.cache(geom(2 * 1024 * 1024, 8, 128));
    EXPECT_GT(big.read_energy_pj, small.read_energy_pj * 10);
    EXPECT_GT(big.write_energy_pj, small.write_energy_pj);
    EXPECT_GT(big.leakage_mw, small.leakage_mw);
}

TEST(SramModelTest, DelayGrowsWithCapacity)
{
    SramModel model;
    PowerDelay l1 = model.cache(geom(4 * 1024, 1, 32));
    PowerDelay l3 = model.cache(geom(128 * 1024, 4, 64));
    PowerDelay l5 = model.cache(geom(2 * 1024 * 1024, 8, 128));
    EXPECT_LT(l1.access_ns, l3.access_ns);
    EXPECT_LT(l3.access_ns, l5.access_ns);
}

TEST(SramModelTest, EnergyGrowsWithAssociativity)
{
    SramModel model;
    PowerDelay dm = model.cache(geom(16 * 1024, 1, 32));
    PowerDelay w8 = model.cache(geom(16 * 1024, 8, 32));
    EXPECT_GT(w8.read_energy_pj, dm.read_energy_pj);
}

TEST(SramModelTest, EnergyGrowsWithPorts)
{
    SramModel model;
    PowerDelay p1 = model.cache(geom(16 * 1024, 2, 32, 1));
    PowerDelay p2 = model.cache(geom(16 * 1024, 2, 32, 2));
    EXPECT_GT(p2.read_energy_pj, p1.read_energy_pj);
    EXPECT_GT(p2.access_ns, p1.access_ns);
}

TEST(SramModelTest, FullyAssociativeSupported)
{
    SramModel model;
    PowerDelay pd = model.cache(geom(4 * 1024, 0, 32));
    EXPECT_GT(pd.read_energy_pj, 0.0);
    EXPECT_EQ(pd.bits, (4 * 1024 * 8) + 128ull * 30); // data + tags
}

TEST(SramModelTest, BitsAccounted)
{
    SramModel model;
    PowerDelay pd = model.cache(geom(4 * 1024, 1, 32));
    // 128 blocks: 4KB of data plus 128 x 30 tag bits.
    EXPECT_EQ(pd.bits, 4 * 1024 * 8 + 128ull * 30);
}

TEST(SramModelTest, TableScalesWithEntries)
{
    SramModel model;
    PowerDelay small = model.table(1024, 3);
    PowerDelay big = model.table(64 * 1024, 3);
    EXPECT_GT(big.read_energy_pj, small.read_energy_pj);
    EXPECT_EQ(small.bits, 1024ull * 3);
    EXPECT_EQ(big.bits, 64ull * 1024 * 3);
}

TEST(SramModelTest, CamScalesWithEntriesAndBits)
{
    SramModel model;
    PowerDelay a = model.cam(4, 22);
    PowerDelay b = model.cam(64, 22);
    PowerDelay c = model.cam(4, 44);
    EXPECT_GT(b.read_energy_pj, a.read_energy_pj);
    EXPECT_GT(c.read_energy_pj, a.read_energy_pj);
}

TEST(SramModelTest, DegenerateGeometriesRejected)
{
    SramModel model;
    EXPECT_DEATH(model.cache(geom(0, 1, 32)), "zero size");
    EXPECT_DEATH(model.table(0, 3), "degenerate");
    EXPECT_DEATH(model.cam(0, 8), "degenerate");
}

TEST(SramModelTest, MnmStructuresFarCheaperThanShieldedCaches)
{
    // The paper's premise: probing the MNM costs much less than probing
    // the caches it shields. Compare the largest TMNM table (12 bits x 3
    // tables ~ modelled as one here) to the L3 it protects.
    SramModel model;
    PowerDelay tmnm = model.table(1 << 12, 3);
    PowerDelay l3 = model.cache(geom(128 * 1024, 4, 64));
    EXPECT_LT(tmnm.read_energy_pj * 3, l3.read_energy_pj / 5);
}

TEST(SramModelTest, WayPredictedReadCheaperThanFull)
{
    SramModel model;
    for (std::uint32_t ways : {2u, 4u, 8u}) {
        CacheGeometry g = geom(64 * 1024, ways, 64);
        auto [predicted, extra] = model.wayPredictedRead(g);
        PowerDelay full = model.cache(g);
        EXPECT_LT(predicted, full.read_energy_pj) << ways << " ways";
        EXPECT_GT(extra, 0.0);
        // Prediction + full replay should cost about a full read or
        // more (no free lunch on mispredicts).
        EXPECT_GT(predicted + extra, full.read_energy_pj * 0.8);
    }
}

TEST(SramModelTest, WayPredictionSavingsGrowWithAssociativity)
{
    SramModel model;
    auto saving = [&](std::uint32_t ways) {
        CacheGeometry g = geom(64 * 1024, ways, 64);
        auto [predicted, extra] = model.wayPredictedRead(g);
        (void)extra;
        return 1.0 - predicted / model.cache(g).read_energy_pj;
    };
    EXPECT_GT(saving(8), saving(2));
}

TEST(SramModelTest, DelayToCycles)
{
    EXPECT_EQ(delayToCycles(0.0, 1.0), 0u);
    EXPECT_EQ(delayToCycles(0.5, 1.0), 1u);
    EXPECT_EQ(delayToCycles(1.0, 1.0), 1u);
    EXPECT_EQ(delayToCycles(1.0001, 1.0), 2u);
    EXPECT_EQ(delayToCycles(1.0, 2.0), 2u); // 2 GHz: 0.5ns cycles
    EXPECT_DEATH(delayToCycles(1.0, 0.0), "clock");
}

TEST(CheckerModelTest, FlipFlopsMatchPaperEquation3)
{
    // ff(w) = w(w+1)(2w+1)/6
    EXPECT_EQ(CheckerModel::flipFlops(1), 1u);
    EXPECT_EQ(CheckerModel::flipFlops(3), 14u);
    EXPECT_EQ(CheckerModel::flipFlops(10), 385u);
    EXPECT_EQ(CheckerModel::flipFlops(13), 819u);
    EXPECT_EQ(CheckerModel::flipFlops(20), 2870u);
}

TEST(CheckerModelTest, LogicGatesGrowAsW4ish)
{
    // gates(2w) / gates(w) should approach 2^4 = 16 for the O(w^4) law.
    double r = static_cast<double>(CheckerModel::logicGates(24)) /
               static_cast<double>(CheckerModel::logicGates(12));
    EXPECT_GT(r, 10.0);
    EXPECT_LT(r, 20.0);
}

TEST(CheckerModelTest, EnergyScalesWithReplication)
{
    CheckerModel model;
    PowerDelay one = model.evaluate(13, 1);
    PowerDelay two = model.evaluate(13, 2);
    EXPECT_NEAR(two.read_energy_pj, 2 * one.read_energy_pj, 1e-9);
    EXPECT_DOUBLE_EQ(two.access_ns, one.access_ns); // parallel checkers
}

TEST(CheckerModelTest, DelayGrowsWithWidth)
{
    CheckerModel model;
    EXPECT_LT(model.evaluate(10, 1).access_ns,
              model.evaluate(20, 1).access_ns);
}

TEST(CheckerModelTest, RejectsDegenerateConfigs)
{
    CheckerModel model;
    EXPECT_DEATH(model.evaluate(1, 1), "narrower");
    EXPECT_DEATH(model.evaluate(10, 0), "zero checkers");
}

TEST(PowerDelayTest, ToStringMentionsFields)
{
    PowerDelay pd;
    pd.read_energy_pj = 1.5;
    pd.bits = 42;
    std::string s = pd.toString();
    EXPECT_NE(s.find("read=1.5"), std::string::npos);
    EXPECT_NE(s.find("bits=42"), std::string::npos);
}

} // anonymous namespace
} // namespace mnm
