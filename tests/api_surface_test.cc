/**
 * @file
 * Targeted tests for API surface not exercised elsewhere: the bypass
 * mask, access-record capacity clamps, logging formatter, hierarchy
 * accessors, the 7-level machine, and description strings.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "util/logging.hh"

namespace mnm
{
namespace
{

TEST(BypassMaskTest, SetTestClearRaw)
{
    BypassMask mask;
    EXPECT_EQ(mask.raw(), 0u);
    mask.set(0);
    mask.set(5);
    EXPECT_TRUE(mask.test(0));
    EXPECT_FALSE(mask.test(1));
    EXPECT_TRUE(mask.test(5));
    EXPECT_EQ(mask.raw(), (1u << 0) | (1u << 5));
    mask.clear();
    EXPECT_EQ(mask.raw(), 0u);
}

TEST(AccessResultTest, ProbeOverflowIsALogicBugNotASilentDrop)
{
    AccessResult r;
    for (std::size_t i = 0; i < AccessResult::max_probes; ++i) {
        r.addProbe({static_cast<CacheId>(i),
                    static_cast<std::uint8_t>(i + 1), false, false});
    }
    EXPECT_EQ(r.num_probes, AccessResult::max_probes);
    EXPECT_DEATH(r.addProbe({0, 1, false, false}),
                 "probe record overflow");
}

TEST(AccessResultTest, WritebackOverflowIsALogicBugNotASilentDrop)
{
    AccessResult r;
    for (std::size_t i = 0; i < AccessResult::max_writebacks; ++i)
        r.addWriteback({static_cast<CacheId>(i), false});
    EXPECT_EQ(r.num_writebacks, AccessResult::max_writebacks);
    EXPECT_DEATH(r.addWriteback({0, false}), "writeback record overflow");
}

TEST(LoggingTest, VformatFormats)
{
    EXPECT_EQ(detail::vformat("plain"), "plain");
    EXPECT_EQ(detail::vformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(detail::vformat("%0.2f", 1.5), "1.50");
}

TEST(SevenLevelTest, TopologyAndPaths)
{
    CacheHierarchy h(paperHierarchy(7));
    EXPECT_EQ(h.levels(), 7u);
    EXPECT_EQ(h.numCaches(), 9u); // split L1+L2, unified L3..L7
    const auto &dpath = h.path(AccessType::Load);
    ASSERT_EQ(dpath.size(), 7u);
    EXPECT_EQ(h.cacheAt(7, AccessType::Load).params().name, "ul7");
    // Cold walk: 2+8+18+34+70+110+200+320.
    AccessResult r = h.access(AccessType::Load, 0xdeadbe0);
    EXPECT_EQ(r.latency, 762u);
}

TEST(SevenLevelTest, MnmCoversLevelsTwoThroughSeven)
{
    CacheHierarchy h(paperHierarchy(7));
    MnmUnit mnm(makeUniformSpec(TmnmSpec{10, 2, 3}), h);
    // All non-L1 caches carry filters.
    std::uint32_t with_filters = 0;
    for (CacheId id = 0; id < h.numCaches(); ++id) {
        if (!mnm.filtersOf(id).empty())
            ++with_filters;
    }
    EXPECT_EQ(with_filters, 7u); // il2, dl2, ul3..ul7
    // Cold bypass identifies everything beyond L1 on the LOAD path
    // (dl2 + ul3..ul7 = 6 caches; il2 is not on this path).
    BypassMask mask = mnm.computeBypass(AccessType::Load, 0x123400);
    std::uint32_t bits = 0;
    for (CacheId id = 0; id < h.numCaches(); ++id)
        bits += mask.test(id);
    EXPECT_EQ(bits, 6u);
    // The fetch path covers il2 instead.
    BypassMask imask = mnm.computeBypass(AccessType::InstFetch, 0x1234);
    std::uint32_t ibits = 0;
    for (CacheId id = 0; id < h.numCaches(); ++id)
        ibits += imask.test(id);
    EXPECT_EQ(ibits, 6u);
}

TEST(DescribeTest, PlacementNames)
{
    for (auto [placement, word] :
         {std::pair{MnmPlacement::Parallel, "parallel"},
          std::pair{MnmPlacement::Serial, "serial"},
          std::pair{MnmPlacement::Distributed, "distributed"}}) {
        CacheHierarchy h(paperHierarchy(3));
        MnmSpec spec = makeUniformSpec(TmnmSpec{8, 1, 3});
        spec.placement = placement;
        MnmUnit mnm(spec, h);
        EXPECT_NE(mnm.describe().find(word), std::string::npos);
    }
}

TEST(PaperConfigTest, UnsupportedLevelCountIsFatal)
{
    EXPECT_EXIT(paperHierarchy(4), ::testing::ExitedWithCode(1),
                "supported: 2, 3, 5, 7");
}

TEST(PaperConfigTest, CpuWidthsFollowThePaper)
{
    EXPECT_EQ(paperCpu(2).issue_width, 4u);
    EXPECT_EQ(paperCpu(3).issue_width, 4u);
    EXPECT_EQ(paperCpu(5).issue_width, 8u);
    EXPECT_EQ(paperCpu(7).issue_width, 8u);
    // "resources twice of the processor for 2 and 3 level" --
    EXPECT_EQ(paperCpu(5).window_size, 2 * paperCpu(3).window_size);
    EXPECT_EQ(paperCpu(5).lsq_size, 2 * paperCpu(3).lsq_size);
}

TEST(PaperConfigTest, FiveLevelMatchesSection41)
{
    HierarchyParams p = paperHierarchy(5);
    ASSERT_EQ(p.levels.size(), 5u);
    EXPECT_TRUE(p.levels[0].split);
    EXPECT_EQ(p.levels[0].data.capacity_bytes, 4u * 1024);
    EXPECT_EQ(p.levels[0].data.associativity, 1u);
    EXPECT_EQ(p.levels[0].data.hit_latency, 2u);
    EXPECT_TRUE(p.levels[1].split);
    EXPECT_EQ(p.levels[1].data.capacity_bytes, 16u * 1024);
    EXPECT_EQ(p.levels[1].data.associativity, 2u);
    EXPECT_EQ(p.levels[1].data.hit_latency, 8u);
    EXPECT_FALSE(p.levels[2].split);
    EXPECT_EQ(p.levels[2].data.capacity_bytes, 128u * 1024);
    EXPECT_EQ(p.levels[2].data.block_bytes, 64u);
    EXPECT_EQ(p.levels[2].data.hit_latency, 18u);
    EXPECT_EQ(p.levels[3].data.capacity_bytes, 512u * 1024);
    EXPECT_EQ(p.levels[3].data.hit_latency, 34u);
    EXPECT_EQ(p.levels[4].data.capacity_bytes, 2048u * 1024);
    EXPECT_EQ(p.levels[4].data.associativity, 8u);
    EXPECT_EQ(p.levels[4].data.hit_latency, 70u);
    EXPECT_EQ(p.memory_latency, 320u);
}

TEST(HierarchyAccessorTest, CacheAtRejectsBadLevel)
{
    CacheHierarchy h(paperHierarchy(3));
    EXPECT_DEATH(h.cacheAt(0, AccessType::Load), "level out of range");
    EXPECT_DEATH(h.cacheAt(9, AccessType::Load), "level out of range");
}

} // anonymous namespace
} // namespace mnm
