/**
 * @file
 * Unit tests for the Table MNM: counter bookkeeping, the sticky
 * saturation rule, multi-table composition, and shadow-set soundness.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/tmnm.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

TEST(TmnmTest, ColdTableSaysMiss)
{
    Tmnm tmnm({10, 1, 3});
    EXPECT_TRUE(tmnm.definitelyMiss(0x3ff));
}

TEST(TmnmTest, PlacementMakesIndexMaybe)
{
    Tmnm tmnm({10, 1, 3});
    tmnm.onPlacement(0x123);
    EXPECT_FALSE(tmnm.definitelyMiss(0x123));
    // Aliases share the low 10 bits: also "maybe".
    EXPECT_FALSE(tmnm.definitelyMiss(0x123 | (1ull << 10)));
    // A different index is still a definite miss.
    EXPECT_TRUE(tmnm.definitelyMiss(0x124));
}

TEST(TmnmTest, ReplacementRestoresMiss)
{
    Tmnm tmnm({10, 1, 3});
    tmnm.onPlacement(0x7);
    tmnm.onReplacement(0x7);
    EXPECT_TRUE(tmnm.definitelyMiss(0x7));
}

TEST(TmnmTest, CounterTracksAliases)
{
    Tmnm tmnm({10, 1, 3});
    BlockAddr a = 0x55;
    BlockAddr alias = 0x55 | (1ull << 10);
    tmnm.onPlacement(a);
    tmnm.onPlacement(alias);
    tmnm.onReplacement(a);
    EXPECT_FALSE(tmnm.definitelyMiss(alias)); // one mapped block remains
    tmnm.onReplacement(alias);
    EXPECT_TRUE(tmnm.definitelyMiss(alias));
}

TEST(TmnmTest, SaturationIsSticky)
{
    Tmnm tmnm({10, 1, 3}); // saturates at 7
    BlockAddr base = 0x10;
    // Map 9 distinct aliases to the same index.
    for (std::uint64_t i = 0; i < 9; ++i)
        tmnm.onPlacement(base | (i << 10));
    EXPECT_EQ(tmnm.saturatedCounters(), 1u);
    // Remove all 9: the counter must stay saturated ("maybe"), because
    // the count was lost at saturation.
    for (std::uint64_t i = 0; i < 9; ++i)
        tmnm.onReplacement(base | (i << 10));
    EXPECT_FALSE(tmnm.definitelyMiss(base));
    EXPECT_EQ(tmnm.saturatedCounters(), 1u);
    EXPECT_EQ(tmnm.anomalies(), 0u);
}

TEST(TmnmTest, FlushResetsSaturation)
{
    Tmnm tmnm({10, 1, 3});
    for (std::uint64_t i = 0; i < 9; ++i)
        tmnm.onPlacement(0x10 | (i << 10));
    tmnm.onFlush();
    EXPECT_EQ(tmnm.saturatedCounters(), 0u);
    EXPECT_TRUE(tmnm.definitelyMiss(0x10));
}

TEST(TmnmTest, MultiTableAnyZeroMeansMiss)
{
    Tmnm tmnm({8, 2, 3});
    // Place a block; probe an address sharing table-0 index (low 8 bits)
    // but differing in table-1's window (bits 6..13).
    BlockAddr placed = 0x0ff;
    BlockAddr probe = 0x0ff | (0xffull << 8); // same low 8, high differ
    tmnm.onPlacement(placed);
    EXPECT_FALSE(tmnm.definitelyMiss(placed));
    EXPECT_TRUE(tmnm.definitelyMiss(probe));
}

TEST(TmnmTest, SingleTableFooledWhereMultiTableIsNot)
{
    Tmnm one({8, 1, 3});
    Tmnm two({8, 2, 3});
    BlockAddr placed = 0x0ff;
    BlockAddr probe = 0x0ff | (0xffull << 8);
    one.onPlacement(placed);
    two.onPlacement(placed);
    EXPECT_FALSE(one.definitelyMiss(probe));
    EXPECT_TRUE(two.definitelyMiss(probe));
}

TEST(TmnmTest, WiderCountersSaturateLater)
{
    Tmnm narrow({10, 1, 2}); // saturates at 3
    Tmnm wide({10, 1, 4});   // saturates at 15
    for (std::uint64_t i = 0; i < 5; ++i) {
        narrow.onPlacement(0x1 | (i << 10));
        wide.onPlacement(0x1 | (i << 10));
    }
    EXPECT_EQ(narrow.saturatedCounters(), 1u);
    EXPECT_EQ(wide.saturatedCounters(), 0u);
}

TEST(TmnmTest, ReplacementOnZeroCounterIsAnomaly)
{
    Tmnm tmnm({10, 1, 3});
    tmnm.onReplacement(0x5);
    EXPECT_EQ(tmnm.anomalies(), 1u);
}

TEST(TmnmTest, NameAndStorage)
{
    Tmnm tmnm({12, 3, 3});
    EXPECT_EQ(tmnm.name(), "TMNM_12x3");
    EXPECT_EQ(tmnm.storageBits(), (1ull << 12) * 3 * 3);
}

TEST(TmnmTest, RejectsBadSpecs)
{
    EXPECT_EXIT(Tmnm({0, 1, 3}), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(Tmnm({10, 9, 3}), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(Tmnm({10, 1, 0}), ::testing::ExitedWithCode(1),
                "out of range");
}

/** Soundness with saturation churn against a shadow set. */
TEST(TmnmTest, SoundAgainstShadowSetUnderRandomChurn)
{
    for (std::uint32_t repl = 1; repl <= 3; ++repl) {
        // Tiny tables force heavy aliasing and saturation.
        Tmnm tmnm({5, repl, 3});
        std::set<BlockAddr> shadow;
        Rng rng(7 + repl);
        for (int step = 0; step < 30000; ++step) {
            BlockAddr block = rng.nextBelow(1 << 16);
            if (!shadow.empty() && rng.nextBool(0.45)) {
                auto it = shadow.lower_bound(block);
                if (it == shadow.end())
                    it = shadow.begin();
                tmnm.onReplacement(*it);
                shadow.erase(it);
            } else if (!shadow.count(block)) {
                tmnm.onPlacement(block);
                shadow.insert(block);
            }
            BlockAddr probe = rng.nextBelow(1 << 16);
            if (tmnm.definitelyMiss(probe)) {
                ASSERT_FALSE(shadow.count(probe)) << "unsound verdict";
            }
        }
        EXPECT_EQ(tmnm.anomalies(), 0u);
    }
}

} // anonymous namespace
} // namespace mnm
