/**
 * @file
 * Unit tests for trace serialization: round-tripping, header handling,
 * and replay semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/spec2000.hh"
#include "trace/trace_io.hh"

namespace mnm
{
namespace
{

/** A unique temp path per test. */
std::string
tmpPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/mnm_trace_" + tag +
           ".bin";
}

TEST(TraceIoTest, RoundTripPreservesEveryField)
{
    std::string path = tmpPath("roundtrip");
    auto gen = makeSpecWorkload("164.gzip");
    {
        TraceWriter writer(path, "164.gzip");
        writer.capture(*gen, 5000);
        EXPECT_EQ(writer.written(), 5000u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.length(), 5000u);
    EXPECT_EQ(reader.name(), "164.gzip");

    gen->reset();
    Instruction expect, got;
    for (int i = 0; i < 5000; ++i) {
        gen->next(expect);
        reader.next(got);
        ASSERT_EQ(expect.pc, got.pc) << i;
        ASSERT_EQ(expect.mem_addr, got.mem_addr) << i;
        ASSERT_EQ(static_cast<int>(expect.cls),
                  static_cast<int>(got.cls))
            << i;
        ASSERT_EQ(expect.dep1, got.dep1) << i;
        ASSERT_EQ(expect.dep2, got.dep2) << i;
        ASSERT_EQ(expect.exec_latency, got.exec_latency) << i;
        ASSERT_EQ(expect.mispredicted, got.mispredicted) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceIoTest, ReaderWrapsAround)
{
    std::string path = tmpPath("wrap");
    {
        TraceWriter writer(path, "w");
        Instruction inst;
        inst.pc = 0xabc;
        writer.append(inst);
    }
    TraceReader reader(path);
    Instruction out;
    reader.next(out);
    reader.next(out); // wraps to the single record
    EXPECT_EQ(out.pc, 0xabcu);
    std::remove(path.c_str());
}

TEST(TraceIoTest, ResetRestartsReplay)
{
    std::string path = tmpPath("reset");
    {
        TraceWriter writer(path, "w");
        Instruction inst;
        inst.pc = 1;
        writer.append(inst);
        inst.pc = 2;
        writer.append(inst);
    }
    TraceReader reader(path);
    Instruction out;
    reader.next(out);
    EXPECT_EQ(out.pc, 1u);
    reader.reset();
    reader.next(out);
    EXPECT_EQ(out.pc, 1u);
    std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileFatal)
{
    EXPECT_EXIT(TraceReader r("/nonexistent/path/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoTest, GarbageFileRejected)
{
    std::string path = tmpPath("garbage");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not a trace", f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
                "not an mnm trace");
    std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRejected)
{
    std::string path = tmpPath("empty");
    {
        TraceWriter writer(path, "empty");
    }
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
                "no records");
    std::remove(path.c_str());
}

TEST(TraceIoTest, LongWorkloadNameTruncatedSafely)
{
    std::string path = tmpPath("longname");
    std::string long_name(200, 'x');
    {
        TraceWriter writer(path, long_name);
        Instruction inst;
        writer.append(inst);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.name().size(), 63u);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace mnm
