/**
 * @file
 * Tests for the sampled-simulation methodology helper.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/sampling.hh"
#include "trace/spec2000.hh"
#include "trace/workload.hh"

namespace mnm
{
namespace
{

TEST(SamplingTest, WindowAccountingAddsUp)
{
    MemorySimulator sim(paperHierarchy(5));
    auto workload = makeSpecWorkload("164.gzip");
    SamplingPlan plan;
    plan.fast_forward = 10000;
    plan.window = 5000;
    plan.windows = 4;
    plan.stride = 2000;
    SampledResult r = runSampled(sim, *workload, plan);
    EXPECT_EQ(r.combined.instructions, 4u * 5000u);
    EXPECT_EQ(r.access_time.count(), 4u);
    EXPECT_GT(r.combined.requests, 0u);
    EXPECT_GT(r.access_time.mean(), 0.0);
}

TEST(SamplingTest, FastForwardWarmsState)
{
    // With a generous fast-forward, the first measured window should
    // see a warm hierarchy: much lower access time than a cold run of
    // the same length.
    auto workload_cold = makeSpecWorkload("200.sixtrack");
    MemorySimulator cold(paperHierarchy(5));
    MemSimResult cold_r = cold.run(*workload_cold, 5000);

    auto workload_warm = makeSpecWorkload("200.sixtrack");
    MemorySimulator warm(paperHierarchy(5));
    SamplingPlan plan;
    plan.fast_forward = 100000;
    plan.window = 5000;
    plan.windows = 1;
    SampledResult warm_r = runSampled(warm, *workload_warm, plan);
    EXPECT_LT(warm_r.combined.avgAccessTime(),
              cold_r.avgAccessTime() * 0.8);
}

TEST(SamplingTest, SpreadIsSmallForSteadyWorkloads)
{
    // A single-region uniform workload has no phases: the per-window
    // spread should be tight.
    MemorySimulator sim(paperHierarchy(3));
    UniformRandomWorkload workload(64 * 1024, 0.3, 0.1, 5);
    SamplingPlan plan;
    plan.fast_forward = 50000;
    plan.window = 20000;
    plan.windows = 5;
    plan.stride = 0;
    SampledResult r = runSampled(sim, workload, plan);
    EXPECT_LT(r.accessTimeSpread(), 0.1);
}

TEST(SamplingTest, CoverageMergesAcrossWindows)
{
    MemorySimulator sim(paperHierarchy(5), makeHmnmSpec(2));
    auto workload = makeSpecWorkload("176.gcc");
    SamplingPlan plan;
    plan.fast_forward = 20000;
    plan.window = 10000;
    plan.windows = 3;
    plan.stride = 5000;
    SampledResult r = runSampled(sim, *workload, plan);
    EXPECT_GT(r.combined.coverage.opportunities(), 0u);
    EXPECT_EQ(r.coverage.count(), 3u);
    // The merged coverage must sit inside the per-window range.
    EXPECT_GE(r.combined.coverage.coverage(), r.coverage.min() - 1e-12);
    EXPECT_LE(r.combined.coverage.coverage(), r.coverage.max() + 1e-12);
}

TEST(SamplingTest, RejectsEmptyPlan)
{
    MemorySimulator sim(paperHierarchy(3));
    UniformRandomWorkload workload(4096, 0.3, 0.1, 5);
    SamplingPlan plan;
    plan.window = 0;
    EXPECT_EXIT(runSampled(sim, workload, plan),
                ::testing::ExitedWithCode(1), "empty measurement");
}

TEST(CoverageMergeTest, CountsAdd)
{
    CoverageTracker a;
    CoverageTracker b;
    AccessResult r;
    r.supply_level = 3;
    r.addProbe({1, 2, true, false});
    a.record(r);
    b.record(r);
    AccessResult r2;
    r2.supply_level = 3;
    r2.addProbe({1, 2, false, false});
    b.record(r2);
    a.merge(b);
    EXPECT_EQ(a.identified(), 2u);
    EXPECT_EQ(a.unidentified(), 1u);
    EXPECT_EQ(a.identifiedAt(2), 2u);
}

} // anonymous namespace
} // namespace mnm
