/**
 * @file
 * Unit tests for the Sum MNM: the Figure 5 hash, checker bookkeeping in
 * both update modes, multi-checker composition, and soundness against a
 * shadow set.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/smnm.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

TEST(SmnmTest, SumHashMatchesPaperFigure5)
{
    // sum += i*i for each set bit i (1-based over the window).
    EXPECT_EQ(Smnm::sumHash(0b0, 0, 4), 0u);
    EXPECT_EQ(Smnm::sumHash(0b1, 0, 4), 1u);      // bit 1 -> 1
    EXPECT_EQ(Smnm::sumHash(0b10, 0, 4), 4u);     // bit 2 -> 4
    EXPECT_EQ(Smnm::sumHash(0b1000, 0, 4), 16u);  // bit 4 -> 16
    EXPECT_EQ(Smnm::sumHash(0b1011, 0, 4), 21u);  // 1 + 4 + 16
    EXPECT_EQ(Smnm::sumHash(0b1111, 0, 4), 30u);  // 1+4+9+16
}

TEST(SmnmTest, SumHashWindowOffset)
{
    // With offset 4, examine bits 4..7 of the address.
    EXPECT_EQ(Smnm::sumHash(0xf0, 4, 4), 30u);
    EXPECT_EQ(Smnm::sumHash(0x0f, 4, 4), 0u);
}

TEST(SmnmTest, SumHashIgnoresBitsAboveWindow)
{
    EXPECT_EQ(Smnm::sumHash(0x10, 0, 4), 0u); // bit 5 outside width-4
}

TEST(SmnmTest, SumValuesFormula)
{
    // 1 + w(w+1)(2w+1)/6
    EXPECT_EQ(Smnm::sumValues(4), 31u);
    EXPECT_EQ(Smnm::sumValues(10), 386u);
    EXPECT_EQ(Smnm::sumValues(13), 820u);
}

TEST(SmnmTest, ColdFilterSaysMissForEverything)
{
    Smnm smnm({10, 1, SmnmUpdateMode::Counting});
    EXPECT_TRUE(smnm.definitelyMiss(0x123));
}

TEST(SmnmTest, PlacementMakesHashMaybe)
{
    Smnm smnm({10, 1, SmnmUpdateMode::Counting});
    smnm.onPlacement(0x123);
    EXPECT_FALSE(smnm.definitelyMiss(0x123));
    // Any block with the same sum is also "maybe" (the aliasing that
    // limits SMNM coverage).
    EXPECT_FALSE(smnm.definitelyMiss(0x123));
}

TEST(SmnmTest, DistinctSumStillMiss)
{
    Smnm smnm({10, 1, SmnmUpdateMode::Counting});
    smnm.onPlacement(0b1); // sum 1
    EXPECT_TRUE(smnm.definitelyMiss(0b10)); // sum 4
}

TEST(SmnmTest, CountingModeReplacementRestoresMiss)
{
    Smnm smnm({10, 1, SmnmUpdateMode::Counting});
    smnm.onPlacement(0x123);
    smnm.onReplacement(0x123);
    EXPECT_TRUE(smnm.definitelyMiss(0x123));
}

TEST(SmnmTest, CountingModeTracksMultiplicity)
{
    Smnm smnm({10, 1, SmnmUpdateMode::Counting});
    // Two different blocks with the same sum: 0b1001 (1+9=10) and
    // 0b0110 (4+... wait 4+9? bits 2,3 -> 4+9=13). Use equal blocks of
    // distinct addresses: bits {1,4}=1+16=17 and bits {2,...}: find two
    // windows with equal sums: {1,4} -> 17, no simple pair; simplest is
    // the same address placed twice (two caches' worth is not modelled,
    // so use alias pair {3}=9+{1,2}? 1+4=5 vs ... just verify the count
    // with the same sum value via two placements of one address).
    smnm.onPlacement(0x9);
    smnm.onPlacement(0x9);
    smnm.onReplacement(0x9);
    EXPECT_FALSE(smnm.definitelyMiss(0x9)); // one copy still tracked
    smnm.onReplacement(0x9);
    EXPECT_TRUE(smnm.definitelyMiss(0x9));
}

TEST(SmnmTest, SetOnlyModeNeverClears)
{
    Smnm smnm({10, 1, SmnmUpdateMode::SetOnly});
    smnm.onPlacement(0x123);
    smnm.onReplacement(0x123);
    EXPECT_FALSE(smnm.definitelyMiss(0x123)); // stays "maybe"
    smnm.onFlush();
    EXPECT_TRUE(smnm.definitelyMiss(0x123)); // flush resets the flops
}

TEST(SmnmTest, MultiCheckerCatchesMore)
{
    // Blocks whose low windows collide can still differ in the window
    // at offset 6.
    Smnm one({6, 1, SmnmUpdateMode::Counting});
    Smnm two({6, 2, SmnmUpdateMode::Counting});
    BlockAddr placed = 0x001;
    BlockAddr probe = 0x001 | (0x3full << 6); // same low bits, high differ
    one.onPlacement(placed);
    two.onPlacement(placed);
    EXPECT_FALSE(one.definitelyMiss(probe)); // single checker fooled
    EXPECT_TRUE(two.definitelyMiss(probe));  // second checker says no
}

TEST(SmnmTest, FlushResetsCountingState)
{
    Smnm smnm({10, 2, SmnmUpdateMode::Counting});
    smnm.onPlacement(0x42);
    smnm.onFlush();
    EXPECT_TRUE(smnm.definitelyMiss(0x42));
}

TEST(SmnmTest, ReplacementWithoutPlacementCountsAnomaly)
{
    Smnm smnm({10, 1, SmnmUpdateMode::Counting});
    smnm.onReplacement(0x42);
    EXPECT_EQ(smnm.anomalies(), 1u);
    EXPECT_TRUE(smnm.definitelyMiss(0x42)); // clamped, still sound-ish
}

TEST(SmnmTest, NameReflectsConfig)
{
    EXPECT_EQ(Smnm({13, 2, SmnmUpdateMode::Counting}).name(), "SMNM_13x2");
    EXPECT_EQ(Smnm({10, 1, SmnmUpdateMode::SetOnly}).name(),
              "SMNM_10x1(set-only)");
}

TEST(SmnmTest, StorageBitsMatchEquation3)
{
    Smnm smnm({10, 3, SmnmUpdateMode::Counting});
    EXPECT_EQ(smnm.storageBits(), 3ull * 386);
}

TEST(SmnmTest, RejectsBadSpecs)
{
    EXPECT_EXIT(Smnm({1, 1, SmnmUpdateMode::Counting}),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(Smnm({10, 0, SmnmUpdateMode::Counting}),
                ::testing::ExitedWithCode(1), "out of range");
}

/** Soundness property: "miss" verdicts never contradict a shadow set. */
TEST(SmnmTest, SoundAgainstShadowSetUnderRandomChurn)
{
    for (std::uint32_t repl = 1; repl <= 3; ++repl) {
        Smnm smnm({12, repl, SmnmUpdateMode::Counting});
        std::set<BlockAddr> shadow;
        Rng rng(99 + repl);
        for (int step = 0; step < 20000; ++step) {
            BlockAddr block = rng.nextBelow(1 << 18);
            if (!shadow.empty() && rng.nextBool(0.45)) {
                auto it = shadow.lower_bound(block);
                if (it == shadow.end())
                    it = shadow.begin();
                smnm.onReplacement(*it);
                shadow.erase(it);
            } else if (!shadow.count(block)) {
                smnm.onPlacement(block);
                shadow.insert(block);
            }
            BlockAddr probe = rng.nextBelow(1 << 18);
            if (smnm.definitelyMiss(probe)) {
                ASSERT_FALSE(shadow.count(probe)) << "unsound verdict";
            }
        }
        EXPECT_EQ(smnm.anomalies(), 0u);
    }
}

} // anonymous namespace
} // namespace mnm
