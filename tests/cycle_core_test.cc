/**
 * @file
 * Tests for the cycle-driven core, including cross-validation against
 * the fast dataflow model (ooo_core): both must respect the same
 * throughput bounds and rank machine configurations identically.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "cpu/cycle_core.hh"
#include "sim/config.hh"
#include "trace/spec2000.hh"
#include "trace/workload.hh"

namespace mnm
{
namespace
{

HierarchyParams
tinyParams(Cycles memory_latency = 100)
{
    HierarchyParams params;
    LevelParams l1;
    l1.data.name = "l1";
    l1.data.capacity_bytes = 1024;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 2;
    LevelParams l2;
    l2.data.name = "l2";
    l2.data.capacity_bytes = 8192;
    l2.data.associativity = 2;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 8;
    params.levels = {l1, l2};
    params.memory_latency = memory_latency;
    return params;
}

std::vector<Instruction>
independentAlus()
{
    Instruction alu;
    alu.cls = InstClass::IntAlu;
    alu.pc = 0x1000;
    return {alu};
}

TEST(CycleCoreTest, IpcBoundedByWidth)
{
    CacheHierarchy h(tinyParams());
    CycleOooCore core(CpuParams::eightWay(), h);
    ScriptedWorkload w(independentAlus());
    CpuRunStats stats = core.run(w, 50000);
    EXPECT_LE(stats.ipc(), 8.0 + 1e-9);
    EXPECT_GT(stats.ipc(), 5.0);
}

TEST(CycleCoreTest, SerialChainRunsNearOneIpc)
{
    CacheHierarchy h(tinyParams());
    CycleOooCore core(CpuParams::eightWay(), h);
    Instruction chained;
    chained.cls = InstClass::IntAlu;
    chained.pc = 0x1000;
    chained.dep1 = 1;
    ScriptedWorkload w({chained});
    CpuRunStats stats = core.run(w, 20000);
    EXPECT_LE(stats.ipc(), 1.0 + 1e-9);
    EXPECT_GT(stats.ipc(), 0.8);
}

TEST(CycleCoreTest, MispredictsCostCycles)
{
    CacheHierarchy ha(tinyParams());
    CacheHierarchy hb(tinyParams());
    CycleOooCore core_a(CpuParams::eightWay(), ha);
    CycleOooCore core_b(CpuParams::eightWay(), hb);
    Instruction good;
    good.cls = InstClass::Branch;
    good.pc = 0x1000;
    Instruction bad = good;
    bad.mispredicted = true;
    ScriptedWorkload wg({good});
    ScriptedWorkload wb({bad});
    CpuRunStats sg = core_a.run(wg, 5000);
    CpuRunStats sb = core_b.run(wb, 5000);
    EXPECT_GT(sb.cycles, sg.cycles * 2);
}

TEST(CycleCoreTest, MemoryLatencySensitivity)
{
    std::vector<Instruction> script;
    for (int i = 0; i < 2048; ++i) {
        Instruction l;
        l.cls = InstClass::Load;
        l.pc = 0x1000;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        l.dep1 = 1;
        script.push_back(l);
    }
    CacheHierarchy fast(tinyParams(50));
    CacheHierarchy slow(tinyParams(400));
    CycleOooCore cf(CpuParams::eightWay(), fast);
    CycleOooCore cs(CpuParams::eightWay(), slow);
    ScriptedWorkload wf(script);
    ScriptedWorkload ws(script);
    EXPECT_GT(cs.run(ws, 2048).cycles, cf.run(wf, 2048).cycles * 3);
}

TEST(CycleCoreTest, MshrsBoundMlp)
{
    std::vector<Instruction> script;
    for (int i = 0; i < 1024; ++i) {
        Instruction l;
        l.cls = InstClass::Load;
        l.pc = 0x1000;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    CpuParams few = CpuParams::eightWay();
    few.mshrs = 1;
    CacheHierarchy h1(tinyParams());
    CacheHierarchy h2(tinyParams());
    CycleOooCore core_few(few, h1);
    CycleOooCore core_many(CpuParams::eightWay(), h2);
    ScriptedWorkload w1(script);
    ScriptedWorkload w2(script);
    EXPECT_GT(core_few.run(w1, 1024).cycles,
              core_many.run(w2, 1024).cycles * 3);
}

TEST(CycleCoreTest, WindowBoundsOverlap)
{
    std::vector<Instruction> script;
    for (int i = 0; i < 1024; ++i) {
        Instruction l;
        l.cls = InstClass::Load;
        l.pc = 0x1000;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    CpuParams small = CpuParams::eightWay();
    small.window_size = 4;
    CacheHierarchy h1(tinyParams());
    CacheHierarchy h2(tinyParams());
    CycleOooCore cs(small, h1);
    CycleOooCore cb(CpuParams::eightWay(), h2);
    ScriptedWorkload w1(script);
    ScriptedWorkload w2(script);
    EXPECT_GT(cs.run(w1, 1024).cycles, cb.run(w2, 1024).cycles);
}

TEST(CycleCoreTest, MnmReducesCycles)
{
    auto run = [&](bool with_mnm) {
        CacheHierarchy h(paperHierarchy(5));
        std::unique_ptr<MnmUnit> mnm;
        if (with_mnm)
            mnm = std::make_unique<MnmUnit>(makePerfectSpec(), h);
        CycleOooCore core(paperCpu(5), h, mnm.get());
        auto w = makeSpecWorkload("181.mcf");
        return core.run(*w, 30000).cycles;
    };
    EXPECT_LT(run(true), run(false));
}

/** Cross-validation against the dataflow model. */
TEST(CycleCoreTest, AgreesWithDataflowModelWithinBand)
{
    for (const char *app : {"164.gzip", "181.mcf", "171.swim"}) {
        CacheHierarchy h1(paperHierarchy(5));
        CacheHierarchy h2(paperHierarchy(5));
        OooCore fast(paperCpu(5), h1);
        CycleOooCore slow(paperCpu(5), h2);
        auto w1 = makeSpecWorkload(app);
        auto w2 = makeSpecWorkload(app);
        double ipc_fast = fast.run(*w1, 30000).ipc();
        double ipc_slow = slow.run(*w2, 30000).ipc();
        EXPECT_GT(ipc_fast, ipc_slow * 0.5) << app;
        EXPECT_LT(ipc_fast, ipc_slow * 2.0) << app;
    }
}

TEST(CycleCoreTest, ModelsRankConfigurationsIdentically)
{
    // Both models must order {baseline, HMNM4, Perfect} the same way
    // (non-increasing cycles), for a miss-heavy app.
    auto run_both = [&](const std::string &config) {
        std::pair<Cycles, Cycles> out;
        {
            CacheHierarchy h(paperHierarchy(5));
            std::unique_ptr<MnmUnit> mnm;
            if (!config.empty())
                mnm = std::make_unique<MnmUnit>(mnmSpecByName(config), h);
            OooCore core(paperCpu(5), h, mnm.get());
            auto w = makeSpecWorkload("181.mcf");
            out.first = core.run(*w, 30000).cycles;
        }
        {
            CacheHierarchy h(paperHierarchy(5));
            std::unique_ptr<MnmUnit> mnm;
            if (!config.empty())
                mnm = std::make_unique<MnmUnit>(mnmSpecByName(config), h);
            CycleOooCore core(paperCpu(5), h, mnm.get());
            auto w = makeSpecWorkload("181.mcf");
            out.second = core.run(*w, 30000).cycles;
        }
        return out;
    };
    auto base = run_both("");
    auto hmnm = run_both("HMNM4");
    auto perfect = run_both("Perfect");
    EXPECT_LE(hmnm.first, base.first);
    EXPECT_LE(perfect.first, hmnm.first);
    EXPECT_LE(hmnm.second, base.second);
    EXPECT_LE(perfect.second, hmnm.second);
}

TEST(CycleCoreTest, SerialMnmAddsDelayOnMissyLoads)
{
    std::vector<Instruction> script;
    for (int i = 0; i < 512; ++i) {
        Instruction l;
        l.cls = InstClass::Load;
        l.pc = 0x1000;
        l.mem_addr = 0x40000000ull + std::uint64_t(i) * 4096;
        script.push_back(l);
    }
    auto run_with = [&](MnmPlacement placement) {
        CacheHierarchy h(tinyParams());
        MnmSpec spec = makeUniformSpec(TmnmSpec{4, 1, 3});
        spec.placement = placement;
        MnmUnit mnm(spec, h);
        CycleOooCore core(CpuParams::eightWay(), h, &mnm);
        ScriptedWorkload w(script);
        return core.run(w, 512).data_access_cycles;
    };
    EXPECT_GT(run_with(MnmPlacement::Serial),
              run_with(MnmPlacement::Parallel));
}

TEST(CycleCoreTest, DeterministicAcrossRuns)
{
    auto run_once = [] {
        CacheHierarchy h(paperHierarchy(5));
        CycleOooCore core(paperCpu(5), h);
        auto w = makeSpecWorkload("186.crafty");
        return core.run(*w, 20000).cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CycleCoreTest, StatsConsistent)
{
    CacheHierarchy h(paperHierarchy(5));
    CycleOooCore core(paperCpu(5), h);
    auto w = makeSpecWorkload("164.gzip");
    CpuRunStats stats = core.run(*w, 20000);
    EXPECT_EQ(stats.instructions, 20000u);
    EXPECT_GT(stats.cycles, 20000u / 8); // bounded by fetch width
    EXPECT_LE(stats.mispredicts, stats.branches);
    EXPECT_EQ(stats.data_accesses,
              stats.loads + stats.stores + stats.fetch_line_accesses);
}

TEST(CycleCoreTest, RejectsZeroResources)
{
    CacheHierarchy h(tinyParams());
    CpuParams p = CpuParams::eightWay();
    p.commit_width = 0;
    EXPECT_EXIT(CycleOooCore(p, h), ::testing::ExitedWithCode(1),
                "zero-width");
}

} // anonymous namespace
} // namespace mnm
