/**
 * @file
 * The parallel sweep engine's contract (sim/runner.hh): parallel
 * execution is element-wise identical to the serial path, errors stay
 * in their slot without stalling the pool, and MNM_JOBS parsing.
 */

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/runner.hh"

namespace mnm
{
namespace
{

/** Cells spanning the MNM techniques on a small machine/budget. */
std::vector<SweepCell>
techniqueCells()
{
    const std::uint64_t instructions = 60000;
    std::vector<SweepVariant> variants = {
        {"baseline", paperHierarchy(3), std::nullopt},
        {"RMNM", paperHierarchy(3), makeRmnmSpec(128, 1)},
        {"TMNM", paperHierarchy(3),
         makeUniformSpec(TmnmSpec{8, 2, 3})},
        {"HMNM2", paperHierarchy(5), makeHmnmSpec(2)},
    };
    return makeGridCells({"164.gzip", "181.mcf"}, variants,
                         instructions);
}

void
expectSameResult(const MemSimResult &a, const MemSimResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.data_requests, b.data_requests);
    EXPECT_EQ(a.fetch_requests, b.fetch_requests);
    EXPECT_EQ(a.total_access_cycles, b.total_access_cycles);
    EXPECT_EQ(a.miss_cycles, b.miss_cycles);
    EXPECT_EQ(a.memory_accesses, b.memory_accesses);
    EXPECT_EQ(a.soundness_violations, b.soundness_violations);
    EXPECT_EQ(a.mnm_storage_bits, b.mnm_storage_bits);
    EXPECT_EQ(a.coverage.identified(), b.coverage.identified());
    EXPECT_EQ(a.coverage.unidentified(), b.coverage.unidentified());
    for (std::uint32_t l = 0; l < DecisionMatrix::max_levels; ++l) {
        SCOPED_TRACE("decision level " + std::to_string(l));
        const DecisionMatrix::Cells &da = a.decisions.at(l);
        const DecisionMatrix::Cells &db = b.decisions.at(l);
        EXPECT_EQ(da.predicted_miss_actual_miss,
                  db.predicted_miss_actual_miss);
        EXPECT_EQ(da.maybe_actual_miss, db.maybe_actual_miss);
        EXPECT_EQ(da.maybe_actual_hit, db.maybe_actual_hit);
        EXPECT_EQ(da.predicted_miss_actual_hit,
                  db.predicted_miss_actual_hit);
    }
    // Energies are sums of the same per-event terms in the same
    // (per-cell) order, so they must be bit-identical, not just close.
    EXPECT_EQ(a.energy.probe_hit_pj, b.energy.probe_hit_pj);
    EXPECT_EQ(a.energy.probe_miss_pj, b.energy.probe_miss_pj);
    EXPECT_EQ(a.energy.fill_pj, b.energy.fill_pj);
    EXPECT_EQ(a.energy.writeback_pj, b.energy.writeback_pj);
    EXPECT_EQ(a.energy.mnm_pj, b.energy.mnm_pj);
    ASSERT_EQ(a.caches.size(), b.caches.size());
    for (std::size_t i = 0; i < a.caches.size(); ++i) {
        EXPECT_EQ(a.caches[i].name, b.caches[i].name);
        EXPECT_EQ(a.caches[i].accesses, b.caches[i].accesses);
        EXPECT_EQ(a.caches[i].hits, b.caches[i].hits);
        EXPECT_EQ(a.caches[i].misses, b.caches[i].misses);
        EXPECT_EQ(a.caches[i].bypasses, b.caches[i].bypasses);
    }
}

TEST(RunnerTest, ParallelMatchesSerialElementWise)
{
    std::vector<SweepCell> cells = techniqueCells();

    ExperimentOptions serial;
    serial.jobs = 1;
    std::vector<MemSimResult> serial_results = runSweep(cells, serial);

    ExperimentOptions parallel;
    parallel.jobs = 8;
    std::vector<MemSimResult> parallel_results =
        runSweep(cells, parallel);

    ASSERT_EQ(serial_results.size(), cells.size());
    ASSERT_EQ(parallel_results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        expectSameResult(serial_results[i], parallel_results[i]);
    }
}

TEST(RunnerTest, RepeatedParallelRunsAreDeterministic)
{
    std::vector<SweepCell> cells = techniqueCells();
    ExperimentOptions opts;
    opts.jobs = 4;
    std::vector<MemSimResult> first = runSweep(cells, opts);
    std::vector<MemSimResult> second = runSweep(cells, opts);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        expectSameResult(first[i], second[i]);
    }
}

TEST(RunnerTest, ThrowingTaskFailsItsSlotOnly)
{
    constexpr std::size_t count = 32;
    ParallelRunner runner(8);
    std::vector<std::atomic<bool>> ran(count);
    auto errors = runner.run(count, [&](std::size_t i) {
        ran[i] = true;
        if (i == 5)
            throw std::runtime_error("cell 5 exploded");
        if (i == 17)
            throw 42; // non-std::exception payloads are captured too
    });

    ASSERT_EQ(errors.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_TRUE(ran[i]) << "slot " << i << " never ran";
        if (i == 5 || i == 17)
            EXPECT_TRUE(errors[i]) << "slot " << i;
        else
            EXPECT_FALSE(errors[i]) << "slot " << i;
    }
    EXPECT_THROW(std::rethrow_exception(errors[5]), std::runtime_error);
}

TEST(RunnerTest, SerialPathCapturesErrorsIdentically)
{
    ParallelRunner runner(1);
    auto errors = runner.run(3, [](std::size_t i) {
        if (i == 1)
            throw std::runtime_error("middle");
    });
    EXPECT_FALSE(errors[0]);
    EXPECT_TRUE(errors[1]);
    EXPECT_FALSE(errors[2]);
}

TEST(RunnerTest, MoreJobsThanTasks)
{
    ParallelRunner runner(16);
    std::vector<std::atomic<int>> hits(3);
    auto errors = runner.run(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1) << "slot " << i;
        EXPECT_FALSE(errors[i]);
    }
}

TEST(RunnerTest, EmptyTaskSetIsANoOp)
{
    ParallelRunner runner(4);
    auto errors = runner.run(0, [](std::size_t) {
        FAIL() << "no task should run";
    });
    EXPECT_TRUE(errors.empty());
}

TEST(RunnerTest, MapPreservesIndexOrder)
{
    ParallelRunner runner(8);
    std::vector<std::size_t> out = runner.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(RunnerTest, ZeroJobsMeansHardwareConcurrency)
{
    ParallelRunner runner(0);
    EXPECT_GE(runner.jobs(), 1u);
}

TEST(RunnerTest, JobsFromEnvParsesOverride)
{
    ASSERT_EQ(setenv("MNM_JOBS", "3", 1), 0);
    EXPECT_EQ(jobsFromEnv(), 3u);
    ASSERT_EQ(unsetenv("MNM_JOBS"), 0);
    EXPECT_GE(jobsFromEnv(), 1u);
}

TEST(RunnerTest, ExperimentOptionsPickUpJobs)
{
    ASSERT_EQ(setenv("MNM_JOBS", "5", 1), 0);
    ASSERT_EQ(setenv("MNM_PROGRESS", "1", 1), 0);
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    EXPECT_EQ(opts.jobs, 5u);
    EXPECT_TRUE(opts.progress);
    ASSERT_EQ(unsetenv("MNM_JOBS"), 0);
    ASSERT_EQ(unsetenv("MNM_PROGRESS"), 0);
}

TEST(RunnerDeathTest, RejectsMalformedJobs)
{
    ASSERT_EQ(setenv("MNM_JOBS", "zero", 1), 0);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "MNM_JOBS");
    ASSERT_EQ(unsetenv("MNM_JOBS"), 0);
}

TEST(RunnerDeathTest, RejectsOutOfRangeJobs)
{
    ASSERT_EQ(setenv("MNM_JOBS", "5000", 1), 0);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "out of range");
    ASSERT_EQ(unsetenv("MNM_JOBS"), 0);
}

TEST(SweepFailureTest, AggregatesEveryFailedSlot)
{
    ParallelRunner runner(4);
    auto errors = runner.run(10, [](std::size_t i) {
        if (i % 3 == 0)
            throw std::runtime_error("slot " + std::to_string(i));
    });
    try {
        ParallelRunner::throwIfAny(errors, [](std::size_t i) {
            return "cell-" + std::to_string(i);
        });
        FAIL() << "throwIfAny swallowed the failures";
    } catch (const SweepFailure &e) {
        // Indices 0, 3, 6, 9 -- all of them, in index order, with the
        // caller's labels and the original messages.
        ASSERT_EQ(e.failures().size(), 4u);
        EXPECT_EQ(e.failures()[0].index, 0u);
        EXPECT_EQ(e.failures()[1].index, 3u);
        EXPECT_EQ(e.failures()[2].index, 6u);
        EXPECT_EQ(e.failures()[3].index, 9u);
        EXPECT_EQ(e.failures()[1].label, "cell-3");
        EXPECT_EQ(e.failures()[1].message, "slot 3");
        // what() leads with the count so a log line tells the story.
        EXPECT_NE(std::string(e.what()).find("4 tasks failed"),
                  std::string::npos);
    }
}

TEST(SweepFailureTest, ThrowIfAnyIsANoOpWhenClean)
{
    std::vector<std::exception_ptr> clean(5);
    EXPECT_NO_THROW(ParallelRunner::throwIfAny(clean));
}

TEST(SweepFailureTest, MapThrowsWithDefaultLabels)
{
    ParallelRunner runner(2);
    try {
        runner.map<int>(4, [](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("boom");
            return static_cast<int>(i);
        });
        FAIL() << "map swallowed the failure";
    } catch (const SweepFailure &e) {
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].label, "task 2");
        EXPECT_EQ(e.failures()[0].message, "boom");
    }
}

TEST(RunnerTest, FailedCellDegradesGracefully)
{
    std::vector<SweepCell> cells = techniqueCells();

    ExperimentOptions opts;
    opts.jobs = 4;
    opts.retries = 0;
    opts.fail_cell.match = "181.mcf · RMNM";
    std::vector<MemSimResult> results = runSweep(cells, opts);

    // Exactly one cell is marked failed; every other cell completed
    // and matches an unperturbed run.
    ExperimentOptions clean;
    clean.jobs = 1;
    std::vector<MemSimResult> reference = runSweep(cells, clean);
    ASSERT_EQ(results.size(), cells.size());
    std::size_t failed = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        if (results[i].failed) {
            ++failed;
            EXPECT_EQ(cells[i].app, "181.mcf");
            EXPECT_EQ(cells[i].label, "RMNM");
            EXPECT_NE(results[i].fail_reason.find("injected failure"),
                      std::string::npos);
        } else {
            expectSameResult(results[i], reference[i]);
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(sweepExitCode(), 1);
}

TEST(RunnerTest, TransientFailureIsRetried)
{
    std::vector<SweepCell> cells = techniqueCells();
    cells.resize(1);

    std::atomic<unsigned> attempts{0};
    setSweepFaultHookForTest([&](const SweepCell &, unsigned attempt) {
        ++attempts;
        if (attempt == 0)
            throw std::runtime_error("transient");
    });
    ExperimentOptions opts;
    opts.jobs = 1;
    opts.retries = 1;
    std::vector<MemSimResult> results = runSweep(cells, opts);
    setSweepFaultHookForTest(nullptr);

    EXPECT_EQ(attempts.load(), 2u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_GT(results[0].instructions, 0u);
}

TEST(RunnerTest, WatchdogTimeoutFailsCellWithoutRetry)
{
    std::vector<SweepCell> cells = techniqueCells();
    cells.resize(1);

    std::atomic<unsigned> attempts{0};
    setSweepFaultHookForTest(
        [&](const SweepCell &, unsigned) { ++attempts; });
    ExperimentOptions opts;
    opts.jobs = 1;
    opts.retries = 3;
    opts.cell_timeout_s = 1e-6; // expires before the first poll
    std::vector<MemSimResult> results = runSweep(cells, opts);
    setSweepFaultHookForTest(nullptr);

    EXPECT_TRUE(results[0].failed);
    EXPECT_NE(results[0].fail_reason.find("watchdog"),
              std::string::npos);
    // Timeouts are never retried: a second attempt would only burn
    // another timeout's worth of wall clock.
    EXPECT_EQ(attempts.load(), 1u);

    // The worker's deadline is disarmed; a follow-up sweep on the
    // same thread runs to completion.
    ExperimentOptions clean;
    clean.jobs = 1;
    std::vector<MemSimResult> ok = runSweep(cells, clean);
    EXPECT_FALSE(ok[0].failed);
}

} // anonymous namespace
} // namespace mnm
