/**
 * @file
 * Tests for the functional-mode memory simulator: request counting,
 * time and energy accounting, and the serial/parallel MNM placements.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "trace/workload.hh"

namespace mnm
{
namespace
{

/** A tiny 2-level hierarchy for precise accounting checks. */
HierarchyParams
tinyParams()
{
    HierarchyParams params;
    LevelParams l1;
    l1.data.name = "l1";
    l1.data.capacity_bytes = 1024;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 2;
    LevelParams l2;
    l2.data.name = "l2";
    l2.data.capacity_bytes = 8192;
    l2.data.associativity = 2;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 8;
    params.levels = {l1, l2};
    params.memory_latency = 100;
    return params;
}

/** All-ALU workload touching one I-line: minimal traffic. */
std::vector<Instruction>
aluScript()
{
    Instruction alu;
    alu.cls = InstClass::IntAlu;
    alu.pc = 0x1000;
    return {alu};
}

TEST(MemorySimTest, CountsRequests)
{
    MemorySimulator sim(tinyParams());
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    ScriptedWorkload w({load});
    MemSimResult r = sim.run(w, 10);
    EXPECT_EQ(r.instructions, 10u);
    EXPECT_EQ(r.data_requests, 10u);
    EXPECT_EQ(r.fetch_requests, 1u); // one I-line, touched once
    EXPECT_EQ(r.requests, 11u);
}

TEST(MemorySimTest, AccessTimeAccounting)
{
    MemorySimulator sim(tinyParams());
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    ScriptedWorkload w({load});
    MemSimResult r = sim.run(w, 3);
    // Fetch: cold -> 2+8+100 = 110. Loads: cold 110, then 2, then 2.
    EXPECT_EQ(r.total_access_cycles, 110u + 110u + 2u + 2u);
    // Miss portion: fetch 10 (2+8 probing misses), load0 10, rest 0.
    EXPECT_EQ(r.miss_cycles, 20u);
    EXPECT_EQ(r.memory_accesses, 2u);
}

TEST(MemorySimTest, MissTimeFractionBounded)
{
    MemorySimulator sim(paperHierarchy(5));
    auto w = makeSpecWorkload("164.gzip");
    MemSimResult r = sim.run(*w, 50000);
    EXPECT_GT(r.missTimeFraction(), 0.0);
    EXPECT_LT(r.missTimeFraction(), 1.0);
    EXPECT_GT(r.avgAccessTime(), 2.0); // at least the L1 latency
}

TEST(MemorySimTest, EnergyBucketsAllPopulated)
{
    MemorySimulator sim(paperHierarchy(5));
    auto w = makeSpecWorkload("175.vpr");
    MemSimResult r = sim.run(*w, 50000);
    EXPECT_GT(r.energy.probe_hit_pj, 0.0);
    EXPECT_GT(r.energy.probe_miss_pj, 0.0);
    EXPECT_GT(r.energy.fill_pj, 0.0);
    EXPECT_EQ(r.energy.mnm_pj, 0.0); // no MNM configured
    EXPECT_GT(r.energy.missFraction(), 0.0);
    EXPECT_LT(r.energy.missFraction(), 1.0);
}

TEST(MemorySimTest, CacheSnapshotsMatchTopology)
{
    MemorySimulator sim(paperHierarchy(5));
    auto w = makeSpecWorkload("164.gzip");
    MemSimResult r = sim.run(*w, 20000);
    ASSERT_EQ(r.caches.size(), 7u);
    EXPECT_EQ(r.caches[0].name, "il1");
    EXPECT_EQ(r.caches[6].name, "ul5");
    for (const auto &c : r.caches) {
        EXPECT_GE(c.hit_rate, 0.0);
        EXPECT_LE(c.hit_rate, 1.0);
    }
}

TEST(MemorySimTest, MnmReducesMissCyclesAndProbeMissEnergy)
{
    auto w1 = makeSpecWorkload("176.gcc");
    auto w2 = makeSpecWorkload("176.gcc");
    MemorySimulator base(paperHierarchy(5));
    MemorySimulator shielded(paperHierarchy(5),
                             mnmSpecByName("CMNM_8_12"));
    MemSimResult rb = base.run(*w1, 100000);
    MemSimResult rs = shielded.run(*w2, 100000);
    EXPECT_LT(rs.miss_cycles, rb.miss_cycles);
    EXPECT_LT(rs.energy.probe_miss_pj, rb.energy.probe_miss_pj);
    EXPECT_GT(rs.coverage.coverage(), 0.0);
    EXPECT_EQ(rs.soundness_violations, 0u);
    // Architectural behaviour unchanged: same memory traffic.
    EXPECT_EQ(rs.memory_accesses, rb.memory_accesses);
}

TEST(MemorySimTest, PerfectMnmMaximizesCoverage)
{
    auto w1 = makeSpecWorkload("255.vortex");
    auto w2 = makeSpecWorkload("255.vortex");
    MemorySimulator real(paperHierarchy(5), mnmSpecByName("HMNM4"));
    MemorySimulator perfect(paperHierarchy(5), makePerfectSpec());
    MemSimResult rr = real.run(*w1, 50000);
    MemSimResult rp = perfect.run(*w2, 50000);
    EXPECT_DOUBLE_EQ(rp.coverage.coverage(), 1.0);
    EXPECT_GE(rp.coverage.coverage(), rr.coverage.coverage());
    EXPECT_EQ(rp.energy.mnm_pj, 0.0);
}

TEST(MemorySimTest, SerialPlacementAddsDelayOnL1Miss)
{
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    ScriptedWorkload w1({load});
    ScriptedWorkload w2({load});

    MnmSpec serial = makeUniformSpec(TmnmSpec{10, 1, 3});
    serial.placement = MnmPlacement::Serial;
    serial.delay = 2;
    MnmSpec parallel = serial;
    parallel.placement = MnmPlacement::Parallel;

    MemorySimulator ssim(tinyParams(), serial);
    MemorySimulator psim(tinyParams(), parallel);
    MemSimResult rs = ssim.run(w1, 1);
    MemSimResult rp = psim.run(w2, 1);
    // Two cold requests each (fetch + load); the serial MNM pays +2 on
    // each L1 miss.
    EXPECT_EQ(rs.total_access_cycles, rp.total_access_cycles + 4);
}

TEST(MemorySimTest, SerialPlacementChargesLessMnmEnergyWhenL1Hits)
{
    // A loop hitting L1 forever: the serial MNM should consume (almost)
    // no lookup energy, the parallel one plenty.
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    ScriptedWorkload w1({load});
    ScriptedWorkload w2({load});

    MnmSpec serial = makeUniformSpec(TmnmSpec{10, 1, 3});
    serial.placement = MnmPlacement::Serial;
    MnmSpec parallel = serial;
    parallel.placement = MnmPlacement::Parallel;

    MemorySimulator ssim(tinyParams(), serial);
    MemorySimulator psim(tinyParams(), parallel);
    MemSimResult rs = ssim.run(w1, 10000);
    MemSimResult rp = psim.run(w2, 10000);
    EXPECT_LT(rs.energy.mnm_pj, rp.energy.mnm_pj / 100.0);
}

TEST(MemorySimTest, DistributedPlacementTradesTimeForEnergy)
{
    // Distributed pays the filter delay at every level it reaches, so
    // it is the slowest placement; its energy sits at or below the
    // parallel placement's (only reached structures are consulted).
    auto run_with = [](MnmPlacement placement) {
        MnmSpec spec = makeHmnmSpec(2);
        spec.placement = placement;
        MemorySimulator sim(paperHierarchy(5), spec);
        auto w = makeSpecWorkload("176.gcc");
        sim.run(*w, 10000);
        return sim.run(*w, 50000);
    };
    MemSimResult par = run_with(MnmPlacement::Parallel);
    MemSimResult ser = run_with(MnmPlacement::Serial);
    MemSimResult dist = run_with(MnmPlacement::Distributed);
    EXPECT_LE(par.total_access_cycles, ser.total_access_cycles);
    EXPECT_LE(ser.total_access_cycles, dist.total_access_cycles);
    EXPECT_LT(ser.energy.mnm_pj, par.energy.mnm_pj);
    EXPECT_LT(dist.energy.mnm_pj, par.energy.mnm_pj);
    // Coverage is placement-independent (paper Section 4.2).
    EXPECT_DOUBLE_EQ(par.coverage.coverage(), ser.coverage.coverage());
    EXPECT_DOUBLE_EQ(par.coverage.coverage(), dist.coverage.coverage());
}

TEST(MemorySimTest, DistributedChargesPerReachedLevel)
{
    // One cold load on the tiny 2-level hierarchy: the walk reaches the
    // single L2, so distributed adds exactly one MNM delay per request.
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    ScriptedWorkload w1({load});
    ScriptedWorkload w2({load});

    MnmSpec dist = makeUniformSpec(TmnmSpec{10, 1, 3});
    dist.placement = MnmPlacement::Distributed;
    dist.delay = 2;
    MnmSpec parallel = dist;
    parallel.placement = MnmPlacement::Parallel;

    MemorySimulator dsim(tinyParams(), dist);
    MemorySimulator psim(tinyParams(), parallel);
    MemSimResult rd = dsim.run(w1, 1);
    MemSimResult rp = psim.run(w2, 1);
    // Two cold requests (fetch + load), each reaching L2 once: +2 each.
    EXPECT_EQ(rd.total_access_cycles, rp.total_access_cycles + 4);
}

TEST(MemorySimTest, WarmStateCarriesAcrossRuns)
{
    MemorySimulator sim(tinyParams());
    Instruction load;
    load.cls = InstClass::Load;
    load.pc = 0x1000;
    load.mem_addr = 0x40000000;
    ScriptedWorkload w({load});
    sim.run(w, 5);
    MemSimResult r2 = sim.run(w, 5);
    // Second run: everything hits L1.
    EXPECT_EQ(r2.miss_cycles, 0u);
    EXPECT_EQ(r2.memory_accesses, 0u);
}

TEST(MemorySimTest, AluOnlyWorkloadMakesOnlyFetchRequests)
{
    MemorySimulator sim(tinyParams());
    ScriptedWorkload w(aluScript());
    MemSimResult r = sim.run(w, 100);
    EXPECT_EQ(r.data_requests, 0u);
    EXPECT_EQ(r.fetch_requests, 1u);
}

TEST(MemorySimTest, RunFunctionalHelperWarmsUp)
{
    MemSimResult r = runFunctional(paperHierarchy(5), std::nullopt,
                                   "300.twolf", 20000);
    EXPECT_EQ(r.instructions, 20000u);
    EXPECT_GT(r.requests, 0u);
}

} // anonymous namespace
} // namespace mnm
