/**
 * @file
 * Unit tests for the Replacements MNM, including a faithful re-run of
 * the paper's Table 1 worked scenario.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "core/rmnm.hh"

namespace mnm
{
namespace
{

TEST(RmnmTest, ColdStateSaysMaybe)
{
    Rmnm rmnm({128, 1}, 2, 5);
    EXPECT_FALSE(rmnm.definitelyMiss(0, 0x1000));
    EXPECT_FALSE(rmnm.definitelyMiss(1, 0x1000));
}

TEST(RmnmTest, ReplacementSetsMissBit)
{
    Rmnm rmnm({128, 1}, 2, 5);
    rmnm.onReplacement(0, 0x1000, 5);
    EXPECT_TRUE(rmnm.definitelyMiss(0, 0x1000));
    EXPECT_TRUE(rmnm.definitelyMiss(0, 0x101f)); // same 32B granule
    EXPECT_FALSE(rmnm.definitelyMiss(0, 0x1020)); // next granule
    EXPECT_FALSE(rmnm.definitelyMiss(1, 0x1000)); // other cache clean
}

TEST(RmnmTest, PlacementClearsMissBit)
{
    Rmnm rmnm({128, 1}, 2, 5);
    rmnm.onReplacement(0, 0x1000, 5);
    rmnm.onReplacement(1, 0x1000, 5);
    rmnm.onPlacement(0, 0x1000, 5);
    EXPECT_FALSE(rmnm.definitelyMiss(0, 0x1000));
    EXPECT_TRUE(rmnm.definitelyMiss(1, 0x1000));
}

TEST(RmnmTest, AllClearEntryFreesSlot)
{
    Rmnm rmnm({128, 1}, 1, 5);
    rmnm.onReplacement(0, 0x1000, 5);
    EXPECT_EQ(rmnm.entriesInUse(), 1u);
    rmnm.onPlacement(0, 0x1000, 5);
    EXPECT_EQ(rmnm.entriesInUse(), 0u);
}

TEST(RmnmTest, LargerBlockSpansMultipleGranules)
{
    // Granule 32B (bits=5); a 128B-block cache replacement covers 4.
    Rmnm rmnm({128, 1}, 2, 5);
    rmnm.onReplacement(1, 0x2040, 7); // 128B block at 0x2000
    EXPECT_TRUE(rmnm.definitelyMiss(1, 0x2000));
    EXPECT_TRUE(rmnm.definitelyMiss(1, 0x2020));
    EXPECT_TRUE(rmnm.definitelyMiss(1, 0x2040));
    EXPECT_TRUE(rmnm.definitelyMiss(1, 0x2060));
    EXPECT_FALSE(rmnm.definitelyMiss(1, 0x2080));
    EXPECT_EQ(rmnm.entriesInUse(), 4u);
}

TEST(RmnmTest, PlacementOfLargeBlockClearsAllGranules)
{
    Rmnm rmnm({128, 1}, 2, 5);
    rmnm.onReplacement(1, 0x2000, 7);
    rmnm.onPlacement(1, 0x2060, 7); // same 128B block
    for (Addr a = 0x2000; a < 0x2080; a += 0x20)
        EXPECT_FALSE(rmnm.definitelyMiss(1, a));
}

TEST(RmnmTest, ConflictEvictionLosesInformationSafely)
{
    // 4-entry direct-mapped RMNM: granules 0 and 4 share a set.
    Rmnm rmnm({4, 1}, 1, 5);
    rmnm.onReplacement(0, 0x00, 5);  // granule 0
    rmnm.onReplacement(0, 0x80, 5);  // granule 4 -> evicts granule 0
    EXPECT_FALSE(rmnm.definitelyMiss(0, 0x00)); // info lost: "maybe"
    EXPECT_TRUE(rmnm.definitelyMiss(0, 0x80));
}

TEST(RmnmTest, LruKeepsMostRecentlyTouchedEntry)
{
    // 2-way, 1 set: three granules compete.
    Rmnm rmnm({2, 2}, 1, 5);
    rmnm.onReplacement(0, 0x00, 5);
    rmnm.onReplacement(0, 0x20, 5);
    rmnm.onReplacement(0, 0x00, 5); // touch granule 0
    rmnm.onReplacement(0, 0x40, 5); // evicts granule 1 (LRU)
    EXPECT_TRUE(rmnm.definitelyMiss(0, 0x00));
    EXPECT_FALSE(rmnm.definitelyMiss(0, 0x20));
    EXPECT_TRUE(rmnm.definitelyMiss(0, 0x40));
}

TEST(RmnmTest, ResetClearsEverything)
{
    Rmnm rmnm({128, 2}, 2, 5);
    rmnm.onReplacement(0, 0x1000, 5);
    rmnm.reset();
    EXPECT_FALSE(rmnm.definitelyMiss(0, 0x1000));
    EXPECT_EQ(rmnm.entriesInUse(), 0u);
}

TEST(RmnmTest, NameAndStorage)
{
    Rmnm rmnm({512, 2}, 5, 5);
    EXPECT_EQ(rmnm.name(), "RMNM_512_2");
    EXPECT_EQ(rmnm.storageBits(), 512u * (26 + 5 + 1));
}

TEST(RmnmTest, PowerModelPlausible)
{
    SramModel sram;
    Rmnm small({128, 1}, 5, 5);
    Rmnm large({4096, 8}, 5, 5);
    EXPECT_GT(large.power(sram).read_energy_pj,
              small.power(sram).read_energy_pj);
}

TEST(RmnmTest, RejectsBadGeometry)
{
    EXPECT_EXIT(Rmnm({100, 3}, 2, 5), ::testing::ExitedWithCode(1),
                "divisible");
    EXPECT_EXIT(Rmnm({96, 2}, 2, 5), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(Rmnm({128, 1}, 0, 5), ::testing::ExitedWithCode(1),
                "tracks");
}

/**
 * The paper's Table 1 scenario on a real two-level hierarchy.
 *
 * Events (32B blocks everywhere; x2ff0, x2fc0, x2f40, x2c40 denote block
 * base addresses in a shared L1/L2 set):
 *   access x2ff0 -> placed in L1 and L2
 *   access x2fc0 -> x2ff0 replaced from L1; x2fc0 placed
 *   access x2f40 -> x2fc0 replaced from L1; ...
 *   access x2c40 -> x2fc0 replaced from L2 as well
 *   access x2fc0 -> the L2 miss is identified by the RMNM
 */
TEST(RmnmTest, PaperTable1Scenario)
{
    // L1: direct-mapped 4 blocks; L2: direct-mapped 8 blocks. Addresses
    // chosen to collide in both (same set), like the paper's x2f..
    // block-address family.
    HierarchyParams params;
    LevelParams l1;
    l1.split = false;
    l1.data.name = "l1";
    l1.data.capacity_bytes = 4 * 32;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 1;
    LevelParams l2;
    l2.data.name = "l2";
    l2.data.capacity_bytes = 8 * 32;
    l2.data.associativity = 1;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 4;
    params.levels = {l1, l2};
    params.memory_latency = 50;

    CacheHierarchy hierarchy(params);
    MnmSpec spec = makeRmnmSpec(128, 1);
    MnmUnit mnm(spec, hierarchy);

    // Four addresses in L1 set 0 and L2 set 0: multiples of 0x100.
    const Addr a = 0x2f00, b = 0x2c00, c = 0x2800, d = 0x2400;

    auto run = [&](Addr addr) {
        BypassMask mask = mnm.computeBypass(AccessType::Load, addr);
        return hierarchy.access(AccessType::Load, addr, mask);
    };

    run(a); // a in L1+L2
    run(b); // a replaced from L1 (still in L2); b placed
    run(c); // b replaced from L1
    run(d); // c replaced from L1, and L2 set 0 starts evicting too

    // By now L2's set 0 (direct mapped) holds only d; "a" was replaced
    // from L2 when c/d arrived. The RMNM must have recorded that, so a
    // re-access of "a" is identified as an L2 miss and bypassed.
    AccessResult r = run(a);
    EXPECT_TRUE(r.from_memory);
    ASSERT_EQ(r.num_probes, 2u);
    EXPECT_FALSE(r.probes[0].hit);     // L1 miss (not predicted)
    EXPECT_TRUE(r.probes[1].bypassed); // L2 bypassed: "just say no"
    EXPECT_EQ(mnm.soundnessViolations(), 0u);
}

} // anonymous namespace
} // namespace mnm
