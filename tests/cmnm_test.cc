/**
 * @file
 * Unit tests for the Common-Address MNM: virtual-tag register
 * allocation, mask widening under both policies, table bookkeeping, and
 * shadow-set soundness of the Monotone policy.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/cmnm.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

CmnmSpec
spec(std::uint32_t regs, std::uint32_t bits,
     CmnmMaskPolicy policy = CmnmMaskPolicy::Monotone)
{
    return CmnmSpec{regs, bits, 3, policy};
}

TEST(CmnmTest, ColdFilterSaysMiss)
{
    Cmnm cmnm(spec(4, 10));
    EXPECT_TRUE(cmnm.definitelyMiss(0xabcdef));
}

TEST(CmnmTest, PlacementAllocatesRegisterAndTableEntry)
{
    Cmnm cmnm(spec(4, 10));
    cmnm.onPlacement(0xabcdef);
    EXPECT_EQ(cmnm.registersInUse(), 1u);
    EXPECT_FALSE(cmnm.definitelyMiss(0xabcdef));
}

TEST(CmnmTest, UnknownRegionIsDefiniteMiss)
{
    Cmnm cmnm(spec(4, 10));
    cmnm.onPlacement(0x000400); // prefix 0x1
    // A block in a never-seen region misses regardless of low bits.
    EXPECT_TRUE(cmnm.definitelyMiss(0xff0400));
}

TEST(CmnmTest, SameRegionDifferentLowBitsIsMiss)
{
    Cmnm cmnm(spec(4, 10));
    cmnm.onPlacement(0xabc001);
    EXPECT_TRUE(cmnm.definitelyMiss(0xabc002)); // same prefix, counter 0
}

TEST(CmnmTest, ReplacementRestoresMiss)
{
    Cmnm cmnm(spec(4, 10));
    cmnm.onPlacement(0xabc001);
    cmnm.onReplacement(0xabc001);
    EXPECT_TRUE(cmnm.definitelyMiss(0xabc001));
}

TEST(CmnmTest, DistinctRegionsUseDistinctRegisters)
{
    Cmnm cmnm(spec(4, 10));
    cmnm.onPlacement(0x111400);
    cmnm.onPlacement(0x222400);
    cmnm.onPlacement(0x333400);
    EXPECT_EQ(cmnm.registersInUse(), 3u);
    EXPECT_FALSE(cmnm.definitelyMiss(0x111400));
    EXPECT_FALSE(cmnm.definitelyMiss(0x222400));
    EXPECT_FALSE(cmnm.definitelyMiss(0x333400));
}

TEST(CmnmTest, RegisterExhaustionWidensMask)
{
    Cmnm cmnm(spec(2, 4)); // 2 registers, 4 table bits
    cmnm.onPlacement(0x1000);
    cmnm.onPlacement(0x2000);
    EXPECT_EQ(cmnm.registersInUse(), 2u);
    EXPECT_EQ(cmnm.maskWidenings(), 0u);
    // Third region forces widening until some register matches.
    cmnm.onPlacement(0x3000);
    EXPECT_GE(cmnm.maskWidenings(), 1u);
    EXPECT_FALSE(cmnm.definitelyMiss(0x3000));
}

TEST(CmnmTest, MonotoneSoundAfterWidening)
{
    Cmnm cmnm(spec(2, 4));
    // Fill both registers, then force widening, then replace blocks and
    // verify verdicts never claim a resident block is absent.
    std::vector<BlockAddr> blocks = {0x1001, 0x2002, 0x3003,
                                     0x4004, 0x5005};
    std::set<BlockAddr> resident;
    for (BlockAddr b : blocks) {
        cmnm.onPlacement(b);
        resident.insert(b);
    }
    for (BlockAddr b : blocks)
        EXPECT_FALSE(cmnm.definitelyMiss(b)) << std::hex << b;
    // Remove two, re-check the rest.
    cmnm.onReplacement(0x1001);
    cmnm.onReplacement(0x4004);
    resident.erase(0x1001);
    resident.erase(0x4004);
    for (BlockAddr b : resident)
        EXPECT_FALSE(cmnm.definitelyMiss(b)) << std::hex << b;
    EXPECT_EQ(cmnm.anomalies(), 0u);
}

TEST(CmnmTest, FlushClearsAllState)
{
    Cmnm cmnm(spec(4, 10));
    cmnm.onPlacement(0xabc001);
    cmnm.onFlush();
    EXPECT_EQ(cmnm.registersInUse(), 0u);
    EXPECT_TRUE(cmnm.definitelyMiss(0xabc001));
}

TEST(CmnmTest, StickyCountersHandleHeavyAliasing)
{
    Cmnm cmnm(spec(1, 2)); // 1 register, 4-entry table: heavy aliasing
    // 9+ blocks landing on one counter saturate it; removals must not
    // produce a false miss.
    std::vector<BlockAddr> blocks;
    for (std::uint64_t i = 1; i <= 9; ++i)
        blocks.push_back(i << 2); // same low bits (00), same counter
    for (BlockAddr b : blocks)
        cmnm.onPlacement(b);
    for (std::uint64_t i = 0; i < 8; ++i)
        cmnm.onReplacement(blocks[i]);
    // One block remains; the saturated counter keeps saying "maybe".
    EXPECT_FALSE(cmnm.definitelyMiss(blocks.back()));
    EXPECT_EQ(cmnm.anomalies(), 0u);
}

TEST(CmnmTest, PaperResetPolicyFlagsUnsound)
{
    Cmnm monotone(spec(4, 10, CmnmMaskPolicy::Monotone));
    Cmnm reset(spec(4, 10, CmnmMaskPolicy::PaperReset));
    EXPECT_FALSE(monotone.maybeUnsound());
    EXPECT_TRUE(reset.maybeUnsound());
}

TEST(CmnmTest, PaperResetBasicOperationStillWorks)
{
    Cmnm cmnm(spec(4, 10, CmnmMaskPolicy::PaperReset));
    cmnm.onPlacement(0xabc001);
    EXPECT_FALSE(cmnm.definitelyMiss(0xabc001));
    EXPECT_TRUE(cmnm.definitelyMiss(0xdef001));
    cmnm.onReplacement(0xabc001);
    EXPECT_TRUE(cmnm.definitelyMiss(0xabc001));
}

TEST(CmnmTest, NamesAndStorage)
{
    EXPECT_EQ(Cmnm(spec(8, 10)).name(), "CMNM_8_10");
    EXPECT_EQ(Cmnm(spec(8, 10, CmnmMaskPolicy::PaperReset)).name(),
              "CMNM_8_10(paper-reset)");
    // 8 registers x (22 prefix + 5 mask) bits + 8*2^10 x 3-bit counters.
    EXPECT_EQ(Cmnm(spec(8, 10)).storageBits(),
              8ull * 27 + 8ull * 1024 * 3);
}

TEST(CmnmTest, PowerModelScalesWithTable)
{
    SramModel sram;
    CheckerModel checker;
    Cmnm small(spec(2, 9));
    Cmnm large(spec(8, 12));
    EXPECT_GT(large.power(sram, checker).read_energy_pj,
              small.power(sram, checker).read_energy_pj);
}

TEST(CmnmTest, RejectsBadSpecs)
{
    EXPECT_EXIT(Cmnm(spec(0, 10)), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(Cmnm(spec(4, 0)), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(Cmnm(spec(65, 10)), ::testing::ExitedWithCode(1),
                "out of range");
}

/**
 * Soundness property for the Monotone policy: random churn with a small
 * register file (constant widening pressure) must never produce a
 * verdict contradicting the shadow set.
 */
TEST(CmnmTest, MonotoneSoundAgainstShadowSetUnderRandomChurn)
{
    for (std::uint32_t regs : {1u, 2u, 4u, 8u}) {
        Cmnm cmnm(spec(regs, 6));
        std::set<BlockAddr> shadow;
        Rng rng(1000 + regs);
        for (int step = 0; step < 25000; ++step) {
            BlockAddr block = rng.nextBelow(1 << 20);
            if (!shadow.empty() && rng.nextBool(0.45)) {
                auto it = shadow.lower_bound(block);
                if (it == shadow.end())
                    it = shadow.begin();
                cmnm.onReplacement(*it);
                shadow.erase(it);
            } else if (!shadow.count(block)) {
                cmnm.onPlacement(block);
                shadow.insert(block);
            }
            BlockAddr probe = rng.nextBelow(1 << 20);
            if (cmnm.definitelyMiss(probe)) {
                ASSERT_FALSE(shadow.count(probe))
                    << "unsound verdict with " << regs << " registers";
            }
        }
        EXPECT_EQ(cmnm.anomalies(), 0u);
    }
}

} // anonymous namespace
} // namespace mnm
