/**
 * @file
 * End-to-end integration tests on the paper's full 5-level machine:
 * coverage, execution-time reduction (parallel MNM), power reduction
 * (serial MNM), and the qualitative orderings the paper reports.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "cpu/ooo_core.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"

namespace mnm
{
namespace
{

constexpr std::uint64_t insts = 60000;

/** Execution cycles for one app under an optional MNM (parallel). */
Cycles
runCycles(const std::string &app, const std::string &config)
{
    CacheHierarchy h(paperHierarchy(5));
    std::unique_ptr<MnmUnit> mnm;
    if (!config.empty()) {
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Parallel;
        mnm = std::make_unique<MnmUnit>(spec, h);
    }
    OooCore core(paperCpu(5), h, mnm.get());
    auto w = makeSpecWorkload(app);
    return core.run(*w, insts).cycles;
}

TEST(IntegrationTest, Hmnm4CoverageSubstantialOnAverage)
{
    // The paper's HMNM4 averages ~53% coverage. Our workloads differ,
    // so require "substantial": mean over a few apps above 25%.
    double sum = 0.0;
    int n = 0;
    for (const char *app : {"164.gzip", "181.mcf", "255.vortex",
                            "171.swim", "301.apsi"}) {
        MnmSpec spec = makeHmnmSpec(4);
        MemSimResult r =
            runFunctional(paperHierarchy(5), spec, app, insts);
        sum += r.coverage.coverage();
        ++n;
        EXPECT_EQ(r.soundness_violations, 0u) << app;
    }
    EXPECT_GT(sum / n, 0.25);
}

TEST(IntegrationTest, HybridBeatsItsComponentsOnAverage)
{
    double hmnm = 0.0, tmnm = 0.0, smnm = 0.0;
    for (const char *app : {"176.gcc", "181.mcf", "255.vortex"}) {
        hmnm += runFunctional(paperHierarchy(5), makeHmnmSpec(4), app,
                              insts)
                    .coverage.coverage();
        tmnm += runFunctional(paperHierarchy(5),
                              mnmSpecByName("TMNM_10x1"), app, insts)
                    .coverage.coverage();
        smnm += runFunctional(paperHierarchy(5),
                              mnmSpecByName("SMNM_10x2"), app, insts)
                    .coverage.coverage();
    }
    EXPECT_GT(hmnm, tmnm);
    EXPECT_GT(hmnm, smnm);
}

TEST(IntegrationTest, ParallelMnmReducesExecutionCycles)
{
    for (const char *app : {"181.mcf", "176.gcc", "179.art"}) {
        Cycles base = runCycles(app, "");
        Cycles hmnm4 = runCycles(app, "HMNM4");
        Cycles perfect = runCycles(app, "Perfect");
        EXPECT_LE(hmnm4, base) << app;
        EXPECT_LE(perfect, hmnm4) << app;
        EXPECT_LT(perfect, base) << app; // strictly better somewhere
    }
}

TEST(IntegrationTest, SerialMnmReducesCachePower)
{
    for (const char *app : {"181.mcf", "255.vortex"}) {
        MemSimResult base =
            runFunctional(paperHierarchy(5), std::nullopt, app, insts);
        MnmSpec spec = makeHmnmSpec(4);
        spec.placement = MnmPlacement::Serial;
        MemSimResult shielded =
            runFunctional(paperHierarchy(5), spec, app, insts);
        // Total energy including the MNM's own must drop.
        EXPECT_LT(shielded.energy.total(), base.energy.total()) << app;
    }
}

TEST(IntegrationTest, PerfectBoundsThePowerSaving)
{
    const char *app = "181.mcf";
    MemSimResult base =
        runFunctional(paperHierarchy(5), std::nullopt, app, insts);
    MnmSpec hmnm = makeHmnmSpec(4);
    hmnm.placement = MnmPlacement::Serial;
    MemSimResult real =
        runFunctional(paperHierarchy(5), hmnm, app, insts);
    MnmSpec perfect = makePerfectSpec();
    perfect.placement = MnmPlacement::Serial;
    MemSimResult oracle =
        runFunctional(paperHierarchy(5), perfect, app, insts);
    double save_real = base.energy.total() - real.energy.total();
    double save_oracle = base.energy.total() - oracle.energy.total();
    EXPECT_GE(save_oracle, save_real);
}

TEST(IntegrationTest, MissTimeFractionGrowsWithLevels)
{
    // Figure 2's headline shape, averaged over a few apps.
    double frac3 = 0.0, frac5 = 0.0;
    for (const char *app : {"181.mcf", "176.gcc", "171.swim"}) {
        frac3 += runFunctional(paperHierarchy(3), std::nullopt, app,
                               insts)
                     .missTimeFraction();
        frac5 += runFunctional(paperHierarchy(5), std::nullopt, app,
                               insts)
                     .missTimeFraction();
    }
    EXPECT_GT(frac5, frac3);
}

TEST(IntegrationTest, Table2HitRatesSpanTheSpectrum)
{
    // The workload suite must include near-L1-resident apps and
    // memory-bound apps for the figures to be meaningful.
    double best_l1 = 0.0;
    double worst_l5 = 1.0;
    for (const char *app : {"200.sixtrack", "300.twolf", "181.mcf",
                            "179.art"}) {
        MemSimResult r =
            runFunctional(paperHierarchy(5), std::nullopt, app, insts);
        for (const CacheSnapshot &c : r.caches) {
            if (c.name == "dl1")
                best_l1 = std::max(best_l1, c.hit_rate);
            if (c.name == "ul5" && c.accesses > 100)
                worst_l5 = std::min(worst_l5, c.hit_rate);
        }
    }
    EXPECT_GT(best_l1, 0.9);  // some app lives in L1
    EXPECT_LT(worst_l5, 0.9); // some app leaks past L5
}

TEST(IntegrationTest, ExperimentOptionsParseEnvironment)
{
    setenv("MNM_INSTRUCTIONS", "12345", 1);
    setenv("MNM_APPS", "gzip,181.mcf", 1);
    setenv("MNM_CSV", "1", 1);
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    EXPECT_EQ(opts.instructions, 12345u);
    ASSERT_EQ(opts.apps.size(), 2u);
    EXPECT_EQ(opts.apps[0], "164.gzip");
    EXPECT_EQ(opts.apps[1], "181.mcf");
    EXPECT_TRUE(opts.csv);
    unsetenv("MNM_INSTRUCTIONS");
    unsetenv("MNM_APPS");
    unsetenv("MNM_CSV");

    ExperimentOptions defaults = ExperimentOptions::fromEnv();
    EXPECT_EQ(defaults.instructions, 2'000'000u);
    EXPECT_EQ(defaults.apps.size(), 20u);
    EXPECT_FALSE(defaults.csv);
}

TEST(IntegrationTest, ShortNames)
{
    EXPECT_EQ(ExperimentOptions::shortName("164.gzip"), "gzip");
    EXPECT_EQ(ExperimentOptions::shortName("plain"), "plain");
}

} // anonymous namespace
} // namespace mnm
