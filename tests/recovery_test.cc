/**
 * @file
 * Checkpoint journal contract (sim/recovery.hh): deterministic cell
 * fingerprints, bit-identical MemSimResult round-trips through the
 * JSON journal format, torn-tail tolerance of the loader, and the end
 * result -- an interrupted sweep resumed from its journal reproduces
 * an uninterrupted run exactly.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/recovery.hh"
#include "sim/runner.hh"

namespace mnm
{
namespace
{

/** A small two-app, two-variant grid covering MNM and baseline cells. */
std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepVariant> variants = {
        {"baseline", paperHierarchy(3), std::nullopt},
        {"HMNM2", paperHierarchy(5), makeHmnmSpec(2)},
    };
    return makeGridCells({"164.gzip", "181.mcf"}, variants, 40000);
}

/** Fresh temp-file path (not yet created). */
std::string
tempJournalPath(const std::string &tag)
{
    return ::testing::TempDir() + "mnm_recovery_" + tag + "_" +
           std::to_string(::getpid()) + ".jsonl";
}

TEST(FingerprintTest, StableForIdenticalCells)
{
    std::vector<SweepCell> cells = smallGrid();
    for (const SweepCell &cell : cells) {
        std::string fp = cellFingerprint(cell);
        ASSERT_EQ(fp.size(), 16u);
        EXPECT_EQ(fp, cellFingerprint(cell));
    }
}

TEST(FingerprintTest, SensitiveToEveryCellIngredient)
{
    SweepCell base = smallGrid()[1]; // gzip · HMNM2
    std::string fp = cellFingerprint(base);

    SweepCell other = base;
    other.app = "181.mcf";
    EXPECT_NE(cellFingerprint(other), fp);

    other = base;
    other.label = "renamed";
    EXPECT_NE(cellFingerprint(other), fp);

    other = base;
    other.instructions += 1;
    EXPECT_NE(cellFingerprint(other), fp);

    other = base;
    other.hierarchy = paperHierarchy(3);
    EXPECT_NE(cellFingerprint(other), fp);

    other = base;
    other.mnm = std::nullopt;
    EXPECT_NE(cellFingerprint(other), fp);

    other = base;
    other.mnm = makeHmnmSpec(4);
    EXPECT_NE(cellFingerprint(other), fp);

    other = base;
    other.mnm->oracle_check = !other.mnm->oracle_check;
    EXPECT_NE(cellFingerprint(other), fp);
}

TEST(FingerprintTest, IndependentOfExecutionKnobs)
{
    // Same cells, regardless of how the sweep will be executed: the
    // fingerprint must let a parallel-written journal resume a serial
    // run (and any retry/timeout setting).
    std::vector<SweepCell> cells = smallGrid();
    std::vector<std::string> fps;
    for (const SweepCell &cell : cells)
        fps.push_back(cellFingerprint(cell));
    // No two cells of the grid collide.
    for (std::size_t i = 0; i < fps.size(); ++i) {
        for (std::size_t j = i + 1; j < fps.size(); ++j)
            EXPECT_NE(fps[i], fps[j]) << i << " vs " << j;
    }
}

TEST(RecoveryTest, ResultRoundTripsByteIdentical)
{
    ExperimentOptions opts;
    opts.jobs = 1;
    std::vector<MemSimResult> results = runSweep(smallGrid(), opts);
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        std::string text = writeMemSimResult(results[i]);
        std::optional<MemSimResult> back = readMemSimResult(text);
        ASSERT_TRUE(back.has_value());
        // Serializing the parsed result reproduces the exact bytes:
        // every counter and every double survived the round trip.
        EXPECT_EQ(writeMemSimResult(*back), text);
        EXPECT_EQ(back->instructions, results[i].instructions);
        EXPECT_EQ(back->soundness_violations,
                  results[i].soundness_violations);
        EXPECT_EQ(back->coverage.identified(),
                  results[i].coverage.identified());
        ASSERT_EQ(back->caches.size(), results[i].caches.size());
    }
}

TEST(RecoveryTest, ReadRejectsTornText)
{
    ExperimentOptions opts;
    opts.jobs = 1;
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 1);
    std::string text =
        writeMemSimResult(runSweep(cells, opts).front());
    EXPECT_TRUE(readMemSimResult(text).has_value());
    // Any truncation makes the line unreadable, never misread.
    for (std::size_t len : {text.size() - 1, text.size() / 2,
                            std::size_t{1}, std::size_t{0}}) {
        EXPECT_FALSE(
            readMemSimResult(std::string_view(text).substr(0, len))
                .has_value())
            << "prefix of length " << len;
    }
}

TEST(JournalTest, AppendAndLoadRoundTrip)
{
    std::string path = tempJournalPath("roundtrip");
    std::remove(path.c_str());

    ExperimentOptions opts;
    opts.jobs = 1;
    std::vector<MemSimResult> results = runSweep(smallGrid(), opts);
    {
        CheckpointJournal journal(path);
        journal.append("cell-a", results[0]);
        journal.append("cell-b", results[1]);
    }
    CheckpointJournal::Replay replay = CheckpointJournal::load(path);
    EXPECT_EQ(replay.skipped, 0u);
    ASSERT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(writeMemSimResult(replay.entries.at("cell-a")),
              writeMemSimResult(results[0]));
    EXPECT_EQ(writeMemSimResult(replay.entries.at("cell-b")),
              writeMemSimResult(results[1]));

    // Re-opening an existing journal appends, never truncates.
    {
        CheckpointJournal journal(path);
        journal.append("cell-c", results[2]);
    }
    replay = CheckpointJournal::load(path);
    EXPECT_EQ(replay.entries.size(), 3u);
    std::remove(path.c_str());
}

TEST(JournalTest, LoadSkipsTornTail)
{
    std::string path = tempJournalPath("torn");
    std::remove(path.c_str());

    ExperimentOptions opts;
    opts.jobs = 1;
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 1);
    MemSimResult result = runSweep(cells, opts).front();
    {
        CheckpointJournal journal(path);
        journal.append("cell-a", result);
    }
    // Simulate a crash mid-write: an incomplete line at the tail.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"fp\":\"cell-b\",\"result\":{\"instructions\":4";
    }
    CheckpointJournal::Replay replay = CheckpointJournal::load(path);
    EXPECT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.skipped, 1u);
    EXPECT_TRUE(replay.entries.count("cell-a"));
    std::remove(path.c_str());
}

TEST(JournalTest, CrcCatchesMidFileBitFlip)
{
    std::string path = tempJournalPath("bitflip");
    std::remove(path.c_str());

    ExperimentOptions opts;
    opts.jobs = 1;
    std::vector<MemSimResult> results = runSweep(smallGrid(), opts);
    {
        CheckpointJournal journal(path);
        journal.append("cell-a", results[0]);
        journal.append("cell-b", results[1]);
    }

    // Flip one digit inside the FIRST record (not the tail): the line
    // still parses as JSON, so only the CRC envelope can catch it.
    std::string text;
    {
        std::ifstream in(path);
        std::stringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    std::size_t pos = text.find("\"requests\":");
    ASSERT_NE(pos, std::string::npos);
    pos += std::string("\"requests\":").size();
    ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(text[pos])));
    text[pos] = text[pos] == '9' ? '1' : '9';
    {
        std::ofstream out(path, std::ios::trunc);
        out << text;
    }

    CheckpointJournal::Replay replay = CheckpointJournal::load(path);
    // The flipped record is quarantined (so its cell re-runs instead
    // of resuming with silently wrong numbers); the other survives.
    EXPECT_EQ(replay.corrupt, 1u);
    EXPECT_EQ(replay.skipped, 0u);
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_TRUE(replay.entries.count("cell-b"));
    std::remove(path.c_str());
}

TEST(JournalTest, LeaseRespawnPoisonRoundTrip)
{
    std::string path = tempJournalPath("lease");
    std::remove(path.c_str());

    ExperimentOptions opts;
    opts.jobs = 1;
    std::vector<SweepCell> grid = smallGrid();
    std::vector<SweepCell> cells(grid.begin(), grid.begin() + 1);
    MemSimResult result = runSweep(cells, opts).front();
    {
        CheckpointJournal journal(path);
        journal.appendLease("cell-a", 0, 1);
        journal.append("cell-a", result);
        journal.appendLease("cell-b", 1, 1);
        journal.appendRespawn(1, 2);
        journal.appendLease("cell-b", 0, 2);
        journal.appendPoison("cell-b", 3);
    }
    CheckpointJournal::Replay replay = CheckpointJournal::load(path);
    EXPECT_EQ(replay.skipped, 0u);
    EXPECT_EQ(replay.corrupt, 0u);
    // cell-a committed; cell-b was leased twice but never committed --
    // exactly the in-flight-when-killed signature a resume re-runs.
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_TRUE(replay.entries.count("cell-a"));
    EXPECT_EQ(replay.leases.at("cell-a"), 1u);
    EXPECT_EQ(replay.leases.at("cell-b"), 2u);
    EXPECT_EQ(replay.respawns, 1u);
    ASSERT_EQ(replay.poisoned.size(), 1u);
    EXPECT_EQ(replay.poisoned.at("cell-b"), 3u);
    std::remove(path.c_str());
}

TEST(JournalTest, V1JournalIsIgnoredWholesale)
{
    // A v1 journal carries no CRCs, so its records cannot be verified;
    // the loader must re-run everything rather than replay unchecked.
    std::string path = tempJournalPath("v1");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"mnm-checkpoint-v1\"}\n";
        out << "{\"fp\":\"cell-a\",\"result\":{}}\n";
    }
    CheckpointJournal::Replay replay = CheckpointJournal::load(path);
    EXPECT_TRUE(replay.entries.empty());
    std::remove(path.c_str());
}

TEST(JournalTest, MissingFileAndWrongSchema)
{
    CheckpointJournal::Replay replay =
        CheckpointJournal::load(tempJournalPath("missing"));
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_EQ(replay.skipped, 0u);

    std::string path = tempJournalPath("schema");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"some-other-format\"}\n";
        out << "{\"fp\":\"cell-a\",\"result\":{}}\n";
    }
    // A foreign file is ignored wholesale rather than misapplied.
    replay = CheckpointJournal::load(path);
    EXPECT_TRUE(replay.entries.empty());
    std::remove(path.c_str());
}

TEST(RecoveryTest, InterruptedSweepResumesByteIdentical)
{
    std::vector<SweepCell> cells = smallGrid();

    // Reference: one uninterrupted serial run.
    ExperimentOptions serial;
    serial.jobs = 1;
    std::vector<MemSimResult> reference = runSweep(cells, serial);

    std::string path = tempJournalPath("resume");
    std::remove(path.c_str());
    ExperimentOptions opts;
    opts.jobs = 2;
    opts.retries = 0;
    opts.checkpoint = path;

    // First attempt: every 181.mcf cell dies. The journal captures
    // only the completed gzip cells; failed cells are never recorded.
    setSweepFaultHookForTest([](const SweepCell &cell, unsigned) {
        if (cell.app == "181.mcf")
            throw std::runtime_error("simulated crash");
    });
    std::vector<MemSimResult> first = runSweep(cells, opts);
    setSweepFaultHookForTest(nullptr);
    EXPECT_EQ(sweepExitCode(), 1);
    std::size_t failed = 0;
    for (const MemSimResult &r : first)
        failed += r.failed ? 1 : 0;
    EXPECT_EQ(failed, 2u);
    EXPECT_EQ(CheckpointJournal::load(path).entries.size(), 2u);

    // Resume: gzip cells replay from the journal, mcf cells finally
    // run. The combined results must be byte-identical to the
    // uninterrupted reference -- the acceptance bar for the whole
    // checkpoint layer.
    std::vector<MemSimResult> resumed = runSweep(cells, opts);
    ASSERT_EQ(resumed.size(), reference.size());
    for (std::size_t i = 0; i < resumed.size(); ++i) {
        SCOPED_TRACE(cells[i].app + " · " + cells[i].label);
        EXPECT_FALSE(resumed[i].failed);
        EXPECT_EQ(writeMemSimResult(resumed[i]),
                  writeMemSimResult(reference[i]));
    }
    EXPECT_EQ(CheckpointJournal::load(path).entries.size(),
              cells.size());

    // A third run replays everything and still matches.
    std::vector<MemSimResult> replayed = runSweep(cells, opts);
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(writeMemSimResult(replayed[i]),
                  writeMemSimResult(reference[i]));
    }
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace mnm
