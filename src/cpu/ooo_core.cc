#include "cpu/ooo_core.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/deadline.hh"
#include "util/logging.hh"

namespace mnm
{

CpuParams
CpuParams::fourWay()
{
    CpuParams p;
    p.fetch_width = 4;
    p.issue_width = 4;
    p.commit_width = 4;
    p.window_size = 64;
    p.lsq_size = 32;
    p.mshrs = 8;
    return p;
}

CpuParams
CpuParams::eightWay()
{
    CpuParams p;
    p.fetch_width = 8;
    p.issue_width = 8;
    p.commit_width = 8;
    p.window_size = 128;
    p.lsq_size = 64;
    p.mshrs = 16;
    return p;
}

OooCore::OooCore(const CpuParams &params, CacheHierarchy &hierarchy,
                 MnmUnit *mnm)
    : params_(params), hierarchy_(hierarchy), mnm_(mnm)
{
    if (params_.fetch_width == 0 || params_.issue_width == 0 ||
        params_.commit_width == 0) {
        fatal("core with a zero-width pipeline stage");
    }
    if (params_.window_size == 0 || params_.lsq_size == 0 ||
        params_.mshrs == 0) {
        fatal("core with zero window/LSQ/MSHR resources");
    }
}

Cycles
OooCore::memAccess(AccessType type, Addr addr)
{
    BypassMask mask;
    if (mnm_)
        mask = mnm_->computeBypass(type, addr);
    AccessResult result = hierarchy_.access(type, addr, mask);
    Cycles latency = result.latency;
    if (mnm_) {
        coverage_.record(result);
        latency += mnm_->applyPlacementCosts(result);
    }
    return latency;
}

CpuRunStats
OooCore::run(WorkloadGenerator &workload, std::uint64_t count)
{
    CpuRunStats stats;
    stats.instructions = count;

    // Dependence look-back ring: must cover the largest producer
    // distance the generators emit (<= 512).
    constexpr std::uint64_t dep_horizon = 1024;
    std::vector<double> complete_ring(dep_horizon, 0.0);
    std::vector<double> commit_ring(params_.window_size, 0.0);
    std::vector<double> lsq_ring(params_.lsq_size, 0.0);
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        mshrs;

    const double fetch_step = 1.0 / params_.fetch_width;
    const double issue_step = 1.0 / params_.issue_width;
    const double commit_step = 1.0 / params_.commit_width;
    // Front-end depth between fetch and dispatch/rename.
    const double decode_depth = 3.0;

    const Cache &l1i = hierarchy_.cacheAt(1, AccessType::InstFetch);
    const Cycles l1i_hit = l1i.params().hit_latency;

    double fetch_avail = 0.0;
    double fetch_stall_until = 0.0;
    double issue_avail = 0.0;
    double commit_prev = 0.0;
    Addr cur_fetch_line = invalid_addr;
    std::uint64_t mem_ops = 0;

    Instruction inst;
    for (std::uint64_t i = 0; i < count; ++i) {
        pollCellDeadline();
        workload.next(inst);

        // --- fetch -------------------------------------------------
        double fetch_t = std::max(fetch_avail, fetch_stall_until);
        fetch_avail = fetch_t + fetch_step;
        Addr line = l1i.blockAddr(inst.pc);
        if (line != cur_fetch_line) {
            cur_fetch_line = line;
            ++stats.fetch_line_accesses;
            Cycles lat = memAccess(AccessType::InstFetch, inst.pc);
            stats.data_access_cycles += lat;
            ++stats.data_accesses;
            // The L1-hit latency is pipelined away; anything beyond it
            // bubbles the front end.
            if (lat > l1i_hit) {
                fetch_stall_until =
                    std::max(fetch_stall_until,
                             fetch_t + static_cast<double>(lat - l1i_hit));
            }
        }

        // --- dispatch (window occupancy) -----------------------------
        double window_free =
            commit_ring[i % params_.window_size]; // slot of (i - window)
        double dispatch_t =
            std::max(fetch_t + decode_depth, window_free);

        // --- operand readiness ---------------------------------------
        double ready = dispatch_t;
        if (inst.dep1 && inst.dep1 <= i) {
            ready = std::max(ready,
                             complete_ring[(i - inst.dep1) % dep_horizon]);
        }
        if (inst.dep2 && inst.dep2 <= i) {
            ready = std::max(ready,
                             complete_ring[(i - inst.dep2) % dep_horizon]);
        }

        // --- issue ----------------------------------------------------
        // Bandwidth is reserved in aggregate: the cursor advances by
        // 1/width per op but does NOT jump to a stalled op's ready
        // time -- younger independent work may issue around it (true
        // out-of-order selection; the window occupancy bounds how much
        // backlog can pile up). Cross-validated against the
        // cycle-driven model in tests/cycle_core_test.cc.
        double issue_t = std::max(ready, issue_avail);
        double complete;
        if (inst.isMem()) {
            // LSQ slot of (mem_ops - lsq_size) must have drained.
            issue_t = std::max(issue_t,
                               lsq_ring[mem_ops % params_.lsq_size]);
            // MSHR bound on memory-level parallelism.
            while (!mshrs.empty() && mshrs.top() <= issue_t)
                mshrs.pop();
            if (mshrs.size() >= params_.mshrs) {
                issue_t = std::max(issue_t, mshrs.top());
                mshrs.pop();
            }
            AccessType type = inst.cls == InstClass::Load
                                  ? AccessType::Load
                                  : AccessType::Store;
            Cycles lat = memAccess(type, inst.mem_addr);
            stats.data_access_cycles += lat;
            ++stats.data_accesses;
            double mem_done = issue_t + static_cast<double>(lat);
            mshrs.push(mem_done);
            lsq_ring[mem_ops % params_.lsq_size] = mem_done;
            ++mem_ops;
            if (inst.cls == InstClass::Load) {
                complete = mem_done;
                ++stats.loads;
            } else {
                // Stores drain through the store buffer; dependents (via
                // forwarding) and commit see them complete quickly.
                complete = issue_t + 1.0;
                ++stats.stores;
            }
        } else {
            complete = issue_t + static_cast<double>(inst.exec_latency);
        }
        issue_avail += issue_step;
        complete_ring[i % dep_horizon] = complete;

        // --- branches ---------------------------------------------------
        if (inst.isBranch()) {
            ++stats.branches;
            if (inst.mispredicted) {
                ++stats.mispredicts;
                // Redirect: fetch resumes after resolution + penalty.
                fetch_stall_until = std::max(
                    fetch_stall_until,
                    complete +
                        static_cast<double>(params_.mispredict_penalty));
                cur_fetch_line = invalid_addr;
            }
        }

        // --- commit (in order, bandwidth-limited) -----------------------
        double commit_t = std::max(complete, commit_prev + commit_step);
        commit_prev = commit_t;
        commit_ring[i % params_.window_size] = commit_t;
    }

    stats.cycles = static_cast<Cycles>(std::ceil(commit_prev));
    return stats;
}

} // namespace mnm
