#include "cpu/cycle_core.hh"

#include <algorithm>
#include <deque>

#include "util/deadline.hh"
#include "util/logging.hh"

namespace mnm
{

CycleOooCore::CycleOooCore(const CpuParams &params,
                           CacheHierarchy &hierarchy, MnmUnit *mnm)
    : params_(params), hierarchy_(hierarchy), mnm_(mnm),
      complete_ring_(dep_horizon, 0)
{
    if (params_.fetch_width == 0 || params_.issue_width == 0 ||
        params_.commit_width == 0) {
        fatal("cycle core with a zero-width pipeline stage");
    }
    if (params_.window_size == 0 || params_.lsq_size == 0 ||
        params_.mshrs == 0) {
        fatal("cycle core with zero window/LSQ/MSHR resources");
    }
}

Cycles
CycleOooCore::memAccess(AccessType type, Addr addr, CpuRunStats &stats)
{
    BypassMask mask;
    if (mnm_)
        mask = mnm_->computeBypass(type, addr);
    AccessResult result = hierarchy_.access(type, addr, mask);
    Cycles latency = result.latency;
    if (mnm_) {
        coverage_.record(result);
        latency += mnm_->applyPlacementCosts(result);
    }
    stats.data_access_cycles += latency;
    ++stats.data_accesses;
    return latency;
}

bool
CycleOooCore::depsReady(const InFlight &entry, Cycles now) const
{
    auto producer_done = [&](std::uint16_t dist) {
        if (dist == 0 || dist > entry.seq)
            return true;
        std::uint64_t producer = entry.seq - dist;
        return complete_ring_[producer % dep_horizon] <= now;
    };
    return producer_done(entry.inst.dep1) &&
           producer_done(entry.inst.dep2);
}

CpuRunStats
CycleOooCore::run(WorkloadGenerator &workload, std::uint64_t count)
{
    CpuRunStats stats;
    stats.instructions = count;

    const Cache &l1i = hierarchy_.cacheAt(1, AccessType::InstFetch);
    const Cycles l1i_hit = l1i.params().hit_latency;
    const Cycles decode_depth = 3;

    std::deque<InFlight> fetch_buffer; // fetched, not yet in the window
    std::deque<InFlight> window;       // the RUU (program order)
    std::uint32_t lsq_used = 0;
    std::vector<Cycles> mshr_free; // completion cycle per busy MSHR

    Cycles now = 0;
    Cycles fetch_stalled_until = 0;
    /** seq of an unresolved mispredicted branch fetch waits on, or ~0. */
    std::uint64_t redirect_seq = ~std::uint64_t{0};
    Cycles redirect_done = 0;
    bool redirect_pending = false;
    Addr cur_fetch_line = invalid_addr;
    std::uint64_t fetched = 0;
    std::uint64_t committed = 0;

    // The fetch-buffer cap keeps dispatch from starving or ballooning.
    const std::size_t fetch_buffer_cap = 4ull * params_.fetch_width +
                                         8;

    while (committed < count) {
        pollCellDeadline();
        // --- commit -------------------------------------------------
        for (std::uint32_t n = 0; n < params_.commit_width &&
                                  !window.empty();
             ++n) {
            InFlight &head = window.front();
            if (!head.issued || head.complete > now)
                break;
            if (head.is_load || head.is_store) {
                MNM_ASSERT(lsq_used > 0, "LSQ underflow");
                --lsq_used;
            }
            ++committed;
            window.pop_front();
        }

        // --- issue (oldest ready first) ------------------------------
        // Free MSHRs whose fills have arrived.
        mshr_free.erase(std::remove_if(mshr_free.begin(),
                                       mshr_free.end(),
                                       [&](Cycles c) {
                                           return c <= now;
                                       }),
                        mshr_free.end());
        std::uint32_t issued_this_cycle = 0;
        for (InFlight &entry : window) {
            if (issued_this_cycle >= params_.issue_width)
                break;
            if (entry.issued)
                continue;
            if (!depsReady(entry, now))
                continue;
            if (entry.is_load || entry.is_store) {
                if (mshr_free.size() >= params_.mshrs)
                    continue; // no MSHR: stall this op
                AccessType type = entry.is_load ? AccessType::Load
                                                : AccessType::Store;
                Cycles lat = memAccess(type, entry.inst.mem_addr, stats);
                Cycles mem_done = now + lat;
                mshr_free.push_back(mem_done);
                // Stores retire through the store buffer; loads wait
                // for the data.
                entry.complete = entry.is_load ? mem_done : now + 1;
            } else {
                entry.complete = now + entry.inst.exec_latency;
            }
            entry.issued = true;
            // Publish the completion time for dependents. The window
            // (<=128) is far smaller than the ring (1024), so in-flight
            // sequence numbers never collide.
            complete_ring_[entry.seq % dep_horizon] = entry.complete;
            ++issued_this_cycle;
            if (entry.inst.isBranch() && entry.inst.mispredicted &&
                redirect_pending && redirect_seq == entry.seq) {
                // Resolution time now known: fetch resumes after the
                // branch completes plus the refill penalty.
                redirect_done =
                    entry.complete + params_.mispredict_penalty;
            }
        }

        // --- dispatch -------------------------------------------------
        for (std::uint32_t n = 0; n < params_.fetch_width; ++n) {
            if (fetch_buffer.empty() ||
                window.size() >= params_.window_size) {
                break;
            }
            InFlight &cand = fetch_buffer.front();
            if (cand.fetched + decode_depth > now)
                break;
            if ((cand.is_load || cand.is_store)) {
                if (lsq_used >= params_.lsq_size)
                    break; // in-order dispatch blocks on a full LSQ
                ++lsq_used;
            }
            window.push_back(cand);
            fetch_buffer.pop_front();
        }

        // --- fetch ------------------------------------------------------
        bool fetch_blocked = now < fetch_stalled_until;
        if (redirect_pending) {
            if (redirect_done != 0 && redirect_done <= now) {
                redirect_pending = false;
                redirect_seq = ~std::uint64_t{0};
                redirect_done = 0;
                cur_fetch_line = invalid_addr;
            } else {
                fetch_blocked = true;
            }
        }
        if (!fetch_blocked) {
            for (std::uint32_t n = 0; n < params_.fetch_width; ++n) {
                if (fetched >= count ||
                    fetch_buffer.size() >= fetch_buffer_cap) {
                    break;
                }
                InFlight entry;
                workload.next(entry.inst);
                entry.seq = fetched++;
                entry.fetched = now;
                // Not ready until issued.
                complete_ring_[entry.seq % dep_horizon] =
                    ~static_cast<Cycles>(0);
                entry.is_load = entry.inst.cls == InstClass::Load;
                entry.is_store = entry.inst.cls == InstClass::Store;
                if (entry.is_load)
                    ++stats.loads;
                if (entry.is_store)
                    ++stats.stores;

                Addr line = l1i.blockAddr(entry.inst.pc);
                if (line != cur_fetch_line) {
                    cur_fetch_line = line;
                    ++stats.fetch_line_accesses;
                    Cycles lat = memAccess(AccessType::InstFetch,
                                           entry.inst.pc, stats);
                    if (lat > l1i_hit) {
                        fetch_stalled_until = std::max(
                            fetch_stalled_until,
                            now + (lat - l1i_hit));
                    }
                }
                if (entry.inst.isBranch()) {
                    ++stats.branches;
                    if (entry.inst.mispredicted) {
                        ++stats.mispredicts;
                        redirect_pending = true;
                        redirect_seq = entry.seq;
                        redirect_done = 0; // known at issue
                        fetch_buffer.push_back(entry);
                        break; // no fetch past an unresolved redirect
                    }
                }
                fetch_buffer.push_back(entry);
                if (fetch_stalled_until > now)
                    break; // the I-miss bubble starts after this one
            }
        }

        ++now;
        // Deadlock guard: an empty machine with nothing left to fetch
        // cannot make progress (would indicate a model bug).
        if (window.empty() && fetch_buffer.empty() &&
            fetched >= count && committed < count) {
            panic("cycle core drained without committing everything");
        }
    }

    stats.cycles = now;
    return stats;
}

} // namespace mnm
