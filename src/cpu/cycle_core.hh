/**
 * @file
 * A cycle-driven out-of-order core model.
 *
 * Where OooCore (ooo_core.hh) approximates resource contention with
 * fractional-cycle bandwidth counters in a single pass, this model
 * simulates the machine cycle by cycle with explicit structures:
 *
 *   fetch  -> fetch buffer -> dispatch -> RUU window -> issue
 *          -> execute/memory -> complete -> in-order commit
 *
 *  - fetch: up to fetch_width sequential instructions per cycle; an
 *    I-line transition that misses L1 bubbles the front end; a
 *    mispredicted branch halts fetch until it resolves (+penalty) --
 *    trace-driven simulation has no wrong path to run down;
 *  - dispatch: fetch-buffer entries older than the decode depth move
 *    into the RUU while entries remain;
 *  - issue: oldest-ready-first, up to issue_width per cycle; loads and
 *    stores additionally need a free LSQ slot and an MSHR;
 *  - commit: up to commit_width completed instructions per cycle, in
 *    order.
 *
 * The two models are cross-validated in tests/cycle_core_test.cc: they
 * must agree on throughput bounds, and rank machine configurations the
 * same way. The benches use OooCore (it is ~5x faster); this model is
 * the reference.
 */

#ifndef MNM_CPU_CYCLE_CORE_HH
#define MNM_CPU_CYCLE_CORE_HH

#include <cstdint>
#include <vector>

#include "cpu/ooo_core.hh"

namespace mnm
{

/** The cycle-driven core. Shares CpuParams/CpuRunStats with OooCore. */
class CycleOooCore
{
  public:
    CycleOooCore(const CpuParams &params, CacheHierarchy &hierarchy,
                 MnmUnit *mnm = nullptr);

    /** Run @p count instructions from @p workload; returns timing. */
    CpuRunStats run(WorkloadGenerator &workload, std::uint64_t count);

    /** Coverage accumulated across run() calls (when an MNM is set). */
    const CoverageTracker &coverage() const { return coverage_; }

  private:
    /** One in-flight instruction (fetch buffer or RUU). */
    struct InFlight
    {
        Instruction inst;
        std::uint64_t seq = 0;     //!< global program-order index
        Cycles fetched = 0;        //!< cycle fetch completed
        Cycles complete = 0;       //!< result-ready cycle (once issued)
        bool issued = false;
        bool is_load = false;
        bool is_store = false;
    };

    Cycles memAccess(AccessType type, Addr addr, CpuRunStats &stats);
    bool depsReady(const InFlight &entry, Cycles now) const;

    CpuParams params_;
    CacheHierarchy &hierarchy_;
    MnmUnit *mnm_;
    CoverageTracker coverage_;

    /** Completion cycles of recent instructions, by seq (ring). */
    std::vector<Cycles> complete_ring_;
    static constexpr std::uint64_t dep_horizon = 1024;
};

} // namespace mnm

#endif // MNM_CPU_CYCLE_CORE_HH
