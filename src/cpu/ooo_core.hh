/**
 * @file
 * A simplified out-of-order superscalar timing model (the SimpleScalar
 * sim-outorder stand-in; DESIGN.md "Paper -> our substitutions").
 *
 * The model is a single-pass dataflow simulation with explicit resource
 * constraints -- the standard fast approximation of an RUU machine:
 *
 *  - fetch: bandwidth-limited (fetch_width/cycle); stalls for I-cache
 *    latency beyond the L1-hit pipeline on line transitions; redirects
 *    after mispredicted branches (resolve time + penalty);
 *  - dispatch: blocked while the RUU-style window is full (an
 *    instruction's slot frees when it commits);
 *  - issue: when operands are ready, bandwidth-limited
 *    (issue_width/cycle); loads/stores additionally acquire one of a
 *    finite set of MSHRs (bounding memory-level parallelism) and a
 *    load/store-queue slot;
 *  - memory: latency comes from the cache hierarchy (so MNM bypasses
 *    shorten load critical paths directly); stores retire through a
 *    store buffer and do not stall commit;
 *  - commit: in order, bandwidth-limited (commit_width/cycle).
 *
 * Bandwidth limits are modelled with fractional-cycle availability
 * counters (an op consumes 1/width of a cycle), which keeps the model
 * O(1) per instruction while preserving the throughput ceilings that
 * determine how much of the memory latency is overlappable.
 */

#ifndef MNM_CPU_OOO_CORE_HH
#define MNM_CPU_OOO_CORE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/coverage.hh"
#include "core/mnm_unit.hh"
#include "trace/workload.hh"
#include "util/types.hh"

namespace mnm
{

/** Core resources (paper Section 4.1 uses 4-way and 8-way variants). */
struct CpuParams
{
    std::uint32_t fetch_width = 8;
    std::uint32_t issue_width = 8;
    std::uint32_t commit_width = 8;
    /** RUU-style instruction window entries. */
    std::uint32_t window_size = 128;
    /** Load/store queue entries. */
    std::uint32_t lsq_size = 64;
    /** Outstanding misses allowed (memory-level parallelism bound). */
    std::uint32_t mshrs = 16;
    /** Front-end refill penalty after a mispredicted branch. */
    Cycles mispredict_penalty = 7;

    /** The paper's 4-way core (2- and 3-level experiments). */
    static CpuParams fourWay();
    /** The paper's 8-way core with doubled resources (5/7-level). */
    static CpuParams eightWay();
};

/** Results of a timed run. */
struct CpuRunStats
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t fetch_line_accesses = 0;
    /** Sum / count of data-access latencies (the paper's metric). */
    Cycles data_access_cycles = 0;
    std::uint64_t data_accesses = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
    double avgDataAccessTime() const
    {
        return data_accesses ? static_cast<double>(data_access_cycles) /
                                   static_cast<double>(data_accesses)
                             : 0.0;
    }
};

/** The out-of-order core. */
class OooCore
{
  public:
    /**
     * @param params    core resources
     * @param hierarchy the memory system (must outlive the core)
     * @param mnm       optional MNM; bypass masks are applied to every
     *                  fetch and data access (parallel placement adds no
     *                  latency, serial placement adds the MNM delay to
     *                  L1-missing accesses and charges energy then)
     */
    OooCore(const CpuParams &params, CacheHierarchy &hierarchy,
            MnmUnit *mnm = nullptr);

    /** Run @p count instructions from @p workload; returns timing. */
    CpuRunStats run(WorkloadGenerator &workload, std::uint64_t count);

    /** Coverage accumulated across run() calls (when an MNM is set). */
    const CoverageTracker &coverage() const { return coverage_; }

  private:
    /** Access memory via the MNM + hierarchy; returns request latency. */
    Cycles memAccess(AccessType type, Addr addr);

    CpuParams params_;
    CacheHierarchy &hierarchy_;
    MnmUnit *mnm_;
    CoverageTracker coverage_;
};

} // namespace mnm

#endif // MNM_CPU_OOO_CORE_HH
