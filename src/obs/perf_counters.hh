/**
 * @file
 * Hardware performance-counter access for the phase profiler.
 *
 * A PerfCounterGroup opens one perf_event_open(2) group per thread --
 * cycles (leader), instructions, LLC loads, LLC load misses, branch
 * misses -- so a single read(2) returns a consistent snapshot of all
 * five, plus the thread's CPU clock from CLOCK_THREAD_CPUTIME_ID. The
 * group counts user-space only (exclude_kernel), which is what
 * unprivileged processes are allowed under the default
 * perf_event_paranoid.
 *
 * Availability is never assumed: containers routinely block the syscall
 * (seccomp returns EPERM/ENOSYS), non-Linux hosts lack it entirely, and
 * VMs may refuse the LLC cache events while accepting the rest. The
 * probe-and-degrade ladder:
 *
 *  - syscall unavailable -> perfCountersAvailable() is false; the
 *    profiler falls back to the fast tick source (util/cpu.hh
 *    profFastTick: rdtsc / CNTVCT / steady_clock) and MNM_PROF=hw
 *    degrades to time mode with one warning;
 *  - an individual sibling refused -> that counter silently reads 0
 *    (cycles and instructions are mandatory; LLC/branch are not);
 *  - a group that opened but cannot be read -> ok() goes false and the
 *    caller stops asking.
 *
 * Profiling modes (the MNM_PROF environment knob):
 *
 *   off    no instrumentation at all (the default; every PhaseScope is
 *          two predictable branches and stdout is byte-identical)
 *   time   per-phase cycle attribution from the fast tick source
 *   hw     time attribution plus the counter group read at every phase
 *          transition -- a read(2) per transition, so expect a several-
 *          fold slowdown; use small windows and read the shares
 *
 * Anything else is rejected loudly (the repo's env-knob convention: a
 * typo must not silently change what a bench measured).
 */

#ifndef MNM_OBS_PERF_COUNTERS_HH
#define MNM_OBS_PERF_COUNTERS_HH

#include <cstdint>

namespace mnm
{

/** What the MNM_PROF knob selected. */
enum class ProfMode : std::uint8_t
{
    Off,  //!< no phase instrumentation (default)
    Time, //!< fast-tick cycle attribution only
    Hw,   //!< tick attribution + hardware counter group per transition
};

/** Parse one MNM_PROF value (null/empty = Off); fatal on anything but
 *  off, time, or hw. */
ProfMode parseProfMode(const char *value);

/** Stable lower-case name ("off", "time", "hw"). */
const char *profModeName(ProfMode mode);

/** One snapshot of the group (monotone totals, not deltas). Counters
 *  the kernel refused stay 0. */
struct PerfSample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_loads = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
    std::uint64_t task_clock_ns = 0; //!< CLOCK_THREAD_CPUTIME_ID
};

/**
 * One thread's counter group. Open it on the thread whose work it
 * should count (the events are bound to the calling thread); read() is
 * one syscall returning all five values atomically.
 */
class PerfCounterGroup
{
  public:
    PerfCounterGroup() = default;
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    /** Open and enable the group for the calling thread. False when
     *  the leader cannot be opened (syscall blocked, non-Linux). */
    bool open();

    /** True between a successful open() and close(). */
    bool ok() const { return leader_fd_ >= 0; }

    /** Snapshot the group into @p out. False (and ok() goes false) if
     *  the read fails; @p out is zeroed then. */
    bool read(PerfSample &out);

    void close();

  private:
    static constexpr int num_events = 5;
    int leader_fd_ = -1;
    /** All event fds, leader first; -1 for refused siblings. */
    int fds_[num_events] = {-1, -1, -1, -1, -1};
    /** Kernel-assigned stream ids, matched against the group read. */
    std::uint64_t ids_[num_events] = {0, 0, 0, 0, 0};
};

/** Can this process open a counter group at all? Probed once (open and
 *  close a throwaway group on the calling thread). */
bool perfCountersAvailable();

} // namespace mnm

#endif // MNM_OBS_PERF_COUNTERS_HH
