/**
 * @file
 * Chrome trace_event timeline writer for the sweep runner.
 *
 * Collects "complete" events (ph:"X") -- one per sweep cell, with the
 * worker thread as the tid -- and writes the JSON Object Format that
 * chrome://tracing and Perfetto load directly. Event collection is
 * mutex-guarded so workers may append concurrently; the file is written
 * once, at process exit or on demand (obs/manifest.hh drives this from
 * the MNM_TRACE_FILE knob).
 */

#ifndef MNM_OBS_TRACE_HH
#define MNM_OBS_TRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mnm
{

/** An append-only buffer of trace_event records. */
class TraceLog
{
  public:
    TraceLog() = default;
    TraceLog(const TraceLog &) = delete;
    TraceLog &operator=(const TraceLog &) = delete;

    /**
     * Record one complete event.
     *
     * @param name   event label shown on the timeline slice
     * @param category trace_event "cat" field (e.g. "sweep")
     * @param tid    lane the slice renders in (the worker index)
     * @param ts_us  start, microseconds from an arbitrary epoch
     * @param dur_us duration in microseconds
     * @param args   extra key/value detail shown on selection
     */
    void addCompleteEvent(
        const std::string &name, const std::string &category,
        std::uint32_t tid, std::uint64_t ts_us, std::uint64_t dur_us,
        std::vector<std::pair<std::string, std::string>> args = {});

    std::size_t size() const;
    void clear();

    /** Write the full JSON Object Format document. */
    void write(std::ostream &out) const;

  private:
    struct Event
    {
        std::string name;
        std::string category;
        std::uint32_t tid;
        std::uint64_t ts_us;
        std::uint64_t dur_us;
        std::vector<std::pair<std::string, std::string>> args;
    };

    mutable std::mutex mutex_;
    std::vector<Event> events_;
};

/** The process-wide trace buffer (written under MNM_TRACE_FILE). */
TraceLog &globalTrace();

} // namespace mnm

#endif // MNM_OBS_TRACE_HH
