/**
 * @file
 * Machine-readable run telemetry: the MNM_STATS_JSON run manifest and
 * the MNM_TRACE_FILE Chrome timeline.
 *
 * Every bench harness and example calls initRunTelemetry() once (the
 * ExperimentOptions::fromEnv() path does it automatically); that reads
 * the two knobs and registers a process-exit hook, so whatever the
 * binary folded into globalStats()/globalTrace() lands on disk without
 * each main() carrying serialization code. With both knobs unset this
 * layer is inert: nothing is written and stdout is untouched, which
 * preserves the byte-identical-output guarantee.
 *
 * The manifest schema ("mnm-run-manifest-v2"):
 *   {
 *     "schema": "mnm-run-manifest-v2",
 *     "meta":    { "git_describe": ..., "run": ... },
 *     "config":  { "instructions": ..., "jobs": ..., "csv": ...,
 *                  "apps": [...] },
 *     "metrics": { ...nested globalStats() tree... }
 *   }
 * v2 adds the "metrics.prof" subtree when MNM_PROF is active: per-phase
 * {cycles,instr,llc_miss,share,...} from obs/phase_profiler, plus
 * per-cell attribution under "metrics.prof.cell.<label>.<app>" for
 * sweeps. Consumers comparing manifests across job counts must ignore
 * "meta", "config.jobs"/"config.progress" and the "metrics.runner" and
 * "metrics.prof" subtrees (wall-clock telemetry); tools/
 * extract_results.py --diff does exactly that.
 *
 * initRunTelemetry() also resolves the profiling knobs (MNM_PROF,
 * MNM_PROF_FOLDED -- see obs/phase_profiler.hh) so a folded-stack
 * export is written at exit even when the manifest knobs are unset.
 */

#ifndef MNM_OBS_MANIFEST_HH
#define MNM_OBS_MANIFEST_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mnm
{

/**
 * Parse MNM_STATS_JSON / MNM_TRACE_FILE and register the exit-time
 * writer (first call only). @p run_name is recorded in the manifest's
 * meta block; later calls may refine it (setRunName) but never re-read
 * the environment.
 */
void initRunTelemetry(const std::string &run_name = "");

/** Record the harness/figure name for the manifest meta block. */
void setRunName(const std::string &run_name);

/** Echo the experiment configuration into the manifest. @p workers is
 *  the MNM_WORKERS process count (0 = in-process execution). */
void setRunConfig(std::uint64_t instructions,
                  const std::vector<std::string> &apps, unsigned jobs,
                  unsigned workers, bool csv);

/** True when MNM_STATS_JSON was set (after initRunTelemetry). */
bool statsJsonEnabled();

/** True when MNM_TRACE_FILE was set (after initRunTelemetry). */
bool traceFileEnabled();

/** The git description baked in at configure time ("unknown" without
 *  git). */
const char *gitDescribe();

/** Serialize the manifest document to @p out. */
void writeRunManifest(std::ostream &out);

/**
 * Write the configured artifacts now (also runs at exit). Safe to call
 * with the knobs unset -- it does nothing. Used by tests and by
 * harnesses that want the files before process teardown.
 */
void writeRunArtifacts();

/** Test hook: override the output paths without touching the
 *  environment. Empty string disables that artifact. */
void setRunArtifactPathsForTest(const std::string &stats_path,
                                const std::string &trace_path);

} // namespace mnm

#endif // MNM_OBS_MANIFEST_HH
