#include "obs/trace.hh"

#include "obs/json.hh"

namespace mnm
{

void
TraceLog::addCompleteEvent(
    const std::string &name, const std::string &category,
    std::uint32_t tid, std::uint64_t ts_us, std::uint64_t dur_us,
    std::vector<std::pair<std::string, std::string>> args)
{
    std::scoped_lock lock(mutex_);
    events_.push_back(
        {name, category, tid, ts_us, dur_us, std::move(args)});
}

std::size_t
TraceLog::size() const
{
    std::scoped_lock lock(mutex_);
    return events_.size();
}

void
TraceLog::clear()
{
    std::scoped_lock lock(mutex_);
    events_.clear();
}

void
TraceLog::write(std::ostream &out) const
{
    std::scoped_lock lock(mutex_);
    JsonWriter json(out, /*pretty=*/true);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();
    for (const Event &event : events_) {
        json.beginObject();
        json.field("name", event.name);
        json.field("cat", event.category);
        json.field("ph", "X");
        json.field("pid", 1);
        json.field("tid", event.tid);
        json.field("ts", event.ts_us);
        json.field("dur", event.dur_us);
        if (!event.args.empty()) {
            json.key("args");
            json.beginObject();
            for (const auto &[k, v] : event.args)
                json.field(k, v);
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

TraceLog &
globalTrace()
{
    static TraceLog log;
    return log;
}

} // namespace mnm
