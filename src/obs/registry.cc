#include "obs/registry.hh"

#include <sstream>

#include "obs/json.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> segments;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            segments.push_back(path.substr(start));
            return segments;
        }
        segments.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
}

bool
underPrefix(const std::string &path, const std::string &prefix)
{
    if (path.size() < prefix.size() ||
        path.compare(0, prefix.size(), prefix) != 0) {
        return false;
    }
    return path.size() == prefix.size() || path[prefix.size()] == '.';
}

void
writeEntry(JsonWriter &json, const std::variant<Counter, double,
                                                RunningStat,
                                                Histogram> &entry)
{
    if (const auto *c = std::get_if<Counter>(&entry)) {
        json.value(c->value());
    } else if (const auto *g = std::get_if<double>(&entry)) {
        json.value(*g);
    } else if (const auto *s = std::get_if<RunningStat>(&entry)) {
        json.beginObject();
        json.field("count", s->count());
        json.field("sum", s->sum());
        json.field("mean", s->mean());
        json.field("min", s->min());
        json.field("max", s->max());
        json.field("stddev", s->stddev());
        json.endObject();
    } else if (const auto *h = std::get_if<Histogram>(&entry)) {
        json.beginObject();
        json.field("samples", h->samples());
        json.field("bucket_width", h->bucketWidth());
        json.key("counts");
        json.beginArray();
        for (std::size_t i = 0; i < h->bucketCount(); ++i)
            json.value(h->bucket(i));
        json.endArray();
        json.field("overflow", h->overflow());
        json.endObject();
    } else {
        panic("unhandled stats registry entry kind");
    }
}

} // anonymous namespace

void
StatsRegistry::checkNesting(const std::string &path) const
{
    MNM_ASSERT(!path.empty() && path.front() != '.' &&
                   path.back() != '.' &&
                   path.find("..") == std::string::npos,
               "malformed metric path");
    // entries_ is sorted, so any leaf/interior conflict is adjacent:
    // the shortest extension of `path` sorts right after it, and a
    // prefix of `path` sorts right before everything under it.
    auto next = entries_.lower_bound(path);
    if (next != entries_.end() && next->first != path &&
        underPrefix(next->first, path)) {
        panic("metric path '%s' conflicts with existing leaf '%s'",
              path.c_str(), next->first.c_str());
    }
    if (next != entries_.begin()) {
        auto prev = std::prev(next);
        if (underPrefix(path, prev->first) && prev->first != path) {
            panic("metric path '%s' conflicts with existing leaf '%s'",
                  path.c_str(), prev->first.c_str());
        }
    }
}

template <typename T, typename... MakeArgs>
T &
StatsRegistry::findOrCreate(const std::string &path, const char *kind,
                            MakeArgs &&...make_args)
{
    std::scoped_lock lock(mutex_);
    auto it = entries_.find(path);
    if (it == entries_.end()) {
        checkNesting(path);
        it = entries_
                 .emplace(path,
                          Entry(std::in_place_type<T>,
                                std::forward<MakeArgs>(make_args)...))
                 .first;
    }
    T *metric = std::get_if<T>(&it->second);
    if (!metric) {
        panic("metric '%s' re-registered as a different kind (%s)",
              path.c_str(), kind);
    }
    return *metric;
}

Counter &
StatsRegistry::counter(const std::string &path)
{
    return findOrCreate<Counter>(path, "counter");
}

double &
StatsRegistry::gauge(const std::string &path)
{
    return findOrCreate<double>(path, "gauge", 0.0);
}

RunningStat &
StatsRegistry::runningStat(const std::string &path)
{
    return findOrCreate<RunningStat>(path, "running-stat");
}

Histogram &
StatsRegistry::histogram(const std::string &path,
                         std::size_t bucket_count, double bucket_width)
{
    Histogram &h = findOrCreate<Histogram>(path, "histogram",
                                           bucket_count, bucket_width);
    MNM_ASSERT(h.bucketCount() == bucket_count &&
                   h.bucketWidth() == bucket_width,
               "histogram re-registered with a different shape");
    return h;
}

void
StatsRegistry::addCounter(const std::string &path, std::uint64_t n)
{
    counter(path) += n;
}

void
StatsRegistry::setGauge(const std::string &path, double v)
{
    gauge(path) = v;
}

bool
StatsRegistry::has(const std::string &path) const
{
    std::scoped_lock lock(mutex_);
    return entries_.count(path) != 0;
}

std::size_t
StatsRegistry::size() const
{
    std::scoped_lock lock(mutex_);
    return entries_.size();
}

void
StatsRegistry::clear()
{
    std::scoped_lock lock(mutex_);
    entries_.clear();
}

void
StatsRegistry::writeJson(std::ostream &out,
                         const std::vector<std::string> &skip_prefixes,
                         bool pretty) const
{
    std::scoped_lock lock(mutex_);
    JsonWriter json(out, pretty);
    json.beginObject();
    std::vector<std::string> open; // interior segments currently open
    for (const auto &[path, entry] : entries_) {
        bool skip = false;
        for (const std::string &prefix : skip_prefixes)
            skip = skip || underPrefix(path, prefix);
        if (skip)
            continue;
        std::vector<std::string> segments = splitPath(path);
        std::size_t interior = segments.size() - 1;
        std::size_t common = 0;
        while (common < open.size() && common < interior &&
               open[common] == segments[common]) {
            ++common;
        }
        while (open.size() > common) {
            json.endObject();
            open.pop_back();
        }
        for (; open.size() < interior; ++common) {
            json.key(segments[open.size()]);
            json.beginObject();
            open.push_back(segments[open.size()]);
        }
        json.key(segments.back());
        writeEntry(json, entry);
    }
    while (!open.empty()) {
        json.endObject();
        open.pop_back();
    }
    json.endObject();
}

std::string
StatsRegistry::toJson(const std::vector<std::string> &skip_prefixes,
                      bool pretty) const
{
    std::ostringstream out;
    writeJson(out, skip_prefixes, pretty);
    return out.str();
}

StatsRegistry &
globalStats()
{
    static StatsRegistry registry;
    return registry;
}

std::string
sanitizeMetricSegment(const std::string &text)
{
    std::string out = text;
    for (char &c : out) {
        bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return out.empty() ? "_" : out;
}

} // namespace mnm
