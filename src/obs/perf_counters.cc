#include "obs/perf_counters.hh"

#include <cstring>
#include <ctime>

#include "util/logging.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mnm
{

ProfMode
parseProfMode(const char *value)
{
    if (!value || !*value || std::strcmp(value, "off") == 0)
        return ProfMode::Off;
    if (std::strcmp(value, "time") == 0)
        return ProfMode::Time;
    if (std::strcmp(value, "hw") == 0)
        return ProfMode::Hw;
    fatal("unknown MNM_PROF value '%s' (expected off, time, or hw)", value);
}

const char *
profModeName(ProfMode mode)
{
    switch (mode) {
      case ProfMode::Off:
        return "off";
      case ProfMode::Time:
        return "time";
      case ProfMode::Hw:
        return "hw";
    }
    return "?";
}

namespace
{

std::uint64_t
threadCpuNs()
{
#if defined(__linux__)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
#else
    return 0;
#endif
}

} // namespace

#if defined(__linux__)

namespace
{

int
perfEventOpen(perf_event_attr *attr, int group_fd)
{
    // pid=0, cpu=-1: count this thread wherever it runs.
    return static_cast<int>(
        syscall(SYS_perf_event_open, attr, 0, -1, group_fd, 0));
}

struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

// Leader first; order matches PerfSample field order (task_clock_ns
// comes from clock_gettime, not from an event).
constexpr EventSpec event_specs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

} // namespace

PerfCounterGroup::~PerfCounterGroup() { close(); }

bool
PerfCounterGroup::open()
{
    close();

    for (int i = 0; i < num_events; ++i) {
        perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = event_specs[i].type;
        attr.config = event_specs[i].config;
        attr.disabled = i == 0 ? 1 : 0; // group toggles via the leader
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;

        const int fd = perfEventOpen(&attr, leader_fd_);
        if (fd < 0) {
            if (i <= 1) { // cycles and instructions are mandatory
                close();
                return false;
            }
            fds_[i] = -1; // LLC/branch refused: count as 0
            continue;
        }
        fds_[i] = fd;
        if (i == 0)
            leader_fd_ = fd;
        if (ioctl(fd, PERF_EVENT_IOC_ID, &ids_[i]) != 0)
            ids_[i] = 0;
    }

    if (ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
        close();
        return false;
    }
    return true;
}

bool
PerfCounterGroup::read(PerfSample &out)
{
    out = PerfSample{};
    if (leader_fd_ < 0)
        return false;

    // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
    //   { u64 nr; struct { u64 value; u64 id; } values[nr]; }
    struct
    {
        std::uint64_t nr;
        struct
        {
            std::uint64_t value;
            std::uint64_t id;
        } values[num_events];
    } buf;

    const ssize_t n = ::read(leader_fd_, &buf, sizeof(buf));
    if (n < static_cast<ssize_t>(sizeof(std::uint64_t)) ||
        buf.nr > static_cast<std::uint64_t>(num_events)) {
        close();
        return false;
    }

    std::uint64_t *const fields[num_events] = {
        &out.cycles, &out.instructions, &out.llc_loads, &out.llc_misses,
        &out.branch_misses};
    for (std::uint64_t v = 0; v < buf.nr; ++v) {
        for (int i = 0; i < num_events; ++i) {
            if (fds_[i] >= 0 && ids_[i] == buf.values[v].id) {
                *fields[i] = buf.values[v].value;
                break;
            }
        }
    }
    out.task_clock_ns = threadCpuNs();
    return true;
}

void
PerfCounterGroup::close()
{
    for (int i = num_events - 1; i >= 0; --i) {
        if (fds_[i] >= 0)
            ::close(fds_[i]);
        fds_[i] = -1;
        ids_[i] = 0;
    }
    leader_fd_ = -1;
}

bool
perfCountersAvailable()
{
    static const bool available = [] {
        PerfCounterGroup probe;
        const bool ok = probe.open();
        probe.close();
        return ok;
    }();
    return available;
}

#else // !__linux__

PerfCounterGroup::~PerfCounterGroup() { close(); }

bool
PerfCounterGroup::open()
{
    return false;
}

bool
PerfCounterGroup::read(PerfSample &out)
{
    out = PerfSample{};
    out.task_clock_ns = threadCpuNs();
    return false;
}

void
PerfCounterGroup::close()
{
    leader_fd_ = -1;
}

bool
perfCountersAvailable()
{
    return false;
}

#endif // __linux__

} // namespace mnm
