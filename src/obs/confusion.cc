#include "obs/confusion.hh"

#include "util/logging.hh"

namespace mnm
{

void
DecisionMatrix::recordAccess(const AccessResult &result)
{
    for (std::uint8_t i = 0; i < result.num_probes; ++i) {
        const ProbeRecord &probe = result.probes[i];
        if (probe.level < 2 || probe.level >= max_levels)
            continue; // level-1 outcomes are never predicted
        Cells &cells = levels_[probe.level];
        if (probe.bypassed) {
            // A bypassed cache was never probed, so it cannot have hit:
            // an acted-upon predicted-miss/actual-hit would mean the
            // hierarchy skipped a resident block -- architectural
            // corruption, not a statistic.
            MNM_ASSERT(!probe.hit,
                       "bypassed probe reports a hit (acted-upon "
                       "soundness violation)");
            ++cells.predicted_miss_actual_miss;
        } else if (probe.hit) {
            ++cells.maybe_actual_hit;
        } else {
            ++cells.maybe_actual_miss;
        }
    }
}

void
DecisionMatrix::setForbidden(std::uint32_t level, std::uint64_t count)
{
    if (level < max_levels)
        levels_[level].predicted_miss_actual_hit = count;
}

const DecisionMatrix::Cells &
DecisionMatrix::at(std::uint32_t level) const
{
    MNM_ASSERT(level < max_levels, "decision-matrix level out of range");
    return levels_[level];
}

DecisionMatrix::Cells
DecisionMatrix::totals() const
{
    Cells sum;
    for (const Cells &cells : levels_) {
        sum.predicted_miss_actual_miss += cells.predicted_miss_actual_miss;
        sum.maybe_actual_miss += cells.maybe_actual_miss;
        sum.maybe_actual_hit += cells.maybe_actual_hit;
        sum.predicted_miss_actual_hit += cells.predicted_miss_actual_hit;
    }
    return sum;
}

std::uint64_t
DecisionMatrix::forbidden() const
{
    return totals().predicted_miss_actual_hit;
}

double
DecisionMatrix::coverage() const
{
    Cells sum = totals();
    return ratio(static_cast<double>(sum.predicted_miss_actual_miss),
                 static_cast<double>(sum.actualMisses()));
}

double
DecisionMatrix::coverageAt(std::uint32_t level) const
{
    const Cells &cells = at(level);
    return ratio(static_cast<double>(cells.predicted_miss_actual_miss),
                 static_cast<double>(cells.actualMisses()));
}

void
DecisionMatrix::merge(const DecisionMatrix &other)
{
    for (std::size_t i = 0; i < max_levels; ++i) {
        levels_[i].predicted_miss_actual_miss +=
            other.levels_[i].predicted_miss_actual_miss;
        levels_[i].maybe_actual_miss += other.levels_[i].maybe_actual_miss;
        levels_[i].maybe_actual_hit += other.levels_[i].maybe_actual_hit;
        levels_[i].predicted_miss_actual_hit +=
            other.levels_[i].predicted_miss_actual_hit;
    }
}

void
DecisionMatrix::reset()
{
    *this = DecisionMatrix();
}

void
DecisionMatrix::setCells(std::uint32_t level, const Cells &cells)
{
    if (level < max_levels)
        levels_[level] = cells;
}

void
DecisionMatrix::registerInto(StatsRegistry &registry,
                             const std::string &prefix) const
{
    for (std::uint32_t level = 0; level < max_levels; ++level) {
        const Cells &cells = levels_[level];
        if (cells.decisions() == 0)
            continue;
        std::string base = prefix + ".l" + std::to_string(level) + ".";
        registry.counter(base + "predicted_miss_actual_miss") +=
            cells.predicted_miss_actual_miss;
        registry.counter(base + "maybe_actual_miss") +=
            cells.maybe_actual_miss;
        registry.counter(base + "maybe_actual_hit") +=
            cells.maybe_actual_hit;
        registry.counter(base + "predicted_miss_actual_hit") +=
            cells.predicted_miss_actual_hit;
    }
}

void
DecisionMatrix::assertSound(const char *context) const
{
    for (std::uint32_t level = 0; level < max_levels; ++level) {
        if (levels_[level].predicted_miss_actual_hit != 0) {
            panic("soundness violation: %llu predicted-miss/actual-hit "
                  "decisions at level %u (%s)",
                  static_cast<unsigned long long>(
                      levels_[level].predicted_miss_actual_hit),
                  level, context);
        }
    }
}

} // namespace mnm
