#include "obs/manifest.hh"

#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/json.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

#ifndef MNM_GIT_DESCRIBE
#define MNM_GIT_DESCRIBE "unknown"
#endif

namespace mnm
{

namespace
{

/** Everything the exit-time writer needs, set up by initRunTelemetry. */
struct RunInfo
{
    bool initialized = false;
    std::string run_name;
    std::string stats_path;
    std::string trace_path;

    bool have_config = false;
    std::uint64_t instructions = 0;
    std::vector<std::string> apps;
    unsigned jobs = 0;
    unsigned workers = 0;
    bool csv = false;
};

std::mutex &
runInfoMutex()
{
    static std::mutex mutex;
    return mutex;
}

RunInfo &
runInfo()
{
    static RunInfo info;
    return info;
}

void
writeArtifactsAtExit()
{
    writeRunArtifacts();
}

} // anonymous namespace

void
initRunTelemetry(const std::string &run_name)
{
    std::scoped_lock lock(runInfoMutex());
    RunInfo &info = runInfo();
    if (!info.initialized) {
        info.initialized = true;
        // The profiling knobs resolve here too, so a malformed MNM_PROF
        // dies at startup and every harness that records telemetry also
        // attributes it.
        initPhaseProfiler();
        if (const char *env = std::getenv("MNM_STATS_JSON"))
            info.stats_path = env;
        if (const char *env = std::getenv("MNM_TRACE_FILE"))
            info.trace_path = env;
        if (!info.stats_path.empty() || !info.trace_path.empty() ||
            !profFoldedPath().empty()) {
            // Force-construct the singletons the exit hook reads NOW:
            // function-local statics are destroyed in reverse
            // construction order, interleaved with atexit handlers, so
            // anything first touched after this registration would be
            // gone by the time the hook runs.
            globalStats();
            globalTrace();
            std::atexit(writeArtifactsAtExit);
        }
    }
    if (!run_name.empty() && info.run_name.empty())
        info.run_name = run_name;
}

void
setRunName(const std::string &run_name)
{
    std::scoped_lock lock(runInfoMutex());
    runInfo().run_name = run_name;
}

void
setRunConfig(std::uint64_t instructions,
             const std::vector<std::string> &apps, unsigned jobs,
             unsigned workers, bool csv)
{
    std::scoped_lock lock(runInfoMutex());
    RunInfo &info = runInfo();
    info.have_config = true;
    info.instructions = instructions;
    info.apps = apps;
    info.jobs = jobs;
    info.workers = workers;
    info.csv = csv;
}

bool
statsJsonEnabled()
{
    std::scoped_lock lock(runInfoMutex());
    return !runInfo().stats_path.empty();
}

bool
traceFileEnabled()
{
    std::scoped_lock lock(runInfoMutex());
    return !runInfo().trace_path.empty();
}

const char *
gitDescribe()
{
    return MNM_GIT_DESCRIBE;
}

void
writeRunManifest(std::ostream &out)
{
    RunInfo info;
    {
        std::scoped_lock lock(runInfoMutex());
        info = runInfo();
    }
    // Fold the phase-attribution profile (if any) so the manifest is
    // self-contained, then serialize the metrics tree and re-indent it
    // by one level so it nests as the "metrics" member of the document.
    foldProfGlobal(globalStats());
    std::string metrics = globalStats().toJson({}, true);
    std::string indented;
    indented.reserve(metrics.size() + metrics.size() / 8);
    for (char c : metrics) {
        indented.push_back(c);
        if (c == '\n')
            indented += "  ";
    }

    JsonWriter json(out, /*pretty=*/true);
    json.beginObject();
    json.field("schema", "mnm-run-manifest-v2");
    json.key("meta");
    json.beginObject();
    json.field("git_describe", gitDescribe());
    json.field("run", info.run_name);
    json.endObject();
    json.key("config");
    json.beginObject();
    if (info.have_config) {
        json.field("instructions", info.instructions);
        json.field("jobs", info.jobs);
        json.field("workers", info.workers);
        json.field("csv", info.csv);
        json.key("apps");
        json.beginArray();
        for (const std::string &app : info.apps)
            json.value(app);
        json.endArray();
    }
    json.endObject();
    json.key("metrics");
    json.rawValue(indented);
    json.endObject();
}

void
writeRunArtifacts()
{
    RunInfo info;
    {
        std::scoped_lock lock(runInfoMutex());
        info = runInfo();
    }
    if (!info.stats_path.empty()) {
        std::ofstream out(info.stats_path,
                          std::ios::out | std::ios::trunc);
        if (!out) {
            warn("MNM_STATS_JSON: cannot open '%s' for writing",
                 info.stats_path.c_str());
        } else {
            writeRunManifest(out);
            out << "\n";
        }
    }
    if (!info.trace_path.empty()) {
        std::ofstream out(info.trace_path,
                          std::ios::out | std::ios::trunc);
        if (!out) {
            warn("MNM_TRACE_FILE: cannot open '%s' for writing",
                 info.trace_path.c_str());
        } else {
            globalTrace().write(out);
            out << "\n";
        }
    }
    writeProfFoldedFile();
}

void
setRunArtifactPathsForTest(const std::string &stats_path,
                           const std::string &trace_path)
{
    std::scoped_lock lock(runInfoMutex());
    RunInfo &info = runInfo();
    info.initialized = true;
    info.stats_path = stats_path;
    info.trace_path = trace_path;
}

} // namespace mnm
