/**
 * @file
 * Hierarchical named-metrics registry, in the spirit of gem5's stats
 * package: components register counters, gauges, running statistics and
 * histograms under dotted paths ("hmnm.l3.predicted_miss",
 * "runner.cell_wall_ms") and the registry serializes the whole tree to
 * JSON with deterministic (sorted) key order.
 *
 * Conventions:
 *  - Paths nest on '.'; a path may not be both a leaf and an interior
 *    node ("a.b" and "a.b.c" conflict, caught by MNM_ASSERT).
 *  - Everything under the "runner." prefix is wall-clock telemetry and
 *    is expected to differ between runs; consumers that compare
 *    manifests (tests, CI) skip it via toJson()'s skip_prefixes.
 *  - Registration and serialization are mutex-guarded; the references
 *    handed back are stable (node-based map) but not synchronized --
 *    each metric must be updated from one thread at a time, which the
 *    sweep runner guarantees by folding results after the pool drains.
 */

#ifndef MNM_OBS_REGISTRY_HH
#define MNM_OBS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "util/stats.hh"

namespace mnm
{

/** The registry. One process-wide instance lives behind globalStats(). */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /**
     * Find-or-create the metric at @p path. Re-requesting an existing
     * path returns the same object; requesting it as a different kind
     * panics. histogram() re-registration also requires an identical
     * shape.
     */
    Counter &counter(const std::string &path);
    double &gauge(const std::string &path);
    RunningStat &runningStat(const std::string &path);
    Histogram &histogram(const std::string &path,
                         std::size_t bucket_count, double bucket_width);

    /** Convenience setters. */
    void addCounter(const std::string &path, std::uint64_t n);
    void setGauge(const std::string &path, double v);

    bool has(const std::string &path) const;
    std::size_t size() const;
    void clear();

    /**
     * Serialize as a nested JSON object. Paths equal to or nested under
     * any of @p skip_prefixes are omitted ("runner" drops the whole
     * runner.* timing subtree).
     */
    void writeJson(std::ostream &out,
                   const std::vector<std::string> &skip_prefixes = {},
                   bool pretty = true) const;
    std::string toJson(const std::vector<std::string> &skip_prefixes = {},
                       bool pretty = true) const;

  private:
    using Entry = std::variant<Counter, double, RunningStat, Histogram>;

    template <typename T, typename... MakeArgs>
    T &findOrCreate(const std::string &path, const char *kind,
                    MakeArgs &&...make_args);

    /** Panics if @p path would be both a leaf and an interior node. */
    void checkNesting(const std::string &path) const;

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

/** The process-wide registry every component folds into. */
StatsRegistry &globalStats();

/**
 * Make @p text safe as one dotted-path segment: every character outside
 * [A-Za-z0-9_-] becomes '_', so workload/config labels can't introduce
 * accidental nesting.
 */
std::string sanitizeMetricSegment(const std::string &text);

} // namespace mnm

#endif // MNM_OBS_REGISTRY_HH
