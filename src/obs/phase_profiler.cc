#include "obs/phase_profiler.hh"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/registry.hh"
#include "util/cpu.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

constexpr int max_stack_depth = 16;
// The collapsed-stack key packs one byte per frame into a u64; deeper
// nesting keeps accumulating time but stops extending the path.
constexpr int max_path_frames = 8;
constexpr int folded_slots = 128; // power of two; ~10 paths in practice

std::atomic<bool> prof_active{false};
ProfMode prof_mode = ProfMode::Off;
bool hw_fell_back = false;
bool init_done = false;
std::string folded_file;

struct FoldedSlot
{
    std::uint64_t key = 0; // 0 = empty
    std::uint64_t ticks = 0;
};

/**
 * One thread's profiler state. Trivially destructible on purpose: no
 * thread-exit magic -- every profiled thread hands its numbers over via
 * flushThreadProf() (the sweep workers and foldProfGlobal() do), and a
 * thread that never flushes merely contributes nothing.
 */
struct ThreadProf
{
    PhaseTotals totals;
    std::uint8_t stack[max_stack_depth] = {};
    int depth = 0;
    std::uint64_t path = 0; // collapsed-stack key of the open stack
    std::uint64_t last_tick = 0;
    PerfSample last_sample;
    PerfCounterGroup *group = nullptr; // hw mode only, opened lazily
    bool group_tried = false;
    FoldedSlot folded[folded_slots];
    std::uint64_t folded_drops = 0; // ticks lost to table overflow
};

thread_local ThreadProf tls;

struct GlobalProf
{
    std::mutex mutex;
    PhaseTotals totals;
    std::map<std::uint64_t, std::uint64_t> folded;
    std::uint64_t folded_drops = 0;
};

GlobalProf &
globalProf()
{
    // Leaked: the atexit manifest writer folds after static destruction
    // may have begun, so this aggregate must never die.
    static GlobalProf *const g = new GlobalProf;
    return *g;
}

void
addFolded(ThreadProf &t, std::uint64_t key, std::uint64_t ticks)
{
    if (key == 0 || ticks == 0)
        return;
    const std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    for (int probe = 0; probe < folded_slots; ++probe) {
        FoldedSlot &slot =
            t.folded[(h + static_cast<std::uint64_t>(probe)) &
                     (folded_slots - 1)];
        if (slot.key == key) {
            slot.ticks += ticks;
            return;
        }
        if (slot.key == 0) {
            slot.key = key;
            slot.ticks = ticks;
            return;
        }
    }
    t.folded_drops += ticks;
}

void
maybeOpenGroup(ThreadProf &t)
{
    if (prof_mode != ProfMode::Hw || t.group_tried)
        return;
    t.group_tried = true;
    auto *group = new PerfCounterGroup;
    if (group->open() && group->read(t.last_sample)) {
        t.group = group;
    } else {
        delete group;
    }
}

/** Charge the interval since the last transition to the innermost open
 *  phase (restamp only when no scope is open). */
void
settle(ThreadProf &t, std::uint64_t now)
{
    if (t.depth == 0) {
        t.last_tick = now;
        return;
    }
    const std::uint64_t delta = now - t.last_tick;
    t.last_tick = now;
    PhaseCounters &c = t.totals.phase[t.stack[t.depth - 1]];
    c.ticks += delta;
    addFolded(t, t.path, delta);
    if (t.group) {
        PerfSample s;
        if (t.group->read(s)) {
            c.cycles += s.cycles - t.last_sample.cycles;
            c.instructions += s.instructions - t.last_sample.instructions;
            c.llc_loads += s.llc_loads - t.last_sample.llc_loads;
            c.llc_misses += s.llc_misses - t.last_sample.llc_misses;
            c.branch_misses +=
                s.branch_misses - t.last_sample.branch_misses;
            c.task_clock_ns +=
                s.task_clock_ns - t.last_sample.task_clock_ns;
            t.last_sample = s;
        } else {
            delete t.group;
            t.group = nullptr;
        }
    }
}

void
closeThreadGroup(ThreadProf &t)
{
    delete t.group;
    t.group = nullptr;
    t.group_tried = false; // reopen if this thread profiles again
    t.last_sample = PerfSample{};
}

std::uint64_t
satSub(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : 0;
}

} // namespace

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Run:
        return "run";
      case Phase::BatchGen:
        return "batch_gen";
      case Phase::L1Peek:
        return "l1_peek";
      case Phase::Verdict:
        return "verdict";
      case Phase::HierWalk:
        return "hier_walk";
      case Phase::UpdateFeed:
        return "update_feed";
      case Phase::Cold:
        return "cold_account";
      case Phase::FeedDrain:
        return "feed_drain";
      case Phase::GenOverlap:
        return "gen_overlap";
      case Phase::LaneDescent:
        return "lane_descent";
    }
    return "?";
}

std::uint64_t
PhaseTotals::totalTicks() const
{
    std::uint64_t total = 0;
    for (const PhaseCounters &c : phase)
        total += c.ticks;
    return total;
}

PhaseTotals
phaseTotalsDelta(const PhaseTotals &before, const PhaseTotals &after)
{
    PhaseTotals d;
    for (int i = 0; i < num_phases; ++i) {
        d.phase[i].ticks = satSub(after.phase[i].ticks, before.phase[i].ticks);
        d.phase[i].transitions =
            satSub(after.phase[i].transitions, before.phase[i].transitions);
        d.phase[i].cycles =
            satSub(after.phase[i].cycles, before.phase[i].cycles);
        d.phase[i].instructions = satSub(after.phase[i].instructions,
                                         before.phase[i].instructions);
        d.phase[i].llc_loads =
            satSub(after.phase[i].llc_loads, before.phase[i].llc_loads);
        d.phase[i].llc_misses =
            satSub(after.phase[i].llc_misses, before.phase[i].llc_misses);
        d.phase[i].branch_misses = satSub(after.phase[i].branch_misses,
                                          before.phase[i].branch_misses);
        d.phase[i].task_clock_ns = satSub(after.phase[i].task_clock_ns,
                                          before.phase[i].task_clock_ns);
    }
    return d;
}

bool
profActive()
{
    return prof_active.load(std::memory_order_relaxed);
}

ProfMode
profMode()
{
    return prof_mode;
}

bool
profHwFellBack()
{
    return hw_fell_back;
}

void
PhaseScope::enter(Phase p)
{
    ThreadProf &t = tls;
    if (t.depth >= max_stack_depth)
        return; // keep charging the parent; dtor stays paired via entered_
    maybeOpenGroup(t);
    settle(t, profFastTick());
    t.stack[t.depth++] = static_cast<std::uint8_t>(p);
    if (t.depth <= max_path_frames)
        t.path = (t.path << 8) | (static_cast<std::uint64_t>(p) + 1);
    t.totals.phase[static_cast<int>(p)].transitions++;
    entered_ = true;
}

void
PhaseScope::leave()
{
    ThreadProf &t = tls;
    settle(t, profFastTick());
    t.depth--;
    if (t.depth < max_path_frames)
        t.path >>= 8;
}

void
initPhaseProfiler()
{
    if (init_done)
        return;
    init_done = true;

    ProfMode mode = parseProfMode(std::getenv("MNM_PROF"));
    const char *folded = std::getenv("MNM_PROF_FOLDED");
    if (folded && *folded) {
        if (mode == ProfMode::Off)
            fatal("MNM_PROF_FOLDED is set but MNM_PROF is off; set "
                  "MNM_PROF=time or MNM_PROF=hw to collect stacks");
        folded_file = folded;
    }
    if (mode == ProfMode::Hw && !perfCountersAvailable()) {
        warn("MNM_PROF=hw but perf_event_open is unavailable here "
             "(container seccomp or perf_event_paranoid); degrading to "
             "MNM_PROF=time -- the manifest records prof.hw_fallback=1");
        hw_fell_back = true;
        mode = ProfMode::Time;
    }
    prof_mode = mode;
    prof_active.store(mode != ProfMode::Off, std::memory_order_relaxed);
}

PhaseTotals
threadPhaseTotals()
{
    if (!profActive())
        return PhaseTotals{};
    ThreadProf &t = tls;
    settle(t, profFastTick());
    return t.totals;
}

void
flushThreadProf()
{
    if (!profActive())
        return;
    ThreadProf &t = tls;
    settle(t, profFastTick());

    GlobalProf &g = globalProf();
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        for (int i = 0; i < num_phases; ++i) {
            g.totals.phase[i].ticks += t.totals.phase[i].ticks;
            g.totals.phase[i].transitions += t.totals.phase[i].transitions;
            g.totals.phase[i].cycles += t.totals.phase[i].cycles;
            g.totals.phase[i].instructions +=
                t.totals.phase[i].instructions;
            g.totals.phase[i].llc_loads += t.totals.phase[i].llc_loads;
            g.totals.phase[i].llc_misses += t.totals.phase[i].llc_misses;
            g.totals.phase[i].branch_misses +=
                t.totals.phase[i].branch_misses;
            g.totals.phase[i].task_clock_ns +=
                t.totals.phase[i].task_clock_ns;
        }
        for (const FoldedSlot &slot : t.folded)
            if (slot.key != 0)
                g.folded[slot.key] += slot.ticks;
        g.folded_drops += t.folded_drops;
    }

    t.totals = PhaseTotals{};
    for (FoldedSlot &slot : t.folded)
        slot = FoldedSlot{};
    t.folded_drops = 0;
    closeThreadGroup(t);
}

void
foldPhaseTotals(StatsRegistry &reg, const PhaseTotals &totals,
                const std::string &prefix)
{
    const std::uint64_t total = totals.totalTicks();
    for (int i = 0; i < num_phases; ++i) {
        const PhaseCounters &c = totals.phase[i];
        if (c.ticks == 0 && c.transitions == 0)
            continue;
        const std::string base =
            prefix + "." + phaseName(static_cast<Phase>(i)) + ".";
        // "cycles" is always present: the HW counter when measured,
        // the tick count (TSC/CNTVCT) as its stand-in otherwise.
        const std::uint64_t cycles =
            prof_mode == ProfMode::Hw ? c.cycles : c.ticks;
        reg.setGauge(base + "cycles", static_cast<double>(cycles));
        reg.setGauge(base + "instr", static_cast<double>(c.instructions));
        reg.setGauge(base + "llc_miss",
                     static_cast<double>(c.llc_misses));
        reg.setGauge(base + "share",
                     total ? static_cast<double>(c.ticks) /
                                 static_cast<double>(total)
                           : 0.0);
        reg.setGauge(base + "ticks", static_cast<double>(c.ticks));
        reg.setGauge(base + "transitions",
                     static_cast<double>(c.transitions));
        if (prof_mode == ProfMode::Hw) {
            reg.setGauge(base + "llc_loads",
                         static_cast<double>(c.llc_loads));
            reg.setGauge(base + "branch_miss",
                         static_cast<double>(c.branch_misses));
            reg.setGauge(base + "task_clock_ms",
                         static_cast<double>(c.task_clock_ns) / 1e6);
        }
    }
}

void
foldProfGlobal(StatsRegistry &reg)
{
    if (!profActive())
        return;
    flushThreadProf();
    foldPhaseTotals(reg, globalPhaseTotals(), "prof");
    reg.setGauge("prof.mode", prof_mode == ProfMode::Hw ? 2.0 : 1.0);
    reg.setGauge("prof.hw_fallback", hw_fell_back ? 1.0 : 0.0);
    reg.setGauge("prof.tick_hz", profTickHz());
}

void
writeProfFoldedFile()
{
    if (!profActive() || folded_file.empty())
        return;
    flushThreadProf();
    std::ofstream out(folded_file, std::ios::out | std::ios::trunc);
    if (!out) {
        warn("MNM_PROF_FOLDED: cannot open '%s' for writing",
             folded_file.c_str());
        return;
    }
    writeFoldedStacks(out);
}

PhaseTotals
globalPhaseTotals()
{
    GlobalProf &g = globalProf();
    std::lock_guard<std::mutex> lock(g.mutex);
    return g.totals;
}

std::size_t
writeFoldedStacks(std::ostream &out)
{
    GlobalProf &g = globalProf();
    std::lock_guard<std::mutex> lock(g.mutex);
    std::size_t lines = 0;
    for (const auto &[key, ticks] : g.folded) {
        std::uint8_t frames[max_path_frames];
        int nframes = 0;
        for (std::uint64_t k = key; k != 0; k >>= 8)
            frames[nframes++] = static_cast<std::uint8_t>(k & 0xff);
        out << "mnm";
        for (int i = nframes - 1; i >= 0; --i)
            out << ';' << phaseName(static_cast<Phase>(frames[i] - 1));
        out << ' ' << ticks << '\n';
        ++lines;
    }
    if (g.folded_drops != 0) {
        out << "mnm;[truncated] " << g.folded_drops << '\n';
        ++lines;
    }
    return lines;
}

const std::string &
profFoldedPath()
{
    return folded_file;
}

void
setProfModeForTest(ProfMode mode, const std::string &folded_path)
{
    init_done = true; // the environment no longer applies
    prof_mode = mode;
    hw_fell_back = false;
    folded_file = folded_path;
    prof_active.store(mode != ProfMode::Off, std::memory_order_relaxed);
}

void
resetPhaseProfilerForTest()
{
    prof_active.store(false, std::memory_order_relaxed);
    prof_mode = ProfMode::Off;
    hw_fell_back = false;
    init_done = false;
    folded_file.clear();

    ThreadProf &t = tls;
    closeThreadGroup(t);
    t.totals = PhaseTotals{};
    t.depth = 0;
    t.path = 0;
    t.last_tick = 0;
    for (FoldedSlot &slot : t.folded)
        slot = FoldedSlot{};
    t.folded_drops = 0;

    GlobalProf &g = globalProf();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.totals = PhaseTotals{};
    g.folded.clear();
    g.folded_drops = 0;
}

} // namespace mnm
