#include "obs/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace mnm
{

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : out_(out), pretty_(pretty)
{
}

JsonWriter::~JsonWriter()
{
    MNM_ASSERT(stack_.empty(), "JsonWriter destroyed with open scopes");
}

std::string
JsonWriter::quoted(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    out_.put('\n');
    for (std::size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::separate(bool for_key)
{
    if (stack_.empty()) {
        MNM_ASSERT(!root_written_, "second root value in one document");
        MNM_ASSERT(!for_key, "key at document root");
        return;
    }
    auto &[scope, has_members] = stack_.back();
    if (scope == Scope::Object) {
        if (for_key) {
            MNM_ASSERT(!key_pending_, "two keys in a row");
            if (has_members)
                out_.put(',');
            has_members = true;
            newlineIndent();
        } else {
            MNM_ASSERT(key_pending_, "value without a key in an object");
            key_pending_ = false;
        }
    } else {
        MNM_ASSERT(!for_key, "key inside an array");
        if (has_members)
            out_.put(',');
        has_members = true;
        newlineIndent();
    }
}

void
JsonWriter::beginObject()
{
    separate(false);
    out_.put('{');
    stack_.emplace_back(Scope::Object, false);
}

void
JsonWriter::endObject()
{
    MNM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Object,
               "endObject without matching beginObject");
    MNM_ASSERT(!key_pending_, "dangling key at endObject");
    bool had_members = stack_.back().second;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    out_.put('}');
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::beginArray()
{
    separate(false);
    out_.put('[');
    stack_.emplace_back(Scope::Array, false);
}

void
JsonWriter::endArray()
{
    MNM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Array,
               "endArray without matching beginArray");
    bool had_members = stack_.back().second;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    out_.put(']');
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::key(std::string_view name)
{
    MNM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Object,
               "key outside an object");
    separate(true);
    out_ << quoted(name) << (pretty_ ? ": " : ":");
    key_pending_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    separate(false);
    out_ << quoted(text);
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(std::uint64_t number)
{
    separate(false);
    out_ << number;
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(std::int64_t number)
{
    separate(false);
    out_ << number;
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(double number)
{
    separate(false);
    if (!std::isfinite(number)) {
        out_ << "null";
    } else {
        // Shortest representation that round-trips: deterministic and
        // readable ("0.1", not "0.10000000000000001").
        char buf[32];
        auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), number);
        MNM_ASSERT(ec == std::errc(), "double serialization failed");
        out_.write(buf, end - buf);
    }
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(bool flag)
{
    separate(false);
    out_ << (flag ? "true" : "false");
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::valueNull()
{
    separate(false);
    out_ << "null";
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::rawValue(std::string_view fragment)
{
    separate(false);
    out_ << fragment;
    if (stack_.empty())
        root_written_ = true;
}

} // namespace mnm
