#include "obs/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace mnm
{

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : out_(out), pretty_(pretty)
{
}

JsonWriter::~JsonWriter()
{
    MNM_ASSERT(stack_.empty(), "JsonWriter destroyed with open scopes");
}

std::string
JsonWriter::quoted(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    out_.put('\n');
    for (std::size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::separate(bool for_key)
{
    if (stack_.empty()) {
        MNM_ASSERT(!root_written_, "second root value in one document");
        MNM_ASSERT(!for_key, "key at document root");
        return;
    }
    auto &[scope, has_members] = stack_.back();
    if (scope == Scope::Object) {
        if (for_key) {
            MNM_ASSERT(!key_pending_, "two keys in a row");
            if (has_members)
                out_.put(',');
            has_members = true;
            newlineIndent();
        } else {
            MNM_ASSERT(key_pending_, "value without a key in an object");
            key_pending_ = false;
        }
    } else {
        MNM_ASSERT(!for_key, "key inside an array");
        if (has_members)
            out_.put(',');
        has_members = true;
        newlineIndent();
    }
}

void
JsonWriter::beginObject()
{
    separate(false);
    out_.put('{');
    stack_.emplace_back(Scope::Object, false);
}

void
JsonWriter::endObject()
{
    MNM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Object,
               "endObject without matching beginObject");
    MNM_ASSERT(!key_pending_, "dangling key at endObject");
    bool had_members = stack_.back().second;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    out_.put('}');
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::beginArray()
{
    separate(false);
    out_.put('[');
    stack_.emplace_back(Scope::Array, false);
}

void
JsonWriter::endArray()
{
    MNM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Array,
               "endArray without matching beginArray");
    bool had_members = stack_.back().second;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    out_.put(']');
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::key(std::string_view name)
{
    MNM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Object,
               "key outside an object");
    separate(true);
    out_ << quoted(name) << (pretty_ ? ": " : ":");
    key_pending_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    separate(false);
    out_ << quoted(text);
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(std::uint64_t number)
{
    separate(false);
    out_ << number;
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(std::int64_t number)
{
    separate(false);
    out_ << number;
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(double number)
{
    separate(false);
    if (!std::isfinite(number)) {
        out_ << "null";
    } else {
        // Shortest representation that round-trips: deterministic and
        // readable ("0.1", not "0.10000000000000001").
        char buf[32];
        auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), number);
        MNM_ASSERT(ec == std::errc(), "double serialization failed");
        out_.write(buf, end - buf);
    }
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::value(bool flag)
{
    separate(false);
    out_ << (flag ? "true" : "false");
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::valueNull()
{
    separate(false);
    out_ << "null";
    if (stack_.empty())
        root_written_ = true;
}

void
JsonWriter::rawValue(std::string_view fragment)
{
    separate(false);
    out_ << fragment;
    if (stack_.empty())
        root_written_ = true;
}

// --------------------------------------------------------- JsonValue

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(name);
    return it == object_.end() ? nullptr : &it->second;
}

std::optional<std::uint64_t>
JsonValue::getU64(const std::string &name) const
{
    const JsonValue *v = find(name);
    if (!v || !v->isInteger())
        return std::nullopt;
    return v->asU64();
}

std::optional<double>
JsonValue::getDouble(const std::string &name) const
{
    const JsonValue *v = find(name);
    if (!v || !v->isNumber())
        return std::nullopt;
    return v->asDouble();
}

std::optional<std::string>
JsonValue::getString(const std::string &name) const
{
    const JsonValue *v = find(name);
    if (!v || !v->isString())
        return std::nullopt;
    return v->asString();
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool flag)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.flag_ = flag;
    return v;
}

JsonValue
JsonValue::makeNumber(double number)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = number;
    return v;
}

JsonValue
JsonValue::makeInteger(std::uint64_t value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.integer_ = true;
    v.u64_ = value;
    v.number_ = static_cast<double>(value);
    return v;
}

JsonValue
JsonValue::makeString(std::string text)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(text);
    return v;
}

JsonValue
JsonValue::makeArray(Array items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(Object members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

// ------------------------------------------------- recursive descent

namespace
{

/** Non-throwing recursive-descent JSON parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    parseDocument()
    {
        std::optional<JsonValue> value = parseValue();
        if (!value)
            return std::nullopt;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing content after the JSON document");
        return value;
    }

    const std::string &error() const { return error_; }

  private:
    std::optional<JsonValue>
    fail(const std::string &message)
    {
        if (error_.empty()) {
            error_ = message + " at offset " + std::to_string(pos_);
        }
        return std::nullopt;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal)
            return false;
        pos_ += literal.size();
        return true;
    }

    std::optional<JsonValue>
    parseValue()
    {
        if (++depth_ > max_depth)
            return fail("nesting too deep");
        struct DepthGuard
        {
            std::size_t &d;
            ~DepthGuard() { --d; }
        } guard{depth_};

        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
            return consumeLiteral("true")
                       ? std::optional<JsonValue>(JsonValue::makeBool(true))
                       : fail("bad literal");
          case 'f':
            return consumeLiteral("false")
                       ? std::optional<JsonValue>(
                             JsonValue::makeBool(false))
                       : fail("bad literal");
          case 'n':
            return consumeLiteral("null")
                       ? std::optional<JsonValue>(JsonValue::makeNull())
                       : fail("bad literal");
          default: return parseNumber();
        }
    }

    std::optional<JsonValue>
    parseObject()
    {
        ++pos_; // '{'
        JsonValue::Object members;
        skipWhitespace();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        for (;;) {
            skipWhitespace();
            std::optional<JsonValue> key = parseString();
            if (!key)
                return std::nullopt;
            skipWhitespace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            std::optional<JsonValue> value = parseValue();
            if (!value)
                return std::nullopt;
            members.insert_or_assign(key->asString(), std::move(*value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            return fail("expected ',' or '}' in object");
        }
    }

    std::optional<JsonValue>
    parseArray()
    {
        ++pos_; // '['
        JsonValue::Array items;
        skipWhitespace();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        for (;;) {
            std::optional<JsonValue> value = parseValue();
            if (!value)
                return std::nullopt;
            items.push_back(std::move(*value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            return fail("expected ',' or ']' in array");
        }
    }

    std::optional<JsonValue>
    parseString()
    {
        if (!consume('"'))
            return fail("expected '\"'");
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return JsonValue::makeString(std::move(out));
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return fail("bad \\u escape");
                    }
                }
                // The writer only emits \u00xx control escapes; decode
                // the Latin-1 range and pass anything wider through as
                // UTF-8 (2-byte form covers every \uXXXX < 0x800 we
                // could meet from our own writer).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    std::optional<JsonValue>
    parseNumber()
    {
        std::size_t start = pos_;
        bool negative = consume('-');
        bool integral = true;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
        }
        if (pos_ == start + (negative ? 1u : 0u))
            return fail("malformed number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
        }
        std::string token(text_.substr(start, pos_ - start));
        if (integral && !negative) {
            std::uint64_t u = 0;
            auto [ptr, ec] = std::from_chars(
                token.data(), token.data() + token.size(), u);
            if (ec == std::errc() && ptr == token.data() + token.size())
                return JsonValue::makeInteger(u);
        }
        double d = 0.0;
        auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), d);
        if (ec != std::errc() || ptr != token.data() + token.size())
            return fail("malformed number");
        return JsonValue::makeNumber(d);
    }

    static constexpr std::size_t max_depth = 64;

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
    std::string error_;
};

} // anonymous namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    JsonParser parser(text);
    std::optional<JsonValue> value = parser.parseDocument();
    if (!value && error)
        *error = parser.error();
    return value;
}

} // namespace mnm
