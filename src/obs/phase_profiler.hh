/**
 * @file
 * Scoped per-phase attribution for the simulator hot path.
 *
 * The perf CI (PR 4/5) gates whole-cell instr/sec with no idea *where*
 * a regression landed. This layer answers that: PhaseScope objects
 * bracket the stages of MemorySimulator::run (batch generation,
 * L1-peek, SoA verdict kernel, update-feed walks, cold accounting) and
 * the profiler accumulates exclusive (self) time per phase -- a nested
 * scope's time is charged to the inner phase only, so "verdict" and
 * "update_feed" are directly comparable even though both run under the
 * hierarchy walk.
 *
 * Design constraints, in order:
 *
 *  1. Free when off. MNM_PROF unset/off leaves every PhaseScope as one
 *     relaxed atomic load and a predictable branch; stdout stays
 *     byte-identical (profiling output only ever goes to manifests,
 *     trace files, or stderr).
 *  2. No allocation or atomics on the hot path when on. All state is
 *     thread_local and fixed-size: an enum-indexed accumulator array, a
 *     16-deep phase stack, and a small open-addressed table of
 *     collapsed stack paths. The only synchronization is a mutex taken
 *     when a thread *flushes* its totals into the global aggregate
 *     (once per worker, not per scope).
 *  3. Honest counters. In hw mode every phase transition reads the
 *     thread's PerfCounterGroup, so cycles/instructions/LLC-misses are
 *     measured, not modeled. That is a syscall per transition -- the
 *     mode is for attribution runs, not for the numbers the ratchet
 *     gates.
 *
 * Attribution flow: workers snapshot threadPhaseTotals() around each
 * sweep cell (delta = that cell's profile), then flushThreadProf()
 * before exiting; the manifest writer calls foldProfGlobal() which
 * flushes the calling thread, folds the global aggregate into
 * metrics.prof.*, and writes the MNM_PROF_FOLDED collapsed-stack file
 * (one "mnm;run;...;phase ticks" line per distinct stack, ready for
 * flamegraph.pl).
 */

#ifndef MNM_OBS_PHASE_PROFILER_HH
#define MNM_OBS_PHASE_PROFILER_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/perf_counters.hh"

namespace mnm
{

class StatsRegistry;

/** The instrumented stages. Values are stable manifest/export names --
 *  append only. */
enum class Phase : std::uint8_t
{
    Run,        //!< MemorySimulator::run root (self = loop overhead)
    BatchGen,   //!< workload batch generation + deadline polling
    L1Peek,     //!< stage-2a L1 hit peek loop (self = peeks + control)
    Verdict,    //!< MNM verdict kernels (computeCandidates/computeBypass)
    HierWalk,   //!< cache hierarchy walk per access (performAccess)
    UpdateFeed, //!< MnmUnit on{Placement,Replacement,Flush} walks
    Cold,       //!< post-run cold accounting (energy fold, drains)
    FeedDrain,  //!< batched event-ring drain through update kernels
    GenOverlap, //!< MNM_OVERLAP: wait/handoff for producer-built batches
    LaneDescent, //!< stage-2a queued-lane L2+ descent (walk + accounting)
};

inline constexpr int num_phases = 10;

/** Stable manifest segment for @p phase ("verdict", "update_feed", ...). */
const char *phaseName(Phase phase);

/** One phase's accumulated exclusive-time counters. ticks/transitions
 *  always fill; the hardware fields only in hw mode. */
struct PhaseCounters
{
    std::uint64_t ticks = 0;       //!< profFastTick units (self time)
    std::uint64_t transitions = 0; //!< scope enters charged here
    std::uint64_t cycles = 0;      //!< hw mode: HW cycle counter delta
    std::uint64_t instructions = 0;
    std::uint64_t llc_loads = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
    std::uint64_t task_clock_ns = 0;
};

/** A full per-phase profile (one thread's, one cell's, or the global
 *  aggregate). */
struct PhaseTotals
{
    PhaseCounters phase[num_phases];

    /** Sum of ticks across phases (the share denominator). */
    std::uint64_t totalTicks() const;
};

/** Element-wise after - before (fields saturate at 0 rather than
 *  wrapping, so a snapshot pair straddling a flush degrades benignly). */
PhaseTotals phaseTotalsDelta(const PhaseTotals &before,
                             const PhaseTotals &after);

/** Is any profiling mode active? One relaxed atomic load; this is the
 *  whole cost of a PhaseScope when profiling is off. */
bool profActive();

/** The resolved process-wide mode (after hw->time fallback). */
ProfMode profMode();

/** True when MNM_PROF=hw was requested but perf_event_open is
 *  unavailable and the profiler degraded to time mode. */
bool profHwFellBack();

/**
 * RAII phase bracket. Constructing settles the elapsed interval into
 * the previously-open phase and starts charging @p p; destruction does
 * the reverse. Nesting and reentrancy (a phase inside itself) are fine:
 * attribution always follows the innermost open scope.
 */
class PhaseScope
{
  public:
    explicit PhaseScope(Phase p)
    {
        if (profActive()) [[unlikely]]
            enter(p);
    }

    ~PhaseScope()
    {
        if (entered_) [[unlikely]]
            leave();
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    void enter(Phase p);
    void leave();
    bool entered_ = false;
};

/**
 * Parse MNM_PROF / MNM_PROF_FOLDED and arm the profiler (first call
 * only; initRunTelemetry() calls this). Fatal on malformed values and
 * on MNM_PROF_FOLDED without an active mode; warns once and degrades
 * to time mode when hw counters are unavailable.
 */
void initPhaseProfiler();

/** Snapshot the calling thread's running totals (in-flight scope time
 *  is settled first, so cell-boundary deltas are exact). */
PhaseTotals threadPhaseTotals();

/** Fold the calling thread's totals and collapsed stacks into the
 *  global aggregate and zero the thread state (idempotent; closes the
 *  thread's counter group). Each profiled thread calls this once when
 *  its work is done. */
void flushThreadProf();

/**
 * Write @p totals as gauges under "<prefix>.<phase>.{ticks,cycles,
 * instr,llc_miss,share,...}". "cycles" is the hw counter in hw mode and
 * the tick count otherwise, so consumers can always read one key.
 * Phases that never ran are omitted.
 */
void foldPhaseTotals(StatsRegistry &reg, const PhaseTotals &totals,
                     const std::string &prefix);

/**
 * The manifest-writer entry point: flush the calling thread and fold
 * the global aggregate under "prof.*" (plus prof.mode /
 * prof.hw_fallback / prof.tick_hz). No-op when profiling is off.
 */
void foldProfGlobal(StatsRegistry &reg);

/** Write the MNM_PROF_FOLDED file if configured (flushes the calling
 *  thread first). Runs with the other artifacts at process exit. */
void writeProfFoldedFile();

/** The global aggregate so far (flushed threads only). */
PhaseTotals globalPhaseTotals();

/** Stream the global collapsed stacks in flamegraph.pl format, sorted
 *  (deterministic). Returns the number of stack lines written. */
std::size_t writeFoldedStacks(std::ostream &out);

/** The MNM_PROF_FOLDED path ("" when unset). */
const std::string &profFoldedPath();

/** Test hooks: force a mode / folded path without the environment, and
 *  reset all profiler state (global aggregate, calling thread, init
 *  latch) so the next initPhaseProfiler() re-reads the environment. */
void setProfModeForTest(ProfMode mode, const std::string &folded_path = "");
void resetPhaseProfilerForTest();

} // namespace mnm

#endif // MNM_OBS_PHASE_PROFILER_HH
