/**
 * @file
 * Per-level MNM decision accounting: the confusion matrix of verdicts
 * ("miss" vs. "maybe") crossed with ground truth (the block was absent
 * vs. resident). Every headline metric of the paper is a derived
 * quantity of these cells -- coverage (Figures 10-14) is
 * predicted-miss/actual-miss over all actual misses -- so tracking the
 * raw cells makes coverage regressions and soundness near-misses
 * visible instead of folded away.
 *
 * The four cells per cache level:
 *  - predicted_miss_actual_miss: the MNM said "miss" and the block was
 *    absent; the probe was bypassed. The win the paper is about.
 *  - maybe_actual_miss: the MNM said "maybe" but the probe missed; a
 *    bypass opportunity not taken (the coverage denominator's gap).
 *  - maybe_actual_hit: the MNM said "maybe" and the probe hit; the
 *    mandatory cautious answer.
 *  - predicted_miss_actual_hit: the forbidden cell. A "miss" verdict
 *    for a resident block is a soundness violation (paper Section 3.6):
 *    acting on it would skip a hit and corrupt architectural state.
 *    The MnmUnit's oracle check counts and suppresses these; for sound
 *    configurations the cell must be zero, and the tier-1 tests assert
 *    it (see assertSound() and DESIGN.md).
 *
 * An acted-upon forbidden decision cannot even be represented: a
 * bypassed probe that claims to have hit trips an MNM_ASSERT in
 * recordAccess().
 */

#ifndef MNM_OBS_CONFUSION_HH
#define MNM_OBS_CONFUSION_HH

#include <array>
#include <cstdint>

#include "cache/hierarchy.hh"
#include "obs/registry.hh"

namespace mnm
{

/** Confusion matrix of one run's MNM decisions, per cache level. */
class DecisionMatrix
{
  public:
    static constexpr std::size_t max_levels = 16;

    /** One level's decision counts. */
    struct Cells
    {
        std::uint64_t predicted_miss_actual_miss = 0;
        std::uint64_t maybe_actual_miss = 0;
        std::uint64_t maybe_actual_hit = 0;
        /** The forbidden cell: caught-and-suppressed unsound verdicts. */
        std::uint64_t predicted_miss_actual_hit = 0;

        std::uint64_t
        decisions() const
        {
            return predicted_miss_actual_miss + maybe_actual_miss +
                   maybe_actual_hit + predicted_miss_actual_hit;
        }

        /** Actual misses = the coverage denominator at this level. */
        std::uint64_t
        actualMisses() const
        {
            return predicted_miss_actual_miss + maybe_actual_miss;
        }
    };

    /**
     * Fold one completed access into the matrix: every probed or
     * bypassed cache at level >= 2 contributes one decision (level-1
     * outcomes are never predicted, mirroring CoverageTracker). The
     * forbidden cell is not touched here -- a suppressed unsound
     * verdict leaves no trace in the AccessResult; it is reported by
     * the MnmUnit and folded in via setForbidden().
     */
    void recordAccess(const AccessResult &result);

    /** Overwrite the forbidden-cell count for @p level (cumulative
     *  totals from MnmUnit::violationsAtLevel). */
    void setForbidden(std::uint32_t level, std::uint64_t count);

    const Cells &at(std::uint32_t level) const;
    Cells totals() const;

    /** Forbidden-cell sum across levels (0 for sound configs). */
    std::uint64_t forbidden() const;

    /** Derived coverage, identical to CoverageTracker's definition. */
    double coverage() const;
    double coverageAt(std::uint32_t level) const;

    /** Cell-wise sum for cross-cell aggregation. */
    void merge(const DecisionMatrix &other);

    void reset();

    /** Overwrite one level's cells (checkpoint journal replay). */
    void setCells(std::uint32_t level, const Cells &cells);

    /**
     * Fold the non-empty levels into @p registry as counters named
     * "<prefix>.l<level>.<cell>".
     */
    void registerInto(StatsRegistry &registry,
                      const std::string &prefix) const;

    /** MNM_ASSERT that the forbidden cell is zero at every level. */
    void assertSound(const char *context) const;

  private:
    std::array<Cells, max_levels> levels_{};
};

} // namespace mnm

#endif // MNM_OBS_CONFUSION_HH
