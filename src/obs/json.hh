/**
 * @file
 * Dependency-free streaming JSON writer for the observability layer.
 *
 * Everything the obs subsystem emits (run manifests, Chrome traces,
 * registry dumps) goes through this one writer so the formatting is
 * deterministic: keys are written in caller order, integers exactly,
 * and doubles with the shortest round-trip representation
 * (std::to_chars), so two runs that compute bit-identical values
 * serialize to byte-identical JSON.
 */

#ifndef MNM_OBS_JSON_HH
#define MNM_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mnm
{

/**
 * A push-style JSON writer over an std::ostream. The caller drives the
 * structure with beginObject()/endObject(), beginArray()/endArray(),
 * key() and value(); commas, quoting, escaping and (optional 2-space)
 * indentation are handled here. Nesting is validated with MNM_ASSERT:
 * a key outside an object, a bare value where a key is required, or an
 * unbalanced end*() panics rather than emitting malformed JSON.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, bool pretty = true);

    /** All containers must be closed before the writer goes away. */
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value() or begin*() is its value. */
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(unsigned number) { value(static_cast<std::uint64_t>(number)); }
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    /** Non-finite doubles serialize as null (JSON has no NaN/Inf). */
    void value(double number);
    void value(bool flag);
    void valueNull();

    /** Emit a pre-serialized JSON fragment as one value. The caller
     *  guarantees @p fragment is itself valid JSON. */
    void rawValue(std::string_view fragment);

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** True once the root value is complete and all scopes are closed. */
    bool done() const { return root_written_ && stack_.empty(); }

    /** Escape @p text into a double-quoted JSON string literal. */
    static std::string quoted(std::string_view text);

  private:
    enum class Scope : std::uint8_t
    {
        Object,
        Array,
    };

    void separate(bool for_key);
    void newlineIndent();

    std::ostream &out_;
    bool pretty_;
    bool root_written_ = false;
    /** Open containers; .second = "this container has members". */
    std::vector<std::pair<Scope, bool>> stack_;
    bool key_pending_ = false;
};

} // namespace mnm

#endif // MNM_OBS_JSON_HH
