/**
 * @file
 * Dependency-free streaming JSON writer for the observability layer.
 *
 * Everything the obs subsystem emits (run manifests, Chrome traces,
 * registry dumps) goes through this one writer so the formatting is
 * deterministic: keys are written in caller order, integers exactly,
 * and doubles with the shortest round-trip representation
 * (std::to_chars), so two runs that compute bit-identical values
 * serialize to byte-identical JSON.
 */

#ifndef MNM_OBS_JSON_HH
#define MNM_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mnm
{

/**
 * A push-style JSON writer over an std::ostream. The caller drives the
 * structure with beginObject()/endObject(), beginArray()/endArray(),
 * key() and value(); commas, quoting, escaping and (optional 2-space)
 * indentation are handled here. Nesting is validated with MNM_ASSERT:
 * a key outside an object, a bare value where a key is required, or an
 * unbalanced end*() panics rather than emitting malformed JSON.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, bool pretty = true);

    /** All containers must be closed before the writer goes away. */
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value() or begin*() is its value. */
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(unsigned number) { value(static_cast<std::uint64_t>(number)); }
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    /** Non-finite doubles serialize as null (JSON has no NaN/Inf). */
    void value(double number);
    void value(bool flag);
    void valueNull();

    /** Emit a pre-serialized JSON fragment as one value. The caller
     *  guarantees @p fragment is itself valid JSON. */
    void rawValue(std::string_view fragment);

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** True once the root value is complete and all scopes are closed. */
    bool done() const { return root_written_ && stack_.empty(); }

    /** Escape @p text into a double-quoted JSON string literal. */
    static std::string quoted(std::string_view text);

  private:
    enum class Scope : std::uint8_t
    {
        Object,
        Array,
    };

    void separate(bool for_key);
    void newlineIndent();

    std::ostream &out_;
    bool pretty_;
    bool root_written_ = false;
    /** Open containers; .second = "this container has members". */
    std::vector<std::pair<Scope, bool>> stack_;
    bool key_pending_ = false;
};

/**
 * A parsed JSON value: the read-side counterpart of JsonWriter, used by
 * the recovery layer to replay checkpoint journals and by tests to
 * inspect manifests. Numbers keep both the double interpretation and,
 * when the text was a plain integer, the exact 64-bit value, so the
 * uint64 counters JsonWriter emits round-trip without precision loss.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Array = std::vector<JsonValue>;
    /** Ordered map: key order is irrelevant to every consumer here. */
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return flag_; }
    double asDouble() const { return number_; }
    /** Exact integer value; valid only when isInteger(). */
    std::uint64_t asU64() const { return u64_; }
    /** True for numbers written as a plain unsigned integer literal. */
    bool isInteger() const { return kind_ == Kind::Number && integer_; }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return array_; }
    const Object &asObject() const { return object_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Convenience typed getters over find(); nullopt on shape
     *  mismatch. getU64 accepts only exact integers. */
    std::optional<std::uint64_t> getU64(const std::string &name) const;
    std::optional<double> getDouble(const std::string &name) const;
    std::optional<std::string> getString(const std::string &name) const;

    /** Construction (used by the parser and by tests). */
    static JsonValue makeNull();
    static JsonValue makeBool(bool flag);
    static JsonValue makeNumber(double number);
    static JsonValue makeInteger(std::uint64_t value);
    static JsonValue makeString(std::string text);
    static JsonValue makeArray(Array items);
    static JsonValue makeObject(Object members);

  private:
    Kind kind_ = Kind::Null;
    bool flag_ = false;
    bool integer_ = false;
    double number_ = 0.0;
    std::uint64_t u64_ = 0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Parse one JSON document from @p text. Trailing whitespace is allowed;
 * any other trailing content is an error. Returns nullopt on malformed
 * input (truncated journals, partial manifest writes) with a one-line
 * description in @p error when non-null -- parsing never panics, which
 * is what lets the recovery layer treat a torn journal tail as "not yet
 * written" instead of aborting the resumed run.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace mnm

#endif // MNM_OBS_JSON_HH
