#include "util/logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

namespace mnm
{
namespace detail
{

namespace
{

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Progress: return "progress";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

/** Serializes the sink across sweep-runner worker threads. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // anonymous namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    std::FILE *stream = (level == LogLevel::Info) ? stdout : stderr;
    std::scoped_lock lock(logMutex());
    std::fprintf(stream, "%s: %s\n", levelPrefix(level), msg.c_str());
    std::fflush(stream);
}

std::string
vformat(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail
} // namespace mnm
