#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace mnm
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitMix64(x);
}

double
Rng::nextGaussian()
{
    // Box-Muller; one variate per call keeps the stream stateless.
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace mnm
