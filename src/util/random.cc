#include "util/random.hh"

#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "util/logging.hh"

namespace mnm
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Largest raw 53-bit uniform (u closest to 1). */
constexpr std::uint64_t max_m = (std::uint64_t{1} << 53) - 1;

/** Tables beyond this many steps fall back to the formula; the largest
 *  mean any workload uses (200) needs ~7.4k steps. */
constexpr std::uint64_t max_table_steps = 1u << 20;

} // anonymous namespace

std::uint64_t
GeometricTable::sampleFormula(std::uint64_t m) const
{
    // The original inverse-CDF arithmetic, kept verbatim: the table is
    // only ever a bit-exact cache of this function.
    double u = static_cast<double>(m) * (1.0 / 9007199254740992.0);
    double v = std::log1p(-u) / log1p_mp_;
    if (v < 0.0)
        v = 0.0;
    if (v > 1e12)
        v = 1e12;
    return static_cast<std::uint64_t>(v);
}

GeometricTable::GeometricTable(double mean)
{
    log1p_mp_ = std::log1p(-(1.0 / (mean + 1.0)));

    const std::uint64_t steps = sampleFormula(max_m);
    if (steps == 0 || steps > max_table_steps)
        return; // degenerate or huge: sampleFormula serves every draw

    // thresholds_[j] = smallest m with sampleFormula(m) > j, by binary
    // search over the formula itself. The formula is monotone in m (u
    // is exact in m; log1p and the divide by a negative constant are
    // monotone), so the thresholds partition [0, 2^53) exactly.
    thresholds_.resize(static_cast<std::size_t>(steps));
    std::uint64_t lo = 0;
    for (std::uint64_t j = 0; j < steps; ++j) {
        std::uint64_t hi = max_m;
        // Invariant: sampleFormula(lo-1) <= j < sampleFormula(hi).
        while (lo < hi) {
            std::uint64_t mid = lo + (hi - lo) / 2;
            if (sampleFormula(mid) > j) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        MNM_ASSERT(sampleFormula(lo) > j &&
                       (lo == 0 || sampleFormula(lo - 1) <= j),
                   "geometric threshold search lost monotonicity");
        thresholds_[static_cast<std::size_t>(j)] = lo;
    }

    // Guide: for each bucket of the top guide_bits of m, the range of
    // threshold indices that can matter. Most buckets straddle no
    // threshold and resolve in O(1).
    const std::size_t buckets = std::size_t{1} << guide_bits;
    guide_.resize(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::uint64_t first = static_cast<std::uint64_t>(b)
                                    << guide_shift;
        const std::uint64_t last =
            first + (std::uint64_t{1} << guide_shift) - 1;
        const std::uint64_t lo = static_cast<std::uint64_t>(
            std::upper_bound(thresholds_.begin(), thresholds_.end(),
                             first) -
            thresholds_.begin());
        const std::uint64_t hi = static_cast<std::uint64_t>(
            std::upper_bound(thresholds_.begin(), thresholds_.end(),
                             last) -
            thresholds_.begin());
        guide_[b] = lo | (hi << 32);
    }
    tabulated_ = true;
}

const GeometricTable *
GeometricTable::forMean(double mean)
{
    static std::mutex mu;
    static std::map<std::uint64_t, std::unique_ptr<GeometricTable>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t key = std::bit_cast<std::uint64_t>(mean);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::unique_ptr<GeometricTable>(
                                   new GeometricTable(mean)))
                 .first;
    }
    return it->second.get();
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitMix64(x);
}

double
Rng::nextGaussian()
{
    // Box-Muller; one variate per call keeps the stream stateless.
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace mnm
