#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace mnm
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitMix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    MNM_ASSERT(bound != 0, "nextBelow(0)");
    // Lemire's nearly-divisionless bounded draw; the slight modulo bias of
    // the simple fallback is irrelevant at 64-bit width.
    return next() % bound;
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    MNM_ASSERT(lo <= hi, "nextRange with lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0,1) double.
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    double u = nextDouble();
    // Inverse-CDF of geometric with success prob 1/(mean+1).
    double p = 1.0 / (mean + 1.0);
    double v = std::log1p(-u) / std::log1p(-p);
    if (v < 0.0)
        v = 0.0;
    if (v > 1e12)
        v = 1e12;
    return static_cast<std::uint64_t>(v);
}

double
Rng::nextGaussian()
{
    // Box-Muller; one variate per call keeps the stream stateless.
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace mnm
