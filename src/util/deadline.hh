/**
 * @file
 * Cooperative per-cell watchdog deadlines for long-running simulations.
 *
 * A sweep worker arms a deadline before entering a cell's simulation
 * loop (sim/runner.cc, MNM_CELL_TIMEOUT_S); the simulation's inner
 * loops call pollCellDeadline() once per simulated instruction. The
 * poll is a thread-local flag test when no deadline is armed and
 * consults the clock only every 8192 calls when one is, so the cost is
 * noise against even the fastest functional-simulation loop. When the
 * deadline has passed, the poll throws CellTimeoutError: the cell's
 * stack unwinds cleanly (simulator state is all stack-owned), the
 * worker records the failure in its slot, and the pool keeps draining
 * -- a runaway cell is contained without killing the process or
 * detaching a thread.
 */

#ifndef MNM_UTIL_DEADLINE_HH
#define MNM_UTIL_DEADLINE_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mnm
{

/** Thrown by pollCellDeadline() when the armed deadline has passed. */
class CellTimeoutError : public std::runtime_error
{
  public:
    explicit CellTimeoutError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

namespace detail
{

/** Per-thread watchdog state. */
struct DeadlineState
{
    bool armed = false;
    /** steady-clock expiry, microseconds since epoch. */
    std::uint64_t deadline_us = 0;
    /** Configured budget, for the timeout message. */
    double seconds = 0.0;
    /** Poll counter; the clock is read every 8192 polls. */
    std::uint32_t tick = 0;
};

inline DeadlineState &
deadlineState()
{
    thread_local DeadlineState state;
    return state;
}

/** Clock check; throws CellTimeoutError when the deadline has passed. */
void pollDeadlineSlow();

} // namespace detail

/** Arm the calling thread's deadline @p seconds from now (> 0). */
void armCellDeadline(double seconds);

/** Disarm the calling thread's deadline. */
void disarmCellDeadline();

/** True when the calling thread has an armed deadline. */
bool cellDeadlineArmed();

/**
 * Cheap cooperative check, called from simulation inner loops. Throws
 * CellTimeoutError once the armed deadline has passed; a no-op when no
 * deadline is armed.
 */
inline void
pollCellDeadline()
{
    detail::DeadlineState &state = detail::deadlineState();
    if (!state.armed)
        return;
    if (++state.tick & 0x1fffu)
        return;
    detail::pollDeadlineSlow();
}

/**
 * Batch-granularity check: consults the clock on every call when a
 * deadline is armed. For loops where one call already covers thousands
 * of simulated instructions (MemorySimulator's batched kernel), where
 * the per-instruction tick divider above would make expiry detection
 * needlessly lazy. One clock read per ~4096 instructions is noise.
 */
inline void
pollCellDeadlineBatch()
{
    if (detail::deadlineState().armed)
        detail::pollDeadlineSlow();
}

} // namespace mnm

#endif // MNM_UTIL_DEADLINE_HH
