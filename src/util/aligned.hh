/**
 * @file
 * Cache-line-aligned heap arrays for the batch scratch buffers.
 *
 * The SoA verdict kernels stream thousands of addresses and candidate
 * masks per InstructionBatch; aligning those buffers to 64 bytes keeps
 * every vector load/store within one line and lets the compiler emit
 * aligned moves. std::vector cannot promise that alignment for plain
 * integer element types, hence this minimal owning array.
 */

#ifndef MNM_UTIL_ALIGNED_HH
#define MNM_UTIL_ALIGNED_HH

#include <cstddef>
#include <new>

namespace mnm
{

/** A fixed-size, 64-byte-aligned, value-initialized heap array. */
template <typename T>
class AlignedArray
{
  public:
    static constexpr std::size_t alignment = 64;

    AlignedArray() = default;

    explicit AlignedArray(std::size_t n) { reset(n); }

    ~AlignedArray() { release(); }

    AlignedArray(const AlignedArray &) = delete;
    AlignedArray &operator=(const AlignedArray &) = delete;

    AlignedArray(AlignedArray &&other) noexcept
        : data_(other.data_), size_(other.size_)
    {
        other.data_ = nullptr;
        other.size_ = 0;
    }

    AlignedArray &
    operator=(AlignedArray &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = other.data_;
            size_ = other.size_;
            other.data_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }

    /** Drop the old contents and allocate @p n zero-initialized slots. */
    void
    reset(std::size_t n)
    {
        release();
        if (n == 0)
            return;
        data_ = static_cast<T *>(::operator new[](
            n * sizeof(T), std::align_val_t{alignment}));
        size_ = n;
        for (std::size_t i = 0; i < n; ++i)
            new (data_ + i) T();
    }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

  private:
    void
    release()
    {
        if (!data_)
            return;
        for (std::size_t i = size_; i > 0; --i)
            data_[i - 1].~T();
        ::operator delete[](data_, std::align_val_t{alignment});
        data_ = nullptr;
        size_ = 0;
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace mnm

#endif // MNM_UTIL_ALIGNED_HH
