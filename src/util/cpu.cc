#include "util/cpu.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#include "util/logging.hh"

namespace mnm
{

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpuHasNeon()
{
#if defined(__aarch64__)
    return true; // AdvSIMD is architecturally mandatory on AArch64
#else
    return false;
#endif
}

SimdBackend
nativeSimdBackend()
{
    if (cpuHasAvx2())
        return SimdBackend::Avx2;
    if (cpuHasNeon())
        return SimdBackend::Neon;
    return SimdBackend::ScalarSoa;
}

SimdBackend
parseSimdBackend(const char *value)
{
    if (!value || !*value || std::strcmp(value, "native") == 0)
        return nativeSimdBackend();
    if (std::strcmp(value, "off") == 0)
        return SimdBackend::Off;
    if (std::strcmp(value, "scalar-soa") == 0)
        return SimdBackend::ScalarSoa;
    if (std::strcmp(value, "avx2") == 0) {
        if (!cpuHasAvx2())
            fatal("MNM_SIMD=avx2 but this CPU has no AVX2");
        return SimdBackend::Avx2;
    }
    if (std::strcmp(value, "neon") == 0) {
        if (!cpuHasNeon())
            fatal("MNM_SIMD=neon but this machine is not AArch64");
        return SimdBackend::Neon;
    }
    fatal("unknown MNM_SIMD value '%s' (expected off, scalar-soa, "
          "native, avx2, or neon)",
          value);
}

SimdBackend
simdBackendFromEnv()
{
    static const SimdBackend backend =
        parseSimdBackend(std::getenv("MNM_SIMD"));
    return backend;
}

std::uint64_t
profFastTick()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t ticks;
    asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
    return ticks;
#else
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
            .count());
#endif
}

double
profTickHz()
{
    // Calibrated once against steady_clock. 5 ms of sleep bounds the
    // relative error around 1e-3 -- plenty for converting phase shares
    // into human-readable rates; shares themselves never need it.
    static const double hz = [] {
        using namespace std::chrono;
        const auto t0 = steady_clock::now();
        const std::uint64_t c0 = profFastTick();
        std::this_thread::sleep_for(milliseconds(5));
        const auto t1 = steady_clock::now();
        const std::uint64_t c1 = profFastTick();
        const double seconds = duration<double>(t1 - t0).count();
        return seconds > 0.0 && c1 > c0
                   ? static_cast<double>(c1 - c0) / seconds
                   : 1e9;
    }();
    return hz;
}

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Off:
        return "off";
      case SimdBackend::ScalarSoa:
        return "scalar-soa";
      case SimdBackend::Avx2:
        return "avx2";
      case SimdBackend::Neon:
        return "neon";
    }
    return "?";
}

} // namespace mnm
