#include "util/cpu.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace mnm
{

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpuHasNeon()
{
#if defined(__aarch64__)
    return true; // AdvSIMD is architecturally mandatory on AArch64
#else
    return false;
#endif
}

SimdBackend
nativeSimdBackend()
{
    if (cpuHasAvx2())
        return SimdBackend::Avx2;
    if (cpuHasNeon())
        return SimdBackend::Neon;
    return SimdBackend::ScalarSoa;
}

SimdBackend
parseSimdBackend(const char *value)
{
    if (!value || !*value || std::strcmp(value, "native") == 0)
        return nativeSimdBackend();
    if (std::strcmp(value, "off") == 0)
        return SimdBackend::Off;
    if (std::strcmp(value, "scalar-soa") == 0)
        return SimdBackend::ScalarSoa;
    if (std::strcmp(value, "avx2") == 0) {
        if (!cpuHasAvx2())
            fatal("MNM_SIMD=avx2 but this CPU has no AVX2");
        return SimdBackend::Avx2;
    }
    if (std::strcmp(value, "neon") == 0) {
        if (!cpuHasNeon())
            fatal("MNM_SIMD=neon but this machine is not AArch64");
        return SimdBackend::Neon;
    }
    fatal("unknown MNM_SIMD value '%s' (expected off, scalar-soa, "
          "native, avx2, or neon)",
          value);
}

SimdBackend
simdBackendFromEnv()
{
    static const SimdBackend backend =
        parseSimdBackend(std::getenv("MNM_SIMD"));
    return backend;
}

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Off:
        return "off";
      case SimdBackend::ScalarSoa:
        return "scalar-soa";
      case SimdBackend::Avx2:
        return "avx2";
      case SimdBackend::Neon:
        return "neon";
    }
    return "?";
}

} // namespace mnm
