/**
 * @file
 * Fundamental scalar types shared by every mnm module.
 */

#ifndef MNM_UTIL_TYPES_HH
#define MNM_UTIL_TYPES_HH

#include <cstdint>

namespace mnm
{

/** A physical/virtual byte address. The model is untranslated (flat). */
using Addr = std::uint64_t;

/** A block address: a byte address with the block offset shifted away. */
using BlockAddr = std::uint64_t;

/** Simulation time in processor cycles. */
using Cycles = std::uint64_t;

/** Energy in picojoules. All power-model outputs use this unit. */
using PicoJoules = double;

/** Delay in nanoseconds (power/delay model output). */
using Nanoseconds = double;

/** An invalid / "no address" sentinel. */
constexpr Addr invalid_addr = ~static_cast<Addr>(0);

} // namespace mnm

#endif // MNM_UTIL_TYPES_HH
