#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace mnm
{

std::string
formatDouble(double value, int precision)
{
    // Non-finite values mark cells whose simulation failed (sweep
    // graceful degradation); render the gap explicitly rather than
    // printing "nan"/"inf" that looks like a result.
    if (!std::isfinite(value))
        return "<failed>";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setHeader(const std::vector<std::string> &header)
{
    MNM_ASSERT(!header.empty(), "empty table header");
    header_ = header;
}

void
Table::addRow(const std::vector<std::string> &row)
{
    MNM_ASSERT(header_.empty() || row.size() == header_.size(),
               "row width mismatch");
    rows_.push_back(row);
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, precision));
    addRow(row);
    numeric_rows_.push_back(values);
}

void
Table::addMeanRow(const std::string &label, int precision)
{
    if (numeric_rows_.empty())
        return;
    std::size_t width = 0;
    for (const auto &r : numeric_rows_)
        width = std::max(width, r.size());
    std::vector<double> sums(width, 0.0);
    std::vector<std::uint64_t> counts(width, 0);
    for (const auto &r : numeric_rows_) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            // Failed-cell gaps (non-finite) don't poison the mean;
            // it averages the cells that completed.
            if (!std::isfinite(r[i]))
                continue;
            sums[i] += r[i];
            ++counts[i];
        }
    }
    std::vector<std::string> row;
    row.push_back(label);
    for (std::size_t i = 0; i < width; ++i) {
        double mean = counts[i] ? sums[i] / static_cast<double>(counts[i])
                                : 0.0;
        row.push_back(formatDouble(mean, precision));
    }
    addRow(row);
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << "  ";
            out << row[i];
            // Right-pad every column except the last.
            if (i + 1 < row.size()) {
                for (std::size_t p = row[i].size(); p < widths[i]; ++p)
                    out << ' ';
            }
        }
        out << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < header_.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        out << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ",";
            out << row[i];
        }
        out << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

void
Table::print(bool with_csv) const
{
    std::fputs(toString().c_str(), stdout);
    if (with_csv) {
        std::fputs("--- csv ---\n", stdout);
        std::fputs(toCsv().c_str(), stdout);
    }
    std::fputs("\n", stdout);
    std::fflush(stdout);
}

} // namespace mnm
