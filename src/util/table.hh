/**
 * @file
 * Column-aligned table printing for the benchmark harnesses. Every bench
 * binary prints paper-style rows (one per application plus an arithmetic
 * mean) through this formatter so the output is uniform and greppable,
 * and can optionally emit CSV for plotting.
 */

#ifndef MNM_UTIL_TABLE_HH
#define MNM_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace mnm
{

/** A simple column-aligned text/CSV table builder. */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the column headers (fixes the column count). */
    void setHeader(const std::vector<std::string> &header);

    /** Append a row; must match the header width. */
    void addRow(const std::vector<std::string> &row);

    /** Convenience: label + numeric cells formatted to @p precision.
     *  Non-finite cells (failed sweep cells) render as "<failed>". */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 2);

    /**
     * Append an arithmetic-mean row over all numeric rows added through the
     * numeric addRow overload. Non-finite (failed) cells are excluded
     * from the mean rather than poisoning it.
     */
    void addMeanRow(const std::string &label = "Arith. Mean",
                    int precision = 2);

    /** Render as an aligned plain-text table. */
    std::string toString() const;

    /** Render as CSV (header + rows). */
    std::string toCsv() const;

    /** Print toString() to stdout (plus CSV when @p with_csv). */
    void print(bool with_csv = false) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::vector<double>> numeric_rows_;
};

/** Format @p value with @p precision decimal places; non-finite
 *  values render as the "<failed>" gap marker. */
std::string formatDouble(double value, int precision);

} // namespace mnm

#endif // MNM_UTIL_TABLE_HH
