#include "util/deadline.hh"

#include <chrono>

#include "util/logging.hh"

namespace mnm
{

namespace
{

std::uint64_t
steadyNowUs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now().time_since_epoch())
            .count());
}

} // anonymous namespace

void
armCellDeadline(double seconds)
{
    MNM_ASSERT(seconds > 0.0, "cell deadline must be positive");
    detail::DeadlineState &state = detail::deadlineState();
    state.armed = true;
    state.seconds = seconds;
    state.deadline_us =
        steadyNowUs() + static_cast<std::uint64_t>(seconds * 1e6);
    state.tick = 0;
}

void
disarmCellDeadline()
{
    detail::deadlineState().armed = false;
}

bool
cellDeadlineArmed()
{
    return detail::deadlineState().armed;
}

namespace detail
{

void
pollDeadlineSlow()
{
    DeadlineState &state = deadlineState();
    if (steadyNowUs() < state.deadline_us)
        return;
    state.armed = false; // one throw per armed deadline
    throw CellTimeoutError(
        "cell exceeded its watchdog timeout (MNM_CELL_TIMEOUT_S=" +
        std::to_string(state.seconds) + ")");
}

} // namespace detail

} // namespace mnm
