/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (workload generators, random
 * replacement, property tests) draws from an explicitly-seeded Rng so that
 * runs are exactly reproducible. The generator is xoshiro256**, which is
 * fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef MNM_UTIL_RANDOM_HH
#define MNM_UTIL_RANDOM_HH

#include <cstdint>

namespace mnm
{

/** A deterministic xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound must be nonzero). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Draw from a (clamped) geometric distribution with mean ~@p mean.
     * Used for dependency distances and region dwell times.
     */
    std::uint64_t nextGeometric(double mean);

    /** Standard-normal variate (Box-Muller). */
    double nextGaussian();

    /** Split off an independent stream (seeded from this one). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace mnm

#endif // MNM_UTIL_RANDOM_HH
