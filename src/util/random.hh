/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (workload generators, random
 * replacement, property tests) draws from an explicitly-seeded Rng so that
 * runs are exactly reproducible. The generator is xoshiro256**, which is
 * fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef MNM_UTIL_RANDOM_HH
#define MNM_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/logging.hh"

namespace mnm
{

/** A deterministic xoshiro256** pseudo-random generator.
 *
 *  The draw functions are inline: workload generation sits on the
 *  simulator's hot path and draws several values per synthesized
 *  instruction, so out-of-line calls here are measurable against the
 *  whole kernel. Inlining changes no arithmetic -- streams stay exactly
 *  reproducible.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) (bound must be nonzero). */
    std::uint64_t nextBelow(std::uint64_t bound)
    {
        MNM_ASSERT(bound != 0, "nextBelow(0)");
        // Lemire's nearly-divisionless bounded draw; the slight modulo
        // bias of the simple fallback is irrelevant at 64-bit width.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        MNM_ASSERT(lo <= hi, "nextRange with lo > hi");
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high bits -> [0,1) double.
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p) { return nextDouble() < p; }

    /**
     * Draw from a (clamped) geometric distribution with mean ~@p mean.
     * Used for dependency distances and region dwell times.
     */
    std::uint64_t nextGeometric(double mean)
    {
        if (mean <= 0.0)
            return 0;
        double u = nextDouble();
        // Inverse-CDF of geometric with success prob 1/(mean+1). The
        // denominator depends only on the mean, which is constant per
        // workload phase; one cached log1p replaces millions.
        double p = 1.0 / (mean + 1.0);
        if (mean != geo_mean_) {
            geo_mean_ = mean;
            geo_log1p_ = std::log1p(-p);
        }
        double v = std::log1p(-u) / geo_log1p_;
        if (v < 0.0)
            v = 0.0;
        if (v > 1e12)
            v = 1e12;
        return static_cast<std::uint64_t>(v);
    }

    /** Standard-normal variate (Box-Muller). */
    double nextGaussian();

    /** Split off an independent stream (seeded from this one). */
    Rng split();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    /** nextGeometric()'s memoized log1p(-1/(mean+1)) for this mean.
     *  NaN compares unequal to everything, forcing the first fill. */
    double geo_mean_ = std::numeric_limits<double>::quiet_NaN();
    double geo_log1p_ = 0.0;
};

} // namespace mnm

#endif // MNM_UTIL_RANDOM_HH
