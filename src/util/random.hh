/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (workload generators, random
 * replacement, property tests) draws from an explicitly-seeded Rng so that
 * runs are exactly reproducible. The generator is xoshiro256**, which is
 * fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef MNM_UTIL_RANDOM_HH
#define MNM_UTIL_RANDOM_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.hh"

namespace mnm
{

/**
 * Precomputed inverse-CDF table for Rng::nextGeometric at one mean.
 *
 * The geometric draw used to evaluate log1p(-u) / log1p(-p) per call --
 * a libm call plus an FP divide on the batch pipeline's hottest edge
 * (every synthesized instruction draws one or two dependence
 * distances). Since u is always (next() >> 11) * 2^-53, the draw is a
 * pure function of the 53-bit integer m = next() >> 11, and that
 * function is a monotone step function: tabulating the step boundaries
 * once per mean turns every draw into a guide-table lookup.
 *
 * The boundaries are found by binary search over the ORIGINAL
 * floating-point formula, so the table reproduces it bit-for-bit --
 * a property random_test checks against the formula directly. Means
 * whose tables would be unreasonably large (beyond any mean the
 * workloads use) fall back to the formula.
 */
class GeometricTable
{
  public:
    /** Shared immortal table for @p mean (> 0), built on first use. */
    static const GeometricTable *forMean(double mean);

    /** The draw for raw 53-bit uniform @p m; bit-identical to the
     *  log1p formula this table was built from. */
    std::uint64_t
    sample(std::uint64_t m) const
    {
        if (!tabulated_)
            return sampleFormula(m);
        // lo and hi are packed into one word so the common single-step
        // bucket resolves with one load.
        const std::uint64_t g =
            guide_[static_cast<std::uint32_t>(m >> guide_shift)];
        const std::uint32_t lo = static_cast<std::uint32_t>(g);
        const std::uint32_t hi = static_cast<std::uint32_t>(g >> 32);
        if (lo == hi)
            return lo;
        const std::uint64_t *t = thresholds_.data();
        return static_cast<std::uint64_t>(
            std::upper_bound(t + lo, t + hi, m) - t);
    }

    /** The original formula (the table's reference semantics). */
    std::uint64_t sampleFormula(std::uint64_t m) const;

  private:
    explicit GeometricTable(double mean);

    static constexpr unsigned guide_bits = 12;
    static constexpr unsigned guide_shift = 53 - guide_bits;

    double log1p_mp_ = 0.0; //!< log1p(-1/(mean+1))
    bool tabulated_ = false;
    /** thresholds_[j]: smallest m whose draw exceeds j. */
    std::vector<std::uint64_t> thresholds_;
    /** Per-bucket draw range over the top guide_bits of m:
     *  lo in the low word, hi in the high word. */
    std::vector<std::uint64_t> guide_;
};

/** A deterministic xoshiro256** pseudo-random generator.
 *
 *  The draw functions are inline: workload generation sits on the
 *  simulator's hot path and draws several values per synthesized
 *  instruction, so out-of-line calls here are measurable against the
 *  whole kernel. Inlining changes no arithmetic -- streams stay exactly
 *  reproducible.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) (bound must be nonzero). */
    std::uint64_t nextBelow(std::uint64_t bound)
    {
        MNM_ASSERT(bound != 0, "nextBelow(0)");
        // Lemire's nearly-divisionless bounded draw; the slight modulo
        // bias of the simple fallback is irrelevant at 64-bit width.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        MNM_ASSERT(lo <= hi, "nextRange with lo > hi");
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high bits -> [0,1) double.
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p) { return nextDouble() < p; }

    /**
     * Integer threshold t with (next() >> 11) < t ⟺ nextBool(p),
     * for hoisting the int-to-double conversion and double compare out
     * of per-draw hot loops. nextDouble() is m * 2^-53 with m < 2^53
     * exact, so the real comparison m * 2^-53 < p is m < p * 2^53,
     * i.e. m < ceil(p * 2^53) over the integers (exact: scaling by a
     * power of two loses no mantissa bits).
     */
    static std::uint64_t boolThreshold(double p)
    {
        if (p <= 0.0)
            return 0;
        if (p >= 1.0)
            return std::uint64_t{1} << 53;
        return static_cast<std::uint64_t>(
            std::ceil(p * 9007199254740992.0));
    }

    /** The draw half of boolThreshold: same stream as nextBool(p). */
    bool nextBoolFast(std::uint64_t threshold)
    {
        return (next() >> 11) < threshold;
    }

    /**
     * Draw from a (clamped) geometric distribution with mean ~@p mean.
     * Used for dependency distances and region dwell times. Evaluated
     * through the shared GeometricTable for the mean, which reproduces
     * the inverse-CDF formula bit-for-bit without its per-draw log1p.
     */
    std::uint64_t nextGeometric(double mean)
    {
        if (mean <= 0.0)
            return 0;
        std::uint64_t m = next() >> 11;
        if (mean != geo_mean_) {
            geo_mean_ = mean;
            geo_table_ = GeometricTable::forMean(mean);
        }
        return geo_table_->sample(m);
    }

    /** Standard-normal variate (Box-Muller). */
    double nextGaussian();

    /** Split off an independent stream (seeded from this one). */
    Rng split();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    /** nextGeometric()'s memoized table binding for the current mean.
     *  NaN compares unequal to everything, forcing the first fill. */
    double geo_mean_ = std::numeric_limits<double>::quiet_NaN();
    const GeometricTable *geo_table_ = nullptr;
};

} // namespace mnm

#endif // MNM_UTIL_RANDOM_HH
