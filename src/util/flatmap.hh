/**
 * @file
 * Open-addressing hash map from 64-bit keys to small values.
 *
 * The CMNM's block -> placement-register attachment sits on the fill
 * path: one insert per placement, one find+erase per replacement.
 * std::unordered_map pays a node allocation per insert and a pointer
 * chase per probe there; this flat table keeps keys, values, and slot
 * states in three parallel arrays (linear probing, tombstones on
 * erase, doubling growth), so the common probe touches one cache line
 * of keys. Semantics match the map operations the filters use:
 * find/insert/erase/clear with exact keys -- no iteration order is
 * exposed at all.
 */

#ifndef MNM_UTIL_FLATMAP_HH
#define MNM_UTIL_FLATMAP_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace mnm
{

template <typename V>
class FlatMap64
{
  public:
    FlatMap64() { rehash(initial_slots); }

    /** Pointer to the value for @p key, or nullptr when absent. */
    V *
    find(std::uint64_t key)
    {
        std::size_t i = slotOf(key);
        while (true) {
            if (state_[i] == Slot::Empty)
                return nullptr;
            if (state_[i] == Slot::Full && keys_[i] == key)
                return &vals_[i];
            i = (i + 1) & mask_;
        }
    }

    /**
     * Value slot for @p key, inserting a default-constructed value if
     * absent. @p fresh reports whether the insert happened (the
     * unordered_map::emplace contract the CMNM's anomaly accounting
     * relies on).
     */
    V &
    insert(std::uint64_t key, bool &fresh)
    {
        if ((used_ + 1) * 10 >= (mask_ + 1) * 7)
            rehash((mask_ + 1) * 2);
        std::size_t i = slotOf(key);
        std::size_t grave = invalid_slot;
        while (true) {
            if (state_[i] == Slot::Empty) {
                if (grave != invalid_slot)
                    i = grave;  // reuse the first tombstone crossed
                else
                    ++used_;
                state_[i] = Slot::Full;
                keys_[i] = key;
                vals_[i] = V();
                ++size_;
                fresh = true;
                return vals_[i];
            }
            if (state_[i] == Slot::Tomb) {
                if (grave == invalid_slot)
                    grave = i;
            } else if (keys_[i] == key) {
                fresh = false;
                return vals_[i];
            }
            i = (i + 1) & mask_;
        }
    }

    /** Drop @p key. @return true when it was present. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = slotOf(key);
        while (true) {
            if (state_[i] == Slot::Empty)
                return false;
            if (state_[i] == Slot::Full && keys_[i] == key) {
                state_[i] = Slot::Tomb;
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
    }

    void
    clear()
    {
        std::fill(state_.begin(), state_.end(),
                  static_cast<std::uint8_t>(Slot::Empty));
        size_ = 0;
        used_ = 0;
    }

    std::size_t size() const { return size_; }

  private:
    enum Slot : std::uint8_t
    {
        Empty = 0,
        Full = 1,
        Tomb = 2,
    };

    static constexpr std::size_t initial_slots = 1024;
    static constexpr std::size_t invalid_slot = ~std::size_t{0};

    std::size_t
    slotOf(std::uint64_t key) const
    {
        // Fibonacci multiply-shift; the table is always a power of two.
        return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ull) &
               mask_;
    }

    void
    rehash(std::size_t new_slots)
    {
        MNM_ASSERT((new_slots & (new_slots - 1)) == 0,
                   "flat map size must be a power of two");
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        std::vector<std::uint8_t> old_state = std::move(state_);
        keys_.assign(new_slots, 0);
        vals_.assign(new_slots, V());
        state_.assign(new_slots, static_cast<std::uint8_t>(Slot::Empty));
        mask_ = new_slots - 1;
        size_ = 0;
        used_ = 0;
        for (std::size_t i = 0; i < old_state.size(); ++i) {
            if (old_state[i] != Slot::Full)
                continue;
            bool fresh = false;
            insert(old_keys[i], fresh) = old_vals[i];
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::vector<std::uint8_t> state_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0; //!< live entries
    std::size_t used_ = 0; //!< live entries plus tombstones
};

} // namespace mnm

#endif // MNM_UTIL_FLATMAP_HH
