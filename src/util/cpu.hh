/**
 * @file
 * Runtime CPU-feature detection and SIMD backend selection.
 *
 * The SoA verdict kernels (core/soa_state.hh) come in three flavours:
 * the legacy scalar plan walk ("off"), a scalar pass over the SoA
 * program ("scalar-soa"), and an ISA-specific vector pass (AVX2 on
 * x86-64, NEON on AArch64). All three are bit-identical -- the backend
 * only chooses how the same arithmetic is scheduled -- so selection is
 * a pure performance knob.
 *
 * The knob is the MNM_SIMD environment variable:
 *
 *   off         legacy per-access plan walk (no SoA program)
 *   scalar-soa  SoA program, scalar loops
 *   native      best vector backend this CPU supports, else scalar-soa
 *   avx2/neon   force one vector ISA; fatal if unsupported here
 *
 * Unset defaults to native. Anything else is rejected loudly (the
 * repo's env-knob convention: a typo must not silently change what a
 * bench measured).
 */

#ifndef MNM_UTIL_CPU_HH
#define MNM_UTIL_CPU_HH

#include <cstdint>

namespace mnm
{

/** Which verdict-kernel implementation serves computeBypass. */
enum class SimdBackend
{
    Off,       //!< legacy scalar plan walk (reference for perf diffs)
    ScalarSoa, //!< SoA program, scalar loops
    Avx2,      //!< SoA program, 8-wide AVX2 passes (x86-64 only)
    Neon,      //!< SoA program, NEON passes (AArch64 only)
};

/** Does this CPU execute AVX2? Always false off x86-64. */
bool cpuHasAvx2();

/** Does this CPU execute NEON? True on AArch64, false elsewhere. */
bool cpuHasNeon();

/** The vector backend "native" resolves to on this machine (ScalarSoa
 *  when no vector ISA is available). */
SimdBackend nativeSimdBackend();

/** Parse one MNM_SIMD value; fatal on unknown names or on forcing an
 *  ISA this machine cannot execute. */
SimdBackend parseSimdBackend(const char *value);

/** The process-wide backend from MNM_SIMD (default native), resolved
 *  once on first use. */
SimdBackend simdBackendFromEnv();

/** Stable lower-case name ("off", "scalar-soa", "avx2", "neon"). */
const char *simdBackendName(SimdBackend backend);

/**
 * Monotonic fast timestamp for phase attribution (obs/phase_profiler):
 * the TSC on x86-64, CNTVCT_EL0 on AArch64, steady_clock nanoseconds
 * elsewhere. A read is tens of cycles -- cheap enough to bracket
 * sub-microsecond phases -- but the unit is source-dependent; divide by
 * profTickHz() for seconds, or compare ticks against ticks for shares.
 */
std::uint64_t profFastTick();

/** Measured profFastTick rate in ticks per second. Calibrated against
 *  steady_clock on first call (~5 ms, off every hot path -- only the
 *  profiling fold asks). */
double profTickHz();

} // namespace mnm

#endif // MNM_UTIL_CPU_HH
