/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Aborts (so a debugger/core dump catches it).
 * fatal()  — the user asked for something impossible (bad configuration,
 *            invalid arguments). Exits with status 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 * progress() — sweep/run progress; goes to stderr so table output on
 *            stdout stays byte-identical whether or not it is enabled.
 *
 * All messages funnel through one mutex-guarded sink, so concurrent
 * workers (sim/runner.hh) never interleave partial lines.
 */

#ifndef MNM_UTIL_LOGGING_HH
#define MNM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mnm
{

/** Severity of a log message; used to route and prefix output. */
enum class LogLevel
{
    Info,
    Progress,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Emit one formatted message with a severity prefix. */
void logMessage(LogLevel level, const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Print an informational message to stdout. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Info, detail::vformat(fmt, args...));
}

/** Print a progress message to stderr (never pollutes stdout). */
template <typename... Args>
void
progress(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Progress, detail::vformat(fmt, args...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Warn, detail::vformat(fmt, args...));
}

/** Report a user-caused error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Fatal, detail::vformat(fmt, args...));
    std::exit(1);
}

/** Report an internal bug and abort(). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Panic, detail::vformat(fmt, args...));
    std::abort();
}

/**
 * Check an internal invariant; panics with location info on failure.
 * Unlike assert(), stays active in release builds: the soundness
 * invariants this library rests on must never be compiled out.
 */
#define MNM_ASSERT(cond, msg)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::mnm::panic("assertion '%s' failed at %s:%d: %s", #cond,    \
                         __FILE__, __LINE__,                             \
                         static_cast<const char *>(msg));                \
        }                                                                \
    } while (0)

} // namespace mnm

#endif // MNM_UTIL_LOGGING_HH
