/**
 * @file
 * Lightweight statistics primitives in the spirit of a simulator stats
 * package: named counters, means, ratios, and histograms that experiment
 * harnesses can print uniformly.
 */

#ifndef MNM_UTIL_STATS_HH
#define MNM_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mnm
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max / variance over a stream of samples. */
class RunningStat
{
  public:
    void add(double sample);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance of the samples seen so far. */
    double variance() const;
    double stddev() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * A fixed-bucket histogram over [0, bucket_count * bucket_width); samples
 * past the top land in the overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::size_t bucket_count, double bucket_width);

    void add(double sample);
    void reset();

    std::size_t bucketCount() const { return buckets_.size(); }
    double bucketWidth() const { return bucket_width_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }

    /**
     * Sample value below which @p fraction of samples fall, with linear
     * interpolation inside the bucket.
     *
     * Edge behavior (all clamps keep the result inside the populated
     * range where one exists):
     *  - no samples: 0.
     *  - fraction <= 0: the lower edge of the first populated bucket.
     *  - fraction >= 1: the upper edge of the last populated bucket.
     *  - overflow samples count as living at the top boundary
     *    (bucketCount() * bucketWidth()): their true values are not
     *    retained, so any percentile that lands among them -- including
     *    every percentile of an all-overflow histogram -- returns that
     *    boundary, the tightest lower bound the histogram can prove.
     */
    double percentile(double fraction) const;

    /**
     * Fold @p other's buckets into this histogram (cross-cell
     * aggregation). Both histograms must have the same bucket count and
     * width; anything else panics.
     */
    void merge(const Histogram &other);

    /** Render as "bucket_lo..hi: count" lines. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> buckets_;
    double bucket_width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
};

/** Safe ratio helper: returns 0 when the denominator is 0. */
double ratio(double num, double denom);

/** Arithmetic mean of a vector (0 for empty input). */
double arithmeticMean(const std::vector<double> &values);

} // namespace mnm

#endif // MNM_UTIL_STATS_HH
