/**
 * @file
 * Exact division-free modulo by a runtime-constant divisor.
 *
 * The workload generators reduce raw 64-bit random draws modulo region
 * footprints on every synthesized memory access; a hardware 64-bit
 * divide there is one of the costliest instructions left in the batch
 * pipeline. FastMod replaces it with a multiply-high/shift reciprocal
 * plus a bounded correction loop.
 *
 * Exactness does NOT rest on the reciprocal's precision: the estimate
 * q^ = (m * magic) >> (64 + shift) with magic = floor(2^(64+shift)/d)
 * never exceeds the true quotient and undershoots it by at most 2, so
 * the correction loop (at most two subtractions of d) always lands on
 * the exact remainder m % d for every 64-bit m. A construction-time
 * self-check verifies edge inputs anyway.
 */

#ifndef MNM_UTIL_FASTDIV_HH
#define MNM_UTIL_FASTDIV_HH

#include <cstdint>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

/** Precomputed exact modulo-by-constant (divisor >= 1). */
class FastMod
{
  public:
    FastMod() = default;

    explicit FastMod(std::uint64_t divisor) : d_(divisor)
    {
        MNM_ASSERT(divisor != 0, "FastMod by zero");
        if (isPowerOf2(d_)) {
            mask_ = d_ - 1;
            pow2_ = true;
            return;
        }
        pow2_ = false;
        shift_ = floorLog2(d_);
        magic_ = static_cast<std::uint64_t>(
            ((static_cast<unsigned __int128>(1) << (64 + shift_))) / d_);
        // Spot-check the contract on the extremes the proof covers.
        MNM_ASSERT(mod(~std::uint64_t{0}) == ~std::uint64_t{0} % d_ &&
                       mod(d_) == 0 && mod(d_ - 1) == d_ - 1,
                   "FastMod self-check failed");
    }

    std::uint64_t divisor() const { return d_; }

    /** m % divisor, exactly, with no divide instruction. */
    std::uint64_t mod(std::uint64_t m) const
    {
        if (pow2_)
            return m & mask_;
        return slowMod(m);
    }

  private:
    std::uint64_t
    slowMod(std::uint64_t m) const
    {
        std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(m) * magic_) >> 64 >> shift_);
        std::uint64_t r = m - q * d_;
        while (r >= d_)
            r -= d_;
        return r;
    }

    std::uint64_t d_ = 1;
    std::uint64_t magic_ = 0;
    std::uint64_t mask_ = 0;
    unsigned shift_ = 0;
    bool pow2_ = true; //!< d_ == 1: mask_ == 0 answers every mod
};

} // namespace mnm

#endif // MNM_UTIL_FASTDIV_HH
