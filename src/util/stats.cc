#include "util/stats.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace mnm
{

void
RunningStat::add(double sample)
{
    ++count_;
    sum_ += sample;
    if (count_ == 1) {
        mean_ = sample;
        min_ = sample;
        max_ = sample;
        m2_ = 0.0;
        return;
    }
    double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    if (sample < min_)
        min_ = sample;
    if (sample > max_)
        max_ = sample;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::size_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), bucket_width_(bucket_width)
{
    MNM_ASSERT(bucket_count > 0 && bucket_width > 0.0,
               "degenerate histogram");
}

void
Histogram::add(double sample)
{
    ++samples_;
    if (sample < 0.0)
        sample = 0.0;
    auto idx = static_cast<std::size_t>(sample / bucket_width_);
    if (idx >= buckets_.size()) {
        ++overflow_;
    } else {
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    samples_ = 0;
}

double
Histogram::percentile(double fraction) const
{
    if (samples_ == 0)
        return 0.0;
    const double top =
        static_cast<double>(buckets_.size()) * bucket_width_;
    if (fraction >= 1.0) {
        // Clamp to the upper edge of the last populated bucket; with
        // overflow samples the top boundary is the best bound we have.
        if (overflow_ > 0)
            return top;
        for (std::size_t i = buckets_.size(); i-- > 0;) {
            if (buckets_[i] > 0)
                return static_cast<double>(i + 1) * bucket_width_;
        }
    }
    if (fraction < 0.0)
        fraction = 0.0;
    double target = fraction * static_cast<double>(samples_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double next = cumulative + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            // fraction <= 0 lands here with inside == 0: the lower
            // edge of the first populated bucket.
            double inside = (target - cumulative) /
                            static_cast<double>(buckets_[i]);
            return (static_cast<double>(i) + inside) * bucket_width_;
        }
        cumulative = next;
    }
    // Only overflow samples remain past the last bucket: report the
    // top boundary (their exact values were not retained).
    return top;
}

void
Histogram::merge(const Histogram &other)
{
    MNM_ASSERT(other.buckets_.size() == buckets_.size() &&
                   other.bucket_width_ == bucket_width_,
               "histogram shape mismatch in merge");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    samples_ += other.samples_;
}

std::string
Histogram::toString() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        out << bucket_width_ * static_cast<double>(i) << ".."
            << bucket_width_ * static_cast<double>(i + 1) << ": "
            << buckets_[i] << "\n";
    }
    if (overflow_)
        out << "overflow: " << overflow_ << "\n";
    return out.str();
}

double
ratio(double num, double denom)
{
    return denom == 0.0 ? 0.0 : num / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace mnm
