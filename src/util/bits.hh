/**
 * @file
 * Small bit-manipulation helpers used throughout the cache and MNM models.
 */

#ifndef MNM_UTIL_BITS_HH
#define MNM_UTIL_BITS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"
#include "util/types.hh"

namespace mnm
{

/** Return true if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/** Exact log2 for powers of two (panics otherwise). */
inline unsigned
exactLog2(std::uint64_t v)
{
    MNM_ASSERT(isPowerOf2(v), "exactLog2 of non-power-of-2");
    return floorLog2(v);
}

/** A mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract @p width bits of @p value starting at bit @p first (LSB = 0).
 * Bits beyond bit 63 read as zero.
 */
constexpr std::uint64_t
bitSlice(std::uint64_t value, unsigned first, unsigned width)
{
    if (first >= 64)
        return 0;
    return (value >> first) & lowMask(width);
}

/** Number of set bits. */
constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace mnm

#endif // MNM_UTIL_BITS_HH
