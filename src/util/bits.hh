/**
 * @file
 * Small bit-manipulation helpers used throughout the cache and MNM models.
 */

#ifndef MNM_UTIL_BITS_HH
#define MNM_UTIL_BITS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string_view>

#include "util/logging.hh"
#include "util/types.hh"

namespace mnm
{

/** Return true if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/** Exact log2 for powers of two (panics otherwise). */
inline unsigned
exactLog2(std::uint64_t v)
{
    MNM_ASSERT(isPowerOf2(v), "exactLog2 of non-power-of-2");
    return floorLog2(v);
}

/** A mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract @p width bits of @p value starting at bit @p first (LSB = 0).
 * Bits beyond bit 63 read as zero.
 */
constexpr std::uint64_t
bitSlice(std::uint64_t value, unsigned first, unsigned width)
{
    if (first >= 64)
        return 0;
    return (value >> first) & lowMask(width);
}

/** Number of set bits. */
constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

namespace detail
{

/** IEEE 802.3 CRC-32 table (reflected polynomial 0xedb88320). */
constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0u);
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32_table =
    makeCrc32Table();

} // namespace detail

/**
 * IEEE CRC-32 (zlib-compatible) of @p data. Guards checkpoint-journal
 * records against in-place corruption: a torn tail fails to parse, but
 * a bit-flipped byte in the middle of an old record still parses as
 * JSON -- only the checksum catches it.
 */
constexpr std::uint32_t
crc32(std::string_view data)
{
    std::uint32_t crc = 0xffffffffu;
    for (char ch : data) {
        crc = (crc >> 8) ^
              detail::crc32_table[(crc ^ static_cast<unsigned char>(ch)) &
                                  0xffu];
    }
    return crc ^ 0xffffffffu;
}

} // namespace mnm

#endif // MNM_UTIL_BITS_HH
