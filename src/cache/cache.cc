#include "cache/cache.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Cache::Cache(const CacheParams &params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    if (params_.capacity_bytes == 0 || params_.block_bytes == 0)
        fatal("cache '%s': zero capacity or block size",
              params_.name.c_str());
    if (!isPowerOf2(params_.capacity_bytes) ||
        !isPowerOf2(params_.block_bytes)) {
        fatal("cache '%s': capacity and block size must be powers of two",
              params_.name.c_str());
    }
    if (params_.capacity_bytes % params_.block_bytes != 0)
        fatal("cache '%s': capacity not a multiple of block size",
              params_.name.c_str());

    std::uint64_t blocks = params_.capacity_bytes / params_.block_bytes;
    num_ways_ = params_.associativity == 0
                    ? static_cast<std::uint32_t>(blocks)
                    : params_.associativity;
    if (blocks % num_ways_ != 0)
        fatal("cache '%s': %llu blocks not divisible by %u ways",
              params_.name.c_str(),
              static_cast<unsigned long long>(blocks), num_ways_);
    num_sets_ = static_cast<std::uint32_t>(blocks / num_ways_);
    if (!isPowerOf2(num_sets_))
        fatal("cache '%s': set count %u not a power of two",
              params_.name.c_str(), num_sets_);
    block_bits_ = exactLog2(params_.block_bytes);
    lines_.resize(static_cast<std::size_t>(num_sets_) * num_ways_);
    if (params_.policy == ReplPolicy::TreePlru) {
        if (!isPowerOf2(num_ways_))
            fatal("cache '%s': tree-PLRU needs power-of-two ways",
                  params_.name.c_str());
        if (num_ways_ > 64)
            fatal("cache '%s': tree-PLRU supports at most 64 ways",
                  params_.name.c_str());
        plru_bits_.assign(num_sets_, 0);
    }
}

void
Cache::plruTouch(std::uint32_t set, std::uint32_t way)
{
    // Walk root->leaf; at each node flip the bit to point AWAY from the
    // touched way. Node i's children are 2i+1/2i+2; leaves map to ways
    // in order.
    std::uint64_t &bits = plru_bits_[set];
    std::uint32_t node = 0;
    for (std::uint32_t span = num_ways_ / 2; span >= 1; span /= 2) {
        bool right = (way / span) & 1u;
        // Bit semantics: 0 -> victim path goes left, 1 -> goes right.
        if (right) {
            bits &= ~(std::uint64_t{1} << node); // point left (away)
            node = 2 * node + 2;
        } else {
            bits |= (std::uint64_t{1} << node); // point right (away)
            node = 2 * node + 1;
        }
        if (span == 1)
            break;
        way %= span;
    }
}

std::uint32_t
Cache::plruVictim(std::uint32_t set) const
{
    std::uint64_t bits = plru_bits_[set];
    std::uint32_t node = 0;
    std::uint32_t way = 0;
    for (std::uint32_t span = num_ways_ / 2; span >= 1; span /= 2) {
        bool right = (bits >> node) & 1u;
        if (right) {
            way += span;
            node = 2 * node + 2;
        } else {
            node = 2 * node + 1;
        }
        if (span == 1)
            break;
    }
    return way;
}

bool
Cache::probe(BlockAddr block, bool is_write)
{
    ++stats_.accesses;
    Line *line = findLine(block);
    if (!line) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    if (params_.policy == ReplPolicy::Lru) {
        // MRU-way bookkeeping for the way-prediction comparison: did
        // the hit land in the most recently touched way of its set?
        std::uint32_t set = setIndex(block);
        const Line *base =
            &lines_[static_cast<std::size_t>(set) * num_ways_];
        bool is_mru = true;
        for (std::uint32_t w = 0; w < num_ways_; ++w) {
            if (base[w].valid && base[w].stamp > line->stamp) {
                is_mru = false;
                break;
            }
        }
        if (is_mru)
            ++stats_.mru_hits;
        line->stamp = ++tick_;
    } else if (params_.policy == ReplPolicy::TreePlru) {
        std::uint32_t set = setIndex(block);
        std::uint32_t way = static_cast<std::uint32_t>(
            line - &lines_[static_cast<std::size_t>(set) * num_ways_]);
        plruTouch(set, way);
    }
    if (is_write)
        line->dirty = true;
    return true;
}

std::uint32_t
Cache::victimWay(std::uint32_t set)
{
    Line *base = &lines_[static_cast<std::size_t>(set) * num_ways_];
    // Invalid ways first.
    for (std::uint32_t w = 0; w < num_ways_; ++w) {
        if (!base[w].valid)
            return w;
    }
    switch (params_.policy) {
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.nextBelow(num_ways_));
      case ReplPolicy::TreePlru:
        return plruVictim(set);
      case ReplPolicy::Lru:
      case ReplPolicy::Fifo: {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < num_ways_; ++w) {
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

Cache::FillOutcome
Cache::fill(BlockAddr block, bool dirty)
{
    std::uint32_t set = setIndex(block);
    // Refilling a resident block must not duplicate it; treat as a touch.
    if (Line *line = findLine(block)) {
        line->stamp = ++tick_;
        if (params_.policy == ReplPolicy::TreePlru) {
            std::uint32_t way = static_cast<std::uint32_t>(
                line -
                &lines_[static_cast<std::size_t>(set) * num_ways_]);
            plruTouch(set, way);
        }
        line->dirty = line->dirty || dirty;
        return {};
    }

    ++stats_.fills;
    std::uint32_t way = victimWay(set);
    Line &line = lines_[static_cast<std::size_t>(set) * num_ways_ + way];
    FillOutcome outcome;
    outcome.inserted = true;
    if (line.valid) {
        ++stats_.evictions;
        if (line.dirty) {
            ++stats_.writebacks;
            outcome.evicted_dirty = true;
        }
        outcome.evicted = line.tag;
    } else {
        ++resident_;
    }
    line.valid = true;
    line.tag = block;
    line.dirty = dirty;
    line.stamp = ++tick_;
    if (params_.policy == ReplPolicy::TreePlru)
        plruTouch(set, way);
    return outcome;
}

bool
Cache::absorbWriteback(BlockAddr block)
{
    ++stats_.writeback_probes;
    Line *line = findLine(block);
    if (!line)
        return false;
    line->dirty = true;
    ++stats_.writeback_absorbs;
    return true;
}

Cache::InvalidateOutcome
Cache::invalidate(BlockAddr block)
{
    InvalidateOutcome outcome;
    Line *line = findLine(block);
    if (!line)
        return outcome;
    outcome.was_present = true;
    outcome.was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    --resident_;
    return outcome;
}

std::uint64_t
Cache::flush()
{
    std::uint64_t dropped = 0;
    for (auto &line : lines_) {
        if (line.valid) {
            ++dropped;
            line.valid = false;
            line.dirty = false;
        }
    }
    resident_ = 0;
    return dropped;
}

std::vector<BlockAddr>
Cache::residentBlocks() const
{
    std::vector<BlockAddr> blocks;
    blocks.reserve(resident_);
    for (const auto &line : lines_) {
        if (line.valid)
            blocks.push_back(line.tag);
    }
    return blocks;
}

} // namespace mnm
