#include "cache/cache.hh"

#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Cache::Cache(const CacheParams &params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    if (params_.capacity_bytes == 0 || params_.block_bytes == 0)
        fatal("cache '%s': zero capacity or block size",
              params_.name.c_str());
    if (!isPowerOf2(params_.capacity_bytes) ||
        !isPowerOf2(params_.block_bytes)) {
        fatal("cache '%s': capacity and block size must be powers of two",
              params_.name.c_str());
    }
    if (params_.capacity_bytes % params_.block_bytes != 0)
        fatal("cache '%s': capacity not a multiple of block size",
              params_.name.c_str());

    std::uint64_t blocks = params_.capacity_bytes / params_.block_bytes;
    num_ways_ = params_.associativity == 0
                    ? static_cast<std::uint32_t>(blocks)
                    : params_.associativity;
    if (blocks % num_ways_ != 0)
        fatal("cache '%s': %llu blocks not divisible by %u ways",
              params_.name.c_str(),
              static_cast<unsigned long long>(blocks), num_ways_);
    num_sets_ = static_cast<std::uint32_t>(blocks / num_ways_);
    if (!isPowerOf2(num_sets_))
        fatal("cache '%s': set count %u not a power of two",
              params_.name.c_str(), num_sets_);
    block_bits_ = exactLog2(params_.block_bytes);
    std::size_t num_lines = static_cast<std::size_t>(num_sets_) * num_ways_;
    tags_.resize(num_lines);
    stamps_.resize(num_lines);
    state_.resize(num_lines);
    if (params_.policy == ReplPolicy::TreePlru) {
        if (!isPowerOf2(num_ways_))
            fatal("cache '%s': tree-PLRU needs power-of-two ways",
                  params_.name.c_str());
        if (num_ways_ > 64)
            fatal("cache '%s': tree-PLRU supports at most 64 ways",
                  params_.name.c_str());
        plru_bits_.assign(num_sets_, 0);
    }
    if (params_.policy == ReplPolicy::Lru)
        mru_way_.assign(num_sets_, no_mru);
}

void
Cache::recomputeMru(std::uint32_t set)
{
    std::size_t base = static_cast<std::size_t>(set) * num_ways_;
    std::uint32_t mru = no_mru;
    std::uint64_t best = 0;
    for (std::uint32_t w = 0; w < num_ways_; ++w) {
        if ((state_[base + w] & line_valid) && stamps_[base + w] > best) {
            best = stamps_[base + w];
            mru = w;
        }
    }
    mru_way_[set] = mru;
}

void
Cache::plruTouch(std::uint32_t set, std::uint32_t way)
{
    // Walk root->leaf; at each node flip the bit to point AWAY from the
    // touched way. Node i's children are 2i+1/2i+2; leaves map to ways
    // in order.
    std::uint64_t &bits = plru_bits_[set];
    std::uint32_t node = 0;
    for (std::uint32_t span = num_ways_ / 2; span >= 1; span /= 2) {
        bool right = (way / span) & 1u;
        // Bit semantics: 0 -> victim path goes left, 1 -> goes right.
        if (right) {
            bits &= ~(std::uint64_t{1} << node); // point left (away)
            node = 2 * node + 2;
        } else {
            bits |= (std::uint64_t{1} << node); // point right (away)
            node = 2 * node + 1;
        }
        if (span == 1)
            break;
        way %= span;
    }
}

std::uint32_t
Cache::plruVictim(std::uint32_t set) const
{
    std::uint64_t bits = plru_bits_[set];
    std::uint32_t node = 0;
    std::uint32_t way = 0;
    for (std::uint32_t span = num_ways_ / 2; span >= 1; span /= 2) {
        bool right = (bits >> node) & 1u;
        if (right) {
            way += span;
            node = 2 * node + 2;
        } else {
            node = 2 * node + 1;
        }
        if (span == 1)
            break;
    }
    return way;
}

std::uint32_t
Cache::victimWay(std::uint32_t set)
{
    std::size_t base = static_cast<std::size_t>(set) * num_ways_;
    // Invalid ways first.
    for (std::uint32_t w = 0; w < num_ways_; ++w) {
        if (!(state_[base + w] & line_valid))
            return w;
    }
    switch (params_.policy) {
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.nextBelow(num_ways_));
      case ReplPolicy::TreePlru:
        return plruVictim(set);
      case ReplPolicy::Lru:
      case ReplPolicy::Fifo: {
        const std::uint64_t *stamps = stamps_.data() + base;
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < num_ways_; ++w) {
            if (stamps[w] < stamps[victim])
                victim = w;
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

Cache::FillOutcome
Cache::fill(BlockAddr block, bool dirty, bool known_absent)
{
    std::uint32_t set = setIndex(block);
    // Refilling a resident block must not duplicate it; treat as a
    // touch. Callers that just probed-and-missed assert absence and
    // skip the re-scan.
    assert(!known_absent || findWay(block) == no_way);
    if (!known_absent) {
        std::size_t idx = findWay(block);
        if (idx != no_way) {
            stamps_[idx] = ++tick_;
            std::uint32_t way = static_cast<std::uint32_t>(
                idx - static_cast<std::size_t>(set) * num_ways_);
            if (params_.policy == ReplPolicy::Lru)
                mruTouch(set, way);
            else if (params_.policy == ReplPolicy::TreePlru)
                plruTouch(set, way);
            if (dirty)
                state_[idx] |= line_dirty;
            return {};
        }
    }

    ++stats_.fills;
    std::uint32_t way = victimWay(set);
    std::size_t idx = static_cast<std::size_t>(set) * num_ways_ + way;
    FillOutcome outcome;
    outcome.inserted = true;
    if (state_[idx] & line_valid) {
        ++stats_.evictions;
        if (state_[idx] & line_dirty) {
            ++stats_.writebacks;
            outcome.evicted_dirty = true;
        }
        outcome.evicted = tags_[idx];
    } else {
        ++resident_;
    }
    tags_[idx] = block;
    state_[idx] = static_cast<std::uint8_t>(
        line_valid | (dirty ? line_dirty : 0));
    stamps_[idx] = ++tick_;
    if (params_.policy == ReplPolicy::Lru)
        mruTouch(set, way);
    else if (params_.policy == ReplPolicy::TreePlru)
        plruTouch(set, way);
    return outcome;
}

bool
Cache::absorbWriteback(BlockAddr block)
{
    ++stats_.writeback_probes;
    std::size_t idx = findWay(block);
    if (idx == no_way)
        return false;
    state_[idx] |= line_dirty;
    ++stats_.writeback_absorbs;
    return true;
}

Cache::InvalidateOutcome
Cache::invalidate(BlockAddr block)
{
    InvalidateOutcome outcome;
    std::size_t idx = findWay(block);
    if (idx == no_way)
        return outcome;
    outcome.was_present = true;
    outcome.was_dirty = (state_[idx] & line_dirty) != 0;
    state_[idx] = 0;
    --resident_;
    if (params_.policy == ReplPolicy::Lru) {
        std::uint32_t set = setIndex(block);
        std::uint32_t way = static_cast<std::uint32_t>(
            idx - static_cast<std::size_t>(set) * num_ways_);
        if (mru_way_[set] == way) {
            // The MRU line just left: the runner-up (next-highest
            // stamp) inherits the title, exactly as the old stamp
            // scan would have concluded.
            recomputeMru(set);
        }
    }
    return outcome;
}

std::uint64_t
Cache::flush()
{
    std::uint64_t dropped = 0;
    for (auto &state : state_) {
        if (state & line_valid)
            ++dropped;
        state = 0;
    }
    resident_ = 0;
    if (params_.policy == ReplPolicy::Lru)
        mru_way_.assign(num_sets_, no_mru);
    return dropped;
}

std::vector<BlockAddr>
Cache::residentBlocks() const
{
    std::vector<BlockAddr> blocks;
    blocks.reserve(resident_);
    for (std::size_t i = 0; i < state_.size(); ++i) {
        if (state_[i] & line_valid)
            blocks.push_back(tags_[i]);
    }
    return blocks;
}

} // namespace mnm
