#include "cache/hierarchy.hh"

#include <sstream>

#include "util/logging.hh"

namespace mnm
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               std::uint64_t seed)
    : params_(params)
{
    if (params_.levels.empty())
        fatal("hierarchy with no cache levels");
    if (params_.levels.size() + 1 >= AccessResult::max_probes)
        fatal("hierarchy deeper than %zu levels unsupported",
              AccessResult::max_probes - 1);

    std::uint64_t cache_seed = seed;
    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        const LevelParams &lvl = params_.levels[i];
        std::uint32_t level = static_cast<std::uint32_t>(i + 1);
        if (lvl.split) {
            caches_.push_back(
                std::make_unique<Cache>(lvl.instr, ++cache_seed));
            level_of_.push_back(level);
            instr_path_.push_back(
                static_cast<CacheId>(caches_.size() - 1));
            caches_.push_back(
                std::make_unique<Cache>(lvl.data, ++cache_seed));
            level_of_.push_back(level);
            data_path_.push_back(
                static_cast<CacheId>(caches_.size() - 1));
        } else {
            caches_.push_back(
                std::make_unique<Cache>(lvl.data, ++cache_seed));
            level_of_.push_back(level);
            CacheId id = static_cast<CacheId>(caches_.size() - 1);
            instr_path_.push_back(id);
            data_path_.push_back(id);
        }
    }
    if (caches_.size() > 32)
        fatal("more than 32 cache structures unsupported by BypassMask");

    compileWalkPlans();
}

void
CacheHierarchy::compileWalkPlans()
{
    // Flatten each path into a contiguous descent plan: the hot walk
    // then touches one POD step per level instead of re-deriving ids,
    // latencies and shift constants through three indirections.
    auto compile = [this](const std::vector<CacheId> &route,
                          std::vector<WalkStep> &plan) {
        plan.clear();
        plan.reserve(route.size());
        for (std::size_t i = 0; i < route.size(); ++i) {
            CacheId id = route[i];
            Cache &c = *caches_[id];
            WalkStep st;
            st.cache = &c;
            st.bit = 1u << id;
            st.id = id;
            st.level = static_cast<std::uint8_t>(i + 1);
            st.block_bits = c.blockBits();
            st.hit_latency = c.params().hit_latency;
            st.miss_latency = c.params().missLatency();
            plan.push_back(st);
        }
    };
    compile(instr_path_, instr_plan_);
    compile(data_path_, data_plan_);
}

Cache &
CacheHierarchy::cacheAt(std::uint32_t level, AccessType type)
{
    MNM_ASSERT(level >= 1 && level <= levels(), "level out of range");
    const auto &p = path(type);
    return *caches_[p[level - 1]];
}

const Cache &
CacheHierarchy::cacheAt(std::uint32_t level, AccessType type) const
{
    return const_cast<CacheHierarchy *>(this)->cacheAt(level, type);
}

AccessResult
CacheHierarchy::access(AccessType type, Addr addr, const BypassMask &bypass)
{
    return walk(type, addr, bypass, false);
}

AccessResult
CacheHierarchy::accessBelowL1(AccessType type, Addr addr,
                              const BypassMask &bypass)
{
    return walk(type, addr, bypass, true);
}

AccessResult
CacheHierarchy::walk(AccessType type, Addr addr, const BypassMask &bypass,
                     bool l1_missed)
{
    const bool is_instr = type == AccessType::InstFetch;
    const std::vector<WalkStep> &plan =
        is_instr ? instr_plan_ : data_plan_;
    const WalkStep *steps = plan.data();
    const std::size_t n_levels = plan.size();
    const bool is_write = type == AccessType::Store;
    const std::uint32_t skip = bypass.raw();

    AccessResult result;
    std::size_t hit_idx = n_levels;
    std::size_t start = 0;

    if (l1_missed) {
        // The caller performed (and counted) the level-1 probe itself;
        // record its miss here so every downstream consumer sees the
        // exact record stream access() would have produced.
        const WalkStep &st = steps[0];
        MNM_ASSERT((skip & st.bit) == 0,
                   "accessBelowL1 with a bypassed level-1 cache");
        ProbeRecord rec;
        rec.cache = st.id;
        rec.level = st.level;
        rec.bypassed = false;
        rec.hit = false;
        result.addProbe(rec);
        result.latency += st.miss_latency;
        start = 1;
    }

    for (std::size_t i = start; i < n_levels; ++i) {
        const WalkStep &st = steps[i];
        ProbeRecord rec;
        rec.cache = st.id;
        rec.level = st.level;
        if (skip & st.bit) {
            // MNM said "miss": skip the structure entirely. The verdict
            // machinery guarantees the block is absent (soundness), so
            // this never skips a would-be hit.
            rec.bypassed = true;
            rec.hit = false;
            st.cache->noteBypass();
            result.addProbe(rec);
            continue;
        }
        rec.bypassed = false;
        bool hit = st.cache->probe(addr >> st.block_bits, is_write);
        rec.hit = hit;
        result.addProbe(rec);
        result.latency += hit ? st.hit_latency : st.miss_latency;
        if (hit) {
            hit_idx = i;
            break;
        }
    }

    if (hit_idx == n_levels) {
        result.from_memory = true;
        result.supply_level = static_cast<std::uint8_t>(n_levels + 1);
        result.latency += params_.memory_latency;
        result.supply_latency = params_.memory_latency;
        ++memory_accesses_;
    } else {
        result.supply_level = steps[hit_idx].level;
        result.supply_latency = steps[hit_idx].hit_latency;
    }

    // Fill path: allocate into every level above the supplier from the
    // same plan. Stores mark the L1 copy dirty (write-allocate,
    // write-back).
    const std::vector<CacheId> &route = is_instr ? instr_path_ : data_path_;
    for (std::size_t i = hit_idx; i-- > 0;) {
        const WalkStep &st = steps[i];
        Cache &c = *st.cache;
        BlockAddr block = addr >> st.block_bits;
        bool dirty = is_write && st.level == 1;
        // A cache the walk probed (not bypassed) just reported a miss,
        // and nothing on the fill path inserts into a yet-unfilled
        // level, so its fill can skip the residency re-check. Bypassed
        // caches keep it: an unsound ablation may still hold the block.
        bool known_absent = (skip & st.bit) == 0;
        Cache::FillOutcome outcome = c.fill(block, dirty, known_absent);
        if (listener_ && outcome.inserted) {
            // Replacement first, then placement: matches the paper's
            // RMNM scenario ordering (Table 1) where the outgoing block
            // is reported before the incoming one lands.
            if (batched_feed_) {
                if (outcome.evicted)
                    emitEvent(st.id, *outcome.evicted,
                              CacheEventKind::Replacement);
                emitEvent(st.id, block, CacheEventKind::Placement);
            } else {
                if (outcome.evicted)
                    listener_->onReplacement(st.id, *outcome.evicted);
                listener_->onPlacement(st.id, block);
            }
        }
        bool victim_dirty = outcome.evicted_dirty;
        if (outcome.evicted &&
            params_.inclusion == InclusionPolicy::Inclusive &&
            st.level >= 2) {
            // Strict inclusion: every upper-level copy of the victim
            // must go too; dirty upper data folds into the writeback.
            victim_dirty |= backInvalidate(st.level,
                                           c.byteAddr(*outcome.evicted),
                                           c.params().block_bytes);
        }
        if (params_.model_writebacks && outcome.evicted &&
            victim_dirty) {
            writeback(route, st.level, c.byteAddr(*outcome.evicted),
                      result);
        }
    }

    drainEvents();

    return result;
}

bool
CacheHierarchy::backInvalidate(std::uint32_t below_level, Addr victim,
                               std::uint32_t victim_bytes)
{
    bool any_dirty = false;
    for (CacheId id = 0; id < caches_.size(); ++id) {
        if (level_of_[id] >= below_level)
            continue;
        Cache &upper = *caches_[id];
        BlockAddr first = upper.blockAddr(victim);
        BlockAddr last = upper.blockAddr(victim + victim_bytes - 1);
        for (BlockAddr b = first; b <= last; ++b) {
            Cache::InvalidateOutcome inv = upper.invalidate(b);
            if (!inv.was_present)
                continue;
            any_dirty |= inv.was_dirty;
            if (listener_) {
                if (batched_feed_)
                    emitEvent(id, b, CacheEventKind::Replacement);
                else
                    listener_->onReplacement(id, b);
            }
        }
    }
    return any_dirty;
}

void
CacheHierarchy::writeback(const std::vector<CacheId> &route,
                          std::uint32_t from_level, Addr victim_addr,
                          AccessResult &result)
{
    // The dirty victim drains towards memory, absorbed by the first
    // lower level that holds the block. Absorbing only dirties an
    // existing copy, so no replacements (and no MNM events) occur.
    for (std::uint32_t level = from_level + 1; level <= levels();
         ++level) {
        CacheId id = route[level - 1];
        Cache &c = *caches_[id];
        bool absorbed = c.absorbWriteback(c.blockAddr(victim_addr));
        result.addWriteback({id, absorbed});
        if (absorbed)
            return;
    }
    ++result.memory_writebacks;
    ++memory_writebacks_;
}

void
CacheHierarchy::flushAll()
{
    for (CacheId id = 0; id < caches_.size(); ++id) {
        caches_[id]->flush();
        if (listener_)
            listener_->onFlush(id);
    }
}

std::string
CacheHierarchy::describe() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        const LevelParams &lvl = params_.levels[i];
        out << "L" << (i + 1) << ": ";
        auto describe_one = [&](const CacheParams &p) {
            out << p.name << " " << p.capacity_bytes / 1024 << "KB "
                << (p.associativity == 0
                        ? std::string("full")
                        : std::to_string(p.associativity) + "-way")
                << " " << p.block_bytes << "B blocks, "
                << p.hit_latency << " cycles";
        };
        if (lvl.split) {
            describe_one(lvl.instr);
            out << " + ";
            describe_one(lvl.data);
        } else {
            describe_one(lvl.data);
        }
        out << "\n";
    }
    out << "memory: " << params_.memory_latency << " cycles\n";
    return out.str();
}

} // namespace mnm
