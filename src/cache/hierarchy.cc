#include "cache/hierarchy.hh"

#include <sstream>

#include "util/logging.hh"

namespace mnm
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               std::uint64_t seed)
    : params_(params)
{
    if (params_.levels.empty())
        fatal("hierarchy with no cache levels");
    if (params_.levels.size() + 1 >= AccessResult::max_probes)
        fatal("hierarchy deeper than %zu levels unsupported",
              AccessResult::max_probes - 1);

    std::uint64_t cache_seed = seed;
    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        const LevelParams &lvl = params_.levels[i];
        std::uint32_t level = static_cast<std::uint32_t>(i + 1);
        if (lvl.split) {
            caches_.push_back(
                std::make_unique<Cache>(lvl.instr, ++cache_seed));
            level_of_.push_back(level);
            instr_path_.push_back(
                static_cast<CacheId>(caches_.size() - 1));
            caches_.push_back(
                std::make_unique<Cache>(lvl.data, ++cache_seed));
            level_of_.push_back(level);
            data_path_.push_back(
                static_cast<CacheId>(caches_.size() - 1));
        } else {
            caches_.push_back(
                std::make_unique<Cache>(lvl.data, ++cache_seed));
            level_of_.push_back(level);
            CacheId id = static_cast<CacheId>(caches_.size() - 1);
            instr_path_.push_back(id);
            data_path_.push_back(id);
        }
    }
    if (caches_.size() > 32)
        fatal("more than 32 cache structures unsupported by BypassMask");
}

Cache &
CacheHierarchy::cacheAt(std::uint32_t level, AccessType type)
{
    MNM_ASSERT(level >= 1 && level <= levels(), "level out of range");
    const auto &p = path(type);
    return *caches_[p[level - 1]];
}

const Cache &
CacheHierarchy::cacheAt(std::uint32_t level, AccessType type) const
{
    return const_cast<CacheHierarchy *>(this)->cacheAt(level, type);
}

AccessResult
CacheHierarchy::access(AccessType type, Addr addr, const BypassMask &bypass)
{
    const std::vector<CacheId> &route =
        type == AccessType::InstFetch ? instr_path_ : data_path_;
    const bool is_write = type == AccessType::Store;

    AccessResult result;
    std::uint32_t n_levels = levels();
    std::uint32_t hit_level = 0;

    for (std::uint32_t level = 1; level <= n_levels; ++level) {
        CacheId id = route[level - 1];
        Cache &c = *caches_[id];
        ProbeRecord rec;
        rec.cache = id;
        rec.level = static_cast<std::uint8_t>(level);
        rec.bypassed = false;
        rec.hit = false;
        if (bypass.test(id)) {
            // MNM said "miss": skip the structure entirely. The verdict
            // machinery guarantees the block is absent (soundness), so
            // this never skips a would-be hit.
            rec.bypassed = true;
            c.noteBypass();
            result.addProbe(rec);
            continue;
        }
        bool hit = c.probe(c.blockAddr(addr), is_write);
        rec.hit = hit;
        result.addProbe(rec);
        result.latency +=
            hit ? c.params().hit_latency : c.params().missLatency();
        if (hit) {
            hit_level = level;
            break;
        }
    }

    if (hit_level == 0) {
        result.from_memory = true;
        result.supply_level = static_cast<std::uint8_t>(n_levels + 1);
        result.latency += params_.memory_latency;
        ++memory_accesses_;
        hit_level = n_levels + 1;
    } else {
        result.supply_level = static_cast<std::uint8_t>(hit_level);
    }

    // Fill path: allocate into every level above the supplier. Stores
    // mark the L1 copy dirty (write-allocate, write-back).
    for (std::uint32_t level = hit_level - 1; level >= 1; --level) {
        CacheId id = route[level - 1];
        Cache &c = *caches_[id];
        BlockAddr block = c.blockAddr(addr);
        bool dirty = is_write && level == 1;
        Cache::FillOutcome outcome = c.fill(block, dirty);
        if (listener_ && outcome.inserted) {
            // Replacement first, then placement: matches the paper's
            // RMNM scenario ordering (Table 1) where the outgoing block
            // is reported before the incoming one lands.
            if (outcome.evicted)
                listener_->onReplacement(id, *outcome.evicted);
            listener_->onPlacement(id, block);
        }
        bool victim_dirty = outcome.evicted_dirty;
        if (outcome.evicted &&
            params_.inclusion == InclusionPolicy::Inclusive &&
            level >= 2) {
            // Strict inclusion: every upper-level copy of the victim
            // must go too; dirty upper data folds into the writeback.
            victim_dirty |= backInvalidate(level,
                                           c.byteAddr(*outcome.evicted),
                                           c.params().block_bytes);
        }
        if (params_.model_writebacks && outcome.evicted &&
            victim_dirty) {
            writeback(route, level, c.byteAddr(*outcome.evicted),
                      result);
        }
        if (level == 1)
            break;
    }

    return result;
}

bool
CacheHierarchy::backInvalidate(std::uint32_t below_level, Addr victim,
                               std::uint32_t victim_bytes)
{
    bool any_dirty = false;
    for (CacheId id = 0; id < caches_.size(); ++id) {
        if (level_of_[id] >= below_level)
            continue;
        Cache &upper = *caches_[id];
        BlockAddr first = upper.blockAddr(victim);
        BlockAddr last = upper.blockAddr(victim + victim_bytes - 1);
        for (BlockAddr b = first; b <= last; ++b) {
            Cache::InvalidateOutcome inv = upper.invalidate(b);
            if (!inv.was_present)
                continue;
            any_dirty |= inv.was_dirty;
            if (listener_)
                listener_->onReplacement(id, b);
        }
    }
    return any_dirty;
}

void
CacheHierarchy::writeback(const std::vector<CacheId> &route,
                          std::uint32_t from_level, Addr victim_addr,
                          AccessResult &result)
{
    // The dirty victim drains towards memory, absorbed by the first
    // lower level that holds the block. Absorbing only dirties an
    // existing copy, so no replacements (and no MNM events) occur.
    for (std::uint32_t level = from_level + 1; level <= levels();
         ++level) {
        CacheId id = route[level - 1];
        Cache &c = *caches_[id];
        bool absorbed = c.absorbWriteback(c.blockAddr(victim_addr));
        result.addWriteback({id, absorbed});
        if (absorbed)
            return;
    }
    ++result.memory_writebacks;
    ++memory_writebacks_;
}

void
CacheHierarchy::flushAll()
{
    for (CacheId id = 0; id < caches_.size(); ++id) {
        caches_[id]->flush();
        if (listener_)
            listener_->onFlush(id);
    }
}

std::string
CacheHierarchy::describe() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        const LevelParams &lvl = params_.levels[i];
        out << "L" << (i + 1) << ": ";
        auto describe_one = [&](const CacheParams &p) {
            out << p.name << " " << p.capacity_bytes / 1024 << "KB "
                << (p.associativity == 0
                        ? std::string("full")
                        : std::to_string(p.associativity) + "-way")
                << " " << p.block_bytes << "B blocks, "
                << p.hit_latency << " cycles";
        };
        if (lvl.split) {
            describe_one(lvl.instr);
            out << " + ";
            describe_one(lvl.data);
        } else {
            describe_one(lvl.data);
        }
        out << "\n";
    }
    out << "memory: " << params_.memory_latency << " cycles\n";
    return out.str();
}

} // namespace mnm
