/**
 * @file
 * A translation lookaside buffer model.
 *
 * Substrate for the paper's Section 4.5 suggestion that the MNM idea
 * "might be used to reduce the power consumption of other caching
 * structures such as the TLBs". The model is translation-free (flat
 * identity mapping): only page-number presence, replacement, and the
 * probe/walk costs matter for the filtering study.
 */

#ifndef MNM_CACHE_TLB_HH
#define MNM_CACHE_TLB_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cache/cache.hh"
#include "util/types.hh"

namespace mnm
{

/** Static configuration of one TLB. */
struct TlbParams
{
    std::string name = "tlb";
    /** Number of entries (power of two). */
    std::uint32_t entries = 64;
    /** Associativity; 0 = fully associative (the common choice). */
    std::uint32_t associativity = 0;
    /** log2 of the page size (4 KB pages -> 12). */
    unsigned page_bits = 12;
    /** Probe latency in cycles. */
    Cycles probe_latency = 1;
    /** Page-walk latency on a miss, cycles. */
    Cycles walk_latency = 30;
};

/** Event counts for one TLB. */
struct TlbStats
{
    Counter accesses;
    Counter hits;
    Counter misses;
    Counter bypasses; //!< probes skipped on filter "miss" verdicts
    Counter walks;

    double hitRate() const
    {
        return ratio(static_cast<double>(hits.value()),
                     static_cast<double>(accesses.value()));
    }
};

/**
 * The TLB. Built on the same set-associative machinery as the caches,
 * keyed by virtual page number. The filter bookkeeping hooks
 * (placement/replacement of page numbers) mirror the cache hierarchy's
 * listener feed.
 */
class Tlb
{
  public:
    /** Listener for page-number placement/replacement (filter feed). */
    class Listener
    {
      public:
        virtual ~Listener() = default;
        virtual void onTlbPlacement(std::uint64_t page) = 0;
        virtual void onTlbReplacement(std::uint64_t page) = 0;
    };

    explicit Tlb(const TlbParams &params, std::uint64_t seed = 1);

    std::uint64_t pageOf(Addr addr) const
    {
        return addr >> params_.page_bits;
    }

    /**
     * Translate @p addr. On a miss the page is walked and installed
     * (evictions notify the listener).
     *
     * @param bypass_probe the filter said "definitely not resident":
     *        skip the probe and go straight to the walk.
     * @return latency of the translation.
     */
    Cycles translate(Addr addr, bool bypass_probe = false);

    /** Side-effect-free residency check (oracle for soundness tests). */
    bool contains(Addr addr) const;

    void setListener(Listener *listener) { listener_ = listener; }

    const TlbParams &params() const { return params_; }
    const TlbStats &stats() const { return stats_; }

  private:
    TlbParams params_;
    Cache entries_; //!< page-number presence tracking
    TlbStats stats_;
    Listener *listener_ = nullptr;
};

} // namespace mnm

#endif // MNM_CACHE_TLB_HH
