#include "cache/tlb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

CacheParams
entryArrayParams(const TlbParams &params)
{
    if (!isPowerOf2(params.entries))
        fatal("TLB '%s': entry count %u not a power of two",
              params.name.c_str(), params.entries);
    CacheParams cp;
    cp.name = params.name + ".entries";
    // Reuse the cache machinery with 1-byte "blocks": block address ==
    // page number.
    cp.capacity_bytes = params.entries;
    cp.block_bytes = 1;
    cp.associativity = params.associativity;
    cp.hit_latency = params.probe_latency;
    cp.policy = ReplPolicy::Lru;
    return cp;
}

} // anonymous namespace

Tlb::Tlb(const TlbParams &params, std::uint64_t seed)
    : params_(params), entries_(entryArrayParams(params), seed)
{
}

Cycles
Tlb::translate(Addr addr, bool bypass_probe)
{
    std::uint64_t page = pageOf(addr);
    Cycles latency = 0;
    bool hit = false;
    if (bypass_probe) {
        ++stats_.bypasses;
    } else {
        ++stats_.accesses;
        hit = entries_.probe(page);
        if (hit)
            ++stats_.hits;
        else
            ++stats_.misses;
        latency += params_.probe_latency;
    }
    if (hit)
        return latency;

    // Walk and install.
    ++stats_.walks;
    latency += params_.walk_latency;
    Cache::FillOutcome outcome = entries_.fill(page);
    if (listener_ && outcome.inserted) {
        if (outcome.evicted)
            listener_->onTlbReplacement(*outcome.evicted);
        listener_->onTlbPlacement(page);
    }
    return latency;
}

bool
Tlb::contains(Addr addr) const
{
    return entries_.contains(pageOf(addr));
}

} // namespace mnm
