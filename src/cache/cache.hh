/**
 * @file
 * A single set-associative cache structure.
 *
 * This models the *contents* and *replacement behaviour* of one cache
 * (tag array semantics); latency and energy are attributed by the layers
 * above from the cache's configuration. The model is deliberately
 * data-free: only block presence matters for miss determination.
 */

#ifndef MNM_CACHE_CACHE_HH
#define MNM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace mnm
{

/** Replacement policy selection for a cache. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,
    /** Tree pseudo-LRU (requires power-of-two associativity): the
     *  policy real set-associative caches of the paper's era shipped
     *  with; cheaper state, near-LRU behaviour. */
    TreePlru,
};

/** Which request stream(s) a cache serves. */
enum class CacheSide
{
    Instr,
    Data,
    Unified,
};

/** Static configuration of one cache structure. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t capacity_bytes = 4 * 1024;
    /** Associativity; 0 selects fully associative. */
    std::uint32_t associativity = 1;
    std::uint32_t block_bytes = 32;
    /** Time to return data on a hit. */
    Cycles hit_latency = 1;
    /**
     * Time to determine a miss. 0 (the default) means "same as
     * hit_latency": the tag check takes the full access.
     */
    Cycles miss_latency = 0;
    ReplPolicy policy = ReplPolicy::Lru;

    Cycles missLatency() const
    {
        return miss_latency ? miss_latency : hit_latency;
    }
};

/** Event counts for one cache structure. */
struct CacheStats
{
    Counter accesses;  //!< probes actually performed (not bypassed)
    Counter hits;
    /** Hits that landed in the set's most-recently-used way (what a
     *  way predictor would have guessed; tracked under LRU policy). */
    Counter mru_hits;
    Counter misses;
    Counter bypasses;  //!< probes skipped on MNM "miss" verdicts
    Counter fills;
    Counter evictions;
    Counter writebacks;        //!< evictions of dirty blocks
    Counter writeback_probes;  //!< incoming writebacks checked here
    Counter writeback_absorbs; //!< ... that found the block and dirtied it

    double hitRate() const
    {
        return ratio(static_cast<double>(hits.value()),
                     static_cast<double>(accesses.value()));
    }
};

/**
 * One set-associative cache. Presence-only (no payload data); dirty bits
 * are tracked so writeback traffic can be counted.
 */
class Cache
{
  public:
    /**
     * @param params geometry and policy
     * @param seed   seed for the Random replacement policy stream
     */
    explicit Cache(const CacheParams &params, std::uint64_t seed = 1);

    /** Block address of a byte address under this cache's block size. */
    BlockAddr blockAddr(Addr addr) const { return addr >> block_bits_; }

    /** First byte address covered by @p block. */
    Addr byteAddr(BlockAddr block) const
    {
        return block << block_bits_;
    }

    /**
     * Probe for @p block. On a hit the replacement state is updated
     * (and the dirty bit set when @p is_write); stats are recorded.
     * No allocation happens on a miss: fills are separate (allocate on
     * fill path, as the hierarchy orchestrates).
     *
     * @return true on hit.
     */
    bool
    probe(BlockAddr block, bool is_write = false)
    {
        // Header-inline: the simulators call this once per request and
        // the build has no cross-TU inlining, so an out-of-line body
        // would put a call boundary on the single hottest path.
        ++stats_.accesses;
        std::size_t idx = findWay(block);
        if (idx == no_way) {
            ++stats_.misses;
            return false;
        }
        ++stats_.hits;
        if (params_.policy == ReplPolicy::Lru) {
            // MRU-way bookkeeping for the way-prediction comparison:
            // did the hit land in the most recently touched way of its
            // set? mru_way_ tracks the max-stamp valid way exactly, so
            // this is one compare instead of an O(ways) stamp scan per
            // hit.
            std::uint32_t set = setIndex(block);
            std::uint32_t way = static_cast<std::uint32_t>(
                idx - static_cast<std::size_t>(set) * num_ways_);
            if (mru_way_[set] == way)
                ++stats_.mru_hits;
            stamps_[idx] = ++tick_;
            mruTouch(set, way);
        } else if (params_.policy == ReplPolicy::TreePlru) {
            std::uint32_t set = setIndex(block);
            std::uint32_t way = static_cast<std::uint32_t>(
                idx - static_cast<std::size_t>(set) * num_ways_);
            plruTouch(set, way);
        }
        if (is_write)
            state_[idx] |= line_dirty;
        return true;
    }

    /** Outcome of a fill attempt. */
    struct FillOutcome
    {
        /** False when the block was already resident (refill touch). */
        bool inserted = false;
        /** The evicted victim held modified data (needs writeback). */
        bool evicted_dirty = false;
        /** The victim evicted to make room, if any. */
        std::optional<BlockAddr> evicted;
    };

    /**
     * Allocate @p block, evicting a victim if the set is full. Filling
     * an already-resident block is a replacement-state touch, not an
     * insertion (inserted == false, no eviction).
     *
     * @p known_absent skips the residency re-check when the caller has
     * just probed this cache and missed (the hierarchy's fill path):
     * the walk proved absence, so re-scanning the set is pure waste.
     * Only pass true when absence is certain -- a wrong claim
     * duplicates the block.
     */
    FillOutcome fill(BlockAddr block, bool dirty = false,
                     bool known_absent = false);

    /** Presence test with no side effects (for oracles and checkers).
     *  Inline: the perfect-MNM oracle and the oracle soundness guard
     *  call this once per planned level per request. */
    bool contains(BlockAddr block) const
    {
        return findWay(block) != no_way;
    }

    /** Hint the tag row a coming probe/contains for @p block will
     *  scan. Costs two prefetch instructions and no tag comparison;
     *  the batch path issues it a fixed request distance ahead of the
     *  probe so the SoA tag stream is resident by then. */
    void
    prefetchSet(BlockAddr block) const
    {
        std::size_t base =
            static_cast<std::size_t>(setIndex(block)) * num_ways_;
        __builtin_prefetch(tags_.data() + base, 0, 1);
        __builtin_prefetch(state_.data() + base, 0, 1);
    }

    /** prefetchSet plus the replacement-stamp row: the hint for a set
     *  the caller expects to probe *and then fill on a miss* (the lane
     *  queue's L2+ descent), where the victim scan reads stamps_. */
    void
    prefetchSetFill(BlockAddr block) const
    {
        std::size_t base =
            static_cast<std::size_t>(setIndex(block)) * num_ways_;
        __builtin_prefetch(tags_.data() + base, 0, 1);
        __builtin_prefetch(state_.data() + base, 0, 1);
        __builtin_prefetch(stamps_.data() + base, 0, 1);
    }

    /**
     * An upper level wrote back @p block. If resident here the copy is
     * dirtied (absorbed); otherwise the writeback must travel further
     * down. Replacement state is not touched (writebacks are not
     * demand reuse).
     *
     * @return true when absorbed.
     */
    bool absorbWriteback(BlockAddr block);

    /** Record a bypassed probe (MNM said "miss"; no tag check done). */
    void noteBypass() { ++stats_.bypasses; }

    /** Outcome of an invalidation. */
    struct InvalidateOutcome
    {
        bool was_present = false;
        bool was_dirty = false;
    };

    /** Drop @p block if resident (back-invalidation support). */
    InvalidateOutcome invalidate(BlockAddr block);

    /** Invalidate every block. @return number of blocks dropped. */
    std::uint64_t flush();

    /** All resident block addresses (test/diagnostic aid; slow). */
    std::vector<BlockAddr> residentBlocks() const;

    /** Set index of @p block (public so the lane queue's pending-set
     *  conflict bitmap can mirror exactly the set a probe will scan). */
    std::uint32_t setIndex(BlockAddr block) const
    {
        return static_cast<std::uint32_t>(block & (num_sets_ - 1));
    }

    const CacheParams &params() const { return params_; }
    const CacheStats &stats() const { return stats_; }
    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t numWays() const { return num_ways_; }
    unsigned blockBits() const { return block_bits_; }
    std::uint64_t blocksResident() const { return resident_; }

  private:
    /** state_ bits. */
    static constexpr std::uint8_t line_valid = 1;
    static constexpr std::uint8_t line_dirty = 2;

    /** findWay(): no way holds the block. */
    static constexpr std::size_t no_way = ~std::size_t{0};

    /**
     * Flat line index of @p block, or no_way. The line arrays are
     * structure-of-arrays (tags/stamps/state split) so this scan
     * streams 8 bytes per way instead of a whole record; the state
     * byte is consulted only on a tag match, which keeps the common
     * miss scan single-stream. A stale tag on an invalidated way can
     * match first -- its state check fails and the scan continues to
     * the live copy.
     */
    std::size_t findWay(BlockAddr block) const
    {
        std::uint32_t set = setIndex(block);
        std::size_t base = static_cast<std::size_t>(set) * num_ways_;
        const BlockAddr *tags = tags_.data() + base;
        const std::uint8_t *state = state_.data() + base;
        for (std::uint32_t w = 0; w < num_ways_; ++w) {
            if (tags[w] == block && (state[w] & line_valid))
                return base + w;
        }
        return no_way;
    }
    std::uint32_t victimWay(std::uint32_t set);

    /** Sentinel for mru_way_: the set has no valid lines. */
    static constexpr std::uint32_t no_mru = ~std::uint32_t{0};

    /** LRU only: stamp @p way as the set's most recently used. */
    void
    mruTouch(std::uint32_t set, std::uint32_t way)
    {
        mru_way_[set] = way;
    }

    /** LRU only: re-derive the MRU way after invalidating it. */
    void recomputeMru(std::uint32_t set);

    /** Tree-PLRU helpers (valid when policy == TreePlru). */
    void plruTouch(std::uint32_t set, std::uint32_t way);
    std::uint32_t plruVictim(std::uint32_t set) const;

    CacheParams params_;
    std::uint32_t num_sets_;
    std::uint32_t num_ways_;
    unsigned block_bits_;
    /** Line storage, num_sets_ x num_ways_ row-major, split SoA so the
     *  tag scan, the LRU stamp scan, and the flush walk each touch
     *  only the bytes they need. */
    std::vector<BlockAddr> tags_;
    std::vector<std::uint64_t> stamps_; //!< LRU: last touch; FIFO: fill
    std::vector<std::uint8_t> state_;   //!< line_valid | line_dirty
    /** Tree-PLRU direction bits, one word per set (node i's bit). */
    std::vector<std::uint64_t> plru_bits_;
    /** LRU policy only: most-recently-touched valid way per set (or
     *  no_mru), kept exact at every stamp write so the mru_hits stat
     *  is O(1) per hit instead of an O(ways) stamp scan. Stamps are
     *  unique and monotone, so "last touched" == "max stamp". */
    std::vector<std::uint32_t> mru_way_;
    std::uint64_t tick_ = 0;  //!< replacement timestamp source
    std::uint64_t resident_ = 0;
    CacheStats stats_;
    Rng rng_;
};

} // namespace mnm

#endif // MNM_CACHE_CACHE_HH
