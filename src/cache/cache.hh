/**
 * @file
 * A single set-associative cache structure.
 *
 * This models the *contents* and *replacement behaviour* of one cache
 * (tag array semantics); latency and energy are attributed by the layers
 * above from the cache's configuration. The model is deliberately
 * data-free: only block presence matters for miss determination.
 */

#ifndef MNM_CACHE_CACHE_HH
#define MNM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace mnm
{

/** Replacement policy selection for a cache. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,
    /** Tree pseudo-LRU (requires power-of-two associativity): the
     *  policy real set-associative caches of the paper's era shipped
     *  with; cheaper state, near-LRU behaviour. */
    TreePlru,
};

/** Which request stream(s) a cache serves. */
enum class CacheSide
{
    Instr,
    Data,
    Unified,
};

/** Static configuration of one cache structure. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t capacity_bytes = 4 * 1024;
    /** Associativity; 0 selects fully associative. */
    std::uint32_t associativity = 1;
    std::uint32_t block_bytes = 32;
    /** Time to return data on a hit. */
    Cycles hit_latency = 1;
    /**
     * Time to determine a miss. 0 (the default) means "same as
     * hit_latency": the tag check takes the full access.
     */
    Cycles miss_latency = 0;
    ReplPolicy policy = ReplPolicy::Lru;

    Cycles missLatency() const
    {
        return miss_latency ? miss_latency : hit_latency;
    }
};

/** Event counts for one cache structure. */
struct CacheStats
{
    Counter accesses;  //!< probes actually performed (not bypassed)
    Counter hits;
    /** Hits that landed in the set's most-recently-used way (what a
     *  way predictor would have guessed; tracked under LRU policy). */
    Counter mru_hits;
    Counter misses;
    Counter bypasses;  //!< probes skipped on MNM "miss" verdicts
    Counter fills;
    Counter evictions;
    Counter writebacks;        //!< evictions of dirty blocks
    Counter writeback_probes;  //!< incoming writebacks checked here
    Counter writeback_absorbs; //!< ... that found the block and dirtied it

    double hitRate() const
    {
        return ratio(static_cast<double>(hits.value()),
                     static_cast<double>(accesses.value()));
    }
};

/**
 * One set-associative cache. Presence-only (no payload data); dirty bits
 * are tracked so writeback traffic can be counted.
 */
class Cache
{
  public:
    /**
     * @param params geometry and policy
     * @param seed   seed for the Random replacement policy stream
     */
    explicit Cache(const CacheParams &params, std::uint64_t seed = 1);

    /** Block address of a byte address under this cache's block size. */
    BlockAddr blockAddr(Addr addr) const { return addr >> block_bits_; }

    /** First byte address covered by @p block. */
    Addr byteAddr(BlockAddr block) const
    {
        return block << block_bits_;
    }

    /**
     * Probe for @p block. On a hit the replacement state is updated
     * (and the dirty bit set when @p is_write); stats are recorded.
     * No allocation happens on a miss: fills are separate (allocate on
     * fill path, as the hierarchy orchestrates).
     *
     * @return true on hit.
     */
    bool probe(BlockAddr block, bool is_write = false);

    /** Outcome of a fill attempt. */
    struct FillOutcome
    {
        /** False when the block was already resident (refill touch). */
        bool inserted = false;
        /** The evicted victim held modified data (needs writeback). */
        bool evicted_dirty = false;
        /** The victim evicted to make room, if any. */
        std::optional<BlockAddr> evicted;
    };

    /**
     * Allocate @p block, evicting a victim if the set is full. Filling
     * an already-resident block is a replacement-state touch, not an
     * insertion (inserted == false, no eviction).
     */
    FillOutcome fill(BlockAddr block, bool dirty = false);

    /** Presence test with no side effects (for oracles and checkers).
     *  Inline: the perfect-MNM oracle and the oracle soundness guard
     *  call this once per planned level per request. */
    bool contains(BlockAddr block) const
    {
        return findLine(block) != nullptr;
    }

    /**
     * An upper level wrote back @p block. If resident here the copy is
     * dirtied (absorbed); otherwise the writeback must travel further
     * down. Replacement state is not touched (writebacks are not
     * demand reuse).
     *
     * @return true when absorbed.
     */
    bool absorbWriteback(BlockAddr block);

    /** Record a bypassed probe (MNM said "miss"; no tag check done). */
    void noteBypass() { ++stats_.bypasses; }

    /** Outcome of an invalidation. */
    struct InvalidateOutcome
    {
        bool was_present = false;
        bool was_dirty = false;
    };

    /** Drop @p block if resident (back-invalidation support). */
    InvalidateOutcome invalidate(BlockAddr block);

    /** Invalidate every block. @return number of blocks dropped. */
    std::uint64_t flush();

    /** All resident block addresses (test/diagnostic aid; slow). */
    std::vector<BlockAddr> residentBlocks() const;

    const CacheParams &params() const { return params_; }
    const CacheStats &stats() const { return stats_; }
    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t numWays() const { return num_ways_; }
    unsigned blockBits() const { return block_bits_; }
    std::uint64_t blocksResident() const { return resident_; }

  private:
    struct Line
    {
        BlockAddr tag = 0;
        std::uint64_t stamp = 0; //!< LRU: last touch; FIFO: fill time
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setIndex(BlockAddr block) const
    {
        return static_cast<std::uint32_t>(block & (num_sets_ - 1));
    }

    Line *findLine(BlockAddr block)
    {
        std::uint32_t set = setIndex(block);
        Line *base = &lines_[static_cast<std::size_t>(set) * num_ways_];
        for (std::uint32_t w = 0; w < num_ways_; ++w) {
            if (base[w].valid && base[w].tag == block)
                return &base[w];
        }
        return nullptr;
    }
    const Line *findLine(BlockAddr block) const
    {
        return const_cast<Cache *>(this)->findLine(block);
    }
    std::uint32_t victimWay(std::uint32_t set);

    /** Tree-PLRU helpers (valid when policy == TreePlru). */
    void plruTouch(std::uint32_t set, std::uint32_t way);
    std::uint32_t plruVictim(std::uint32_t set) const;

    CacheParams params_;
    std::uint32_t num_sets_;
    std::uint32_t num_ways_;
    unsigned block_bits_;
    std::vector<Line> lines_; //!< num_sets_ x num_ways_, row-major
    /** Tree-PLRU direction bits, one word per set (node i's bit). */
    std::vector<std::uint64_t> plru_bits_;
    std::uint64_t tick_ = 0;  //!< replacement timestamp source
    std::uint64_t resident_ = 0;
    CacheStats stats_;
    Rng rng_;
};

} // namespace mnm

#endif // MNM_CACHE_CACHE_HH
