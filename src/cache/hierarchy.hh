/**
 * @file
 * Multi-level cache hierarchy with MNM bypass support.
 *
 * Models the paper's arrangement: optionally split instruction/data
 * structures at the first level(s), unified caches below, and a flat
 * memory behind the last level. Caches are NON-inclusive (an eviction at
 * level i does not back-invalidate level i-1), matching the paper's
 * explicit assumption in Section 3.
 *
 * An access descends level by level. For each cache the caller may have
 * set a bypass bit (the MNM's "miss" verdict is tagged onto the request,
 * paper Section 2): a bypassed cache performs no tag probe and charges
 * no probe latency/energy. When the data is located at level n, the
 * block is allocated into every level 1..n-1 on the fill path
 * (allocate-on-fill), and each placement/replacement is reported to the
 * registered listener -- exactly the bookkeeping feed the MNM requires.
 *
 * The descent itself is compiled at construction: each access-type path
 * (I-stream vs D-stream) is flattened into a contiguous array of POD
 * WalkSteps carrying the per-cache probe constants, so the hot walk is
 * a tight loop over steps with the BypassMask applied as a raw skip
 * mask rather than a per-level test() call, and the fill path allocates
 * from the same plan. Placement/replacement notifications are batched
 * into a small per-access event ring drained through one
 * onEventBatch() call (see setBatchedFeed); the per-event virtual path
 * survives as the equivalence reference (MNM_REFERENCE_FEED=1).
 */

#ifndef MNM_CACHE_HIERARCHY_HH
#define MNM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace mnm
{

/** Kind of request presented to the hierarchy. */
enum class AccessType
{
    InstFetch,
    Load,
    Store,
};

/** Configuration of one hierarchy level. */
struct LevelParams
{
    /** Split instruction/data structures at this level? */
    bool split = false;
    /** Unified (or data-side when split) cache. */
    CacheParams data;
    /** Instruction-side cache; only used when split. */
    CacheParams instr;
};

/** Multi-level content relationship. */
enum class InclusionPolicy
{
    /** The paper's assumption (Section 3): evictions at level i leave
     *  upper-level copies alone. */
    NonInclusive,
    /** Strict inclusion: an eviction at level i back-invalidates every
     *  covered block in the caches above it (dirty upper data folds
     *  into the victim's writeback). */
    Inclusive,
};

/** Configuration of a whole hierarchy. */
struct HierarchyParams
{
    std::vector<LevelParams> levels;
    /** Latency of main memory behind the last level. */
    Cycles memory_latency = 320;
    InclusionPolicy inclusion = InclusionPolicy::NonInclusive;
    /**
     * Propagate dirty evictions down the hierarchy (write-back,
     * non-allocating: the writeback is absorbed by the first lower
     * level holding the block, else it drains to memory). Writebacks
     * ride the write buffers, so they cost energy but no request
     * latency.
     */
    bool model_writebacks = true;
};

/** Identifier of one cache structure inside a hierarchy. */
using CacheId = std::uint32_t;

/** Kind of one batched cache bookkeeping event. */
enum class CacheEventKind : std::uint8_t
{
    Placement,
    Replacement,
};

/** One fill/eviction record in the batched update feed. @c block is at
 *  the granularity of cache @c cache's block size. */
struct CacheEvent
{
    BlockAddr block;
    CacheId cache;
    CacheEventKind kind;
};

/** Receives placement/replacement notifications (the MNM feed). */
class CacheEventListener
{
  public:
    virtual ~CacheEventListener() = default;

    /** @p block is at the granularity of cache @p id's block size. */
    virtual void onPlacement(CacheId id, BlockAddr block) = 0;
    virtual void onReplacement(CacheId id, BlockAddr block) = 0;
    virtual void onFlush(CacheId id) { (void)id; }

    /**
     * Batched feed: one call delivers every event of an access burst in
     * walk order (replacement before the placement that caused it, as
     * the paper's Table 1 scenarios require). The default unbatches
     * into the per-event virtuals so listeners that never opted in
     * observe identical behaviour.
     */
    virtual void
    onEventBatch(const CacheEvent *events, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            if (events[i].kind == CacheEventKind::Placement)
                onPlacement(events[i].cache, events[i].block);
            else
                onReplacement(events[i].cache, events[i].block);
        }
    }
};

/** One queued L1-missing request awaiting the batched L2+ descent
 *  (CacheHierarchy::descendLanes). */
struct DescentLane
{
    Addr addr;
    AccessType type;
};

/** Per-cache bypass verdicts for one access (bit set => skip probe). */
class BypassMask
{
  public:
    BypassMask() = default;
    /** Adopt a raw verdict bit vector (bit i = cache id i); the SoA
     *  kernels compute whole masks at once rather than bit by bit. */
    explicit BypassMask(std::uint32_t raw) : mask_(raw) {}

    void set(CacheId id) { mask_ |= (1u << id); }
    bool test(CacheId id) const { return (mask_ >> id) & 1u; }
    void clear() { mask_ = 0; }
    std::uint32_t raw() const { return mask_; }

  private:
    std::uint32_t mask_ = 0;
};

/** What happened at one cache during an access. No default member
 *  initializers: AccessResult embeds arrays of these, and zeroing the
 *  full arrays per access would cost more than the access itself for
 *  L1 hits. Only entries below num_probes/num_writebacks are written
 *  and read. */
struct ProbeRecord
{
    CacheId cache;
    std::uint8_t level;
    bool bypassed;
    bool hit;
};

/** One hop of a writeback chain triggered by this access. */
struct WritebackRecord
{
    CacheId cache;
    /** The block was found and dirtied here (chain ends). */
    bool absorbed;
};

/** Outcome of one hierarchy access. */
struct AccessResult
{
    // One probe per cache on the access path plus the memory slot:
    // sized for the 32-structure BypassMask ceiling so hierarchy depth
    // is bounded by the mask, not by this record.
    static constexpr std::size_t max_probes = 34;
    // Every filled level can evict a dirty victim whose writeback
    // drains one hop per lower level, so one access produces at most
    // sum_{L=1}^{n}(n-L) = n(n-1)/2 hops; n <= 32 gives 496.
    static constexpr std::size_t max_writebacks = 496;

    /** 1-based level that supplied the data; levels()+1 means memory. */
    std::uint8_t supply_level = 0;
    bool from_memory = false;
    /** Data access time for this request (paper Section 1.1). */
    Cycles latency = 0;
    /** Hit latency of the supplying structure (memory latency when
     *  from_memory); saves the caller a cacheAt() walk per request. */
    Cycles supply_latency = 0;
    std::uint8_t num_probes = 0;
    ProbeRecord probes[max_probes];
    /** Writeback hops this access triggered (off the critical path). */
    std::uint16_t num_writebacks = 0;
    WritebackRecord writebacks[max_writebacks];
    /** Dirty blocks that drained all the way to memory. */
    std::uint8_t memory_writebacks = 0;

    void
    addProbe(const ProbeRecord &rec)
    {
        // Depth is bounded by the BypassMask ceiling at construction,
        // so running out of probe slots is a logic bug, not a
        // configuration problem. Never drop records silently: every
        // probe feeds energy/event accounting.
        MNM_ASSERT(num_probes < max_probes,
                   "AccessResult probe record overflow");
        probes[num_probes++] = rec;
    }

    void
    addWriteback(const WritebackRecord &rec)
    {
        MNM_ASSERT(num_writebacks < max_writebacks,
                   "AccessResult writeback record overflow");
        writebacks[num_writebacks++] = rec;
    }
};

/**
 * The hierarchy. Construct from params, optionally attach a listener
 * (the MNM), then stream accesses through access().
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params,
                            std::uint64_t seed = 1);

    /** Number of levels (the paper's "memory_levels" minus memory). */
    std::uint32_t levels() const
    {
        return static_cast<std::uint32_t>(params_.levels.size());
    }

    /** Total distinct cache structures (paper: 7 for the 5-level cfg). */
    std::uint32_t numCaches() const
    {
        return static_cast<std::uint32_t>(caches_.size());
    }

    /** The cache serving @p type at @p level (1-based). */
    Cache &cacheAt(std::uint32_t level, AccessType type);
    const Cache &cacheAt(std::uint32_t level, AccessType type) const;

    /** Cache by flat id. */
    Cache &cache(CacheId id) { return *caches_[id]; }
    const Cache &cache(CacheId id) const { return *caches_[id]; }

    /** 1-based level of cache @p id. */
    std::uint32_t levelOf(CacheId id) const { return level_of_[id]; }

    /** Ids of all caches on the path of @p type, ordered by level. */
    const std::vector<CacheId> &path(AccessType type) const
    {
        return type == AccessType::InstFetch ? instr_path_ : data_path_;
    }

    /** True if cache @p id serves level-1 requests. */
    bool isLevel1(CacheId id) const { return level_of_[id] == 1; }

    /** Attach the placement/replacement listener (one at a time). */
    void setListener(CacheEventListener *listener)
    {
        listener_ = listener;
    }

    /**
     * Deliver placement/replacement events through the per-access ring
     * and one onEventBatch() call instead of per-event virtuals. Off by
     * default; MnmUnit switches it on (and MNM_REFERENCE_FEED=1
     * switches it back off for the byte-diff reference).
     */
    void setBatchedFeed(bool on) { batched_feed_ = on; }
    bool batchedFeed() const { return batched_feed_; }

    /**
     * Perform one access.
     *
     * @param type   request stream (selects the I- or D-path)
     * @param addr   byte address
     * @param bypass per-cache MNM verdicts; bypassed caches are skipped
     */
    AccessResult access(AccessType type, Addr addr,
                        const BypassMask &bypass = BypassMask());

    /**
     * Continue an access whose level-1 probe the caller already
     * performed and saw miss (the batch path's L1-probe fast path).
     * Seeds the level-1 miss record and its latency, then descends
     * from level 2 exactly as access() would have -- including the
     * level-1 fill on the way back. @p bypass must not cover level 1
     * (the caller probed it for real).
     */
    AccessResult accessBelowL1(AccessType type, Addr addr,
                               const BypassMask &bypass);

    /** Below-L1 plan levels prefetchDescent() hints (L2 and L3: where
     *  nearly all L1 misses resolve; deeper rows would mostly be
     *  wasted hint traffic). */
    static constexpr std::size_t descent_prefetch_levels = 2;
    /** descendLanes(): lanes of in-loop re-hint lookahead. */
    static constexpr std::size_t descent_lookahead = 2;

    /** Hint the set rows (tags/state/stamps) the first
     *  descent_prefetch_levels below-L1 steps of @p type's compiled
     *  plan will scan for @p addr. The lane queue issues this at
     *  enqueue time, giving the eventual walk the full queue-residency
     *  distance to cover the rows' miss latency. Hint-only: never
     *  affects correctness. */
    void prefetchDescent(AccessType type, Addr addr) const;

    /**
     * Batched descent: run the compiled walk plan over a queue of
     * L1-missed lanes, in order. Per lane, @p verdict
     * (BypassMask(const DescentLane&)) is invoked immediately before
     * the walk -- verdicts must see every prior lane's fills and feed
     * updates, so they cannot be precomputed -- and @p consume
     * (void(const DescentLane&, const AccessResult&)) immediately
     * after. Each lane behaves exactly like accessBelowL1() with the
     * same mask: the event ring still drains per walk, so
     * replacement-before-placement order is preserved per access and
     * lane i+1's verdict observes lane i's updates. The batching
     * amortizes plan entry and re-hints lane i+descent_lookahead's
     * set rows while lane i walks.
     */
    template <typename VerdictFn, typename ConsumeFn>
    void
    descendLanes(const DescentLane *lanes, std::size_t n,
                 VerdictFn &&verdict, ConsumeFn &&consume)
    {
        for (std::size_t i = 0; i < n; ++i) {
            if (i + descent_lookahead < n) {
                const DescentLane &f = lanes[i + descent_lookahead];
                prefetchDescent(f.type, f.addr);
            }
            const DescentLane &lane = lanes[i];
            AccessResult access =
                walk(lane.type, lane.addr, verdict(lane), true);
            consume(lane, access);
        }
    }

    /** Flush every cache (notifies the listener per cache). */
    void flushAll();

    const HierarchyParams &params() const { return params_; }
    Cycles memoryLatency() const { return params_.memory_latency; }

    /** Accesses that reached memory. */
    std::uint64_t memoryAccesses() const { return memory_accesses_; }

    /** Dirty blocks written back all the way to memory. */
    std::uint64_t memoryWritebacks() const { return memory_writebacks_; }

    /** Human-readable topology summary. */
    std::string describe() const;

  private:
    /** One compiled descent step: everything the hot walk needs about a
     *  cache, laid out contiguously in descent order. */
    struct WalkStep
    {
        Cache *cache;
        std::uint32_t bit; //!< 1u << id, for raw skip-mask tests
        CacheId id;
        std::uint8_t level;       //!< 1-based
        unsigned block_bits;      //!< addr >> block_bits = block
        Cycles hit_latency;
        Cycles miss_latency;      //!< resolved missLatency()
    };

    HierarchyParams params_;
    std::vector<std::unique_ptr<Cache>> caches_;
    std::vector<std::uint32_t> level_of_;
    std::vector<CacheId> instr_path_; //!< cache id per level, I-stream
    std::vector<CacheId> data_path_;  //!< cache id per level, D-stream
    std::vector<WalkStep> instr_plan_; //!< compiled I-stream descent
    std::vector<WalkStep> data_plan_;  //!< compiled D-stream descent
    CacheEventListener *listener_ = nullptr;
    bool batched_feed_ = false;
    std::uint64_t memory_accesses_ = 0;
    std::uint64_t memory_writebacks_ = 0;

    /** Per-access event ring: drained into onEventBatch() before
     *  access() returns (and mid-access if it ever fills), so the
     *  listener observes every event of the burst in walk order. */
    static constexpr std::size_t event_ring_capacity = 64;
    CacheEvent event_ring_[event_ring_capacity];
    std::size_t num_events_ = 0;

    /** Compile instr_plan_/data_plan_ from the constructed paths. */
    void compileWalkPlans();

    /** The shared descent/fill engine behind access() and
     *  accessBelowL1(): @p l1_missed preseeds the level-1 miss record
     *  and starts the descent at level 2. */
    AccessResult walk(AccessType type, Addr addr,
                      const BypassMask &bypass, bool l1_missed);

    void
    emitEvent(CacheId id, BlockAddr block, CacheEventKind kind)
    {
        if (num_events_ == event_ring_capacity)
            drainEvents();
        event_ring_[num_events_++] = CacheEvent{block, id, kind};
    }

    void
    drainEvents()
    {
        if (num_events_ == 0)
            return;
        listener_->onEventBatch(event_ring_, num_events_);
        num_events_ = 0;
    }

    /** Drain one dirty victim from @p from_level towards memory. */
    void writeback(const std::vector<CacheId> &route,
                   std::uint32_t from_level, Addr victim_addr,
                   AccessResult &result);

    /**
     * Inclusive mode: drop every copy of @p victim in caches above
     * @p below_level (notifying the listener).
     * @return true if any dropped copy was dirty.
     */
    bool backInvalidate(std::uint32_t below_level, Addr victim,
                        std::uint32_t victim_bytes);
};

inline void
CacheHierarchy::prefetchDescent(AccessType type, Addr addr) const
{
    const std::vector<WalkStep> &plan =
        type == AccessType::InstFetch ? instr_plan_ : data_plan_;
    const std::size_t last =
        plan.size() < 1 + descent_prefetch_levels
            ? plan.size()
            : 1 + descent_prefetch_levels;
    for (std::size_t i = 1; i < last; ++i) {
        const WalkStep &st = plan[i];
        st.cache->prefetchSetFill(addr >> st.block_bits);
    }
}

} // namespace mnm

#endif // MNM_CACHE_HIERARCHY_HH
