/**
 * @file
 * Shared plumbing for the benchmark harnesses in bench/.
 *
 * Every bench sweeps the same twenty SPEC2000-like workloads; the
 * instruction budget and the workload subset are controlled by
 * environment variables so a quick run and a paper-scale run use the
 * same binaries:
 *
 *   MNM_INSTRUCTIONS  instructions per workload (default 2,000,000)
 *   MNM_APPS          comma-separated workload names (default: all 20)
 *   MNM_CSV           set to 1 to also emit CSV after each table
 *   MNM_JOBS          sweep worker threads (default: all hardware
 *                     threads; 1 = legacy serial path)
 *   MNM_PROGRESS      set to 1 to report per-cell completion (with an
 *                     ETA projection) on stderr
 *   MNM_STATS_JSON    path; write the machine-readable run manifest
 *                     (config echo + every registry metric) at exit
 *   MNM_TRACE_FILE    path; write a Chrome trace_event timeline of the
 *                     sweep (one complete event per cell) at exit
 *
 * The two telemetry knobs never touch stdout: with them unset the
 * printed tables are byte-identical to a build without this layer.
 */

#ifndef MNM_SIM_EXPERIMENT_HH
#define MNM_SIM_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "core/mnm_unit.hh"
#include "sim/memory_sim.hh"

namespace mnm
{

/** Environment-derived run options. */
struct ExperimentOptions
{
    std::uint64_t instructions = 2'000'000;
    std::vector<std::string> apps;
    bool csv = false;
    /** Sweep worker threads (sim/runner.hh); 1 = serial. */
    unsigned jobs = 1;
    /** Report per-cell sweep completion via progress(). */
    bool progress = false;
    /** Run-manifest path (MNM_STATS_JSON); empty = disabled. */
    std::string stats_json;
    /** Chrome trace path (MNM_TRACE_FILE); empty = disabled. */
    std::string trace_file;

    /** Parse MNM_INSTRUCTIONS / MNM_APPS / MNM_CSV / MNM_JOBS /
     *  MNM_PROGRESS / MNM_STATS_JSON / MNM_TRACE_FILE; also arms the
     *  obs layer's exit-time manifest/trace writers. */
    static ExperimentOptions fromEnv();

    /** Short app label for table rows ("164.gzip" -> "gzip"). */
    static std::string shortName(const std::string &app);
};

/**
 * Run one workload through a fresh functional simulator: a warm-up
 * window (10% of the budget, accounting discarded) followed by the
 * measured window.
 */
MemSimResult runFunctional(const HierarchyParams &hierarchy,
                           const std::optional<MnmSpec> &mnm,
                           const std::string &app,
                           std::uint64_t instructions);

} // namespace mnm

#endif // MNM_SIM_EXPERIMENT_HH
