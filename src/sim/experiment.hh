/**
 * @file
 * Shared plumbing for the benchmark harnesses in bench/.
 *
 * Every bench sweeps the same twenty SPEC2000-like workloads; the
 * instruction budget and the workload subset are controlled by
 * environment variables so a quick run and a paper-scale run use the
 * same binaries:
 *
 *   MNM_INSTRUCTIONS  instructions per workload (default 2,000,000)
 *   MNM_APPS          comma-separated workload names (default: all 20)
 *   MNM_CSV           set to 1 to also emit CSV after each table
 *   MNM_JOBS          sweep worker threads (default: all hardware
 *                     threads; 1 = legacy serial path)
 *   MNM_WORKERS       sweep worker *processes* (default 0 = stay in
 *                     process). N >= 1 makes runSweep a supervisor
 *                     forking N crash-contained workers (sim/
 *                     proc_pool): SIGSEGV/SIGKILL/hangs cost one cell,
 *                     never the sweep, and output stays byte-identical
 *                     to MNM_JOBS threading and to serial
 *   MNM_POISON_LIMIT  consecutive worker deaths one cell may cause
 *                     before it is declared poison and rendered
 *                     <failed> instead of crash-looping the pool
 *                     (default 3)
 *   MNM_WORKER_BACKOFF_MS  base delay before respawning a dead worker
 *                     process; doubles per consecutive death
 *                     (default 100)
 *   MNM_PROGRESS      set to 1 to report per-cell completion (with an
 *                     ETA projection) on stderr
 *   MNM_STATS_JSON    path; write the machine-readable run manifest
 *                     (config echo + every registry metric) at exit
 *   MNM_TRACE_FILE    path; write a Chrome trace_event timeline of the
 *                     sweep (one complete event per cell) at exit
 *   MNM_CHECKPOINT    path; journal each completed sweep cell and
 *                     replay finished cells on restart (sim/recovery)
 *   MNM_RETRIES       extra attempts for a cell whose simulation
 *                     throws (default 1; watchdog timeouts never
 *                     retry)
 *   MNM_CELL_TIMEOUT_S  per-cell watchdog in seconds (default: no
 *                     timeout). Cooperative under MNM_JOBS (the cell
 *                     must poll); a real supervisor-enforced SIGKILL
 *                     deadline under MNM_WORKERS
 *   MNM_FAIL_CELL     testing: kill any cell whose "app · label"
 *                     contains the substring. "<substr>" throws (the
 *                     thread-containable failure); "<substr>:<mode>"
 *                     with segv, abort, exit:<code>, or hang raises
 *                     the process-fatal failures only MNM_WORKERS
 *                     contains (core/fault_inject.hh)
 *   MNM_REFERENCE_KERNEL  set to 1 to run functional cells through
 *                     the single-step virtual reference kernel (CI
 *                     byte-diffs it against the batched default)
 *   MNM_REFERENCE_FEED  set to 1 to drive the MNM update feed through
 *                     the per-event virtual listeners instead of the
 *                     batched event ring + update kernels (CI
 *                     byte-diffs it against the batched default)
 *   MNM_PROF          off (default) | time | hw: per-phase attribution
 *                     of the simulator's own cost (batch generation,
 *                     L1-peek, verdict kernel, hierarchy walk, update
 *                     feed), folded into the manifest and the sweep
 *                     trace; hw reads real perf_event counters and
 *                     degrades to time where unavailable
 *                     (obs/phase_profiler.hh)
 *   MNM_PROF_FOLDED   path; also write flamegraph.pl collapsed stacks
 *                     at exit (fatal without an active MNM_PROF)
 *
 * Every knob is validated on parse: a non-numeric or out-of-range
 * value is a one-line fatal() naming the variable, not a silent
 * fallback. The telemetry, recovery, and profiling knobs never touch
 * stdout: with them unset the printed tables are byte-identical to a
 * build without these layers.
 */

#ifndef MNM_SIM_EXPERIMENT_HH
#define MNM_SIM_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "core/fault_inject.hh"
#include "core/mnm_unit.hh"
#include "sim/memory_sim.hh"

namespace mnm
{

/** Environment-derived run options. */
struct ExperimentOptions
{
    std::uint64_t instructions = 2'000'000;
    std::vector<std::string> apps;
    bool csv = false;
    /** Sweep worker threads (sim/runner.hh); 1 = serial. */
    unsigned jobs = 1;
    /** Sweep worker processes (MNM_WORKERS, sim/proc_pool.hh);
     *  0 = in-process execution via the thread pool. */
    unsigned workers = 0;
    /** Consecutive worker deaths one cell may cause before it is
     *  declared poison (MNM_POISON_LIMIT). */
    unsigned poison_limit = 3;
    /** Base worker-respawn backoff in ms (MNM_WORKER_BACKOFF_MS);
     *  doubles per consecutive death. */
    unsigned worker_backoff_ms = 100;
    /** Report per-cell sweep completion via progress(). */
    bool progress = false;
    /** Run-manifest path (MNM_STATS_JSON); empty = disabled. */
    std::string stats_json;
    /** Chrome trace path (MNM_TRACE_FILE); empty = disabled. */
    std::string trace_file;
    /** Checkpoint-journal path (MNM_CHECKPOINT); empty = disabled. */
    std::string checkpoint;
    /** Extra attempts for a throwing cell (MNM_RETRIES). */
    unsigned retries = 1;
    /** Per-cell watchdog budget in seconds (MNM_CELL_TIMEOUT_S);
     *  0 = no watchdog. */
    double cell_timeout_s = 0.0;
    /** Cell fault injection (MNM_FAIL_CELL); match empty = disabled. */
    CellFaultSpec fail_cell;

    /** Parse and validate every MNM_* knob listed in the file comment;
     *  also arms the obs layer's exit-time manifest/trace writers. */
    static ExperimentOptions fromEnv();

    /** Short app label for table rows ("164.gzip" -> "gzip"). */
    static std::string shortName(const std::string &app);
};

/**
 * Run one workload through a fresh functional simulator: a warm-up
 * window (10% of the budget, accounting discarded) followed by the
 * measured window.
 *
 * MNM_REFERENCE_KERNEL=1 forces the single-step virtual reference
 * kernel instead of the batched verdict-plan one -- CI byte-diffs a
 * bench's stdout across the two to prove the hot path changes nothing.
 * MNM_REFERENCE_FEED=1 does the same for the update side: per-event
 * virtual listeners instead of the batched event ring.
 */
MemSimResult runFunctional(const HierarchyParams &hierarchy,
                           const std::optional<MnmSpec> &mnm,
                           const std::string &app,
                           std::uint64_t instructions);

} // namespace mnm

#endif // MNM_SIM_EXPERIMENT_HH
