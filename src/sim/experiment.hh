/**
 * @file
 * Shared plumbing for the benchmark harnesses in bench/.
 *
 * Every bench sweeps the same twenty SPEC2000-like workloads; the
 * instruction budget and the workload subset are controlled by
 * environment variables so a quick run and a paper-scale run use the
 * same binaries:
 *
 *   MNM_INSTRUCTIONS  instructions per workload (default 2,000,000)
 *   MNM_APPS          comma-separated workload names (default: all 20)
 *   MNM_CSV           set to 1 to also emit CSV after each table
 *   MNM_JOBS          sweep worker threads (default: all hardware
 *                     threads; 1 = legacy serial path)
 *   MNM_PROGRESS      set to 1 to report per-cell completion on stderr
 */

#ifndef MNM_SIM_EXPERIMENT_HH
#define MNM_SIM_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "core/mnm_unit.hh"
#include "sim/memory_sim.hh"

namespace mnm
{

/** Environment-derived run options. */
struct ExperimentOptions
{
    std::uint64_t instructions = 2'000'000;
    std::vector<std::string> apps;
    bool csv = false;
    /** Sweep worker threads (sim/runner.hh); 1 = serial. */
    unsigned jobs = 1;
    /** Report per-cell sweep completion via progress(). */
    bool progress = false;

    /** Parse MNM_INSTRUCTIONS / MNM_APPS / MNM_CSV / MNM_JOBS /
     *  MNM_PROGRESS. */
    static ExperimentOptions fromEnv();

    /** Short app label for table rows ("164.gzip" -> "gzip"). */
    static std::string shortName(const std::string &app);
};

/**
 * Run one workload through a fresh functional simulator: a warm-up
 * window (10% of the budget, accounting discarded) followed by the
 * measured window.
 */
MemSimResult runFunctional(const HierarchyParams &hierarchy,
                           const std::optional<MnmSpec> &mnm,
                           const std::string &app,
                           std::uint64_t instructions);

} // namespace mnm

#endif // MNM_SIM_EXPERIMENT_HH
