/**
 * @file
 * Process-isolated sweep execution: the MNM_WORKERS supervisor.
 *
 * The thread pool in sim/runner.hh contains *exceptions* — a cell that
 * throws fails alone — but nothing in-process can contain a SIGSEGV, a
 * std::abort(), an exit() from library code, or a cell that simply
 * never returns: any of those takes the whole sweep (and every
 * already-computed cell) with it. MNM_WORKERS=N moves the blast radius
 * one process boundary out: runSweep() becomes a single-threaded
 * supervisor that forks N worker processes and feeds them cells over
 * pipes, so the worst any cell can do is kill its worker.
 *
 * Protocol (all pipe traffic is length-prefixed frames: a 4-byte
 * little-endian payload length, then the payload):
 *
 *   supervisor -> worker: 8-byte command {u32 cell index, u32 attempt}.
 *     The worker inherited the full cell vector across fork(), so the
 *     index is the whole job description. EOF on the command pipe is
 *     the shutdown signal: the worker _Exit(0)s.
 *   worker -> supervisor: one JSON response per command, either
 *     {"index":N,"dur_us":D,"result":{...}} (the exact
 *     sim/recovery.hh writeMemSimResult encoding, so replayed and
 *     pipe-delivered results are bit-identical) or
 *     {"index":N,"error":"what()"} for a contained exception. With
 *     MNM_PROF active the success response also carries a
 *     "prof":[[...8 counters...] x num_phases] block -- the cell's
 *     per-phase attribution delta, measured in the worker (profiler
 *     state is per-process) and folded by the supervisor into the
 *     same prof.cell.* / prof.worker.w<k>.* metrics the thread pool
 *     produces.
 *
 * Determinism: the supervisor writes each result into results[index]
 * of the same pre-sized vector the thread path uses, and the simulator
 * itself is deterministic, so stdout and the manifest's "sweep.*"
 * subtree are byte-identical across serial, MNM_JOBS, and MNM_WORKERS
 * runs — including runs where workers were killed mid-cell, because a
 * re-issued cell recomputes the identical result.
 *
 * Fault handling:
 *   - worker death (signal or nonzero exit) while a cell was in
 *     flight: the cell is re-issued to a respawned worker; a cell that
 *     kills MNM_POISON_LIMIT successive workers is declared poison and
 *     rendered <failed> (cause "poison") instead of crash-looping.
 *   - MNM_CELL_TIMEOUT_S: a *real* deadline — the supervisor SIGKILLs
 *     the worker when it expires (no cooperation from the cell
 *     needed, unlike the thread path's polled watchdog). Timed-out
 *     cells fail with cause "timeout" and are never re-issued.
 *   - a worker-reported error (the cell threw) is retried
 *     MNM_RETRIES times like the thread path, then fails with cause
 *     "retry_exhausted".
 *   - dead workers are respawned with exponential backoff
 *     (MNM_WORKER_BACKOFF_MS base, doubling per consecutive death).
 *
 * Journal integration: with MNM_CHECKPOINT active the supervisor
 * appends a "lease" record when it issues a cell and the "result"
 * record only after the response arrived, so a killed supervisor's
 * journal shows exactly which cells were in flight (leased but
 * uncommitted — they simply re-run on resume), plus "respawn" and
 * "poison" audit records. tools/extract_results.py --journal
 * summarizes all of it.
 */

#ifndef MNM_SIM_PROC_POOL_HH
#define MNM_SIM_PROC_POOL_HH

#include <string>
#include <vector>

#include "obs/phase_profiler.hh"
#include "sim/runner.hh"

namespace mnm
{

class CheckpointJournal;

/**
 * Supervisor entry, called by runSweep() when opts.workers >= 1: run
 * every cell with replayed[i] == 0 on a pool of opts.workers forked
 * worker processes. Fills results[i] (delivered result, or a failed
 * MemSimResult recorded via recordSweepCellFailure()) and timing[i]
 * for every executed cell; with MNM_PROF active, cell_prof[i] receives
 * the worker-measured per-phase attribution delta shipped in the
 * response frame. @p fingerprints must hold one
 * cellFingerprint() per cell (lease keying); @p journal may be null
 * (no checkpointing — leases are not recorded but execution is
 * identical).
 *
 * Must be called from a single-threaded process state (runSweep
 * guarantees this): the workers are created with fork(), and forking a
 * multi-threaded process would deadlock on cloned lock state.
 */
void runSweepProcPool(const std::vector<SweepCell> &cells,
                      const ExperimentOptions &opts,
                      const std::vector<std::string> &fingerprints,
                      const std::vector<char> &replayed,
                      CheckpointJournal *journal,
                      std::vector<MemSimResult> &results,
                      std::vector<SweepCellTiming> &timing,
                      std::vector<PhaseTotals> &cell_prof);

} // namespace mnm

#endif // MNM_SIM_PROC_POOL_HH
