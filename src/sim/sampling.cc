#include "sim/sampling.hh"

#include "util/logging.hh"

namespace mnm
{

namespace
{

/** Fold one window's accounting into the combined result. */
void
merge(MemSimResult &into, const MemSimResult &window)
{
    into.instructions += window.instructions;
    into.requests += window.requests;
    into.data_requests += window.data_requests;
    into.fetch_requests += window.fetch_requests;
    into.total_access_cycles += window.total_access_cycles;
    into.miss_cycles += window.miss_cycles;
    into.memory_accesses += window.memory_accesses;
    into.energy.probe_hit_pj += window.energy.probe_hit_pj;
    into.energy.probe_miss_pj += window.energy.probe_miss_pj;
    into.energy.fill_pj += window.energy.fill_pj;
    into.energy.writeback_pj += window.energy.writeback_pj;
    into.energy.mnm_pj += window.energy.mnm_pj;
    into.soundness_violations = window.soundness_violations;
    into.filter_anomalies = window.filter_anomalies;
    into.mnm_storage_bits = window.mnm_storage_bits;
    // Cache snapshots hold cumulative counters; keep the latest.
    into.caches = window.caches;
    into.coverage.merge(window.coverage);
}

} // anonymous namespace

SampledResult
runSampled(MemorySimulator &sim, WorkloadGenerator &workload,
           const SamplingPlan &plan)
{
    if (plan.window == 0 || plan.windows == 0)
        fatal("sampling plan with empty measurement windows");

    SampledResult out;
    if (plan.fast_forward)
        sim.run(workload, plan.fast_forward); // discard accounting

    for (std::uint32_t w = 0; w < plan.windows; ++w) {
        if (w > 0 && plan.stride)
            sim.run(workload, plan.stride); // skip, stay warm
        MemSimResult window = sim.run(workload, plan.window);
        out.access_time.add(window.avgAccessTime());
        out.miss_time_fraction.add(window.missTimeFraction());
        out.coverage.add(window.coverage.coverage());
        merge(out.combined, window);
    }
    return out;
}

} // namespace mnm
