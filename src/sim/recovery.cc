#include "sim/recovery.hh"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

// ------------------------------------------------ cell fingerprint
//
// The fingerprint hashes a canonical text encoding of the cell. The
// encoding is versioned implicitly by the journal schema tag: any
// change to what a field means must bump CheckpointJournal::schema so
// stale journals are ignored rather than misapplied.

class Fnv1a64
{
  public:
    void
    text(std::string_view s)
    {
        for (unsigned char c : s) {
            hash_ ^= c;
            hash_ *= 1099511628211ull;
        }
        sep();
    }

    void
    u64(std::uint64_t v)
    {
        char buf[24];
        auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
        (void)ec;
        text(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
    }

    void flag(bool b) { u64(b ? 1 : 0); }

    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 0; i < 16; ++i)
            out[i] = digits[(hash_ >> (60 - 4 * i)) & 0xf];
        return out;
    }

  private:
    void
    sep()
    {
        hash_ ^= 0x1f;
        hash_ *= 1099511628211ull;
    }

    std::uint64_t hash_ = 14695981039346656037ull;
};

void
hashCacheParams(Fnv1a64 &h, const CacheParams &p)
{
    h.text(p.name);
    h.u64(p.capacity_bytes);
    h.u64(p.associativity);
    h.u64(p.block_bytes);
    h.u64(p.hit_latency);
    h.u64(p.miss_latency);
    h.u64(static_cast<std::uint64_t>(p.policy));
}

void
hashFilterSpec(Fnv1a64 &h, const FilterSpec &spec)
{
    if (const auto *s = std::get_if<SmnmSpec>(&spec)) {
        h.text("smnm");
        h.u64(s->sum_width);
        h.u64(s->replication);
        h.u64(static_cast<std::uint64_t>(s->mode));
    } else if (const auto *t = std::get_if<TmnmSpec>(&spec)) {
        h.text("tmnm");
        h.u64(t->index_bits);
        h.u64(t->replication);
        h.u64(t->counter_bits);
    } else {
        const auto &c = std::get<CmnmSpec>(spec);
        h.text("cmnm");
        h.u64(c.num_registers);
        h.u64(c.table_index_bits);
        h.u64(c.counter_bits);
        h.u64(static_cast<std::uint64_t>(c.policy));
    }
}

// -------------------------------------------- result (de)serializer

void
writeU64Array16(JsonWriter &json, std::string_view key,
                const std::array<std::uint64_t, 16> &values)
{
    json.key(key);
    json.beginArray();
    for (std::uint64_t v : values)
        json.value(v);
    json.endArray();
}

bool
readU64Array16(const JsonValue &object, const std::string &key,
               std::array<std::uint64_t, 16> &out)
{
    const JsonValue *array = object.find(key);
    if (!array || !array->isArray() || array->asArray().size() != 16)
        return false;
    for (std::size_t i = 0; i < 16; ++i) {
        const JsonValue &v = array->asArray()[i];
        if (!v.isInteger())
            return false;
        out[i] = v.asU64();
    }
    return true;
}

/** Fetch a required exact-integer member into @p out. */
bool
need(const JsonValue &object, const std::string &key, std::uint64_t &out)
{
    std::optional<std::uint64_t> v = object.getU64(key);
    if (!v)
        return false;
    out = *v;
    return true;
}

/** Fetch a required numeric member into @p out. */
bool
need(const JsonValue &object, const std::string &key, double &out)
{
    std::optional<double> v = object.getDouble(key);
    if (!v)
        return false;
    out = *v;
    return true;
}

// ------------------------------------------------- CRC record envelope

/** 8 lower-case hex digits of @p crc. */
std::string
crcHex(std::uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 0; i < 8; ++i)
        out[i] = digits[(crc >> (28 - 4 * i)) & 0xf];
    return out;
}

/** The byte prefix every enveloped record line starts with. */
constexpr std::string_view envelope_prefix = "{\"crc\":\"";
/** ...followed by 8 hex digits, then this, then the rec text, then
 *  the closing '}'. */
constexpr std::string_view envelope_mid = "\",\"rec\":";

/**
 * Split an enveloped line into its CRC field and the exact rec text
 * the CRC was computed over. Returns false for any line that is not
 * shaped like an envelope (torn, foreign, or pre-v2).
 */
bool
splitEnvelope(std::string_view line, std::string_view &crc_out,
              std::string_view &rec_out)
{
    const std::size_t fixed = envelope_prefix.size() + 8 +
                              envelope_mid.size() + 1;
    if (line.size() <= fixed ||
        line.substr(0, envelope_prefix.size()) != envelope_prefix ||
        line.substr(envelope_prefix.size() + 8, envelope_mid.size()) !=
            envelope_mid ||
        line.back() != '}') {
        return false;
    }
    crc_out = line.substr(envelope_prefix.size(), 8);
    const std::size_t rec_begin =
        envelope_prefix.size() + 8 + envelope_mid.size();
    rec_out = line.substr(rec_begin, line.size() - rec_begin - 1);
    return true;
}

} // anonymous namespace

std::string
cellFingerprint(const SweepCell &cell)
{
    Fnv1a64 h;
    h.text("cell");
    h.text(cell.app);
    h.text(cell.label);
    h.u64(cell.instructions);

    const HierarchyParams &hp = cell.hierarchy;
    h.u64(hp.levels.size());
    for (const LevelParams &level : hp.levels) {
        h.flag(level.split);
        hashCacheParams(h, level.data);
        if (level.split)
            hashCacheParams(h, level.instr);
    }
    h.u64(hp.memory_latency);
    h.u64(static_cast<std::uint64_t>(hp.inclusion));
    h.flag(hp.model_writebacks);

    if (!cell.mnm) {
        h.text("no-mnm");
        return h.hex();
    }
    const MnmSpec &spec = *cell.mnm;
    h.text(spec.name);
    h.u64(static_cast<std::uint64_t>(spec.placement));
    h.u64(spec.delay);
    h.flag(spec.perfect);
    h.flag(spec.oracle_check);
    if (spec.rmnm) {
        h.text("rmnm");
        h.u64(spec.rmnm->entries);
        h.u64(spec.rmnm->associativity);
    } else {
        h.text("no-rmnm");
    }
    h.u64(spec.level_filters.size());
    for (const LevelFilters &lf : spec.level_filters) {
        h.u64(lf.min_level);
        h.u64(lf.max_level);
        h.u64(lf.filters.size());
        for (const FilterSpec &fs : lf.filters)
            hashFilterSpec(h, fs);
    }
    return h.hex();
}

std::string
writeMemSimResult(const MemSimResult &result)
{
    std::ostringstream out;
    {
        JsonWriter json(out, /*pretty=*/false);
        json.beginObject();
        json.field("instructions", result.instructions);
        json.field("requests", result.requests);
        json.field("data_requests", result.data_requests);
        json.field("fetch_requests", result.fetch_requests);
        json.field("total_access_cycles", result.total_access_cycles);
        json.field("miss_cycles", result.miss_cycles);
        json.field("memory_accesses", result.memory_accesses);

        json.key("energy");
        json.beginObject();
        json.field("probe_hit_pj", result.energy.probe_hit_pj);
        json.field("probe_miss_pj", result.energy.probe_miss_pj);
        json.field("fill_pj", result.energy.fill_pj);
        json.field("writeback_pj", result.energy.writeback_pj);
        json.field("mnm_pj", result.energy.mnm_pj);
        json.endObject();

        json.key("coverage");
        json.beginObject();
        json.field("identified", result.coverage.identified());
        json.field("unidentified", result.coverage.unidentified());
        std::array<std::uint64_t, 16> at{};
        for (std::uint32_t l = 0; l < 16; ++l)
            at[l] = result.coverage.identifiedAt(l);
        writeU64Array16(json, "identified_at", at);
        for (std::uint32_t l = 0; l < 16; ++l)
            at[l] = result.coverage.unidentifiedAt(l);
        writeU64Array16(json, "unidentified_at", at);
        json.endObject();

        json.key("decisions");
        json.beginArray();
        for (std::uint32_t l = 0; l < DecisionMatrix::max_levels; ++l) {
            const DecisionMatrix::Cells &cells = result.decisions.at(l);
            if (cells.decisions() == 0)
                continue;
            json.beginObject();
            json.field("level", l);
            json.field("predicted_miss_actual_miss",
                       cells.predicted_miss_actual_miss);
            json.field("maybe_actual_miss", cells.maybe_actual_miss);
            json.field("maybe_actual_hit", cells.maybe_actual_hit);
            json.field("predicted_miss_actual_hit",
                       cells.predicted_miss_actual_hit);
            json.endObject();
        }
        json.endArray();

        json.field("soundness_violations", result.soundness_violations);
        json.field("filter_anomalies", result.filter_anomalies);
        json.field("mnm_storage_bits", result.mnm_storage_bits);

        json.key("caches");
        json.beginArray();
        for (const CacheSnapshot &snap : result.caches) {
            json.beginObject();
            json.field("name", snap.name);
            json.field("level", snap.level);
            json.field("accesses", snap.accesses);
            json.field("hits", snap.hits);
            json.field("mru_hits", snap.mru_hits);
            json.field("misses", snap.misses);
            json.field("bypasses", snap.bypasses);
            json.field("hit_rate", snap.hit_rate);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    return out.str();
}

std::optional<MemSimResult>
readMemSimResult(const JsonValue &value)
{
    if (!value.isObject())
        return std::nullopt;
    MemSimResult result;
    if (!need(value, "instructions", result.instructions) ||
        !need(value, "requests", result.requests) ||
        !need(value, "data_requests", result.data_requests) ||
        !need(value, "fetch_requests", result.fetch_requests) ||
        !need(value, "total_access_cycles", result.total_access_cycles) ||
        !need(value, "miss_cycles", result.miss_cycles) ||
        !need(value, "memory_accesses", result.memory_accesses) ||
        !need(value, "soundness_violations",
              result.soundness_violations) ||
        !need(value, "filter_anomalies", result.filter_anomalies) ||
        !need(value, "mnm_storage_bits", result.mnm_storage_bits)) {
        return std::nullopt;
    }

    const JsonValue *energy = value.find("energy");
    if (!energy || !energy->isObject() ||
        !need(*energy, "probe_hit_pj", result.energy.probe_hit_pj) ||
        !need(*energy, "probe_miss_pj", result.energy.probe_miss_pj) ||
        !need(*energy, "fill_pj", result.energy.fill_pj) ||
        !need(*energy, "writeback_pj", result.energy.writeback_pj) ||
        !need(*energy, "mnm_pj", result.energy.mnm_pj)) {
        return std::nullopt;
    }

    const JsonValue *coverage = value.find("coverage");
    std::uint64_t identified = 0, unidentified = 0;
    std::array<std::uint64_t, 16> identified_at{};
    std::array<std::uint64_t, 16> unidentified_at{};
    if (!coverage || !coverage->isObject() ||
        !need(*coverage, "identified", identified) ||
        !need(*coverage, "unidentified", unidentified) ||
        !readU64Array16(*coverage, "identified_at", identified_at) ||
        !readU64Array16(*coverage, "unidentified_at", unidentified_at)) {
        return std::nullopt;
    }
    static_assert(CoverageTracker::max_levels == 16);
    result.coverage.restore(identified, unidentified, identified_at,
                            unidentified_at);

    const JsonValue *decisions = value.find("decisions");
    if (!decisions || !decisions->isArray())
        return std::nullopt;
    for (const JsonValue &entry : decisions->asArray()) {
        std::uint64_t level = 0;
        DecisionMatrix::Cells cells;
        if (!entry.isObject() || !need(entry, "level", level) ||
            level >= DecisionMatrix::max_levels ||
            !need(entry, "predicted_miss_actual_miss",
                  cells.predicted_miss_actual_miss) ||
            !need(entry, "maybe_actual_miss", cells.maybe_actual_miss) ||
            !need(entry, "maybe_actual_hit", cells.maybe_actual_hit) ||
            !need(entry, "predicted_miss_actual_hit",
                  cells.predicted_miss_actual_hit)) {
            return std::nullopt;
        }
        result.decisions.setCells(static_cast<std::uint32_t>(level),
                                  cells);
    }

    const JsonValue *caches = value.find("caches");
    if (!caches || !caches->isArray())
        return std::nullopt;
    for (const JsonValue &entry : caches->asArray()) {
        CacheSnapshot snap;
        std::optional<std::string> name = entry.getString("name");
        std::uint64_t level = 0;
        if (!entry.isObject() || !name || !need(entry, "level", level) ||
            !need(entry, "accesses", snap.accesses) ||
            !need(entry, "hits", snap.hits) ||
            !need(entry, "mru_hits", snap.mru_hits) ||
            !need(entry, "misses", snap.misses) ||
            !need(entry, "bypasses", snap.bypasses) ||
            !need(entry, "hit_rate", snap.hit_rate)) {
            return std::nullopt;
        }
        snap.name = *name;
        snap.level = static_cast<std::uint32_t>(level);
        result.caches.push_back(std::move(snap));
    }
    return result;
}

std::optional<MemSimResult>
readMemSimResult(std::string_view text)
{
    std::optional<JsonValue> value = parseJson(text);
    if (!value)
        return std::nullopt;
    return readMemSimResult(*value);
}

// ------------------------------------------------ checkpoint journal

CheckpointJournal::Replay
CheckpointJournal::load(const std::string &path)
{
    Replay replay;
    std::ifstream in(path);
    if (!in.is_open())
        return replay; // no journal yet: nothing to replay

    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (first) {
            first = false;
            // Header line. A wrong or unreadable schema tag means the
            // journal is from an incompatible writer: replay nothing.
            std::optional<JsonValue> value = parseJson(line);
            if (!value || !value->isObject() ||
                value->getString("schema") != std::optional<std::string>(
                                                  schema)) {
                warn("checkpoint journal %s has an unrecognized header; "
                     "ignoring it and starting fresh",
                     path.c_str());
                return Replay{};
            }
            continue;
        }

        // Envelope check first: the CRC is computed over the exact
        // rec bytes as written, so it must be verified on the raw
        // text, before any JSON round trip.
        std::string_view crc_text, rec_text;
        if (!splitEnvelope(line, crc_text, rec_text)) {
            ++replay.skipped; // torn tail / partial write
            continue;
        }
        if (crcHex(crc32(rec_text)) != crc_text) {
            ++replay.corrupt; // parses fine, but the bytes changed
            continue;
        }
        std::optional<JsonValue> rec = parseJson(rec_text);
        if (!rec || !rec->isObject()) {
            ++replay.skipped;
            continue;
        }

        std::optional<std::string> type = rec->getString("type");
        std::optional<std::string> fp = rec->getString("fp");
        if (type == std::optional<std::string>("result")) {
            const JsonValue *payload = rec->find("result");
            std::optional<MemSimResult> result =
                payload ? readMemSimResult(*payload) : std::nullopt;
            if (!fp || !result) {
                ++replay.skipped;
                continue;
            }
            replay.entries.insert_or_assign(*fp, std::move(*result));
        } else if (type == std::optional<std::string>("lease")) {
            if (!fp) {
                ++replay.skipped;
                continue;
            }
            ++replay.leases[*fp];
        } else if (type == std::optional<std::string>("respawn")) {
            ++replay.respawns;
        } else if (type == std::optional<std::string>("poison")) {
            if (!fp) {
                ++replay.skipped;
                continue;
            }
            unsigned crashes = static_cast<unsigned>(
                rec->getU64("crashes").value_or(0));
            replay.poisoned.insert_or_assign(*fp, crashes);
        } else {
            ++replay.skipped; // record type from a future writer
        }
    }
    return replay;
}

CheckpointJournal::CheckpointJournal(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
        throw std::runtime_error("cannot open checkpoint journal '" +
                                 path + "' for appending");
    }
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        std::string header =
            std::string("{\"schema\":\"") + schema + "\"}\n";
        if (::write(fd_, header.data(), header.size()) !=
                static_cast<ssize_t>(header.size()) ||
            ::fsync(fd_) != 0) {
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error(
                "cannot initialize checkpoint journal '" + path + "'");
        }
    }
}

CheckpointJournal::~CheckpointJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CheckpointJournal::append(const std::string &fingerprint,
                          const MemSimResult &result)
{
    appendRecord("{\"type\":\"result\",\"fp\":" +
                 JsonWriter::quoted(fingerprint) +
                 ",\"result\":" + writeMemSimResult(result) + "}");
}

void
CheckpointJournal::appendLease(const std::string &fingerprint,
                               unsigned worker, unsigned seq)
{
    appendRecord("{\"type\":\"lease\",\"fp\":" +
                 JsonWriter::quoted(fingerprint) +
                 ",\"worker\":" + std::to_string(worker) +
                 ",\"seq\":" + std::to_string(seq) + "}");
}

void
CheckpointJournal::appendRespawn(unsigned worker, unsigned spawns)
{
    appendRecord("{\"type\":\"respawn\",\"worker\":" +
                 std::to_string(worker) +
                 ",\"spawns\":" + std::to_string(spawns) + "}");
}

void
CheckpointJournal::appendPoison(const std::string &fingerprint,
                                unsigned crashes)
{
    appendRecord("{\"type\":\"poison\",\"fp\":" +
                 JsonWriter::quoted(fingerprint) +
                 ",\"crashes\":" + std::to_string(crashes) + "}");
}

void
CheckpointJournal::appendRecord(const std::string &rec_text)
{
    std::string line;
    line.reserve(rec_text.size() + envelope_prefix.size() +
                 envelope_mid.size() + 10);
    line += envelope_prefix;
    line += crcHex(crc32(rec_text));
    line += envelope_mid;
    line += rec_text;
    line += "}\n";
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || write_failed_)
        return;
    // One write per record: O_APPEND makes the line land atomically at
    // the tail even with a concurrent writer, and a crash mid-write
    // leaves at most one torn line for load() to skip.
    std::size_t done = 0;
    while (done < line.size()) {
        ssize_t n = ::write(fd_, line.data() + done, line.size() - done);
        if (n < 0) {
            write_failed_ = true;
            warn("checkpoint journal %s: write failed; checkpointing "
                 "disabled for the rest of this run",
                 path_.c_str());
            return;
        }
        done += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        write_failed_ = true;
        warn("checkpoint journal %s: fsync failed; checkpointing "
             "disabled for the rest of this run",
             path_.c_str());
    }
}

} // namespace mnm
