/**
 * @file
 * Parallel sweep engine for the experiment harness.
 *
 * Every bench reproduces a paper table/figure by sweeping the twenty
 * SPEC2000-like workloads over a handful of machine/MNM variants. Each
 * (workload, hierarchy, MNM, budget) point — a SweepCell — is an
 * independent simulation on a fresh MemorySimulator, so the grid is
 * embarrassingly parallel. The ParallelRunner executes cells on a
 * fixed-size std::jthread pool; results land in a pre-sized output
 * vector indexed by cell, so aggregation order (and therefore every
 * printed table) is deterministic and byte-identical to the serial
 * path.
 *
 * Concurrency model: no simulator state is shared between cells. Each
 * worker claims the next cell off an atomic counter, builds its own
 * MemorySimulator/workload, and writes only results[i]. The only shared
 * sinks are the logging mutex (util/logging) and the per-slot
 * std::exception_ptr array; a throwing cell fails its own slot and the
 * pool keeps draining.
 *
 * Job count comes from MNM_JOBS (default: hardware_concurrency;
 * 1 = legacy serial path that never spawns a thread).
 */

#ifndef MNM_SIM_RUNNER_HH
#define MNM_SIM_RUNNER_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace mnm
{

/** One independent point of a sweep grid. */
struct SweepCell
{
    std::string app;                 //!< workload name ("164.gzip")
    HierarchyParams hierarchy;       //!< machine configuration
    std::optional<MnmSpec> mnm;      //!< optional MNM shielding it
    std::uint64_t instructions = 0;  //!< measured-window budget
    std::string label;               //!< variant tag for progress/errors
};

/** One machine/MNM variant, to be crossed with the workload list. */
struct SweepVariant
{
    std::string label;
    HierarchyParams hierarchy;
    std::optional<MnmSpec> mnm;
};

/**
 * Cross @p apps with @p variants into an app-major cell grid: the cell
 * for (app a, variant v) sits at index `a * variants.size() + v`, which
 * is exactly the order the serial bench loops used to visit.
 */
std::vector<SweepCell>
makeGridCells(const std::vector<std::string> &apps,
              const std::vector<SweepVariant> &variants,
              std::uint64_t instructions);

/** MNM_JOBS, or hardware_concurrency when unset (always >= 1). */
unsigned jobsFromEnv();

/** "app · label" (or just app) for progress/error messages. */
std::string sweepCellDisplayName(const SweepCell &cell);

/**
 * Why a sweep cell was marked failed. Split out so operators can tell
 * "my cell crashed the worker" from "my cell is slow" from "my cell
 * throws deterministically" straight from the manifest
 * (runner.failures.by_cause.*) without re-running anything.
 */
enum class SweepFailCause
{
    Crash,          //!< worker process died (signal or nonzero exit)
    Timeout,        //!< MNM_CELL_TIMEOUT_S expired
    RetryExhausted, //!< threw on every attempt (MNM_RETRIES + 1)
    Poison,         //!< killed MNM_POISON_LIMIT successive workers
};

/** Metric-segment / log name for @p cause ("crash", "timeout",
 *  "retry_exhausted", "poison"). */
const char *sweepFailCauseName(SweepFailCause cause);

/**
 * Mark @p result as cells[index]'s failure: reset it with failed set
 * and @p reason as fail_reason, warn with the cell's display name and
 * cause, bump "runner.failures.total", "runner.failures.by_cause.
 * <cause>" and the per-cell "runner.failures.<label>.<app>" counter,
 * and latch sweepExitCode() nonzero. Shared by the in-process retry
 * path and the process-pool supervisor so both report identically.
 */
void recordSweepCellFailure(const SweepCell &cell, std::size_t index,
                            SweepFailCause cause,
                            const std::string &reason,
                            MemSimResult &result);

/** Wall-clock record of one sweep cell, filled in by whichever
 *  execution path ran it (worker thread or pool supervisor). */
struct SweepCellTiming
{
    std::uint64_t start_us = 0; //!< steady-clock start
    std::uint64_t dur_us = 0;
    unsigned worker = 0;
    /** False for cells replayed from a checkpoint or failed before
     *  completing: their wall-clock numbers are meaningless. */
    bool ran = false;
};

/**
 * Aggregate failure of a parallel task set: carries every failed
 * index's label and message, not just the first, so one run of a
 * 400-cell sweep reports all broken cells instead of the lowest index.
 * what() summarizes the count and first failure.
 */
class SweepFailure : public std::runtime_error
{
  public:
    /** One failed task. */
    struct Failure
    {
        std::size_t index = 0;
        std::string label;   //!< task description ("164.gzip · RMNM_512_2")
        std::string message; //!< the captured exception's what()
    };

    explicit SweepFailure(std::vector<Failure> failures);

    const std::vector<Failure> &failures() const { return failures_; }

  private:
    static std::string summarize(const std::vector<Failure> &failures);

    std::vector<Failure> failures_;
};

/**
 * Fixed-size worker pool executing an indexed task set. The generic
 * substrate under runSweep(); benches whose unit of work is not a
 * functional-simulator run (timing cores, TLB loops) use it directly.
 */
class ParallelRunner
{
  public:
    /** @param jobs worker count; 0 = hardware_concurrency, 1 = run
     *  everything inline on the calling thread (legacy serial path). */
    explicit ParallelRunner(unsigned jobs);

    unsigned jobs() const { return jobs_; }

    /**
     * Execute task(0) .. task(count-1), each exactly once. With more
     * than one job, workers claim indices dynamically (small cells
     * don't stall the pool behind big ones). An exception escaping
     * task(i) is captured into slot i of the returned vector; the
     * remaining indices still run and the pool always joins.
     *
     * @return one std::exception_ptr per index, null on success.
     */
    std::vector<std::exception_ptr>
    run(std::size_t count,
        const std::function<void(std::size_t)> &task) const;

    /**
     * Convenience: out[i] = fn(i) with results pre-sized so output
     * order is index order regardless of completion order. Throws one
     * SweepFailure aggregating every captured exception after the pool
     * has drained.
     */
    template <typename T, typename F>
    std::vector<T>
    map(std::size_t count, F &&fn) const
    {
        std::vector<T> out(count);
        throwIfAny(run(count,
                       [&](std::size_t i) { out[i] = fn(i); }));
        return out;
    }

    /**
     * Throw a SweepFailure carrying every captured error (with
     * @p label(i) naming each failed task, "task <i>" when null);
     * a no-op when all slots are clean.
     */
    static void throwIfAny(
        const std::vector<std::exception_ptr> &errors,
        const std::function<std::string(std::size_t)> &label = nullptr);

    /**
     * Index of the pool worker executing the current task: 0..jobs-1
     * inside run(), 0 on the serial path and outside any pool. Used by
     * the sweep telemetry to lane trace events per worker.
     */
    static unsigned currentWorker();

  private:
    unsigned jobs_;
};

/**
 * Run every cell through runFunctional() on @p opts.jobs workers.
 * Results are indexed like @p cells. Per-cell completion (plus an ETA
 * projected from cells done over elapsed time) is reported via
 * progress() when @p opts.progress (MNM_PROGRESS=1).
 *
 * Execution modes: with @p opts.workers == 0 (the default) cells run
 * on an in-process thread pool. With MNM_WORKERS=N >= 1 the call
 * becomes a supervisor over N forked worker *processes*
 * (sim/proc_pool.hh): a cell that segfaults, aborts, exits, or hangs
 * takes down only its worker -- the supervisor re-issues the cell to a
 * respawned worker and the sweep completes. Either way results land in
 * the same cell-indexed vector, so stdout and the manifest's "sweep.*"
 * subtree are byte-identical across serial, threaded, and
 * process-pool runs.
 *
 * Fault containment: a cell whose simulation throws is retried up to
 * @p opts.retries times (exponential backoff; watchdog timeouts from
 * MNM_CELL_TIMEOUT_S are not retried -- a second attempt would just
 * time out again). A cell that exhausts its attempts does NOT abort
 * the sweep: its result comes back with MemSimResult::failed set (and
 * fail_reason carrying the exception text), a warning names it, a
 * "runner.failures.<label>.<app>" counter records it, and
 * sweepExitCode() turns nonzero so benches exit 1 after printing their
 * tables with gap markers.
 *
 * Checkpointing: when @p opts.checkpoint names a journal
 * (MNM_CHECKPOINT), previously completed cells are replayed from it --
 * skipping their simulation entirely -- and each newly completed cell
 * is durably appended. Replayed results are bit-identical to
 * recomputed ones (the simulator is deterministic and the journal
 * round-trips doubles exactly), so a killed-and-resumed run prints
 * byte-identical tables.
 *
 * Telemetry: after the pool drains, each completed cell's simulation
 * metrics (per-level decision confusion matrix, coverage counts,
 * traffic) are folded into globalStats() under "sweep.<label>.<app>.*"
 * in cell-index order -- identical at any MNM_JOBS value -- and
 * wall-clock telemetry (per-cell wall time, queue delay, worker
 * utilization) under "runner.*", which comparisons must skip. When
 * MNM_TRACE_FILE is set, one Chrome complete event per cell is
 * appended to globalTrace(). None of this touches stdout.
 */
std::vector<MemSimResult> runSweep(const std::vector<SweepCell> &cells,
                                   const ExperimentOptions &opts);

/**
 * Process exit code reflecting sweep health: 1 once any runSweep()
 * cell has failed (after retries), else 0. Benches return this from
 * main() so graceful degradation still fails CI.
 */
int sweepExitCode();

/** Table-cell helper: NaN (rendered as the "<failed>" gap marker by
 *  util/table.hh) when @p r is a failed cell, else @p value. */
inline double
sweepCell(const MemSimResult &r, double value)
{
    return r.failed ? std::numeric_limits<double>::quiet_NaN() : value;
}

/**
 * Test hook: called before every cell attempt as hook(cell, attempt)
 * (attempt is 0-based); a throwing hook fails that attempt exactly
 * like a throwing simulation. Pass nullptr to clear. Not thread-safe
 * against a running sweep -- set it before runSweep().
 */
void setSweepFaultHookForTest(
    std::function<void(const SweepCell &, unsigned)> hook);

/** The installed test fault hook (null when unset). Internal: lets the
 *  process-pool worker (which inherits the hook across fork) run it
 *  exactly like the thread path does. */
const std::function<void(const SweepCell &, unsigned)> &sweepFaultHook();

} // namespace mnm

#endif // MNM_SIM_RUNNER_HH
