/**
 * @file
 * Fast functional-mode memory-system simulator.
 *
 * Streams a workload's instruction-fetch and data requests through a
 * hierarchy (optionally shielded by an MNM) and accounts for:
 *  - data access time per request (paper Section 1.1) and the portion
 *    spent probing caches that missed (Figure 2's metric);
 *  - dynamic energy split into hit probes, miss probes, fills, and MNM
 *    structures (Figure 3's and Figure 16's metrics);
 *  - MNM coverage (Figures 10-14).
 *
 * No core timing is modelled here; use OooCore (cpu/) for execution
 * cycles (Figure 15). This mode is an order of magnitude faster, which
 * is what lets the benches sweep 20 workloads x many configurations.
 */

#ifndef MNM_SIM_MEMORY_SIM_HH
#define MNM_SIM_MEMORY_SIM_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/coverage.hh"
#include "core/mnm_unit.hh"
#include "obs/confusion.hh"
#include "power/sram_model.hh"
#include "trace/workload.hh"
#include "util/aligned.hh"

namespace mnm
{

/** Dynamic-energy breakdown of a run, picojoules. */
struct EnergyBreakdown
{
    PicoJoules probe_hit_pj = 0.0;  //!< probes that hit
    PicoJoules probe_miss_pj = 0.0; //!< probes that missed (wasted)
    PicoJoules fill_pj = 0.0;       //!< allocations on the fill path
    PicoJoules writeback_pj = 0.0;  //!< dirty-victim drain traffic
    PicoJoules mnm_pj = 0.0;        //!< MNM lookups + updates

    PicoJoules cacheTotal() const
    {
        return probe_hit_pj + probe_miss_pj + fill_pj + writeback_pj;
    }
    PicoJoules total() const { return cacheTotal() + mnm_pj; }
    double missFraction() const
    {
        double t = cacheTotal();
        return t > 0.0 ? probe_miss_pj / t : 0.0;
    }
};

/** Snapshot of one cache's counters after a run. */
struct CacheSnapshot
{
    std::string name;
    std::uint32_t level = 0;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t mru_hits = 0; //!< hits a way predictor would guess
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;
    double hit_rate = 0.0;
};

/** Everything a functional run produces. */
struct MemSimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t requests = 0; //!< fetch-line + load/store accesses
    std::uint64_t data_requests = 0;
    std::uint64_t fetch_requests = 0;
    Cycles total_access_cycles = 0;
    Cycles miss_cycles = 0; //!< spent probing caches that missed
    std::uint64_t memory_accesses = 0;

    EnergyBreakdown energy;
    CoverageTracker coverage;
    /** Per-level MNM decision confusion matrix. The three sound cells
     *  cover this run() call's measured window; the forbidden cell
     *  mirrors soundness_violations (cumulative over the simulator's
     *  lifetime, warm-up included -- it must be zero anyway). */
    DecisionMatrix decisions;
    std::uint64_t soundness_violations = 0;
    std::uint64_t filter_anomalies = 0;
    std::uint64_t mnm_storage_bits = 0;
    std::vector<CacheSnapshot> caches;

    /** Set by runSweep() when this cell's simulation failed (after all
     *  retries). Every counter above is then meaningless; benches must
     *  print a gap marker instead of the cell's value. */
    bool failed = false;
    /** Human-readable reason when failed (exception what()). */
    std::string fail_reason;

    double avgAccessTime() const
    {
        return requests ? static_cast<double>(total_access_cycles) /
                              static_cast<double>(requests)
                        : 0.0;
    }
    /** Figure 2's metric. */
    double missTimeFraction() const
    {
        return total_access_cycles
                   ? static_cast<double>(miss_cycles) /
                         static_cast<double>(total_access_cycles)
                   : 0.0;
    }
};

/** The functional simulator. */
class MemorySimulator
{
  public:
    /**
     * @param hierarchy_params machine configuration
     * @param mnm_spec         optional MNM shielding the hierarchy
     * @param seed             replacement-policy randomness seed
     */
    explicit MemorySimulator(const HierarchyParams &hierarchy_params,
                             std::optional<MnmSpec> mnm_spec = std::nullopt,
                             std::uint64_t seed = 1);

    /**
     * Stream @p instructions instructions from @p workload. Repeatable:
     * each call continues from the current (warm) state; accounting is
     * per call.
     */
    MemSimResult run(WorkloadGenerator &workload,
                     std::uint64_t instructions);

    /**
     * Route run() through the single-step workload API and the MNM's
     * virtual-dispatch reference path instead of the batched verdict
     * plan. Slow; exists so kernel_equivalence_test can prove the two
     * kernels produce bit-identical results.
     */
    void setReferenceKernel(bool on);
    bool referenceKernel() const { return reference_kernel_; }

    /**
     * Route the MNM's update feed through the per-event virtual
     * listener path instead of the batched event ring + update kernels
     * (the MNM_REFERENCE_FEED=1 knob). Slow; exists so
     * kernel_equivalence_test and the CI byte-diff can prove both feeds
     * produce bit-identical results. No-op without an MNM.
     */
    void setReferenceFeed(bool on);
    bool referenceFeed() const { return mnm_ && mnm_->referenceFeed(); }

    /**
     * Overlap batch generation with consumption through a BatchPipeline
     * (the MNM_OVERLAP knob; see trace/batch_pipeline.hh). Defaults to
     * the environment's verdict; tests flip it per instance. The
     * generated stream -- and therefore every counter and output byte
     * -- is identical either way; only the schedule changes.
     */
    void setOverlap(bool on) { overlap_ = on; }
    bool overlap() const { return overlap_; }

    CacheHierarchy &hierarchy() { return hierarchy_; }
    MnmUnit *mnm() { return mnm_ ? mnm_.get() : nullptr; }

  private:
    /** Per-cache hot event counts for one run() window; the per-event
     *  energies are multiplied out once at the end of run(). */
    struct CacheEventCounts
    {
        std::uint64_t probe_hit = 0;
        std::uint64_t probe_miss = 0;
        std::uint64_t fill = 0;
        std::uint64_t wb_absorbed = 0;  //!< writeback dirtied a copy
        std::uint64_t wb_forwarded = 0; //!< writeback probed and passed
    };

    /** Post-walk accounting shared by performAccess() and the lane
     *  queue's descendLanes consume callback: coverage, decisions,
     *  latency/energy-event counts -- everything an access adds to the
     *  result once its AccessResult exists. Pure sums over the record,
     *  so invocation order across accesses cannot change any total.
     *  Force-inlined: it was part of the performAccess template body
     *  before the lane queue split it out, and every call site is on
     *  the per-access hot path. */
    __attribute__((always_inline)) void
    accountAccess(const AccessResult &access, MemSimResult &result);

    /** One request through MNM + hierarchy with full accounting.
     *  Templated on profiling like the batch path: run() selects the
     *  instantiation once per window, so with MNM_PROF off even the
     *  single-step stream carries zero profiler code per access. */
    template <bool with_prof>
    void request(AccessType type, Addr addr, MemSimResult &result);

    /** The hierarchy walk and accounting behind request(), taking the
     *  verdict as input (the batch path precomputes verdicts). The
     *  with_prof instantiation brackets the walk in a HierWalk phase
     *  scope; the other compiles with zero profiler code -- not even
     *  the profActive() load -- because a per-access check is what the
     *  MNM_PROF-off <2% overhead budget cannot afford. Callers select
     *  an instantiation once per run/batch window (the mode cannot
     *  change mid-process). With below_l1 the caller already probed
     *  level 1 itself and saw a miss (the batch path's L1 fast path),
     *  so the walk resumes below it via accessBelowL1(). */
    template <bool with_prof, bool below_l1 = false>
    void performAccess(AccessType type, Addr addr,
                       const BypassMask &mask, MemSimResult &result);

    /** Batch path: consume one pre-derived request batch -- verdict it
     *  through the MNM's kernels (L1-peek + lane queue for guard-free
     *  plans, chunked SoA kernels for guarded ones), walk, account.
     *  The request stream arrives already derived (the generators'
     *  nextRequests() fuses derivation into generation), so this is
     *  pure consumption. Templated like performAccess: run() picks the
     *  instantiation once, so the off path stays scope-free per
     *  access. */
    template <bool with_prof>
    void runBatchRequests(const RequestBatch &batch, const Cache &l1i,
                          MemSimResult &result);

    /** One instruction: fetch-line dedup plus the data request. */
    template <bool with_prof>
    void
    step(const Instruction &inst, const Cache &l1i, MemSimResult &result)
    {
        Addr line = l1i.blockAddr(inst.pc);
        if (line != cur_fetch_line_) {
            cur_fetch_line_ = line;
            ++result.fetch_requests;
            request<with_prof>(AccessType::InstFetch, inst.pc, result);
        }
        if (inst.isMem()) {
            ++result.data_requests;
            request<with_prof>(inst.cls == InstClass::Load
                                   ? AccessType::Load
                                   : AccessType::Store,
                               inst.mem_addr, result);
        }
    }

    CacheHierarchy hierarchy_;
    std::unique_ptr<MnmUnit> mnm_;
    /** Per-cache probe/fill energies from the analytical model. */
    std::vector<PowerDelay> cache_power_;
    std::vector<CacheEventCounts> event_counts_;
    /** Batch buffer, heap-allocated once (128KB is unkind to stacks
     *  when runSweep's worker threads run many simulators). */
    std::unique_ptr<InstructionBatch> batch_;
    /** Request batch buffer for the overlap-off batch-verdict path
     *  (the overlap pipeline owns its own slots), heap-allocated
     *  lazily. */
    std::unique_ptr<RequestBatch> req_batch_;
    /** Per-batch verdict scratch for the guarded (stage 2b) path,
     *  allocated lazily. */
    AlignedArray<std::uint32_t> req_cand_;
    bool reference_kernel_ = false;
    /** MNM_OVERLAP: generate batches through a BatchPipeline. */
    bool overlap_;
    /** Lane-queue pending-set conflict bitmaps, one bit per L1 set
     *  ([0] = I-side, [1] = D-side; one shared vector when level 1 is
     *  unified). Sized lazily by the stage-2a fast path; bits live
     *  only between a lane's enqueue and its flush. */
    std::vector<std::uint64_t> pending_sets_[2];
    PicoJoules mnm_energy_seen_ = 0.0; //!< consumed total at last drain
    Addr cur_fetch_line_ = invalid_addr;
};

} // namespace mnm

#endif // MNM_SIM_MEMORY_SIM_HH
