#include "sim/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/fault_inject.hh"
#include "obs/manifest.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/proc_pool.hh"
#include "sim/recovery.hh"
#include "util/deadline.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

/** Worker index of the calling thread (0 outside a pool). */
unsigned &
workerSlot()
{
    thread_local unsigned slot = 0;
    return slot;
}

std::uint64_t
steadyNowUs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(duration_cast<microseconds>(
        steady_clock::now().time_since_epoch()).count());
}

} // anonymous namespace

unsigned
jobsFromEnv()
{
    const char *env = std::getenv("MNM_JOBS");
    if (!env)
        return hardwareJobs();
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0)
        fatal("MNM_JOBS='%s' is not a positive integer", env);
    if (v > 4096)
        fatal("MNM_JOBS=%lu is out of range [1, 4096]", v);
    return static_cast<unsigned>(v);
}

SweepFailure::SweepFailure(std::vector<Failure> failures)
    : std::runtime_error(summarize(failures)),
      failures_(std::move(failures))
{
}

std::string
SweepFailure::summarize(const std::vector<Failure> &failures)
{
    if (failures.empty())
        return "sweep failure (no recorded cells)";
    std::string out = std::to_string(failures.size()) +
                      (failures.size() == 1 ? " task failed: "
                                            : " tasks failed; first: ") +
                      failures.front().label + ": " +
                      failures.front().message;
    return out;
}

std::vector<SweepCell>
makeGridCells(const std::vector<std::string> &apps,
              const std::vector<SweepVariant> &variants,
              std::uint64_t instructions)
{
    std::vector<SweepCell> cells;
    cells.reserve(apps.size() * variants.size());
    for (const std::string &app : apps) {
        for (const SweepVariant &variant : variants) {
            cells.push_back({app, variant.hierarchy, variant.mnm,
                             instructions, variant.label});
        }
    }
    return cells;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

std::vector<std::exception_ptr>
ParallelRunner::run(std::size_t count,
                    const std::function<void(std::size_t)> &task) const
{
    std::vector<std::exception_ptr> errors(count);
    auto attempt = [&](std::size_t i) {
        try {
            task(i);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (jobs_ <= 1 || count <= 1) {
        // Legacy serial path: no threads, no atomics.
        for (std::size_t i = 0; i < count; ++i)
            attempt(i);
        return errors;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < count;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
            attempt(i);
        }
    };
    std::size_t spawn = std::min<std::size_t>(jobs_, count);
    {
        std::vector<std::jthread> pool;
        pool.reserve(spawn);
        for (std::size_t t = 0; t < spawn; ++t) {
            pool.emplace_back([&, t] {
                workerSlot() = static_cast<unsigned>(t);
                worker();
                if (profActive()) {
                    // Per-worker attribution, then hand the thread's
                    // profile to the global aggregate before joining
                    // (a worker that never flushes contributes
                    // nothing to the manifest's prof.* totals).
                    foldPhaseTotals(globalStats(), threadPhaseTotals(),
                                    "prof.worker.w" + std::to_string(t));
                    flushThreadProf();
                }
            });
        }
    } // joins every worker; errors[] is complete past this point
    return errors;
}

void
ParallelRunner::throwIfAny(
    const std::vector<std::exception_ptr> &errors,
    const std::function<std::string(std::size_t)> &label)
{
    std::vector<SweepFailure::Failure> failures;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i])
            continue;
        SweepFailure::Failure failure;
        failure.index = i;
        failure.label = label ? label(i) : "task " + std::to_string(i);
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            failure.message = e.what();
        } catch (...) {
            failure.message = "non-standard exception";
        }
        failures.push_back(std::move(failure));
    }
    if (!failures.empty())
        throw SweepFailure(std::move(failures));
}

unsigned
ParallelRunner::currentWorker()
{
    return workerSlot();
}

std::string
sweepCellDisplayName(const SweepCell &cell)
{
    return cell.label.empty() ? cell.app : cell.app + " · " + cell.label;
}

const char *
sweepFailCauseName(SweepFailCause cause)
{
    switch (cause) {
    case SweepFailCause::Crash:
        return "crash";
    case SweepFailCause::Timeout:
        return "timeout";
    case SweepFailCause::RetryExhausted:
        return "retry_exhausted";
    case SweepFailCause::Poison:
        return "poison";
    }
    return "unknown";
}

namespace
{

/** Process-wide "some sweep cell failed" flag behind sweepExitCode(). */
std::atomic<bool> g_sweep_failed{false};

std::function<void(const SweepCell &, unsigned)> g_fault_hook;

/** Registry prefix for one cell's simulation metrics. */
std::string
cellMetricPrefix(const SweepCell &cell)
{
    std::string label = cell.label.empty() ? "default" : cell.label;
    return "sweep." + sanitizeMetricSegment(label) + "." +
           sanitizeMetricSegment(ExperimentOptions::shortName(cell.app));
}

/**
 * Fold one finished sweep into the process-wide registry (and, when
 * MNM_TRACE_FILE is live, the trace buffer). Runs on the calling thread
 * after the pool has drained, visiting cells in index order, so the
 * folded totals are identical at any MNM_JOBS value; only the
 * "runner.*" wall-clock subtree varies between runs.
 */
void
foldSweepTelemetry(const std::vector<SweepCell> &cells,
                   const std::vector<MemSimResult> &results,
                   const std::vector<SweepCellTiming> &timing,
                   const std::vector<PhaseTotals> &cell_prof,
                   std::uint64_t sweep_start_us, std::uint64_t wall_us,
                   unsigned jobs)
{
    StatsRegistry &stats = globalStats();
    RunningStat &cell_wall = stats.runningStat("runner.cell_wall_ms");
    RunningStat &cell_queue = stats.runningStat("runner.cell_queue_ms");
    std::uint64_t busy_us = 0;

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        const MemSimResult &r = results[i];
        std::string prefix = cellMetricPrefix(cell);
        if (!r.failed) {
            stats.addCounter(prefix + ".instructions", r.instructions);
            stats.addCounter(prefix + ".requests", r.requests);
            stats.addCounter(prefix + ".memory_accesses",
                             r.memory_accesses);
            if (cell.mnm) {
                stats.addCounter(prefix + ".soundness_violations",
                                 r.soundness_violations);
            }
            r.decisions.registerInto(stats, prefix + ".confusion");
        }

        // Replayed and failed cells have no meaningful wall clock.
        const SweepCellTiming &t = timing[i];
        if (!t.ran)
            continue;
        busy_us += t.dur_us;
        cell_wall.add(static_cast<double>(t.dur_us) / 1000.0);
        cell_queue.add(
            static_cast<double>(t.start_us - sweep_start_us) / 1000.0);

        // Per-cell kernel throughput. Lives under "runner." (not the
        // cell's "sweep." prefix) because it is wall-clock derived:
        // the manifest diff in CI ignores the runner subtree.
        if (!r.failed && t.dur_us > 0) {
            std::string label =
                cell.label.empty() ? "default" : cell.label;
            stats.setGauge(
                "runner." + sanitizeMetricSegment(label) + "." +
                    sanitizeMetricSegment(
                        ExperimentOptions::shortName(cell.app)) +
                    ".instr_per_sec",
                static_cast<double>(r.instructions) * 1e6 /
                    static_cast<double>(t.dur_us));
        }

        // Per-cell phase attribution. Lives under "prof.cell." (not the
        // cell's "sweep." prefix) because it is wall-clock derived: the
        // manifest diff in CI ignores the prof subtree.
        if (!r.failed && profActive()) {
            std::string label =
                cell.label.empty() ? "default" : cell.label;
            foldPhaseTotals(
                stats, cell_prof[i],
                "prof.cell." + sanitizeMetricSegment(label) + "." +
                    sanitizeMetricSegment(
                        ExperimentOptions::shortName(cell.app)));
        }

        if (traceFileEnabled()) {
            std::string name = ExperimentOptions::shortName(cell.app);
            if (!cell.label.empty())
                name += " · " + cell.label;
            globalTrace().addCompleteEvent(
                name, "sweep", t.worker, t.start_us, t.dur_us,
                {{"app", cell.app}, {"label", cell.label}});

            // Phase sub-spans inside the cell's span: each phase's
            // share of the cell's ticks scaled onto its wall clock,
            // laid end to end. Not a timeline of when each phase ran
            // (they interleave per request) but a to-scale breakdown
            // in the same viewer.
            if (!r.failed && profActive()) {
                const std::uint64_t total =
                    cell_prof[i].totalTicks();
                std::uint64_t off_us = 0;
                for (int p = 0; total && p < num_phases; ++p) {
                    const std::uint64_t ticks =
                        cell_prof[i].phase[p].ticks;
                    if (!ticks)
                        continue;
                    const std::uint64_t dur = static_cast<std::uint64_t>(
                        static_cast<double>(t.dur_us) *
                        static_cast<double>(ticks) /
                        static_cast<double>(total));
                    globalTrace().addCompleteEvent(
                        phaseName(static_cast<Phase>(p)), "prof",
                        t.worker, t.start_us + off_us, dur,
                        {{"cell", name}});
                    off_us += dur;
                }
            }
        }
    }

    stats.addCounter("runner.sweeps", 1);
    stats.addCounter("runner.cells", cells.size());
    stats.setGauge("runner.jobs", static_cast<double>(jobs));
    stats.setGauge("runner.wall_ms",
                   static_cast<double>(wall_us) / 1000.0);
    // Fraction of the pool's lane-time spent inside cells: busy time
    // over wall time times the lanes that could have been busy.
    std::size_t lanes =
        std::min<std::size_t>(jobs ? jobs : 1,
                              std::max<std::size_t>(cells.size(), 1));
    double lane_time_us =
        static_cast<double>(wall_us) * static_cast<double>(lanes);
    stats.setGauge("runner.utilization",
                   lane_time_us > 0.0
                       ? static_cast<double>(busy_us) / lane_time_us
                       : 0.0);
}

} // anonymous namespace

void
recordSweepCellFailure(const SweepCell &cell, std::size_t index,
                       SweepFailCause cause, const std::string &reason,
                       MemSimResult &result)
{
    result = MemSimResult{};
    result.failed = true;
    result.fail_reason = reason;
    warn("sweep cell %zu (%s) failed [%s]: %s", index,
         sweepCellDisplayName(cell).c_str(), sweepFailCauseName(cause),
         reason.c_str());
    StatsRegistry &stats = globalStats();
    stats.addCounter("runner.failures.total", 1);
    stats.addCounter(std::string("runner.failures.by_cause.") +
                         sweepFailCauseName(cause),
                     1);
    stats.addCounter(
        "runner.failures." +
            sanitizeMetricSegment(cell.label.empty() ? "default"
                                                     : cell.label) +
            "." +
            sanitizeMetricSegment(ExperimentOptions::shortName(cell.app)),
        1);
    g_sweep_failed.store(true, std::memory_order_relaxed);
}

std::vector<MemSimResult>
runSweep(const std::vector<SweepCell> &cells,
         const ExperimentOptions &opts)
{
    ParallelRunner runner(opts.jobs);
    std::vector<MemSimResult> results(cells.size());
    std::vector<SweepCellTiming> timing(cells.size());
    std::vector<PhaseTotals> cell_prof(cells.size());
    std::atomic<std::size_t> completed{0};

    // Checkpoint replay: restore finished cells, open the journal for
    // the rest. A journal the process cannot write is a user error
    // (bad path, read-only directory), reported before any simulation.
    std::unique_ptr<CheckpointJournal> journal;
    std::vector<std::string> fingerprints;
    std::vector<char> replayed(cells.size(), 0);
    if (!opts.checkpoint.empty()) {
        CheckpointJournal::Replay replay =
            CheckpointJournal::load(opts.checkpoint);
        if (replay.skipped) {
            warn("checkpoint journal %s: skipped %zu unparsable "
                 "line(s) (torn tail); those cells will re-run",
                 opts.checkpoint.c_str(), replay.skipped);
        }
        fingerprints.resize(cells.size());
        std::size_t restored = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            fingerprints[i] = cellFingerprint(cells[i]);
            auto it = replay.entries.find(fingerprints[i]);
            if (it == replay.entries.end())
                continue;
            results[i] = it->second;
            replayed[i] = 1;
            ++restored;
        }
        if (restored && opts.progress) {
            progress("checkpoint %s: replaying %zu/%zu finished cells",
                     opts.checkpoint.c_str(), restored, cells.size());
        }
        try {
            journal =
                std::make_unique<CheckpointJournal>(opts.checkpoint);
        } catch (const std::exception &e) {
            fatal("%s", e.what());
        }
    }

    const std::uint64_t sweep_start_us = steadyNowUs();

    // Process-pool mode: MNM_WORKERS >= 1 hands the non-replayed cells
    // to forked worker processes. runSweep is still single-threaded at
    // this point (the thread pool only exists inside runner.run), so
    // the fork in the supervisor is safe. Leases are keyed by cell
    // fingerprint, so compute them even without a journal.
    if (opts.workers > 0) {
        if (fingerprints.empty()) {
            fingerprints.resize(cells.size());
            for (std::size_t i = 0; i < cells.size(); ++i)
                fingerprints[i] = cellFingerprint(cells[i]);
        }
        runSweepProcPool(cells, opts, fingerprints, replayed,
                         journal.get(), results, timing, cell_prof);
        const std::uint64_t pool_wall_us = steadyNowUs() - sweep_start_us;
        foldSweepTelemetry(cells, results, timing, cell_prof,
                           sweep_start_us, pool_wall_us, opts.workers);
        return results;
    }

    auto errors = runner.run(cells.size(), [&](std::size_t i) {
        if (replayed[i])
            return;
        const SweepCell &cell = cells[i];
        SweepCellTiming &t = timing[i];

        // Bounded retry: a throwing simulation gets opts.retries more
        // attempts (exponential backoff); a watchdog timeout does not
        // retry -- a second attempt would only time out again.
        PhaseTotals prof_before;
        for (unsigned attempt = 0;; ++attempt) {
            try {
                t.start_us = steadyNowUs();
                if (profActive())
                    prof_before = threadPhaseTotals();
                t.worker = ParallelRunner::currentWorker();
                if (g_fault_hook)
                    g_fault_hook(cell, attempt);
                if (opts.fail_cell.matches(sweepCellDisplayName(cell))) {
                    triggerCellFault(opts.fail_cell,
                                     sweepCellDisplayName(cell));
                }
                if (opts.cell_timeout_s > 0.0)
                    armCellDeadline(opts.cell_timeout_s);
                results[i] = runFunctional(cell.hierarchy, cell.mnm,
                                           cell.app, cell.instructions);
                disarmCellDeadline();
                break;
            } catch (const CellTimeoutError &) {
                throw; // never retried
            } catch (...) {
                disarmCellDeadline();
                if (attempt >= opts.retries)
                    throw;
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    50u << std::min(attempt, 6u)));
            }
        }
        std::uint64_t end_us = steadyNowUs();
        t.dur_us = end_us - t.start_us;
        t.ran = true;
        // This worker runs one cell at a time, so the thread's phase
        // totals advanced by exactly this cell's work (the snapshot is
        // re-taken per attempt: retries attribute the final run only).
        if (profActive())
            cell_prof[i] = phaseTotalsDelta(prof_before,
                                            threadPhaseTotals());
        if (journal)
            journal->append(fingerprints[i], results[i]);
        if (opts.progress) {
            std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            // ETA: project the remaining cells at the observed pace.
            double elapsed_s =
                static_cast<double>(end_us - sweep_start_us) / 1e6;
            double eta_s = elapsed_s / static_cast<double>(done) *
                           static_cast<double>(cells.size() - done);
            progress("[%zu/%zu] %s (eta %.1fs)", done, cells.size(),
                     sweepCellDisplayName(cell).c_str(), eta_s);
        }
    });
    const std::uint64_t wall_us = steadyNowUs() - sweep_start_us;

    // Graceful degradation: a failed cell is marked, warned about, and
    // counted; the sweep's other cells stand. Benches print "<failed>"
    // gaps for the marked cells and exit via sweepExitCode().
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i])
            continue;
        SweepFailCause cause = SweepFailCause::RetryExhausted;
        std::string reason;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const CellTimeoutError &e) {
            cause = SweepFailCause::Timeout;
            reason = e.what();
        } catch (const std::exception &e) {
            reason = e.what();
        } catch (...) {
            reason = "non-standard exception";
        }
        recordSweepCellFailure(cells[i], i, cause, reason, results[i]);
    }

    foldSweepTelemetry(cells, results, timing, cell_prof,
                       sweep_start_us, wall_us, runner.jobs());
    return results;
}

int
sweepExitCode()
{
    return g_sweep_failed.load(std::memory_order_relaxed) ? 1 : 0;
}

void
setSweepFaultHookForTest(
    std::function<void(const SweepCell &, unsigned)> hook)
{
    g_fault_hook = std::move(hook);
}

const std::function<void(const SweepCell &, unsigned)> &
sweepFaultHook()
{
    return g_fault_hook;
}

} // namespace mnm
