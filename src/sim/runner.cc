#include "sim/runner.hh"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/logging.hh"

namespace mnm
{

namespace
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

} // anonymous namespace

unsigned
jobsFromEnv()
{
    const char *env = std::getenv("MNM_JOBS");
    if (!env)
        return hardwareJobs();
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0)
        fatal("MNM_JOBS='%s' is not a positive integer", env);
    return static_cast<unsigned>(v);
}

std::vector<SweepCell>
makeGridCells(const std::vector<std::string> &apps,
              const std::vector<SweepVariant> &variants,
              std::uint64_t instructions)
{
    std::vector<SweepCell> cells;
    cells.reserve(apps.size() * variants.size());
    for (const std::string &app : apps) {
        for (const SweepVariant &variant : variants) {
            cells.push_back({app, variant.hierarchy, variant.mnm,
                             instructions, variant.label});
        }
    }
    return cells;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

std::vector<std::exception_ptr>
ParallelRunner::run(std::size_t count,
                    const std::function<void(std::size_t)> &task) const
{
    std::vector<std::exception_ptr> errors(count);
    auto attempt = [&](std::size_t i) {
        try {
            task(i);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (jobs_ <= 1 || count <= 1) {
        // Legacy serial path: no threads, no atomics.
        for (std::size_t i = 0; i < count; ++i)
            attempt(i);
        return errors;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < count;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
            attempt(i);
        }
    };
    std::size_t spawn = std::min<std::size_t>(jobs_, count);
    {
        std::vector<std::jthread> pool;
        pool.reserve(spawn);
        for (std::size_t t = 0; t < spawn; ++t)
            pool.emplace_back(worker);
    } // joins every worker; errors[] is complete past this point
    return errors;
}

void
ParallelRunner::rethrowFirst(const std::vector<std::exception_ptr> &errors)
{
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

std::vector<MemSimResult>
runSweep(const std::vector<SweepCell> &cells,
         const ExperimentOptions &opts)
{
    ParallelRunner runner(opts.jobs);
    std::vector<MemSimResult> results(cells.size());
    std::atomic<std::size_t> completed{0};

    auto errors = runner.run(cells.size(), [&](std::size_t i) {
        const SweepCell &cell = cells[i];
        results[i] = runFunctional(cell.hierarchy, cell.mnm, cell.app,
                                   cell.instructions);
        if (opts.progress) {
            std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            progress("[%zu/%zu] %s%s%s", done, cells.size(),
                     cell.app.c_str(), cell.label.empty() ? "" : " · ",
                     cell.label.c_str());
        }
    });

    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i])
            continue;
        const SweepCell &cell = cells[i];
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            fatal("sweep cell %zu (%s%s%s) failed: %s", i,
                  cell.app.c_str(), cell.label.empty() ? "" : " · ",
                  cell.label.c_str(), e.what());
        } catch (...) {
            fatal("sweep cell %zu (%s%s%s) failed with a non-standard "
                  "exception",
                  i, cell.app.c_str(), cell.label.empty() ? "" : " · ",
                  cell.label.c_str());
        }
    }
    return results;
}

} // namespace mnm
