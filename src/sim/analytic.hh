/**
 * @file
 * The paper's analytical data-access-time model (Equations 1 and 2).
 *
 * Equation 1 (no MNM):
 *   T = sum_{i=1..L} [ prod_{n<i} m_n ] *
 *         ( h_i * (1 - m_i) + d_i * m_i )
 *       + [ prod_{n<=L} m_n ] * T_mem
 *
 * Equation 2 (with MNM): the miss-detection term of level i is only
 * paid for the fraction of level-i misses the MNM did NOT abort:
 *   ... + d_i * (1 - abort_i) * m_i ...
 *
 * where h_i = cache_hit_time, d_i = cache_miss_time (time to detect a
 * miss), m_i = local miss rate, abort_i = fraction of level-i misses the
 * MNM bypassed, and T_mem = memory latency.
 */

#ifndef MNM_SIM_ANALYTIC_HH
#define MNM_SIM_ANALYTIC_HH

#include <vector>

namespace mnm
{

/** Per-level inputs to the analytical model. */
struct LevelTiming
{
    double hit_time = 0.0;
    double miss_time = 0.0;
    /** Local miss rate in [0,1]. */
    double miss_rate = 0.0;
    /** Fraction of this level's misses the MNM aborts (Eq. 2). */
    double abort_fraction = 0.0;
};

/** Average data access time under Equations 1/2. */
double analyticDataAccessTime(const std::vector<LevelTiming> &levels,
                              double memory_latency);

/** Fraction of the average access time spent detecting misses. */
double analyticMissTimeFraction(const std::vector<LevelTiming> &levels,
                                double memory_latency);

} // namespace mnm

#endif // MNM_SIM_ANALYTIC_HH
