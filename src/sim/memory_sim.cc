#include "sim/memory_sim.hh"

#include <type_traits>

#include "obs/phase_profiler.hh"
#include "util/bits.hh"
#include "util/deadline.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

/** The profiling-off stand-in for PhaseScope: compiles to nothing, so
 *  the with_prof=false instantiations of the hot path below carry no
 *  profiler code at all -- not even the profActive() load. */
struct NoPhaseScope
{
    explicit NoPhaseScope(Phase) {}
};

} // anonymous namespace

/** PhaseScope or nothing, selected by the hot-path template flag. */
template <bool with_prof>
using ProfScope =
    std::conditional_t<with_prof, PhaseScope, NoPhaseScope>;

MemorySimulator::MemorySimulator(const HierarchyParams &hierarchy_params,
                                 std::optional<MnmSpec> mnm_spec,
                                 std::uint64_t seed)
    : hierarchy_(hierarchy_params, seed)
{
    if (mnm_spec)
        mnm_ = std::make_unique<MnmUnit>(*mnm_spec, hierarchy_);

    // Pre-compute every cache's probe/fill energy.
    SramModel sram;
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const CacheParams &cp = hierarchy_.cache(id).params();
        CacheGeometry geom;
        geom.capacity_bytes = cp.capacity_bytes;
        geom.block_bytes = cp.block_bytes;
        geom.associativity = cp.associativity;
        std::uint64_t blocks = cp.capacity_bytes / cp.block_bytes;
        std::uint32_t ways =
            cp.associativity ? cp.associativity
                             : static_cast<std::uint32_t>(blocks);
        unsigned set_bits = exactLog2(blocks / ways);
        unsigned block_bits = exactLog2(cp.block_bytes);
        // 32-bit paper addresses: tag = addr minus index minus offset,
        // plus valid/dirty state.
        geom.tag_bits = 32u - set_bits - block_bits + 2u;
        cache_power_.push_back(sram.cache(geom));
    }
}

template <bool with_prof>
void
MemorySimulator::request(AccessType type, Addr addr, MemSimResult &result)
{
    BypassMask mask;
    if (mnm_) {
        ProfScope<with_prof> prof(Phase::Verdict);
        mask = mnm_->computeBypass(type, addr);
    }
    performAccess<with_prof>(type, addr, mask, result);
}

template <bool with_prof, bool below_l1>
void
MemorySimulator::performAccess(AccessType type, Addr addr,
                               const BypassMask &mask,
                               MemSimResult &result)
{
    // Self time here is the hierarchy walk + accounting; the MnmUnit
    // event-ring drain fired at the end of the walk opens its own
    // FeedDrain scope inside this one (UpdateFeed on the per-event
    // reference path).
    ProfScope<with_prof> prof(Phase::HierWalk);
    AccessResult access =
        below_l1 ? hierarchy_.accessBelowL1(type, addr, mask)
                 : hierarchy_.access(type, addr, mask);
    ++result.requests;
    if (mnm_) {
        result.coverage.record(access);
        result.decisions.recordAccess(access);
    }

    Cycles latency = access.latency;
    if (access.from_memory)
        ++result.memory_accesses;
    // The walk plan recorded the supplier's hit latency (memory latency
    // when from_memory), so no cacheAt() re-walk per request.
    const Cycles supply_cost = access.supply_latency;

    if (mnm_)
        latency += mnm_->applyPlacementCosts(access);

    result.total_access_cycles += latency;
    result.miss_cycles += latency - supply_cost;

    // Energy: probes split hit/miss; every level under the supplier was
    // (re)filled on the way back. The hot path only counts events; the
    // per-event energies are multiplied out once at the end of run().
    for (std::uint8_t i = 0; i < access.num_probes; ++i) {
        const ProbeRecord &probe = access.probes[i];
        CacheEventCounts &ec = event_counts_[probe.cache];
        if (!probe.bypassed) {
            if (probe.hit) {
                ++ec.probe_hit;
            } else {
                ++ec.probe_miss;
            }
        }
        if (probe.level < access.supply_level)
            ++ec.fill;
    }
    for (std::uint16_t i = 0; i < access.num_writebacks; ++i) {
        const WritebackRecord &wb = access.writebacks[i];
        // Absorbing dirties a resident copy (a write); passing through
        // still paid a tag probe (charged as a read).
        if (wb.absorbed) {
            ++event_counts_[wb.cache].wb_absorbed;
        } else {
            ++event_counts_[wb.cache].wb_forwarded;
        }
    }
}

template <bool with_prof>
void
MemorySimulator::runBatchRequests(const InstructionBatch &batch,
                                  const Cache &l1i, MemSimResult &result)
{
    if (req_addr_.empty()) {
        constexpr std::size_t max_requests =
            2 * InstructionBatch::capacity;
        req_addr_.reset(max_requests);
        req_type_.reset(max_requests);
        req_cand_.reset(max_requests);
    }

    // Stage 1: derive the batch's ordered request stream. The fetch-
    // line dedup is a pure function of the pc sequence, so hoisting it
    // off the access path changes no request and no count.
    std::size_t n = 0;
    {
        ProfScope<with_prof> prof(Phase::BatchGen);
        for (const Instruction &inst : batch) {
            Addr line = l1i.blockAddr(inst.pc);
            if (line != cur_fetch_line_) {
                cur_fetch_line_ = line;
                ++result.fetch_requests;
                req_type_[n] =
                    static_cast<std::uint8_t>(AccessType::InstFetch);
                req_addr_[n] = inst.pc;
                ++n;
            }
            if (inst.isMem()) {
                ++result.data_requests;
                req_type_[n] = static_cast<std::uint8_t>(
                    inst.cls == InstClass::Load ? AccessType::Load
                                                : AccessType::Store);
                req_addr_[n] = inst.mem_addr;
                ++n;
            }
        }
    }

    // Stage 2a, guard-free plans (every sound config): a request that
    // hits its level-1 cache never consults the bypass mask -- the
    // walk stops before the first planned level -- and a guard-free
    // verdict carries no per-verdict statistics, so the verdict is
    // provably dead data. Probe L1 directly (the verdict reads only
    // filter state, never level-1 replacement state, so probing first
    // changes no verdict): a hit completes the whole access right
    // here -- the L1-hit accounting below is performAccess() on an
    // L1 hit, term for term -- and only the L1-missing minority pays
    // a verdict and the below-L1 walk.
    if (!mnm_->planGuarded(AccessType::InstFetch) &&
        !mnm_->planGuarded(AccessType::Load)) {
        // L1Peek self time = the lookahead peeks, prefetch hints, and
        // loop control; Verdict and HierWalk open nested scopes.
        ProfScope<with_prof> prof(Phase::L1Peek);
        const Cache &l1d = hierarchy_.cacheAt(1, AccessType::Load);
        Cache &l1i_mut = hierarchy_.cacheAt(1, AccessType::InstFetch);
        Cache &l1d_mut = hierarchy_.cacheAt(1, AccessType::Load);
        const CacheId l1i_id = hierarchy_.path(AccessType::InstFetch)[0];
        const CacheId l1d_id = hierarchy_.path(AccessType::Load)[0];
        const Cycles l1i_hit_latency = l1i.params().hit_latency;
        const Cycles l1d_hit_latency = l1d.params().hit_latency;
        // applyPlacementCosts() on an L1 hit: Parallel charges its
        // always-on lookup, Serial and Distributed add nothing.
        const bool charge_parallel =
            !mnm_->spec().perfect &&
            mnm_->spec().placement == MnmPlacement::Parallel;
        constexpr std::size_t prefetch_requests = 12;
        for (std::size_t k = 0; k < n; ++k) {
            const AccessType type =
                static_cast<AccessType>(req_type_[k]);
            const bool is_instr = type == AccessType::InstFetch;
            // Two-tier lookahead. Far tier: hint the L1 tag row so
            // both the near tier's peek and the eventual probe scan
            // resident lines. Near tier: hint the filter tables, gated
            // on an L1 peek -- hints for L1-hitting requests would be
            // dead weight. The peek against current state is only a
            // heuristic for future state; a wrong guess costs a missed
            // hint, never correctness.
            if (k + 2 * prefetch_requests < n) {
                const std::size_t f = k + 2 * prefetch_requests;
                const Cache &fl1 =
                    static_cast<AccessType>(req_type_[f]) ==
                            AccessType::InstFetch
                        ? l1i
                        : l1d;
                fl1.prefetchSet(fl1.blockAddr(req_addr_[f]));
            }
            if (k + prefetch_requests < n) {
                const std::size_t f = k + prefetch_requests;
                const AccessType ftype =
                    static_cast<AccessType>(req_type_[f]);
                const Cache &fl1 =
                    ftype == AccessType::InstFetch ? l1i : l1d;
                if (!fl1.contains(fl1.blockAddr(req_addr_[f])))
                    mnm_->prefetchCandidates(ftype, req_addr_[f]);
            }
            bool hit;
            {
                ProfScope<with_prof> prof_walk(Phase::HierWalk);
                Cache &l1 = is_instr ? l1i_mut : l1d_mut;
                hit = l1.probe(l1.blockAddr(req_addr_[k]),
                               type == AccessType::Store);
                if (hit) {
                    ++result.requests;
                    result.total_access_cycles +=
                        is_instr ? l1i_hit_latency : l1d_hit_latency;
                    ++event_counts_[is_instr ? l1i_id : l1d_id]
                          .probe_hit;
                }
            }
            if (hit) {
                mnm_->noteLookup();
                if (charge_parallel)
                    mnm_->chargeLookup();
                continue;
            }
            BypassMask mask;
            {
                ProfScope<with_prof> prof_verdict(Phase::Verdict);
                std::uint32_t cand;
                mnm_->computeCandidates(type, req_addr_.data() + k,
                                        &cand, 1);
                mask = mnm_->finishBypass(type, req_addr_[k], cand);
            }
            performAccess<with_prof, true>(type, req_addr_[k], mask,
                                           result);
        }
        return;
    }

    // Stage 2b, guarded plans (unsound ablations, oracle checking):
    // every verdict is consumed -- guards record violations -- so run
    // same-plan requests through the SoA kernels a chunk at a time,
    // then consume in order. Consumption can move MNM state (fills,
    // evictions, flushes); the epoch check recomputes the
    // not-yet-consumed tail whenever it does, so every access sees
    // exactly the verdict the per-access path would have produced
    // against the same state.
    // Verdict self time = the chunked SoA kernels, finishBypass, and
    // chunk control; each access's HierWalk scope nests inside.
    ProfScope<with_prof> prof_verdict(Phase::Verdict);
    constexpr std::size_t chunk_lanes = 8;
    const std::uint8_t fetch_tag =
        static_cast<std::uint8_t>(AccessType::InstFetch);
    // With split L1s over a unified L2+ spine (the common topology),
    // the fetch and data plans compile identically, so a chunk may
    // span plan switches -- the stream alternates types every couple
    // of requests, and same-plan runs alone would cap chunks there.
    const bool any_plan = mnm_->plansIdentical();
    std::size_t i = 0;
    while (i < n) {
        const bool fetch = req_type_[i] == fetch_tag;
        std::size_t j = i + 1;
        while (j < n && j - i < chunk_lanes &&
               (any_plan || (req_type_[j] == fetch_tag) == fetch)) {
            ++j;
        }
        const AccessType plan_type =
            fetch ? AccessType::InstFetch : AccessType::Load;
        std::uint64_t epoch = mnm_->stateEpoch();
        mnm_->computeCandidates(plan_type, req_addr_.data() + i,
                                req_cand_.data() + i, j - i);
        for (std::size_t k = i; k < j; ++k) {
            if (mnm_->stateEpoch() != epoch) {
                epoch = mnm_->stateEpoch();
                mnm_->computeCandidates(plan_type, req_addr_.data() + k,
                                        req_cand_.data() + k, j - k);
            }
            // Hint the filter-table lines a fixed request distance
            // ahead -- far enough to cover the tables' miss latency,
            // near enough that the lines survive until use. Table
            // indices are pure in the address, so epoch churn between
            // hint and verdict cannot misdirect them.
            constexpr std::size_t prefetch_requests = 12;
            if (k + prefetch_requests < n) {
                mnm_->prefetchCandidates(
                    static_cast<AccessType>(
                        req_type_[k + prefetch_requests]),
                    req_addr_[k + prefetch_requests]);
            }
            const AccessType type =
                static_cast<AccessType>(req_type_[k]);
            BypassMask mask =
                mnm_->finishBypass(type, req_addr_[k], req_cand_[k]);
            performAccess<with_prof>(type, req_addr_[k], mask, result);
        }
        i = j;
    }
}

MemSimResult
MemorySimulator::run(WorkloadGenerator &workload,
                     std::uint64_t instructions)
{
    MemSimResult result;
    result.instructions = instructions;
    event_counts_.assign(hierarchy_.numCaches(), CacheEventCounts());

    // Root phase: self time is whatever the nested scopes below do not
    // claim (reference-kernel stepping, loop overhead).
    PhaseScope prof_run(Phase::Run);

    const Cache &l1i = hierarchy_.cacheAt(1, AccessType::InstFetch);

    // One mode check for the whole window: the profiling-off
    // instantiations of the step and batch paths carry zero per-access
    // profiler code (the mode cannot change mid-process).
    const bool with_prof = profActive();

    if (reference_kernel_) {
        // Single-step reference path: one virtual next() per
        // instruction, exactly the pre-batching kernel.
        Instruction inst;
        for (std::uint64_t i = 0; i < instructions; ++i) {
            pollCellDeadline();
            workload.next(inst);
            if (with_prof)
                step<true>(inst, l1i, result);
            else
                step<false>(inst, l1i, result);
        }
    } else {
        if (!batch_)
            batch_ = std::make_unique<InstructionBatch>();
        const bool batch_verdicts =
            mnm_ && mnm_->simdBackend() != SimdBackend::Off;
        std::uint64_t remaining = instructions;
        while (remaining > 0) {
            // The watchdog moves from per-instruction to per-batch: at
            // most ~4096 instructions of extra latency before a cell
            // deadline is noticed, well inside the second-scale
            // timeouts MNM_CELL_TIMEOUT_S expresses.
            {
                PhaseScope prof(Phase::BatchGen);
                pollCellDeadlineBatch();
                workload.nextBatch(*batch_, remaining);
            }
            if (batch_verdicts) {
                if (with_prof)
                    runBatchRequests<true>(*batch_, l1i, result);
                else
                    runBatchRequests<false>(*batch_, l1i, result);
            } else if (with_prof) {
                for (const Instruction &inst : *batch_)
                    step<true>(inst, l1i, result);
            } else {
                for (const Instruction &inst : *batch_)
                    step<false>(inst, l1i, result);
            }
            remaining -= batch_->size;
        }
    }

    // Fold the per-cache event counts into the energy breakdown, one
    // multiply per counter instead of one add per event.
    PhaseScope prof_cold(Phase::Cold);
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const PowerDelay &pd = cache_power_[id];
        const CacheEventCounts &ec = event_counts_[id];
        result.energy.probe_hit_pj +=
            static_cast<double>(ec.probe_hit) * pd.read_energy_pj;
        result.energy.probe_miss_pj +=
            static_cast<double>(ec.probe_miss) * pd.read_energy_pj;
        result.energy.fill_pj +=
            static_cast<double>(ec.fill) * pd.write_energy_pj;
        result.energy.writeback_pj +=
            static_cast<double>(ec.wb_absorbed) * pd.write_energy_pj +
            static_cast<double>(ec.wb_forwarded) * pd.read_energy_pj;
    }

    if (mnm_) {
        // Drain the MNM's internally-accumulated energy (lookups charged
        // above plus bookkeeping updates) incrementally per run() call.
        PicoJoules now = mnm_->consumedEnergyPj();
        result.energy.mnm_pj = now - mnm_energy_seen_;
        mnm_energy_seen_ = now;
        result.soundness_violations = mnm_->soundnessViolations();
        result.filter_anomalies = mnm_->filterAnomalies();
        result.mnm_storage_bits = mnm_->storageBits();
        for (std::uint32_t l = 0; l < mnm_->violationLevels(); ++l)
            result.decisions.setForbidden(l, mnm_->violationsAtLevel(l));
    }

    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const Cache &c = hierarchy_.cache(id);
        CacheSnapshot snap;
        snap.name = c.params().name;
        snap.level = hierarchy_.levelOf(id);
        snap.accesses = c.stats().accesses.value();
        snap.hits = c.stats().hits.value();
        snap.mru_hits = c.stats().mru_hits.value();
        snap.misses = c.stats().misses.value();
        snap.bypasses = c.stats().bypasses.value();
        snap.hit_rate = c.stats().hitRate();
        result.caches.push_back(snap);
    }
    return result;
}

void
MemorySimulator::setReferenceKernel(bool on)
{
    reference_kernel_ = on;
    if (mnm_)
        mnm_->setReferenceDispatch(on);
}

void
MemorySimulator::setReferenceFeed(bool on)
{
    if (mnm_)
        mnm_->setReferenceFeed(on);
}

} // namespace mnm
