#include "sim/memory_sim.hh"

#include "util/bits.hh"
#include "util/deadline.hh"
#include "util/logging.hh"

namespace mnm
{

MemorySimulator::MemorySimulator(const HierarchyParams &hierarchy_params,
                                 std::optional<MnmSpec> mnm_spec,
                                 std::uint64_t seed)
    : hierarchy_(hierarchy_params, seed)
{
    if (mnm_spec)
        mnm_ = std::make_unique<MnmUnit>(*mnm_spec, hierarchy_);

    // Pre-compute every cache's probe/fill energy.
    SramModel sram;
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const CacheParams &cp = hierarchy_.cache(id).params();
        CacheGeometry geom;
        geom.capacity_bytes = cp.capacity_bytes;
        geom.block_bytes = cp.block_bytes;
        geom.associativity = cp.associativity;
        std::uint64_t blocks = cp.capacity_bytes / cp.block_bytes;
        std::uint32_t ways =
            cp.associativity ? cp.associativity
                             : static_cast<std::uint32_t>(blocks);
        unsigned set_bits = exactLog2(blocks / ways);
        unsigned block_bits = exactLog2(cp.block_bytes);
        // 32-bit paper addresses: tag = addr minus index minus offset,
        // plus valid/dirty state.
        geom.tag_bits = 32u - set_bits - block_bits + 2u;
        cache_power_.push_back(sram.cache(geom));
    }
}

void
MemorySimulator::request(AccessType type, Addr addr, MemSimResult &result)
{
    BypassMask mask;
    if (mnm_)
        mask = mnm_->computeBypass(type, addr);

    AccessResult access = hierarchy_.access(type, addr, mask);
    ++result.requests;
    if (mnm_) {
        result.coverage.record(access);
        result.decisions.recordAccess(access);
    }

    Cycles latency = access.latency;
    Cycles supply_cost;
    if (access.from_memory) {
        ++result.memory_accesses;
        supply_cost = hierarchy_.memoryLatency();
    } else {
        const Cache &supplier =
            hierarchy_.cacheAt(access.supply_level, type);
        supply_cost = supplier.params().hit_latency;
    }

    if (mnm_)
        latency += mnm_->applyPlacementCosts(access);

    result.total_access_cycles += latency;
    result.miss_cycles += latency - supply_cost;

    // Energy: probes split hit/miss; every level under the supplier was
    // (re)filled on the way back. The hot path only counts events; the
    // per-event energies are multiplied out once at the end of run().
    for (std::uint8_t i = 0; i < access.num_probes; ++i) {
        const ProbeRecord &probe = access.probes[i];
        CacheEventCounts &ec = event_counts_[probe.cache];
        if (!probe.bypassed) {
            if (probe.hit) {
                ++ec.probe_hit;
            } else {
                ++ec.probe_miss;
            }
        }
        if (probe.level < access.supply_level)
            ++ec.fill;
    }
    for (std::uint8_t i = 0; i < access.num_writebacks; ++i) {
        const WritebackRecord &wb = access.writebacks[i];
        // Absorbing dirties a resident copy (a write); passing through
        // still paid a tag probe (charged as a read).
        if (wb.absorbed) {
            ++event_counts_[wb.cache].wb_absorbed;
        } else {
            ++event_counts_[wb.cache].wb_forwarded;
        }
    }
}

MemSimResult
MemorySimulator::run(WorkloadGenerator &workload,
                     std::uint64_t instructions)
{
    MemSimResult result;
    result.instructions = instructions;
    event_counts_.assign(hierarchy_.numCaches(), CacheEventCounts());

    const Cache &l1i = hierarchy_.cacheAt(1, AccessType::InstFetch);

    if (reference_kernel_) {
        // Single-step reference path: one virtual next() per
        // instruction, exactly the pre-batching kernel.
        Instruction inst;
        for (std::uint64_t i = 0; i < instructions; ++i) {
            pollCellDeadline();
            workload.next(inst);
            step(inst, l1i, result);
        }
    } else {
        if (!batch_)
            batch_ = std::make_unique<InstructionBatch>();
        std::uint64_t remaining = instructions;
        while (remaining > 0) {
            // The watchdog moves from per-instruction to per-batch: at
            // most ~4096 instructions of extra latency before a cell
            // deadline is noticed, well inside the second-scale
            // timeouts MNM_CELL_TIMEOUT_S expresses.
            pollCellDeadlineBatch();
            workload.nextBatch(*batch_, remaining);
            for (const Instruction &inst : *batch_)
                step(inst, l1i, result);
            remaining -= batch_->size;
        }
    }

    // Fold the per-cache event counts into the energy breakdown, one
    // multiply per counter instead of one add per event.
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const PowerDelay &pd = cache_power_[id];
        const CacheEventCounts &ec = event_counts_[id];
        result.energy.probe_hit_pj +=
            static_cast<double>(ec.probe_hit) * pd.read_energy_pj;
        result.energy.probe_miss_pj +=
            static_cast<double>(ec.probe_miss) * pd.read_energy_pj;
        result.energy.fill_pj +=
            static_cast<double>(ec.fill) * pd.write_energy_pj;
        result.energy.writeback_pj +=
            static_cast<double>(ec.wb_absorbed) * pd.write_energy_pj +
            static_cast<double>(ec.wb_forwarded) * pd.read_energy_pj;
    }

    if (mnm_) {
        // Drain the MNM's internally-accumulated energy (lookups charged
        // above plus bookkeeping updates) incrementally per run() call.
        PicoJoules now = mnm_->consumedEnergyPj();
        result.energy.mnm_pj = now - mnm_energy_seen_;
        mnm_energy_seen_ = now;
        result.soundness_violations = mnm_->soundnessViolations();
        result.filter_anomalies = mnm_->filterAnomalies();
        result.mnm_storage_bits = mnm_->storageBits();
        for (std::uint32_t l = 0; l < mnm_->violationLevels(); ++l)
            result.decisions.setForbidden(l, mnm_->violationsAtLevel(l));
    }

    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const Cache &c = hierarchy_.cache(id);
        CacheSnapshot snap;
        snap.name = c.params().name;
        snap.level = hierarchy_.levelOf(id);
        snap.accesses = c.stats().accesses.value();
        snap.hits = c.stats().hits.value();
        snap.mru_hits = c.stats().mru_hits.value();
        snap.misses = c.stats().misses.value();
        snap.bypasses = c.stats().bypasses.value();
        snap.hit_rate = c.stats().hitRate();
        result.caches.push_back(snap);
    }
    return result;
}

void
MemorySimulator::setReferenceKernel(bool on)
{
    reference_kernel_ = on;
    if (mnm_)
        mnm_->setReferenceDispatch(on);
}

} // namespace mnm
