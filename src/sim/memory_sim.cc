#include "sim/memory_sim.hh"

#include <type_traits>

#include "obs/phase_profiler.hh"
#include "trace/batch_pipeline.hh"
#include "util/bits.hh"
#include "util/deadline.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

/** The profiling-off stand-in for PhaseScope: compiles to nothing, so
 *  the with_prof=false instantiations of the hot path below carry no
 *  profiler code at all -- not even the profActive() load. */
struct NoPhaseScope
{
    explicit NoPhaseScope(Phase) {}
};

} // anonymous namespace

/** PhaseScope or nothing, selected by the hot-path template flag. */
template <bool with_prof>
using ProfScope =
    std::conditional_t<with_prof, PhaseScope, NoPhaseScope>;

MemorySimulator::MemorySimulator(const HierarchyParams &hierarchy_params,
                                 std::optional<MnmSpec> mnm_spec,
                                 std::uint64_t seed)
    : hierarchy_(hierarchy_params, seed), overlap_(overlapFromEnv())
{
    if (mnm_spec)
        mnm_ = std::make_unique<MnmUnit>(*mnm_spec, hierarchy_);

    // Pre-compute every cache's probe/fill energy.
    SramModel sram;
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const CacheParams &cp = hierarchy_.cache(id).params();
        CacheGeometry geom;
        geom.capacity_bytes = cp.capacity_bytes;
        geom.block_bytes = cp.block_bytes;
        geom.associativity = cp.associativity;
        std::uint64_t blocks = cp.capacity_bytes / cp.block_bytes;
        std::uint32_t ways =
            cp.associativity ? cp.associativity
                             : static_cast<std::uint32_t>(blocks);
        unsigned set_bits = exactLog2(blocks / ways);
        unsigned block_bits = exactLog2(cp.block_bytes);
        // 32-bit paper addresses: tag = addr minus index minus offset,
        // plus valid/dirty state.
        geom.tag_bits = 32u - set_bits - block_bits + 2u;
        cache_power_.push_back(sram.cache(geom));
    }
}

template <bool with_prof>
void
MemorySimulator::request(AccessType type, Addr addr, MemSimResult &result)
{
    BypassMask mask;
    if (mnm_) {
        ProfScope<with_prof> prof(Phase::Verdict);
        mask = mnm_->computeBypass(type, addr);
    }
    performAccess<with_prof>(type, addr, mask, result);
}

template <bool with_prof, bool below_l1>
void
MemorySimulator::performAccess(AccessType type, Addr addr,
                               const BypassMask &mask,
                               MemSimResult &result)
{
    // Self time here is the hierarchy walk + accounting; the MnmUnit
    // event-ring drain fired at the end of the walk opens its own
    // FeedDrain scope inside this one (UpdateFeed on the per-event
    // reference path).
    ProfScope<with_prof> prof(Phase::HierWalk);
    AccessResult access =
        below_l1 ? hierarchy_.accessBelowL1(type, addr, mask)
                 : hierarchy_.access(type, addr, mask);
    accountAccess(access, result);
}

inline void
MemorySimulator::accountAccess(const AccessResult &access,
                               MemSimResult &result)
{
    ++result.requests;
    if (mnm_) {
        result.coverage.record(access);
        result.decisions.recordAccess(access);
    }

    Cycles latency = access.latency;
    if (access.from_memory)
        ++result.memory_accesses;
    // The walk plan recorded the supplier's hit latency (memory latency
    // when from_memory), so no cacheAt() re-walk per request.
    const Cycles supply_cost = access.supply_latency;

    if (mnm_)
        latency += mnm_->applyPlacementCosts(access);

    result.total_access_cycles += latency;
    result.miss_cycles += latency - supply_cost;

    // Energy: probes split hit/miss; every level under the supplier was
    // (re)filled on the way back. The hot path only counts events; the
    // per-event energies are multiplied out once at the end of run().
    for (std::uint8_t i = 0; i < access.num_probes; ++i) {
        const ProbeRecord &probe = access.probes[i];
        CacheEventCounts &ec = event_counts_[probe.cache];
        if (!probe.bypassed) {
            if (probe.hit) {
                ++ec.probe_hit;
            } else {
                ++ec.probe_miss;
            }
        }
        if (probe.level < access.supply_level)
            ++ec.fill;
    }
    for (std::uint16_t i = 0; i < access.num_writebacks; ++i) {
        const WritebackRecord &wb = access.writebacks[i];
        // Absorbing dirties a resident copy (a write); passing through
        // still paid a tag probe (charged as a read).
        if (wb.absorbed) {
            ++event_counts_[wb.cache].wb_absorbed;
        } else {
            ++event_counts_[wb.cache].wb_forwarded;
        }
    }
}

template <bool with_prof>
void
MemorySimulator::runBatchRequests(const RequestBatch &batch,
                                  const Cache &l1i, MemSimResult &result)
{
    // The request stream arrives already derived (generation and
    // stage-1 derivation are fused in nextRequests(), possibly on the
    // overlap producer thread); only the per-window counts fold in
    // here. Same stream, same counts as deriving on the spot -- the
    // dedup state threads through the producer unchanged.
    const std::size_t n = batch.size;
    const Addr *const req_addr = batch.addr;
    const std::uint8_t *const req_type = batch.kind;
    result.fetch_requests += batch.fetch_requests;
    result.data_requests += batch.data_requests;

    // Stage 2a, guard-free plans (every sound config): a request that
    // hits its level-1 cache never consults the bypass mask -- the
    // walk stops before the first planned level -- and a guard-free
    // verdict carries no per-verdict statistics, so the verdict is
    // provably dead data. Probe L1 directly (the verdict reads only
    // filter state, never level-1 replacement state, so probing first
    // changes no verdict): a hit completes the whole access right
    // here -- the L1-hit accounting below is performAccess() on an
    // L1 hit, term for term -- and only the L1-missing minority pays
    // a verdict and the below-L1 walk.
    if (!mnm_->planGuarded(AccessType::InstFetch) &&
        !mnm_->planGuarded(AccessType::Load)) {
        // L1Peek self time = the lookahead peeks, prefetch hints, and
        // loop control; Verdict, HierWalk, and LaneDescent open nested
        // scopes.
        ProfScope<with_prof> prof(Phase::L1Peek);
        const Cache &l1d = hierarchy_.cacheAt(1, AccessType::Load);
        Cache &l1i_mut = hierarchy_.cacheAt(1, AccessType::InstFetch);
        Cache &l1d_mut = hierarchy_.cacheAt(1, AccessType::Load);
        const CacheId l1i_id = hierarchy_.path(AccessType::InstFetch)[0];
        const CacheId l1d_id = hierarchy_.path(AccessType::Load)[0];
        const Cycles l1i_hit_latency = l1i.params().hit_latency;
        const Cycles l1d_hit_latency = l1d.params().hit_latency;
        // applyPlacementCosts() on an L1 hit: Parallel charges its
        // always-on lookup, Serial and Distributed add nothing.
        const bool charge_parallel =
            !mnm_->spec().perfect &&
            mnm_->spec().placement == MnmPlacement::Parallel;

        // Lane queue: an L1 miss is *queued* instead of walked on the
        // spot, and queued lanes descend together in descendLanes().
        // This is exactly the sequential semantics as long as nothing
        // reads state a queued lane's deferred walk would have written:
        //  - An L1 miss probe has no replacement side effects, and the
        //    deferred walk's only L1 mutation is the fill of the lane's
        //    own set -- so a pending-set bitmap per L1 structure guards
        //    every L1 probe, and a collision flushes the queue first.
        //  - Hit lanes between enqueue and flush touch only integer
        //    counters (noteLookup/chargeLookup/stats; the burst flag is
        //    re-reset by every access before use), all order-exact.
        //  - Verdicts and L2+ state move only inside the flush, lane by
        //    lane in request order -- each verdict sees every prior
        //    lane's fills and feed updates, exactly as sequentially.
        // Inclusive hierarchies break the first invariant (a deferred
        // walk can back-invalidate any L1 set), so they keep the
        // immediate walk. The win: enqueue-time prefetchDescent gives
        // the L2/L3 set rows the whole queue-residency distance to
        // arrive, where the immediate walk took their miss latency on
        // the critical path.
        const bool use_lanes = hierarchy_.params().inclusion ==
                               InclusionPolicy::NonInclusive;
        constexpr std::size_t lane_queue_capacity = 32;
        DescentLane lanes[lane_queue_capacity];
        std::uint64_t *lane_word[lane_queue_capacity];
        std::uint64_t lane_bit[lane_queue_capacity];
        std::size_t num_lanes = 0;
        if (use_lanes && pending_sets_[0].empty()) {
            pending_sets_[0].assign((l1i.numSets() + 63) / 64, 0);
            if (l1i_id != l1d_id)
                pending_sets_[1].assign((l1d.numSets() + 63) / 64, 0);
        }
        std::uint64_t *const pend_i = pending_sets_[0].data();
        std::uint64_t *const pend_d = l1i_id != l1d_id
                                          ? pending_sets_[1].data()
                                          : pending_sets_[0].data();

        const auto flush_lanes = [&] {
            if (num_lanes == 0)
                return;
            // LaneDescent self time = the queued walks + accounting +
            // loop; each lane's verdict opens a nested Verdict scope.
            ProfScope<with_prof> prof_lanes(Phase::LaneDescent);
            hierarchy_.descendLanes(
                lanes, num_lanes,
                [&](const DescentLane &lane) {
                    ProfScope<with_prof> prof_verdict(Phase::Verdict);
                    std::uint32_t cand;
                    mnm_->computeCandidates(lane.type, &lane.addr,
                                            &cand, 1);
                    return mnm_->finishBypass(lane.type, lane.addr,
                                              cand);
                },
                [&](const DescentLane &, const AccessResult &access) {
                    accountAccess(access, result);
                });
            for (std::size_t i = 0; i < num_lanes; ++i)
                *lane_word[i] &= ~lane_bit[i];
            num_lanes = 0;
        };

        constexpr std::size_t prefetch_requests = 12;
        for (std::size_t k = 0; k < n; ++k) {
            const AccessType type =
                static_cast<AccessType>(req_type[k]);
            const bool is_instr = type == AccessType::InstFetch;
            // Two-tier lookahead. Far tier: hint the L1 tag row so
            // both the near tier's peek and the eventual probe scan
            // resident lines. Near tier: hint the filter tables, gated
            // on an L1 peek -- hints for L1-hitting requests would be
            // dead weight. The peek against current state is only a
            // heuristic for future state; a wrong guess costs a missed
            // hint, never correctness.
            if (k + prefetch_requests < n) {
                const std::size_t f = k + prefetch_requests;
                const AccessType ftype =
                    static_cast<AccessType>(req_type[f]);
                const Cache &fl1 =
                    ftype == AccessType::InstFetch ? l1i : l1d;
                if (!fl1.contains(fl1.blockAddr(req_addr[f])))
                    mnm_->prefetchCandidates(ftype, req_addr[f]);
            }
            Cache &l1 = is_instr ? l1i_mut : l1d_mut;
            const BlockAddr block = l1.blockAddr(req_addr[k]);
            std::uint64_t *word = nullptr;
            std::uint64_t bit = 0;
            if (use_lanes && num_lanes > 0) {
                // A queued lane's deferred walk will fill its own L1
                // set; a probe of that set must not run ahead of it.
                const std::uint32_t set = l1.setIndex(block);
                word = (is_instr ? pend_i : pend_d) + (set >> 6);
                bit = std::uint64_t{1} << (set & 63);
                if (*word & bit)
                    flush_lanes();
            }
            bool hit;
            {
                ProfScope<with_prof> prof_walk(Phase::HierWalk);
                hit = l1.probe(block, type == AccessType::Store);
                if (hit) {
                    ++result.requests;
                    result.total_access_cycles +=
                        is_instr ? l1i_hit_latency : l1d_hit_latency;
                    ++event_counts_[is_instr ? l1i_id : l1d_id]
                          .probe_hit;
                }
            }
            if (hit) {
                mnm_->noteLookup();
                if (charge_parallel)
                    mnm_->chargeLookup();
                continue;
            }
            if (use_lanes) {
                if (!word) {
                    const std::uint32_t set = l1.setIndex(block);
                    word = (is_instr ? pend_i : pend_d) + (set >> 6);
                    bit = std::uint64_t{1} << (set & 63);
                }
                lanes[num_lanes] =
                    DescentLane{req_addr[k], type};
                lane_word[num_lanes] = word;
                lane_bit[num_lanes] = bit;
                *word |= bit;
                ++num_lanes;
                hierarchy_.prefetchDescent(type, req_addr[k]);
                if (num_lanes == lane_queue_capacity)
                    flush_lanes();
                continue;
            }
            BypassMask mask;
            {
                ProfScope<with_prof> prof_verdict(Phase::Verdict);
                std::uint32_t cand;
                mnm_->computeCandidates(type, req_addr + k,
                                        &cand, 1);
                mask = mnm_->finishBypass(type, req_addr[k], cand);
            }
            performAccess<with_prof, true>(type, req_addr[k], mask,
                                           result);
        }
        flush_lanes();
        return;
    }

    // Stage 2b, guarded plans (unsound ablations, oracle checking):
    // every verdict is consumed -- guards record violations -- so run
    // same-plan requests through the SoA kernels a chunk at a time,
    // then consume in order. Consumption can move MNM state (fills,
    // evictions, flushes); the epoch check recomputes the
    // not-yet-consumed tail whenever it does, so every access sees
    // exactly the verdict the per-access path would have produced
    // against the same state.
    // Verdict self time = the chunked SoA kernels, finishBypass, and
    // chunk control; each access's HierWalk scope nests inside.
    ProfScope<with_prof> prof_verdict(Phase::Verdict);
    if (req_cand_.empty())
        req_cand_.reset(RequestBatch::capacity);
    constexpr std::size_t chunk_lanes = 8;
    const std::uint8_t fetch_tag =
        static_cast<std::uint8_t>(AccessType::InstFetch);
    // With split L1s over a unified L2+ spine (the common topology),
    // the fetch and data plans compile identically, so a chunk may
    // span plan switches -- the stream alternates types every couple
    // of requests, and same-plan runs alone would cap chunks there.
    const bool any_plan = mnm_->plansIdentical();
    std::size_t i = 0;
    while (i < n) {
        const bool fetch = req_type[i] == fetch_tag;
        std::size_t j = i + 1;
        while (j < n && j - i < chunk_lanes &&
               (any_plan || (req_type[j] == fetch_tag) == fetch)) {
            ++j;
        }
        const AccessType plan_type =
            fetch ? AccessType::InstFetch : AccessType::Load;
        std::uint64_t epoch = mnm_->stateEpoch();
        mnm_->computeCandidates(plan_type, req_addr + i,
                                req_cand_.data() + i, j - i);
        for (std::size_t k = i; k < j; ++k) {
            if (mnm_->stateEpoch() != epoch) {
                epoch = mnm_->stateEpoch();
                mnm_->computeCandidates(plan_type, req_addr + k,
                                        req_cand_.data() + k, j - k);
            }
            // Hint the filter-table lines a fixed request distance
            // ahead -- far enough to cover the tables' miss latency,
            // near enough that the lines survive until use. Table
            // indices are pure in the address, so epoch churn between
            // hint and verdict cannot misdirect them.
            constexpr std::size_t prefetch_requests = 12;
            if (k + prefetch_requests < n) {
                mnm_->prefetchCandidates(
                    static_cast<AccessType>(
                        req_type[k + prefetch_requests]),
                    req_addr[k + prefetch_requests]);
            }
            const AccessType type =
                static_cast<AccessType>(req_type[k]);
            BypassMask mask =
                mnm_->finishBypass(type, req_addr[k], req_cand_[k]);
            performAccess<with_prof>(type, req_addr[k], mask, result);
        }
        i = j;
    }
}

MemSimResult
MemorySimulator::run(WorkloadGenerator &workload,
                     std::uint64_t instructions)
{
    MemSimResult result;
    result.instructions = instructions;
    event_counts_.assign(hierarchy_.numCaches(), CacheEventCounts());

    // Root phase: self time is whatever the nested scopes below do not
    // claim (reference-kernel stepping, loop overhead).
    PhaseScope prof_run(Phase::Run);

    const Cache &l1i = hierarchy_.cacheAt(1, AccessType::InstFetch);

    // One mode check for the whole window: the profiling-off
    // instantiations of the step and batch paths carry zero per-access
    // profiler code (the mode cannot change mid-process).
    const bool with_prof = profActive();

    if (reference_kernel_) {
        // Single-step reference path: one virtual next() per
        // instruction, exactly the pre-batching kernel.
        Instruction inst;
        for (std::uint64_t i = 0; i < instructions; ++i) {
            pollCellDeadline();
            workload.next(inst);
            if (with_prof)
                step<true>(inst, l1i, result);
            else
                step<false>(inst, l1i, result);
        }
    } else {
        const bool batch_verdicts =
            mnm_ && mnm_->simdBackend() != SimdBackend::Off;
        std::uint64_t remaining = instructions;
        if (batch_verdicts) {
            // Batch-verdict path: the consumption unit is the derived
            // request stream itself (nextRequests() fuses generation
            // with stage-1 derivation). The fetch-line dedup threads
            // the simulator's persistent state through whichever
            // producer runs -- with a producer thread, the pipeline's
            // slot handoff orders every dedup write before this
            // thread's reads.
            FetchDedup dedup{l1i.blockBits(), cur_fetch_line_};
            auto consume = [&](const RequestBatch &batch) {
                if (with_prof)
                    runBatchRequests<true>(batch, l1i, result);
                else
                    runBatchRequests<false>(batch, l1i, result);
            };
            if (overlap_) {
                // Stage-decoupled generation: the pipeline produces
                // batch N+1 (producer thread or software-pipelined
                // slice) while this thread consumes batch N.
                // Attribution stays honest: a synchronous pipeline is
                // still generation (BatchGen); only a real producer
                // thread turns this scope into overlap wait/handoff
                // (GenOverlap).
                RequestPipeline pipeline(workload, dedup, instructions);
                const Phase gen_phase = pipeline.synchronous()
                                            ? Phase::BatchGen
                                            : Phase::GenOverlap;
                while (remaining > 0) {
                    const RequestBatch *batch;
                    {
                        PhaseScope prof(gen_phase);
                        pollCellDeadlineBatch();
                        batch = pipeline.acquire();
                    }
                    MNM_ASSERT(batch,
                               "request pipeline ran dry before the "
                               "instruction budget");
                    consume(*batch);
                    remaining -= batch->instructions;
                }
            } else {
                if (!req_batch_)
                    req_batch_ = std::make_unique<RequestBatch>();
                while (remaining > 0) {
                    {
                        PhaseScope prof(Phase::BatchGen);
                        pollCellDeadlineBatch();
                        workload.nextRequests(*req_batch_, dedup,
                                              remaining);
                    }
                    consume(*req_batch_);
                    remaining -= req_batch_->instructions;
                }
            }
            cur_fetch_line_ = dedup.cur_line;
        } else if (overlap_) {
            // Step consumers under overlap: the handoff unit stays the
            // Instruction record. The slice is a full batch, so on a
            // single hardware thread this is the synchronous loop
            // below, schedule and all.
            BatchPipeline pipeline(workload, instructions);
            const Phase gen_phase = pipeline.synchronous()
                                        ? Phase::BatchGen
                                        : Phase::GenOverlap;
            while (remaining > 0) {
                const InstructionBatch *batch;
                {
                    PhaseScope prof(gen_phase);
                    pollCellDeadlineBatch();
                    batch = pipeline.acquire();
                }
                MNM_ASSERT(batch,
                           "batch pipeline ran dry before the "
                           "instruction budget");
                if (with_prof) {
                    for (const Instruction &inst : *batch)
                        step<true>(inst, l1i, result);
                } else {
                    for (const Instruction &inst : *batch)
                        step<false>(inst, l1i, result);
                }
                remaining -= batch->size;
            }
        } else {
            if (!batch_)
                batch_ = std::make_unique<InstructionBatch>();
            while (remaining > 0) {
                // The watchdog moves from per-instruction to per-batch:
                // at most ~4096 instructions of extra latency before a
                // cell deadline is noticed, well inside the second-
                // scale timeouts MNM_CELL_TIMEOUT_S expresses.
                {
                    PhaseScope prof(Phase::BatchGen);
                    pollCellDeadlineBatch();
                    workload.nextBatch(*batch_, remaining);
                }
                if (with_prof) {
                    for (const Instruction &inst : *batch_)
                        step<true>(inst, l1i, result);
                } else {
                    for (const Instruction &inst : *batch_)
                        step<false>(inst, l1i, result);
                }
                remaining -= batch_->size;
            }
        }
    }

    // Fold the per-cache event counts into the energy breakdown, one
    // multiply per counter instead of one add per event.
    PhaseScope prof_cold(Phase::Cold);
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const PowerDelay &pd = cache_power_[id];
        const CacheEventCounts &ec = event_counts_[id];
        result.energy.probe_hit_pj +=
            static_cast<double>(ec.probe_hit) * pd.read_energy_pj;
        result.energy.probe_miss_pj +=
            static_cast<double>(ec.probe_miss) * pd.read_energy_pj;
        result.energy.fill_pj +=
            static_cast<double>(ec.fill) * pd.write_energy_pj;
        result.energy.writeback_pj +=
            static_cast<double>(ec.wb_absorbed) * pd.write_energy_pj +
            static_cast<double>(ec.wb_forwarded) * pd.read_energy_pj;
    }

    if (mnm_) {
        // Drain the MNM's internally-accumulated energy (lookups charged
        // above plus bookkeeping updates) incrementally per run() call.
        PicoJoules now = mnm_->consumedEnergyPj();
        result.energy.mnm_pj = now - mnm_energy_seen_;
        mnm_energy_seen_ = now;
        result.soundness_violations = mnm_->soundnessViolations();
        result.filter_anomalies = mnm_->filterAnomalies();
        result.mnm_storage_bits = mnm_->storageBits();
        for (std::uint32_t l = 0; l < mnm_->violationLevels(); ++l)
            result.decisions.setForbidden(l, mnm_->violationsAtLevel(l));
    }

    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        const Cache &c = hierarchy_.cache(id);
        CacheSnapshot snap;
        snap.name = c.params().name;
        snap.level = hierarchy_.levelOf(id);
        snap.accesses = c.stats().accesses.value();
        snap.hits = c.stats().hits.value();
        snap.mru_hits = c.stats().mru_hits.value();
        snap.misses = c.stats().misses.value();
        snap.bypasses = c.stats().bypasses.value();
        snap.hit_rate = c.stats().hitRate();
        result.caches.push_back(snap);
    }
    return result;
}

void
MemorySimulator::setReferenceKernel(bool on)
{
    reference_kernel_ = on;
    if (mnm_)
        mnm_->setReferenceDispatch(on);
}

void
MemorySimulator::setReferenceFeed(bool on)
{
    if (mnm_)
        mnm_->setReferenceFeed(on);
}

} // namespace mnm
