#include "sim/proc_pool.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <utility>

#include "core/fault_inject.hh"
#include "obs/json.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "sim/recovery.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

std::uint64_t
steadyNowUs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now().time_since_epoch())
            .count());
}

// --------------------------------------------------- frame plumbing
//
// Every pipe message is one frame: a 4-byte little-endian payload
// length followed by the payload. Fixed-width and endian-pinned so the
// framing never depends on host struct layout.

std::uint32_t
loadLe32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void
storeLe32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v & 0xff);
    p[1] = static_cast<unsigned char>((v >> 8) & 0xff);
    p[2] = static_cast<unsigned char>((v >> 16) & 0xff);
    p[3] = static_cast<unsigned char>((v >> 24) & 0xff);
}

/** Largest response frame the supervisor will buffer; anything bigger
 *  is a protocol breach and the worker is treated as crashed. */
constexpr std::uint32_t max_frame_bytes = 64u * 1024 * 1024;

// -------------------------------------------- prof wire format
//
// With MNM_PROF active each worker measures its own per-phase profile
// (the profiler state is per-process; the supervisor cannot see it) and
// ships the per-cell delta home inside the response frame, so per-cell
// and per-worker attribution work identically to the thread pool.
// Format: {"v":<version>,"phases":[...]} where "phases" is a JSON array
// of num_phases arrays of the 8 PhaseCounters fields in declaration
// order. The arrays are positional (phase values and counter fields are
// both append-only by contract), which is exactly why the block carries
// an explicit version: growing the Phase enum changes the array shape,
// and a supervisor paired with a worker binary from the other side of
// that growth must drop the block with a warning instead of folding
// counters into the wrong phases. The version bumps whenever the
// positional layout changes (v2 = the ten-phase layout; v1 was a bare
// eight-phase array with no tag).

constexpr std::uint64_t prof_wire_version = 2;

std::string
writePhaseTotals(const PhaseTotals &totals)
{
    std::string out = "{\"v\":";
    out += std::to_string(prof_wire_version);
    out += ",\"phases\":[";
    for (int p = 0; p < num_phases; ++p) {
        const PhaseCounters &c = totals.phase[p];
        if (p)
            out += ',';
        out += '[';
        out += std::to_string(c.ticks);
        out += ',';
        out += std::to_string(c.transitions);
        out += ',';
        out += std::to_string(c.cycles);
        out += ',';
        out += std::to_string(c.instructions);
        out += ',';
        out += std::to_string(c.llc_loads);
        out += ',';
        out += std::to_string(c.llc_misses);
        out += ',';
        out += std::to_string(c.branch_misses);
        out += ',';
        out += std::to_string(c.task_clock_ns);
        out += ']';
    }
    out += "]}";
    return out;
}

std::optional<PhaseTotals>
readPhaseTotals(const JsonValue &value)
{
    // A bare array is the untagged v1 layout (a pre-version worker
    // binary); anything without a matching version tag is schema skew
    // and must be dropped, never folded positionally.
    if (!value.isObject())
        return std::nullopt;
    const JsonValue *version = value.find("v");
    if (!version || !version->isInteger() ||
        version->asU64() != prof_wire_version) {
        return std::nullopt;
    }
    const JsonValue *phases_json = value.find("phases");
    if (!phases_json || !phases_json->isArray())
        return std::nullopt;
    const JsonValue::Array &phases = phases_json->asArray();
    if (phases.size() != static_cast<std::size_t>(num_phases))
        return std::nullopt;
    PhaseTotals totals;
    for (int p = 0; p < num_phases; ++p) {
        if (!phases[p].isArray())
            return std::nullopt;
        const JsonValue::Array &fields = phases[p].asArray();
        if (fields.size() != 8)
            return std::nullopt;
        std::uint64_t v[8];
        for (int f = 0; f < 8; ++f) {
            if (!fields[f].isInteger())
                return std::nullopt;
            v[f] = fields[f].asU64();
        }
        PhaseCounters &c = totals.phase[p];
        c.ticks = v[0];
        c.transitions = v[1];
        c.cycles = v[2];
        c.instructions = v[3];
        c.llc_loads = v[4];
        c.llc_misses = v[5];
        c.branch_misses = v[6];
        c.task_clock_ns = v[7];
    }
    return totals;
}

void
addPhaseTotals(PhaseTotals &into, const PhaseTotals &from)
{
    for (int p = 0; p < num_phases; ++p) {
        PhaseCounters &d = into.phase[p];
        const PhaseCounters &s = from.phase[p];
        d.ticks += s.ticks;
        d.transitions += s.transitions;
        d.cycles += s.cycles;
        d.instructions += s.instructions;
        d.llc_loads += s.llc_loads;
        d.llc_misses += s.llc_misses;
        d.branch_misses += s.branch_misses;
        d.task_clock_ns += s.task_clock_ns;
    }
}

bool
writeFully(int fd, const void *data, std::size_t size)
{
    const char *p = static_cast<const char *>(data);
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = ::write(fd, p + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readFully(int fd, void *data, std::size_t size)
{
    char *p = static_cast<char *>(data);
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = ::read(fd, p + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, std::string_view payload)
{
    std::string frame;
    frame.resize(4 + payload.size());
    storeLe32(reinterpret_cast<unsigned char *>(frame.data()),
              static_cast<std::uint32_t>(payload.size()));
    std::memcpy(frame.data() + 4, payload.data(), payload.size());
    // One write per frame so a frame is never interleaved and a killed
    // writer leaves at most one torn frame at the reader.
    return writeFully(fd, frame.data(), frame.size());
}

// ------------------------------------------------------ worker child
//
// The forked child inherited everything by value: the cell vector, the
// options, the test fault hook. Its whole world is the two pipe fds.
// It must never touch stdout (the supervisor's tables) and must only
// leave via _Exit, so the supervisor's atexit manifest/trace writers
// are not run a second time from the child.

[[noreturn]] void
workerChildLoop(const std::vector<SweepCell> &cells,
                const ExperimentOptions &opts, int cmd_fd, int res_fd)
{
    for (;;) {
        unsigned char header[4];
        if (!readFully(cmd_fd, header, sizeof(header)))
            std::_Exit(0); // EOF: pool shutdown
        if (loadLe32(header) != 8)
            std::_Exit(0); // protocol breach; surfaces as a crash
        unsigned char payload[8];
        if (!readFully(cmd_fd, payload, sizeof(payload)))
            std::_Exit(0);
        const std::uint32_t index = loadLe32(payload);
        const unsigned attempt = loadLe32(payload + 4);
        if (index >= cells.size())
            std::_Exit(0);
        const SweepCell &cell = cells[index];

        std::string response;
        try {
            if (sweepFaultHook())
                sweepFaultHook()(cell, attempt);
            if (opts.fail_cell.matches(sweepCellDisplayName(cell))) {
                triggerCellFault(opts.fail_cell,
                                 sweepCellDisplayName(cell));
            }
            // No cooperative watchdog here: under MNM_WORKERS the
            // supervisor enforces MNM_CELL_TIMEOUT_S with a real
            // SIGKILL, which also catches cells that never poll.
            const bool prof = profActive();
            PhaseTotals prof_before;
            if (prof)
                prof_before = threadPhaseTotals();
            const std::uint64_t start_us = steadyNowUs();
            MemSimResult result = runFunctional(
                cell.hierarchy, cell.mnm, cell.app, cell.instructions);
            const std::uint64_t dur_us = steadyNowUs() - start_us;
            response = "{\"index\":" + std::to_string(index) +
                       ",\"dur_us\":" + std::to_string(dur_us);
            if (prof) {
                // This worker runs one cell at a time on one thread, so
                // the thread totals advanced by exactly this cell's
                // work -- the same snapshot-delta contract as the
                // thread pool, shipped home over the pipe because the
                // profiler state dies with this process.
                response += ",\"prof\":" +
                            writePhaseTotals(phaseTotalsDelta(
                                prof_before, threadPhaseTotals()));
            }
            response += ",\"result\":" + writeMemSimResult(result) + "}";
        } catch (const std::exception &e) {
            response = "{\"index\":" + std::to_string(index) +
                       ",\"error\":" + JsonWriter::quoted(e.what()) + "}";
        } catch (...) {
            response = "{\"index\":" + std::to_string(index) +
                       ",\"error\":\"non-standard exception\"}";
        }
        if (!writeFrame(res_fd, response))
            std::_Exit(0); // supervisor is gone
    }
}

// ------------------------------------------------------- supervisor

/** Supervisor-side state of one worker slot. */
struct WorkerProc
{
    pid_t pid = -1;
    int cmd_fd = -1; //!< supervisor -> worker commands
    int res_fd = -1; //!< worker -> supervisor responses (O_NONBLOCK)
    std::string buf; //!< partial response bytes
    int cell = -1;   //!< cell index in flight, -1 when idle
    unsigned attempt = 0;
    std::uint64_t issue_us = 0;
    std::uint64_t deadline_us = 0; //!< 0 = no deadline armed
    bool timed_out = false; //!< we SIGKILLed it for a deadline
    bool alive = false;
    unsigned spawns = 0;
    unsigned consecutive_deaths = 0;
    std::uint64_t respawn_at_us = 0;
};

/** "w<slot>" metric segment for per-worker-process attribution. */
std::string
slotMetric(std::size_t slot, const char *leaf)
{
    return "runner.proc.w" + std::to_string(slot) + "." + leaf;
}

/** Human-readable cause of a reaped worker's death. */
std::string
describeExit(int status)
{
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        const char *name = ::strsignal(sig);
        return "killed by signal " + std::to_string(sig) + " (" +
               (name ? name : "?") + ")";
    }
    if (WIFEXITED(status))
        return "exited with status " + std::to_string(WEXITSTATUS(status));
    return "ended with unrecognized wait status";
}

class ProcPoolSupervisor
{
  public:
    ProcPoolSupervisor(const std::vector<SweepCell> &cells,
                       const ExperimentOptions &opts,
                       const std::vector<std::string> &fingerprints,
                       CheckpointJournal *journal,
                       std::vector<MemSimResult> &results,
                       std::vector<SweepCellTiming> &timing,
                       std::vector<PhaseTotals> &cell_prof)
        : cells_(cells), opts_(opts), fingerprints_(fingerprints),
          journal_(journal), results_(results), timing_(timing),
          cell_prof_(cell_prof), crashes_(cells.size(), 0),
          lease_seq_(cells.size(), 0)
    {
    }

    void
    run(const std::vector<char> &replayed)
    {
        for (std::size_t i = 0; i < cells_.size(); ++i) {
            if (i < replayed.size() && replayed[i])
                continue;
            pending_.emplace_back(static_cast<std::uint32_t>(i), 0u);
        }
        outstanding_ = pending_.size();
        if (outstanding_ == 0)
            return;

        // A worker can die between poll() and our next command write;
        // that write must come back as EPIPE, not kill the supervisor.
        struct sigaction ignore_pipe = {};
        struct sigaction old_pipe = {};
        ignore_pipe.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

        const std::size_t nworkers = std::min<std::size_t>(
            opts_.workers, std::max<std::size_t>(outstanding_, 1));
        workers_.resize(nworkers);
        slot_prof_.resize(nworkers);
        globalStats().setGauge("runner.proc.workers",
                               static_cast<double>(nworkers));
        start_us_ = steadyNowUs();
        for (std::size_t slot = 0; slot < nworkers; ++slot)
            spawn(slot);

        while (outstanding_ > 0)
            step();

        shutdown();
        ::sigaction(SIGPIPE, &old_pipe, nullptr);

        // Per-worker-process attribution, mirroring the thread pool's
        // "prof.worker.w<t>" fold: slot totals are the sum of every
        // cell delta delivered by that slot (across respawns).
        if (profActive()) {
            for (std::size_t slot = 0; slot < slot_prof_.size(); ++slot) {
                if (slot_prof_[slot].totalTicks() == 0)
                    continue; // slot never delivered a profiled cell
                foldPhaseTotals(globalStats(), slot_prof_[slot],
                                "prof.worker.w" + std::to_string(slot));
            }
        }
    }

  private:
    void
    spawn(std::size_t slot)
    {
        WorkerProc &w = workers_[slot];
        int cmd_pipe[2];
        int res_pipe[2];
        if (::pipe(cmd_pipe) != 0 || ::pipe(res_pipe) != 0)
            fatal("MNM_WORKERS: cannot create worker pipes");

        pid_t pid = ::fork();
        if (pid < 0)
            fatal("MNM_WORKERS: fork failed");
        if (pid == 0) {
            // Child. Drop every descriptor that belongs to the
            // supervisor or a sibling: a sibling holding a copy of our
            // command pipe's write end would defeat EOF shutdown.
            ::close(cmd_pipe[1]);
            ::close(res_pipe[0]);
            for (const WorkerProc &other : workers_) {
                if (other.cmd_fd >= 0)
                    ::close(other.cmd_fd);
                if (other.res_fd >= 0)
                    ::close(other.res_fd);
            }
            workerChildLoop(cells_, opts_, cmd_pipe[0], res_pipe[1]);
        }

        ::close(cmd_pipe[0]);
        ::close(res_pipe[1]);
        ::fcntl(res_pipe[0], F_SETFL, O_NONBLOCK);
        w.pid = pid;
        w.cmd_fd = cmd_pipe[1];
        w.res_fd = res_pipe[0];
        w.buf.clear();
        w.cell = -1;
        w.deadline_us = 0;
        w.timed_out = false;
        w.alive = true;
        ++w.spawns;
        globalStats().addCounter("runner.proc.spawns", 1);
        globalStats().addCounter(slotMetric(slot, "spawns"), 1);
        if (w.spawns > 1 && journal_) {
            journal_->appendRespawn(static_cast<unsigned>(slot),
                                    w.spawns);
        }
    }

    void
    issue(std::size_t slot)
    {
        WorkerProc &w = workers_[slot];
        auto [index, attempt] = pending_.front();
        pending_.pop_front();
        w.cell = static_cast<int>(index);
        w.attempt = attempt;
        w.issue_us = steadyNowUs();
        w.deadline_us =
            opts_.cell_timeout_s > 0.0
                ? w.issue_us + static_cast<std::uint64_t>(
                                   opts_.cell_timeout_s * 1e6)
                : 0;
        ++lease_seq_[index];
        if (journal_) {
            journal_->appendLease(fingerprints_[index],
                                  static_cast<unsigned>(slot),
                                  lease_seq_[index]);
        }
        globalStats().addCounter("runner.proc.leases", 1);
        unsigned char payload[8];
        storeLe32(payload, index);
        storeLe32(payload + 4, attempt);
        // EPIPE here means the worker died between poll() and now; the
        // cell stays attributed to this slot and the death handler
        // re-issues it like any other mid-cell crash.
        writeFrame(w.cmd_fd,
                   std::string_view(reinterpret_cast<char *>(payload),
                                    sizeof(payload)));
    }

    /** One supervisor iteration: respawn, issue, wait, collect. */
    void
    step()
    {
        std::uint64_t now = steadyNowUs();

        for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
            WorkerProc &w = workers_[slot];
            if (!w.alive && !pending_.empty() && now >= w.respawn_at_us)
                spawn(slot);
        }
        for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
            WorkerProc &w = workers_[slot];
            if (w.alive && w.cell < 0 && !pending_.empty())
                issue(slot);
        }

        // Sleep until a response can arrive, a deadline fires, or a
        // respawn comes due.
        std::uint64_t wake_us = 0;
        for (const WorkerProc &w : workers_) {
            if (w.alive && w.cell >= 0 && w.deadline_us &&
                (!wake_us || w.deadline_us < wake_us)) {
                wake_us = w.deadline_us;
            }
            if (!w.alive && !pending_.empty() &&
                (!wake_us || w.respawn_at_us < wake_us)) {
                wake_us = std::max<std::uint64_t>(w.respawn_at_us, now);
            }
        }
        int timeout_ms = -1;
        if (wake_us) {
            timeout_ms = wake_us <= now
                             ? 0
                             : static_cast<int>(
                                   std::min<std::uint64_t>(
                                       (wake_us - now) / 1000 + 1,
                                       60'000));
        }

        std::vector<struct pollfd> fds;
        std::vector<std::size_t> fd_slot;
        for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
            if (!workers_[slot].alive)
                continue;
            fds.push_back({workers_[slot].res_fd, POLLIN, 0});
            fd_slot.push_back(slot);
        }
        int ready = ::poll(fds.empty() ? nullptr : fds.data(),
                           static_cast<nfds_t>(fds.size()), timeout_ms);
        if (ready < 0 && errno != EINTR)
            fatal("MNM_WORKERS: poll failed");

        for (std::size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents & (POLLIN | POLLHUP | POLLERR))
                drain(fd_slot[f]);
        }

        // Enforce real deadlines: SIGKILL, no cooperation required.
        now = steadyNowUs();
        for (WorkerProc &w : workers_) {
            if (w.alive && w.cell >= 0 && w.deadline_us &&
                now >= w.deadline_us && !w.timed_out) {
                w.timed_out = true;
                ::kill(w.pid, SIGKILL);
            }
        }
    }

    /** Read everything the worker has written; handle death on EOF. */
    void
    drain(std::size_t slot)
    {
        WorkerProc &w = workers_[slot];
        bool dead = false;
        char chunk[65536];
        for (;;) {
            ssize_t n = ::read(w.res_fd, chunk, sizeof(chunk));
            if (n > 0) {
                w.buf.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                dead = true; // EOF: the worker is gone
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            dead = true;
            break;
        }

        // Deliver complete frames first: a worker that wrote its
        // response and then died still completed its cell.
        while (w.buf.size() >= 4) {
            std::uint32_t len = loadLe32(
                reinterpret_cast<const unsigned char *>(w.buf.data()));
            if (len > max_frame_bytes) {
                dead = true;
                ::kill(w.pid, SIGKILL);
                break;
            }
            if (w.buf.size() < 4u + len)
                break;
            handleResponse(slot, std::string_view(w.buf).substr(4, len));
            w.buf.erase(0, 4u + len);
        }
        if (dead)
            handleDeath(slot);
    }

    void
    handleResponse(std::size_t slot, std::string_view payload)
    {
        WorkerProc &w = workers_[slot];
        std::optional<JsonValue> value = parseJson(payload);
        std::optional<std::uint64_t> index =
            value ? value->getU64("index") : std::nullopt;
        if (!value || !index || w.cell < 0 ||
            *index != static_cast<std::uint64_t>(w.cell)) {
            // A response we cannot attribute means the protocol state
            // is broken; treat the worker as crashed.
            warn("MNM_WORKERS: worker %zu sent an unattributable "
                 "response; killing it",
                 slot);
            ::kill(w.pid, SIGKILL);
            return;
        }
        const std::size_t cell_index = static_cast<std::size_t>(w.cell);
        const SweepCell &cell = cells_[cell_index];

        if (std::optional<std::string> err = value->getString("error")) {
            if (w.attempt < opts_.retries) {
                // Same bounded-retry contract as the thread path; the
                // re-issue goes to the queue front so the retry is not
                // starved behind the whole remaining grid.
                pending_.emplace_front(
                    static_cast<std::uint32_t>(cell_index),
                    w.attempt + 1);
                globalStats().addCounter("runner.proc.retries", 1);
            } else {
                recordSweepCellFailure(cell, cell_index,
                                       SweepFailCause::RetryExhausted,
                                       *err, results_[cell_index]);
                --outstanding_;
            }
            w.cell = -1;
            w.deadline_us = 0;
            return;
        }

        const JsonValue *result_json = value->find("result");
        std::optional<MemSimResult> result =
            result_json ? readMemSimResult(*result_json) : std::nullopt;
        if (!result) {
            warn("MNM_WORKERS: worker %zu sent an unreadable result "
                 "for cell %zu; killing it",
                 slot, cell_index);
            ::kill(w.pid, SIGKILL);
            return;
        }
        results_[cell_index] = std::move(*result);
        if (const JsonValue *prof_json = value->find("prof")) {
            std::optional<PhaseTotals> prof = readPhaseTotals(*prof_json);
            if (!prof) {
                warn("MNM_WORKERS: worker %zu sent a prof block for "
                     "cell %zu with an unreadable or mismatched wire "
                     "version (binary skew?); dropping its attribution",
                     slot, cell_index);
            } else {
                cell_prof_[cell_index] = *prof;
                addPhaseTotals(slot_prof_[slot], *prof);
            }
        }
        SweepCellTiming &t = timing_[cell_index];
        t.start_us = w.issue_us;
        t.dur_us = value->getU64("dur_us").value_or(0);
        t.worker = static_cast<unsigned>(slot);
        t.ran = true;
        if (journal_)
            journal_->append(fingerprints_[cell_index],
                             results_[cell_index]);
        globalStats().addCounter(slotMetric(slot, "cells"), 1);
        w.cell = -1;
        w.deadline_us = 0;
        w.consecutive_deaths = 0;
        --outstanding_;
        ++completed_;
        if (opts_.progress) {
            std::uint64_t now = steadyNowUs();
            double elapsed_s =
                static_cast<double>(now - start_us_) / 1e6;
            double eta_s = elapsed_s / static_cast<double>(completed_) *
                           static_cast<double>(outstanding_);
            progress("[%zu/%zu] %s (eta %.1fs)", completed_,
                     completed_ + outstanding_,
                     sweepCellDisplayName(cell).c_str(), eta_s);
        }
    }

    void
    handleDeath(std::size_t slot)
    {
        WorkerProc &w = workers_[slot];
        ::close(w.cmd_fd);
        ::close(w.res_fd);
        w.cmd_fd = w.res_fd = -1;
        w.buf.clear(); // a torn partial frame is worthless
        w.alive = false;

        int status = 0;
        ::waitpid(w.pid, &status, 0);
        std::string reason = describeExit(status);
        w.pid = -1;
        globalStats().addCounter(slotMetric(slot, "deaths"), 1);

        const int cell_index = w.cell;
        w.cell = -1;
        w.deadline_us = 0;
        const std::uint64_t now = steadyNowUs();

        if (cell_index >= 0 && w.timed_out) {
            // A deadline kill is the supervisor working as designed,
            // not worker flakiness: fail the cell, never re-issue it
            // (it would only time out again), respawn immediately.
            globalStats().addCounter("runner.proc.timeouts", 1);
            recordSweepCellFailure(
                cells_[cell_index], static_cast<std::size_t>(cell_index),
                SweepFailCause::Timeout,
                "cell exceeded MNM_CELL_TIMEOUT_S=" +
                    std::to_string(opts_.cell_timeout_s) +
                    "; worker process SIGKILLed",
                results_[cell_index]);
            --outstanding_;
            w.timed_out = false;
            w.respawn_at_us = now;
            return;
        }

        ++w.consecutive_deaths;
        if (cell_index >= 0) {
            const std::size_t i = static_cast<std::size_t>(cell_index);
            ++crashes_[i];
            globalStats().addCounter("runner.proc.crashes", 1);
            if (crashes_[i] >= opts_.poison_limit) {
                if (journal_)
                    journal_->appendPoison(fingerprints_[i], crashes_[i]);
                globalStats().addCounter("runner.proc.poisoned", 1);
                recordSweepCellFailure(
                    cells_[i], i, SweepFailCause::Poison,
                    "killed " + std::to_string(crashes_[i]) +
                        " worker process(es); last worker " + reason,
                    results_[i]);
                --outstanding_;
            } else {
                warn("worker %zu %s while running cell %zu (%s); "
                     "re-issuing (crash %u/%u)",
                     slot, reason.c_str(), i,
                     sweepCellDisplayName(cells_[i]).c_str(), crashes_[i],
                     opts_.poison_limit);
                pending_.emplace_front(static_cast<std::uint32_t>(i),
                                       w.attempt + 1);
                globalStats().addCounter("runner.proc.reissues", 1);
            }
        } else {
            warn("idle worker %zu %s; respawning", slot, reason.c_str());
        }

        // Exponential backoff per consecutive death of this slot, so a
        // crash-looping environment does not fork-bomb the host.
        const std::uint64_t backoff_us =
            static_cast<std::uint64_t>(opts_.worker_backoff_ms) * 1000u
            << std::min(w.consecutive_deaths - 1, 6u);
        w.respawn_at_us = now + backoff_us;
    }

    void
    shutdown()
    {
        // EOF on the command pipe is the shutdown signal; idle workers
        // _Exit(0) on seeing it.
        for (WorkerProc &w : workers_) {
            if (!w.alive)
                continue;
            ::close(w.cmd_fd);
            ::close(w.res_fd);
            w.cmd_fd = w.res_fd = -1;
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
            w.alive = false;
        }
    }

    const std::vector<SweepCell> &cells_;
    const ExperimentOptions &opts_;
    const std::vector<std::string> &fingerprints_;
    CheckpointJournal *journal_;
    std::vector<MemSimResult> &results_;
    std::vector<SweepCellTiming> &timing_;
    std::vector<PhaseTotals> &cell_prof_;

    std::vector<WorkerProc> workers_;
    /** Per-slot sum of delivered cell profiles (prof.worker.w<k>). */
    std::vector<PhaseTotals> slot_prof_;
    /** (cell index, attempt) queue awaiting a worker; index order. */
    std::deque<std::pair<std::uint32_t, unsigned>> pending_;
    std::vector<unsigned> crashes_;
    std::vector<unsigned> lease_seq_;
    std::size_t outstanding_ = 0;
    std::size_t completed_ = 0;
    std::uint64_t start_us_ = 0;
};

} // anonymous namespace

void
runSweepProcPool(const std::vector<SweepCell> &cells,
                 const ExperimentOptions &opts,
                 const std::vector<std::string> &fingerprints,
                 const std::vector<char> &replayed,
                 CheckpointJournal *journal,
                 std::vector<MemSimResult> &results,
                 std::vector<SweepCellTiming> &timing,
                 std::vector<PhaseTotals> &cell_prof)
{
    ProcPoolSupervisor supervisor(cells, opts, fingerprints, journal,
                                  results, timing, cell_prof);
    supervisor.run(replayed);
}

} // namespace mnm
