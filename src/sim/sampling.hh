/**
 * @file
 * Sampled simulation (the paper's methodology, Section 4.1: SPEC runs
 * are fast-forwarded per Sherwood et al.'s simulation points and then a
 * window is measured).
 *
 * For synthetic workloads there is no one "right" simulation point, so
 * the sampler generalizes: fast-forward F instructions functionally
 * (warming caches and MNM state, discarding accounting), then measure N
 * windows of W instructions separated by S skipped (but still warming)
 * instructions, and report the per-window spread so the caller can see
 * whether the workload has phase behaviour.
 */

#ifndef MNM_SIM_SAMPLING_HH
#define MNM_SIM_SAMPLING_HH

#include <vector>

#include "sim/memory_sim.hh"
#include "util/stats.hh"

namespace mnm
{

/** Sampling plan. */
struct SamplingPlan
{
    /** Instructions to fast-forward before the first window. */
    std::uint64_t fast_forward = 200'000;
    /** Measured window length, instructions. */
    std::uint64_t window = 100'000;
    /** Number of measured windows. */
    std::uint32_t windows = 5;
    /** Instructions skipped (still executed) between windows. */
    std::uint64_t stride = 100'000;
};

/** Aggregated outcome of a sampled functional run. */
struct SampledResult
{
    /** Accounting summed over all measured windows. */
    MemSimResult combined;
    /** Per-window key metrics, for phase inspection. */
    RunningStat access_time;
    RunningStat miss_time_fraction;
    RunningStat coverage;

    /** Relative spread (stddev/mean) of the access time: a quick
     *  phase-behaviour indicator. */
    double
    accessTimeSpread() const
    {
        return access_time.mean() > 0.0
                   ? access_time.stddev() / access_time.mean()
                   : 0.0;
    }
};

/**
 * Run @p workload through @p sim under @p plan. The simulator keeps all
 * warm state across windows (as a real checkpointed run would).
 */
SampledResult runSampled(MemorySimulator &sim, WorkloadGenerator &workload,
                         const SamplingPlan &plan);

} // namespace mnm

#endif // MNM_SIM_SAMPLING_HH
