/**
 * @file
 * Crash-safe checkpoint journal for long sweep runs.
 *
 * A paper-scale sweep (20 workloads x many variants x millions of
 * instructions) can run for hours; losing the whole run to a crash,
 * OOM kill, or pre-empted node at cell 380/400 is the failure mode
 * this layer removes. When MNM_CHECKPOINT=<path> is set, runSweep()
 * appends one JSON line per *completed* cell -- keyed by a
 * deterministic fingerprint of everything that defines the cell's
 * result (workload, hierarchy, MNM spec, instruction budget) -- and on
 * the next run replays matching entries instead of re-simulating them.
 * Because the simulator itself is deterministic, a replayed result is
 * bit-identical to a recomputed one, so the resumed run's tables are
 * byte-identical to an uninterrupted run's.
 *
 * Crash safety: each entry is a single write(2) of one complete line
 * to an O_APPEND descriptor followed by fsync(2). A crash can at worst
 * leave one torn line at the tail; the loader treats any unparsable
 * line as "not yet written" and skips it, so that cell simply re-runs.
 * Failed cells are never journaled -- a rerun retries them.
 *
 * Against *in-place* corruption (a bit flip in the middle of an old
 * record still parses as JSON), every v2 record is wrapped as
 * {"crc":"<8 hex>","rec":{...}} with an IEEE CRC-32 over the exact
 * serialized rec text; a mismatching line is counted in
 * Replay::corrupt and skipped -- it re-runs instead of poisoning the
 * resume with silently wrong numbers.
 *
 * Beyond completed results, the journal is the process pool's work-
 * distribution substrate (sim/proc_pool.hh): the supervisor appends a
 * "lease" record when it issues a cell to a worker process and the
 * fsync'd "result" record only after the worker's reply arrived, so a
 * killed run can be audited cell by cell (leased-but-uncommitted =
 * was in flight, will re-run) and tools/extract_results.py --journal
 * can summarize leases, re-issues, worker respawns, and poisoned
 * cells.
 *
 * The fingerprint is intentionally independent of execution knobs that
 * do not change results (jobs, workers, progress, retries, timeouts),
 * so a journal written by a parallel or process-pool run resumes a
 * serial run and vice versa.
 */

#ifndef MNM_SIM_RECOVERY_HH
#define MNM_SIM_RECOVERY_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/json.hh"
#include "sim/runner.hh"

namespace mnm
{

/**
 * Deterministic fingerprint of one sweep cell: FNV-1a 64 over a
 * canonical text encoding of (app, label, instructions, every
 * HierarchyParams field, every MnmSpec field), rendered as 16 lower-
 * case hex digits. Two cells collide only if they would produce the
 * same result anyway (modulo a 2^-64 hash accident).
 */
std::string cellFingerprint(const SweepCell &cell);

/** Serialize @p result as one compact (single-line) JSON object. All
 *  counters are written exactly; doubles use the shortest round-trip
 *  form, so deserializing reproduces bit-identical values. */
std::string writeMemSimResult(const MemSimResult &result);

/** Inverse of writeMemSimResult(). nullopt when @p text is not a
 *  complete well-formed result object (torn journal line). */
std::optional<MemSimResult> readMemSimResult(std::string_view text);

/** Same, from an already parsed JSON value. */
std::optional<MemSimResult> readMemSimResult(const JsonValue &value);

/**
 * Append-only journal of completed cells. Construct with the target
 * path to record; use load() to replay a previous run's entries.
 */
class CheckpointJournal
{
  public:
    /** What load() recovered from an existing journal. */
    struct Replay
    {
        /** fingerprint -> completed result. */
        std::map<std::string, MemSimResult> entries;
        /** Unparsable lines skipped (torn tail, partial writes). */
        std::size_t skipped = 0;
        /** Parsable lines whose CRC-32 did not match (bit rot,
         *  mid-file corruption); skipped like torn ones. */
        std::size_t corrupt = 0;
        /** fingerprint -> times leased to a worker process. A lease
         *  without a matching entries[] result was in flight when the
         *  run died; the cell simply re-runs. */
        std::map<std::string, unsigned> leases;
        /** Worker-process respawn records seen. */
        std::size_t respawns = 0;
        /** Cells the previous run declared poison. */
        std::map<std::string, unsigned> poisoned;
    };

    /**
     * Parse the journal at @p path. A missing file yields an empty
     * replay; malformed lines are counted in Replay::skipped and
     * otherwise ignored -- loading never throws on bad content.
     */
    static Replay load(const std::string &path);

    /**
     * Open @p path for appending, creating it (with its schema header
     * line) when absent or empty. Throws std::runtime_error when the
     * file cannot be opened or created.
     */
    explicit CheckpointJournal(const std::string &path);
    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /**
     * Durably record one completed cell: a single O_APPEND write of
     * the full line, then fsync. Thread-safe; a failed write degrades
     * to a warning (the sweep result is still correct, the journal
     * just stops growing).
     */
    void append(const std::string &fingerprint,
                const MemSimResult &result);

    /** Record that @p fingerprint was issued to worker @p worker;
     *  @p seq counts issues of this cell (1 = first, >1 = re-issue
     *  after a crash). Same durability as append(). */
    void appendLease(const std::string &fingerprint, unsigned worker,
                     unsigned seq);

    /** Record that dead worker slot @p worker was respawned (its
     *  @p spawns-th process). */
    void appendRespawn(unsigned worker, unsigned spawns);

    /** Record that @p fingerprint killed @p crashes successive worker
     *  processes and was declared poison. */
    void appendPoison(const std::string &fingerprint, unsigned crashes);

    const std::string &path() const { return path_; }

    /** Journal schema tag, first line of every journal file. v2 wraps
     *  every record in a CRC-32 envelope and adds the lease/respawn/
     *  poison record types; v1 journals are ignored wholesale (their
     *  cells re-run) rather than replayed unverified. */
    static constexpr const char *schema = "mnm-checkpoint-v2";

  private:
    /** Wrap @p rec_text in the CRC envelope, write, fsync. */
    void appendRecord(const std::string &rec_text);

    std::string path_;
    std::mutex mutex_;
    int fd_ = -1;
    bool write_failed_ = false;
};

} // namespace mnm

#endif // MNM_SIM_RECOVERY_HH
