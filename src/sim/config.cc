#include "sim/config.hh"

#include "util/logging.hh"

namespace mnm
{

namespace
{

constexpr std::uint64_t kB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

CacheParams
cacheParams(const char *name, std::uint64_t capacity, std::uint32_t assoc,
            std::uint32_t block, Cycles latency)
{
    CacheParams p;
    p.name = name;
    p.capacity_bytes = capacity;
    p.associativity = assoc;
    p.block_bytes = block;
    p.hit_latency = latency;
    return p;
}

LevelParams
splitLevel(const char *iname, const char *dname, std::uint64_t capacity,
           std::uint32_t assoc, std::uint32_t block, Cycles latency)
{
    LevelParams lvl;
    lvl.split = true;
    lvl.instr = cacheParams(iname, capacity, assoc, block, latency);
    lvl.data = cacheParams(dname, capacity, assoc, block, latency);
    return lvl;
}

LevelParams
unifiedLevel(const char *name, std::uint64_t capacity, std::uint32_t assoc,
             std::uint32_t block, Cycles latency)
{
    LevelParams lvl;
    lvl.split = false;
    lvl.data = cacheParams(name, capacity, assoc, block, latency);
    return lvl;
}

} // anonymous namespace

HierarchyParams
paperHierarchy(int levels)
{
    HierarchyParams params;
    params.memory_latency = 320;

    // The split L1 used by every configuration (paper Section 4.1).
    LevelParams l1 = splitLevel("il1", "dl1", 4 * kB, 1, 32, 2);

    switch (levels) {
      case 2:
        // Not detailed in the paper: a classic two-level machine with a
        // large unified L2 as the last level.
        params.levels = {l1, unifiedLevel("ul2", 512 * kB, 4, 64, 16)};
        return params;
      case 3:
        // Not detailed in the paper: the 5-level machine's L1/L2 with a
        // single large last-level cache.
        params.levels = {
            l1,
            splitLevel("il2", "dl2", 16 * kB, 2, 32, 8),
            unifiedLevel("ul3", 1 * MB, 8, 64, 24),
        };
        return params;
      case 5:
        // Exactly the paper's configuration.
        params.levels = {
            l1,
            splitLevel("il2", "dl2", 16 * kB, 2, 32, 8),
            unifiedLevel("ul3", 128 * kB, 4, 64, 18),
            unifiedLevel("ul4", 512 * kB, 4, 128, 34),
            unifiedLevel("ul5", 2 * MB, 8, 128, 70),
        };
        return params;
      case 7:
        // Extrapolated beyond the paper (DESIGN.md decision 8).
        params.levels = {
            l1,
            splitLevel("il2", "dl2", 16 * kB, 2, 32, 8),
            unifiedLevel("ul3", 128 * kB, 4, 64, 18),
            unifiedLevel("ul4", 512 * kB, 4, 128, 34),
            unifiedLevel("ul5", 2 * MB, 8, 128, 70),
            unifiedLevel("ul6", 8 * MB, 8, 128, 110),
            unifiedLevel("ul7", 32 * MB, 16, 128, 200),
        };
        return params;
      default:
        fatal("no paper configuration with %d cache levels "
              "(supported: 2, 3, 5, 7)",
              levels);
    }
}

CpuParams
paperCpu(int levels)
{
    // "The processors used in the simulations for 2 and 3 level caches
    // are 4-way processors. The results for 5 and 7 level caches are
    // obtained using an 8-way processor with resources twice of the
    // processor for 2 and 3 level cache simulations."
    return levels <= 3 ? CpuParams::fourWay() : CpuParams::eightWay();
}

} // namespace mnm
