/**
 * @file
 * The paper's machine configurations (Section 4.1).
 *
 * The 5-level hierarchy is specified exactly in the paper:
 *   L1  split, 4 KB direct-mapped, 32 B blocks, 2 cycles
 *   L2  split, 16 KB 2-way, 32 B blocks, 8 cycles
 *   L3  unified, 128 KB 4-way, 64 B blocks, 18 cycles
 *   L4  unified, 512 KB 4-way, 128 B blocks, 34 cycles
 *   L5  unified, 2 MB 8-way, 128 B blocks, 70 cycles
 *   memory 320 cycles (DESIGN.md decision 7)
 *
 * The 2-, 3- and 7-level variants used by Figures 2/3 are not detailed
 * in the paper; ours keep the same L1/L2 and scale the last levels (see
 * config.cc and DESIGN.md decision 8).
 */

#ifndef MNM_SIM_CONFIG_HH
#define MNM_SIM_CONFIG_HH

#include "cache/hierarchy.hh"
#include "cpu/ooo_core.hh"

namespace mnm
{

/** Hierarchy with @p levels cache levels (2, 3, 5 or 7). */
HierarchyParams paperHierarchy(int levels);

/** The paper's core for a given hierarchy depth: 4-way for 2/3-level
 *  machines, 8-way with doubled resources for 5/7-level. */
CpuParams paperCpu(int levels);

/** The MNM probe delay used throughout the paper's experiments. */
constexpr Cycles paper_mnm_delay = 2;

} // namespace mnm

#endif // MNM_SIM_CONFIG_HH
