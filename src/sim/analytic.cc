#include "sim/analytic.hh"

#include "util/logging.hh"

namespace mnm
{

namespace
{

/** Shared walk: returns {total_time, miss_time}. */
std::pair<double, double>
accumulate(const std::vector<LevelTiming> &levels, double memory_latency)
{
    double reach = 1.0; // prod of miss rates of the levels above
    double total = 0.0;
    double miss_part = 0.0;
    for (const LevelTiming &lvl : levels) {
        MNM_ASSERT(lvl.miss_rate >= 0.0 && lvl.miss_rate <= 1.0,
                   "miss rate outside [0,1]");
        MNM_ASSERT(lvl.abort_fraction >= 0.0 && lvl.abort_fraction <= 1.0,
                   "abort fraction outside [0,1]");
        double hit_term = lvl.hit_time * (1.0 - lvl.miss_rate);
        double miss_term =
            lvl.miss_time * (1.0 - lvl.abort_fraction) * lvl.miss_rate;
        total += reach * (hit_term + miss_term);
        miss_part += reach * miss_term;
        reach *= lvl.miss_rate;
    }
    total += reach * memory_latency;
    return {total, miss_part};
}

} // anonymous namespace

double
analyticDataAccessTime(const std::vector<LevelTiming> &levels,
                       double memory_latency)
{
    return accumulate(levels, memory_latency).first;
}

double
analyticMissTimeFraction(const std::vector<LevelTiming> &levels,
                         double memory_latency)
{
    auto [total, miss] = accumulate(levels, memory_latency);
    return total > 0.0 ? miss / total : 0.0;
}

} // namespace mnm
