#include "sim/experiment.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/manifest.hh"
#include "sim/runner.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

/** Parse @p env as a whole-string decimal integer in [min, max];
 *  anything else (trailing junk, overflow, empty) is fatal. */
unsigned long long
parseEnvU64(const char *name, const char *env, unsigned long long min,
            unsigned long long max)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno != 0 ||
        std::isspace(static_cast<unsigned char>(env[0])) ||
        env[0] == '-') {
        fatal("%s='%s' is not an unsigned integer", name, env);
    }
    if (v < min || v > max) {
        fatal("%s=%llu is out of range [%llu, %llu]", name, v, min, max);
    }
    return v;
}

/** Parse @p env as exactly "0" or "1". */
bool
parseEnvBool(const char *name, const char *env)
{
    if (env[0] != '\0' && env[1] == '\0' &&
        (env[0] == '0' || env[0] == '1')) {
        return env[0] == '1';
    }
    fatal("%s='%s' must be 0 or 1", name, env);
    return false; // unreachable; fatal() exits
}

} // anonymous namespace

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    if (const char *env = std::getenv("MNM_INSTRUCTIONS")) {
        opts.instructions =
            parseEnvU64("MNM_INSTRUCTIONS", env, 1,
                        std::numeric_limits<unsigned long long>::max());
    }
    if (const char *env = std::getenv("MNM_APPS")) {
        std::stringstream stream(env);
        std::string app;
        while (std::getline(stream, app, ',')) {
            if (app.empty())
                continue;
            // Accept both "164.gzip" and "gzip".
            bool found = false;
            for (const std::string &full : specAllNames()) {
                if (full == app || shortName(full) == app) {
                    opts.apps.push_back(full);
                    found = true;
                    break;
                }
            }
            if (!found)
                fatal("MNM_APPS: unknown workload '%s'", app.c_str());
        }
    }
    if (opts.apps.empty())
        opts.apps = specAllNames();
    if (const char *env = std::getenv("MNM_CSV"))
        opts.csv = parseEnvBool("MNM_CSV", env);
    opts.jobs = jobsFromEnv();
    if (const char *env = std::getenv("MNM_PROGRESS"))
        opts.progress = parseEnvBool("MNM_PROGRESS", env);
    if (const char *env = std::getenv("MNM_STATS_JSON"))
        opts.stats_json = env;
    if (const char *env = std::getenv("MNM_TRACE_FILE"))
        opts.trace_file = env;
    if (const char *env = std::getenv("MNM_CHECKPOINT"))
        opts.checkpoint = env;
    if (const char *env = std::getenv("MNM_WORKERS")) {
        opts.workers = static_cast<unsigned>(
            parseEnvU64("MNM_WORKERS", env, 0, 1024));
    }
    if (const char *env = std::getenv("MNM_POISON_LIMIT")) {
        opts.poison_limit = static_cast<unsigned>(
            parseEnvU64("MNM_POISON_LIMIT", env, 1, 1000));
    }
    if (const char *env = std::getenv("MNM_WORKER_BACKOFF_MS")) {
        opts.worker_backoff_ms = static_cast<unsigned>(
            parseEnvU64("MNM_WORKER_BACKOFF_MS", env, 0, 60000));
    }
    if (const char *env = std::getenv("MNM_RETRIES")) {
        opts.retries = static_cast<unsigned>(
            parseEnvU64("MNM_RETRIES", env, 0, 100));
    }
    if (const char *env = std::getenv("MNM_CELL_TIMEOUT_S")) {
        char *end = nullptr;
        errno = 0;
        double v = std::strtod(env, &end);
        if (end == env || *end != '\0' || errno != 0 ||
            !std::isfinite(v) || v <= 0.0 || v > 86400.0) {
            fatal("MNM_CELL_TIMEOUT_S='%s' must be a number of seconds "
                  "in (0, 86400]",
                  env);
        }
        opts.cell_timeout_s = v;
    }
    if (const char *env = std::getenv("MNM_FAIL_CELL"))
        opts.fail_cell = parseCellFaultSpec(env);
    // Arm the exit-time manifest/trace writers and echo the resolved
    // configuration into the manifest. Inert when both knobs are unset.
    initRunTelemetry();
    setRunConfig(opts.instructions, opts.apps, opts.jobs, opts.workers,
                 opts.csv);
    return opts;
}

std::string
ExperimentOptions::shortName(const std::string &app)
{
    auto dot = app.find('.');
    return dot == std::string::npos ? app : app.substr(dot + 1);
}

MemSimResult
runFunctional(const HierarchyParams &hierarchy,
              const std::optional<MnmSpec> &mnm, const std::string &app,
              std::uint64_t instructions)
{
    MemorySimulator sim(hierarchy, mnm);
    // CI escape hatch: run every cell through the single-step virtual
    // reference kernel so stdout can be byte-diffed against the
    // batched verdict-plan path.
    static const bool reference_kernel = [] {
        const char *env = std::getenv("MNM_REFERENCE_KERNEL");
        return env && *env && *env != '0';
    }();
    if (reference_kernel)
        sim.setReferenceKernel(true);
    // Same escape hatch for the update side: drive the MNM feed through
    // the per-event virtual listeners instead of the batched event ring
    // so stdout can be byte-diffed against the update-kernel path.
    static const bool reference_feed = [] {
        const char *env = std::getenv("MNM_REFERENCE_FEED");
        return env && *env && *env != '0';
    }();
    if (reference_feed)
        sim.setReferenceFeed(true);
    auto workload = makeSpecWorkload(app);
    std::uint64_t warmup = instructions / 10;
    if (warmup)
        sim.run(*workload, warmup); // discard accounting; warm state
    return sim.run(*workload, instructions);
}

} // namespace mnm
