#include "sim/experiment.hh"

#include <cstdlib>
#include <sstream>

#include "obs/manifest.hh"
#include "sim/runner.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

namespace mnm
{

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    if (const char *env = std::getenv("MNM_INSTRUCTIONS")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env || v == 0)
            fatal("MNM_INSTRUCTIONS='%s' is not a positive integer", env);
        opts.instructions = v;
    }
    if (const char *env = std::getenv("MNM_APPS")) {
        std::stringstream stream(env);
        std::string app;
        while (std::getline(stream, app, ',')) {
            if (app.empty())
                continue;
            // Accept both "164.gzip" and "gzip".
            bool found = false;
            for (const std::string &full : specAllNames()) {
                if (full == app || shortName(full) == app) {
                    opts.apps.push_back(full);
                    found = true;
                    break;
                }
            }
            if (!found)
                fatal("MNM_APPS: unknown workload '%s'", app.c_str());
        }
    }
    if (opts.apps.empty())
        opts.apps = specAllNames();
    if (const char *env = std::getenv("MNM_CSV"))
        opts.csv = env[0] == '1';
    opts.jobs = jobsFromEnv();
    if (const char *env = std::getenv("MNM_PROGRESS"))
        opts.progress = env[0] == '1';
    if (const char *env = std::getenv("MNM_STATS_JSON"))
        opts.stats_json = env;
    if (const char *env = std::getenv("MNM_TRACE_FILE"))
        opts.trace_file = env;
    // Arm the exit-time manifest/trace writers and echo the resolved
    // configuration into the manifest. Inert when both knobs are unset.
    initRunTelemetry();
    setRunConfig(opts.instructions, opts.apps, opts.jobs, opts.csv);
    return opts;
}

std::string
ExperimentOptions::shortName(const std::string &app)
{
    auto dot = app.find('.');
    return dot == std::string::npos ? app : app.substr(dot + 1);
}

MemSimResult
runFunctional(const HierarchyParams &hierarchy,
              const std::optional<MnmSpec> &mnm, const std::string &app,
              std::uint64_t instructions)
{
    MemorySimulator sim(hierarchy, mnm);
    auto workload = makeSpecWorkload(app);
    std::uint64_t warmup = instructions / 10;
    if (warmup)
        sim.run(*workload, warmup); // discard accounting; warm state
    return sim.run(*workload, instructions);
}

} // namespace mnm
