#include "core/coverage.hh"

namespace mnm
{

void
CoverageTracker::record(const AccessResult &result)
{
    for (std::uint8_t i = 0; i < result.num_probes; ++i) {
        const ProbeRecord &probe = result.probes[i];
        if (probe.level < 2)
            continue; // level-1 misses are never predicted
        if (probe.hit)
            continue; // the supplying level is not a miss
        if (probe.bypassed) {
            ++identified_;
            if (probe.level < max_levels)
                ++identified_at_[probe.level];
        } else {
            ++unidentified_;
            if (probe.level < max_levels)
                ++unidentified_at_[probe.level];
        }
    }
}

double
CoverageTracker::coverageAt(std::uint32_t level) const
{
    double id = static_cast<double>(identifiedAt(level));
    double un = static_cast<double>(unidentifiedAt(level));
    return ratio(id, id + un);
}

void
CoverageTracker::merge(const CoverageTracker &other)
{
    identified_ += other.identified_;
    unidentified_ += other.unidentified_;
    for (std::size_t i = 0; i < max_levels; ++i) {
        identified_at_[i] += other.identified_at_[i];
        unidentified_at_[i] += other.unidentified_at_[i];
    }
}

void
CoverageTracker::reset()
{
    *this = CoverageTracker();
}

void
CoverageTracker::restore(
    std::uint64_t identified, std::uint64_t unidentified,
    const std::array<std::uint64_t, max_levels> &identified_at,
    const std::array<std::uint64_t, max_levels> &unidentified_at)
{
    identified_ = identified;
    unidentified_ = unidentified;
    identified_at_ = identified_at;
    unidentified_at_ = unidentified_at;
}

} // namespace mnm
