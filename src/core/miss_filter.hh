/**
 * @file
 * The per-cache miss-filter interface shared by the SMNM, TMNM and CMNM
 * techniques, plus the declarative FilterSpec used to configure them.
 *
 * A MissFilter is attached to exactly one cache structure and observes
 * that cache's placement/replacement stream (the bookkeeping feed the MNM
 * receives, paper Section 2). On a lookup it answers either "the block is
 * DEFINITELY not in the cache" (true) or "maybe present" (false).
 *
 * The contract every implementation must honour is the paper's soundness
 * property (Section 3.6): a true ("miss") answer must never be produced
 * for a block that is actually resident, provided the filter observed
 * every placement and replacement since the cache was last empty.
 * Implementations that can violate this under the paper's literal
 * description (CMNM's PaperReset mask policy) must return true from
 * maybeUnsound() so the MnmUnit can guard their verdicts with an oracle
 * check and count the violations.
 */

#ifndef MNM_CORE_MISS_FILTER_HH
#define MNM_CORE_MISS_FILTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "power/checker_model.hh"
#include "power/sram_model.hh"
#include "util/types.hh"

namespace mnm
{

/** Abstract per-cache miss filter. Addresses are at the granularity of
 *  the attached cache's block size. */
class MissFilter
{
  public:
    virtual ~MissFilter() = default;

    /** @return true iff the block is definitely NOT in the cache. */
    virtual bool definitelyMiss(BlockAddr block) const = 0;

    /** A block was placed into the attached cache. */
    virtual void onPlacement(BlockAddr block) = 0;

    /** A block was replaced (evicted) from the attached cache. */
    virtual void onReplacement(BlockAddr block) = 0;

    /** The attached cache was flushed; reset all bookkeeping. */
    virtual void onFlush() = 0;

    /** Short configuration name, e.g. "TMNM_12x3". */
    virtual std::string name() const = 0;

    /** Storage bits the structure requires. */
    virtual std::uint64_t storageBits() const = 0;

    /** Per-access energy/delay under the analytical power model. */
    virtual PowerDelay power(const SramModel &sram,
                             const CheckerModel &checker) const = 0;

    /**
     * True when the configuration can emit unsound verdicts (see file
     * comment); the MnmUnit then oracle-checks every "miss" verdict.
     */
    virtual bool maybeUnsound() const { return false; }

    /** Bookkeeping anomalies observed (e.g. replacement never placed). */
    virtual std::uint64_t anomalies() const { return 0; }

    /**
     * Fault-injection surface (core/fault_inject.hh): the number of
     * physical state bits a particle strike could flip. 0 (the
     * default) means the structure exposes no injection surface.
     */
    virtual std::uint64_t faultBitCount() const { return 0; }

    /**
     * Flip state bit @p bit (< faultBitCount()), simulating a single-
     * event upset. Flipping the same bit twice restores the original
     * state. Used only by the fault-injection harness; never called
     * during normal simulation.
     */
    virtual void flipFaultBit(std::uint64_t bit) { (void)bit; }
};

/** How the SMNM presence state is maintained (DESIGN.md decision 1). */
enum class SmnmUpdateMode
{
    /** Per-sum counters driven by placements AND replacements (sound,
     *  steady-state; the default). */
    Counting,
    /** The literal circuit: set-only flip-flops, cleared on flush. Sound
     *  but decays towards all-"maybe". Ablation mode. */
    SetOnly,
};

/** Configuration of one SMNM instance (sumwidth x replication). */
struct SmnmSpec
{
    std::uint32_t sum_width = 10;
    std::uint32_t replication = 1;
    SmnmUpdateMode mode = SmnmUpdateMode::Counting;
};

/** Configuration of one TMNM instance (index bits x replication). */
struct TmnmSpec
{
    std::uint32_t index_bits = 10;
    std::uint32_t replication = 1;
    std::uint32_t counter_bits = 3;
};

/** CMNM virtual-tag-finder mask policy (DESIGN.md decision 4). */
enum class CmnmMaskPolicy
{
    /** Masks only widen; placements remember their register. Sound. */
    Monotone,
    /** The paper's literal "reset the other masks" behaviour. May emit
     *  unsound verdicts, which the MnmUnit detects and counts. */
    PaperReset,
};

/** Configuration of one CMNM instance (registers, table index bits). */
struct CmnmSpec
{
    std::uint32_t num_registers = 4;
    std::uint32_t table_index_bits = 10;
    std::uint32_t counter_bits = 3;
    CmnmMaskPolicy policy = CmnmMaskPolicy::Monotone;
};

/** Any one per-cache technique. */
using FilterSpec = std::variant<SmnmSpec, TmnmSpec, CmnmSpec>;

/** Instantiate the filter described by @p spec. */
std::unique_ptr<MissFilter> makeFilter(const FilterSpec &spec);

/** Canonical display name of a spec (e.g. "CMNM_8_10"). */
std::string filterSpecName(const FilterSpec &spec);

} // namespace mnm

#endif // MNM_CORE_MISS_FILTER_HH
