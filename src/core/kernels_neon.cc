/**
 * @file
 * NEON backend of the SoA verdict kernels (core/soa_state.hh).
 *
 * Four addresses per pass. AArch64 has no gather instruction, so every
 * table access is four scalar loads; what NEON buys is the index
 * arithmetic (shift/mask over all lanes), the zero-compares, and the
 * lane-wise verdict merge, with the loads batched so they issue back
 * to back instead of interleaving with verdict control flow. As in the
 * AVX2 backend, lanes run 32-bit (the paper's address space), chunks
 * carrying a wider address fall back to the scalar pass, and the CMNM
 * CAM walk plus the RMNM set search stay scalar per lane.
 */

#include "core/soa_state.hh"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "cache/cache.hh"

namespace mnm
{

namespace
{

/** Every lane's comparison mask is all-ones? */
inline bool
allLanesSet(uint32x4_t v)
{
    return vminvq_u32(v) == ~0u;
}

/** Lane-wise logical right shift by a runtime count; counts >= 32
 *  yield zero, matching a 64-bit shift of a value below 2^32. */
inline uint32x4_t
srlVar(uint32x4_t v, unsigned count)
{
    if (count >= 32)
        return vdupq_n_u32(0);
    return vshlq_u32(v, vdupq_n_s32(-static_cast<int>(count)));
}

/** Four scalar 32-bit table loads at vector-computed indices. */
inline uint32x4_t
gather32(const std::uint32_t *table, uint32x4_t idx_v)
{
    std::uint32_t idx[4];
    std::uint32_t val[4];
    vst1q_u32(idx, idx_v);
    for (unsigned l = 0; l < 4; ++l)
        val[l] = table[idx[l]];
    return vld1q_u32(val);
}

/** Four scalar byte loads at vector-computed indices, widened. */
inline uint32x4_t
gather8(const std::uint8_t *table, uint32x4_t idx_v)
{
    std::uint32_t idx[4];
    std::uint32_t val[4];
    vst1q_u32(idx, idx_v);
    for (unsigned l = 0; l < 4; ++l)
        val[l] = table[idx[l]];
    return vld1q_u32(val);
}

/** Per-lane scalar evaluation for the probes that do not vectorize. */
inline uint32x4_t
opMissPerLane(const SoaOp &op, uint32x4_t block_v, uint32x4_t miss_v)
{
    std::uint32_t blocks[4];
    std::uint32_t decided[4];
    std::uint32_t out[4];
    vst1q_u32(blocks, block_v);
    vst1q_u32(decided, miss_v);
    for (unsigned l = 0; l < 4; ++l)
        out[l] = !decided[l] && soaOpMiss(op, blocks[l]) ? ~0u : 0u;
    return vld1q_u32(out);
}

} // anonymous namespace

void
soaComputeNeon(const SoaProgram &program, const Addr *addrs,
               std::uint32_t *cand, std::size_t n)
{
    const SoaStep *steps = program.steps.data();
    const std::size_t num_steps = program.steps.size();
    const SoaOp *ops = program.ops.data();
    const Rmnm *rmnm = program.rmnm;
    const uint32x4_t zero = vdupq_n_u32(0);
    const uint32x4_t one = vdupq_n_u32(1);

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint64_t wide = 0;
        for (unsigned l = 0; l < 4; ++l)
            wide |= addrs[i + l] >> 32;
        if (wide != 0) {
            soaComputeScalar(program, addrs + i, cand + i, 4);
            continue;
        }

        std::uint32_t a32[4];
        std::uint32_t rb[4] = {};
        for (unsigned l = 0; l < 4; ++l)
            a32[l] = static_cast<std::uint32_t>(addrs[i + l]);
        if (rmnm) {
            for (unsigned l = 0; l < 4 && i + 4 + l < n; ++l)
                rmnm->prefetch(addrs[i + 4 + l]);
            for (unsigned l = 0; l < 4; ++l)
                rb[l] = rmnm->missBits(addrs[i + l]);
        }
        const uint32x4_t addr_v = vld1q_u32(a32);
        const uint32x4_t rb_v = vld1q_u32(rb);

        uint32x4_t mask_v = zero;
        for (std::size_t s = 0; s < num_steps; ++s) {
            const SoaStep &step = steps[s];
            const uint32x4_t block_v = srlVar(addr_v, step.block_bits);
            uint32x4_t miss;
            if (step.rmnm_index >= 0) {
                uint32x4_t bit = vandq_u32(
                    srlVar(rb_v, static_cast<unsigned>(step.rmnm_index)),
                    one);
                miss = vceqq_u32(bit, one);
            } else {
                miss = zero;
            }
            const SoaOp *op = ops + step.op_first;
            const SoaOp *end = op + step.op_count;
            for (; op != end && !allLanesSet(miss); ++op) {
                uint32x4_t op_miss = zero;
                switch (op->kind) {
                  case FilterKind::Smnm:
                    for (std::uint32_t c = 0; c < op->sm_replication;
                         ++c) {
                        const Smnm::CheckerSegments &cs = op->sm_segs[c];
                        uint32x4_t sum = zero;
                        for (unsigned g = 0; g < cs.count; ++g) {
                            const Smnm::SumSegment &seg = cs.seg[g];
                            uint32x4_t idx = vandq_u32(
                                srlVar(block_v, seg.shift),
                                vdupq_n_u32(seg.mask));
                            sum = vaddq_u32(sum, gather32(seg.lut, idx));
                        }
                        uint32x4_t cell = vaddq_u32(
                            sum, vdupq_n_u32(
                                     c * op->sm_values_per_checker));
                        op_miss = vorrq_u32(
                            op_miss,
                            vceqq_u32(gather32(op->sm_state, cell),
                                      zero));
                    }
                    break;
                  case FilterKind::Tmnm:
                    for (std::uint32_t t = 0; t < op->tm_replication;
                         ++t) {
                        uint32x4_t idx = vandq_u32(
                            srlVar(block_v, 6 * t),
                            vdupq_n_u32(static_cast<std::uint32_t>(
                                lowMask(op->tm_index_bits))));
                        uint32x4_t cell = vaddq_u32(
                            idx, vdupq_n_u32(t * op->tm_entries));
                        op_miss = vorrq_u32(
                            op_miss,
                            vceqq_u32(gather8(op->tm_counters, cell),
                                      zero));
                    }
                    break;
                  case FilterKind::Cmnm:
                    op_miss = opMissPerLane(*op, block_v, miss);
                    break;
                }
                miss = vorrq_u32(miss, op_miss);
            }
            mask_v = vorrq_u32(mask_v,
                               vandq_u32(miss,
                                         vdupq_n_u32(step.cache_bit)));
        }
        vst1q_u32(cand + i, mask_v);
    }
    if (i < n)
        soaComputeScalar(program, addrs + i, cand + i, n - i);
}

} // namespace mnm

#endif // __aarch64__
