#include "core/tlb_filter.hh"

#include "util/logging.hh"

namespace mnm
{

TlbFilterUnit::TlbFilterUnit(const FilterSpec &spec, Tlb &tlb)
    : filter_(makeFilter(spec)), tlb_(tlb)
{
    SramModel sram;
    CheckerModel checker;
    PowerDelay pd = filter_->power(sram, checker);
    filter_probe_pj_ = pd.read_energy_pj;
    filter_update_pj_ = pd.write_energy_pj;
    tlb_.setListener(this);
}

TlbFilterUnit::~TlbFilterUnit()
{
    tlb_.setListener(nullptr);
}

Cycles
TlbFilterUnit::translate(Addr addr)
{
    std::uint64_t page = tlb_.pageOf(addr);
    energy_pj_ += filter_probe_pj_;
    bool verdict = filter_->definitelyMiss(page);
    if (verdict && filter_->maybeUnsound() && tlb_.contains(addr)) {
        ++violations_;
        verdict = false;
    }
    bool was_resident = tlb_.contains(addr);
    if (verdict) {
        MNM_ASSERT(!was_resident, "sound TLB filter bypassed a hit");
        ++identified_;
    } else if (!was_resident) {
        ++unidentified_;
    }
    return tlb_.translate(addr, verdict);
}

void
TlbFilterUnit::onTlbPlacement(std::uint64_t page)
{
    filter_->onPlacement(page);
    energy_pj_ += filter_update_pj_;
}

void
TlbFilterUnit::onTlbReplacement(std::uint64_t page)
{
    filter_->onReplacement(page);
    energy_pj_ += filter_update_pj_;
}

double
TlbFilterUnit::coverage() const
{
    return ratio(static_cast<double>(identified_),
                 static_cast<double>(identified_ + unidentified_));
}

} // namespace mnm
