/**
 * @file
 * The Mostly No Machine: binds per-cache miss filters and the shared
 * RMNM to a concrete cache hierarchy (paper Section 2).
 *
 * The unit registers itself as the hierarchy's event listener so it sees
 * every placement and replacement (the paper's bookkeeping buses), and
 * produces a BypassMask per access: the "miss" tags that travel with the
 * request and make downstream caches skip their probe.
 *
 * Placement (paper Figure 1):
 *  - Parallel: the MNM is probed alongside the L1 caches. Its delay is
 *    hidden under the L1 access (verified in the Table 3 bench), so no
 *    latency is added; its energy is charged on every access.
 *  - Serial: the MNM is probed only after an L1 miss. Accesses that miss
 *    L1 pay the MNM delay; the MNM energy is charged only on L1 misses.
 *
 * The caller drives the charging via chargeLookup() after it knows the
 * L1 outcome; update energy is accrued automatically from the event feed.
 */

#ifndef MNM_CORE_MNM_UNIT_HH
#define MNM_CORE_MNM_UNIT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/miss_filter.hh"
#include "core/rmnm.hh"
#include "core/soa_state.hh"
#include "core/update_plan.hh"
#include "core/verdict_plan.hh"
#include "util/cpu.hh"
#include "util/types.hh"

namespace mnm
{

/** Where the MNM sits relative to the caches (paper Figure 1 and the
 *  Section 2 discussion).
 *
 *  Parallel:    probed alongside the L1 caches; no added latency, full
 *               structure energy on every request.
 *  Serial:      probed once after an L1 miss; +delay on L1 misses,
 *               energy only on L1 misses.
 *  Distributed: each cache level's filter sits in front of that cache;
 *               the walk pays the filter delay at every level it
 *               reaches but only consults the structures it actually
 *               needs -- the paper's "better power consumption, but
 *               will increase the access times" variant. */
enum class MnmPlacement
{
    Parallel,
    Serial,
    Distributed,
};

/** Filters applied to every cache within a level range. */
struct LevelFilters
{
    std::uint32_t min_level = 2;
    std::uint32_t max_level = 99;
    std::vector<FilterSpec> filters;
};

/** Complete configuration of one MNM. */
struct MnmSpec
{
    std::string name = "MNM";
    MnmPlacement placement = MnmPlacement::Parallel;
    /** MNM probe delay in cycles (paper Section 4.1 uses 2). */
    Cycles delay = 2;
    /** Oracle mode: "perfect MNM" that knows where every block lives
     *  and consumes no power (paper Sections 4.3/4.4). */
    bool perfect = false;
    /** Optional shared replacement tracker. */
    std::optional<RmnmSpec> rmnm;
    /** Per-level technique assignment. */
    std::vector<LevelFilters> level_filters;
    /** Force oracle-checking of every verdict (testing aid). */
    bool oracle_check = false;
};

/** The Mostly No Machine. */
class MnmUnit : public CacheEventListener
{
  public:
    /**
     * Builds all structures and attaches to @p hierarchy as its event
     * listener. The hierarchy must outlive the unit, be cold (empty) at
     * attach time, and have no other listener.
     */
    MnmUnit(const MnmSpec &spec, CacheHierarchy &hierarchy);
    ~MnmUnit() override;

    MnmUnit(const MnmUnit &) = delete;
    MnmUnit &operator=(const MnmUnit &) = delete;

    /**
     * Produce the per-cache bypass verdicts for one access. Pure with
     * respect to filter state; verdict statistics are recorded.
     * Dispatches through the compiled verdict plan by default, or the
     * single-step virtual reference path under setReferenceDispatch().
     */
    BypassMask computeBypass(AccessType type, Addr addr);

    /**
     * Batch verdict interface (the SoA/SIMD fast path; sim/memory_sim).
     *
     * computeCandidates() fills @p cand with one raw candidate mask per
     * address: the pre-guard "definite miss" bits the compiled plan
     * would produce against CURRENT filter state. It is pure -- no
     * statistics, no energy, no guard checks -- so candidates may be
     * computed ahead of time and consumed later, PROVIDED stateEpoch()
     * has not moved in between (any placement/replacement/flush/fault
     * touching verdict-relevant state bumps the epoch; recompute the
     * not-yet-consumed tail when it does).
     *
     * finishBypass() then turns one candidate into the final verdict
     * exactly as computeBypass() would have: it performs the per-access
     * bookkeeping, applies oracle guards against live cache contents,
     * and records violations. computeBypass(type, addr) is equivalent
     * to computeCandidates(..1..) + finishBypass on every backend.
     */
    void computeCandidates(AccessType type, const Addr *addrs,
                           std::uint32_t *cand, std::size_t n);
    BypassMask finishBypass(AccessType type, Addr addr,
                            std::uint32_t cand);

    /** True when the fetch and data paths compile to the same verdict
     *  plan: any access type may then share one candidate span. */
    bool plansIdentical() const { return plans_identical_; }

    /** Whether @p type's plan has any oracle-guarded step. Guard-free
     *  verdicts are pure data with no per-verdict statistics, so a
     *  caller that can prove a verdict will go unread (the access hits
     *  before the first planned level) may skip producing it -- after
     *  noteLookup() for the per-access bookkeeping. */
    bool
    planGuarded(AccessType type) const
    {
        return type == AccessType::InstFetch ? instr_guards_
                                             : data_guards_;
    }

    /** The per-access bookkeeping finishBypass performs, for accesses
     *  whose verdict is provably unread. Keeping the counts identical
     *  to the verdict path keeps every backend's outputs identical. */
    void
    noteLookup()
    {
        ++lookups_;
        rmnm_burst_charged_ = false;
    }

    /** Hint the filter-table lines a future computeCandidates for
     *  @p addr will read (soaPrefetch; index locations are pure in the
     *  address, so state churn cannot stale the hint). */
    void
    prefetchCandidates(AccessType type, Addr addr) const
    {
        soaPrefetch(type == AccessType::InstFetch ? soa_instr_
                                                  : soa_data_,
                    addr);
    }

    /** Monotone stamp of all verdict-relevant MNM state; candidates
     *  are valid only while it holds still. */
    std::uint64_t stateEpoch() const { return state_epoch_; }

    /** Kernel backend behind computeBypass/computeCandidates. Defaults
     *  to the MNM_SIMD environment knob (util/cpu.hh); Off preserves
     *  the legacy per-access plan walk with no SoA programs. */
    void setSimdBackend(SimdBackend backend) { backend_ = backend; }
    SimdBackend simdBackend() const { return backend_; }

    /** Charge one structure probe (caller decides per placement). */
    void chargeLookup() { ++lookup_charges_; }

    /**
     * Apply the configured placement's latency and energy costs for one
     * completed access: the single source of truth shared by the
     * functional and timing simulators.
     *
     * @return extra latency (cycles) the MNM adds to this access.
     */
    Cycles applyPlacementCosts(const AccessResult &result);

    /** CacheEventListener interface (the bookkeeping feed). The
     *  per-event virtuals are the reference path; the hierarchy's
     *  batched event ring lands in onEventBatch, which drains through
     *  the compiled per-cache update plan (core/update_plan.hh). */
    void onPlacement(CacheId id, BlockAddr block) override;
    void onReplacement(CacheId id, BlockAddr block) override;
    void onFlush(CacheId id) override;
    void onEventBatch(const CacheEvent *events, std::size_t n) override;

    /** Per-probe energy of all structures together, pJ. */
    PicoJoules lookupEnergyPerAccess() const { return lookup_energy_pj_; }

    /**
     * Total energy consumed so far (lookups + updates), pJ. The hot
     * paths count integer events; the per-event energies are multiplied
     * out here, once per query, so the total is independent of event
     * interleaving (no per-access floating-point accumulation order to
     * worry about).
     */
    PicoJoules consumedEnergyPj() const;

    /** Worst-case structure delay under the analytical model, ns. */
    Nanoseconds probeDelayNs() const { return probe_delay_ns_; }

    /** Configured pipeline delay in cycles. */
    Cycles delayCycles() const { return spec_.delay; }

    /** Total storage across all structures, bits. */
    std::uint64_t storageBits() const;

    /** "Miss" verdicts that an oracle check had to overturn. Always 0
     *  for sound configurations; nonzero only in PaperReset ablations
     *  (or if a filter's bookkeeping broke, which tests would catch). */
    std::uint64_t soundnessViolations() const { return violations_; }

    /** Caught violations at one cache level (1-based); the
     *  observability layer's forbidden confusion-matrix cell
     *  (predicted-miss on a resident block). The per-level counters are
     *  sized from the attached hierarchy, so every level it can name is
     *  tracked; levels beyond it report 0. */
    std::uint64_t
    violationsAtLevel(std::uint32_t level) const
    {
        return level < violations_at_.size() ? violations_at_[level] : 0;
    }

    /** Number of tracked violation levels (hierarchy levels + 1; level
     *  indices are 1-based). */
    std::uint32_t violationLevels() const
    {
        return static_cast<std::uint32_t>(violations_at_.size());
    }

    /**
     * Route computeBypass and the event feed through the single-step
     * virtual MissFilter interface instead of the compiled plan. Slow;
     * exists so kernel_equivalence_test can prove both dispatch styles
     * produce bit-identical results.
     */
    void setReferenceDispatch(bool on) { reference_dispatch_ = on; }
    bool referenceDispatch() const { return reference_dispatch_; }

    /**
     * Route the event feed through the per-event virtual listener path
     * instead of the hierarchy's batched event ring (the
     * MNM_REFERENCE_FEED=1 knob). Slow; exists so the batched update
     * kernels can be byte-diffed against the original feed.
     */
    void
    setReferenceFeed(bool on)
    {
        reference_feed_ = on;
        hierarchy_.setBatchedFeed(!on);
    }
    bool referenceFeed() const { return reference_feed_; }

    /** Number of verdict computations performed. */
    std::uint64_t lookups() const { return lookups_; }

    /** Sum of per-filter bookkeeping anomalies (should stay 0). */
    std::uint64_t filterAnomalies() const;

    const MnmSpec &spec() const { return spec_; }
    const Rmnm *rmnm() const { return rmnm_.get(); }

    /** Filters attached to cache @p id (empty for L1 caches). */
    const std::vector<std::unique_ptr<MissFilter>> &
    filtersOf(CacheId id) const
    {
        return per_cache_[id].filters;
    }

    /** Multi-line configuration summary. */
    std::string describe() const;

  private:
    /** The fault-injection harness flips bits in the private
     *  structures directly (core/fault_inject.hh). */
    friend class FaultInjector;

    struct PerCache
    {
        std::vector<std::unique_ptr<MissFilter>> filters;
        /** Index into the RMNM bit vector; -1 if untracked (L1). */
        int rmnm_index = -1;
        unsigned block_bits = 0;
        bool any_unsound = false;
        /** Energy to update this cache's filters once, pJ. */
        PicoJoules update_pj = 0.0;
        /** Energy to probe this cache's filters once, pJ. */
        PicoJoules lookup_pj = 0.0;
        /** This cache's slice of the flat kernel array:
         *  kernels_[kernel_first .. kernel_first + kernel_count). */
        std::uint32_t kernel_first = 0;
        std::uint32_t kernel_count = 0;
        /** Hot accounting: filter-update events (placements plus
         *  replacements) and distributed-placement probe events.
         *  Multiplied by update_pj / lookup_pj in consumedEnergyPj(). */
        std::uint64_t update_events = 0;
        std::uint64_t dist_lookup_events = 0;
    };

    /** One compiled step of a per-path verdict plan: everything the
     *  hot loop needs for a level >= 2 cache, resolved at construction
     *  so computeBypass touches no per-access indirection beyond it. */
    struct VerdictStep
    {
        const Cache *cache = nullptr;
        const PerCache *pc = nullptr;
        CacheId id = 0;
        std::uint32_t level = 0;
        /** Oracle-check every "miss" verdict at this cache. */
        bool oracle_guard = false;
    };

    /** Reference (virtual-dispatch) verdict for one cache. */
    bool cacheVerdict(CacheId id, Addr addr) const;

    /** The single-step reference walk computeBypass falls back to. */
    BypassMask computeBypassReference(AccessType type, Addr addr);

    /** The legacy (MNM_SIMD=off) per-access plan walk. */
    BypassMask computeBypassLegacy(AccessType type, Addr addr);

    /** Flatten the filter fan-out and the per-path walks into plans. */
    void compilePlans();

    /** Lower one walk plan into its SoA program (borrowing the live
     *  filter tables; core/soa_state.hh). */
    void lowerPlan(const std::vector<VerdictStep> &plan,
                   SoaProgram &program) const;

    MnmSpec spec_;
    CacheHierarchy &hierarchy_;
    std::vector<PerCache> per_cache_;
    std::unique_ptr<Rmnm> rmnm_;

    /** The flat verdict plan: every filter of every cache, contiguous,
     *  type-tagged (cache c owns the slice described by its PerCache). */
    std::vector<FilterKernel> kernels_;
    /** Per-path walk plans (level >= 2 caches in path order). */
    std::vector<VerdictStep> instr_plan_;
    std::vector<VerdictStep> data_plan_;
    /** The update-side mirror: one compiled step per cache id, driven
     *  by the drained event ring (core/update_plan.hh). */
    std::vector<UpdateStep> update_plan_;
    bool reference_dispatch_ = false;
    bool reference_feed_ = false;

    /** SoA lowerings of the walk plans (batch/SIMD verdict path). */
    SoaProgram soa_instr_;
    SoaProgram soa_data_;
    /** Both paths traverse the same level >= 2 caches (the common
     *  split-L1-only topology), so a batch may chunk verdict spans
     *  across fetch/data boundaries. */
    bool plans_identical_ = false;
    /** Any oracle-guarded step on the path? Guard-free plans turn a
     *  candidate mask into the final BypassMask with no per-step loop. */
    bool instr_guards_ = false;
    bool data_guards_ = false;
    /** Bumped by every mutation verdicts can observe; starts at 1 so
     *  precomputed candidate spans are validated against a live value. */
    std::uint64_t state_epoch_ = 1;
    SimdBackend backend_ = SimdBackend::Off;

    PicoJoules lookup_energy_pj_ = 0.0;
    /** RMNM write energy, charged once per access burst: the fill
     *  path's placement/replacement report traverses the MNM as one
     *  message (paper Section 2), so the RMNM performs one batched
     *  update per access rather than one per cache event. */
    PicoJoules rmnm_update_pj_ = 0.0;
    bool rmnm_burst_charged_ = false;
    PicoJoules rmnm_lookup_pj_ = 0.0;
    Nanoseconds probe_delay_ns_ = 0.0;

    /** Hot accounting: integer event counts behind consumedEnergyPj(). */
    std::uint64_t lookup_charges_ = 0;
    std::uint64_t rmnm_burst_events_ = 0;
    std::uint64_t rmnm_lookup_events_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t violations_ = 0;
    /** Sized from the attached hierarchy (levels + 1, 1-based). */
    std::vector<std::uint64_t> violations_at_;
};

} // namespace mnm

#endif // MNM_CORE_MNM_UNIT_HH
