#include "core/fault_inject.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/logging.hh"

namespace mnm
{

CellFaultSpec
parseCellFaultSpec(const char *env)
{
    CellFaultSpec spec;
    std::string value(env);
    std::size_t colon = value.find(':');
    spec.match = value.substr(0, colon);
    if (spec.match.empty())
        fatal("MNM_FAIL_CELL='%s' has an empty cell substring", env);
    if (colon == std::string::npos)
        return spec;

    std::string mode = value.substr(colon + 1);
    if (mode == "throw") {
        spec.mode = CellFaultMode::Throw;
    } else if (mode == "segv") {
        spec.mode = CellFaultMode::Segv;
    } else if (mode == "abort") {
        spec.mode = CellFaultMode::Abort;
    } else if (mode == "hang") {
        spec.mode = CellFaultMode::Hang;
    } else if (mode.rfind("exit:", 0) == 0) {
        const std::string code = mode.substr(5);
        char *end = nullptr;
        errno = 0;
        unsigned long v = std::strtoul(code.c_str(), &end, 10);
        if (code.empty() || *end != '\0' || errno != 0 || v > 255 ||
            code[0] == '-') {
            fatal("MNM_FAIL_CELL='%s': exit code '%s' must be an "
                  "integer in [0, 255]",
                  env, code.c_str());
        }
        spec.mode = CellFaultMode::Exit;
        spec.exit_code = static_cast<int>(v);
    } else {
        fatal("MNM_FAIL_CELL='%s': unknown mode '%s' (expected throw, "
              "segv, abort, exit:<code>, or hang)",
              env, mode.c_str());
    }
    return spec;
}

void
triggerCellFault(const CellFaultSpec &spec,
                 const std::string &display_name)
{
    switch (spec.mode) {
      case CellFaultMode::Throw:
        throw std::runtime_error("injected failure (MNM_FAIL_CELL=" +
                                 spec.match + ")");
      case CellFaultMode::Segv:
        // The signal must be real (default disposition), not an
        // exception dressed up as one: the point is to die the way a
        // wild pointer would, containable only by process isolation.
        ::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
        break;
      case CellFaultMode::Abort:
        ::signal(SIGABRT, SIG_DFL);
        std::abort();
      case CellFaultMode::Exit:
        // _Exit, not exit(): no atexit hooks, no stream flushes -- the
        // sudden-death shape of an OOM kill or a stray exit() deep in
        // a library.
        std::_Exit(spec.exit_code);
      case CellFaultMode::Hang:
        // Deliberately never polls pollCellDeadline(): the cooperative
        // watchdog cannot end this. Only a supervisor-side SIGKILL
        // (MNM_WORKERS + MNM_CELL_TIMEOUT_S) can.
        for (;;) {
            std::this_thread::sleep_for(std::chrono::seconds(3600));
        }
    }
    panic("triggerCellFault(%s): fault did not take",
          display_name.c_str());
}

/** @p visit(name, bits, flip_fn) is called once per surface. */
template <typename Visit>
void
FaultInjector::visitSurfaces(MnmUnit &unit, Visit &&visit)
{
    if (unit.rmnm_ && unit.rmnm_->faultBitCount() > 0) {
        Rmnm &rmnm = *unit.rmnm_;
        visit("rmnm", rmnm.faultBitCount(),
              [&rmnm](std::uint64_t bit) { rmnm.flipFaultBit(bit); });
    }
    for (std::size_t id = 0; id < unit.per_cache_.size(); ++id) {
        const std::string &cache_name =
            unit.hierarchy_.cache(static_cast<CacheId>(id))
                .params()
                .name;
        for (const auto &filter : unit.per_cache_[id].filters) {
            if (filter->faultBitCount() == 0)
                continue;
            visit(cache_name + "/" + filter->name(),
                  filter->faultBitCount(),
                  [&filter](std::uint64_t bit) {
                      filter->flipFaultBit(bit);
                  });
        }
    }
}

std::vector<FaultSurface>
FaultInjector::faultSurfaces(const MnmUnit &unit)
{
    std::vector<FaultSurface> surfaces;
    // visitSurfaces needs a mutable unit for the flip closures; the
    // enumeration itself never mutates.
    visitSurfaces(const_cast<MnmUnit &>(unit),
                  [&](const std::string &name, std::uint64_t bits,
                      auto &&) { surfaces.push_back({name, bits}); });
    return surfaces;
}

void
FaultInjector::flip(MnmUnit &unit, std::size_t surface,
                    std::uint64_t bit)
{
    std::size_t index = 0;
    bool done = false;
    visitSurfaces(unit, [&](const std::string &, std::uint64_t bits,
                            auto &&flip_fn) {
        if (index++ != surface)
            return;
        MNM_ASSERT(bit < bits, "fault bit out of surface range");
        flip_fn(bit);
        done = true;
    });
    MNM_ASSERT(done, "fault surface index out of range");
    // The flip rewrote verdict-relevant state behind the unit's back:
    // invalidate every memoized candidate so the SoA path (which reads
    // the corrupted tables live) cannot serve a pre-strike verdict.
    ++unit.state_epoch_;
}

FaultInjection
FaultInjector::injectRandom(MnmUnit &unit)
{
    std::vector<FaultSurface> surfaces = faultSurfaces(unit);
    MNM_ASSERT(!surfaces.empty(),
               "fault injection into an MNM with no structures");
    std::uint64_t total = 0;
    for (const FaultSurface &s : surfaces)
        total += s.bits;

    // Weight the pick by surface size: every physical bit is an
    // equally likely strike target.
    std::uint64_t pick = rng_.nextBelow(total);
    FaultInjection injection;
    for (std::size_t i = 0; i < surfaces.size(); ++i) {
        if (pick < surfaces[i].bits) {
            injection.surface = i;
            injection.name = surfaces[i].name;
            injection.bit = pick;
            break;
        }
        pick -= surfaces[i].bits;
    }
    flip(unit, injection.surface, injection.bit);
    return injection;
}

} // namespace mnm
