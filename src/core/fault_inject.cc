#include "core/fault_inject.hh"

#include "util/logging.hh"

namespace mnm
{

/** @p visit(name, bits, flip_fn) is called once per surface. */
template <typename Visit>
void
FaultInjector::visitSurfaces(MnmUnit &unit, Visit &&visit)
{
    if (unit.rmnm_ && unit.rmnm_->faultBitCount() > 0) {
        Rmnm &rmnm = *unit.rmnm_;
        visit("rmnm", rmnm.faultBitCount(),
              [&rmnm](std::uint64_t bit) { rmnm.flipFaultBit(bit); });
    }
    for (std::size_t id = 0; id < unit.per_cache_.size(); ++id) {
        const std::string &cache_name =
            unit.hierarchy_.cache(static_cast<CacheId>(id))
                .params()
                .name;
        for (const auto &filter : unit.per_cache_[id].filters) {
            if (filter->faultBitCount() == 0)
                continue;
            visit(cache_name + "/" + filter->name(),
                  filter->faultBitCount(),
                  [&filter](std::uint64_t bit) {
                      filter->flipFaultBit(bit);
                  });
        }
    }
}

std::vector<FaultSurface>
FaultInjector::faultSurfaces(const MnmUnit &unit)
{
    std::vector<FaultSurface> surfaces;
    // visitSurfaces needs a mutable unit for the flip closures; the
    // enumeration itself never mutates.
    visitSurfaces(const_cast<MnmUnit &>(unit),
                  [&](const std::string &name, std::uint64_t bits,
                      auto &&) { surfaces.push_back({name, bits}); });
    return surfaces;
}

void
FaultInjector::flip(MnmUnit &unit, std::size_t surface,
                    std::uint64_t bit)
{
    std::size_t index = 0;
    bool done = false;
    visitSurfaces(unit, [&](const std::string &, std::uint64_t bits,
                            auto &&flip_fn) {
        if (index++ != surface)
            return;
        MNM_ASSERT(bit < bits, "fault bit out of surface range");
        flip_fn(bit);
        done = true;
    });
    MNM_ASSERT(done, "fault surface index out of range");
    // The flip rewrote verdict-relevant state behind the unit's back:
    // invalidate every memoized candidate so the SoA path (which reads
    // the corrupted tables live) cannot serve a pre-strike verdict.
    ++unit.state_epoch_;
}

FaultInjection
FaultInjector::injectRandom(MnmUnit &unit)
{
    std::vector<FaultSurface> surfaces = faultSurfaces(unit);
    MNM_ASSERT(!surfaces.empty(),
               "fault injection into an MNM with no structures");
    std::uint64_t total = 0;
    for (const FaultSurface &s : surfaces)
        total += s.bits;

    // Weight the pick by surface size: every physical bit is an
    // equally likely strike target.
    std::uint64_t pick = rng_.nextBelow(total);
    FaultInjection injection;
    for (std::size_t i = 0; i < surfaces.size(); ++i) {
        if (pick < surfaces[i].bits) {
            injection.surface = i;
            injection.name = surfaces[i].name;
            injection.bit = pick;
            break;
        }
        pick -= surfaces[i].bits;
    }
    flip(unit, injection.surface, injection.bit);
    return injection;
}

} // namespace mnm
