/**
 * @file
 * Common-Address MNM (paper Section 3.4).
 *
 * Exploits spatial locality in the upper address bits. A "virtual-tag
 * finder" of k registers remembers the distinct upper-bit patterns
 * ((32 - m) most significant bits of the block address) seen among
 * cached blocks; each register's match can be coarsened by a left-
 * shifting mask. On an access:
 *
 *   1. if no register matches the upper bits -> definite miss
 *      (no cached block shares this address region);
 *   2. otherwise the matching register's index (the "virtual tag") is
 *      concatenated with the m least significant bits and used to index
 *      a table of 3-bit sticky saturating counters (as in TMNM);
 *      a zero counter -> definite miss.
 *
 * Mask policy (see DESIGN.md decision 4): the paper's literal behaviour
 * ("shift the masks left until a match is found, then reset the others")
 * can orphan earlier placements and emit unsound verdicts. The default
 * Monotone policy widens masks monotonically and remembers, per resident
 * block, which register its placement incremented (conceptually the
 * virtual tag is stored with the block's metadata), making the filter
 * provably sound. PaperReset implements the literal text as an ablation;
 * it reports maybeUnsound() so the MnmUnit oracle-guards its verdicts
 * and counts the violations.
 */

#ifndef MNM_CORE_CMNM_HH
#define MNM_CORE_CMNM_HH

#include <cstdint>
#include <vector>

#include "core/miss_filter.hh"
#include "util/flatmap.hh"

namespace mnm
{

/** The CMNM filter for one cache. */
class Cmnm : public MissFilter
{
  public:
    explicit Cmnm(const CmnmSpec &spec);

    /** Non-virtual hot-path bodies; the verdict plan dispatches to
     *  these directly (core/verdict_plan.hh). Out of line -- the CAM
     *  walk dominates, so inlining buys nothing here -- but still a
     *  direct call instead of a virtual one. */
    bool missHot(BlockAddr block) const;
    void placeHot(BlockAddr block);
    void replaceHot(BlockAddr block);

    bool definitelyMiss(BlockAddr block) const override
    {
        return missHot(block);
    }
    void onPlacement(BlockAddr block) override { placeHot(block); }
    void onReplacement(BlockAddr block) override { replaceHot(block); }
    void onFlush() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    PowerDelay power(const SramModel &sram,
                     const CheckerModel &checker) const override;
    bool maybeUnsound() const override
    {
        return spec_.policy == CmnmMaskPolicy::PaperReset;
    }
    std::uint64_t anomalies() const override { return anomalies_; }

    /** Fault surface: every counter bit, then per register 16 low
     *  prefix bits plus the valid bit. */
    std::uint64_t faultBitCount() const override
    {
        return static_cast<std::uint64_t>(counters_.size()) *
                   spec_.counter_bits +
               static_cast<std::uint64_t>(registers_.size()) *
                   register_fault_bits;
    }
    void flipFaultBit(std::uint64_t bit) override
    {
        std::uint64_t counter_bits =
            static_cast<std::uint64_t>(counters_.size()) *
            spec_.counter_bits;
        if (bit < counter_bits) {
            counters_[bit / spec_.counter_bits] ^=
                static_cast<std::uint8_t>(1u
                                          << (bit % spec_.counter_bits));
            return;
        }
        bit -= counter_bits;
        VtagRegister &reg = registers_[bit / register_fault_bits];
        std::uint64_t within = bit % register_fault_bits;
        if (within < 16) {
            reg.prefix ^= std::uint64_t{1} << within;
        } else {
            reg.valid = !reg.valid;
        }
    }

    const CmnmSpec &spec() const { return spec_; }

    /** Number of virtual-tag registers currently allocated. */
    std::uint32_t registersInUse() const;

    /** Total mask widenings performed (diagnostic). */
    std::uint64_t maskWidenings() const { return widenings_; }

    /** One virtual-tag register. Public so the SoA verdict program can
     *  borrow the live register file and run the Monotone CAM walk
     *  inline (core/soa_state.hh) instead of calling back in here per
     *  lane. */
    struct VtagRegister
    {
        /** Upper bits of the block address at allocation (block >> m). */
        std::uint64_t prefix = 0;
        /** How many low prefix bits the mask currently ignores. */
        std::uint32_t widen = 0;
        bool valid = false;
    };

    /** widen can legitimately reach 64; plain >> would be UB there. */
    static std::uint64_t
    shiftRight(std::uint64_t v, std::uint32_t s)
    {
        return s >= 64 ? 0 : v >> s;
    }

    /** Live register file / counter table, borrowed by the SoA
     *  program. Neither reallocates after construction (onFlush
     *  rewrites in place), so the pointers are stable. */
    const VtagRegister *registerTable() const { return registers_.data(); }
    const std::uint8_t *counterTable() const { return counters_.data(); }

  private:
    /** Injectable bits per virtual-tag register (16 prefix + valid). */
    static constexpr std::uint64_t register_fault_bits = 17;

    std::uint64_t prefixOf(BlockAddr block) const
    {
        return block >> spec_.table_index_bits;
    }

    std::uint64_t lowBitsOf(BlockAddr block) const
    {
        return block & ((std::uint64_t{1} << spec_.table_index_bits) - 1);
    }

    bool regMatches(const VtagRegister &reg, std::uint64_t prefix) const
    {
        return reg.valid && shiftRight(prefix, reg.widen) ==
                                shiftRight(reg.prefix, reg.widen);
    }

    /**
     * Most specific (narrowest-mask) matching register, or -1. Ties go
     * to the lowest index. Specificity spreads placements across the
     * register file instead of letting a fully-widened low register
     * absorb everything.
     */
    int bestMatch(std::uint64_t prefix) const;

    /** Find/allocate/widen to produce a register for a placement. */
    std::uint32_t registerForPlacement(std::uint64_t prefix);

    std::size_t
    cellIndex(std::uint32_t reg, BlockAddr block) const
    {
        return (static_cast<std::size_t>(reg)
                << spec_.table_index_bits) |
               static_cast<std::size_t>(lowBitsOf(block));
    }

    void stickyIncrement(std::size_t cell);
    void stickyDecrement(std::size_t cell);

    CmnmSpec spec_;
    std::uint8_t saturation_;
    std::vector<VtagRegister> registers_;
    std::vector<std::uint8_t> counters_; //!< k * 2^m sticky counters
    /** Monotone policy: which register each resident block incremented.
     *  A flat open-addressing map: one insert per placement and one
     *  find+erase per replacement land here, hot enough that node
     *  allocation shows up in whole-pipeline profiles. */
    FlatMap64<std::uint32_t> placed_reg_;
    std::uint64_t anomalies_ = 0;
    std::uint64_t widenings_ = 0;
};

} // namespace mnm

#endif // MNM_CORE_CMNM_HH
