#include "core/soa_state.hh"

#include "cache/cache.hh"

namespace mnm
{

void
soaComputeScalar(const SoaProgram &program, const Addr *addrs,
                 std::uint32_t *cand, std::size_t n)
{
    const SoaStep *steps = program.steps.data();
    const std::size_t num_steps = program.steps.size();
    const SoaOp *ops = program.ops.data();

    if (program.perfect) {
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t mask = 0;
            for (std::size_t s = 0; s < num_steps; ++s) {
                const SoaStep &step = steps[s];
                if (!step.cache->contains(addrs[i] >> step.block_bits))
                    mask |= step.cache_bit;
            }
            cand[i] = mask;
        }
        return;
    }

    const Rmnm *rmnm = program.rmnm;
    // The RMNM entry row is the one randomly-indexed load shared by
    // every step; hint the next address's row while this one resolves.
    constexpr std::size_t prefetch_ahead = 4;
    for (std::size_t i = 0; i < n; ++i) {
        if (rmnm && i + prefetch_ahead < n)
            rmnm->prefetch(addrs[i + prefetch_ahead]);
        const std::uint32_t rmnm_bits =
            rmnm ? rmnm->missBits(addrs[i]) : 0;
        std::uint32_t mask = 0;
        for (std::size_t s = 0; s < num_steps; ++s) {
            const SoaStep &step = steps[s];
            bool miss = step.rmnm_index >= 0 &&
                        ((rmnm_bits >> step.rmnm_index) & 1u);
            if (!miss) {
                BlockAddr block = addrs[i] >> step.block_bits;
                const SoaOp *op = ops + step.op_first;
                const SoaOp *end = op + step.op_count;
                for (; op != end; ++op) {
                    if (soaOpMiss(*op, block)) {
                        miss = true;
                        break;
                    }
                }
            }
            if (miss)
                mask |= step.cache_bit;
        }
        cand[i] = mask;
    }
}

} // namespace mnm
