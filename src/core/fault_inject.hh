/**
 * @file
 * Deterministic fault injection for MNM structures.
 *
 * The paper's whole value proposition rests on one invariant: a "miss"
 * verdict is never produced for a resident block. The filters maintain
 * that invariant through bookkeeping (counts, presence bits, tag
 * prefixes); a single flipped state bit -- a particle strike, an SRAM
 * defect, a bring-up bug -- can silently break it. This harness flips
 * chosen bits in live structures so tests can verify the system's
 * failure mode: corruption must either degrade safely (extra "maybe"
 * answers, lost coverage, never wrong data) or be caught by the
 * MnmUnit's oracle check and surface in the per-level violation
 * counters / the DecisionMatrix forbidden cell. What must never happen
 * is a silent unsound "miss".
 *
 * All injection is deterministic: targets are drawn from a seeded Rng
 * (util/random.hh), and every flip is self-inverse, so a test can
 * flip, observe, flip back, and assert the structure recovered.
 */

#ifndef MNM_CORE_FAULT_INJECT_HH
#define MNM_CORE_FAULT_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/mnm_unit.hh"
#include "util/random.hh"

namespace mnm
{

/** One injectable structure inside an MnmUnit. */
struct FaultSurface
{
    /** "rmnm", or "<cache name>/<filter name>" for per-cache filters. */
    std::string name;
    /** State bits this structure exposes to injection. */
    std::uint64_t bits = 0;
};

/** Record of one performed flip. */
struct FaultInjection
{
    std::size_t surface = 0; //!< index into faultSurfaces()
    std::string name;        //!< that surface's name
    std::uint64_t bit = 0;   //!< flipped bit within the surface
};

/** Flips bits in a live MnmUnit's structures. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

    /** Enumerate @p unit's injectable structures, in a fixed order:
     *  the shared RMNM first (when present), then every per-cache
     *  filter by cache id. Surfaces with zero bits are omitted. */
    static std::vector<FaultSurface> faultSurfaces(const MnmUnit &unit);

    /**
     * Flip bit @p bit of surface @p surface (indices per
     * faultSurfaces()). Deterministic and self-inverse: flipping the
     * same bit again restores the original state exactly.
     */
    static void flip(MnmUnit &unit, std::size_t surface,
                     std::uint64_t bit);

    /**
     * Flip one uniformly chosen bit across all of @p unit's surfaces
     * (weighted by surface size) and return what was flipped. The
     * sequence of targets is a pure function of the constructor seed.
     */
    FaultInjection injectRandom(MnmUnit &unit);

  private:
    /** Visit every injectable structure in the fixed surface order;
     *  defined in fault_inject.cc (the only translation unit that
     *  instantiates it). */
    template <typename Visit>
    static void visitSurfaces(MnmUnit &unit, Visit &&visit);

    Rng rng_;
};

} // namespace mnm

#endif // MNM_CORE_FAULT_INJECT_HH
