/**
 * @file
 * Deterministic fault injection for MNM structures.
 *
 * The paper's whole value proposition rests on one invariant: a "miss"
 * verdict is never produced for a resident block. The filters maintain
 * that invariant through bookkeeping (counts, presence bits, tag
 * prefixes); a single flipped state bit -- a particle strike, an SRAM
 * defect, a bring-up bug -- can silently break it. This harness flips
 * chosen bits in live structures so tests can verify the system's
 * failure mode: corruption must either degrade safely (extra "maybe"
 * answers, lost coverage, never wrong data) or be caught by the
 * MnmUnit's oracle check and surface in the per-level violation
 * counters / the DecisionMatrix forbidden cell. What must never happen
 * is a silent unsound "miss".
 *
 * All injection is deterministic: targets are drawn from a seeded Rng
 * (util/random.hh), and every flip is self-inverse, so a test can
 * flip, observe, flip back, and assert the structure recovered.
 */

#ifndef MNM_CORE_FAULT_INJECT_HH
#define MNM_CORE_FAULT_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/mnm_unit.hh"
#include "util/random.hh"

namespace mnm
{

/**
 * How an MNM_FAIL_CELL-matched sweep cell dies. Beyond the original
 * in-band exception ("throw", the default), the knob can now raise the
 * process-fatal failures a worker *process* must contain and a worker
 * *thread* cannot: a real SIGSEGV/SIGABRT, a plain exit, and a
 * non-cooperative hang (a loop that never polls the watchdog, so only
 * a supervisor-side SIGKILL deadline ends it).
 */
enum class CellFaultMode
{
    Throw, //!< throw std::runtime_error (contained by the thread pool)
    Segv,  //!< raise(SIGSEGV): kills the executing process
    Abort, //!< std::abort(): kills the executing process
    Exit,  //!< _Exit(code): silent process exit, no unwinding
    Hang,  //!< sleep forever without polling any cooperative deadline
};

/** Parsed MNM_FAIL_CELL value: which cells to kill, and how. */
struct CellFaultSpec
{
    /** Substring of the cell's "app · label" display name; empty =
     *  injection disabled. */
    std::string match;
    CellFaultMode mode = CellFaultMode::Throw;
    /** Exit status for CellFaultMode::Exit. */
    int exit_code = 0;

    bool enabled() const { return !match.empty(); }

    /** True when @p display_name names a cell this spec kills. */
    bool matches(const std::string &display_name) const
    {
        return enabled() &&
               display_name.find(match) != std::string::npos;
    }
};

/**
 * Parse an MNM_FAIL_CELL value: "<substring>" (throw, the original
 * behavior) or "<substring>:<mode>" with mode one of throw, segv,
 * abort, exit:<code> (0..255), hang. The split is at the first ':'
 * (no cell display name contains one), and anything after it that is
 * not a recognized mode is a fatal(), like every other malformed
 * MNM_* knob.
 */
CellFaultSpec parseCellFaultSpec(const char *env);

/**
 * Kill the current cell the way @p spec says. Throw returns control by
 * throwing; every other mode never returns (signal, exit, or hang).
 * @p display_name is quoted in the thrown message.
 */
void triggerCellFault(const CellFaultSpec &spec,
                      const std::string &display_name);

/** One injectable structure inside an MnmUnit. */
struct FaultSurface
{
    /** "rmnm", or "<cache name>/<filter name>" for per-cache filters. */
    std::string name;
    /** State bits this structure exposes to injection. */
    std::uint64_t bits = 0;
};

/** Record of one performed flip. */
struct FaultInjection
{
    std::size_t surface = 0; //!< index into faultSurfaces()
    std::string name;        //!< that surface's name
    std::uint64_t bit = 0;   //!< flipped bit within the surface
};

/** Flips bits in a live MnmUnit's structures. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

    /** Enumerate @p unit's injectable structures, in a fixed order:
     *  the shared RMNM first (when present), then every per-cache
     *  filter by cache id. Surfaces with zero bits are omitted. */
    static std::vector<FaultSurface> faultSurfaces(const MnmUnit &unit);

    /**
     * Flip bit @p bit of surface @p surface (indices per
     * faultSurfaces()). Deterministic and self-inverse: flipping the
     * same bit again restores the original state exactly.
     */
    static void flip(MnmUnit &unit, std::size_t surface,
                     std::uint64_t bit);

    /**
     * Flip one uniformly chosen bit across all of @p unit's surfaces
     * (weighted by surface size) and return what was flipped. The
     * sequence of targets is a pure function of the constructor seed.
     */
    FaultInjection injectRandom(MnmUnit &unit);

  private:
    /** Visit every injectable structure in the fixed surface order;
     *  defined in fault_inject.cc (the only translation unit that
     *  instantiates it). */
    template <typename Visit>
    static void visitSurfaces(MnmUnit &unit, Visit &&visit);

    Rng rng_;
};

} // namespace mnm

#endif // MNM_CORE_FAULT_INJECT_HH
