/**
 * @file
 * Named MNM configurations from the paper's evaluation (Figures 10-16,
 * Table 3), plus a by-name lookup used by the benches and examples.
 *
 * Labels follow the paper:
 *   RMNM_<blocks>_<assoc>        e.g. RMNM_512_2
 *   SMNM_<sumwidth>x<checkers>   e.g. SMNM_13x2
 *   TMNM_<bits>x<tables>         e.g. TMNM_12x3
 *   CMNM_<registers>_<bits>      e.g. CMNM_8_10
 *   HMNM1..HMNM4                 hybrid compositions (paper Table 3,
 *                                reconstructed -- DESIGN.md decision 6)
 *   Perfect                      the oracle bound
 */

#ifndef MNM_CORE_PRESETS_HH
#define MNM_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "core/mnm_unit.hh"

namespace mnm
{

/** An RMNM-only machine (paper Figure 10 series). */
MnmSpec makeRmnmSpec(std::uint32_t entries, std::uint32_t assoc);

/** One technique applied to every cache at level >= 2. */
MnmSpec makeUniformSpec(const FilterSpec &filter);

/** Hybrid configuration HMNM<n>, n in 1..4 (paper Table 3). */
MnmSpec makeHmnmSpec(int n);

/** The perfect (oracle) MNM. */
MnmSpec makePerfectSpec();

/**
 * Look up any paper configuration by its label (see file comment).
 * Fatal error on an unknown label.
 */
MnmSpec mnmSpecByName(const std::string &label);

/** All labels the benches sweep, grouped as in the paper's figures. */
const std::vector<std::string> &rmnmFigureConfigs();  //!< Figure 10
const std::vector<std::string> &smnmFigureConfigs();  //!< Figure 11
const std::vector<std::string> &tmnmFigureConfigs();  //!< Figure 12
const std::vector<std::string> &cmnmFigureConfigs();  //!< Figure 13
const std::vector<std::string> &hmnmFigureConfigs();  //!< Figure 14
/** Figure 15/16 technique set: TMNM_12x3, CMNM_8_10, HMNM2, HMNM4,
 *  Perfect. */
const std::vector<std::string> &headlineConfigs();

} // namespace mnm

#endif // MNM_CORE_PRESETS_HH
