/**
 * @file
 * Structure-of-arrays verdict program: the batched form of the MNM's
 * compiled verdict plan.
 *
 * The MnmUnit's per-access plan walk (core/mnm_unit.cc) chases a
 * FilterKernel pointer per filter and re-derives each filter's
 * geometry behind a method call. For batch processing that indirection
 * dominates, so at plan-compile time the unit lowers each access path
 * into a SoaProgram: a flat array of steps (one per level >= 2 cache on
 * the path) over a flat array of ops (one per filter), each op carrying
 * raw pointers to the filter's live counter/state tables plus every
 * constant the probe needs (shifts, masks, SMNM segment LUTs).
 *
 * The tables are BORROWED, never copied: an op's pointer aliases the
 * owning filter's storage, so filter updates and injected faults
 * (core/fault_inject.hh) are visible to the kernels by construction --
 * the coherence soa_state_test proves. The program only ever reads;
 * all mutation stays with the filter objects.
 *
 * soaCompute() evaluates the program for a span of addresses and
 * writes one raw candidate mask per address: bit c set means the plan
 * would verdict "definite miss" for cache id c BEFORE oracle guarding.
 * Guarding, statistics, and energy accounting happen at consumption
 * time in MnmUnit::finishBypass(), which keeps candidates pure data --
 * cacheable, recomputable, and identical across backends. Backends:
 * the scalar pass below, an 8-wide AVX2 pass (core/kernels_avx2.cc),
 * and a NEON pass (core/kernels_neon.cc); all bit-identical, selected
 * per MNM_SIMD (util/cpu.hh).
 */

#ifndef MNM_CORE_SOA_STATE_HH
#define MNM_CORE_SOA_STATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cmnm.hh"
#include "core/rmnm.hh"
#include "core/smnm.hh"
#include "core/tmnm.hh"
#include "core/verdict_plan.hh"
#include "util/cpu.hh"
#include "util/types.hh"

namespace mnm
{

class Cache;

/** One filter's probe, fully unpacked. Which fields are live depends
 *  on kind; the dead ones stay null/zero (the program is a few dozen
 *  entries at most, so the padding is irrelevant). */
struct SoaOp
{
    FilterKind kind = FilterKind::Smnm;

    /** SMNM: per-checker segment LUTs over the live state table. */
    const std::uint32_t *sm_state = nullptr;
    const Smnm::CheckerSegments *sm_segs = nullptr;
    std::uint32_t sm_values_per_checker = 0;
    std::uint32_t sm_replication = 0;

    /** TMNM: the live counter table and its geometry. */
    const std::uint8_t *tm_counters = nullptr;
    std::uint32_t tm_entries = 0;
    std::uint32_t tm_index_bits = 0;
    std::uint32_t tm_replication = 0;

    /** CMNM, Monotone policy: the live register file and counter
     *  table, plus the geometry, so the CAM walk runs inline per lane
     *  (data-dependent matching keeps it scalar even in the SIMD
     *  backends, but the call and the spec reloads are gone). */
    const Cmnm::VtagRegister *cm_regs = nullptr;
    const std::uint8_t *cm_counters = nullptr;
    std::uint32_t cm_num_regs = 0;
    std::uint32_t cm_index_bits = 0;

    /** CMNM, PaperReset policy (ablation, off the hot path): the
     *  bestMatch walk stays behind missHot. Null under Monotone. */
    const Cmnm *cmnm = nullptr;
};

/** One cache's slice of the program. */
struct SoaStep
{
    std::uint32_t cache_bit = 0; //!< 1u << cache id
    int rmnm_index = -1;
    unsigned block_bits = 0;
    /** Perfect mode: the oracle's contains() target. */
    const Cache *cache = nullptr;
    std::uint32_t op_first = 0;
    std::uint32_t op_count = 0;
};

/** A compiled access path (one per instruction/data plan). */
struct SoaProgram
{
    std::vector<SoaStep> steps;
    std::vector<SoaOp> ops;
    const Rmnm *rmnm = nullptr;
    bool perfect = false;
};

/** Evaluate one op for one block address (shared by every backend's
 *  scalar lanes). Reads only; bit-identical to the filter's missHot. */
inline bool
soaOpMiss(const SoaOp &op, BlockAddr block)
{
    switch (op.kind) {
      case FilterKind::Smnm:
        for (std::uint32_t c = 0; c < op.sm_replication; ++c) {
            const Smnm::CheckerSegments &cs = op.sm_segs[c];
            std::uint32_t sum = 0;
            for (unsigned s = 0; s < cs.count; ++s) {
                const Smnm::SumSegment &seg = cs.seg[s];
                sum += seg.lut[(block >> seg.shift) & seg.mask];
            }
            if (op.sm_state[static_cast<std::size_t>(c) *
                                op.sm_values_per_checker +
                            sum] == 0) {
                return true;
            }
        }
        return false;
      case FilterKind::Tmnm:
        for (std::uint32_t t = 0; t < op.tm_replication; ++t) {
            std::uint64_t idx = (block >> (6 * t)) &
                                lowMask(op.tm_index_bits);
            if (op.tm_counters[static_cast<std::size_t>(t) *
                                   op.tm_entries +
                               idx] == 0) {
                return true;
            }
        }
        return false;
      case FilterKind::Cmnm: {
        if (op.cmnm)
            return op.cmnm->missHot(block); // PaperReset ablation
        // Monotone walk, same order and arithmetic as Cmnm::missHot:
        // any matching register with a nonzero counter means "maybe".
        const std::uint64_t prefix = block >> op.cm_index_bits;
        const std::uint64_t low = block & lowMask(op.cm_index_bits);
        for (std::uint32_t i = 0; i < op.cm_num_regs; ++i) {
            const Cmnm::VtagRegister &reg = op.cm_regs[i];
            if (!reg.valid ||
                Cmnm::shiftRight(prefix, reg.widen) !=
                    Cmnm::shiftRight(reg.prefix, reg.widen)) {
                continue;
            }
            if (op.cm_counters[(static_cast<std::size_t>(i)
                                << op.cm_index_bits) |
                               low] != 0) {
                return false;
            }
        }
        return true;
      }
    }
    return false;
}

/**
 * Hint every table line the program will read for @p addr. The table
 * INDICES are pure functions of the address (state changes cell
 * values, never cell locations), so the hints can be issued any
 * distance ahead of the verdict -- epoch churn that forces a verdict
 * recompute still reads the same, now-resident lines. The dependent
 * loads here (segment LUTs, the register file) are small and stay
 * cache-hot; the big randomly-indexed state tables are only hinted.
 */
inline void
soaPrefetch(const SoaProgram &program, Addr addr)
{
    if (program.rmnm)
        program.rmnm->prefetch(addr);
    for (const SoaStep &step : program.steps) {
        const BlockAddr block = addr >> step.block_bits;
        const SoaOp *op = program.ops.data() + step.op_first;
        const SoaOp *end = op + step.op_count;
        for (; op != end; ++op) {
            switch (op->kind) {
              case FilterKind::Smnm:
                for (std::uint32_t c = 0; c < op->sm_replication; ++c) {
                    const Smnm::CheckerSegments &cs = op->sm_segs[c];
                    std::uint32_t sum = 0;
                    for (unsigned s = 0; s < cs.count; ++s) {
                        const Smnm::SumSegment &seg = cs.seg[s];
                        sum += seg.lut[(block >> seg.shift) & seg.mask];
                    }
                    __builtin_prefetch(
                        op->sm_state +
                        (static_cast<std::size_t>(c) *
                             op->sm_values_per_checker +
                         sum));
                }
                break;
              case FilterKind::Tmnm:
                for (std::uint32_t t = 0; t < op->tm_replication; ++t) {
                    std::uint64_t idx = (block >> (6 * t)) &
                                        lowMask(op->tm_index_bits);
                    __builtin_prefetch(
                        op->tm_counters +
                        (static_cast<std::size_t>(t) * op->tm_entries +
                         idx));
                }
                break;
              case FilterKind::Cmnm:
                for (std::uint32_t i = 0; i < op->cm_num_regs; ++i) {
                    const Cmnm::VtagRegister &reg = op->cm_regs[i];
                    if (!reg.valid ||
                        Cmnm::shiftRight(block >> op->cm_index_bits,
                                         reg.widen) !=
                            Cmnm::shiftRight(reg.prefix, reg.widen)) {
                        continue;
                    }
                    __builtin_prefetch(
                        op->cm_counters +
                        ((static_cast<std::size_t>(i)
                          << op->cm_index_bits) |
                         (block & lowMask(op->cm_index_bits))));
                }
                break;
            }
        }
    }
}

/** Scalar pass: candidates for @p n addresses into @p cand. */
void soaComputeScalar(const SoaProgram &program, const Addr *addrs,
                      std::uint32_t *cand, std::size_t n);

#if defined(__x86_64__) || defined(_M_X64)
/** 8-wide AVX2 pass (core/kernels_avx2.cc). Call only when
 *  cpuHasAvx2(); falls back to the scalar pass per chunk whenever an
 *  address exceeds the 32-bit lane width. */
void soaComputeAvx2(const SoaProgram &program, const Addr *addrs,
                    std::uint32_t *cand, std::size_t n);
#endif

#if defined(__aarch64__)
/** 4-lane NEON pass (core/kernels_neon.cc). */
void soaComputeNeon(const SoaProgram &program, const Addr *addrs,
                    std::uint32_t *cand, std::size_t n);
#endif

/** Dispatch on the backend (Off callers never reach the program). */
inline void
soaCompute(const SoaProgram &program, const Addr *addrs,
           std::uint32_t *cand, std::size_t n, SimdBackend backend)
{
    // The perfect oracle probes cache tag arrays, not SoA tables;
    // every backend serves it with the scalar pass.
    if (program.perfect) {
        soaComputeScalar(program, addrs, cand, n);
        return;
    }
    switch (backend) {
#if defined(__x86_64__) || defined(_M_X64)
      case SimdBackend::Avx2:
        soaComputeAvx2(program, addrs, cand, n);
        return;
#endif
#if defined(__aarch64__)
      case SimdBackend::Neon:
        soaComputeNeon(program, addrs, cand, n);
        return;
#endif
      default:
        soaComputeScalar(program, addrs, cand, n);
        return;
    }
}

} // namespace mnm

#endif // MNM_CORE_SOA_STATE_HH
