/**
 * @file
 * AVX2 backend of the SoA verdict kernels (core/soa_state.hh).
 *
 * Eight addresses per pass. The paper models a 32-bit address space,
 * so the lanes run 32-bit arithmetic and dword gathers; any chunk
 * carrying a wider address (nothing in-tree generates one) falls back
 * to the scalar pass, keeping the wide case correct without widening
 * every gather. Data-dependent probes -- the CMNM register CAM and the
 * RMNM set search -- stay scalar per lane; the wins here are the SMNM
 * segment-LUT gathers, the TMNM counter gathers, and the lane-wise
 * verdict merge.
 *
 * This translation unit is compiled with -mavx2 (see core/CMakeLists)
 * and must only be ENTERED when cpuHasAvx2() -- soaCompute() and the
 * MNM_SIMD knob enforce that; nothing here re-checks.
 */

#include "core/soa_state.hh"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "cache/cache.hh"

namespace mnm
{

namespace
{

/** Every lane's comparison mask is all-ones? */
inline bool
allLanesSet(__m256i v)
{
    return _mm256_movemask_epi8(v) == -1;
}

/** Lane-wise logical right shift by a runtime count; counts >= 32
 *  yield zero, matching a 64-bit shift of a value below 2^32. */
inline __m256i
srlVar(__m256i v, unsigned count)
{
    return _mm256_srl_epi32(v,
                            _mm_cvtsi32_si128(static_cast<int>(count)));
}

/** Per-lane scalar evaluation for the probes that do not vectorize
 *  (CMNM's CAM walk, TMNM tables too small for dword gathers). Lanes
 *  already decided skip the walk but still produce a zero lane. */
inline __m256i
opMissPerLane(const SoaOp &op, __m256i block_v, __m256i miss_v)
{
    alignas(32) std::uint32_t blocks[8];
    alignas(32) std::uint32_t decided[8];
    alignas(32) std::uint32_t out[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(blocks), block_v);
    _mm256_store_si256(reinterpret_cast<__m256i *>(decided), miss_v);
    for (unsigned l = 0; l < 8; ++l) {
        out[l] = !decided[l] && soaOpMiss(op, blocks[l]) ? ~0u : 0u;
    }
    return _mm256_load_si256(reinterpret_cast<const __m256i *>(out));
}

} // anonymous namespace

void
soaComputeAvx2(const SoaProgram &program, const Addr *addrs,
               std::uint32_t *cand, std::size_t n)
{
    const SoaStep *steps = program.steps.data();
    const std::size_t num_steps = program.steps.size();
    const SoaOp *ops = program.ops.data();
    const Rmnm *rmnm = program.rmnm;
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi32(1);

    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t wide = 0;
        for (unsigned l = 0; l < 8; ++l)
            wide |= addrs[i + l] >> 32;
        if (wide != 0) {
            soaComputeScalar(program, addrs + i, cand + i, 8);
            continue;
        }

        alignas(32) std::uint32_t a32[8];
        alignas(32) std::uint32_t rb[8] = {};
        for (unsigned l = 0; l < 8; ++l)
            a32[l] = static_cast<std::uint32_t>(addrs[i + l]);
        if (rmnm) {
            for (unsigned l = 0; l < 8 && i + 8 + l < n; ++l)
                rmnm->prefetch(addrs[i + 8 + l]);
            for (unsigned l = 0; l < 8; ++l)
                rb[l] = rmnm->missBits(addrs[i + l]);
        }
        const __m256i addr_v =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(a32));
        const __m256i rb_v =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(rb));

        __m256i mask_v = zero;
        for (std::size_t s = 0; s < num_steps; ++s) {
            const SoaStep &step = steps[s];
            const __m256i block_v = srlVar(addr_v, step.block_bits);
            __m256i miss;
            if (step.rmnm_index >= 0) {
                __m256i bit = _mm256_and_si256(
                    srlVar(rb_v,
                           static_cast<unsigned>(step.rmnm_index)),
                    one);
                miss = _mm256_cmpeq_epi32(bit, one);
            } else {
                miss = zero;
            }
            const SoaOp *op = ops + step.op_first;
            const SoaOp *end = op + step.op_count;
            for (; op != end && !allLanesSet(miss); ++op) {
                __m256i op_miss = zero;
                switch (op->kind) {
                  case FilterKind::Smnm: {
                    const int *state =
                        reinterpret_cast<const int *>(op->sm_state);
                    for (std::uint32_t c = 0; c < op->sm_replication;
                         ++c) {
                        const Smnm::CheckerSegments &cs = op->sm_segs[c];
                        __m256i sum = zero;
                        for (unsigned g = 0; g < cs.count; ++g) {
                            const Smnm::SumSegment &seg = cs.seg[g];
                            __m256i idx = _mm256_and_si256(
                                srlVar(block_v, seg.shift),
                                _mm256_set1_epi32(
                                    static_cast<int>(seg.mask)));
                            sum = _mm256_add_epi32(
                                sum,
                                _mm256_i32gather_epi32(
                                    reinterpret_cast<const int *>(
                                        seg.lut),
                                    idx, 4));
                        }
                        __m256i cell = _mm256_add_epi32(
                            sum,
                            _mm256_set1_epi32(static_cast<int>(
                                c * op->sm_values_per_checker)));
                        __m256i st =
                            _mm256_i32gather_epi32(state, cell, 4);
                        op_miss = _mm256_or_si256(
                            op_miss, _mm256_cmpeq_epi32(st, zero));
                    }
                    break;
                  }
                  case FilterKind::Tmnm: {
                    if ((op->tm_entries & 3u) != 0) {
                        // A sub-dword table cannot be gathered without
                        // overreading its tail; take the scalar lanes.
                        op_miss = opMissPerLane(*op, block_v, miss);
                        break;
                    }
                    // The counters are bytes; gather the dword holding
                    // each one (offset rounded down to 4, always in
                    // bounds for a 4-multiple table) and shift the
                    // addressed byte into place.
                    const int *base =
                        reinterpret_cast<const int *>(op->tm_counters);
                    for (std::uint32_t t = 0; t < op->tm_replication;
                         ++t) {
                        __m256i idx = _mm256_and_si256(
                            srlVar(block_v, 6 * t),
                            _mm256_set1_epi32(static_cast<int>(
                                lowMask(op->tm_index_bits))));
                        __m256i cell = _mm256_add_epi32(
                            idx, _mm256_set1_epi32(static_cast<int>(
                                     t * op->tm_entries)));
                        __m256i g = _mm256_i32gather_epi32(
                            base,
                            _mm256_and_si256(cell,
                                             _mm256_set1_epi32(~3)),
                            1);
                        __m256i sh = _mm256_slli_epi32(
                            _mm256_and_si256(cell,
                                             _mm256_set1_epi32(3)),
                            3);
                        __m256i byte = _mm256_and_si256(
                            _mm256_srlv_epi32(g, sh),
                            _mm256_set1_epi32(0xFF));
                        op_miss = _mm256_or_si256(
                            op_miss, _mm256_cmpeq_epi32(byte, zero));
                    }
                    break;
                  }
                  case FilterKind::Cmnm:
                    op_miss = opMissPerLane(*op, block_v, miss);
                    break;
                }
                miss = _mm256_or_si256(miss, op_miss);
            }
            mask_v = _mm256_or_si256(
                mask_v,
                _mm256_and_si256(
                    miss, _mm256_set1_epi32(
                              static_cast<int>(step.cache_bit))));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(cand + i),
                            mask_v);
    }
    if (i < n)
        soaComputeScalar(program, addrs + i, cand + i, n - i);
}

} // namespace mnm

#endif // __x86_64__
