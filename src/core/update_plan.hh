/**
 * @file
 * The devirtualized update-side mirror of the verdict plan
 * (core/verdict_plan.hh).
 *
 * The hierarchy batches its fill/eviction reports into a per-access
 * event ring (cache/hierarchy.hh) and delivers them through one
 * onEventBatch() call. MnmUnit drains that ring through an array of
 * per-cache UpdateSteps compiled at construction: each step carries the
 * cache's contiguous FilterKernel slice plus the RMNM routing constants,
 * so applying an event is a switch-dispatched loop over non-virtual
 * *Hot methods -- no per-event virtual calls, no per_cache_ re-lookup,
 * no hierarchy deref to recover the byte address.
 *
 * The kernels write the live filter tables in place; the SoA verdict
 * programs borrow those same tables (core/soa_state.hh), so every
 * mutation the drain applies is visible to the next verdict batch by
 * construction. The virtual CacheEventListener path over the same
 * filter objects survives as the equivalence reference
 * (MNM_REFERENCE_FEED=1), which kernel_equivalence_test holds to
 * bit-identical results.
 */

#ifndef MNM_CORE_UPDATE_PLAN_HH
#define MNM_CORE_UPDATE_PLAN_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "core/verdict_plan.hh"
#include "util/types.hh"

namespace mnm
{

/** One cache's compiled update routing: everything the event-ring
 *  drain needs to apply a placement/replacement to that cache's
 *  filters, resolved once at plan-compile time. Indexed by CacheId. */
struct UpdateStep
{
    /** The cache's slice of the flat kernel array. */
    const FilterKernel *kernels = nullptr;
    std::uint32_t kernel_count = 0;
    /** Hot accounting sink (PerCache::update_events). */
    std::uint64_t *update_events = nullptr;
    /** Index into the RMNM bit vector; -1 if untracked (L1). */
    int rmnm_index = -1;
    /** Recovers the byte address: block << block_bits. */
    unsigned block_bits = 0;
};

/** Apply one event's filter updates through the kernel slice and count
 *  it. RMNM routing and energy bursts stay with the caller (they need
 *  MnmUnit state). */
inline void
updateStepApply(const UpdateStep &st, CacheEventKind kind,
                BlockAddr block)
{
    const FilterKernel *k = st.kernels;
    const FilterKernel *end = k + st.kernel_count;
    if (kind == CacheEventKind::Placement) {
        for (; k != end; ++k)
            kernelOnPlacement(*k, block);
    } else {
        for (; k != end; ++k)
            kernelOnReplacement(*k, block);
    }
    ++*st.update_events;
}

} // namespace mnm

#endif // MNM_CORE_UPDATE_PLAN_HH
