#include "core/rmnm.hh"

#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Rmnm::Rmnm(const RmnmSpec &spec, std::uint32_t num_tracked,
           unsigned granule_bits)
    : spec_(spec), num_tracked_(num_tracked), granule_bits_(granule_bits)
{
    if (num_tracked_ == 0 || num_tracked_ > 32)
        fatal("RMNM tracks %u caches; supported range is [1,32]",
              num_tracked_);
    if (spec_.entries == 0 || spec_.associativity == 0)
        fatal("RMNM with zero entries or associativity");
    if (spec_.entries % spec_.associativity != 0)
        fatal("RMNM entries %u not divisible by associativity %u",
              spec_.entries, spec_.associativity);
    num_ways_ = spec_.associativity;
    num_sets_ = spec_.entries / spec_.associativity;
    if (!isPowerOf2(num_sets_))
        fatal("RMNM set count %u not a power of two", num_sets_);
    set_bits_ = floorLog2(num_sets_);
    entries_.resize(spec_.entries);
}

void
Rmnm::reset()
{
    for (auto &entry : entries_)
        entry = Entry();
    in_use_ = 0;
    tick_ = 0;
}

std::string
Rmnm::name() const
{
    std::ostringstream out;
    out << "RMNM_" << spec_.entries << "_" << spec_.associativity;
    return out.str();
}

std::uint64_t
Rmnm::storageBits() const
{
    // Tag (~26 bits at L2-block granularity for 32-bit addresses) plus
    // the per-cache miss bits and a valid bit per entry.
    return static_cast<std::uint64_t>(spec_.entries) *
           (26 + num_tracked_ + 1);
}

PowerDelay
Rmnm::power(const SramModel &sram) const
{
    CacheGeometry geom;
    // Model as a tiny cache: payload is the miss-bit vector (rounded to
    // a byte), probed like a tag+data array.
    geom.capacity_bytes = std::uint64_t{spec_.entries} *
                          roundUp(num_tracked_, 8) / 8;
    geom.block_bytes = static_cast<std::uint32_t>(
        roundUp(num_tracked_, 8) / 8);
    geom.associativity = spec_.associativity;
    geom.tag_bits = 26;
    return sram.cache(geom);
}

} // namespace mnm
