#include "core/rmnm.hh"

#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Rmnm::Rmnm(const RmnmSpec &spec, std::uint32_t num_tracked,
           unsigned granule_bits)
    : spec_(spec), num_tracked_(num_tracked), granule_bits_(granule_bits)
{
    if (num_tracked_ == 0 || num_tracked_ > 32)
        fatal("RMNM tracks %u caches; supported range is [1,32]",
              num_tracked_);
    if (spec_.entries == 0 || spec_.associativity == 0)
        fatal("RMNM with zero entries or associativity");
    if (spec_.entries % spec_.associativity != 0)
        fatal("RMNM entries %u not divisible by associativity %u",
              spec_.entries, spec_.associativity);
    num_ways_ = spec_.associativity;
    num_sets_ = spec_.entries / spec_.associativity;
    if (!isPowerOf2(num_sets_))
        fatal("RMNM set count %u not a power of two", num_sets_);
    set_bits_ = floorLog2(num_sets_);
    entries_.resize(spec_.entries);
}

std::uint64_t
Rmnm::spanOf(unsigned block_bits) const
{
    MNM_ASSERT(block_bits >= granule_bits_,
               "tracked cache block smaller than the RMNM granule");
    return std::uint64_t{1} << (block_bits - granule_bits_);
}

void
Rmnm::onPlacement(std::uint32_t tracked, Addr addr, unsigned block_bits)
{
    std::uint64_t first = granuleOf(addr) & ~(spanOf(block_bits) - 1);
    for (std::uint64_t g = first; g < first + spanOf(block_bits); ++g) {
        Entry *entry = find(g);
        if (!entry)
            continue;
        entry->miss_bits &= ~(1u << tracked);
        if (entry->miss_bits == 0) {
            // An all-clear entry carries no information; free the slot.
            entry->stamp = 0;
            --in_use_;
        }
    }
}

void
Rmnm::onReplacement(std::uint32_t tracked, Addr addr, unsigned block_bits)
{
    std::uint64_t first = granuleOf(addr) & ~(spanOf(block_bits) - 1);
    for (std::uint64_t g = first; g < first + spanOf(block_bits); ++g) {
        if (Entry *entry = find(g)) {
            entry->miss_bits |= 1u << tracked;
            entry->stamp = ++tick_;
            continue;
        }
        // Allocate: invalid way first, else LRU victim (losing whatever
        // miss information the victim held -- safe, just less coverage).
        // A tag that does not fit the 32-bit field could alias another
        // granule and emit an unsound verdict; no workload's address
        // space comes near 2^(32 + set + granule bits), so fail loudly
        // rather than widen the entry.
        MNM_ASSERT(tagOf(g) <= 0xffffffffull,
                   "RMNM granule tag exceeds 32 bits");
        std::uint32_t set = setOf(g);
        Entry *base =
            &entries_[static_cast<std::size_t>(set) * num_ways_];
        Entry *slot = nullptr;
        for (std::uint32_t w = 0; w < num_ways_; ++w) {
            if (base[w].stamp == 0) {
                slot = &base[w];
                ++in_use_;
                break;
            }
        }
        if (!slot) {
            slot = base;
            for (std::uint32_t w = 1; w < num_ways_; ++w) {
                if (base[w].stamp < slot->stamp)
                    slot = &base[w];
            }
        }
        slot->tag = static_cast<std::uint32_t>(tagOf(g));
        slot->miss_bits = 1u << tracked;
        slot->stamp = ++tick_;
    }
}

void
Rmnm::reset()
{
    for (auto &entry : entries_)
        entry = Entry();
    in_use_ = 0;
    tick_ = 0;
}

std::string
Rmnm::name() const
{
    std::ostringstream out;
    out << "RMNM_" << spec_.entries << "_" << spec_.associativity;
    return out.str();
}

std::uint64_t
Rmnm::storageBits() const
{
    // Tag (~26 bits at L2-block granularity for 32-bit addresses) plus
    // the per-cache miss bits and a valid bit per entry.
    return static_cast<std::uint64_t>(spec_.entries) *
           (26 + num_tracked_ + 1);
}

PowerDelay
Rmnm::power(const SramModel &sram) const
{
    CacheGeometry geom;
    // Model as a tiny cache: payload is the miss-bit vector (rounded to
    // a byte), probed like a tag+data array.
    geom.capacity_bytes = std::uint64_t{spec_.entries} *
                          roundUp(num_tracked_, 8) / 8;
    geom.block_bytes = static_cast<std::uint32_t>(
        roundUp(num_tracked_, 8) / 8);
    geom.associativity = spec_.associativity;
    geom.tag_bits = 26;
    return sram.cache(geom);
}

} // namespace mnm
