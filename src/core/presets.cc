#include "core/presets.hh"

#include <cstdio>

#include "core/cmnm.hh"
#include "core/smnm.hh"
#include "core/tmnm.hh"
#include "util/logging.hh"

namespace mnm
{

std::unique_ptr<MissFilter>
makeFilter(const FilterSpec &spec)
{
    return std::visit(
        [](const auto &s) -> std::unique_ptr<MissFilter> {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, SmnmSpec>)
                return std::make_unique<Smnm>(s);
            else if constexpr (std::is_same_v<T, TmnmSpec>)
                return std::make_unique<Tmnm>(s);
            else
                return std::make_unique<Cmnm>(s);
        },
        spec);
}

std::string
filterSpecName(const FilterSpec &spec)
{
    return makeFilter(spec)->name();
}

MnmSpec
makeRmnmSpec(std::uint32_t entries, std::uint32_t assoc)
{
    MnmSpec spec;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "RMNM_%u_%u", entries, assoc);
    spec.name = buf;
    spec.rmnm = RmnmSpec{entries, assoc};
    return spec;
}

MnmSpec
makeUniformSpec(const FilterSpec &filter)
{
    MnmSpec spec;
    spec.name = filterSpecName(filter);
    spec.level_filters.push_back(LevelFilters{2, 99, {filter}});
    return spec;
}

MnmSpec
makeHmnmSpec(int n)
{
    if (n < 1 || n > 4)
        fatal("HMNM%d does not exist; the paper defines HMNM1..HMNM4", n);

    // Paper Table 3 (reconstructed; DESIGN.md decision 6). Each hybrid
    // pairs an SMNM+TMNM on levels 2-3 with a CMNM+TMNM on levels 4-5,
    // plus a shared RMNM whose size grows with the configuration.
    struct HmnmRecipe
    {
        RmnmSpec rmnm;
        SmnmSpec smnm_lo;
        TmnmSpec tmnm_lo;
        CmnmSpec cmnm_hi;
        TmnmSpec tmnm_hi;
    };
    static const HmnmRecipe recipes[4] = {
        // HMNM1
        {{128, 1}, {10, 2}, {10, 1}, {2, 9}, {10, 1}},
        // HMNM2
        {{512, 2}, {13, 2}, {10, 1}, {4, 10}, {11, 2}},
        // HMNM3
        {{2048, 4}, {15, 2}, {10, 1}, {8, 10}, {10, 3}},
        // HMNM4
        {{4096, 8}, {20, 3}, {10, 3}, {8, 12}, {12, 3}},
    };
    const HmnmRecipe &r = recipes[n - 1];

    MnmSpec spec;
    spec.name = "HMNM" + std::to_string(n);
    spec.rmnm = r.rmnm;
    spec.level_filters.push_back(
        LevelFilters{2, 3, {FilterSpec{r.smnm_lo}, FilterSpec{r.tmnm_lo}}});
    spec.level_filters.push_back(
        LevelFilters{4, 99, {FilterSpec{r.cmnm_hi}, FilterSpec{r.tmnm_hi}}});
    return spec;
}

MnmSpec
makePerfectSpec()
{
    MnmSpec spec;
    spec.name = "Perfect";
    spec.perfect = true;
    return spec;
}

MnmSpec
mnmSpecByName(const std::string &label)
{
    unsigned a = 0;
    unsigned b = 0;
    if (label == "Perfect")
        return makePerfectSpec();
    if (std::sscanf(label.c_str(), "HMNM%u", &a) == 1)
        return makeHmnmSpec(static_cast<int>(a));
    if (std::sscanf(label.c_str(), "RMNM_%u_%u", &a, &b) == 2)
        return makeRmnmSpec(a, b);
    if (std::sscanf(label.c_str(), "SMNM_%ux%u", &a, &b) == 2)
        return makeUniformSpec(SmnmSpec{a, b, SmnmUpdateMode::Counting});
    if (std::sscanf(label.c_str(), "TMNM_%ux%u", &a, &b) == 2)
        return makeUniformSpec(TmnmSpec{a, b, 3});
    if (std::sscanf(label.c_str(), "CMNM_%u_%u", &a, &b) == 2) {
        return makeUniformSpec(
            CmnmSpec{a, b, 3, CmnmMaskPolicy::Monotone});
    }
    fatal("unknown MNM configuration '%s'", label.c_str());
}

const std::vector<std::string> &
rmnmFigureConfigs()
{
    static const std::vector<std::string> configs = {
        "RMNM_128_1", "RMNM_512_2", "RMNM_2048_4", "RMNM_4096_8"};
    return configs;
}

const std::vector<std::string> &
smnmFigureConfigs()
{
    static const std::vector<std::string> configs = {
        "SMNM_10x2", "SMNM_13x2", "SMNM_15x2", "SMNM_20x3"};
    return configs;
}

const std::vector<std::string> &
tmnmFigureConfigs()
{
    static const std::vector<std::string> configs = {
        "TMNM_10x1", "TMNM_11x2", "TMNM_10x3", "TMNM_12x3"};
    return configs;
}

const std::vector<std::string> &
cmnmFigureConfigs()
{
    static const std::vector<std::string> configs = {
        "CMNM_2_9", "CMNM_4_10", "CMNM_8_10", "CMNM_8_12"};
    return configs;
}

const std::vector<std::string> &
hmnmFigureConfigs()
{
    static const std::vector<std::string> configs = {"HMNM1", "HMNM2",
                                                     "HMNM3", "HMNM4"};
    return configs;
}

const std::vector<std::string> &
headlineConfigs()
{
    static const std::vector<std::string> configs = {
        "TMNM_12x3", "CMNM_8_10", "HMNM2", "HMNM4", "Perfect"};
    return configs;
}

} // namespace mnm
