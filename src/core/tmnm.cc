#include "core/tmnm.hh"

#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Tmnm::Tmnm(const TmnmSpec &spec) : spec_(spec)
{
    if (spec_.index_bits < 1 || spec_.index_bits > 24)
        fatal("TMNM index_bits %u out of range [1,24]", spec_.index_bits);
    if (spec_.replication < 1 || spec_.replication > 8)
        fatal("TMNM replication %u out of range [1,8]", spec_.replication);
    if (spec_.counter_bits < 1 || spec_.counter_bits > 8)
        fatal("TMNM counter_bits %u out of range [1,8]",
              spec_.counter_bits);
    table_entries_ = 1u << spec_.index_bits;
    saturation_ =
        static_cast<std::uint8_t>((1u << spec_.counter_bits) - 1);
    counters_.assign(static_cast<std::size_t>(table_entries_) *
                         spec_.replication,
                     0);
}

void
Tmnm::onFlush()
{
    counters_.assign(counters_.size(), 0);
}

std::string
Tmnm::name() const
{
    std::ostringstream out;
    out << "TMNM_" << spec_.index_bits << "x" << spec_.replication;
    return out.str();
}

std::uint64_t
Tmnm::storageBits() const
{
    return static_cast<std::uint64_t>(table_entries_) * spec_.replication *
           spec_.counter_bits;
}

PowerDelay
Tmnm::power(const SramModel &sram, const CheckerModel &checker) const
{
    (void)checker;
    PowerDelay total;
    PowerDelay one = sram.table(table_entries_, spec_.counter_bits);
    total.read_energy_pj = one.read_energy_pj * spec_.replication;
    total.write_energy_pj = one.write_energy_pj * spec_.replication;
    total.access_ns = one.access_ns; // tables probed in parallel
    total.bits = one.bits * spec_.replication;
    total.leakage_mw = one.leakage_mw * spec_.replication;
    return total;
}

std::uint64_t
Tmnm::saturatedCounters() const
{
    std::uint64_t n = 0;
    for (std::uint8_t c : counters_) {
        if (c == saturation_)
            ++n;
    }
    return n;
}

} // namespace mnm
