/**
 * @file
 * The devirtualized filter kernel used by the MnmUnit's verdict plan.
 *
 * At construction the MnmUnit flattens every cache's
 * std::vector<std::unique_ptr<MissFilter>> fan-out into one contiguous
 * array of FilterKernel records: a type tag plus a pointer to the
 * concrete filter object. The hot paths (computeBypass and the
 * placement/replacement event feed) dispatch through a switch on the
 * tag and call the filters' non-virtual *Hot methods, which inline into
 * the simulators' inner loops; the virtual MissFilter interface on the
 * very same objects remains the cold-path surface (naming, power,
 * storage bits, anomaly counts, fault injection, tests).
 *
 * Both dispatch styles run the same member-function bodies, so the
 * plan is behaviourally identical to the virtual walk -- a property
 * kernel_equivalence_test checks rather than assumes.
 */

#ifndef MNM_CORE_VERDICT_PLAN_HH
#define MNM_CORE_VERDICT_PLAN_HH

#include <cstdint>
#include <variant>

#include "core/cmnm.hh"
#include "core/miss_filter.hh"
#include "core/smnm.hh"
#include "core/tmnm.hh"
#include "util/logging.hh"

namespace mnm
{

/** Concrete technique behind a MissFilter pointer. */
enum class FilterKind : std::uint8_t
{
    Smnm,
    Tmnm,
    Cmnm,
};

/** Kind the spec will instantiate; mirrors makeFilter's mapping. */
inline FilterKind
filterKindOf(const FilterSpec &spec)
{
    if (std::holds_alternative<SmnmSpec>(spec))
        return FilterKind::Smnm;
    if (std::holds_alternative<TmnmSpec>(spec))
        return FilterKind::Tmnm;
    return FilterKind::Cmnm;
}

/** One entry of the flat verdict plan: a type-tagged, non-owning view
 *  of a filter whose concrete type was pinned at plan-compile time. */
struct FilterKernel
{
    FilterKind kind;
    MissFilter *filter;
};

/** Hot-path lookup: is @p block definitely absent per this filter? */
inline bool
kernelDefinitelyMiss(const FilterKernel &k, BlockAddr block)
{
    switch (k.kind) {
      case FilterKind::Smnm:
        return static_cast<const Smnm *>(k.filter)->missHot(block);
      case FilterKind::Tmnm:
        return static_cast<const Tmnm *>(k.filter)->missHot(block);
      case FilterKind::Cmnm:
        return static_cast<const Cmnm *>(k.filter)->missHot(block);
    }
    panic("unreachable filter kind");
}

/** Hot-path event feed: @p block was placed into the attached cache. */
inline void
kernelOnPlacement(const FilterKernel &k, BlockAddr block)
{
    switch (k.kind) {
      case FilterKind::Smnm:
        static_cast<Smnm *>(k.filter)->placeHot(block);
        return;
      case FilterKind::Tmnm:
        static_cast<Tmnm *>(k.filter)->placeHot(block);
        return;
      case FilterKind::Cmnm:
        static_cast<Cmnm *>(k.filter)->placeHot(block);
        return;
    }
    panic("unreachable filter kind");
}

/** Hot-path event feed: @p block was replaced (evicted). */
inline void
kernelOnReplacement(const FilterKernel &k, BlockAddr block)
{
    switch (k.kind) {
      case FilterKind::Smnm:
        static_cast<Smnm *>(k.filter)->replaceHot(block);
        return;
      case FilterKind::Tmnm:
        static_cast<Tmnm *>(k.filter)->replaceHot(block);
        return;
      case FilterKind::Cmnm:
        static_cast<Cmnm *>(k.filter)->replaceHot(block);
        return;
    }
    panic("unreachable filter kind");
}

} // namespace mnm

#endif // MNM_CORE_VERDICT_PLAN_HH
