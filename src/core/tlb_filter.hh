/**
 * @file
 * MNM-style filtering for TLBs (the paper's Section 4.5 extension).
 *
 * Exactly the cache story transplanted to page granularity: a small
 * sound filter observes TLB installs/evictions and, on a lookup, either
 * says "the page is definitely not in the TLB" (skip the CAM probe,
 * start the page walk immediately -- saving the probe energy AND the
 * probe latency on the miss path) or "maybe" (probe normally).
 */

#ifndef MNM_CORE_TLB_FILTER_HH
#define MNM_CORE_TLB_FILTER_HH

#include <memory>

#include "cache/tlb.hh"
#include "core/miss_filter.hh"

namespace mnm
{

/** One filter shielding one TLB. */
class TlbFilterUnit : public Tlb::Listener
{
  public:
    /**
     * Attach to @p tlb (must be cold and outlive the unit). The filter
     * spec works at page granularity; TMNM with ~entries-sized tables
     * is the natural choice.
     */
    TlbFilterUnit(const FilterSpec &spec, Tlb &tlb);
    ~TlbFilterUnit() override;

    TlbFilterUnit(const TlbFilterUnit &) = delete;
    TlbFilterUnit &operator=(const TlbFilterUnit &) = delete;

    /**
     * Translate through filter + TLB with full accounting.
     * @return translation latency.
     */
    Cycles translate(Addr addr);

    /** Tlb::Listener (the bookkeeping feed). */
    void onTlbPlacement(std::uint64_t page) override;
    void onTlbReplacement(std::uint64_t page) override;

    /** Probes skipped / total misses seen (the coverage metric). */
    double coverage() const;

    std::uint64_t identified() const { return identified_; }
    std::uint64_t unidentified() const { return unidentified_; }

    /** Oracle-checked unsound verdicts (always 0 for sound filters). */
    std::uint64_t soundnessViolations() const { return violations_; }

    /** Per-probe filter energy under the analytical model, pJ. */
    PicoJoules filterProbePj() const { return filter_probe_pj_; }

    /** Total filter energy consumed, pJ. */
    PicoJoules consumedEnergyPj() const { return energy_pj_; }

    const MissFilter &filter() const { return *filter_; }

  private:
    std::unique_ptr<MissFilter> filter_;
    Tlb &tlb_;
    std::uint64_t identified_ = 0;
    std::uint64_t unidentified_ = 0;
    std::uint64_t violations_ = 0;
    PicoJoules filter_probe_pj_ = 0.0;
    PicoJoules filter_update_pj_ = 0.0;
    PicoJoules energy_pj_ = 0.0;
};

} // namespace mnm

#endif // MNM_CORE_TLB_FILTER_HH
