#include "core/smnm.hh"

#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Smnm::Smnm(const SmnmSpec &spec) : spec_(spec)
{
    if (spec_.sum_width < 2 || spec_.sum_width > 32)
        fatal("SMNM sum_width %u out of range [2,32]", spec_.sum_width);
    if (spec_.replication < 1 || spec_.replication > 8)
        fatal("SMNM replication %u out of range [1,8]", spec_.replication);
    values_per_checker_ = sumValues(spec_.sum_width);
    state_.assign(static_cast<std::size_t>(values_per_checker_) *
                      spec_.replication,
                  0);
}

std::uint32_t
Smnm::sumValues(std::uint32_t sum_width)
{
    // Max sum = 1^2 + 2^2 + ... + w^2 = w(w+1)(2w+1)/6 (paper Eq. 3);
    // values range over [0, max], hence +1.
    return sum_width * (sum_width + 1) * (2 * sum_width + 1) / 6 + 1;
}

void
Smnm::onFlush()
{
    state_.assign(state_.size(), 0);
}

std::string
Smnm::name() const
{
    std::ostringstream out;
    out << "SMNM_" << spec_.sum_width << "x" << spec_.replication;
    if (spec_.mode == SmnmUpdateMode::SetOnly)
        out << "(set-only)";
    return out.str();
}

std::uint64_t
Smnm::storageBits() const
{
    // One presence flop per sum value per checker (paper Eq. 3); the
    // counting mode's counters are simulator bookkeeping for what
    // hardware maintains with an up/down counter per flop -- we report
    // the paper's flop count.
    return static_cast<std::uint64_t>(values_per_checker_) *
           spec_.replication;
}

PowerDelay
Smnm::power(const SramModel &sram, const CheckerModel &checker) const
{
    (void)sram;
    return checker.evaluate(spec_.sum_width, spec_.replication);
}

} // namespace mnm
