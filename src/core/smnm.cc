#include "core/smnm.hh"

#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

/**
 * Shared, immortal segment LUTs keyed by (window base, width). The
 * entry for value v is the exact partial hash: the sum of
 * (base + q + 1)^2 over every set bit q of v. Only a handful of
 * distinct (base, width) pairs exist across all SMNM configurations,
 * so the store stays tiny.
 */
const std::uint32_t *
segmentLut(unsigned base, unsigned width)
{
    static std::mutex mu;
    static std::map<std::uint64_t,
                    std::unique_ptr<std::vector<std::uint32_t>>>
        store;
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t key = (static_cast<std::uint64_t>(base) << 8) | width;
    auto it = store.find(key);
    if (it == store.end()) {
        auto lut = std::make_unique<std::vector<std::uint32_t>>(
            std::size_t{1} << width, 0u);
        for (std::size_t v = 0; v < lut->size(); ++v) {
            std::uint32_t sum = 0;
            for (unsigned q = 0; q < width; ++q) {
                if ((v >> q) & 1u)
                    sum += (base + q + 1) * (base + q + 1);
            }
            (*lut)[v] = sum;
        }
        it = store.emplace(key, std::move(lut)).first;
    }
    return it->second->data();
}

} // anonymous namespace

Smnm::Smnm(const SmnmSpec &spec) : spec_(spec)
{
    if (spec_.sum_width < 2 || spec_.sum_width > 32)
        fatal("SMNM sum_width %u out of range [2,32]", spec_.sum_width);
    if (spec_.replication < 1 || spec_.replication > 8)
        fatal("SMNM replication %u out of range [1,8]", spec_.replication);
    values_per_checker_ = sumValues(spec_.sum_width);
    state_.assign(static_cast<std::size_t>(values_per_checker_) *
                      spec_.replication,
                  0);

    // Compile each checker's window into LUT segments. A segment whose
    // shift would reach bit 64 covers only bits the original window
    // zero-extends over, so it is dropped rather than shifted (a >> 64
    // would be undefined).
    checker_segs_.resize(spec_.replication);
    for (std::uint32_t c = 0; c < spec_.replication; ++c) {
        CheckerSegments &cs = checker_segs_[c];
        for (unsigned base = 0; base < spec_.sum_width;
             base += seg_bits) {
            unsigned width = std::min(seg_bits, spec_.sum_width - base);
            unsigned shift = checkerOffset(c) + base;
            if (shift >= 64)
                continue;
            SumSegment &seg = cs.seg[cs.count++];
            seg.shift = shift;
            seg.mask = static_cast<std::uint32_t>(lowMask(width));
            seg.lut = segmentLut(base, width);
        }
    }
    for (std::uint32_t c = 0; c < spec_.replication; ++c) {
        // Construction-time self-check: the decomposition must agree
        // with the Figure 5 loop on every single-bit input (linearity
        // makes single bits a complete basis for the sum).
        for (unsigned b = 0; b < 64; ++b) {
            BlockAddr probe = BlockAddr{1} << b;
            MNM_ASSERT(sumHashFast(probe, c) ==
                           sumHash(probe, checkerOffset(c),
                                   spec_.sum_width),
                       "SMNM segment LUTs diverge from sumHash");
        }
    }
}

std::uint32_t
Smnm::sumValues(std::uint32_t sum_width)
{
    // Max sum = 1^2 + 2^2 + ... + w^2 = w(w+1)(2w+1)/6 (paper Eq. 3);
    // values range over [0, max], hence +1.
    return sum_width * (sum_width + 1) * (2 * sum_width + 1) / 6 + 1;
}

void
Smnm::onFlush()
{
    state_.assign(state_.size(), 0);
}

std::string
Smnm::name() const
{
    std::ostringstream out;
    out << "SMNM_" << spec_.sum_width << "x" << spec_.replication;
    if (spec_.mode == SmnmUpdateMode::SetOnly)
        out << "(set-only)";
    return out.str();
}

std::uint64_t
Smnm::storageBits() const
{
    // One presence flop per sum value per checker (paper Eq. 3); the
    // counting mode's counters are simulator bookkeeping for what
    // hardware maintains with an up/down counter per flop -- we report
    // the paper's flop count.
    return static_cast<std::uint64_t>(values_per_checker_) *
           spec_.replication;
}

PowerDelay
Smnm::power(const SramModel &sram, const CheckerModel &checker) const
{
    (void)sram;
    return checker.evaluate(spec_.sum_width, spec_.replication);
}

} // namespace mnm
