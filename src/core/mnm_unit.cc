#include "core/mnm_unit.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/phase_profiler.hh"
#include "util/logging.hh"

namespace mnm
{

MnmUnit::MnmUnit(const MnmSpec &spec, CacheHierarchy &hierarchy)
    : spec_(spec), hierarchy_(hierarchy)
{
    per_cache_.resize(hierarchy_.numCaches());
    violations_at_.assign(hierarchy_.levels() + 1, 0);

    // The RMNM granule is the level-2 block size (paper Section 3.1).
    // Tracked caches are every non-L1 structure, in id order.
    unsigned granule_bits = 64;
    std::uint32_t num_tracked = 0;
    for (CacheId id = 0; id < hierarchy_.numCaches(); ++id) {
        PerCache &pc = per_cache_[id];
        pc.block_bits = hierarchy_.cache(id).blockBits();
        std::uint32_t level = hierarchy_.levelOf(id);
        if (level < 2)
            continue;
        pc.rmnm_index = static_cast<int>(num_tracked++);
        if (level == 2)
            granule_bits = std::min(granule_bits, pc.block_bits);
        for (const LevelFilters &lf : spec_.level_filters) {
            if (level < lf.min_level || level > lf.max_level)
                continue;
            for (const FilterSpec &fs : lf.filters) {
                pc.filters.push_back(makeFilter(fs));
                pc.any_unsound |= pc.filters.back()->maybeUnsound();
                kernels_.push_back(
                    {filterKindOf(fs), pc.filters.back().get()});
            }
        }
    }
    if (granule_bits == 64) {
        // No level-2 cache (a 1-level hierarchy): fall back to the
        // smallest tracked block, or 32B.
        granule_bits = 5;
    }

    if (spec_.rmnm && num_tracked > 0 && !spec_.perfect)
        rmnm_ = std::make_unique<Rmnm>(*spec_.rmnm, num_tracked,
                                       granule_bits);

    // Pre-compute per-probe energy and worst-case delay. A parallel
    // MNM serves the L1 I- and D-streams simultaneously, so its
    // structures need as many ports as the level-1 caches together
    // (paper Section 2); multi-ported cells are bigger and slower. The
    // serial and distributed placements see one request at a time.
    SramModel sram;
    CheckerModel checker;
    const double port_energy_scale =
        spec_.placement == MnmPlacement::Parallel
            ? 1.0 + sram.tech().port_factor
            : 1.0;
    const double port_delay_scale = std::sqrt(port_energy_scale);
    if (!spec_.perfect) {
        for (PerCache &pc : per_cache_) {
            for (const auto &filter : pc.filters) {
                PowerDelay pd = filter->power(sram, checker);
                lookup_energy_pj_ += pd.read_energy_pj * port_energy_scale;
                pc.lookup_pj += pd.read_energy_pj * port_energy_scale;
                pc.update_pj += pd.write_energy_pj * port_energy_scale;
                probe_delay_ns_ = std::max(
                    probe_delay_ns_, pd.access_ns * port_delay_scale);
            }
        }
        if (rmnm_) {
            PowerDelay pd = rmnm_->power(sram);
            lookup_energy_pj_ += pd.read_energy_pj * port_energy_scale;
            rmnm_lookup_pj_ = pd.read_energy_pj * port_energy_scale;
            probe_delay_ns_ = std::max(probe_delay_ns_,
                                       pd.access_ns * port_delay_scale);
            rmnm_update_pj_ = pd.write_energy_pj * port_energy_scale;
        }
    }

    compilePlans();
    backend_ = simdBackendFromEnv();
    hierarchy_.setListener(this);
    // Batched feed by default; setReferenceFeed(true) restores the
    // per-event virtual path (MNM_REFERENCE_FEED=1).
    hierarchy_.setBatchedFeed(true);
}

void
MnmUnit::compilePlans()
{
    // The kernels were appended cache by cache above; record each
    // cache's contiguous slice.
    std::uint32_t next = 0;
    for (PerCache &pc : per_cache_) {
        pc.kernel_first = next;
        pc.kernel_count = static_cast<std::uint32_t>(pc.filters.size());
        next += pc.kernel_count;
    }

    // And flatten the per-path walk: the level >= 2 caches in path
    // order, with everything the hot loop consults resolved up front.
    auto compile = [&](AccessType type, std::vector<VerdictStep> &plan) {
        for (CacheId id : hierarchy_.path(type)) {
            std::uint32_t level = hierarchy_.levelOf(id);
            if (level < 2)
                continue;
            VerdictStep step;
            step.cache = &hierarchy_.cache(id);
            step.pc = &per_cache_[id];
            step.id = id;
            step.level = level;
            step.oracle_guard =
                (per_cache_[id].any_unsound || spec_.oracle_check) &&
                !spec_.perfect;
            plan.push_back(step);
        }
    };
    compile(AccessType::InstFetch, instr_plan_);
    compile(AccessType::Load, data_plan_);

    // The update-side mirror: one step per cache id so the event-ring
    // drain indexes straight from CacheEvent::cache. Pointers into
    // kernels_ and per_cache_ are stable from here on (no reallocation
    // after construction).
    update_plan_.clear();
    update_plan_.reserve(per_cache_.size());
    for (PerCache &pc : per_cache_) {
        UpdateStep st;
        st.kernels = kernels_.data() + pc.kernel_first;
        st.kernel_count = pc.kernel_count;
        st.update_events = &pc.update_events;
        st.rmnm_index = pc.rmnm_index;
        st.block_bits = pc.block_bits;
        update_plan_.push_back(st);
    }

    // Lower each walk into its SoA program.
    lowerPlan(instr_plan_, soa_instr_);
    lowerPlan(data_plan_, soa_data_);
    plans_identical_ = instr_plan_.size() == data_plan_.size();
    for (std::size_t i = 0; plans_identical_ && i < instr_plan_.size();
         ++i) {
        plans_identical_ = instr_plan_[i].id == data_plan_[i].id;
    }
    instr_guards_ = false;
    for (const VerdictStep &step : instr_plan_)
        instr_guards_ |= step.oracle_guard;
    data_guards_ = false;
    for (const VerdictStep &step : data_plan_)
        data_guards_ |= step.oracle_guard;
}

void
MnmUnit::lowerPlan(const std::vector<VerdictStep> &plan,
                   SoaProgram &program) const
{
    program.steps.clear();
    program.ops.clear();
    program.perfect = spec_.perfect;
    program.rmnm = spec_.perfect ? nullptr : rmnm_.get();
    for (const VerdictStep &step : plan) {
        SoaStep s;
        s.cache_bit = std::uint32_t{1} << step.id;
        s.rmnm_index = program.rmnm ? step.pc->rmnm_index : -1;
        s.block_bits = step.pc->block_bits;
        s.cache = step.cache;
        s.op_first = static_cast<std::uint32_t>(program.ops.size());
        const FilterKernel *k = kernels_.data() + step.pc->kernel_first;
        const FilterKernel *end = k + step.pc->kernel_count;
        for (; k != end; ++k) {
            SoaOp op;
            op.kind = k->kind;
            switch (k->kind) {
              case FilterKind::Smnm: {
                const auto *sm = static_cast<const Smnm *>(k->filter);
                op.sm_state = sm->stateData();
                op.sm_segs = &sm->checkerSegments(0);
                op.sm_values_per_checker = sm->valuesPerChecker();
                op.sm_replication = sm->spec().replication;
                break;
              }
              case FilterKind::Tmnm: {
                const auto *tm = static_cast<const Tmnm *>(k->filter);
                op.tm_counters = tm->countersData();
                op.tm_entries = tm->tableEntries();
                op.tm_index_bits = tm->spec().index_bits;
                op.tm_replication = tm->spec().replication;
                break;
              }
              case FilterKind::Cmnm: {
                const auto *cm = static_cast<const Cmnm *>(k->filter);
                if (cm->spec().policy == CmnmMaskPolicy::Monotone) {
                    op.cm_regs = cm->registerTable();
                    op.cm_counters = cm->counterTable();
                    op.cm_num_regs = cm->spec().num_registers;
                    op.cm_index_bits = cm->spec().table_index_bits;
                } else {
                    op.cmnm = cm;
                }
                break;
              }
            }
            program.ops.push_back(op);
        }
        s.op_count = static_cast<std::uint32_t>(program.ops.size()) -
                     s.op_first;
        program.steps.push_back(s);
    }
}

MnmUnit::~MnmUnit()
{
    hierarchy_.setListener(nullptr);
}

bool
MnmUnit::cacheVerdict(CacheId id, Addr addr) const
{
    const PerCache &pc = per_cache_[id];
    const Cache &cache = hierarchy_.cache(id);
    BlockAddr block = cache.blockAddr(addr);

    if (spec_.perfect)
        return !cache.contains(block);

    if (rmnm_ && pc.rmnm_index >= 0 &&
        rmnm_->definitelyMiss(static_cast<std::uint32_t>(pc.rmnm_index),
                              addr)) {
        return true;
    }
    for (const auto &filter : pc.filters) {
        if (filter->definitelyMiss(block))
            return true;
    }
    return false;
}

BypassMask
MnmUnit::computeBypass(AccessType type, Addr addr)
{
    if (reference_dispatch_ || backend_ == SimdBackend::Off)
        return computeBypassLegacy(type, addr);
    std::uint32_t cand;
    computeCandidates(type, &addr, &cand, 1);
    return finishBypass(type, addr, cand);
}

void
MnmUnit::computeCandidates(AccessType type, const Addr *addrs,
                           std::uint32_t *cand, std::size_t n)
{
    const bool instr = type == AccessType::InstFetch;
    const SoaProgram &program = instr ? soa_instr_ : soa_data_;
    soaCompute(program, addrs, cand, n, backend_);
}

BypassMask
MnmUnit::finishBypass(AccessType type, Addr addr, std::uint32_t cand)
{
    ++lookups_;
    rmnm_burst_charged_ = false; // new access: new RMNM update burst
    const bool instr = type == AccessType::InstFetch;
    if (!(instr ? instr_guards_ : data_guards_))
        return BypassMask(cand);
    // Oracle-guarded steps check the candidate against live cache
    // contents at consumption time, exactly as the legacy walk does.
    BypassMask mask;
    const std::vector<VerdictStep> &plan =
        instr ? instr_plan_ : data_plan_;
    for (const VerdictStep &step : plan) {
        if (!((cand >> step.id) & 1u))
            continue;
        if (step.oracle_guard &&
            step.cache->contains(step.cache->blockAddr(addr))) {
            ++violations_;
            ++violations_at_[step.level];
            continue;
        }
        mask.set(step.id);
    }
    return mask;
}

BypassMask
MnmUnit::computeBypassLegacy(AccessType type, Addr addr)
{
    ++lookups_;
    rmnm_burst_charged_ = false; // new access: new RMNM update burst
    if (reference_dispatch_)
        return computeBypassReference(type, addr);

    BypassMask mask;
    const std::vector<VerdictStep> &plan =
        type == AccessType::InstFetch ? instr_plan_ : data_plan_;
    if (spec_.perfect) {
        for (const VerdictStep &step : plan) {
            if (!step.cache->contains(step.cache->blockAddr(addr)))
                mask.set(step.id);
        }
        return mask;
    }

    // One RMNM probe answers every step: the plan's caches all test the
    // same address, so hoist the entry lookup and keep only the
    // per-cache bit test in the loop.
    const std::uint32_t rmnm_bits = rmnm_ ? rmnm_->missBits(addr) : 0;
    const FilterKernel *kernels = kernels_.data();
    for (const VerdictStep &step : plan) {
        const PerCache &pc = *step.pc;
        bool miss = pc.rmnm_index >= 0 &&
                    ((rmnm_bits >> pc.rmnm_index) & 1u);
        if (!miss) {
            BlockAddr block = step.cache->blockAddr(addr);
            const FilterKernel *k = kernels + pc.kernel_first;
            const FilterKernel *end = k + pc.kernel_count;
            for (; k != end; ++k) {
                if (kernelDefinitelyMiss(*k, block)) {
                    miss = true;
                    break;
                }
            }
        }
        if (!miss)
            continue;
        if (step.oracle_guard &&
            step.cache->contains(step.cache->blockAddr(addr))) {
            // The verdict was wrong: bypassing would have skipped a
            // hit. Count it and suppress the bypass so the simulation
            // stays architecturally correct.
            ++violations_;
            ++violations_at_[step.level];
            continue;
        }
        mask.set(step.id);
    }
    return mask;
}

BypassMask
MnmUnit::computeBypassReference(AccessType type, Addr addr)
{
    BypassMask mask;
    for (CacheId id : hierarchy_.path(type)) {
        if (hierarchy_.levelOf(id) < 2)
            continue;
        if (!cacheVerdict(id, addr))
            continue;
        const PerCache &pc = per_cache_[id];
        if ((pc.any_unsound || spec_.oracle_check) && !spec_.perfect) {
            const Cache &cache = hierarchy_.cache(id);
            if (cache.contains(cache.blockAddr(addr))) {
                ++violations_;
                std::uint32_t level = hierarchy_.levelOf(id);
                if (level < violations_at_.size())
                    ++violations_at_[level];
                continue;
            }
        }
        mask.set(id);
    }
    return mask;
}

Cycles
MnmUnit::applyPlacementCosts(const AccessResult &result)
{
    if (spec_.perfect)
        return 0; // the oracle is free by definition (Section 4.3/4.4)

    bool l1_missed = result.supply_level != 1;
    switch (spec_.placement) {
      case MnmPlacement::Parallel:
        // Probed alongside L1 on every request; delay hidden under the
        // L1 access (audited in bench_table3).
        chargeLookup();
        return 0;
      case MnmPlacement::Serial:
        if (!l1_missed)
            return 0;
        chargeLookup();
        return spec_.delay;
      case MnmPlacement::Distributed: {
        // Each level >= 2 the walk reaches consults its own filter
        // (+delay, + that filter's energy); the shared RMNM is
        // consulted once after the L1 miss.
        Cycles extra = 0;
        if (l1_missed && rmnm_)
            ++rmnm_lookup_events_;
        for (std::uint8_t i = 0; i < result.num_probes; ++i) {
            const ProbeRecord &probe = result.probes[i];
            if (probe.level < 2)
                continue;
            extra += spec_.delay;
            ++per_cache_[probe.cache].dist_lookup_events;
        }
        return extra;
      }
    }
    panic("unreachable MNM placement");
}

void
MnmUnit::onPlacement(CacheId id, BlockAddr block)
{
    PhaseScope prof(Phase::UpdateFeed);
    PerCache &pc = per_cache_[id];
    // Level >= 2 state moved: filters and RMNM below, and in perfect
    // mode the cache contents the oracle verdicts read. L1 events leave
    // every verdict input untouched (L1 is not on any plan).
    if (pc.rmnm_index >= 0)
        ++state_epoch_;
    if (spec_.perfect)
        return;
    if (reference_dispatch_) {
        for (auto &filter : pc.filters)
            filter->onPlacement(block);
    } else {
        const FilterKernel *k = kernels_.data() + pc.kernel_first;
        const FilterKernel *end = k + pc.kernel_count;
        for (; k != end; ++k)
            kernelOnPlacement(*k, block);
    }
    ++pc.update_events;
    if (rmnm_ && pc.rmnm_index >= 0) {
        rmnm_->onPlacement(static_cast<std::uint32_t>(pc.rmnm_index),
                           hierarchy_.cache(id).byteAddr(block),
                           pc.block_bits);
        if (!rmnm_burst_charged_) {
            ++rmnm_burst_events_;
            rmnm_burst_charged_ = true;
        }
    }
}

void
MnmUnit::onReplacement(CacheId id, BlockAddr block)
{
    PhaseScope prof(Phase::UpdateFeed);
    PerCache &pc = per_cache_[id];
    if (pc.rmnm_index >= 0)
        ++state_epoch_;
    if (spec_.perfect)
        return;
    if (reference_dispatch_) {
        for (auto &filter : pc.filters)
            filter->onReplacement(block);
    } else {
        const FilterKernel *k = kernels_.data() + pc.kernel_first;
        const FilterKernel *end = k + pc.kernel_count;
        for (; k != end; ++k)
            kernelOnReplacement(*k, block);
    }
    ++pc.update_events;
    if (rmnm_ && pc.rmnm_index >= 0) {
        rmnm_->onReplacement(static_cast<std::uint32_t>(pc.rmnm_index),
                             hierarchy_.cache(id).byteAddr(block),
                             pc.block_bits);
        if (!rmnm_burst_charged_) {
            ++rmnm_burst_events_;
            rmnm_burst_charged_ = true;
        }
    }
}

void
MnmUnit::onEventBatch(const CacheEvent *events, std::size_t n)
{
    if (reference_dispatch_) {
        // MNM_REFERENCE_KERNEL routes every update through the virtual
        // MissFilter interface; unbatch into the per-event listeners so
        // that contract holds for the ring too.
        CacheEventListener::onEventBatch(events, n);
        return;
    }
    PhaseScope prof(Phase::FeedDrain);
    const UpdateStep *steps = update_plan_.data();
    Rmnm *rmnm = rmnm_.get();
    if (spec_.perfect) {
        // The oracle keeps no filter state; only the verdict epoch
        // moves (cache contents it reads changed at level >= 2).
        for (std::size_t i = 0; i < n; ++i) {
            if (steps[events[i].cache].rmnm_index >= 0)
                ++state_epoch_;
        }
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const CacheEvent &ev = events[i];
        const UpdateStep &st = steps[ev.cache];
        if (st.rmnm_index >= 0)
            ++state_epoch_;
        updateStepApply(st, ev.kind, ev.block);
        if (rmnm && st.rmnm_index >= 0) {
            const Addr byte_addr = static_cast<Addr>(ev.block)
                                   << st.block_bits;
            const auto tracked =
                static_cast<std::uint32_t>(st.rmnm_index);
            if (ev.kind == CacheEventKind::Placement)
                rmnm->onPlacement(tracked, byte_addr, st.block_bits);
            else
                rmnm->onReplacement(tracked, byte_addr, st.block_bits);
            if (!rmnm_burst_charged_) {
                ++rmnm_burst_events_;
                rmnm_burst_charged_ = true;
            }
        }
    }
}

PicoJoules
MnmUnit::consumedEnergyPj() const
{
    PicoJoules total =
        static_cast<double>(lookup_charges_) * lookup_energy_pj_ +
        static_cast<double>(rmnm_burst_events_) * rmnm_update_pj_ +
        static_cast<double>(rmnm_lookup_events_) * rmnm_lookup_pj_;
    for (const PerCache &pc : per_cache_) {
        total += static_cast<double>(pc.update_events) * pc.update_pj;
        total +=
            static_cast<double>(pc.dist_lookup_events) * pc.lookup_pj;
    }
    return total;
}

void
MnmUnit::onFlush(CacheId id)
{
    PhaseScope prof(Phase::UpdateFeed);
    ++state_epoch_;
    PerCache &pc = per_cache_[id];
    for (auto &filter : pc.filters)
        filter->onFlush();
    // The RMNM's set bits remain valid across a flush (flushed blocks
    // are certainly absent), so it is deliberately left alone.
}

std::uint64_t
MnmUnit::storageBits() const
{
    std::uint64_t bits = 0;
    for (const PerCache &pc : per_cache_) {
        for (const auto &filter : pc.filters)
            bits += filter->storageBits();
    }
    if (rmnm_)
        bits += rmnm_->storageBits();
    return bits;
}

std::uint64_t
MnmUnit::filterAnomalies() const
{
    std::uint64_t n = 0;
    for (const PerCache &pc : per_cache_) {
        for (const auto &filter : pc.filters)
            n += filter->anomalies();
    }
    return n;
}

std::string
MnmUnit::describe() const
{
    std::ostringstream out;
    const char *placement =
        spec_.placement == MnmPlacement::Parallel
            ? "parallel"
            : (spec_.placement == MnmPlacement::Serial ? "serial"
                                                       : "distributed");
    out << spec_.name << " (" << placement << ", " << spec_.delay
        << "-cycle";
    if (spec_.perfect) {
        out << ", perfect oracle)\n";
        return out.str();
    }
    out << ")\n";
    if (rmnm_)
        out << "  shared: " << rmnm_->name() << "\n";
    for (CacheId id = 0; id < per_cache_.size(); ++id) {
        const PerCache &pc = per_cache_[id];
        if (pc.filters.empty())
            continue;
        out << "  " << hierarchy_.cache(id).params().name << ":";
        for (const auto &filter : pc.filters)
            out << " " << filter->name();
        out << "\n";
    }
    out << "  storage: " << storageBits() / 8 << " bytes, probe "
        << lookup_energy_pj_ << " pJ, " << probe_delay_ns_ << " ns\n";
    return out.str();
}

} // namespace mnm
