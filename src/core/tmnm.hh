/**
 * @file
 * Table MNM (paper Section 3.3).
 *
 * The least significant N bits of the block address index a 2^N-entry
 * table of 3-bit saturating counters (a counting Bloom filter with a
 * single trivial hash). A counter of zero means no resident block maps
 * there: definite miss. Placement increments, replacement decrements --
 * except that a counter which ever saturates becomes untrustworthy and
 * stays saturated ("sticky") until the cache is flushed, exactly as the
 * paper prescribes. A configuration "TMNM_NxR" runs R tables over
 * address windows at bit offsets 0, 6, 12, ...; a zero counter in ANY
 * table bypasses the access.
 */

#ifndef MNM_CORE_TMNM_HH
#define MNM_CORE_TMNM_HH

#include <cstdint>
#include <vector>

#include "core/miss_filter.hh"
#include "util/bits.hh"

namespace mnm
{

/** The TMNM filter for one cache. */
class Tmnm : public MissFilter
{
  public:
    explicit Tmnm(const TmnmSpec &spec);

    /** Non-virtual hot-path bodies; the verdict plan dispatches to
     *  these directly (core/verdict_plan.hh). The virtual overrides
     *  forward here so both paths share one implementation. */
    bool
    missHot(BlockAddr block) const
    {
        for (std::uint32_t t = 0; t < spec_.replication; ++t) {
            if (counters_[cellIndex(t, block)] == 0)
                return true;
        }
        return false;
    }

    void
    placeHot(BlockAddr block)
    {
        for (std::uint32_t t = 0; t < spec_.replication; ++t) {
            std::uint8_t &c = counters_[cellIndex(t, block)];
            if (c < saturation_)
                ++c;
            // A saturated counter stays saturated: once 2^bits or more
            // blocks have mapped here we can no longer track the count.
        }
    }

    void
    replaceHot(BlockAddr block)
    {
        for (std::uint32_t t = 0; t < spec_.replication; ++t) {
            std::uint8_t &c = counters_[cellIndex(t, block)];
            if (c == saturation_) {
                // Sticky: decrementing a saturated counter could let it
                // reach zero while blocks remain resident, breaking
                // soundness (paper Section 3.3).
                continue;
            }
            if (c == 0) {
                ++anomalies_;
                continue;
            }
            --c;
        }
    }

    bool definitelyMiss(BlockAddr block) const override
    {
        return missHot(block);
    }
    void onPlacement(BlockAddr block) override { placeHot(block); }
    void onReplacement(BlockAddr block) override { replaceHot(block); }
    void onFlush() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    PowerDelay power(const SramModel &sram,
                     const CheckerModel &checker) const override;
    std::uint64_t anomalies() const override { return anomalies_; }

    /** Fault surface: counter_bits bits per saturating counter. */
    std::uint64_t faultBitCount() const override
    {
        return static_cast<std::uint64_t>(counters_.size()) *
               spec_.counter_bits;
    }
    void flipFaultBit(std::uint64_t bit) override
    {
        counters_[bit / spec_.counter_bits] ^= static_cast<std::uint8_t>(
            1u << (bit % spec_.counter_bits));
    }

    const TmnmSpec &spec() const { return spec_; }

    /** Number of saturated (permanently "maybe") counters right now. */
    std::uint64_t saturatedCounters() const;

    /** SoA-program views (core/soa_state.hh): the live counter table
     *  and its geometry. Borrowed, never copied -- updates and
     *  injected faults are visible to the kernels by construction. */
    const std::uint8_t *countersData() const { return counters_.data(); }
    std::uint32_t tableEntries() const { return table_entries_; }

  private:
    unsigned tableOffset(std::uint32_t i) const { return 6 * i; }

    std::size_t
    cellIndex(std::uint32_t table, BlockAddr block) const
    {
        std::uint64_t idx =
            bitSlice(block, tableOffset(table), spec_.index_bits);
        return static_cast<std::size_t>(table) * table_entries_ +
               static_cast<std::size_t>(idx);
    }

    TmnmSpec spec_;
    std::uint32_t table_entries_;
    std::uint8_t saturation_;
    std::vector<std::uint8_t> counters_;
    std::uint64_t anomalies_ = 0;
};

} // namespace mnm

#endif // MNM_CORE_TMNM_HH
