/**
 * @file
 * Replacements MNM (paper Section 3.1).
 *
 * A single small set-associative "RMNM cache" shared by all tracked
 * (non-L1) cache structures. Entries are indexed at the L2 cache's block
 * granularity; each entry holds one bit per tracked cache. A set bit for
 * cache c means "this block was replaced from c and has not been placed
 * back": a definite miss. Replacements from caches with larger blocks
 * insert (block_large / block_L2) entries, and placements clear the bit
 * in every covered entry (paper Table 1 scenario).
 *
 * Cold misses are invisible to the RMNM by construction, and evicting an
 * RMNM entry merely loses coverage -- both safe with respect to the
 * soundness invariant.
 */

#ifndef MNM_CORE_RMNM_HH
#define MNM_CORE_RMNM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "power/sram_model.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace mnm
{

/** Configuration: RMNM_<entries>_<assoc> in the paper's labels. */
struct RmnmSpec
{
    std::uint32_t entries = 512;
    std::uint32_t associativity = 2;
};

/** The shared replacement-tracking structure. */
class Rmnm
{
  public:
    /**
     * @param spec         size/associativity
     * @param num_tracked  number of tracked cache structures (<= 32)
     * @param granule_bits log2 of the tracking granule (the L2 block
     *                     size, paper Section 3.1)
     */
    Rmnm(const RmnmSpec &spec, std::uint32_t num_tracked,
         unsigned granule_bits);

    /** Definite miss for tracked cache @p tracked at byte @p addr?
     *  Inline: this sits on the per-request verdict hot path for every
     *  placement, ahead of the per-cache filters. */
    bool definitelyMiss(std::uint32_t tracked, Addr addr) const
    {
        return (missBits(addr) >> tracked) & 1u;
    }

    /** The whole miss-bit vector for the granule containing @p addr
     *  (zero when no entry covers it). One lookup answers
     *  definitelyMiss for every tracked cache at once; the verdict plan
     *  walks several caches against the same address, so it hoists this
     *  out of its per-cache loop. */
    std::uint32_t missBits(Addr addr) const
    {
        const Entry *entry = find(granuleOf(addr));
        return entry ? entry->miss_bits : 0;
    }

    /**
     * A block of 2^@p block_bits bytes was placed into cache @p tracked.
     * Clears the miss bit in every covered entry. Header-inline like
     * onReplacement(): both sit on the update-feed drain path, called
     * once per tracked-cache fill/eviction from another TU.
     */
    void
    onPlacement(std::uint32_t tracked, Addr addr, unsigned block_bits)
    {
        std::uint64_t span = spanOf(block_bits);
        std::uint64_t first = granuleOf(addr) & ~(span - 1);
        for (std::uint64_t g = first; g < first + span; ++g) {
            Entry *entry = find(g);
            if (!entry)
                continue;
            entry->miss_bits &= ~(1u << tracked);
            if (entry->miss_bits == 0) {
                // An all-clear entry carries no information; free the
                // slot.
                entry->stamp = 0;
                --in_use_;
            }
        }
    }

    /**
     * A block was replaced from cache @p tracked. Sets the miss bit in
     * every covered entry, allocating entries (and evicting victims) as
     * needed.
     */
    void
    onReplacement(std::uint32_t tracked, Addr addr, unsigned block_bits)
    {
        std::uint64_t span = spanOf(block_bits);
        std::uint64_t first = granuleOf(addr) & ~(span - 1);
        for (std::uint64_t g = first; g < first + span; ++g) {
            // One fused pass over the set finds a live match and tracks
            // the allocation slot at once. The slot choice is identical
            // to an invalid-first-then-LRU pair of scans: an invalid
            // entry's stamp is 0, below every live stamp (ticks start
            // at 1), and the strict < keeps the first minimum, so
            // "first invalid way, else LRU victim" falls out of a
            // single min-stamp scan.
            const std::uint64_t tag = tagOf(g);
            std::uint32_t set = setOf(g);
            Entry *base =
                &entries_[static_cast<std::size_t>(set) * num_ways_];
            Entry *match = nullptr;
            Entry *slot = base;
            for (std::uint32_t w = 0; w < num_ways_; ++w) {
                if (base[w].stamp != 0 && base[w].tag == tag) {
                    match = &base[w];
                    break;
                }
                if (base[w].stamp < slot->stamp)
                    slot = &base[w];
            }
            if (match) {
                match->miss_bits |= 1u << tracked;
                match->stamp = ++tick_;
                continue;
            }
            // Allocate: the victim loses whatever miss information it
            // held -- safe, just less coverage. A tag that does not fit
            // the 32-bit field could alias another granule and emit an
            // unsound verdict; no workload's address space comes near
            // 2^(32 + set + granule bits), so fail loudly rather than
            // widen the entry.
            MNM_ASSERT(tag <= 0xffffffffull,
                       "RMNM granule tag exceeds 32 bits");
            if (slot->stamp == 0)
                ++in_use_;
            slot->tag = static_cast<std::uint32_t>(tag);
            slot->miss_bits = 1u << tracked;
            slot->stamp = ++tick_;
        }
    }

    /** Drop all entries. */
    void reset();

    std::string name() const;
    std::uint64_t storageBits() const;
    PowerDelay power(const SramModel &sram) const;

    const RmnmSpec &spec() const { return spec_; }
    std::uint64_t entriesInUse() const { return in_use_; }

    /** log2 of the tracking granule (the MnmUnit's verdict memo keys
     *  addresses at the coarsest granule every structure shares). */
    unsigned granuleBits() const { return granule_bits_; }

    /** Hint the set covering @p addr into cache ahead of a batch of
     *  missBits() probes; the SoA kernels issue these one chunk ahead
     *  so the random-indexed entry rows are resident when walked. */
    void
    prefetch(Addr addr) const
    {
        std::uint32_t set = setOf(granuleOf(addr));
        __builtin_prefetch(
            &entries_[static_cast<std::size_t>(set) * num_ways_], 0, 1);
    }

    /** Fault surface (core/fault_inject.hh): one miss bit per tracked
     *  cache per entry. Flips on invalid entries have no behavioral
     *  effect (lookups require valid), mirroring a strike on a
     *  deallocated SRAM row. */
    std::uint64_t faultBitCount() const
    {
        return static_cast<std::uint64_t>(entries_.size()) *
               num_tracked_;
    }

    /** Flip one miss bit; self-inverse, testing only. */
    void flipFaultBit(std::uint64_t bit)
    {
        entries_[bit / num_tracked_].miss_bits ^=
            std::uint32_t{1}
            << static_cast<std::uint32_t>(bit % num_tracked_);
    }

  private:
    /** 16 bytes, so the common 4-way set occupies exactly one cache
     *  line (the row is randomly indexed on every probe and update;
     *  the old 24-byte entry made each set span two lines). The tag is
     *  the granule's bits above the set index -- tagFits() is asserted
     *  at insert, so a probe whose tag exceeds 32 bits simply never
     *  matches -- and stamp == 0 encodes "invalid" (ticks start at 1). */
    struct Entry
    {
        std::uint64_t stamp = 0; //!< LRU tick; 0 = invalid
        std::uint32_t tag = 0;   //!< granule >> set_bits_
        std::uint32_t miss_bits = 0;
    };

    std::uint64_t granuleOf(Addr addr) const
    {
        return addr >> granule_bits_;
    }

    std::uint32_t setOf(std::uint64_t granule) const
    {
        return static_cast<std::uint32_t>(granule & (num_sets_ - 1));
    }

    std::uint64_t tagOf(std::uint64_t granule) const
    {
        return granule >> set_bits_;
    }

    Entry *find(std::uint64_t granule)
    {
        std::uint32_t set = setOf(granule);
        const std::uint64_t tag = tagOf(granule);
        Entry *base =
            &entries_[static_cast<std::size_t>(set) * num_ways_];
        for (std::uint32_t w = 0; w < num_ways_; ++w) {
            if (base[w].stamp != 0 && base[w].tag == tag)
                return &base[w];
        }
        return nullptr;
    }
    const Entry *find(std::uint64_t granule) const
    {
        return const_cast<Rmnm *>(this)->find(granule);
    }

    /** Granule span covered by a block of 2^@p block_bits bytes. */
    std::uint64_t
    spanOf(unsigned block_bits) const
    {
        MNM_ASSERT(block_bits >= granule_bits_,
                   "tracked cache block smaller than the RMNM granule");
        return std::uint64_t{1} << (block_bits - granule_bits_);
    }

    RmnmSpec spec_;
    std::uint32_t num_tracked_;
    unsigned granule_bits_;
    std::uint32_t num_sets_;
    unsigned set_bits_ = 0; //!< log2(num_sets_)
    std::uint32_t num_ways_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    std::uint64_t in_use_ = 0;
};

} // namespace mnm

#endif // MNM_CORE_RMNM_HH
