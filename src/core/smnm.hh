/**
 * @file
 * Sum MNM (paper Section 3.2).
 *
 * Each "checker" hashes a sum_width-bit window of the block address with
 * the paper's sum-of-squares function (Figure 5):
 *
 *     sum = 0;
 *     for (i = 1; i <= SUM_WIDTH; i++) {
 *         if (addr & 0x1) sum += i * i;
 *         addr >>= 1;
 *     }
 *
 * and keeps one presence flag per possible sum value (the flip-flops at
 * the bottom of Figure 6; their count is paper Equation 3). An access
 * whose sum value has no resident block is a definite miss. A
 * configuration "SMNM_WxR" runs R parallel checkers over address windows
 * starting at bits 0, 6, 12, ... (Section 3.2's checker offsets); a miss
 * from ANY checker bypasses the access (Figure 7).
 */

#ifndef MNM_CORE_SMNM_HH
#define MNM_CORE_SMNM_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "core/miss_filter.hh"
#include "util/bits.hh"

namespace mnm
{

/** The SMNM filter for one cache. */
class Smnm : public MissFilter
{
  public:
    explicit Smnm(const SmnmSpec &spec);

    /** The paper's Figure 5 hash over a window of @p addr. Iterates
     *  only the set bits of the window -- bit p (0-based) contributes
     *  (p+1)^2 -- which is exactly the Figure 5 loop's result. */
    static std::uint32_t
    sumHash(std::uint64_t addr, unsigned first_bit,
            std::uint32_t sum_width)
    {
        std::uint64_t window = (addr >> first_bit) & lowMask(sum_width);
        std::uint32_t sum = 0;
        while (window) {
            unsigned p = static_cast<unsigned>(std::countr_zero(window));
            sum += (p + 1) * (p + 1);
            window &= window - 1;
        }
        return sum;
    }

    /** Number of distinct sum values for a width (Eq. 3 + 1 for zero). */
    static std::uint32_t sumValues(std::uint32_t sum_width);

    /** Non-virtual hot-path bodies; the verdict plan dispatches to
     *  these directly (core/verdict_plan.hh) so the per-access work
     *  inlines into the simulators' inner loops. The virtual overrides
     *  below forward here, keeping both paths behaviourally one. */
    bool
    missHot(BlockAddr block) const
    {
        for (std::uint32_t c = 0; c < spec_.replication; ++c) {
            std::uint32_t sum =
                sumHash(block, checkerOffset(c), spec_.sum_width);
            if (state_[static_cast<std::size_t>(c) * values_per_checker_ +
                       sum] == 0) {
                return true;
            }
        }
        return false;
    }

    void
    placeHot(BlockAddr block)
    {
        for (std::uint32_t c = 0; c < spec_.replication; ++c) {
            std::uint32_t sum =
                sumHash(block, checkerOffset(c), spec_.sum_width);
            std::uint32_t &cell =
                state_[static_cast<std::size_t>(c) * values_per_checker_ +
                       sum];
            if (spec_.mode == SmnmUpdateMode::Counting) {
                ++cell;
            } else {
                cell = 1;
            }
        }
    }

    void
    replaceHot(BlockAddr block)
    {
        if (spec_.mode != SmnmUpdateMode::Counting)
            return; // the literal circuit ignores replacements
        for (std::uint32_t c = 0; c < spec_.replication; ++c) {
            std::uint32_t sum =
                sumHash(block, checkerOffset(c), spec_.sum_width);
            std::uint32_t &cell =
                state_[static_cast<std::size_t>(c) * values_per_checker_ +
                       sum];
            if (cell == 0) {
                // Replacement of a block we never saw placed: only
                // possible if we were attached to a warm cache.
                ++anomalies_;
            } else {
                --cell;
            }
        }
    }

    bool definitelyMiss(BlockAddr block) const override
    {
        return missHot(block);
    }
    void onPlacement(BlockAddr block) override { placeHot(block); }
    void onReplacement(BlockAddr block) override { replaceHot(block); }
    void onFlush() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    PowerDelay power(const SramModel &sram,
                     const CheckerModel &checker) const override;
    std::uint64_t anomalies() const override { return anomalies_; }

    /** Fault surface: every bit of the per-sum state words (presence
     *  flip-flops in SetOnly mode, count bits in Counting mode). */
    std::uint64_t faultBitCount() const override
    {
        return static_cast<std::uint64_t>(state_.size()) * 32u;
    }
    void flipFaultBit(std::uint64_t bit) override
    {
        state_[bit / 32u] ^= std::uint32_t{1} << (bit % 32u);
    }

    const SmnmSpec &spec() const { return spec_; }

  private:
    /** Bit offset of checker @p i's address window. */
    unsigned checkerOffset(std::uint32_t i) const { return 6 * i; }

    SmnmSpec spec_;
    std::uint32_t values_per_checker_;
    /** Counting mode: per-checker, per-sum resident counts.
     *  SetOnly mode: 0/1 flags with no decrement. */
    std::vector<std::uint32_t> state_;
    std::uint64_t anomalies_ = 0;
};

} // namespace mnm

#endif // MNM_CORE_SMNM_HH
