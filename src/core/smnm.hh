/**
 * @file
 * Sum MNM (paper Section 3.2).
 *
 * Each "checker" hashes a sum_width-bit window of the block address with
 * the paper's sum-of-squares function (Figure 5):
 *
 *     sum = 0;
 *     for (i = 1; i <= SUM_WIDTH; i++) {
 *         if (addr & 0x1) sum += i * i;
 *         addr >>= 1;
 *     }
 *
 * and keeps one presence flag per possible sum value (the flip-flops at
 * the bottom of Figure 6; their count is paper Equation 3). An access
 * whose sum value has no resident block is a definite miss. A
 * configuration "SMNM_WxR" runs R parallel checkers over address windows
 * starting at bits 0, 6, 12, ... (Section 3.2's checker offsets); a miss
 * from ANY checker bypasses the access (Figure 7).
 */

#ifndef MNM_CORE_SMNM_HH
#define MNM_CORE_SMNM_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "core/miss_filter.hh"
#include "util/bits.hh"

namespace mnm
{

/** The SMNM filter for one cache. */
class Smnm : public MissFilter
{
  public:
    /** Figure 5's hash evaluated by table lookup: the window is split
     *  into segments of <= seg_bits bits and each segment's
     *  contribution (sum of (global_pos+1)^2 over its set bits) comes
     *  from one shared LUT. The decomposition is exact -- the hash is
     *  a plain sum over bit positions -- so sumHashFast() equals
     *  sumHash() bit-for-bit while replacing the per-set-bit loop with
     *  two or three loads. The SoA verdict kernels
     *  (core/soa_state.hh) run the same segments 8-wide. */
    static constexpr unsigned seg_bits = 11;
    static constexpr unsigned max_segments = 3; // ceil(32 / seg_bits)

    /** One LUT-backed window segment: sum += lut[(addr >> shift) & mask]. */
    struct SumSegment
    {
        unsigned shift = 0;
        std::uint32_t mask = 0;
        const std::uint32_t *lut = nullptr;
    };

    /** The segments of one checker's window. Segments whose shift
     *  would reach past bit 63 are dropped at build time: the original
     *  window sees only zeros there, so they contribute nothing. */
    struct CheckerSegments
    {
        SumSegment seg[max_segments];
        unsigned count = 0;
    };

    explicit Smnm(const SmnmSpec &spec);

    /** The paper's Figure 5 hash over a window of @p addr. Iterates
     *  only the set bits of the window -- bit p (0-based) contributes
     *  (p+1)^2 -- which is exactly the Figure 5 loop's result. */
    static std::uint32_t
    sumHash(std::uint64_t addr, unsigned first_bit,
            std::uint32_t sum_width)
    {
        std::uint64_t window = (addr >> first_bit) & lowMask(sum_width);
        std::uint32_t sum = 0;
        while (window) {
            unsigned p = static_cast<unsigned>(std::countr_zero(window));
            sum += (p + 1) * (p + 1);
            window &= window - 1;
        }
        return sum;
    }

    /** Number of distinct sum values for a width (Eq. 3 + 1 for zero). */
    static std::uint32_t sumValues(std::uint32_t sum_width);

    /** sumHash() by segment LUTs; identical result, no per-bit loop. */
    std::uint32_t
    sumHashFast(BlockAddr block, std::uint32_t checker) const
    {
        const CheckerSegments &cs = checker_segs_[checker];
        std::uint32_t sum = 0;
        for (unsigned s = 0; s < cs.count; ++s) {
            const SumSegment &seg = cs.seg[s];
            sum += seg.lut[(block >> seg.shift) & seg.mask];
        }
        return sum;
    }

    /** Non-virtual hot-path bodies; the verdict plan dispatches to
     *  these directly (core/verdict_plan.hh) so the per-access work
     *  inlines into the simulators' inner loops. The virtual overrides
     *  below forward here, keeping both paths behaviourally one. */
    bool
    missHot(BlockAddr block) const
    {
        for (std::uint32_t c = 0; c < spec_.replication; ++c) {
            std::uint32_t sum = sumHashFast(block, c);
            if (state_[static_cast<std::size_t>(c) * values_per_checker_ +
                       sum] == 0) {
                return true;
            }
        }
        return false;
    }

    void
    placeHot(BlockAddr block)
    {
        for (std::uint32_t c = 0; c < spec_.replication; ++c) {
            std::uint32_t sum = sumHashFast(block, c);
            std::uint32_t &cell =
                state_[static_cast<std::size_t>(c) * values_per_checker_ +
                       sum];
            if (spec_.mode == SmnmUpdateMode::Counting) {
                ++cell;
            } else {
                cell = 1;
            }
        }
    }

    void
    replaceHot(BlockAddr block)
    {
        if (spec_.mode != SmnmUpdateMode::Counting)
            return; // the literal circuit ignores replacements
        for (std::uint32_t c = 0; c < spec_.replication; ++c) {
            std::uint32_t sum = sumHashFast(block, c);
            std::uint32_t &cell =
                state_[static_cast<std::size_t>(c) * values_per_checker_ +
                       sum];
            if (cell == 0) {
                // Replacement of a block we never saw placed: only
                // possible if we were attached to a warm cache.
                ++anomalies_;
            } else {
                --cell;
            }
        }
    }

    bool definitelyMiss(BlockAddr block) const override
    {
        return missHot(block);
    }
    void onPlacement(BlockAddr block) override { placeHot(block); }
    void onReplacement(BlockAddr block) override { replaceHot(block); }
    void onFlush() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    PowerDelay power(const SramModel &sram,
                     const CheckerModel &checker) const override;
    std::uint64_t anomalies() const override { return anomalies_; }

    /** Fault surface: every bit of the per-sum state words (presence
     *  flip-flops in SetOnly mode, count bits in Counting mode). */
    std::uint64_t faultBitCount() const override
    {
        return static_cast<std::uint64_t>(state_.size()) * 32u;
    }
    void flipFaultBit(std::uint64_t bit) override
    {
        state_[bit / 32u] ^= std::uint32_t{1} << (bit % 32u);
    }

    const SmnmSpec &spec() const { return spec_; }

    /** SoA-program views (core/soa_state.hh): the live state table and
     *  the compiled segments. The kernels borrow this storage rather
     *  than copying it, so every update and every injected fault is
     *  visible to them by construction. */
    const std::uint32_t *stateData() const { return state_.data(); }
    std::uint32_t valuesPerChecker() const { return values_per_checker_; }
    const CheckerSegments &
    checkerSegments(std::uint32_t checker) const
    {
        return checker_segs_[checker];
    }

  private:
    /** Bit offset of checker @p i's address window. */
    unsigned checkerOffset(std::uint32_t i) const { return 6 * i; }

    SmnmSpec spec_;
    std::uint32_t values_per_checker_;
    /** Counting mode: per-checker, per-sum resident counts.
     *  SetOnly mode: 0/1 flags with no decrement. */
    std::vector<std::uint32_t> state_;
    /** Per-checker LUT segments behind sumHashFast(). */
    std::vector<CheckerSegments> checker_segs_;
    std::uint64_t anomalies_ = 0;
};

} // namespace mnm

#endif // MNM_CORE_SMNM_HH
