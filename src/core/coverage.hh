/**
 * @file
 * Coverage accounting (paper Section 4.2).
 *
 * "Coverage is the fraction of the misses identified by the technique
 * over all cache misses", where only bypassable misses count: an access
 * supplied by level n could have bypassed levels 2..n-1 (level-1 misses
 * are never predicted). Coverage is a property of the verdicts alone --
 * it does not depend on whether the MNM is placed serially or in
 * parallel.
 */

#ifndef MNM_CORE_COVERAGE_HH
#define MNM_CORE_COVERAGE_HH

#include <array>
#include <cstdint>

#include "cache/hierarchy.hh"
#include "util/stats.hh"

namespace mnm
{

/** Accumulates identified vs. missed bypass opportunities. */
class CoverageTracker
{
  public:
    static constexpr std::size_t max_levels = 16;

    /** Fold one completed access into the totals. */
    void record(const AccessResult &result);

    /** Misses the MNM identified (accesses actually bypassed). */
    std::uint64_t identified() const { return identified_; }

    /** Misses that were probed in full (opportunity not taken). */
    std::uint64_t unidentified() const { return unidentified_; }

    /** All bypassable misses seen. */
    std::uint64_t opportunities() const
    {
        return identified_ + unidentified_;
    }

    /** Paper's coverage metric in [0,1]. */
    double coverage() const
    {
        return ratio(static_cast<double>(identified_),
                     static_cast<double>(opportunities()));
    }

    /** Per-level identified/unidentified counts (index = level). */
    std::uint64_t identifiedAt(std::uint32_t level) const
    {
        return level < max_levels ? identified_at_[level] : 0;
    }
    std::uint64_t unidentifiedAt(std::uint32_t level) const
    {
        return level < max_levels ? unidentified_at_[level] : 0;
    }
    double coverageAt(std::uint32_t level) const;

    /** Fold another tracker's counts into this one. */
    void merge(const CoverageTracker &other);

    void reset();

    /**
     * Overwrite this tracker with externally stored counts (checkpoint
     * journal replay). Levels beyond the array lengths stay zero.
     */
    void restore(std::uint64_t identified, std::uint64_t unidentified,
                 const std::array<std::uint64_t, max_levels> &identified_at,
                 const std::array<std::uint64_t, max_levels> &unidentified_at);

  private:
    std::uint64_t identified_ = 0;
    std::uint64_t unidentified_ = 0;
    std::array<std::uint64_t, max_levels> identified_at_{};
    std::array<std::uint64_t, max_levels> unidentified_at_{};
};

} // namespace mnm

#endif // MNM_CORE_COVERAGE_HH
