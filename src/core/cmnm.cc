#include "core/cmnm.hh"

#include <algorithm>
#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

Cmnm::Cmnm(const CmnmSpec &spec) : spec_(spec)
{
    if (spec_.num_registers < 1 || spec_.num_registers > 64)
        fatal("CMNM num_registers %u out of range [1,64]",
              spec_.num_registers);
    if (spec_.table_index_bits < 1 || spec_.table_index_bits > 20)
        fatal("CMNM table_index_bits %u out of range [1,20]",
              spec_.table_index_bits);
    if (spec_.counter_bits < 1 || spec_.counter_bits > 8)
        fatal("CMNM counter_bits %u out of range [1,8]",
              spec_.counter_bits);
    saturation_ =
        static_cast<std::uint8_t>((1u << spec_.counter_bits) - 1);
    registers_.resize(spec_.num_registers);
    counters_.assign(static_cast<std::size_t>(spec_.num_registers)
                         << spec_.table_index_bits,
                     0);
}

int
Cmnm::bestMatch(std::uint64_t prefix) const
{
    int best = -1;
    for (std::uint32_t i = 0; i < registers_.size(); ++i) {
        if (!regMatches(registers_[i], prefix))
            continue;
        if (best < 0 ||
            registers_[i].widen <
                registers_[static_cast<std::uint32_t>(best)].widen) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::uint32_t
Cmnm::registerForPlacement(std::uint64_t prefix)
{
    int match = bestMatch(prefix);
    if (match >= 0)
        return static_cast<std::uint32_t>(match);

    // No register covers this region: allocate a free one at full
    // precision if possible.
    for (std::uint32_t i = 0; i < registers_.size(); ++i) {
        if (!registers_[i].valid) {
            registers_[i].valid = true;
            registers_[i].prefix = prefix;
            registers_[i].widen = 0;
            return i;
        }
    }

    // All registers busy: widen masks until one matches (paper: "mask
    // value for the registers are shifted left until a match is found").
    for (std::uint32_t w = 1; w <= 64; ++w) {
        for (std::uint32_t i = 0; i < registers_.size(); ++i) {
            VtagRegister &reg = registers_[i];
            std::uint32_t eff = std::max(reg.widen, w);
            if (shiftRight(prefix, eff) != shiftRight(reg.prefix, eff))
                continue;
            ++widenings_;
            if (spec_.policy == CmnmMaskPolicy::Monotone) {
                // Masks only widen; other registers keep theirs. This
                // preserves "a block's placement register still matches
                // at lookup", the soundness linchpin.
                reg.widen = std::max(reg.widen, eff);
            } else {
                // Literal paper behaviour: the matching register keeps
                // the widened mask, every other register resets.
                for (auto &other : registers_)
                    other.widen = 0;
                reg.widen = eff;
            }
            return i;
        }
    }
    panic("CMNM widening failed to converge");
}

void
Cmnm::stickyIncrement(std::size_t cell)
{
    std::uint8_t &c = counters_[cell];
    if (c < saturation_)
        ++c;
}

void
Cmnm::stickyDecrement(std::size_t cell)
{
    std::uint8_t &c = counters_[cell];
    if (c == saturation_)
        return; // sticky: untrustworthy count stays "maybe"
    if (c == 0) {
        ++anomalies_;
        return;
    }
    --c;
}

bool
Cmnm::missHot(BlockAddr block) const
{
    std::uint64_t prefix = prefixOf(block);
    if (spec_.policy == CmnmMaskPolicy::PaperReset) {
        // Literal semantics: the (first) matching register's counter
        // decides alone.
        int reg = bestMatch(prefix);
        if (reg < 0)
            return true;
        return counters_[cellIndex(static_cast<std::uint32_t>(reg),
                                   block)] == 0;
    }
    // Monotone: a nonzero counter under ANY matching register means the
    // block may be resident. No match at all, or all matching counters
    // zero, is a definite miss.
    for (std::uint32_t i = 0; i < registers_.size(); ++i) {
        if (regMatches(registers_[i], prefix) &&
            counters_[cellIndex(i, block)] != 0) {
            return false;
        }
    }
    return true;
}

void
Cmnm::placeHot(BlockAddr block)
{
    std::uint32_t reg = registerForPlacement(prefixOf(block));
    stickyIncrement(cellIndex(reg, block));
    if (spec_.policy == CmnmMaskPolicy::Monotone) {
        bool fresh = false;
        std::uint32_t &attached = placed_reg_.insert(block, fresh);
        if (!fresh) {
            // Double placement without replacement: warm-attach only.
            ++anomalies_;
        }
        attached = reg;
    }
}

void
Cmnm::replaceHot(BlockAddr block)
{
    if (spec_.policy == CmnmMaskPolicy::Monotone) {
        const std::uint32_t *attached = placed_reg_.find(block);
        if (!attached) {
            ++anomalies_;
            return;
        }
        stickyDecrement(cellIndex(*attached, block));
        placed_reg_.erase(block);
        return;
    }
    // PaperReset: decrement whichever register matches now; if the masks
    // moved since placement this may be the wrong counter -- the source
    // of the literal scheme's unsoundness, surfaced via the MnmUnit's
    // violation counter.
    int reg = bestMatch(prefixOf(block));
    if (reg < 0) {
        ++anomalies_;
        return;
    }
    stickyDecrement(cellIndex(static_cast<std::uint32_t>(reg), block));
}

void
Cmnm::onFlush()
{
    for (auto &reg : registers_)
        reg = VtagRegister();
    counters_.assign(counters_.size(), 0);
    placed_reg_.clear();
}

std::string
Cmnm::name() const
{
    std::ostringstream out;
    out << "CMNM_" << spec_.num_registers << "_" << spec_.table_index_bits;
    if (spec_.policy == CmnmMaskPolicy::PaperReset)
        out << "(paper-reset)";
    return out.str();
}

std::uint64_t
Cmnm::storageBits() const
{
    // Registers: prefix value + mask position; assume the paper's 32-bit
    // addresses => (32 - m) value bits + ~5 mask-position bits each.
    std::uint32_t prefix_bits =
        spec_.table_index_bits >= 32 ? 8 : 32 - spec_.table_index_bits;
    std::uint64_t reg_bits =
        static_cast<std::uint64_t>(spec_.num_registers) *
        (prefix_bits + 5);
    std::uint64_t table_bits = static_cast<std::uint64_t>(counters_.size()) *
                               spec_.counter_bits;
    return reg_bits + table_bits;
}

PowerDelay
Cmnm::power(const SramModel &sram, const CheckerModel &checker) const
{
    (void)checker;
    std::uint32_t prefix_bits =
        spec_.table_index_bits >= 32 ? 8 : 32 - spec_.table_index_bits;
    PowerDelay finder = sram.cam(spec_.num_registers, prefix_bits);
    // The table is organized as 2^m rows x (k * counter_bits) columns:
    // the m LSBs (available immediately) select the row in parallel with
    // the CAM match, whose virtual tag then muxes the column group. The
    // finder and table therefore overlap; only a way-mux is serial.
    // Reads are gated to the selected counter group (the vtag chooses
    // it), so only counter_bits columns are precharged/sensed.
    PowerDelay table =
        sram.table(std::uint64_t{1} << spec_.table_index_bits,
                   spec_.num_registers * spec_.counter_bits, 1,
                   spec_.counter_bits);
    PowerDelay pd;
    pd.read_energy_pj = finder.read_energy_pj + table.read_energy_pj;
    pd.write_energy_pj = finder.write_energy_pj + table.write_energy_pj;
    pd.access_ns = std::max(finder.access_ns, table.access_ns) + 0.05;
    pd.bits = finder.bits + table.bits;
    pd.leakage_mw = finder.leakage_mw + table.leakage_mw;
    return pd;
}

std::uint32_t
Cmnm::registersInUse() const
{
    std::uint32_t n = 0;
    for (const auto &reg : registers_) {
        if (reg.valid)
            ++n;
    }
    return n;
}

} // namespace mnm
