/**
 * @file
 * Double-buffered batch generation: the MNM_OVERLAP stage decoupling.
 *
 * The simulators consume a workload in batch units, and with the
 * batched kernels the profile reads generation nearly tied with the
 * hierarchy walk -- two stages serialized on one thread for no semantic
 * reason. A pipeline owns the generator's stream for one run and
 * produces batch N+1 while the simulator consumes batch N:
 *
 *  - With a second hardware thread available, a producer thread fills
 *    the idle half of a two-slot buffer ring and hands full slots over
 *    a mutex/condvar pair (the classic bounded buffer, depth 2).
 *  - On a single hardware thread a producer thread could only
 *    timeshare, so the pipeline degrades to an interleaved
 *    software-pipelined slice: acquire() generates a small slice
 *    synchronously, which keeps the slice resident in the host's L1
 *    while the simulator consumes it (a full batch does not survive
 *    the generate->consume round trip).
 *
 * Either way the generator runs the exact slice sequence that
 * sequential fills would run, so the RNG draw sequence -- the stream
 * identity every byte-diff gate rests on -- is preserved bit for bit.
 * stream_identity_test proves it per workload; the MNM_OVERLAP=off|on
 * CI byte-diff proves it end to end.
 *
 * Two concrete pipelines share the engine: BatchPipeline hands over
 * Instruction records (the single-step simulators), RequestPipeline
 * hands over the derived request stream (the batch-verdict path),
 * fusing generation with stage-1 request derivation so the
 * InstructionBatch intermediate never exists.
 */

#ifndef MNM_TRACE_BATCH_PIPELINE_HH
#define MNM_TRACE_BATCH_PIPELINE_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "trace/instruction.hh"
#include "trace/request_batch.hh"
#include "trace/workload.hh"

namespace mnm
{

/**
 * The resolved MNM_OVERLAP knob: strict "off"/"on" (fatal on anything
 * else), on when unset, latched at first call. Simulators read it once
 * at construction; tests override per instance instead of racing the
 * latch.
 */
bool overlapFromEnv();

/** How a pipeline produces: pick by core count, or force one producer
 *  for tests (the threaded handoff must be provable even on a
 *  single-core host, where Auto would never select it). */
enum class PipelineMode
{
    Auto,
    Threaded,
    Sliced,
};

/**
 * The bounded-buffer engine behind both pipelines. Construction takes
 * exclusive ownership of the workload's stream until destruction:
 * exactly @p budget instructions are drawn (in fill() slices), and
 * nothing else may touch the generator in between.
 *
 * Lifecycle contract for derived classes: call start() at the end of
 * the derived constructor (fill() is virtual and the producer thread
 * calls it immediately) and shutdown() at the start of the derived
 * destructor (so the thread is joined while the derived object is
 * still alive).
 */
template <typename BatchT>
class PipelineBase
{
  public:
    PipelineBase(const PipelineBase &) = delete;
    PipelineBase &operator=(const PipelineBase &) = delete;

    /**
     * The next filled batch, blocking on the producer when it is
     * behind; nullptr once the budget is exhausted. The batch stays
     * valid until the next acquire() call (which recycles its slot).
     * Rethrows any exception the producer thread hit.
     */
    const BatchT *
    acquire()
    {
        if (!producer_.joinable()) {
            // Slice mode: synchronous generation, one slice per call.
            if (remaining_ == 0)
                return nullptr;
            BatchT &batch = *slots_[0];
            remaining_ -= fill(
                batch, std::min<std::uint64_t>(remaining_, slice_));
            return &batch;
        }

        std::unique_lock<std::mutex> lock(mutex_);
        if (held_slot_ >= 0) {
            filled_[held_slot_] = false;
            held_slot_ = -1;
            lock.unlock();
            slot_freed_.notify_one();
            lock.lock();
        }
        std::size_t slot = consume_slot_;
        slot_filled_.wait(
            lock, [&] { return filled_[slot] || producer_done_; });
        if (producer_error_)
            std::rethrow_exception(producer_error_);
        if (!filled_[slot])
            return nullptr; // budget exhausted
        held_slot_ = static_cast<int>(slot);
        consume_slot_ = slot ^ 1;
        return slots_[slot].get();
    }

    /** True when acquire() generates synchronously (the single-thread
     *  slice mode): callers then charge the time to batch generation,
     *  not to overlap wait. */
    bool synchronous() const { return !producer_.joinable(); }

  protected:
    PipelineBase(std::uint64_t budget, PipelineMode mode,
                 std::uint64_t slice)
        : remaining_(budget), slice_(slice)
    {
        slots_[0] = std::make_unique<BatchT>();
        // hardware_concurrency() is 0 when unknown; treat unknown like
        // a single thread -- the slice mode is correct everywhere and
        // a producer thread only pays off with a core to run on.
        threaded_ = mode == PipelineMode::Threaded ||
                    (mode == PipelineMode::Auto &&
                     std::thread::hardware_concurrency() >= 2);
        if (threaded_)
            slots_[1] = std::make_unique<BatchT>();
    }

    virtual ~PipelineBase()
    {
        // shutdown() must already have run (derived dtor); this is the
        // backstop for a derived class that forgot.
        shutdown();
    }

    /** Spawn the producer (thread mode). Must be the last statement of
     *  the derived constructor. */
    void
    start()
    {
        if (threaded_)
            producer_ = std::thread(&PipelineBase::producerLoop, this);
    }

    /** Stop and join the producer. Must be the first statement of the
     *  derived destructor; idempotent. */
    void
    shutdown()
    {
        if (producer_.joinable()) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                stop_ = true;
            }
            slot_freed_.notify_all();
            producer_.join();
        }
    }

    /**
     * Generate up to @p max_instructions of the stream into @p batch.
     * @return instructions consumed (> 0). Called by the producer
     * thread in thread mode, by acquire() in slice mode -- never
     * concurrently with itself.
     */
    virtual std::uint64_t fill(BatchT &batch,
                               std::uint64_t max_instructions) = 0;

  private:
    void
    producerLoop()
    {
        // The producer owns the generator between handoffs: it draws
        // the same slice sequence the synchronous loop would, filling
        // the free slot while the consumer chews the other one.
        try {
            std::size_t slot = 0;
            while (true) {
                std::unique_lock<std::mutex> lock(mutex_);
                slot_freed_.wait(
                    lock, [&] { return stop_ || !filled_[slot]; });
                if (stop_ || remaining_ == 0)
                    break;
                lock.unlock();
                BatchT &batch = *slots_[slot];
                const std::uint64_t consumed = fill(batch, remaining_);
                lock.lock();
                remaining_ -= consumed;
                filled_[slot] = true;
                const bool exhausted = remaining_ == 0;
                lock.unlock();
                slot_filled_.notify_one();
                if (exhausted)
                    break;
                slot = slot ^ 1;
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            producer_error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            producer_done_ = true;
        }
        slot_filled_.notify_all();
    }

    std::uint64_t remaining_;
    const std::uint64_t slice_;
    bool threaded_ = false;

    /** Two slots in thread mode; slot 0 only in slice mode. */
    std::unique_ptr<BatchT> slots_[2];

    // Bounded-buffer state, all guarded by mutex_. filled_[i] means
    // slot i holds an unconsumed batch; the producer parks when both
    // are filled, the consumer when its next slot is empty.
    std::mutex mutex_;
    std::condition_variable slot_filled_;
    std::condition_variable slot_freed_;
    bool filled_[2] = {false, false};
    bool producer_done_ = false;
    bool stop_ = false;
    std::exception_ptr producer_error_;

    /** Next slot acquire() hands out (thread mode). */
    std::size_t consume_slot_ = 0;
    /** Slot handed out by the previous acquire(), to recycle. */
    int held_slot_ = -1;

    std::thread producer_;
};

/** Instruction-record pipeline (the single-step/reference consumers).
 *  The slice is a full batch: the step loop reads each record once
 *  straight after generation, so smaller slices only add per-slice
 *  overhead. */
class BatchPipeline final : public PipelineBase<InstructionBatch>
{
  public:
    BatchPipeline(WorkloadGenerator &workload, std::uint64_t budget,
                  PipelineMode mode = PipelineMode::Auto)
        : PipelineBase(budget, mode, InstructionBatch::capacity),
          workload_(workload)
    {
        start();
    }
    ~BatchPipeline() override { shutdown(); }

  private:
    std::uint64_t
    fill(InstructionBatch &batch,
         std::uint64_t max_instructions) override
    {
        workload_.nextBatch(
            batch, static_cast<std::size_t>(std::min<std::uint64_t>(
                       max_instructions, InstructionBatch::capacity)));
        return batch.size;
    }

    WorkloadGenerator &workload_;
};

/** Derived-request pipeline (the batch-verdict path): generation and
 *  stage-1 request derivation fused in the producer, so the handoff
 *  unit is the request stream itself. Borrows the simulator's
 *  fetch-dedup state for the pipeline's lifetime (the producer is its
 *  only toucher until destruction). */
class RequestPipeline final : public PipelineBase<RequestBatch>
{
  public:
    /** Single-thread mode: instructions per software-pipelined slice.
     *  Small enough that a slice's request arrays sit in the host's L1
     *  across the generate->consume handoff; large enough that
     *  per-slice overheads stay amortized. */
    static constexpr std::uint64_t slice_instructions = 512;

    RequestPipeline(WorkloadGenerator &workload, FetchDedup &dedup,
                    std::uint64_t budget,
                    PipelineMode mode = PipelineMode::Auto)
        : PipelineBase(budget, mode, slice_instructions),
          workload_(workload), dedup_(dedup)
    {
        start();
    }
    ~RequestPipeline() override { shutdown(); }

  private:
    std::uint64_t
    fill(RequestBatch &batch, std::uint64_t max_instructions) override
    {
        workload_.nextRequests(
            batch, dedup_,
            static_cast<std::size_t>(std::min<std::uint64_t>(
                max_instructions, InstructionBatch::capacity)));
        return batch.instructions;
    }

    WorkloadGenerator &workload_;
    FetchDedup &dedup_;
};

} // namespace mnm

#endif // MNM_TRACE_BATCH_PIPELINE_HH
