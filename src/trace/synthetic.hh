/**
 * @file
 * Parameterized synthetic workload generator.
 *
 * Stands in for the paper's SPEC2000 binaries (DESIGN.md "Paper -> our
 * substitutions"). A workload is a mixture of data "regions", each with
 * its own footprint and access pattern, plus a code-footprint model that
 * drives the instruction-fetch stream (loops of varying size separated
 * by jumps across the code footprint). All randomness is drawn from an
 * explicitly seeded stream, so every named workload is a deterministic,
 * restartable trace.
 *
 * The patterns:
 *   Sequential    streaming walk with a fixed stride (wraps)
 *   RandomUniform independent uniform draws over the footprint
 *   PointerChase  an LCG walk: serially dependent, locality-free
 *   HotCold       a small hot subset absorbs most accesses
 */

#ifndef MNM_TRACE_SYNTHETIC_HH
#define MNM_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.hh"
#include "util/fastdiv.hh"

namespace mnm
{

/** Data-region access pattern. */
enum class RegionPattern
{
    Sequential,
    RandomUniform,
    PointerChase,
    HotCold,
};

/** One data region of a synthetic workload. */
struct RegionParams
{
    /** Relative probability of an access landing in this region. */
    double weight = 1.0;
    std::uint64_t footprint_bytes = 64 * 1024;
    RegionPattern pattern = RegionPattern::Sequential;
    /** Stride for Sequential, access granule otherwise. */
    std::uint32_t stride = 8;
    /** HotCold: fraction of the footprint that is hot. */
    double hot_fraction = 0.1;
    /** HotCold: probability an access goes to the hot subset. */
    double hot_probability = 0.9;
    /** Mean consecutive accesses before re-drawing the region. */
    double dwell = 8.0;
};

/** Full description of a synthetic workload. */
struct SyntheticParams
{
    std::string name = "synthetic";
    /** Instruction mix; the remainder is plain ALU work. */
    double load_frac = 0.25;
    double store_frac = 0.10;
    double branch_frac = 0.12;
    /** Fraction of non-memory, non-branch work that is FP. */
    double fp_frac = 0.0;
    /** Probability a branch is mispredicted by the front end. */
    double mispredict_rate = 0.05;
    /** Mean producer-consumer distance for register dependences. */
    double dep_dist_mean = 6.0;
    /**
     * Probability a data access re-touches one of the last few
     * addresses instead of generating a fresh one -- the short-range
     * temporal locality (stack slots, loop-carried scalars) that real
     * programs have on top of their region-level patterns.
     */
    double temporal_reuse = 0.55;

    /** Code layout: total text size and typical loop behaviour. */
    std::uint64_t code_footprint_bytes = 64 * 1024;
    std::uint64_t loop_body_bytes_mean = 256;
    double loop_iterations_mean = 32.0;

    std::vector<RegionParams> regions;
    std::uint64_t seed = 42;
};

/** The generator. */
class SyntheticWorkload : public WorkloadGenerator
{
  public:
    explicit SyntheticWorkload(const SyntheticParams &params);

    void next(Instruction &out) override;
    void nextBatch(InstructionBatch &batch, std::size_t max) override;
    void nextRequests(RequestBatch &batch, FetchDedup &dedup,
                      std::size_t max) override;
    void reset() override;
    std::string name() const override { return params_.name; }

    const SyntheticParams &params() const { return params_; }

  private:
    struct RegionState
    {
        Addr base = 0;
        std::uint64_t cursor = 0;   //!< Sequential position
        std::uint64_t chase = 1;    //!< PointerChase LCG state
    };

    /** Per-region constants hoisted out of dataAddress(): the modulo
     *  reductions there sit on the batch pipeline's hottest edge. All
     *  draws stay bit-identical -- FastMod is an exact remainder and
     *  the wrap-by-subtract shortcut only applies when the cursor can
     *  never exceed twice the footprint. */
    struct RegionFast
    {
        FastMod footprint;             //!< modulo by footprint_bytes
        FastMod hot;                   //!< modulo by hot_bytes
        std::uint64_t hot_bytes = 64;  //!< HotCold hot-subset size
        std::uint64_t hot_thr = 0;     //!< boolThreshold(hot_probability)
        bool wrap_by_subtract = false; //!< stride <= footprint
    };

    Addr dataAddress(Rng &rng);
    void startLoop(Rng &rng);
    /** The generation kernel behind next()/nextBatch()/nextRequests():
     *  draws @p n instructions from @p rng and hands each to
     *  @p sink(pc, cls, mem_addr, dep1, dep2, exec_latency,
     *  mispredicted). Hot scalar state (the rng, the pc walk) lives in
     *  locals for the whole run so it stays in registers. The sink
     *  only observes -- every draw happens unconditionally in next()'s
     *  exact order, so the record and request producers share one
     *  stream. deps_used=false elides the dependence-distance table
     *  walks (their draws still happen; only the discarded value
     *  computation goes) for sinks that never read dep1/dep2. */
    template <bool deps_used, typename Sink>
    void generateLoop(Rng &rng, std::size_t n, Sink &&sink);
    /** generateLoop with the record-writing sink (next()/nextBatch()). */
    void generateRun(Rng &rng, Instruction *out, std::size_t n);

    SyntheticParams params_;
    Rng rng_;
    std::vector<RegionState> regions_;
    std::vector<RegionFast> region_fast_;
    double total_weight_ = 0.0;
    /** boolThreshold(temporal_reuse): integer form of the per-data-op
     *  reuse draw (see Rng::boolThreshold; same stream). */
    std::uint64_t temporal_thr_ = 0;

    /** Current region and remaining dwell. */
    std::size_t active_region_ = 0;
    std::uint64_t dwell_left_ = 0;

    /** Recent-address ring for temporal reuse. */
    static constexpr std::size_t reuse_depth = 16;
    Addr recent_[reuse_depth] = {};
    std::size_t recent_count_ = 0;
    std::size_t recent_pos_ = 0;

    /** Code walk state. */
    Addr code_base_ = 0x00100000;
    Addr loop_start_ = 0;
    std::uint64_t loop_bytes_ = 0;
    std::uint64_t loop_iters_left_ = 0;
    Addr pc_ = 0;
};

} // namespace mnm

#endif // MNM_TRACE_SYNTHETIC_HH
