/**
 * @file
 * The twenty named synthetic workloads standing in for the paper's
 * SPEC2000 selection (10 integer + 10 floating point).
 *
 * Parameters are tuned so the per-level hit-rate profiles of the paper's
 * 5-level hierarchy span the same qualitative range as paper Table 2:
 * tight-loop apps that live in L1/L2, medium-footprint apps that stress
 * L3/L4, and pointer-chasing / huge-footprint apps (the mcf/art
 * analogues) that spill past L5 into memory. Absolute rates will differ
 * from the real binaries; see DESIGN.md "Paper -> our substitutions".
 */

#ifndef MNM_TRACE_SPEC2000_HH
#define MNM_TRACE_SPEC2000_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace mnm
{

/** The ten integer workload names (SPEC CINT2000 style). */
const std::vector<std::string> &specIntNames();

/** The ten floating-point workload names (SPEC CFP2000 style). */
const std::vector<std::string> &specFpNames();

/** All twenty names, integer first. */
const std::vector<std::string> &specAllNames();

/** Parameters of the named workload (fatal on unknown name). */
SyntheticParams specWorkloadParams(const std::string &name);

/** Convenience: construct the generator for a named workload. */
std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const std::string &name);

} // namespace mnm

#endif // MNM_TRACE_SPEC2000_HH
