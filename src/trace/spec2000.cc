#include "trace/spec2000.hh"

#include "util/logging.hh"

namespace mnm
{

namespace
{

constexpr std::uint64_t kB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/** Shorthand region constructors. */
RegionParams
seq(double weight, std::uint64_t footprint, std::uint32_t stride = 8,
    double dwell = 16.0)
{
    RegionParams r;
    r.weight = weight;
    r.footprint_bytes = footprint;
    r.pattern = RegionPattern::Sequential;
    r.stride = stride;
    r.dwell = dwell;
    return r;
}

RegionParams
rnd(double weight, std::uint64_t footprint, double dwell = 6.0)
{
    RegionParams r;
    r.weight = weight;
    r.footprint_bytes = footprint;
    r.pattern = RegionPattern::RandomUniform;
    r.dwell = dwell;
    return r;
}

RegionParams
chase(double weight, std::uint64_t footprint, std::uint32_t stride = 32,
      double dwell = 24.0)
{
    RegionParams r;
    r.weight = weight;
    r.footprint_bytes = footprint;
    r.pattern = RegionPattern::PointerChase;
    r.stride = stride;
    r.dwell = dwell;
    return r;
}

RegionParams
hot(double weight, std::uint64_t footprint, double hot_frac,
    double hot_prob, double dwell = 8.0)
{
    RegionParams r;
    r.weight = weight;
    r.footprint_bytes = footprint;
    r.pattern = RegionPattern::HotCold;
    r.hot_fraction = hot_frac;
    r.hot_probability = hot_prob;
    r.dwell = dwell;
    return r;
}

/** Base mixes: integer-style and FP-style instruction blends. */
SyntheticParams
intBase(const std::string &name, std::uint64_t seed)
{
    SyntheticParams p;
    p.name = name;
    p.load_frac = 0.26;
    p.store_frac = 0.11;
    p.branch_frac = 0.16;
    p.fp_frac = 0.0;
    p.mispredict_rate = 0.06;
    p.dep_dist_mean = 5.0;
    p.code_footprint_bytes = 48 * kB;
    p.loop_body_bytes_mean = 192;
    p.loop_iterations_mean = 24.0;
    p.seed = seed;
    return p;
}

SyntheticParams
fpBase(const std::string &name, std::uint64_t seed)
{
    SyntheticParams p;
    p.name = name;
    p.load_frac = 0.30;
    p.store_frac = 0.12;
    p.branch_frac = 0.05;
    p.fp_frac = 0.6;
    p.mispredict_rate = 0.02;
    p.dep_dist_mean = 8.0;
    p.code_footprint_bytes = 24 * kB;
    p.loop_body_bytes_mean = 512;
    p.loop_iterations_mean = 200.0;
    p.seed = seed;
    return p;
}

} // anonymous namespace

const std::vector<std::string> &
specIntNames()
{
    static const std::vector<std::string> names = {
        "164.gzip",    "175.vpr",    "176.gcc",    "181.mcf",
        "186.crafty",  "197.parser", "252.eon",    "253.perlbmk",
        "255.vortex",  "300.twolf"};
    return names;
}

const std::vector<std::string> &
specFpNames()
{
    static const std::vector<std::string> names = {
        "168.wupwise", "171.swim",   "172.mgrid",  "173.applu",
        "177.mesa",    "179.art",    "183.equake", "188.ammp",
        "200.sixtrack", "301.apsi"};
    return names;
}

const std::vector<std::string> &
specAllNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = specIntNames();
        const auto &fp = specFpNames();
        all.insert(all.end(), fp.begin(), fp.end());
        return all;
    }();
    return names;
}

SyntheticParams
specWorkloadParams(const std::string &name)
{
    // --- integer suite ---------------------------------------------
    if (name == "164.gzip") {
        // Compression: streaming input + hot hash tables.
        SyntheticParams p = intBase(name, 164);
        p.regions = {seq(0.55, 1 * MB, 8, 32.0),
                     hot(0.45, 192 * kB, 0.04, 0.85)};
        return p;
    }
    if (name == "175.vpr") {
        // Place & route: medium random graph structure.
        SyntheticParams p = intBase(name, 175);
        p.regions = {rnd(0.5, 320 * kB), chase(0.3, 96 * kB),
                     hot(0.2, 24 * kB, 0.2, 0.9)};
        return p;
    }
    if (name == "176.gcc") {
        // Compiler: big code footprint, spread-out data.
        SyntheticParams p = intBase(name, 176);
        p.code_footprint_bytes = 640 * kB;
        p.loop_iterations_mean = 6.0;
        p.regions = {hot(0.5, 448 * kB, 0.08, 0.7), rnd(0.3, 1 * MB),
                     seq(0.2, 128 * kB)};
        return p;
    }
    if (name == "181.mcf") {
        // Network simplex: pointer chasing over a huge arena.
        SyntheticParams p = intBase(name, 181);
        p.temporal_reuse = 0.35;
        p.load_frac = 0.32;
        p.dep_dist_mean = 3.0;
        p.regions = {chase(0.7, 6 * MB, 32, 48.0), rnd(0.2, 3 * MB),
                     hot(0.1, 16 * kB, 0.25, 0.9)};
        return p;
    }
    if (name == "186.crafty") {
        // Chess: hot board state, branchy.
        SyntheticParams p = intBase(name, 186);
        p.branch_frac = 0.2;
        p.mispredict_rate = 0.08;
        p.regions = {hot(0.7, 96 * kB, 0.15, 0.92),
                     rnd(0.3, 2816 * kB, 4.0)};
        return p;
    }
    if (name == "197.parser") {
        // Dictionary chasing with a hot dictionary head.
        SyntheticParams p = intBase(name, 197);
        p.regions = {chase(0.45, 640 * kB, 32), hot(0.4, 48 * kB, 0.2, 0.9),
                     rnd(0.15, 1536 * kB)};
        return p;
    }
    if (name == "252.eon") {
        // C++ ray tracing: small working set, well-behaved.
        SyntheticParams p = intBase(name, 252);
        p.fp_frac = 0.3;
        p.regions = {hot(0.75, 24 * kB, 0.12, 0.95, 16.0),
                     seq(0.25, 96 * kB)};
        return p;
    }
    if (name == "253.perlbmk") {
        // Interpreter: big code, hash-heavy data.
        SyntheticParams p = intBase(name, 253);
        p.code_footprint_bytes = 384 * kB;
        p.loop_iterations_mean = 10.0;
        p.regions = {hot(0.5, 320 * kB, 0.1, 0.8), rnd(0.35, 896 * kB),
                     seq(0.15, 64 * kB)};
        return p;
    }
    if (name == "255.vortex") {
        // OO database: large mixed footprint.
        SyntheticParams p = intBase(name, 255);
        p.code_footprint_bytes = 256 * kB;
        p.regions = {rnd(0.45, 1408 * kB), chase(0.25, 384 * kB),
                     hot(0.3, 96 * kB, 0.12, 0.85)};
        return p;
    }
    if (name == "300.twolf") {
        // Standard-cell place/route: modest footprint, high locality.
        SyntheticParams p = intBase(name, 300);
        p.regions = {hot(0.55, 56 * kB, 0.25, 0.9), chase(0.3, 160 * kB),
                     rnd(0.15, 448 * kB)};
        return p;
    }

    // --- floating-point suite --------------------------------------
    if (name == "168.wupwise") {
        // Lattice QCD: long unit-stride sweeps.
        SyntheticParams p = fpBase(name, 168);
        p.regions = {seq(0.6, 2 * MB, 8, 64.0), seq(0.25, 768 * kB, 8),
                     hot(0.15, 16 * kB, 0.4, 0.95)};
        return p;
    }
    if (name == "171.swim") {
        // Shallow water: several big streamed grids; spills L5.
        SyntheticParams p = fpBase(name, 171);
        p.temporal_reuse = 0.45;
        p.regions = {seq(0.4, 3 * MB, 8, 96.0), seq(0.35, 3 * MB, 8, 96.0),
                     seq(0.25, 1536 * kB, 8, 96.0)};
        return p;
    }
    if (name == "172.mgrid") {
        // Multigrid: strided sweeps at multiple granularities.
        SyntheticParams p = fpBase(name, 172);
        p.regions = {seq(0.45, 1 * MB, 8, 64.0), seq(0.3, 1 * MB, 64, 32.0),
                     seq(0.25, 256 * kB, 8)};
        return p;
    }
    if (name == "173.applu") {
        // SSOR solver: blocked strided access over a big grid.
        SyntheticParams p = fpBase(name, 173);
        p.regions = {seq(0.5, 2560 * kB, 8, 64.0),
                     seq(0.3, 640 * kB, 128, 16.0),
                     hot(0.2, 96 * kB, 0.2, 0.85)};
        return p;
    }
    if (name == "177.mesa") {
        // Software rendering: hot state + streamed framebuffer.
        SyntheticParams p = fpBase(name, 177);
        p.branch_frac = 0.1;
        p.regions = {hot(0.5, 64 * kB, 0.3, 0.92), seq(0.5, 1 * MB, 8)};
        return p;
    }
    if (name == "179.art") {
        // Neural net: repeated full sweeps of weights > L5.
        SyntheticParams p = fpBase(name, 179);
        p.temporal_reuse = 0.40;
        p.load_frac = 0.34;
        p.regions = {seq(0.55, 5 * MB, 8, 128.0), rnd(0.35, 4 * MB),
                     hot(0.1, 8 * kB, 0.5, 0.95)};
        return p;
    }
    if (name == "183.equake") {
        // FEM: sparse matrix (indirect) + sequential vectors.
        SyntheticParams p = fpBase(name, 183);
        p.regions = {chase(0.35, 1536 * kB, 32), seq(0.4, 1 * MB, 8),
                     hot(0.25, 48 * kB, 0.25, 0.9)};
        return p;
    }
    if (name == "188.ammp") {
        // Molecular dynamics: neighbour lists, scattered.
        SyntheticParams p = fpBase(name, 188);
        p.temporal_reuse = 0.50;
        p.regions = {rnd(0.45, 1 * MB), chase(0.3, 512 * kB, 32),
                     seq(0.25, 384 * kB)};
        return p;
    }
    if (name == "200.sixtrack") {
        // Particle tracking: tight kernels over a near-L1-resident
        // state block (the suite's "lives in L1" anchor).
        SyntheticParams p = fpBase(name, 200);
        p.regions = {hot(0.88, 12 * kB, 0.2, 0.97, 32.0),
                     seq(0.12, 64 * kB, 8, 24.0)};
        return p;
    }
    if (name == "301.apsi") {
        // Meteorology: large code with big loops (the paper notes the
        // L2-I pressure), strided grids.
        SyntheticParams p = fpBase(name, 301);
        p.code_footprint_bytes = 512 * kB;
        p.loop_body_bytes_mean = 2048;
        p.loop_iterations_mean = 12.0;
        p.regions = {seq(0.5, 768 * kB, 8, 48.0), seq(0.3, 192 * kB, 64),
                     rnd(0.2, 1280 * kB)};
        return p;
    }

    fatal("unknown SPEC2000-like workload '%s'", name.c_str());
}

std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const std::string &name)
{
    return std::make_unique<SyntheticWorkload>(specWorkloadParams(name));
}

} // namespace mnm
