/**
 * @file
 * Binary trace serialization.
 *
 * Lets a generated instruction stream be captured once and replayed
 * byte-identically (e.g. to hand the exact same trace to multiple
 * simulator configurations, or to archive a workload). The format is a
 * fixed 24-byte little-endian record per instruction with a small
 * header carrying a magic, a version, and the workload name.
 */

#ifndef MNM_TRACE_TRACE_IO_HH
#define MNM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace mnm
{

/** Writes instruction records to a trace file. */
class TraceWriter
{
  public:
    /** Opens @p path for writing (fatal on failure). */
    TraceWriter(const std::string &path, const std::string &workload_name);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const Instruction &inst);

    /** Capture @p count instructions from @p gen. */
    void capture(WorkloadGenerator &gen, std::uint64_t count);

    std::uint64_t written() const { return written_; }

  private:
    std::FILE *file_;
    std::uint64_t written_ = 0;
};

/** Replays a trace file as a WorkloadGenerator (cycles at EOF). */
class TraceReader : public WorkloadGenerator
{
  public:
    /** Loads the whole trace into memory (fatal on bad file). */
    explicit TraceReader(const std::string &path);

    void next(Instruction &out) override;
    void nextBatch(InstructionBatch &batch, std::size_t max) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

    std::uint64_t length() const { return trace_.size(); }

  private:
    std::vector<Instruction> trace_;
    std::string name_;
    std::size_t pos_ = 0;
};

} // namespace mnm

#endif // MNM_TRACE_TRACE_IO_HH
