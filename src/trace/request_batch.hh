/**
 * @file
 * The derived memory-request stream, batched.
 *
 * The batch-verdict simulators never consume Instruction records
 * directly: their stage 1 reduces each batch to an ordered request
 * stream (one InstFetch per L1I-line change of the pc walk plus one
 * Load/Store per memory instruction) and every later stage works on
 * that. A RequestBatch is that stream as a first-class unit, so
 * generators can produce it directly -- fusing generation and
 * derivation kills a full InstructionBatch write+read round trip per
 * batch (128KB that served only as an intermediate), and the overlap
 * pipeline can hand whole request batches across the producer thread
 * boundary.
 *
 * Derivation is a pure function of the instruction sequence and the
 * L1I block size, so a fused producer emits exactly the requests the
 * two-step path derives: same stream, same counts, same bytes out.
 */

#ifndef MNM_TRACE_REQUEST_BATCH_HH
#define MNM_TRACE_REQUEST_BATCH_HH

#include <cstddef>
#include <cstdint>

#include "trace/instruction.hh"
#include "util/types.hh"

namespace mnm
{

/** Request kind, the wire form of sim AccessType (same values). */
enum class RequestKind : std::uint8_t
{
    InstFetch,
    Load,
    Store,
};

/**
 * One generation window's ordered request stream, SoA (the verdict
 * kernels read contiguous address spans). Worst case every instruction
 * changes its fetch line and touches memory: two requests each.
 */
struct RequestBatch
{
    static constexpr std::size_t capacity = 2 * InstructionBatch::capacity;

    Addr addr[capacity];
    std::uint8_t kind[capacity];
    /** Valid requests in this batch. */
    std::size_t size = 0;
    /** Instructions this batch covers (always > 0 after a fill). */
    std::uint64_t instructions = 0;
    /** How many of size are InstFetch / Load+Store (the simulators
     *  report both totals). */
    std::uint64_t fetch_requests = 0;
    std::uint64_t data_requests = 0;

    void
    clear()
    {
        size = 0;
        instructions = 0;
        fetch_requests = 0;
        data_requests = 0;
    }
};

/**
 * Fetch-line dedup state threaded through derivation: the last L1I
 * block the pc stream touched. Owned by the simulator (it is warm
 * run-to-run state), borrowed by whoever derives.
 */
struct FetchDedup
{
    unsigned block_bits = 0;
    Addr cur_line = invalid_addr;
};

/** Append one instruction's requests to @p out (the canonical
 *  derivation step; every producer of RequestBatch goes through this
 *  so the streams cannot drift apart). */
inline void
deriveInstruction(RequestBatch &out, FetchDedup &dedup, Addr pc,
                  InstClass cls, Addr mem_addr)
{
    const Addr line = pc >> dedup.block_bits;
    if (line != dedup.cur_line) {
        dedup.cur_line = line;
        ++out.fetch_requests;
        out.kind[out.size] =
            static_cast<std::uint8_t>(RequestKind::InstFetch);
        out.addr[out.size] = pc;
        ++out.size;
    }
    if (cls == InstClass::Load || cls == InstClass::Store) {
        ++out.data_requests;
        out.kind[out.size] = static_cast<std::uint8_t>(
            cls == InstClass::Load ? RequestKind::Load
                                   : RequestKind::Store);
        out.addr[out.size] = mem_addr;
        ++out.size;
    }
    ++out.instructions;
}

/** Reduce a whole InstructionBatch (the fallback for generators with
 *  no fused producer). */
inline void
deriveRequests(RequestBatch &out, FetchDedup &dedup,
               const InstructionBatch &batch)
{
    for (const Instruction &inst : batch)
        deriveInstruction(out, dedup, inst.pc, inst.cls, inst.mem_addr);
}

} // namespace mnm

#endif // MNM_TRACE_REQUEST_BATCH_HH
