/**
 * @file
 * The workload-generator interface plus two simple implementations used
 * heavily by the tests: a scripted (replay) workload and a uniformly
 * random address stream.
 */

#ifndef MNM_TRACE_WORKLOAD_HH
#define MNM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "trace/instruction.hh"
#include "trace/request_batch.hh"
#include "util/random.hh"

namespace mnm
{

/** A deterministic, restartable stream of dynamic instructions. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Produce the next instruction into @p out. */
    virtual void next(Instruction &out) = 0;

    /**
     * Fill @p batch with the next min(@p max, capacity) instructions
     * of the stream -- the exact sequence @p max calls of next() would
     * produce, through a single virtual call. The base implementation
     * loops next(); generators override it with a tight non-virtual
     * loop so the simulators' inner loops stay dispatch-free.
     */
    virtual void nextBatch(InstructionBatch &batch, std::size_t max);

    /**
     * Fill @p batch with the request stream of the next
     * min(@p max, InstructionBatch::capacity) instructions: exactly
     * what deriving a nextBatch() fill through @p dedup would produce
     * (the base implementation does precisely that, via a lazily
     * allocated scratch batch). Generators override it with a fused
     * generate+derive loop that never materializes the Instruction
     * records; the RNG draw sequence is identical either way, so the
     * two paths are byte-interchangeable mid-stream.
     */
    virtual void nextRequests(RequestBatch &batch, FetchDedup &dedup,
                              std::size_t max);

    /** Restart the stream from the beginning (same sequence again). */
    virtual void reset() = 0;

    /** Display name (the SPEC-like label for synthetic workloads). */
    virtual std::string name() const = 0;

  private:
    /** Scratch for the base nextRequests(); heap, 128KB. */
    std::unique_ptr<InstructionBatch> derive_scratch_;
};

/** Replays a fixed vector of instructions, cycling at the end. */
class ScriptedWorkload : public WorkloadGenerator
{
  public:
    explicit ScriptedWorkload(std::vector<Instruction> script,
                              std::string name = "scripted");

    void next(Instruction &out) override;
    void nextBatch(InstructionBatch &batch, std::size_t max) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

    std::size_t length() const { return script_.size(); }

  private:
    std::vector<Instruction> script_;
    std::string name_;
    std::size_t pos_ = 0;
};

/**
 * Memoryless random workload: uniform loads/stores over a footprint.
 * Primarily a property-test fuzzer and a worst-case locality baseline.
 */
class UniformRandomWorkload : public WorkloadGenerator
{
  public:
    UniformRandomWorkload(std::uint64_t footprint_bytes, double load_frac,
                          double store_frac, std::uint64_t seed = 1);

    void next(Instruction &out) override;
    void nextBatch(InstructionBatch &batch, std::size_t max) override;
    void reset() override;
    std::string name() const override { return "uniform-random"; }

  private:
    std::uint64_t footprint_;
    double load_frac_;
    double store_frac_;
    std::uint64_t seed_;
    Rng rng_;
    Addr pc_ = 0x00100000;
};

} // namespace mnm

#endif // MNM_TRACE_WORKLOAD_HH
