#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace mnm
{

namespace
{

constexpr char trace_magic[8] = {'M', 'N', 'M', 'T', 'R', 'C', '0', '1'};
constexpr std::size_t name_field = 64;

/** On-disk record layout (packed little-endian, 24 bytes). */
struct RawRecord
{
    std::uint64_t pc;
    std::uint64_t mem_addr;
    std::uint16_t dep1;
    std::uint16_t dep2;
    std::uint8_t cls;
    std::uint8_t exec_latency;
    std::uint8_t mispredicted;
    std::uint8_t pad;
};
static_assert(sizeof(RawRecord) == 24, "trace record must be 24 bytes");

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &workload_name)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    char name_buf[name_field] = {};
    std::strncpy(name_buf, workload_name.c_str(), name_field - 1);
    if (std::fwrite(trace_magic, sizeof(trace_magic), 1, file_) != 1 ||
        std::fwrite(name_buf, name_field, 1, file_) != 1) {
        fatal("failed writing trace header to '%s'", path.c_str());
    }
}

TraceWriter::~TraceWriter()
{
    std::fclose(file_);
}

void
TraceWriter::append(const Instruction &inst)
{
    RawRecord raw;
    raw.pc = inst.pc;
    raw.mem_addr = inst.mem_addr;
    raw.dep1 = inst.dep1;
    raw.dep2 = inst.dep2;
    raw.cls = static_cast<std::uint8_t>(inst.cls);
    raw.exec_latency = inst.exec_latency;
    raw.mispredicted = inst.mispredicted ? 1 : 0;
    raw.pad = 0;
    if (std::fwrite(&raw, sizeof(raw), 1, file_) != 1)
        fatal("short write while appending trace record");
    ++written_;
}

void
TraceWriter::capture(WorkloadGenerator &gen, std::uint64_t count)
{
    Instruction inst;
    for (std::uint64_t i = 0; i < count; ++i) {
        gen.next(inst);
        append(inst);
    }
}

TraceReader::TraceReader(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[sizeof(trace_magic)];
    char name_buf[name_field];
    if (std::fread(magic, sizeof(magic), 1, file) != 1 ||
        std::memcmp(magic, trace_magic, sizeof(magic)) != 0) {
        std::fclose(file);
        fatal("'%s' is not an mnm trace file", path.c_str());
    }
    if (std::fread(name_buf, name_field, 1, file) != 1) {
        std::fclose(file);
        fatal("'%s': truncated trace header", path.c_str());
    }
    name_buf[name_field - 1] = '\0';
    name_ = name_buf;

    RawRecord raw;
    while (std::fread(&raw, sizeof(raw), 1, file) == 1) {
        Instruction inst;
        inst.pc = raw.pc;
        inst.mem_addr = raw.mem_addr;
        inst.dep1 = raw.dep1;
        inst.dep2 = raw.dep2;
        if (raw.cls > static_cast<std::uint8_t>(InstClass::Branch)) {
            std::fclose(file);
            fatal("'%s': corrupt instruction class %u", path.c_str(),
                  raw.cls);
        }
        inst.cls = static_cast<InstClass>(raw.cls);
        inst.exec_latency = raw.exec_latency;
        inst.mispredicted = raw.mispredicted != 0;
        trace_.push_back(inst);
    }
    std::fclose(file);
    if (trace_.empty())
        fatal("'%s': trace contains no records", path.c_str());
}

void
TraceReader::next(Instruction &out)
{
    out = trace_[pos_];
    pos_ = (pos_ + 1) % trace_.size();
}

void
TraceReader::nextBatch(InstructionBatch &batch, std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    for (std::size_t i = 0; i < n; ++i) {
        batch.records[i] = trace_[pos_];
        pos_ = (pos_ + 1) % trace_.size();
    }
    batch.size = n;
}

} // namespace mnm
