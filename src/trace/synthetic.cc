#include "trace/synthetic.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

/** Data regions are laid out from here, 64MB apart. */
constexpr Addr data_base = 0x40000000ull;
constexpr Addr region_spacing = 64ull * 1024 * 1024;

} // anonymous namespace

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    if (params_.regions.empty())
        fatal("synthetic workload '%s' has no data regions",
              params_.name.c_str());
    if (params_.load_frac + params_.store_frac + params_.branch_frac > 1.0)
        fatal("synthetic workload '%s': instruction mix exceeds 1",
              params_.name.c_str());
    for (const RegionParams &r : params_.regions) {
        if (r.footprint_bytes < 64)
            fatal("region footprint below 64 bytes");
        if (r.stride == 0)
            fatal("region with zero stride");
        total_weight_ += r.weight;
    }
    if (total_weight_ <= 0.0)
        fatal("synthetic workload '%s': zero total region weight",
              params_.name.c_str());
    reset();
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(params_.seed);
    regions_.clear();
    regions_.resize(params_.regions.size());
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        regions_[i].base = data_base + region_spacing * i;
        regions_[i].cursor = 0;
        regions_[i].chase = 1 + i;
    }
    active_region_ = 0;
    dwell_left_ = 0;
    recent_count_ = 0;
    recent_pos_ = 0;
    pc_ = code_base_;
    loop_start_ = code_base_;
    loop_bytes_ = 0;
    loop_iters_left_ = 0;
    startLoop();
}

void
SyntheticWorkload::startLoop()
{
    // Pick a loop body somewhere in the text and a repeat count. Loop
    // bodies are 16-byte aligned; sizes are geometric around the mean.
    std::uint64_t body =
        16 + 16 * rng_.nextGeometric(
                      static_cast<double>(params_.loop_body_bytes_mean) /
                      16.0);
    if (body > params_.code_footprint_bytes)
        body = params_.code_footprint_bytes;
    std::uint64_t span = params_.code_footprint_bytes - body;
    Addr start =
        code_base_ + (span ? (rng_.nextBelow(span) & ~15ull) : 0);
    loop_start_ = start;
    loop_bytes_ = body;
    loop_iters_left_ = 1 + rng_.nextGeometric(params_.loop_iterations_mean);
    pc_ = loop_start_;
}

void
SyntheticWorkload::advancePc()
{
    pc_ += 4;
    if (pc_ >= loop_start_ + loop_bytes_) {
        if (loop_iters_left_ > 1) {
            --loop_iters_left_;
            pc_ = loop_start_;
        } else {
            startLoop();
        }
    }
}

Addr
SyntheticWorkload::dataAddress()
{
    // Short-range temporal reuse first: re-touch a recent address.
    if (recent_count_ > 0 && rng_.nextBool(params_.temporal_reuse)) {
        return recent_[rng_.nextBelow(
            std::min(recent_count_, reuse_depth))];
    }
    if (dwell_left_ == 0) {
        double draw = rng_.nextDouble() * total_weight_;
        active_region_ = params_.regions.size() - 1;
        for (std::size_t i = 0; i < params_.regions.size(); ++i) {
            if (draw < params_.regions[i].weight) {
                active_region_ = i;
                break;
            }
            draw -= params_.regions[i].weight;
        }
        dwell_left_ =
            1 + rng_.nextGeometric(params_.regions[active_region_].dwell);
    }
    --dwell_left_;

    const RegionParams &rp = params_.regions[active_region_];
    RegionState &rs = regions_[active_region_];
    std::uint64_t offset = 0;
    switch (rp.pattern) {
      case RegionPattern::Sequential:
        offset = rs.cursor;
        rs.cursor = (rs.cursor + rp.stride) % rp.footprint_bytes;
        break;
      case RegionPattern::RandomUniform:
        offset = rng_.nextBelow(rp.footprint_bytes) & ~std::uint64_t{7};
        break;
      case RegionPattern::PointerChase: {
        // A full-period LCG walk over the region's cache-block grid:
        // serially dependent and locality-free, like chasing a shuffled
        // linked list. (a = 8*k+5, c odd gives full period mod 2^n.)
        std::uint64_t cells = rp.footprint_bytes / rp.stride;
        std::uint64_t n = std::uint64_t{1} << floorLog2(cells | 1);
        rs.chase = (rs.chase * 1664525 + 1013904223) & (n - 1);
        offset = rs.chase * rp.stride;
        break;
      }
      case RegionPattern::HotCold: {
        std::uint64_t hot_bytes = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(
                    rp.hot_fraction *
                    static_cast<double>(rp.footprint_bytes)));
        if (rng_.nextBool(rp.hot_probability)) {
            offset = rng_.nextBelow(hot_bytes) & ~std::uint64_t{7};
        } else {
            offset = rng_.nextBelow(rp.footprint_bytes) & ~std::uint64_t{7};
        }
        break;
      }
    }
    Addr addr = rs.base + offset;
    recent_[recent_pos_] = addr;
    recent_pos_ = (recent_pos_ + 1) % reuse_depth;
    if (recent_count_ < reuse_depth)
        ++recent_count_;
    return addr;
}

void
SyntheticWorkload::next(Instruction &out)
{
    out = Instruction();
    advancePc();
    out.pc = pc_;

    double draw = rng_.nextDouble();
    if (draw < params_.load_frac) {
        out.cls = InstClass::Load;
        out.mem_addr = dataAddress();
        out.exec_latency = 1; // cache latency added by the memory model
    } else if (draw < params_.load_frac + params_.store_frac) {
        out.cls = InstClass::Store;
        out.mem_addr = dataAddress();
        out.exec_latency = 1;
    } else if (draw < params_.load_frac + params_.store_frac +
                          params_.branch_frac) {
        out.cls = InstClass::Branch;
        out.exec_latency = 1;
        out.mispredicted = rng_.nextBool(params_.mispredict_rate);
    } else if (rng_.nextBool(params_.fp_frac)) {
        out.cls = InstClass::FpAlu;
        out.exec_latency = 4;
    } else {
        out.cls = InstClass::IntAlu;
        out.exec_latency = 1;
    }

    // Producer distances: geometric around the mean, capped so they
    // always reference an earlier instruction in any realistic window.
    auto dist = [&]() -> std::uint16_t {
        std::uint64_t d = rng_.nextGeometric(params_.dep_dist_mean);
        return static_cast<std::uint16_t>(std::min<std::uint64_t>(d, 512));
    };
    out.dep1 = dist();
    if (rng_.nextBool(0.5))
        out.dep2 = dist();
    return;
}

void
SyntheticWorkload::nextBatch(InstructionBatch &batch, std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    for (std::size_t i = 0; i < n; ++i)
        SyntheticWorkload::next(batch.records[i]);
    batch.size = n;
}

} // namespace mnm
