#include "trace/synthetic.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

namespace
{

/** Data regions are laid out from here, 64MB apart. */
constexpr Addr data_base = 0x40000000ull;
constexpr Addr region_spacing = 64ull * 1024 * 1024;

} // anonymous namespace

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    if (params_.regions.empty())
        fatal("synthetic workload '%s' has no data regions",
              params_.name.c_str());
    if (params_.load_frac + params_.store_frac + params_.branch_frac > 1.0)
        fatal("synthetic workload '%s': instruction mix exceeds 1",
              params_.name.c_str());
    for (const RegionParams &r : params_.regions) {
        if (r.footprint_bytes < 64)
            fatal("region footprint below 64 bytes");
        if (r.stride == 0)
            fatal("region with zero stride");
        total_weight_ += r.weight;

        RegionFast rf;
        rf.footprint = FastMod(r.footprint_bytes);
        rf.hot_bytes = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(
                    r.hot_fraction *
                    static_cast<double>(r.footprint_bytes)));
        rf.hot = FastMod(rf.hot_bytes);
        rf.hot_thr = Rng::boolThreshold(r.hot_probability);
        rf.wrap_by_subtract = r.stride <= r.footprint_bytes;
        region_fast_.push_back(rf);
    }
    temporal_thr_ = Rng::boolThreshold(params_.temporal_reuse);
    if (total_weight_ <= 0.0)
        fatal("synthetic workload '%s': zero total region weight",
              params_.name.c_str());
    reset();
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(params_.seed);
    regions_.clear();
    regions_.resize(params_.regions.size());
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        regions_[i].base = data_base + region_spacing * i;
        regions_[i].cursor = 0;
        regions_[i].chase = 1 + i;
    }
    active_region_ = 0;
    dwell_left_ = 0;
    recent_count_ = 0;
    recent_pos_ = 0;
    pc_ = code_base_;
    loop_start_ = code_base_;
    loop_bytes_ = 0;
    loop_iters_left_ = 0;
    startLoop(rng_);
}

void
SyntheticWorkload::startLoop(Rng &rng)
{
    // Pick a loop body somewhere in the text and a repeat count. Loop
    // bodies are 16-byte aligned; sizes are geometric around the mean.
    std::uint64_t body =
        16 + 16 * rng.nextGeometric(
                      static_cast<double>(params_.loop_body_bytes_mean) /
                      16.0);
    if (body > params_.code_footprint_bytes)
        body = params_.code_footprint_bytes;
    std::uint64_t span = params_.code_footprint_bytes - body;
    Addr start =
        code_base_ + (span ? (rng.nextBelow(span) & ~15ull) : 0);
    loop_start_ = start;
    loop_bytes_ = body;
    loop_iters_left_ = 1 + rng.nextGeometric(params_.loop_iterations_mean);
    pc_ = loop_start_;
}

Addr
SyntheticWorkload::dataAddress(Rng &rng)
{
    // Short-range temporal reuse first: re-touch a recent address.
    // Once the ring is full the bound is the power-of-two depth and
    // the modulo reduces to a mask (same value, no divide).
    if (recent_count_ > 0 && rng.nextBoolFast(temporal_thr_)) {
        static_assert(isPowerOf2(reuse_depth));
        if (recent_count_ >= reuse_depth)
            return recent_[rng.next() & (reuse_depth - 1)];
        return recent_[rng.nextBelow(recent_count_)];
    }
    if (dwell_left_ == 0) {
        double draw = rng.nextDouble() * total_weight_;
        active_region_ = params_.regions.size() - 1;
        for (std::size_t i = 0; i < params_.regions.size(); ++i) {
            if (draw < params_.regions[i].weight) {
                active_region_ = i;
                break;
            }
            draw -= params_.regions[i].weight;
        }
        dwell_left_ =
            1 + rng.nextGeometric(params_.regions[active_region_].dwell);
    }
    --dwell_left_;

    const RegionParams &rp = params_.regions[active_region_];
    const RegionFast &rf = region_fast_[active_region_];
    RegionState &rs = regions_[active_region_];
    std::uint64_t offset = 0;
    switch (rp.pattern) {
      case RegionPattern::Sequential:
        offset = rs.cursor;
        rs.cursor += rp.stride;
        if (rf.wrap_by_subtract) {
            if (rs.cursor >= rp.footprint_bytes)
                rs.cursor -= rp.footprint_bytes;
        } else {
            rs.cursor = rf.footprint.mod(rs.cursor);
        }
        break;
      case RegionPattern::RandomUniform:
        offset = rf.footprint.mod(rng.next()) & ~std::uint64_t{7};
        break;
      case RegionPattern::PointerChase: {
        // A full-period LCG walk over the region's cache-block grid:
        // serially dependent and locality-free, like chasing a shuffled
        // linked list. (a = 8*k+5, c odd gives full period mod 2^n.)
        std::uint64_t cells = rp.footprint_bytes / rp.stride;
        std::uint64_t n = std::uint64_t{1} << floorLog2(cells | 1);
        rs.chase = (rs.chase * 1664525 + 1013904223) & (n - 1);
        offset = rs.chase * rp.stride;
        break;
      }
      case RegionPattern::HotCold: {
        if (rng.nextBoolFast(rf.hot_thr)) {
            offset = rf.hot.mod(rng.next()) & ~std::uint64_t{7};
        } else {
            offset = rf.footprint.mod(rng.next()) & ~std::uint64_t{7};
        }
        break;
      }
    }
    Addr addr = rs.base + offset;
    recent_[recent_pos_] = addr;
    recent_pos_ = (recent_pos_ + 1) % reuse_depth;
    if (recent_count_ < reuse_depth)
        ++recent_count_;
    return addr;
}

template <bool deps_used, typename Sink>
void
SyntheticWorkload::generateLoop(Rng &rng, std::size_t n, Sink &&sink)
{
    // Class-select thresholds: the cutoff doubles are computed with
    // exactly the additions the original per-instruction comparisons
    // performed, then folded to integer thresholds over the raw 53-bit
    // uniform (Rng::boolThreshold) so the loop below runs no
    // int-to-double conversions. Same draws, same outcomes.
    const std::uint64_t load_t = Rng::boolThreshold(params_.load_frac);
    const std::uint64_t store_t =
        Rng::boolThreshold(params_.load_frac + params_.store_frac);
    const std::uint64_t branch_t = Rng::boolThreshold(
        params_.load_frac + params_.store_frac + params_.branch_frac);
    const std::uint64_t fp_t = Rng::boolThreshold(params_.fp_frac);
    const std::uint64_t mispredict_t =
        Rng::boolThreshold(params_.mispredict_rate);
    const std::uint64_t half_t = Rng::boolThreshold(0.5);
    const double dep_mean = params_.dep_dist_mean;
    // Bind the dependence-distance table once instead of re-checking
    // the memoized mean on every draw (the dwell and loop-shape draws
    // interleave other means through nextGeometric).
    const GeometricTable *dep_table =
        dep_mean > 0.0 ? GeometricTable::forMean(dep_mean) : nullptr;

    // The pc walk advances every instruction; keep it in locals and
    // resync around the (rare) startLoop draw.
    Addr pc = pc_;
    Addr loop_end = loop_start_ + loop_bytes_;

    for (std::size_t i = 0; i < n; ++i) {
        pc += 4;
        if (pc >= loop_end) {
            if (loop_iters_left_ > 1) {
                --loop_iters_left_;
                pc = loop_start_;
            } else {
                startLoop(rng);
                pc = pc_;
                loop_end = loop_start_ + loop_bytes_;
            }
        }

        InstClass cls;
        Addr mem_addr = 0;
        std::uint8_t exec_latency = 1;
        bool mispredicted = false;
        const std::uint64_t m = rng.next() >> 11;
        if (m < store_t) {
            cls = m < load_t ? InstClass::Load : InstClass::Store;
            mem_addr = dataAddress(rng);
        } else if (m < branch_t) {
            cls = InstClass::Branch;
            mispredicted = rng.nextBoolFast(mispredict_t);
        } else if (rng.nextBoolFast(fp_t)) {
            cls = InstClass::FpAlu;
            exec_latency = 4;
        } else {
            cls = InstClass::IntAlu;
        }

        // Producer distances: geometric around the mean, capped so
        // they always reference an earlier instruction in any
        // realistic window. A sink that discards distances (the request
        // producer) still consumes the draw -- the stream is the
        // contract -- but skips the table walk that would turn it into
        // a value.
        auto dist = [&]() -> std::uint16_t {
            if (!dep_table)
                return 0;
            const std::uint64_t m = rng.next() >> 11;
            if constexpr (!deps_used)
                return 0;
            return static_cast<std::uint16_t>(
                std::min<std::uint64_t>(dep_table->sample(m), 512));
        };
        const std::uint16_t dep1 = dist();
        const std::uint16_t dep2 = rng.nextBoolFast(half_t) ? dist() : 0;

        sink(pc, cls, mem_addr, dep1, dep2, exec_latency, mispredicted);
    }
    pc_ = pc;
}

void
SyntheticWorkload::generateRun(Rng &rng, Instruction *out, std::size_t n)
{
    generateLoop<true>(rng, n,
                 [out](Addr pc, InstClass cls, Addr mem_addr,
                       std::uint16_t dep1, std::uint16_t dep2,
                       std::uint8_t exec_latency,
                       bool mispredicted) mutable {
                     // Every field written exactly once (no
                     // Instruction() reset; the trace writer copies
                     // fields, so padding never escapes).
                     Instruction &inst = *out++;
                     inst.cls = cls;
                     inst.pc = pc;
                     inst.mem_addr = mem_addr;
                     inst.dep1 = dep1;
                     inst.dep2 = dep2;
                     inst.exec_latency = exec_latency;
                     inst.mispredicted = mispredicted;
                 });
}

void
SyntheticWorkload::nextRequests(RequestBatch &batch, FetchDedup &dedup,
                                std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    batch.clear();
    // Local copies of the rng (256-bit state in registers, like
    // nextBatch) and the dedup state (one fewer pointer chase per
    // instruction); both streams write back at the end.
    Rng rng = rng_;
    FetchDedup local = dedup;
    generateLoop<false>(rng, n,
                 [&batch, &local](Addr pc, InstClass cls, Addr mem_addr,
                                  std::uint16_t, std::uint16_t,
                                  std::uint8_t, bool) {
                     deriveInstruction(batch, local, pc, cls, mem_addr);
                 });
    rng_ = rng;
    dedup = local;
}

void
SyntheticWorkload::next(Instruction &out)
{
    generateRun(rng_, &out, 1);
}

void
SyntheticWorkload::nextBatch(InstructionBatch &batch, std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    // A local rng keeps the 256-bit state in registers across the whole
    // batch; the stream is the member stream, written back at the end.
    Rng rng = rng_;
    generateRun(rng, batch.records, n);
    rng_ = rng;
    batch.size = n;
}

} // namespace mnm
