/**
 * @file
 * The dynamic instruction record streamed from workload generators into
 * the simulators.
 *
 * The record is ISA-free: it carries exactly what the cache hierarchy
 * and the out-of-order timing model need -- a PC for the instruction
 * fetch stream, a memory address for loads/stores, producer distances
 * for dependence modelling, an execution latency class, and branch
 * outcome information.
 */

#ifndef MNM_TRACE_INSTRUCTION_HH
#define MNM_TRACE_INSTRUCTION_HH

#include <cstdint>

#include "util/types.hh"

namespace mnm
{

/** Broad operation class of a dynamic instruction. */
enum class InstClass : std::uint8_t
{
    IntAlu,
    FpAlu,
    Load,
    Store,
    Branch,
};

/** One dynamic instruction. */
struct Instruction
{
    InstClass cls = InstClass::IntAlu;
    /** Program counter (byte address in the code region). */
    Addr pc = 0;
    /** Effective address; meaningful for Load/Store only. */
    Addr mem_addr = 0;
    /**
     * Register-dependence distances: this instruction consumes the
     * results of the instructions @p dep1 and @p dep2 positions earlier
     * in program order (0 = no dependence). Keeping distances rather
     * than register names sidesteps renaming in the timing model.
     */
    std::uint16_t dep1 = 0;
    std::uint16_t dep2 = 0;
    /** Functional-unit latency in cycles (1 for simple ALU ops). */
    std::uint8_t exec_latency = 1;
    /** Branch only: will the front-end mispredict this branch? */
    bool mispredicted = false;

    bool isMem() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }
    bool isBranch() const { return cls == InstClass::Branch; }
};

} // namespace mnm

#endif // MNM_TRACE_INSTRUCTION_HH
