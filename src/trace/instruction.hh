/**
 * @file
 * The dynamic instruction record streamed from workload generators into
 * the simulators.
 *
 * The record is ISA-free: it carries exactly what the cache hierarchy
 * and the out-of-order timing model need -- a PC for the instruction
 * fetch stream, a memory address for loads/stores, producer distances
 * for dependence modelling, an execution latency class, and branch
 * outcome information.
 */

#ifndef MNM_TRACE_INSTRUCTION_HH
#define MNM_TRACE_INSTRUCTION_HH

#include <cstddef>
#include <cstdint>

#include "util/types.hh"

namespace mnm
{

/** Broad operation class of a dynamic instruction. */
enum class InstClass : std::uint8_t
{
    IntAlu,
    FpAlu,
    Load,
    Store,
    Branch,
};

/** One dynamic instruction. */
struct Instruction
{
    InstClass cls = InstClass::IntAlu;
    /** Program counter (byte address in the code region). */
    Addr pc = 0;
    /** Effective address; meaningful for Load/Store only. */
    Addr mem_addr = 0;
    /**
     * Register-dependence distances: this instruction consumes the
     * results of the instructions @p dep1 and @p dep2 positions earlier
     * in program order (0 = no dependence). Keeping distances rather
     * than register names sidesteps renaming in the timing model.
     */
    std::uint16_t dep1 = 0;
    std::uint16_t dep2 = 0;
    /** Functional-unit latency in cycles (1 for simple ALU ops). */
    std::uint8_t exec_latency = 1;
    /** Branch only: will the front-end mispredict this branch? */
    bool mispredicted = false;

    bool isMem() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }
    bool isBranch() const { return cls == InstClass::Branch; }
};

/**
 * A flat, fixed-capacity buffer of decoded instructions: the unit of
 * the batch streaming API (WorkloadGenerator::nextBatch). Filling a
 * whole batch through one virtual call keeps the per-instruction
 * virtual dispatch and the generator's branchy decode out of the
 * simulators' inner loops.
 */
struct InstructionBatch
{
    static constexpr std::size_t capacity = 4096;

    Instruction records[capacity];
    /** Valid records in this batch (always > 0 after a fill). */
    std::size_t size = 0;

    Instruction *begin() { return records; }
    Instruction *end() { return records + size; }
    const Instruction *begin() const { return records; }
    const Instruction *end() const { return records + size; }
};

} // namespace mnm

#endif // MNM_TRACE_INSTRUCTION_HH
