#include "trace/batch_pipeline.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace mnm
{

bool
overlapFromEnv()
{
    static const bool on = [] {
        const char *env = std::getenv("MNM_OVERLAP");
        if (!env || std::strcmp(env, "on") == 0)
            return true;
        if (std::strcmp(env, "off") == 0)
            return false;
        fatal("MNM_OVERLAP='%s' must be 'off' or 'on'", env);
    }();
    return on;
}

} // namespace mnm
