#include "trace/workload.hh"

#include "util/logging.hh"

namespace mnm
{

ScriptedWorkload::ScriptedWorkload(std::vector<Instruction> script,
                                   std::string name)
    : script_(std::move(script)), name_(std::move(name))
{
    if (script_.empty())
        fatal("scripted workload with empty script");
}

void
ScriptedWorkload::next(Instruction &out)
{
    out = script_[pos_];
    pos_ = (pos_ + 1) % script_.size();
}

UniformRandomWorkload::UniformRandomWorkload(std::uint64_t footprint_bytes,
                                             double load_frac,
                                             double store_frac,
                                             std::uint64_t seed)
    : footprint_(footprint_bytes), load_frac_(load_frac),
      store_frac_(store_frac), seed_(seed), rng_(seed)
{
    if (footprint_ == 0)
        fatal("uniform workload with zero footprint");
    if (load_frac_ + store_frac_ > 1.0)
        fatal("load + store fraction exceeds 1");
}

void
UniformRandomWorkload::next(Instruction &out)
{
    out = Instruction();
    pc_ += 4;
    out.pc = pc_;
    double draw = rng_.nextDouble();
    if (draw < load_frac_) {
        out.cls = InstClass::Load;
    } else if (draw < load_frac_ + store_frac_) {
        out.cls = InstClass::Store;
    } else {
        out.cls = InstClass::IntAlu;
        return;
    }
    out.mem_addr = 0x40000000ull + (rng_.nextBelow(footprint_) & ~7ull);
    out.dep1 = static_cast<std::uint16_t>(rng_.nextBelow(8));
}

void
UniformRandomWorkload::reset()
{
    rng_ = Rng(seed_);
    pc_ = 0x00100000;
}

} // namespace mnm
