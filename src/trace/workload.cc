#include "trace/workload.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnm
{

void
WorkloadGenerator::nextBatch(InstructionBatch &batch, std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    for (std::size_t i = 0; i < n; ++i)
        next(batch.records[i]);
    batch.size = n;
}

void
WorkloadGenerator::nextRequests(RequestBatch &batch, FetchDedup &dedup,
                                std::size_t max)
{
    if (!derive_scratch_)
        derive_scratch_ = std::make_unique<InstructionBatch>();
    nextBatch(*derive_scratch_, max);
    batch.clear();
    deriveRequests(batch, dedup, *derive_scratch_);
}

ScriptedWorkload::ScriptedWorkload(std::vector<Instruction> script,
                                   std::string name)
    : script_(std::move(script)), name_(std::move(name))
{
    if (script_.empty())
        fatal("scripted workload with empty script");
}

void
ScriptedWorkload::next(Instruction &out)
{
    out = script_[pos_];
    pos_ = (pos_ + 1) % script_.size();
}

void
ScriptedWorkload::nextBatch(InstructionBatch &batch, std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    for (std::size_t i = 0; i < n; ++i)
        ScriptedWorkload::next(batch.records[i]);
    batch.size = n;
}

UniformRandomWorkload::UniformRandomWorkload(std::uint64_t footprint_bytes,
                                             double load_frac,
                                             double store_frac,
                                             std::uint64_t seed)
    : footprint_(footprint_bytes), load_frac_(load_frac),
      store_frac_(store_frac), seed_(seed), rng_(seed)
{
    if (footprint_ == 0)
        fatal("uniform workload with zero footprint");
    if (load_frac_ + store_frac_ > 1.0)
        fatal("load + store fraction exceeds 1");
}

void
UniformRandomWorkload::next(Instruction &out)
{
    out = Instruction();
    pc_ += 4;
    out.pc = pc_;
    double draw = rng_.nextDouble();
    if (draw < load_frac_) {
        out.cls = InstClass::Load;
    } else if (draw < load_frac_ + store_frac_) {
        out.cls = InstClass::Store;
    } else {
        out.cls = InstClass::IntAlu;
        return;
    }
    out.mem_addr = 0x40000000ull + (rng_.nextBelow(footprint_) & ~7ull);
    out.dep1 = static_cast<std::uint16_t>(rng_.nextBelow(8));
}

void
UniformRandomWorkload::nextBatch(InstructionBatch &batch, std::size_t max)
{
    std::size_t n = std::min(max, InstructionBatch::capacity);
    for (std::size_t i = 0; i < n; ++i)
        UniformRandomWorkload::next(batch.records[i]);
    batch.size = n;
}

void
UniformRandomWorkload::reset()
{
    rng_ = Rng(seed_);
    pc_ = 0x00100000;
}

} // namespace mnm
