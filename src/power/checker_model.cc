#include "power/checker_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace mnm
{

CheckerModel::CheckerModel(const TechnologyParams &tech) : tech_(tech)
{
}

std::uint64_t
CheckerModel::flipFlops(std::uint32_t sum_width)
{
    std::uint64_t w = sum_width;
    return w * (w + 1) * (2 * w + 1) / 6;
}

std::uint64_t
CheckerModel::logicGates(std::uint32_t sum_width)
{
    // The paper bounds the logic at O(w^4): w pipeline levels, each with
    // up to ff(w) = O(w^3) mux/merge cells. We take the bound with a
    // small constant reflecting 2-input gate decomposition.
    std::uint64_t w = sum_width;
    return 2 * w * flipFlops(sum_width);
}

PowerDelay
CheckerModel::evaluate(std::uint32_t sum_width,
                       std::uint32_t replication) const
{
    MNM_ASSERT(sum_width >= 2, "checker narrower than 2 bits");
    MNM_ASSERT(replication >= 1, "zero checkers");

    std::uint64_t ffs = flipFlops(sum_width);

    PowerDelay pd;
    // Per access only the active slice toggles: the w-level sum network
    // (~w^2 cells) plus the decoder selecting one of the ff(w) presence
    // flops. The O(w^4) gate total bounds capacity (area/leakage), not
    // switching -- this matches the sub-pJ/access figures synthesis
    // reports for combinational blocks of this size.
    double active_gates =
        static_cast<double>(sum_width) * sum_width +
        4.0 * std::log2(std::max<double>(2.0, double(ffs)));
    double per_checker = active_gates * gate_pj_ + flop_pj_;
    pd.read_energy_pj = per_checker * replication;
    // An update recomputes the hash and sets one flop: same logic cost.
    pd.write_energy_pj = pd.read_energy_pj;
    // Checkers operate in parallel; depth is O(w) logic levels plus the
    // final wired-OR across the sum-presence flops.
    pd.access_ns = gate_ns_ * (sum_width + std::log2(std::max<double>(
                                               2.0, double(ffs))));
    pd.bits = static_cast<std::uint64_t>(ffs) * replication;
    pd.leakage_mw = tech_.leakage_mw_per_kbit *
                    (static_cast<double>(pd.bits) / 1024.0) * 1.5;
    return pd;
}

} // namespace mnm
