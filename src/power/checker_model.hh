/**
 * @file
 * Power/delay model for the SMNM "checker" circuit.
 *
 * The paper synthesized the checker RTL with Synopsys Design Compiler; we
 * reproduce its published scaling laws instead: the number of flip-flops
 * holding the hash-presence bits is (paper Equation 3)
 *
 *     ff(w) = w * (w + 1) * (2w + 1) / 6        -- O(w^3)
 *
 * per checker (the number of distinct sum-of-squares values is bounded by
 * 1 + sum_{i=1..w} i^2), and the muxing/adder logic is bounded by O(w^4)
 * gates with O(w) logic depth. Per-gate and per-flop switching energies
 * come from the same 0.18um-class technology as the SRAM model.
 */

#ifndef MNM_POWER_CHECKER_MODEL_HH
#define MNM_POWER_CHECKER_MODEL_HH

#include <cstdint>

#include "power/sram_model.hh"

namespace mnm
{

/** Analytical model of one or more parallel SMNM checkers. */
class CheckerModel
{
  public:
    explicit CheckerModel(const TechnologyParams &tech =
                              TechnologyParams::default180());

    /** Paper Equation 3: flip-flop count for one checker of width @p w. */
    static std::uint64_t flipFlops(std::uint32_t sum_width);

    /** Upper bound on logic gates for one checker of width @p w. */
    static std::uint64_t logicGates(std::uint32_t sum_width);

    /**
     * Energy/delay of @p replication parallel checkers of width
     * @p sum_width (one SMNM configuration for one cache).
     */
    PowerDelay evaluate(std::uint32_t sum_width,
                        std::uint32_t replication) const;

  private:
    TechnologyParams tech_;
    /** Switching energy per logic gate, pJ. */
    double gate_pj_ = 0.0022;
    /** Switching energy per flip-flop read/compare, pJ. */
    double flop_pj_ = 0.0035;
    /** Delay per logic level, ns. */
    double gate_ns_ = 0.03;
};

} // namespace mnm

#endif // MNM_POWER_CHECKER_MODEL_HH
