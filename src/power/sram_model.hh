/**
 * @file
 * CACTI-inspired analytical energy/delay model for SRAM arrays and CAMs.
 *
 * The paper obtained cache and MNM-structure power/delay from CACTI 3.1.
 * CACTI is not available offline, so this module implements an analytical
 * model with the same functional form: an array of R rows x C columns is
 * accessed through a row decoder, wordline drivers, bitline swings, sense
 * amplifiers, and (for caches) tag comparators and way muxes. Component
 * energies and delays scale with the usual terms:
 *
 *   decoder   ~ log2(R)              (fanout-of-4 logic depth)
 *   wordline  ~ C                    (wire + gate cap per column)
 *   bitline   ~ R                    (diffusion cap per row on the swing)
 *   senseamp  ~ C                    (one amp per column read)
 *   compare   ~ tag_bits * ways
 *
 * Constants are calibrated to a 0.18um-class process (the era of the
 * paper) so that absolute numbers are plausible and -- more importantly --
 * the *ratios* between large caches and the small MNM structures match
 * the paper's premise (MNM structures are far cheaper than the caches
 * they shield). See DESIGN.md "Paper -> our substitutions".
 */

#ifndef MNM_POWER_SRAM_MODEL_HH
#define MNM_POWER_SRAM_MODEL_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace mnm
{

/** Process/circuit constants for the analytical model. */
struct TechnologyParams
{
    /** Feature size in nanometres (affects per-bit capacitances). */
    double feature_nm = 180.0;
    /** Supply voltage in volts. */
    double vdd = 1.8;
    /** Energy per unit of switched capacitance, pJ per (col or row)
     *  unit. Calibrated so the paper-era cache sizes land at CACTI
     *  3.1-like magnitudes (4 KB ~ 15 pJ ... 2 MB ~ 1 nJ per probe);
     *  the MNM conclusions hinge on the *ratio* of big-cache probes to
     *  small-structure probes, so these are the load-bearing knobs. */
    double bitline_pj_per_row = 0.003;
    double wordline_pj_per_col = 0.002;
    double senseamp_pj_per_col = 0.006;
    double decoder_pj_per_level = 0.09;
    double compare_pj_per_bit = 0.006;
    double output_pj_per_bit = 0.004;
    /** Global routing/H-tree energy per kilobit of array capacity:
     *  the term that makes multi-megabyte arrays pay for their size. */
    double route_pj_per_kbit = 0.02;
    /** Delay constants, ns. */
    double decoder_ns_per_level = 0.04;
    double wordline_ns_per_col = 0.00065;
    double bitline_ns_per_row = 0.0011;
    double senseamp_ns = 0.38;
    double compare_ns_per_bit = 0.015;
    /** Leakage, mW per kilobit. */
    double leakage_mw_per_kbit = 0.002;
    /** Energy/delay multiplier per extra port (wire + cell growth). */
    double port_factor = 0.7;

    /** The default 0.18um-class technology. */
    static const TechnologyParams &default180();
};

/** Convert a model delay to whole clock cycles at @p clock_ghz. */
Cycles delayToCycles(Nanoseconds ns, double clock_ghz);

/** Result of evaluating an array: per-access energy, delay, leakage. */
struct PowerDelay
{
    PicoJoules read_energy_pj = 0.0;
    PicoJoules write_energy_pj = 0.0;
    Nanoseconds access_ns = 0.0;
    /** Static leakage power, mW. */
    double leakage_mw = 0.0;
    /** Storage bits, for reporting. */
    std::uint64_t bits = 0;

    std::string toString() const;
};

/** Physical description of a set-associative cache for the model. */
struct CacheGeometry
{
    std::uint64_t capacity_bytes = 0;
    std::uint32_t block_bytes = 0;
    /** 0 means fully associative. */
    std::uint32_t associativity = 1;
    /** Tag bits stored per block (including valid/state bits). */
    std::uint32_t tag_bits = 30;
    std::uint32_t read_write_ports = 1;
};

/**
 * Analytical SRAM/CAM evaluator. All functions are pure: they map a
 * geometry to a PowerDelay under a technology.
 */
class SramModel
{
  public:
    explicit SramModel(const TechnologyParams &tech =
                           TechnologyParams::default180());

    /**
     * A set-associative cache: tag array probe (all ways) + data array
     * read of the selected way. This is the per-probe energy a cache
     * spends whether it hits or misses (a miss still pays tag + data
     * probe; only the output drive differs, which we fold in).
     */
    PowerDelay cache(const CacheGeometry &geom) const;

    /**
     * Per-probe read energy of the same cache under way prediction
     * (Calder/Grunwald; Powell et al. -- the paper's related work):
     * the predicted way's data is read alongside the full tag probe;
     * a mispredicted way costs a second, full-width read.
     *
     * @return {predicted-hit read, misprediction extra} energies, pJ.
     */
    std::pair<PicoJoules, PicoJoules>
    wayPredictedRead(const CacheGeometry &geom) const;

    /**
     * A plain RAM table of @p entries x @p bits_per_entry (e.g. the TMNM
     * counter table or the CMNM table).
     *
     * @param active_bits columns actually precharged/sensed per read
     *        (0 = all). The MNM counter tables read one small counter
     *        group selected up front, so their read path is gated to a
     *        few bits -- a key part of why the structures stay far
     *        cheaper than the caches they shield.
     */
    PowerDelay table(std::uint64_t entries, std::uint32_t bits_per_entry,
                     std::uint32_t ports = 1,
                     std::uint32_t active_bits = 0) const;

    /**
     * A small fully-associative CAM of @p entries x @p match_bits
     * (e.g. the CMNM virtual-tag finder registers).
     */
    PowerDelay cam(std::uint64_t entries, std::uint32_t match_bits,
                   std::uint32_t ports = 1) const;

    const TechnologyParams &tech() const { return tech_; }

  private:
    /**
     * Core array model shared by the public entry points.
     *
     * @param write_cols columns actually driven on a write (e.g. one
     *                   way of a set-associative cache); 0 = all.
     * @param read_cols  columns precharged/sensed on a read (gated
     *                   narrow-read arrays); 0 = all.
     */
    PowerDelay array(std::uint64_t rows, std::uint64_t cols,
                     std::uint32_t ports, std::uint32_t output_bits,
                     std::uint64_t write_cols = 0,
                     std::uint64_t read_cols = 0) const;

    TechnologyParams tech_;
};

} // namespace mnm

#endif // MNM_POWER_SRAM_MODEL_HH
