#include "power/sram_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mnm
{

const TechnologyParams &
TechnologyParams::default180()
{
    static const TechnologyParams tech;
    return tech;
}

Cycles
delayToCycles(Nanoseconds ns, double clock_ghz)
{
    MNM_ASSERT(clock_ghz > 0.0, "non-positive clock frequency");
    double cycles = ns * clock_ghz;
    auto whole = static_cast<Cycles>(cycles);
    return (cycles > static_cast<double>(whole)) ? whole + 1 : whole;
}

std::string
PowerDelay::toString() const
{
    std::ostringstream out;
    out << "read=" << read_energy_pj << "pJ write=" << write_energy_pj
        << "pJ delay=" << access_ns << "ns leak=" << leakage_mw
        << "mW bits=" << bits;
    return out.str();
}

SramModel::SramModel(const TechnologyParams &tech) : tech_(tech)
{
}

PowerDelay
SramModel::array(std::uint64_t rows, std::uint64_t cols,
                 std::uint32_t ports, std::uint32_t output_bits,
                 std::uint64_t write_cols, std::uint64_t read_cols) const
{
    MNM_ASSERT(rows > 0 && cols > 0, "degenerate array");
    if (write_cols == 0 || write_cols > cols)
        write_cols = cols;
    if (read_cols == 0 || read_cols > cols)
        read_cols = cols;
    // Square-ish subbanking: CACTI folds tall arrays into wider ones to
    // balance wordline and bitline delay. We emulate that by folding the
    // array until the aspect ratio is within 4:1, which both bounds the
    // worst-case delay and reflects how real arrays are laid out.
    double r = static_cast<double>(rows);
    double c = static_cast<double>(cols);
    while (r > 4.0 * c && r >= 2.0) {
        r /= 2.0;
        c *= 2.0;
    }
    while (c > 4.0 * r && c >= 2.0) {
        c /= 2.0;
        r *= 2.0;
    }

    double levels = std::max(1.0, std::log2(std::max(2.0, r)));
    double pf = 1.0 + tech_.port_factor * (ports > 0 ? ports - 1 : 0);

    PowerDelay pd;
    // Routing/H-tree energy grows with the sheer capacity of the array:
    // this is what separates a 2 MB last-level cache from a few-KB MNM
    // table even when per-bank terms are comparable.
    double route = tech_.route_pj_per_kbit *
                   (static_cast<double>(rows * cols) / 1024.0);
    double rc = static_cast<double>(read_cols);
    double read = tech_.decoder_pj_per_level * levels +
                  tech_.wordline_pj_per_col * c +
                  tech_.bitline_pj_per_row * r * std::sqrt(rc) +
                  tech_.senseamp_pj_per_col * rc +
                  tech_.output_pj_per_bit * output_bits + route;
    pd.read_energy_pj = read * pf;
    // Writes skip the sense amps and drive only the written columns
    // (one way of a set-associative cache) full-rail.
    double wc = static_cast<double>(write_cols);
    double write = tech_.decoder_pj_per_level * levels +
                   tech_.wordline_pj_per_col * c +
                   2.2 * tech_.bitline_pj_per_row * r * std::sqrt(wc) +
                   route;
    pd.write_energy_pj = write * pf;
    pd.access_ns = (tech_.decoder_ns_per_level * levels +
                    tech_.wordline_ns_per_col * c +
                    tech_.bitline_ns_per_row * std::sqrt(r) * 8.0 +
                    tech_.senseamp_ns) *
                   std::sqrt(pf);
    pd.bits = rows * cols;
    pd.leakage_mw = tech_.leakage_mw_per_kbit *
                    (static_cast<double>(pd.bits) / 1024.0) * pf;
    return pd;
}

PowerDelay
SramModel::cache(const CacheGeometry &geom) const
{
    MNM_ASSERT(geom.capacity_bytes > 0 && geom.block_bytes > 0,
               "cache geometry with zero size");
    MNM_ASSERT(geom.capacity_bytes % geom.block_bytes == 0,
               "capacity not a multiple of block size");

    std::uint64_t blocks = geom.capacity_bytes / geom.block_bytes;
    std::uint32_t ways = geom.associativity == 0
                             ? static_cast<std::uint32_t>(blocks)
                             : geom.associativity;
    MNM_ASSERT(blocks % ways == 0, "blocks not a multiple of ways");
    std::uint64_t sets = blocks / ways;

    // Data array: one set per row, all ways read in parallel (the common
    // high-performance organization; way select happens after tag
    // match). Writes drive only the selected way's columns.
    PowerDelay data = array(sets,
                            static_cast<std::uint64_t>(geom.block_bytes) *
                                8ull * ways,
                            geom.read_write_ports,
                            geom.block_bytes * 8u,
                            geom.block_bytes * 8ull);
    // Tag array: sets x (tag_bits * ways); writes touch one way's tag.
    PowerDelay tags = array(sets,
                            static_cast<std::uint64_t>(geom.tag_bits) * ways,
                            geom.read_write_ports, geom.tag_bits,
                            geom.tag_bits);

    PowerDelay pd;
    double cmp = tech_.compare_pj_per_bit * geom.tag_bits * ways;
    pd.read_energy_pj = data.read_energy_pj + tags.read_energy_pj + cmp;
    pd.write_energy_pj = data.write_energy_pj + tags.write_energy_pj + cmp;
    pd.access_ns = std::max(data.access_ns,
                            tags.access_ns +
                                tech_.compare_ns_per_bit * geom.tag_bits);
    pd.bits = data.bits + tags.bits;
    pd.leakage_mw = data.leakage_mw + tags.leakage_mw;
    return pd;
}

std::pair<PicoJoules, PicoJoules>
SramModel::wayPredictedRead(const CacheGeometry &geom) const
{
    MNM_ASSERT(geom.capacity_bytes > 0 && geom.block_bytes > 0,
               "cache geometry with zero size");
    std::uint64_t blocks = geom.capacity_bytes / geom.block_bytes;
    std::uint32_t ways = geom.associativity == 0
                             ? static_cast<std::uint32_t>(blocks)
                             : geom.associativity;
    std::uint64_t sets = blocks / ways;

    // Tags are always probed in full; the data array reads only the
    // predicted way.
    PowerDelay tags = array(sets,
                            static_cast<std::uint64_t>(geom.tag_bits) *
                                ways,
                            geom.read_write_ports, geom.tag_bits);
    PowerDelay one_way =
        array(sets, static_cast<std::uint64_t>(geom.block_bytes) * 8ull,
              geom.read_write_ports, geom.block_bytes * 8u);
    double cmp = tech_.compare_pj_per_bit * geom.tag_bits * ways;
    PicoJoules predicted =
        tags.read_energy_pj + one_way.read_energy_pj + cmp;
    // A misprediction re-reads the data array in full width.
    PicoJoules full_data =
        cache(geom).read_energy_pj - tags.read_energy_pj - cmp;
    return {predicted, full_data};
}

PowerDelay
SramModel::table(std::uint64_t entries, std::uint32_t bits_per_entry,
                 std::uint32_t ports, std::uint32_t active_bits) const
{
    MNM_ASSERT(entries > 0 && bits_per_entry > 0, "degenerate table");
    std::uint32_t active = active_bits ? active_bits : bits_per_entry;
    return array(entries, bits_per_entry, ports, active, active,
                 active);
}

PowerDelay
SramModel::cam(std::uint64_t entries, std::uint32_t match_bits,
               std::uint32_t ports) const
{
    MNM_ASSERT(entries > 0 && match_bits > 0, "degenerate CAM");
    // Every entry compares in parallel: energy scales with entries x bits,
    // delay with match-line length (~entries) plus the per-bit compare.
    double pf = 1.0 + tech_.port_factor * (ports > 0 ? ports - 1 : 0);
    PowerDelay pd;
    double bits = static_cast<double>(entries) * match_bits;
    pd.read_energy_pj = (tech_.compare_pj_per_bit * bits +
                         tech_.wordline_pj_per_col * match_bits) *
                        pf;
    pd.write_energy_pj = pd.read_energy_pj * 1.4;
    pd.access_ns = (tech_.compare_ns_per_bit * match_bits +
                    tech_.bitline_ns_per_row *
                        std::sqrt(static_cast<double>(entries)) * 4.0 +
                    tech_.senseamp_ns * 0.5) *
                   std::sqrt(pf);
    pd.bits = entries * match_bits;
    pd.leakage_mw = tech_.leakage_mw_per_kbit *
                    (bits / 1024.0) * 2.0 * pf; // CAM cells leak more
    return pd;
}

} // namespace mnm
